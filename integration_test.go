package repro_test

// End-to-end test of the shipped binaries: builds cmd/ftcserver,
// cmd/ftcctl and cmd/slurmfail, boots a two-node fleet over real TCP
// with a directory-backed PFS, and drives it exactly as an operator
// would. This is the closest Go equivalent of the artifact's
// "srun ftc_server + LD_PRELOAD basic_test" smoke procedure.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles the three tools once per test run.
func buildBinaries(t *testing.T) (server, ctl, slurmfail string) {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"ftcserver", "ftcctl", "slurmfail", "ftcsim"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, msg)
		}
	}
	return filepath.Join(dir, "ftcserver"), filepath.Join(dir, "ftcctl"),
		filepath.Join(dir, "slurmfail")
}

func TestFtcsimBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ftcsim")
	if msg, err := exec.Command("go", "build", "-o", bin, "./cmd/ftcsim").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, msg)
	}
	out, err := exec.Command(bin,
		"-nodes", "32", "-strategy", "ftnvme", "-failures", "1",
		"-divisor", "64", "-epochs", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"total simulated time:", "restarts: 1", "victim epoch mean:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Bad strategy exits non-zero.
	if _, err := exec.Command(bin, "-strategy", "bogus").CombinedOutput(); err == nil {
		t.Error("bogus strategy should fail")
	}
}

// freePort grabs an ephemeral TCP port.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c, err := net.DialTimeout("tcp", addr, 100*time.Millisecond); err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server on %s never came up", addr)
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	server, ctl, _ := buildBinaries(t)

	// Stage a small dataset into the directory-backed PFS.
	pfsDir := t.TempDir()
	for i := 0; i < 8; i++ {
		p := filepath.Join(pfsDir, "train", fmt.Sprintf("f%02d", i))
		os.MkdirAll(filepath.Dir(p), 0o755)
		if err := os.WriteFile(p, []byte(strings.Repeat("x", 1000+i)), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Boot two servers.
	var addrs []string
	for i := 0; i < 2; i++ {
		addr := freePort(t)
		addrs = append(addrs, addr)
		cmd := exec.Command(server,
			"-node", fmt.Sprintf("node-%04d", i),
			"-listen", addr,
			"-pfs", pfsDir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		proc := cmd.Process
		t.Cleanup(func() { proc.Kill(); cmd.Wait() })
	}
	for _, a := range addrs {
		waitListening(t, a)
	}
	servers := fmt.Sprintf("node-0000=%s,node-0001=%s", addrs[0], addrs[1])

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(ctl, append([]string{"-servers", servers}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("ftcctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// ping: both up.
	if out := run("ping"); strings.Count(out, ": ok") != 2 {
		t.Fatalf("ping output:\n%s", out)
	}
	// get: content round-trips through the cache.
	if out := run("get", "train/f00"); out != strings.Repeat("x", 1000) {
		t.Fatalf("get returned %d bytes", len(out))
	}
	// stat: cached after the read (mover is async; poll).
	deadline := time.Now().Add(3 * time.Second)
	for {
		out := run("stat", "train/f00")
		if strings.Contains(out, "cached: true") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never cached:\n%s", out)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// ring: every path maps to one of the two nodes.
	out := run("ring", "train/f00", "train/f01", "train/f02")
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, "node-000") {
			t.Fatalf("ring line %q", line)
		}
	}
	// bench: runs and reports latency percentiles.
	out = run("-iters", "50", "bench", "train/f01", "train/f02")
	if !strings.Contains(out, "latency ms:") || !strings.Contains(out, "reads:      100") {
		t.Fatalf("bench output:\n%s", out)
	}
	// stats: servers report cache contents.
	out = run("stats")
	if strings.Count(out, "objects=") != 2 {
		t.Fatalf("stats output:\n%s", out)
	}
}

func TestSlurmfailBinaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	_, _, slurmfail := buildBinaries(t)
	log := filepath.Join(t.TempDir(), "log.sacct")

	if out, err := exec.Command(slurmfail, "gen", "-o", log, "-jobs", "5000", "-seed", "2").CombinedOutput(); err != nil {
		t.Fatalf("gen: %v\n%s", err, out)
	}
	out, err := exec.Command(slurmfail, "analyze", log).CombinedOutput()
	if err != nil {
		t.Fatalf("analyze: %v\n%s", err, out)
	}
	for _, want := range []string{"Table I", "Fig 1", "Fig 2(a)", "Fig 2(b)", "MTBF analysis", "per-node MTBF estimate"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("analyze output missing %q", want)
		}
	}
}
