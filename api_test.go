package repro_test

import (
	"context"
	"testing"
	"time"

	"repro"
)

// TestPublicAPIQuickstart exercises the root package the way the README
// quickstart does: boot a cluster, stage data, read through the
// fault-tolerant client, kill a node, keep reading.
func TestPublicAPIQuickstart(t *testing.T) {
	cluster, err := repro.NewCluster(repro.ClusterConfig{
		Nodes:        4,
		Strategy:     repro.StrategyNVMe,
		RPCTimeout:   60 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ds := repro.CosmoFlowTrain().Scaled(16384).WithFileBytes(512)
	if _, err := cluster.Stage(ds); err != nil {
		t.Fatal(err)
	}
	client, _, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	for i := 0; i < ds.NumFiles; i++ {
		if _, err := client.Read(ctx, ds.FilePath(i)); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}

	if err := cluster.Fail(cluster.Nodes()[1], repro.FailUnresponsive); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.NumFiles; i++ {
		if _, err := client.Read(ctx, ds.FilePath(i)); err != nil {
			t.Fatalf("post-failure read %d: %v", i, err)
		}
	}
}

func TestPublicAPITraining(t *testing.T) {
	cluster, err := repro.NewCluster(repro.ClusterConfig{
		Nodes:        3,
		Strategy:     repro.StrategyNVMe,
		RPCTimeout:   60 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ds := repro.CosmoFlowTrain().Scaled(32768).WithFileBytes(128)
	cluster.Stage(ds)

	trainer, err := repro.NewTrainer(repro.TrainConfig{
		Cluster:   cluster,
		Dataset:   repro.TrainDataset(ds),
		Workers:   3,
		Epochs:    2,
		BatchSize: 2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()
	rep, err := trainer.Run(context.Background())
	if err != nil || rep.Aborted {
		t.Fatalf("run: %v aborted=%v", err, rep.Aborted)
	}
	if len(rep.Epochs) != 2 {
		t.Errorf("epochs = %d", len(rep.Epochs))
	}
}

func TestPublicAPIRing(t *testing.T) {
	nodes := []repro.NodeID{"a", "b", "c"}
	ring := repro.NewRing(repro.RingConfig{VirtualNodes: 50}, nodes)
	owner, ok := ring.Owner("some/file")
	if !ok {
		t.Fatal("no owner")
	}
	found := false
	for _, n := range nodes {
		if n == owner {
			found = true
		}
	}
	if !found {
		t.Errorf("owner %q not in node set", owner)
	}
}
