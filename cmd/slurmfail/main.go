// Command slurmfail generates and analyzes sacct-format job logs — the
// §III failure study as a standalone tool.
//
//	slurmfail gen -o frontier.sacct -jobs 181933 -seed 1
//	slurmfail analyze frontier.sacct
//
// `analyze` accepts any `sacct -P -o JobID,State,NNodes,ElapsedRaw,Submit`
// dump, so it runs unchanged against real scheduler logs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/slurmlog"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		genCmd(os.Args[2:])
	case "analyze":
		analyzeCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: slurmfail gen|analyze [flags]")
	os.Exit(2)
}

func genCmd(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("o", "-", "output file (- = stdout)")
	jobs := fs.Int("jobs", 181933, "job count")
	weeks := fs.Int("weeks", 27, "weeks of production")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	cfg := slurmlog.FrontierDefaults(*seed)
	cfg.Jobs = *jobs
	cfg.Weeks = *weeks
	recs := slurmlog.Generate(cfg)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := slurmlog.WriteSacct(w, recs); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d records\n", len(recs))
}

func analyzeCmd(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	weeks := fs.Int("weeks", 27, "weeks in the Fig 1 series")
	start := fs.String("start", "", "week-0 start (RFC3339 date); default = earliest submit")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("usage: slurmfail analyze <file>"))
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	recs, err := slurmlog.ParseSacct(f)
	if err != nil {
		fail(err)
	}
	if len(recs) == 0 {
		fail(fmt.Errorf("no records in %s", fs.Arg(0)))
	}

	startTime := recs[0].Submit
	for _, r := range recs {
		if r.Submit.Before(startTime) {
			startTime = r.Submit
		}
	}
	if *start != "" {
		t, err := time.Parse("2006-01-02", *start)
		if err != nil {
			fail(fmt.Errorf("bad -start: %w", err))
		}
		startTime = t
	}

	tab := slurmlog.ComputeTableI(recs)
	fmt.Printf("Table I (from %s)\n", fs.Arg(0))
	fmt.Printf("%-16s %9s %14s %14s\n", "Type", "Count", "Failure ratio", "Overall ratio")
	fmt.Printf("%-16s %9d %14s %13.2f%%\n", "Total Jobs", tab.TotalJobs, "N/A", 100.0)
	fmt.Printf("%-16s %9d %13.2f%% %13.2f%%\n", "Total Failures", tab.TotalFailures, 100.0, 100*tab.FailureRatio())
	for _, row := range []struct {
		name  string
		state slurmlog.State
		count int
	}{
		{"Node Fail", slurmlog.StateNodeFail, tab.NodeFail},
		{"Timeout", slurmlog.StateTimeout, tab.Timeout},
		{"Job Fail", slurmlog.StateJobFail, tab.JobFail},
	} {
		fmt.Printf("%-16s %9d %13.2f%% %13.2f%%\n", row.name, row.count,
			100*tab.ShareOfFailures(row.state), 100*tab.ShareOfAll(row.state))
	}

	points, overall := slurmlog.Fig1(recs, startTime, *weeks)
	fmt.Printf("\nFig 1: mean elapsed minutes of failed jobs per week (overall %.1f)\n", overall)
	for _, p := range points {
		fmt.Printf("  week %2d: all=%6.1f job=%6.1f timeout=%6.1f node=%6.1f (n=%d)\n",
			p.Week, p.AllFailedMinutes, p.JobFailMinutes, p.TimeoutMinutes,
			p.NodeFailMinutes, p.Failures)
	}

	printBuckets := func(title string, buckets []slurmlog.Bucket) {
		fmt.Printf("\n%s\n", title)
		for _, b := range buckets {
			fmt.Printf("  %-12s total=%7d job=%5.1f%% timeout=%5.1f%% node=%5.1f%% nf+to=%5.1f%%\n",
				b.Label, b.Total(),
				100*b.Share(slurmlog.StateJobFail),
				100*b.Share(slurmlog.StateTimeout),
				100*b.Share(slurmlog.StateNodeFail),
				100*b.NodeFailureClassShare())
		}
	}
	printBuckets("Fig 2(a): failure mix by node count", slurmlog.Fig2a(recs))
	printBuckets("Fig 2(b): failure mix by elapsed time", slurmlog.Fig2b(recs))

	mtbf := slurmlog.EstimateMTBF(recs)
	fmt.Printf("\nMTBF analysis (§III motivation)\n")
	fmt.Printf("  observation span:        %v\n", mtbf.Span.Round(time.Hour))
	fmt.Printf("  node-failure-class jobs: %d\n", mtbf.NodeFailureEvents)
	fmt.Printf("  node-hours consumed:     %.0f\n", mtbf.NodeHours)
	fmt.Printf("  per-node MTBF estimate:  %v\n", mtbf.PerNodeMTBF.Round(time.Hour))
	for _, n := range []int{64, 256, 1024, 4096, 9408} {
		fmt.Printf("  P(2h job on %5d nodes survives) = %.1f%%  (E[failures] = %.2f)\n",
			n, 100*mtbf.SurvivalProbability(n, 2*time.Hour),
			mtbf.ExpectedFailures(n, 2*time.Hour))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
