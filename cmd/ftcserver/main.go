// Command ftcserver runs one FT-Cache (HVAC) server daemon over TCP —
// the equivalent of the artifact's `srun ./ftc_server`.
//
// The daemon owns this node's cache tier and falls back to the PFS
// directory on miss:
//
//	ftcserver -node node-0000 -listen :7070 -pfs /mnt/lustre/dataset \
//	          -nvme-capacity 3500000000000
//
// Point every training rank's client (or ftcctl) at the fleet.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/hvac"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

func main() {
	node := flag.String("node", "node-0000", "this server's node identity")
	listen := flag.String("listen", ":7070", "TCP listen address")
	pfsDir := flag.String("pfs", "", "directory served as the PFS tier (required)")
	capacity := flag.Int64("nvme-capacity", 0, "cache capacity in bytes (0 = unbounded)")
	queue := flag.Int("mover-queue", 256, "data-mover queue depth")
	workers := flag.Int("mover-workers", 2, "data-mover worker count")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and JSON /debug/ftcache on this address (e.g. :9090; empty = disabled)")
	flag.Parse()

	if *pfsDir == "" {
		fmt.Fprintln(os.Stderr, "ftcserver: -pfs is required")
		os.Exit(2)
	}
	pfs, err := storage.NewDirStore(*pfsDir)
	if err != nil {
		log.Fatalf("ftcserver: %v", err)
	}

	srv := hvac.NewServer(hvac.ServerConfig{
		Node:            cluster.NodeID(*node),
		NVMeCapacity:    *capacity,
		MoverQueueDepth: *queue,
		MoverWorkers:    *workers,
	}, pfs)

	lis, err := rpc.TCPNetwork{}.Listen(*listen)
	if err != nil {
		log.Fatalf("ftcserver: listen %s: %v", *listen, err)
	}
	log.Printf("ftcserver: node %s serving on %s, PFS root %s", *node, lis.Addr(), pfs.Root())

	if *metricsAddr != "" {
		go func() {
			log.Printf("ftcserver: telemetry on http://%s/metrics and /debug/ftcache", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, telemetry.Handler(telemetry.Default())); err != nil {
				log.Printf("ftcserver: telemetry server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("ftcserver: %v, shutting down", s)
		srv.Close()
	}()

	if err := srv.Serve(lis); err != nil {
		log.Fatalf("ftcserver: serve: %v", err)
	}
	srv.Close()
}
