// Command ftcserver runs one FT-Cache (HVAC) server daemon over TCP —
// the equivalent of the artifact's `srun ./ftc_server`.
//
// The daemon owns this node's cache tier and falls back to the PFS
// directory on miss:
//
//	ftcserver -node node-0000 -listen :7070 -pfs /mnt/lustre/dataset \
//	          -nvme-capacity 3500000000000
//
// Point every training rank's client (or ftcctl) at the fleet.
//
// Observability endpoints (all on the -metrics address):
//
//	/metrics        Prometheus exposition
//	/debug/ftcache  JSON debug snapshot (plus a goroutines section with -pprof)
//	/debug/traces   flight-recorder dump (enable recording with -trace-sample)
//	/debug/pprof/*  net/http/pprof profiles (with -pprof)
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/hvac"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	node := flag.String("node", "node-0000", "this server's node identity")
	listen := flag.String("listen", ":7070", "TCP listen address")
	pfsDir := flag.String("pfs", "", "directory served as the PFS tier (required)")
	capacity := flag.Int64("nvme-capacity", 0, "cache capacity in bytes (0 = unbounded)")
	queue := flag.Int("mover-queue", 256, "data-mover queue depth")
	workers := flag.Int("mover-workers", 2, "data-mover worker count")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics, JSON /debug/ftcache and /debug/traces on this address (e.g. :9090; empty = disabled)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -metrics address and add a goroutine-dump section to /debug/ftcache")
	traceSample := flag.Int("trace-sample", 0, "record request traces for 1-in-N requests (0 = tracing off, 1 = every request)")
	traceHead := flag.Int("trace-head", 16, "flight-recorder head sampling: keep 1-in-N unremarkable recorded traces (errors and the slow tail are always kept)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("node", *node)

	if *pfsDir == "" {
		fmt.Fprintln(os.Stderr, "ftcserver: -pfs is required")
		os.Exit(2)
	}
	pfs, err := storage.NewDirStore(*pfsDir)
	if err != nil {
		logger.Error("pfs init failed", "dir", *pfsDir, "err", err)
		os.Exit(1)
	}

	if *traceSample > 0 {
		rec := trace.Enable(trace.DefaultCapacity, *traceHead)
		rec.SetSampleRate(*traceSample)
		logger.Info("request tracing enabled",
			"sample_rate", *traceSample, "head_rate", *traceHead, "capacity", trace.DefaultCapacity)
	}

	srv := hvac.NewServer(hvac.ServerConfig{
		Node:            cluster.NodeID(*node),
		NVMeCapacity:    *capacity,
		MoverQueueDepth: *queue,
		MoverWorkers:    *workers,
	}, pfs)

	lis, err := rpc.TCPNetwork{}.Listen(*listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	logger.Info("serving", "addr", lis.Addr().String(), "pfs_root", pfs.Root())

	if *pprofOn {
		// The goroutine section makes /debug/ftcache self-contained for
		// "is something wedged" triage: a count plus full stacks, without
		// reaching for the pprof tooling.
		telemetry.Default().RegisterDebug("goroutines", func() any {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			return map[string]any{
				"count": runtime.NumGoroutine(),
				"stack": string(buf[:n]),
			}
		})
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", telemetry.Handler(telemetry.Default()))
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go func() {
			logger.Info("telemetry listening", "addr", *metricsAddr, "pprof", *pprofOn)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				logger.Error("telemetry server failed", "err", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("shutting down", "signal", s.String())
		srv.Close()
	}()

	if err := srv.Serve(lis); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	srv.Close()
}
