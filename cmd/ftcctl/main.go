// Command ftcctl is the operator tool for a running FT-Cache fleet: read
// files through the fault-tolerant client, inspect cache residency and
// server counters, and dump the hash-ring ownership map.
//
//	ftcctl -servers node-0000=host0:7070,node-0001=host1:7070 get path/to/file
//	ftcctl -servers ... -strategy ftpfs stat path/to/file
//	ftcctl -servers ... stats
//	ftcctl -servers ... ring path/a path/b
//	ftcctl -servers ... ping
//	ftcctl trace http://host0:9090 http://host1:9090   # fetch /debug/traces, stitch by trace id
//	ftcctl tiers http://host0:9090 http://host1:9090   # per-node storage-tier occupancy + hit ratios
//	ftcctl policy http://host0:9090                    # adaptive policy: active strategy + decision history
//	ftcctl -force ftpfs policy http://host0:9090       # pin the policy (-force auto releases)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/ftcache"
	"repro/internal/hvac"
	"repro/internal/rpc"
	"repro/internal/trace"
)

func main() {
	servers := flag.String("servers", "", "comma-separated node=host:port pairs (required)")
	strategy := flag.String("strategy", "ftnvme", "fault-tolerance strategy: noft|ftpfs|ftnvme")
	vnodes := flag.Int("vnodes", 100, "virtual nodes per physical node (ftnvme)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-RPC timeout (TTL)")
	limit := flag.Int("timeout-limit", 3, "consecutive timeouts before declaring a node failed")
	benchIters := flag.Int("iters", 100, "bench: read iterations per path")
	traceMax := flag.Int("trace-max", 0, "trace: fetch at most N traces per endpoint (0 = all kept)")
	traceErrs := flag.Bool("trace-errs", false, "trace: show only traces with an error-class fragment")
	forceKind := flag.String("force", "", "policy: pin the adaptive strategy (noft|ftpfs|ftnvme) or release with auto")
	traced := flag.Bool("traced", false, "propagate trace context with this invocation's RPCs, so server flight recorders capture fragments (view with ftcctl trace)")
	flag.Parse()

	if *traced {
		// No local recorder: the fragments of interest are the ones the
		// servers keep; this process only mints ids and sends them on the
		// wire.
		trace.SetEnabled(true)
	}

	if flag.NArg() < 1 {
		fail(fmt.Errorf("usage: ftcctl -servers ... <get|stat|stats|ping|ring|bench> [args] | ftcctl <trace|tiers|policy> <telemetry-url>..."))
	}

	// trace talks to telemetry HTTP endpoints, not the RPC fleet, so it
	// runs before any -servers parsing or client setup.
	if flag.Arg(0) == "trace" {
		urls := flag.Args()[1:]
		if len(urls) == 0 {
			fail(fmt.Errorf("usage: ftcctl trace <telemetry-url>...  (e.g. ftcctl trace http://host0:9090 http://host1:9090)"))
		}
		if err := runTrace(urls, *traceMax, *traceErrs); err != nil {
			fail(err)
		}
		return
	}

	// tiers likewise reads telemetry endpoints: the per-node storage-tier
	// occupancy and hit-ratio table from each node's /debug/ftcache.
	if flag.Arg(0) == "tiers" {
		urls := flag.Args()[1:]
		if len(urls) == 0 {
			fail(fmt.Errorf("usage: ftcctl tiers <telemetry-url>...  (e.g. ftcctl tiers http://host0:9090 http://host1:9090)"))
		}
		if err := runTiers(urls); err != nil {
			fail(err)
		}
		return
	}

	// policy also talks to telemetry endpoints: the adaptive controller's
	// active strategy, live signals, and decision history, plus the
	// -force operator override.
	if flag.Arg(0) == "policy" {
		urls := flag.Args()[1:]
		if len(urls) == 0 {
			fail(fmt.Errorf("usage: ftcctl [-force noft|ftpfs|ftnvme|auto] policy <telemetry-url>..."))
		}
		if err := runPolicy(urls, *forceKind); err != nil {
			fail(err)
		}
		return
	}

	endpoints, order, err := parseServers(*servers)
	if err != nil {
		fail(err)
	}

	router := ftcache.NewRouter(ftcache.StrategyKind(*strategy), order, *vnodes)
	cli, err := hvac.NewClient(hvac.ClientConfig{
		Endpoints:    endpoints,
		Network:      rpc.TCPNetwork{},
		Router:       router,
		RPCTimeout:   *timeout,
		TimeoutLimit: *limit,
	})
	if err != nil {
		fail(err)
	}
	defer cli.Close()
	ctx := context.Background()

	switch cmd, args := flag.Arg(0), flag.Args()[1:]; cmd {
	case "get":
		needArgs(args, 1, "get <path>")
		data, err := cli.Read(ctx, args[0])
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(data)

	case "stat":
		needArgs(args, 1, "stat <path>")
		st, err := cli.Stat(ctx, args[0])
		if err != nil {
			fail(err)
		}
		owner, _ := ownerOf(router, args[0])
		fmt.Printf("path:   %s\nowner:  %s\nsize:   %d\ncached: %v\n", args[0], owner, st.Size, st.Cached)

	case "stats":
		for _, n := range order {
			st, err := cli.ServerStats(ctx, n)
			if err != nil {
				fmt.Printf("%s: unreachable (%v)\n", n, err)
				continue
			}
			fmt.Printf("%s: objects=%d bytes=%d hits=%d misses=%d pfsFallbacks=%d moverEnq=%d moverDrop=%d\n",
				n, st.NVMeObjects, st.NVMeBytes, st.NVMeHits, st.NVMeMisses,
				st.PFSFallbacks, st.MoverEnqueued, st.MoverDropped)
		}

	case "ping":
		exit := 0
		for _, n := range order {
			if err := cli.Ping(ctx, n); err != nil {
				fmt.Printf("%s: DOWN (%v)\n", n, err)
				exit = 1
			} else {
				fmt.Printf("%s: ok\n", n)
			}
		}
		os.Exit(exit)

	case "ring":
		if len(args) == 0 {
			fail(fmt.Errorf("usage: ring <path>..."))
		}
		for _, p := range args {
			owner, kind := ownerOf(router, p)
			fmt.Printf("%-50s -> %s%s\n", p, owner, kind)
		}

	case "bench":
		if len(args) == 0 {
			fail(fmt.Errorf("usage: bench <path>... (reads each path %d times)", *benchIters))
		}
		runBench(ctx, cli, args, *benchIters)

	default:
		fail(fmt.Errorf("unknown command %q", cmd))
	}
}

// runBench is the artifact's basic_test equivalent: hammer the cache
// with reads and report throughput plus the client's streaming latency
// percentiles.
func runBench(ctx context.Context, cli *hvac.Client, paths []string, iters int) {
	var bytes int64
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, p := range paths {
			data, err := cli.Read(ctx, p)
			if err != nil {
				fail(fmt.Errorf("bench read %s: %w", p, err))
			}
			bytes += int64(len(data))
		}
	}
	elapsed := time.Since(start)
	lat := cli.Latency()
	reads := iters * len(paths)
	fmt.Printf("reads:      %d (%d paths × %d iterations)\n", reads, len(paths), iters)
	fmt.Printf("bytes:      %d\n", bytes)
	fmt.Printf("elapsed:    %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.1f MB/s, %.0f reads/s\n",
		float64(bytes)/1e6/elapsed.Seconds(), float64(reads)/elapsed.Seconds())
	fmt.Printf("latency ms: mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		lat.Mean, lat.P50, lat.P95, lat.P99, lat.Max)
	st := cli.Stats()
	fmt.Printf("sources:    ram=%d nvme=%d server-pfs=%d direct-pfs=%d\n",
		st.ServedRAM, st.ServedNVMe, st.ServedPFS, st.DirectPFS)
}

func ownerOf(router hvac.Router, path string) (string, string) {
	d := router.Route(path)
	switch d.Kind {
	case hvac.RouteNode:
		return string(d.Node), ""
	case hvac.RoutePFS:
		return "PFS", " (redirected)"
	default:
		return "-", " (aborted)"
	}
}

func parseServers(s string) (map[cluster.NodeID]string, []cluster.NodeID, error) {
	if s == "" {
		return nil, nil, fmt.Errorf("ftcctl: -servers is required")
	}
	endpoints := make(map[cluster.NodeID]string)
	for _, pair := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" || addr == "" {
			return nil, nil, fmt.Errorf("ftcctl: bad server spec %q (want node=host:port)", pair)
		}
		endpoints[cluster.NodeID(name)] = addr
	}
	order := make([]cluster.NodeID, 0, len(endpoints))
	for n := range endpoints {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return endpoints, order, nil
}

func needArgs(args []string, n int, usage string) {
	if len(args) != n {
		fail(fmt.Errorf("usage: ftcctl ... %s", usage))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
