package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// runTiers fetches /debug/ftcache from each telemetry endpoint and
// prints every server's per-tier storage breakdown (RAM / NVMe / PFS
// capacity, occupancy, hit ratio) in one fleet-wide table — the
// operator view of where reads are actually being served from.
func runTiers(urls []string) error {
	client := &http.Client{Timeout: 10 * time.Second}

	// debugState mirrors telemetry.DebugState loosely: only the
	// sections map matters here, and the server sections are decoded
	// structurally so the tool keeps working as sections grow fields.
	type debugState struct {
		Sections map[string]json.RawMessage `json:"sections"`
	}
	type tierRow struct {
		Tier     string  `json:"tier"`
		Capacity int64   `json:"capacity"`
		Bytes    int64   `json:"bytes"`
		Objects  int64   `json:"objects"`
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		HitRatio float64 `json:"hit_ratio"`
		Served   int64   `json:"served"`
		Leases   int64   `json:"leases"`
	}
	type serverSection struct {
		Node  string    `json:"node"`
		Tiers []tierRow `json:"tiers"`
	}

	type nodeTiers struct {
		node  string
		tiers []tierRow
	}
	var fleet []nodeTiers
	for _, base := range urls {
		u := strings.TrimSuffix(base, "/") + "/debug/ftcache?events=0"
		resp, err := client.Get(u)
		if err != nil {
			return fmt.Errorf("fetch %s: %w", u, err)
		}
		var st debugState
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decode %s: %w", u, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fetch %s: HTTP %d", u, resp.StatusCode)
		}
		for name, raw := range st.Sections {
			if !strings.HasPrefix(name, "server:") {
				continue
			}
			var sec serverSection
			if err := json.Unmarshal(raw, &sec); err != nil || len(sec.Tiers) == 0 {
				continue // pre-tier server build, or a foreign section shape
			}
			if sec.Node == "" {
				sec.Node = strings.TrimPrefix(name, "server:")
			}
			fleet = append(fleet, nodeTiers{node: sec.Node, tiers: sec.Tiers})
		}
	}
	if len(fleet) == 0 {
		return fmt.Errorf("no server tier sections found at %s (telemetry not serving, or servers predate the tier breakdown)", strings.Join(urls, ", "))
	}
	sort.Slice(fleet, func(i, j int) bool { return fleet[i].node < fleet[j].node })

	fmt.Printf("%-12s %-5s %12s %12s %6s %10s %10s %7s\n",
		"NODE", "TIER", "CAPACITY", "BYTES", "USE%", "HITS", "MISSES", "HIT%")
	for _, nt := range fleet {
		for _, tr := range nt.tiers {
			use := "-"
			if tr.Capacity > 0 {
				use = fmt.Sprintf("%.1f", 100*float64(tr.Bytes)/float64(tr.Capacity))
			}
			capacity := "-"
			if tr.Capacity > 0 {
				capacity = fmt.Sprintf("%d", tr.Capacity)
			}
			hits, misses := tr.Hits, tr.Misses
			if tr.Tier == "pfs" {
				// PFS reports serves, not hit/miss pairs: every serve is
				// a fallback, and its hit ratio is the fallback fraction.
				hits = tr.Served
			}
			fmt.Printf("%-12s %-5s %12s %12d %6s %10d %10d %6.1f%%\n",
				nt.node, tr.Tier, capacity, tr.Bytes, use, hits, misses, 100*tr.HitRatio)
		}
	}
	return nil
}
