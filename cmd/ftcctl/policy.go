package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// policyState mirrors the ftpolicy "policy" debug section structurally,
// so the tool keeps working as the section grows fields.
type policyState struct {
	Active    string          `json:"active"`
	Forced    string          `json:"forced"`
	Switches  int64           `json:"switches"`
	Tick      int64           `json:"tick"`
	Signals   policySignals   `json:"signals"`
	Decisions []policyRow     `json:"decisions"`
	Sections  json.RawMessage `json:"-"`
}

type policySignals struct {
	Failures   float64 `json:"failures"`
	Recoveries float64 `json:"recoveries"`
	Timeouts   float64 `json:"timeouts"`
	DirectPFS  float64 `json:"direct_pfs"`
	ServedPFS  float64 `json:"served_pfs"`
	FailedDown float64 `json:"failed_down"`
	PFSLatMs   float64 `json:"pfs_lat_ms"`
}

type policyRow struct {
	Seq    int64  `json:"seq"`
	Tick   int64  `json:"tick"`
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason"`
	Forced bool   `json:"forced"`
}

// runPolicy is the adaptive-policy operator view: for each telemetry
// endpoint, the active strategy, any operator pin, the live signal
// snapshot, and the recent decision history with the reasons that
// triggered each switch. With force != "" it instead POSTs the
// policy-force control action ("noft"/"ftpfs"/"ftnvme" pins, "auto"
// releases) to every endpoint before reporting.
func runPolicy(urls []string, force string) error {
	client := &http.Client{Timeout: 10 * time.Second}

	if force != "" {
		for _, base := range urls {
			u := strings.TrimSuffix(base, "/") + "/control/policy-force?arg=" + force
			resp, err := client.Post(u, "text/plain", nil)
			if err != nil {
				return fmt.Errorf("force %s: %w", u, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("force %s: HTTP %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
			}
			fmt.Printf("%s: forced policy %q\n", base, force)
		}
	}

	type debugState struct {
		Sections map[string]json.RawMessage `json:"sections"`
	}
	for _, base := range urls {
		u := strings.TrimSuffix(base, "/") + "/debug/ftcache?events=0"
		resp, err := client.Get(u)
		if err != nil {
			return fmt.Errorf("fetch %s: %w", u, err)
		}
		var st debugState
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decode %s: %w", u, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fetch %s: HTTP %d", u, resp.StatusCode)
		}
		raw, ok := st.Sections["policy"]
		if !ok || string(raw) == "null" {
			fmt.Printf("%s: no adaptive policy controller\n", base)
			continue
		}
		var ps policyState
		if err := json.Unmarshal(raw, &ps); err != nil {
			return fmt.Errorf("decode %s policy section: %w", u, err)
		}
		pin := "auto"
		if ps.Forced != "" {
			pin = "forced=" + ps.Forced
		}
		fmt.Printf("%s: active=%s (%s) switches=%d tick=%d\n", base, ps.Active, pin, ps.Switches, ps.Tick)
		fmt.Printf("  signals: failures=%.0f recoveries=%.0f timeouts=%.0f direct-pfs=%.0f served-pfs=%.0f down=%.0f pfs-lat=%.2fms\n",
			ps.Signals.Failures, ps.Signals.Recoveries, ps.Signals.Timeouts,
			ps.Signals.DirectPFS, ps.Signals.ServedPFS, ps.Signals.FailedDown, ps.Signals.PFSLatMs)
		if len(ps.Decisions) == 0 {
			fmt.Println("  no decisions recorded")
			continue
		}
		fmt.Printf("  %-5s %-6s %-8s %-8s %-15s %s\n", "SEQ", "TICK", "FROM", "TO", "REASON", "FORCED")
		for _, d := range ps.Decisions {
			forced := ""
			if d.Forced {
				forced = "yes"
			}
			fmt.Printf("  %-5d %-6d %-8s %-8s %-15s %s\n", d.Seq, d.Tick, d.From, d.To, d.Reason, forced)
		}
	}
	return nil
}
