package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/hvac"
	"repro/internal/loadctl"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// TestRunTiers drives the tiers subcommand against a real server's
// telemetry handler: the table must show one row per tier for the node,
// built from the same /debug/ftcache payload production serves.
func TestRunTiers(t *testing.T) {
	pfs := storage.NewPFS()
	pfs.Put("hot", []byte("hot-object-bytes"))
	srv := hvac.NewServer(hvac.ServerConfig{
		Node:        "node-00",
		RAMCapacity: 1 << 20,
		RAMSketch:   loadctl.Config{SampleRate: 1},
	}, pfs)
	defer srv.Close()
	// Serve a few reads directly so the tier counters are nonzero.
	for i := 0; i < 32; i++ {
		if status, _ := srv.Handle(hvac.OpRead, (&hvac.ReadReq{Path: "hot", Length: -1}).Marshal()); status != rpc.StatusOK {
			t.Fatalf("read %d: status %d", i, status)
		}
	}

	ts := httptest.NewServer(telemetry.Handler(telemetry.Default()))
	defer ts.Close()

	out := captureStdout(t, func() {
		if err := runTiers([]string{ts.URL}); err != nil {
			t.Fatalf("runTiers: %v", err)
		}
	})
	for _, want := range []string{"NODE", "node-00", "ram", "nvme", "pfs"} {
		if !strings.Contains(out, want) {
			t.Errorf("tiers output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTiersNoSections(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"sections":{}}`))
	}))
	defer ts.Close()
	if err := runTiers([]string{ts.URL}); err == nil {
		t.Fatal("want error when no server sections are present")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 1024)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}
