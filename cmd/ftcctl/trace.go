package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// runTrace fetches /debug/traces from each telemetry endpoint and
// pretty-prints the merged flight-recorder contents grouped by trace
// id: the client's root fragment first, then every server-side
// fragment that node-local recorders kept for the same request —
// the stitched cross-node view of one read or ingest batch.
func runTrace(urls []string, max int, errOnly bool) error {
	client := &http.Client{Timeout: 10 * time.Second}
	byID := make(map[trace.TraceID][]*trace.Trace)
	var order []trace.TraceID
	for _, base := range urls {
		u := strings.TrimSuffix(base, "/") + "/debug/traces"
		if max > 0 {
			u += fmt.Sprintf("?max=%d", max)
		}
		resp, err := client.Get(u)
		if err != nil {
			return fmt.Errorf("fetch %s: %w", u, err)
		}
		var payload trace.DebugPayload
		err = json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decode %s: %w", u, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fetch %s: HTTP %d", u, resp.StatusCode)
		}
		if !payload.Enabled {
			fmt.Printf("# %s: tracing disabled\n", base)
		}
		if payload.Stats != nil {
			st := payload.Stats
			fmt.Printf("# %s: kept=%d/%d offered (err=%d tail=%d), sample 1/%d, head 1/%d\n",
				base, st.Kept, st.Offered, st.ErrKept, st.TailKept, st.SampleRate, st.HeadRate)
		}
		for _, tr := range payload.Traces {
			if _, seen := byID[tr.ID]; !seen {
				order = append(order, tr.ID)
			}
			byID[tr.ID] = append(byID[tr.ID], tr)
		}
	}

	shown := 0
	for _, id := range order {
		group := byID[id]
		if errOnly && !groupHasErr(group) {
			continue
		}
		// Client root first, then fragments, oldest first.
		sort.SliceStable(group, func(i, j int) bool {
			if group[i].Remote != group[j].Remote {
				return !group[i].Remote
			}
			return group[i].Start.Before(group[j].Start)
		})
		fmt.Printf("\ntrace %016x\n", uint64(id))
		for _, tr := range group {
			kind := "client"
			if tr.Remote {
				kind = "fragment"
			}
			flag := ""
			if tr.Err {
				flag = "  [ERR]"
			}
			fmt.Printf("  %s %s  %s%s\n", kind, tr.Root, tr.Duration.Round(time.Microsecond), flag)
			printSpanTree(tr)
		}
		shown++
	}
	fmt.Printf("\n%d traces shown (%d fetched)\n", shown, len(order))
	return nil
}

func groupHasErr(group []*trace.Trace) bool {
	for _, tr := range group {
		if tr.Err {
			return true
		}
	}
	return false
}

// printSpanTree renders one fragment's spans as an indented tree
// (children under their parent, siblings in start order).
func printSpanTree(tr *trace.Trace) {
	children := make(map[trace.SpanID][]*trace.SpanRecord)
	ids := make(map[trace.SpanID]bool, len(tr.Spans))
	for i := range tr.Spans {
		ids[tr.Spans[i].ID] = true
	}
	var roots []*trace.SpanRecord
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.Parent != 0 && ids[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(s []*trace.SpanRecord) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	}
	byStart(roots)
	var walk func(sp *trace.SpanRecord, depth int)
	walk = func(sp *trace.SpanRecord, depth int) {
		var b strings.Builder
		fmt.Fprintf(&b, "    %s%-14s %10s", strings.Repeat("  ", depth), sp.Name,
			sp.Duration.Round(time.Microsecond))
		for _, a := range sp.Annotations {
			fmt.Fprintf(&b, "  %s=%s", a.Key, a.Value)
		}
		if sp.Err != "" {
			fmt.Fprintf(&b, "  err=%q", sp.Err)
		}
		fmt.Println(b.String())
		kids := children[sp.ID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, sp := range roots {
		walk(sp, 0)
	}
}
