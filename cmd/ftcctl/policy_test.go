package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/ftcache"
	"repro/internal/ftpolicy"
	"repro/internal/telemetry"
)

// TestRunPolicy drives the policy subcommand against the real telemetry
// handler with a live controller behind it: the table must show the
// active strategy and the decision history, and -force must round-trip
// through the control endpoint to pin and release the strategy.
func TestRunPolicy(t *testing.T) {
	nodes := []cluster.NodeID{"node-00", "node-01", "node-02"}
	sw := ftcache.NewSwitchable(nodes, 100, ftcache.KindNVMe)
	ctl := ftpolicy.New(ftpolicy.Config{})
	// Commit one decision so the history table is nonempty: pin then
	// release via the controller's own API.
	if err := ctl.Force(ftcache.KindPFS); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Force("auto"); err != nil {
		t.Fatal(err)
	}
	_ = sw // the controller is target-less here; the section still renders

	ts := httptest.NewServer(telemetry.Handler(telemetry.Default()))
	defer ts.Close()

	out := captureStdout(t, func() {
		if err := runPolicy([]string{ts.URL}, ""); err != nil {
			t.Fatalf("runPolicy: %v", err)
		}
	})
	for _, want := range []string{"active=ftpfs", "(auto)", "SEQ", "REASON", "forced", "signals:"} {
		if !strings.Contains(out, want) {
			t.Errorf("policy output missing %q:\n%s", want, out)
		}
	}

	// -force pins through the HTTP control action…
	out = captureStdout(t, func() {
		if err := runPolicy([]string{ts.URL}, "ftnvme"); err != nil {
			t.Fatalf("runPolicy -force: %v", err)
		}
	})
	if !strings.Contains(out, `forced policy "ftnvme"`) || !strings.Contains(out, "forced=ftnvme") {
		t.Errorf("force output missing confirmation/pin:\n%s", out)
	}
	if ctl.Forced() != ftcache.KindNVMe || ctl.Active() != ftcache.KindNVMe {
		t.Errorf("controller not pinned: forced=%q active=%q", ctl.Forced(), ctl.Active())
	}

	// …and an unknown strategy is rejected end to end.
	if err := runPolicy([]string{ts.URL}, "bogus"); err == nil {
		t.Error("force bogus succeeded, want HTTP 400 error")
	}

	// -force auto releases the pin.
	if _, err := captureStdoutErr(t, func() error { return runPolicy([]string{ts.URL}, "auto") }); err != nil {
		t.Fatalf("runPolicy -force auto: %v", err)
	}
	if ctl.Forced() != "" {
		t.Errorf("pin not released: %q", ctl.Forced())
	}
}

// TestRunPolicyNoController reports a friendly line when the endpoint
// has no adaptive controller section.
func TestRunPolicyNoController(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts := httptest.NewServer(telemetry.Handler(reg))
	defer ts.Close()
	out := captureStdout(t, func() {
		if err := runPolicy([]string{ts.URL}, ""); err != nil {
			t.Fatalf("runPolicy: %v", err)
		}
	})
	if !strings.Contains(out, "no adaptive policy controller") {
		t.Errorf("missing no-controller line:\n%s", out)
	}
}

// captureStdoutErr is captureStdout for an fn that returns an error.
func captureStdoutErr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	var err error
	out := captureStdout(t, func() { err = fn() })
	return out, err
}
