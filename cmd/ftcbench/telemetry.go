package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/telemetry"
)

// readLatencySnapshot returns the process-wide client read-latency
// histogram. The handle is shared with the hvac package (same name, same
// registry), so this sees exactly what the benchmark clients observed.
func readLatencySnapshot() telemetry.HistogramSnapshot {
	return telemetry.Default().Histogram("ftc_client_read_latency_seconds").Snapshot()
}

// hotSplitSnapshot returns one of the loadctl responder histograms.
func hotSplitSnapshot(series string) telemetry.HistogramSnapshot {
	return telemetry.Default().Histogram(series).Snapshot()
}

// printTelemetrySummary dumps every non-zero series in the Default
// registry as a fixed-width table — the ftcbench flavor of /metrics, so
// a benchmark run ends with the same observables a scrape would show.
func printTelemetrySummary() {
	snap := telemetry.Default().Snapshot()
	sort.SliceStable(snap, func(i, j int) bool {
		if snap[i].Name != snap[j].Name {
			return snap[i].Name < snap[j].Name
		}
		return snap[i].Labels < snap[j].Labels
	})
	fmt.Println("telemetry:")
	fmt.Printf("  %-44s %-10s %s\n", "series", "kind", "value")
	for _, mv := range snap {
		name := mv.Name
		if mv.Labels != "" {
			name += "{" + mv.Labels + "}"
		}
		if mv.Hist != nil {
			if mv.Hist.Count == 0 {
				continue
			}
			fmt.Printf("  %-44s %-10s count=%d p50=%s p99=%s mean=%s\n",
				name, mv.Kind, mv.Hist.Count,
				fmtDur(mv.Hist.Quantile(0.5)), fmtDur(mv.Hist.Quantile(0.99)), fmtDur(mv.Hist.Mean()))
			continue
		}
		if mv.Value == 0 {
			continue
		}
		fmt.Printf("  %-44s %-10s %d\n", name, mv.Kind, mv.Value)
	}
}

// fmtDur renders a float nanosecond quantity at a readable scale.
func fmtDur(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
