// Command ftcbench regenerates the paper's tables and figures from the
// reproduction's implementations.
//
// Usage:
//
//	ftcbench -exp all                 # every experiment at paper scale
//	ftcbench -exp fig5b -scale quick  # one experiment, seconds-scale
//	ftcbench -exp fig6b -seed 7
//
// Experiments: table1, fig1, fig2, fig5a, fig5b, fig6a, fig6b, all.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

// benchLog is the process logger: results go to stdout as tables,
// diagnostics go to stderr as structured records (tail exemplars carry
// a trace_id field correlating them with /debug/traces).
var benchLog = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig1|fig2|fig5a|fig5b|fig6a|fig6b|extrepl|extvnode|all")
	scaleName := flag.String("scale", "paper", "scale: paper|quick")
	seed := flag.Int64("seed", 1, "random seed")
	csvDir := flag.String("csv", "", "also write <dir>/<exp>.csv for each experiment")
	hotpath := flag.Bool("hotpath", false, "drive a live in-process cluster at high concurrency and print reads/sec")
	hpClients := flag.Int("clients", 16, "hotpath/chaos: concurrent client connections")
	hpNodes := flag.Int("nodes", 4, "hotpath/chaos: server nodes")
	hpFiles := flag.Int("files", 512, "hotpath/chaos: files in the working set")
	hpFileBytes := flag.Int64("filebytes", 4096, "hotpath/chaos: bytes per file")
	hpDuration := flag.Duration("duration", 3*time.Second, "hotpath: measurement window; chaos: fault-schedule horizon")
	hpSkew := flag.Float64("skew", 0, "hotpath: Zipf exponent of the access pattern (0 = uniform)")
	hpLoadctl := flag.Bool("loadctl", false, "hotpath: enable client-side load control (coalescing, hot-key fan-out, hedged reads)")
	hpAdmission := flag.Int("admission", 0, "hotpath: per-server concurrent-read admission limit (0 = unlimited)")
	hpServiceDelay := flag.Duration("servicedelay", 0, "hotpath: simulated per-read device service time (0 = off)")
	hpTrace := flag.Bool("trace", false, "attribution mode: trace every hotpath read and decompose the read p99 into owner/replica/hedge/retry/queue/storage components")
	hpTraceOut := flag.String("traceout", "", "trace: also append the markdown attribution table to this file")
	chaosSoak := flag.Bool("chaos", false, "run a seeded fault-injection soak against a live in-process cluster")
	adaptFT := flag.Bool("adaptft", false, "compare the adaptive policy controller against every static strategy over seeded phase-shift schedules, JSON to -adaptout")
	aftUnit := flag.Duration("unit", time.Second, "adaptft: base duration of one schedule phase")
	aftPFSDelay := flag.Duration("pfsdelay", 10*time.Millisecond, "adaptft: injected PFS read latency during contention phases")
	aftReadDelay := flag.Duration("readdelay", time.Millisecond, "adaptft: per-read device service time on servers")
	aftSeeds := flag.Int("seeds", 3, "adaptft: number of consecutive seeds starting at -seed")
	aftReps := flag.Int("reps", 2, "adaptft: best-of-N runs per policy (cancels machine noise)")
	aftOut := flag.String("adaptout", filepath.Join("results", "BENCH_adaptft.json"), "adaptft: JSON result path ('' = stdout only)")
	ingestBench := flag.Bool("ingest", false, "drive the write path: sync puts vs the batched async pipeline, JSON to -out")
	ingBatch := flag.Int("batch", 64, "ingest: max entries per wire batch")
	ingFlushEvery := flag.Int("flushevery", 4096, "ingest: puts between explicit Flush barriers")
	ingOut := flag.String("out", filepath.Join("results", "BENCH_ingest.json"), "ingest: JSON result path ('' = stdout only)")
	mtBench := flag.Bool("memtier", false, "A/B the RAM hot-object tier: same per-node memory budget with and without a RAM slice, JSON to -memout")
	mtRAMFrac := flag.Float64("ramfrac", 0.25, "memtier: fraction of the per-node budget carved out as RAM tier in the ON phase")
	mtBudget := flag.Int64("tierbudget", 0, "memtier: per-node memory budget in bytes (0 = files*filebytes)")
	mtOut := flag.String("memout", filepath.Join("results", "BENCH_memtier.json"), "memtier: JSON result path ('' = stdout only)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			benchLog.Error("cpu profile create failed", "path", *cpuprofile, "err", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			benchLog.Error("cpu profile start failed", "err", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *ingestBench {
		// The ingest bench targets the paper-scale write fan-out: 64
		// simulated nodes unless -nodes was given explicitly.
		nodes, objBytes := *hpNodes, *hpFileBytes
		nodesSet, bytesSet := false, false
		flag.Visit(func(f *flag.Flag) {
			nodesSet = nodesSet || f.Name == "nodes"
			bytesSet = bytesSet || f.Name == "filebytes"
		})
		if !nodesSet {
			nodes = 64
		}
		if !bytesSet {
			// Ingest default: the paper's many-small-files training regime.
			objBytes = 1024
		}
		if err := runIngest(ingestConfig{
			nodes:      nodes,
			clients:    *hpClients,
			objBytes:   objBytes,
			duration:   *hpDuration,
			seed:       *seed,
			batch:      *ingBatch,
			flushEvery: *ingFlushEvery,
			out:        *ingOut,
		}); err != nil {
			benchLog.Error("ingest run failed", "err", err)
			os.Exit(1)
		}
		return
	}

	if *mtBench {
		// Memtier defaults differ from hotpath's: the A/B needs a skewed
		// pattern (there is no hot set to promote under uniform access)
		// and a nonzero device service time (the tier's win is skipping
		// it). Explicit flags still override.
		skew, delay := *hpSkew, *hpServiceDelay
		skewSet, delaySet := false, false
		flag.Visit(func(f *flag.Flag) {
			skewSet = skewSet || f.Name == "skew"
			delaySet = delaySet || f.Name == "servicedelay"
		})
		if !skewSet {
			skew = 1.1
		}
		if !delaySet {
			delay = 150 * time.Microsecond
		}
		if err := runMemtierAB(memtierConfig{
			nodes:        *hpNodes,
			clients:      *hpClients,
			files:        *hpFiles,
			fileBytes:    *hpFileBytes,
			duration:     *hpDuration,
			seed:         *seed,
			skew:         skew,
			ramFrac:      *mtRAMFrac,
			budget:       *mtBudget,
			serviceDelay: delay,
			out:          *mtOut,
		}); err != nil {
			benchLog.Error("memtier run failed", "err", err)
			os.Exit(1)
		}
		return
	}

	if *adaptFT {
		// The comparison needs a fleet wide enough that one dead arc is a
		// small fraction of placements: 16 nodes unless -nodes was given,
		// and a smaller dataset so epochs resolve within a phase.
		nodes, clients, files := *hpNodes, *hpClients, *hpFiles
		nodesSet, clientsSet, filesSet := false, false, false
		flag.Visit(func(f *flag.Flag) {
			nodesSet = nodesSet || f.Name == "nodes"
			clientsSet = clientsSet || f.Name == "clients"
			filesSet = filesSet || f.Name == "files"
		})
		if !nodesSet {
			nodes = 16
		}
		if !clientsSet {
			clients = 4
		}
		if !filesSet {
			files = 200
		}
		seeds := make([]int64, 0, *aftSeeds)
		for i := 0; i < *aftSeeds; i++ {
			seeds = append(seeds, *seed+int64(i))
		}
		if err := runAdaptFT(adaptftConfig{
			nodes:     nodes,
			clients:   clients,
			files:     files,
			fileBytes: *hpFileBytes,
			unit:      *aftUnit,
			pfsDelay:  *aftPFSDelay,
			readDelay: *aftReadDelay,
			seeds:     seeds,
			reps:      *aftReps,
			out:       *aftOut,
		}); err != nil {
			benchLog.Error("adaptft run failed", "err", err)
			os.Exit(1)
		}
		return
	}

	if *chaosSoak {
		if err := runChaos(chaosConfig{
			nodes:     *hpNodes,
			clients:   *hpClients,
			files:     *hpFiles,
			fileBytes: *hpFileBytes,
			duration:  *hpDuration,
			seed:      *seed,
		}); err != nil {
			benchLog.Error("chaos soak failed", "err", err)
			os.Exit(1)
		}
		return
	}

	if *hotpath || *hpTrace {
		if err := runHotpath(hotpathConfig{
			nodes:        *hpNodes,
			clients:      *hpClients,
			files:        *hpFiles,
			fileBytes:    *hpFileBytes,
			duration:     *hpDuration,
			seed:         *seed,
			skew:         *hpSkew,
			loadctl:      *hpLoadctl,
			admission:    *hpAdmission,
			serviceDelay: *hpServiceDelay,
			traced:       *hpTrace,
			traceOut:     *hpTraceOut,
		}); err != nil {
			benchLog.Error("hotpath run failed", "err", err)
			os.Exit(1)
		}
		return
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			benchLog.Error("csv dir create failed", "dir", *csvDir, "err", err)
			os.Exit(1)
		}
	}

	var scale experiments.Scale
	switch *scaleName {
	case "paper":
		scale = experiments.PaperScale()
	case "quick":
		scale = experiments.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	scale.Seed = *seed

	run := func(name string, f func(experiments.Scale) interface{ Format() string }) {
		start := time.Now()
		out := f(scale)
		fmt.Println(out.Format())
		fmt.Printf("  [%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
		if *csvDir == "" {
			return
		}
		cw, ok := out.(experiments.CSVWriter)
		if !ok {
			return
		}
		path := filepath.Join(*csvDir, name+".csv")
		file, err := os.Create(path)
		if err != nil {
			benchLog.Error("csv create failed", "path", path, "err", err)
			os.Exit(1)
		}
		if err := cw.WriteCSV(file); err != nil {
			benchLog.Error("csv write failed", "path", path, "err", err)
			os.Exit(1)
		}
		file.Close()
		fmt.Printf("  [wrote %s]\n\n", path)
	}

	all := map[string]func(experiments.Scale) interface{ Format() string }{
		"table1":   func(s experiments.Scale) interface{ Format() string } { return experiments.Table1(s) },
		"fig1":     func(s experiments.Scale) interface{ Format() string } { return experiments.Fig1(s) },
		"fig2":     func(s experiments.Scale) interface{ Format() string } { return experiments.Fig2(s) },
		"fig5a":    func(s experiments.Scale) interface{ Format() string } { return experiments.Fig5a(s) },
		"fig5b":    func(s experiments.Scale) interface{ Format() string } { return experiments.Fig5b(s) },
		"fig6a":    func(s experiments.Scale) interface{ Format() string } { return experiments.Fig6a(s) },
		"fig6b":    func(s experiments.Scale) interface{ Format() string } { return experiments.Fig6b(s) },
		"extrepl":  func(s experiments.Scale) interface{ Format() string } { return experiments.ExtReplication(s) },
		"extvnode": func(s experiments.Scale) interface{ Format() string } { return experiments.ExtVnodeSweep(s) },
	}

	if *exp == "all" {
		for _, name := range []string{
			"table1", "fig1", "fig2", "fig5a", "fig5b", "fig6a", "fig6b",
			"extrepl", "extvnode",
		} {
			run(name, all[name])
		}
		return
	}
	f, ok := all[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	run(*exp, f)
}
