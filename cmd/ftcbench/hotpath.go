package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/workload"
)

// hotpathConfig parameterizes the live concurrency benchmark.
type hotpathConfig struct {
	nodes     int
	clients   int
	files     int
	fileBytes int64
	duration  time.Duration
	seed      int64
}

// runHotpath boots a live in-process cluster and hammers its read path
// from many concurrent clients — the steady-state regime the lock-free
// ring, the sharded NVMe and the pooled wire buffers are built for. It
// prints aggregate reads/sec plus where the reads were served from, so
// a before/after of the concurrency work is one command:
//
//	ftcbench -hotpath -clients 32 -duration 5s
func runHotpath(cfg hotpathConfig) error {
	if cfg.nodes < 1 {
		return fmt.Errorf("-nodes must be >= 1 (got %d)", cfg.nodes)
	}
	if cfg.clients < 1 {
		return fmt.Errorf("-clients must be >= 1 (got %d)", cfg.clients)
	}
	if cfg.files < 1 {
		return fmt.Errorf("-files must be >= 1 (got %d)", cfg.files)
	}
	if cfg.fileBytes < 0 {
		return fmt.Errorf("-filebytes must be >= 0 (got %d)", cfg.fileBytes)
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Nodes:    cfg.nodes,
		Strategy: ftcache.KindNVMe,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	ds := workload.Dataset{
		Name:      "hotpath",
		Prefix:    "hotpath",
		NumFiles:  cfg.files,
		FileBytes: cfg.fileBytes,
	}
	if _, err := c.Stage(ds); err != nil {
		return err
	}
	// Warm every node's cache so the measurement is the steady state
	// (NVMe hits over the transport), not first-epoch PFS faulting.
	if err := c.WarmCache(ds); err != nil {
		return err
	}
	c.FlushMovers()

	fmt.Printf("hotpath: %d nodes, %d clients, %d files x %d B, %s\n",
		cfg.nodes, cfg.clients, cfg.files, cfg.fileBytes, cfg.duration)

	var (
		reads atomic.Int64
		bytes atomic.Int64
		wg    sync.WaitGroup
	)
	ctx := context.Background()
	stop := make(chan struct{})
	errCh := make(chan error, cfg.clients)
	start := time.Now()
	for w := 0; w < cfg.clients; w++ {
		cli, _, err := c.NewClient()
		if err != nil {
			return err
		}
		defer cli.Close()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				data, err := cli.Read(ctx, ds.FilePath(rng.Intn(cfg.files)))
				if err != nil {
					errCh <- fmt.Errorf("client %d: %w", w, err)
					return
				}
				reads.Add(1)
				bytes.Add(int64(len(data)))
			}
		}(w)
	}
	time.Sleep(cfg.duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return err
	default:
	}

	total := reads.Load()
	var hits, misses int64
	for _, n := range c.AliveNodes() {
		h, m, _ := c.Server(n).NVMe().Counters()
		hits += h
		misses += m
	}
	fmt.Printf("  reads        %d\n", total)
	fmt.Printf("  reads/sec    %.0f\n", float64(total)/elapsed.Seconds())
	fmt.Printf("  MB/sec       %.1f\n", float64(bytes.Load())/1e6/elapsed.Seconds())
	fmt.Printf("  nvme hits    %d (%.1f%%)\n", hits, pct(hits, hits+misses))
	pfsReads, _, _ := c.PFS().Counters()
	fmt.Printf("  pfs reads    %d\n", pfsReads)
	if lat := readLatencySnapshot(); lat.Count > 0 {
		fmt.Printf("  read p50     %s\n", fmtDur(lat.Quantile(0.5)))
		fmt.Printf("  read p99     %s\n", fmtDur(lat.Quantile(0.99)))
	}
	printTelemetrySummary()
	return nil
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
