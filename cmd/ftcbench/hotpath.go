package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/loadctl"
	"repro/internal/trace"
	"repro/internal/workload"
)

// hotpathConfig parameterizes the live concurrency benchmark.
type hotpathConfig struct {
	nodes        int
	clients      int
	files        int
	fileBytes    int64
	duration     time.Duration
	seed         int64
	skew         float64       // Zipf exponent; 0 = uniform
	loadctl      bool          // enable client-side load control
	admission    int           // per-server concurrent-read limit; 0 = unlimited
	serviceDelay time.Duration // simulated per-read device service time
	traced       bool          // trace every read and report p99 attribution
	traceOut     string        // also append the attribution table here
}

// runHotpath boots a live in-process cluster and hammers its read path
// from many concurrent clients — the steady-state regime the lock-free
// ring, the sharded NVMe and the pooled wire buffers are built for. It
// prints aggregate reads/sec plus where the reads were served from, so
// a before/after of the concurrency work is one command:
//
//	ftcbench -hotpath -clients 32 -duration 5s
func runHotpath(cfg hotpathConfig) error {
	if cfg.nodes < 1 {
		return fmt.Errorf("-nodes must be >= 1 (got %d)", cfg.nodes)
	}
	if cfg.clients < 1 {
		return fmt.Errorf("-clients must be >= 1 (got %d)", cfg.clients)
	}
	if cfg.files < 1 {
		return fmt.Errorf("-files must be >= 1 (got %d)", cfg.files)
	}
	if cfg.fileBytes < 0 {
		return fmt.Errorf("-filebytes must be >= 0 (got %d)", cfg.fileBytes)
	}
	ccfg := core.ClusterConfig{
		Nodes:          cfg.nodes,
		Strategy:       ftcache.KindNVMe,
		AdmissionLimit: cfg.admission,
		ReadDelay:      cfg.serviceDelay,
	}
	if cfg.loadctl {
		ccfg.LoadControl = &loadctl.Config{}
	}
	c, err := core.NewCluster(ccfg)
	if err != nil {
		return err
	}
	defer c.Close()

	ds := workload.Dataset{
		Name:      "hotpath",
		Prefix:    "hotpath",
		NumFiles:  cfg.files,
		FileBytes: cfg.fileBytes,
	}
	if _, err := c.Stage(ds); err != nil {
		return err
	}
	// Warm every node's cache so the measurement is the steady state
	// (NVMe hits over the transport), not first-epoch PFS faulting.
	if err := c.WarmCache(ds); err != nil {
		return err
	}
	c.FlushMovers()

	// Attribution mode traces the measurement loop only (not staging or
	// warming) at sample rate 1, so the recorded population is the full
	// steady-state workload. Throughput printed by a traced run carries
	// the full tracing cost — use an untraced run for throughput numbers.
	var rec *trace.Recorder
	if cfg.traced {
		rec = trace.Enable(traceCapacity, 1)
		defer trace.Disable()
	}

	fmt.Printf("hotpath: %d nodes, %d clients, %d files x %d B, %s, skew=%.2f loadctl=%v admission=%d servicedelay=%s traced=%v\n",
		cfg.nodes, cfg.clients, cfg.files, cfg.fileBytes, cfg.duration,
		cfg.skew, cfg.loadctl, cfg.admission, cfg.serviceDelay, cfg.traced)

	var (
		reads atomic.Int64
		bytes atomic.Int64
		wg    sync.WaitGroup
	)
	ctx := context.Background()
	stop := make(chan struct{})
	errCh := make(chan error, cfg.clients)
	start := time.Now()
	for w := 0; w < cfg.clients; w++ {
		cli, _, err := c.NewClient()
		if err != nil {
			return err
		}
		defer cli.Close()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// skew > 0 draws file indices Zipf-distributed — the hot-key
			// regime loadctl exists for; skew = 0 keeps the uniform
			// steady-state measurement.
			var next func() int
			if cfg.skew > 0 {
				z := workload.NewZipf(cfg.skew, cfg.files, cfg.seed+int64(w))
				next = z.Next
			} else {
				rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
				next = func() int { return rng.Intn(cfg.files) }
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				data, err := cli.Read(ctx, ds.FilePath(next()))
				if err != nil {
					errCh <- fmt.Errorf("client %d: %w", w, err)
					return
				}
				reads.Add(1)
				bytes.Add(int64(len(data)))
			}
		}(w)
	}
	time.Sleep(cfg.duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return err
	default:
	}

	total := reads.Load()
	var hits, misses int64
	for _, n := range c.AliveNodes() {
		h, m, _ := c.Server(n).NVMe().Counters()
		hits += h
		misses += m
	}
	fmt.Printf("  reads        %d\n", total)
	fmt.Printf("  reads/sec    %.0f\n", float64(total)/elapsed.Seconds())
	fmt.Printf("  MB/sec       %.1f\n", float64(bytes.Load())/1e6/elapsed.Seconds())
	fmt.Printf("  nvme hits    %d (%.1f%%)\n", hits, pct(hits, hits+misses))
	pfsReads, _, _ := c.PFS().Counters()
	fmt.Printf("  pfs reads    %d\n", pfsReads)
	if lat := readLatencySnapshot(); lat.Count > 0 {
		fmt.Printf("  read p50     %s\n", fmtDur(lat.Quantile(0.5)))
		fmt.Printf("  read p99     %s\n", fmtDur(lat.Quantile(0.99)))
	}
	printNodeShares(c)
	printHotSplit()
	printTelemetrySummary()
	if cfg.traced {
		return reportTraceAttribution(rec, cfg.traceOut, benchLog)
	}
	return nil
}

// printNodeShares reports each server's slice of the read traffic — the
// load-balance signal the skew experiments are about. The max share is
// the headline: with n nodes a perfectly balanced run shows 1/n.
func printNodeShares(c *core.Cluster) {
	nodes := c.AliveNodes()
	var total int64
	counts := make([]int64, len(nodes))
	for i, n := range nodes {
		counts[i] = c.Server(n).Reads()
		total += counts[i]
	}
	if total == 0 {
		return
	}
	maxShare := 0.0
	fmt.Println("  per-node read share:")
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	for _, i := range order {
		share := float64(counts[i]) / float64(total)
		if share > maxShare {
			maxShare = share
		}
		fmt.Printf("    %-12s %9d  %5.1f%%\n", nodes[i], counts[i], 100*share)
	}
	fmt.Printf("  max node share %.1f%% (balanced = %.1f%%)\n",
		100*maxShare, 100/float64(len(nodes)))
}

// printHotSplit reports the latency split of hot-key reads by who
// answered: the ring owner, a fanned-out replica, or a hedge leg.
func printHotSplit() {
	rows := []struct{ label, series string }{
		{"owner", "ftc_client_read_owner_latency_seconds"},
		{"replica", "ftc_client_read_replica_latency_seconds"},
		{"hedged", "ftc_client_read_hedged_latency_seconds"},
	}
	printed := false
	for _, r := range rows {
		h := hotSplitSnapshot(r.series)
		if h.Count == 0 {
			continue
		}
		if !printed {
			fmt.Println("  hot-read latency by responder:")
			printed = true
		}
		fmt.Printf("    %-8s count=%-8d p50=%-10s p99=%s\n",
			r.label, h.Count, fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.99)))
	}
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
