package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/hvac"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// chaosConfig parameterizes the fault-injection soak.
type chaosConfig struct {
	nodes     int
	clients   int
	files     int
	fileBytes int64
	duration  time.Duration // fault-schedule horizon
	seed      int64
}

// runChaos boots a live in-process cluster behind the chaos controller,
// runs a seeded random fault schedule against it while readers verify
// every byte, then checks the soak invariants: correct bytes on every
// completed read, no stuck reads, and full ring/tracker convergence
// after the schedule heals. The seed is printed first so any failure
// replays exactly:
//
//	ftcbench -chaos -nodes 16 -duration 5s -seed 42
func runChaos(cfg chaosConfig) error {
	if cfg.nodes < 2 {
		return fmt.Errorf("-nodes must be >= 2 (got %d)", cfg.nodes)
	}
	if cfg.clients < 1 {
		return fmt.Errorf("-clients must be >= 1 (got %d)", cfg.clients)
	}
	if cfg.files < 1 {
		return fmt.Errorf("-files must be >= 1 (got %d)", cfg.files)
	}
	const (
		rpcTimeout = 60 * time.Millisecond
		readBudget = 15 * time.Second
	)
	fmt.Printf("chaos: %d nodes, %d clients, %d files x %d B, horizon %s, seed=%d (replay: -seed %d)\n",
		cfg.nodes, cfg.clients, cfg.files, cfg.fileBytes, cfg.duration, cfg.seed, cfg.seed)

	ctl := chaos.New(rpc.NewInprocNetwork(), chaos.Config{Seed: cfg.seed, DialTimeout: 50 * time.Millisecond})
	c, err := core.NewCluster(core.ClusterConfig{
		Nodes:        cfg.nodes,
		Strategy:     ftcache.KindNVMe,
		RPCTimeout:   rpcTimeout,
		TimeoutLimit: 2,
		Network:      ctl.Network("boot"),
		Retry:        &rpc.RetryPolicy{},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	ds := workload.Dataset{Name: "chaos", Prefix: "chaos/train", NumFiles: cfg.files, FileBytes: cfg.fileBytes}
	if _, err := c.Stage(ds); err != nil {
		return err
	}
	if err := c.WarmCache(ds); err != nil {
		return err
	}
	c.FlushMovers()
	c.PFS().ResetCounters()
	paths := ds.AllPaths()

	type chaosClient struct {
		cli  *hvac.Client
		ring interface{ Len() int }
		hb   *cluster.Heartbeat
	}
	clients := make([]*chaosClient, cfg.clients)
	for i := range clients {
		cli, router, err := c.NewClientNet(ctl.Network(fmt.Sprintf("cli-%d", i)))
		if err != nil {
			return err
		}
		cc := &chaosClient{cli: cli, ring: router.(*ftcache.RingRecache).Ring()}
		cc.hb = cluster.NewHeartbeat(cli.Tracker(), cli, cluster.HeartbeatConfig{
			Interval:        15 * time.Millisecond,
			Timeout:         rpcTimeout,
			ReviveThreshold: 2,
			OnRevive: func(n cluster.NodeID) {
				go cli.Rejoin(context.Background(), n, hvac.RejoinOptions{Probes: 1, Keys: paths})
			},
		})
		cc.hb.Start()
		clients[i] = cc
		defer cli.Close()
		defer cc.hb.Stop()
	}

	nodeNames := make([]string, 0, cfg.nodes)
	for _, n := range c.Nodes() {
		nodeNames = append(nodeNames, string(n))
	}
	plan := chaos.GeneratePlan(cfg.seed, nodeNames, chaos.PlanConfig{Horizon: cfg.duration})
	fmt.Printf("  plan         %s\n", plan.Summary())

	var (
		reads      atomic.Int64
		transient  atomic.Int64
		wrongBytes atomic.Int64
		stuckReads atomic.Int64
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for ci, cc := range clients {
		for g := 0; g < 2; g++ {
			readers.Add(1)
			cli := cc.cli
			rng := rand.New(rand.NewSource(cfg.seed ^ int64(ci*7+g+1)))
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					i := rng.Intn(ds.NumFiles)
					want := ds.SampleContent(i)
					deadline := time.Now().Add(readBudget)
					for {
						ctx, cancel := context.WithDeadline(context.Background(), deadline)
						data, err := cli.Read(ctx, paths[i])
						cancel()
						if err == nil {
							reads.Add(1)
							if !bytes.Equal(data, want) {
								wrongBytes.Add(1)
							}
							break
						}
						if time.Now().After(deadline) {
							stuckReads.Add(1)
							break
						}
						transient.Add(1)
					}
				}
			}()
		}
	}

	planCtx, planCancel := context.WithTimeout(context.Background(), cfg.duration+5*time.Second)
	plan.Execute(planCtx, ctl, chaos.Actions{
		Crash: func(node string, kill bool) {
			mode := core.FailUnresponsive
			if kill {
				mode = core.FailKill
			}
			c.Fail(core.NodeID(node), mode)
		},
		Restart: func(node string) { c.Revive(core.NodeID(node)) },
	})
	planCancel()
	ctl.HealAll()

	converged := func() bool {
		for _, cc := range clients {
			if cc.ring.Len() != cfg.nodes || len(cc.cli.Tracker().Alive()) != cfg.nodes {
				return false
			}
		}
		return true
	}
	healStart := time.Now()
	healDeadline := healStart.Add(20 * time.Second)
	convergedOK := true
	for !converged() {
		if time.Now().After(healDeadline) {
			convergedOK = false
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	healTime := time.Since(healStart).Round(time.Millisecond)
	close(stop)
	readers.Wait()

	// Post-heal verification epoch by every client.
	verifyErrs := 0
	for _, cc := range clients {
		for j := 0; j < ds.NumFiles; j++ {
			if err := core.VerifyRead(context.Background(), cc.cli, ds, j); err != nil {
				verifyErrs++
			}
		}
	}

	reg := telemetry.Default()
	pfsReads, _, _ := c.PFS().Counters()
	fmt.Printf("  faults       %s\n", ctl.FormatFaults())
	fmt.Printf("  reads        %d (verified bytes)\n", reads.Load())
	fmt.Printf("  transient    %d (retried within budget)\n", transient.Load())
	fmt.Printf("  pfs reads    %d (fallbacks during faults)\n", pfsReads)
	fmt.Printf("  retries      attempts=%d exhausted=%d\n",
		reg.Counter("ftc_client_retry_attempts_total").Load(),
		reg.Counter("ftc_client_retry_exhausted_total").Load())
	fmt.Printf("  rejoins      %d (warmed %d files / %d bytes)\n",
		reg.Counter("ftc_client_rejoins_total").Load(),
		reg.Counter("ftc_client_rejoin_warm_files_total").Load(),
		reg.Counter("ftc_client_rejoin_warm_bytes_total").Load())
	fmt.Printf("  heal time    %s (all rings + trackers full)\n", healTime)

	violations := 0
	check := func(ok bool, format string, args ...interface{}) {
		if !ok {
			violations++
			fmt.Printf("  VIOLATION    %s\n", fmt.Sprintf(format, args...))
		}
	}
	check(wrongBytes.Load() == 0, "%d reads returned wrong bytes", wrongBytes.Load())
	check(stuckReads.Load() == 0, "%d reads stuck past %s budget", stuckReads.Load(), readBudget)
	check(convergedOK, "rings/trackers not converged within 20s of heal")
	check(verifyErrs == 0, "%d post-heal verification errors", verifyErrs)
	check(reads.Load() > 0, "zero reads completed")
	if violations > 0 {
		return fmt.Errorf("chaos soak failed: %d invariant violation(s), replay with -chaos -seed %d", violations, cfg.seed)
	}
	fmt.Println("  invariants   all hold (correct bytes, no stuck reads, converged)")
	return nil
}
