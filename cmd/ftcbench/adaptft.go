package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/ftpolicy"
	"repro/internal/hvac"
	"repro/internal/rpc"
	"repro/internal/workload"
)

// adaptftConfig parameterizes the adaptive-vs-static comparison.
type adaptftConfig struct {
	nodes     int
	clients   int
	files     int
	fileBytes int64
	unit      time.Duration // per-phase duration base
	pfsDelay  time.Duration // injected PFS read latency in contention phases
	readDelay time.Duration // per-read device service time on servers
	seeds     []int64
	reps      int // best-of-N runs per policy, cancelling machine noise
	out       string
}

// adaptftPolicyRun is one (schedule, seed, policy) measurement.
type adaptftPolicyRun struct {
	Policy      string              `json:"policy"`
	Epochs      float64             `json:"epochs"`        // mean dataset sweeps per reader within the window
	MeanEpochMs float64             `json:"mean_epoch_ms"` // window / epochs — the whole-schedule epoch time
	Reads       int64               `json:"reads"`
	Transient   int64               `json:"transient_retries"`
	WrongBytes  int64               `json:"wrong_bytes"`
	Stuck       int64               `json:"stuck_reads"`
	DNF         bool                `json:"dnf"` // aborted (NoFT death) before the window closed
	PhaseReads  []int64             `json:"phase_reads"`
	Switches    int64               `json:"switches,omitempty"`
	Decisions   []ftpolicy.Decision `json:"decisions,omitempty"`
}

// adaptftSchedule is one schedule × seed block.
type adaptftSchedule struct {
	Schedule     string             `json:"schedule"`
	Seed         int64              `json:"seed"`
	WindowMs     float64            `json:"window_ms"`
	Runs         []adaptftPolicyRun `json:"runs"`
	AdaptiveWins bool               `json:"adaptive_wins"` // beat every static that finished (and no static DNF excuse: noft counts as beaten by finishing)
}

// adaptftReport is the BENCH_adaptft.json shape.
type adaptftReport struct {
	Nodes     int               `json:"nodes"`
	Clients   int               `json:"clients"`
	Files     int               `json:"files"`
	FileBytes int64             `json:"file_bytes"`
	Unit      string            `json:"unit"`
	PFSDelay  string            `json:"pfs_delay"`
	ReadDelay string            `json:"read_delay"`
	Schedules []adaptftSchedule `json:"schedules"`
	AllWins   bool              `json:"all_wins"`
}

// runAdaptFT measures whole-schedule epoch time for each static policy
// and the adaptive controller across seeded phase-shift schedules.
// Readers sweep the dataset continuously for exactly the schedule
// window; the score is the mean time per dataset sweep. The adaptive
// run must beat every static policy on every schedule × seed:
//
//	ftcbench -adaptft -nodes 16 -clients 4
func runAdaptFT(cfg adaptftConfig) error {
	if cfg.nodes < 4 {
		return fmt.Errorf("-nodes must be >= 4 (got %d)", cfg.nodes)
	}
	schedules := []struct {
		name   string
		phases []chaos.Phase
	}{
		{"calm-burst-heal-contention", chaos.PhasesCalmBurstHealContention(cfg.unit, cfg.pfsDelay)},
		{"contention-first", chaos.PhasesContentionFirst(cfg.unit, cfg.pfsDelay)},
	}
	policies := []ftcache.StrategyKind{ftcache.KindNoFT, ftcache.KindPFS, ftcache.KindNVMe, ftcache.KindAdaptive}

	fmt.Printf("adaptft: %d nodes, %d clients, %d files x %d B, unit %s, pfs-delay %s, read-delay %s, seeds %v\n",
		cfg.nodes, cfg.clients, cfg.files, cfg.fileBytes, cfg.unit, cfg.pfsDelay, cfg.readDelay, cfg.seeds)

	rep := adaptftReport{
		Nodes: cfg.nodes, Clients: cfg.clients, Files: cfg.files, FileBytes: cfg.fileBytes,
		Unit: cfg.unit.String(), PFSDelay: cfg.pfsDelay.String(), ReadDelay: cfg.readDelay.String(),
		AllWins: true,
	}
	for _, sched := range schedules {
		for _, seed := range cfg.seeds {
			block := adaptftSchedule{Schedule: sched.name, Seed: seed}
			fmt.Printf("\nschedule %s seed=%d (%s)\n", sched.name, seed, chaos.PhaseSummary(sched.phases))
			fmt.Printf("  %-10s %10s %14s %10s %10s %6s\n", "POLICY", "EPOCHS", "EPOCH-TIME", "READS", "RETRIES", "DNF")
			for _, pol := range policies {
				// Best-of-reps: a transient machine-level slowdown (GC,
				// noisy neighbour) taxes whichever single run it lands on;
				// taking each policy's best run cancels it fairly.
				reps := cfg.reps
				if reps < 1 {
					reps = 1
				}
				var run adaptftPolicyRun
				var windowMs float64
				for rep := 0; rep < reps; rep++ {
					r, w, err := runAdaptFTOne(cfg, sched.phases, seed, pol)
					if err != nil {
						return fmt.Errorf("%s seed=%d %s: %w", sched.name, seed, pol, err)
					}
					if rep == 0 || betterRun(r, run) {
						run, windowMs = r, w
					}
				}
				block.WindowMs = windowMs
				block.Runs = append(block.Runs, run)
				dnf := ""
				if run.DNF {
					dnf = "yes"
				}
				perPhase := ""
				for pi, n := range run.PhaseReads {
					perPhase += fmt.Sprintf(" %s=%d", sched.phases[pi].Name, n)
				}
				fmt.Printf("  %-10s %10.2f %12.1fms %10d %10d %6s |%s\n",
					run.Policy, run.Epochs, run.MeanEpochMs, run.Reads, run.Transient, dnf, perPhase)
			}
			block.AdaptiveWins = adaptiveWins(block.Runs)
			if !block.AdaptiveWins {
				rep.AllWins = false
			}
			fmt.Printf("  adaptive wins: %v\n", block.AdaptiveWins)
			rep.Schedules = append(rep.Schedules, block)
		}
	}

	fmt.Printf("\nadaptive wins on all %d schedule x seed blocks: %v\n", len(rep.Schedules), rep.AllWins)
	if cfg.out != "" {
		if err := os.MkdirAll(filepath.Dir(cfg.out), 0o755); err != nil {
			return err
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", cfg.out)
	}
	if !rep.AllWins {
		return fmt.Errorf("adaptft: adaptive lost at least one schedule x seed block")
	}
	return nil
}

// betterRun reports whether a is a better measurement than b: finishing
// beats a DNF, then higher epoch throughput wins.
func betterRun(a, b adaptftPolicyRun) bool {
	if a.DNF != b.DNF {
		return !a.DNF
	}
	return a.Epochs > b.Epochs
}

// adaptiveWins reports whether the adaptive run's whole-schedule epoch
// time beats every static run's. A static DNF (NoFT dying mid-schedule)
// is beaten by finishing at all.
func adaptiveWins(runs []adaptftPolicyRun) bool {
	var adaptive *adaptftPolicyRun
	for i := range runs {
		if runs[i].Policy == string(ftcache.KindAdaptive) {
			adaptive = &runs[i]
		}
	}
	if adaptive == nil || adaptive.DNF || adaptive.WrongBytes != 0 || adaptive.Stuck != 0 {
		return false
	}
	for i := range runs {
		r := &runs[i]
		if r.Policy == string(ftcache.KindAdaptive) || r.DNF {
			continue
		}
		if adaptive.MeanEpochMs >= r.MeanEpochMs {
			return false
		}
	}
	return true
}

// runAdaptFTOne boots a fresh cluster, runs the phased schedule against
// it while readers sweep the dataset, and scores the policy.
func runAdaptFTOne(cfg adaptftConfig, phases []chaos.Phase, seed int64, policy ftcache.StrategyKind) (adaptftPolicyRun, float64, error) {
	const (
		rpcTimeout = 25 * time.Millisecond
		readBudget = 15 * time.Second
	)
	run := adaptftPolicyRun{Policy: string(policy)}

	netctl := chaos.New(rpc.NewInprocNetwork(), chaos.Config{Seed: seed, DialTimeout: 50 * time.Millisecond})
	cl, err := core.NewCluster(core.ClusterConfig{
		Nodes:        cfg.nodes,
		Strategy:     policy,
		RPCTimeout:   rpcTimeout,
		TimeoutLimit: 2,
		Network:      netctl.Network("boot"),
		Retry:        &rpc.RetryPolicy{},
		ReadDelay:    cfg.readDelay,
	})
	if err != nil {
		return run, 0, err
	}
	defer cl.Close()
	ds := workload.Dataset{Name: "adaptft", Prefix: "adaptft/train", NumFiles: cfg.files, FileBytes: cfg.fileBytes}
	if _, err := cl.Stage(ds); err != nil {
		return run, 0, err
	}
	if err := cl.WarmCache(ds); err != nil {
		return run, 0, err
	}
	cl.FlushMovers()
	paths := ds.AllPaths()
	defer cl.PFS().SetReadDelay(0)

	// BurstQuietTicks must outlast the gap between declaration clusters
	// (burst crashes land ~unit/10 apart, declarations a couple of RPC
	// timeouts later) or the controller flaps back to the default
	// strategy between crashes and spends half the burst in the wrong
	// mode.
	polCfg := ftpolicy.Config{
		Interval:        20 * time.Millisecond,
		FailHigh:        2,
		CalmTicks:       8,
		BurstQuietTicks: 10,
		AllowNoFT:       true,
		PFSLatencyHigh:  time.Millisecond,
	}
	var pol *ftpolicy.Controller
	if policy == ftcache.KindAdaptive {
		pol = ftpolicy.New(polCfg)
		pol.SetPFSProbe(cl.PolicyProbe(paths[0]))
	}

	type benchClient struct {
		cli *hvac.Client
		hb  *cluster.Heartbeat
	}
	clients := make([]*benchClient, cfg.clients)
	for i := range clients {
		var cli *hvac.Client
		var err error
		if pol != nil {
			cli, _, err = cl.NewAdaptiveClientNet(netctl.Network(fmt.Sprintf("cli-%d", i)), pol)
		} else {
			cli, _, err = cl.NewClientNet(netctl.Network(fmt.Sprintf("cli-%d", i)))
		}
		if err != nil {
			return run, 0, err
		}
		bc := &benchClient{cli: cli}
		bc.hb = cluster.NewHeartbeat(cli.Tracker(), cli, cluster.HeartbeatConfig{
			Interval:        15 * time.Millisecond,
			Timeout:         rpcTimeout,
			ReviveThreshold: 2,
			OnRevive: func(n cluster.NodeID) {
				go cli.Rejoin(context.Background(), n, hvac.RejoinOptions{Probes: 1, Keys: paths})
			},
		})
		bc.hb.Start()
		clients[i] = bc
		defer cli.Close()
		defer bc.hb.Stop()
	}

	var polDone chan struct{}
	var polCancel context.CancelFunc
	if pol != nil {
		var polCtx context.Context
		polCtx, polCancel = context.WithCancel(context.Background())
		polDone = make(chan struct{})
		go func() {
			defer close(polDone)
			pol.Run(polCtx)
		}()
		defer func() {
			polCancel()
			<-polDone
		}()
	}

	nodeNames := make([]string, 0, cfg.nodes)
	for _, n := range cl.Nodes() {
		nodeNames = append(nodeNames, string(n))
	}
	plan := chaos.GeneratePhasedPlan(seed, nodeNames, phases)

	// Readers sweep the dataset in seeded-shuffled order for exactly the
	// schedule window; completed reads convert to fractional epochs.
	var (
		reads      atomic.Int64
		transient  atomic.Int64
		wrongBytes atomic.Int64
		stuck      atomic.Int64
		aborted    atomic.Int64
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readersPerClient := 2
	for ci, bc := range clients {
		for g := 0; g < readersPerClient; g++ {
			readers.Add(1)
			cli := bc.cli
			rng := rand.New(rand.NewSource(seed ^ int64(ci*7+g+1)))
			go func() {
				defer readers.Done()
				order := rng.Perm(ds.NumFiles)
				pos := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					if pos == ds.NumFiles {
						pos = 0
						rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
					}
					i := order[pos]
					pos++
					want := ds.SampleContent(i)
					deadline := time.Now().Add(readBudget)
					for {
						ctx, cancel := context.WithDeadline(context.Background(), deadline)
						data, err := cli.Read(ctx, paths[i])
						cancel()
						if err == nil {
							reads.Add(1)
							if !bytes.Equal(data, want) {
								wrongBytes.Add(1)
							}
							break
						}
						if err == hvac.ErrAborted {
							// NoFT death: this reader's job is over.
							aborted.Add(1)
							return
						}
						select {
						case <-stop:
							return
						default:
						}
						if time.Now().After(deadline) {
							stuck.Add(1)
							break
						}
						transient.Add(1)
					}
				}
			}()
		}
	}

	// Sample the read counter at each phase boundary so the per-phase
	// throughput shows which regime a policy wins or loses.
	phaseReads := make([]int64, len(phases))
	phaseDone := make(chan struct{})
	go func() {
		defer close(phaseDone)
		prev := int64(0)
		for pi, ph := range phases {
			select {
			case <-stop:
				// Window closed inside this phase: attribute the tail here.
				phaseReads[pi] = reads.Load() - prev
				return
			case <-time.After(ph.Duration):
			}
			now := reads.Load()
			phaseReads[pi] = now - prev
			prev = now
		}
	}()

	// Collect before the window opens so one run's garbage doesn't tax
	// the next run's measurement.
	runtime.GC()

	windowStart := time.Now()
	planCtx, planCancel := context.WithTimeout(context.Background(), plan.Horizon+5*time.Second)
	plan.Execute(planCtx, netctl, chaos.Actions{
		Crash: func(node string, kill bool) {
			mode := core.FailUnresponsive
			if kill {
				mode = core.FailKill
			}
			_ = cl.Fail(core.NodeID(node), mode)
		},
		Restart:     func(node string) { _ = cl.Revive(core.NodeID(node)) },
		SetPFSDelay: cl.PFS().SetReadDelay,
	})
	planCancel()
	window := time.Since(windowStart)
	close(stop)
	readers.Wait()
	<-phaseDone
	netctl.HealAll()
	run.PhaseReads = phaseReads

	windowMs := float64(window) / float64(time.Millisecond)
	totalReaders := float64(cfg.clients * readersPerClient)
	run.Reads = reads.Load()
	run.Transient = transient.Load()
	run.WrongBytes = wrongBytes.Load()
	run.Stuck = stuck.Load()
	run.DNF = aborted.Load() > 0
	run.Epochs = float64(run.Reads) / float64(ds.NumFiles) / totalReaders
	if run.Epochs > 0 {
		run.MeanEpochMs = windowMs / run.Epochs
	}
	if pol != nil {
		run.Switches = pol.Switches()
		run.Decisions = pol.Decisions(0)
		if err := ftpolicy.Replay(polCfg, run.Decisions); err != nil {
			return run, windowMs, fmt.Errorf("decision log does not replay: %w", err)
		}
	}
	return run, windowMs, nil
}
