package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/hvac"
	"repro/internal/workload"
)

// memtierConfig parameterizes the RAM-tier A/B benchmark: two identical
// Zipf-skewed runs against the same per-node memory budget, once with
// the whole budget as NVMe cache and once with a slice carved out for
// the in-memory hot-object tier.
type memtierConfig struct {
	nodes        int
	clients      int
	files        int
	fileBytes    int64
	duration     time.Duration
	seed         int64
	skew         float64
	ramFrac      float64       // fraction of the per-node budget given to RAM in the ON phase
	budget       int64         // per-node memory budget; 0 = files*fileBytes
	serviceDelay time.Duration // simulated NVMe device service time
	out          string        // JSON result path ('' = stdout only)
}

// memtierHotK is how many of the lowest (hottest) Zipf file indices
// count as "hot" when splitting latency percentiles. With skew 1.1 over
// hundreds of files the top 16 indices carry most of the traffic, so
// their p50 is the number the RAM tier is built to move.
const memtierHotK = 16

// memtierPhase is one side of the A/B, serialized into
// results/BENCH_memtier.json.
type memtierPhase struct {
	RAMTier     bool    `json:"ram_tier"`
	RAMBytes    int64   `json:"ram_capacity"`
	NVMeBytes   int64   `json:"nvme_capacity"`
	Reads       int64   `json:"reads"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	HotP50Us    float64 `json:"hot_p50_us"`
	HotP99Us    float64 `json:"hot_p99_us"`
	ServedRAM   int64   `json:"served_ram"`
	ServedNVMe  int64   `json:"served_nvme"`
	ServedPFS   int64   `json:"served_pfs"`
}

type memtierReport struct {
	Bench          string       `json:"bench"`
	Nodes          int          `json:"nodes"`
	Clients        int          `json:"clients"`
	Files          int          `json:"files"`
	FileBytes      int64        `json:"file_bytes"`
	Skew           float64      `json:"skew"`
	Budget         int64        `json:"node_budget_bytes"`
	RAMSlice       int64        `json:"ram_slice_bytes"`
	HotK           int          `json:"hot_k"`
	ServiceDelayUs float64      `json:"service_delay_us"`
	Seconds        float64      `json:"seconds_per_phase"`
	Seed           int64        `json:"seed"`
	Off            memtierPhase `json:"tier_off"`
	On             memtierPhase `json:"tier_on"`
	HotP50Speedup  float64      `json:"hot_p50_speedup"`
}

// runMemtierAB answers the tiering question with one command: does
// carving a RAM slice out of the same per-node memory budget buy hot
// reads a measurable p50 drop, or would those bytes have been worth
// more as NVMe capacity? Both phases stage, warm and measure the same
// Zipf workload with the same seed; only the budget split differs.
//
//	ftcbench -memtier -skew 1.1 -duration 3s
func runMemtierAB(cfg memtierConfig) error {
	if cfg.nodes < 1 || cfg.clients < 1 || cfg.files < 1 {
		return fmt.Errorf("-nodes, -clients and -files must all be >= 1")
	}
	if cfg.skew <= 0 {
		return fmt.Errorf("-memtier needs a skewed workload (-skew > 0); a uniform pattern has no hot set to promote")
	}
	if cfg.ramFrac <= 0 || cfg.ramFrac >= 1 {
		return fmt.Errorf("-ramfrac must be in (0,1), got %g", cfg.ramFrac)
	}
	if cfg.budget <= 0 {
		// Default per-node budget: the full dataset. Each node only owns
		// ~1/nodes of it under the ring, so NVMe is comfortably sized in
		// both phases and the A/B isolates the tier's latency effect
		// rather than a capacity cliff.
		cfg.budget = int64(cfg.files) * cfg.fileBytes
		if cfg.budget < 1<<16 {
			cfg.budget = 1 << 16
		}
	}
	ramSlice := int64(float64(cfg.budget) * cfg.ramFrac)

	fmt.Printf("memtier A/B: %d nodes, %d clients, %d files x %d B, %s/phase, skew=%.2f servicedelay=%s\n",
		cfg.nodes, cfg.clients, cfg.files, cfg.fileBytes, cfg.duration, cfg.skew, cfg.serviceDelay)
	fmt.Printf("  per-node budget %d B: off = nvme %d | on = ram %d + nvme %d\n",
		cfg.budget, cfg.budget, ramSlice, cfg.budget-ramSlice)

	off, err := runMemtierPhase(cfg, 0, cfg.budget)
	if err != nil {
		return fmt.Errorf("tier-off phase: %w", err)
	}
	on, err := runMemtierPhase(cfg, ramSlice, cfg.budget-ramSlice)
	if err != nil {
		return fmt.Errorf("tier-on phase: %w", err)
	}

	rep := memtierReport{
		Bench:          "memtier_ab",
		Nodes:          cfg.nodes,
		Clients:        cfg.clients,
		Files:          cfg.files,
		FileBytes:      cfg.fileBytes,
		Skew:           cfg.skew,
		Budget:         cfg.budget,
		RAMSlice:       ramSlice,
		HotK:           memtierHotK,
		ServiceDelayUs: float64(cfg.serviceDelay) / float64(time.Microsecond),
		Seconds:        cfg.duration.Seconds(),
		Seed:           cfg.seed,
		Off:            off,
		On:             on,
	}
	if on.HotP50Us > 0 {
		rep.HotP50Speedup = off.HotP50Us / on.HotP50Us
	}

	fmt.Printf("\n  %-22s %14s %14s\n", "", "tier off", "tier on")
	row := func(label, format string, a, b any) {
		fmt.Printf("  %-22s %14s %14s\n", label, fmt.Sprintf(format, a), fmt.Sprintf(format, b))
	}
	row("reads/sec", "%.0f", off.ReadsPerSec, on.ReadsPerSec)
	row("read p50", "%s", usDur(off.P50Us), usDur(on.P50Us))
	row("read p99", "%s", usDur(off.P99Us), usDur(on.P99Us))
	row(fmt.Sprintf("hot p50 (top %d)", memtierHotK), "%s", usDur(off.HotP50Us), usDur(on.HotP50Us))
	row(fmt.Sprintf("hot p99 (top %d)", memtierHotK), "%s", usDur(off.HotP99Us), usDur(on.HotP99Us))
	row("served ram", "%d", off.ServedRAM, on.ServedRAM)
	row("served nvme", "%d", off.ServedNVMe, on.ServedNVMe)
	row("served pfs", "%d", off.ServedPFS, on.ServedPFS)
	fmt.Printf("  hot p50 speedup        %.2fx\n", rep.HotP50Speedup)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if cfg.out != "" {
		if err := os.MkdirAll(filepath.Dir(cfg.out), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", cfg.out)
	} else {
		fmt.Println(string(blob))
	}
	return nil
}

// latSample is one measured read: its wall latency and whether the file
// index falls in the hot head of the Zipf distribution.
type latSample struct {
	d   time.Duration
	hot bool
}

// runMemtierPhase boots a fresh cluster with the given tier split,
// stages and warms the dataset, then drives the Zipf workload for
// cfg.duration, recording per-read latencies in-process for exact
// (non-bucketed) percentiles. The first quarter of the window is an
// unrecorded warm-up so the ON phase measures the steady state after
// sketch-driven promotion, not the promotion transient.
func runMemtierPhase(cfg memtierConfig, ramCap, nvmeCap int64) (memtierPhase, error) {
	ph := memtierPhase{RAMTier: ramCap > 0, RAMBytes: ramCap, NVMeBytes: nvmeCap}
	c, err := core.NewCluster(core.ClusterConfig{
		Nodes:        cfg.nodes,
		Strategy:     ftcache.KindNVMe,
		NVMeCapacity: nvmeCap,
		RAMCapacity:  ramCap,
		ReadDelay:    cfg.serviceDelay,
	})
	if err != nil {
		return ph, err
	}
	defer c.Close()

	ds := workload.Dataset{
		Name:      "memtier",
		Prefix:    "memtier",
		NumFiles:  cfg.files,
		FileBytes: cfg.fileBytes,
	}
	if _, err := c.Stage(ds); err != nil {
		return ph, err
	}
	if err := c.WarmCache(ds); err != nil {
		return ph, err
	}
	c.FlushMovers()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []latSample
	)
	ctx := context.Background()
	stop := make(chan struct{})
	errCh := make(chan error, cfg.clients)
	start := time.Now()
	warmEnd := start.Add(cfg.duration / 4)
	clients := make([]*hvac.Client, 0, cfg.clients)
	for w := 0; w < cfg.clients; w++ {
		cli, _, err := c.NewClient()
		if err != nil {
			return ph, err
		}
		clients = append(clients, cli)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			z := workload.NewZipf(cfg.skew, cfg.files, cfg.seed+int64(w))
			local := make([]latSample, 0, 1<<14)
			for {
				select {
				case <-stop:
					mu.Lock()
					samples = append(samples, local...)
					mu.Unlock()
					return
				default:
				}
				idx := z.Next()
				t0 := time.Now()
				if _, err := cli.Read(ctx, ds.FilePath(idx)); err != nil {
					errCh <- fmt.Errorf("client %d: %w", w, err)
					return
				}
				if t0.After(warmEnd) {
					local = append(local, latSample{d: time.Since(t0), hot: idx < memtierHotK})
				}
			}
		}(w)
	}
	time.Sleep(cfg.duration)
	close(stop)
	wg.Wait()
	measured := time.Since(warmEnd)
	select {
	case err := <-errCh:
		return ph, err
	default:
	}
	for _, cli := range clients {
		st := cli.Stats()
		ph.ServedRAM += st.ServedRAM
		ph.ServedNVMe += st.ServedNVMe
		ph.ServedPFS += st.ServedPFS + st.DirectPFS
		cli.Close()
	}

	all := make([]time.Duration, 0, len(samples))
	hot := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		all = append(all, s.d)
		if s.hot {
			hot = append(hot, s.d)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	ph.Reads = int64(len(all))
	ph.ReadsPerSec = float64(len(all)) / measured.Seconds()
	ph.P50Us = exactQuantileUs(all, 0.5)
	ph.P99Us = exactQuantileUs(all, 0.99)
	ph.HotP50Us = exactQuantileUs(hot, 0.5)
	ph.HotP99Us = exactQuantileUs(hot, 0.99)
	return ph, nil
}

// exactQuantileUs reads quantile q out of an already-sorted latency
// slice, in microseconds. Exact order statistics, not histogram
// interpolation: the A/B is about small p50 shifts that bucketed
// quantiles would smear.
func exactQuantileUs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}

func usDur(us float64) string {
	return time.Duration(us * float64(time.Microsecond)).Round(100 * time.Nanosecond).String()
}
