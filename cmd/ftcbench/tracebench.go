package main

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/trace"
)

// traceCapacity sizes the attribution run's flight recorder. The
// analysis window is the most recent traceCapacity completed fragments
// (client roots and server fragments share the ring), which at hotpath
// rates is the last second or so of the run — a steady-state sample.
const traceCapacity = 1 << 15

// component indices of the p99 decomposition. owner/replica/hedge/pfs
// are mutually exclusive per request (whoever served the winning
// response); queue and storage are the server-side share of that
// serving leg; retry is wall-clock burned on failed attempts before
// the serving one; other is the remainder (coalesce wait, routing,
// transport) — so the components sum to the end-to-end duration by
// construction.
const (
	compOwner = iota
	compReplica
	compHedge
	compPFS
	compRetry
	compQueue
	compStorage
	compOther
	compCount
)

var compNames = [compCount]string{
	"owner", "replica", "hedge", "pfs", "retry", "queue", "storage", "other",
}

// readDecomp is one client read's additive decomposition.
type readDecomp struct {
	id    trace.TraceID
	total time.Duration
	class int // compOwner | compReplica | compHedge | compPFS
	parts [compCount]time.Duration
}

func annot(sp *trace.SpanRecord, key string) string {
	for _, a := range sp.Annotations {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

func annotNs(sp *trace.SpanRecord, key string) time.Duration {
	v := annot(sp, key)
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0
	}
	return time.Duration(n)
}

// decomposeRead splits one successful client.read trace into additive
// components. fragments are this trace's server-side fragments (same
// TraceID, recorded by the servers the request touched).
func decomposeRead(tr *trace.Trace, fragments []*trace.Trace) readDecomp {
	d := readDecomp{id: tr.ID, total: tr.Duration, class: compOwner}

	// The serving attempt decides the responder class, mirroring the
	// responder histograms in hvac: a hedge win is compHedge, a fan-out
	// winner other than the routed node is compReplica, and anything
	// else — including the no-fan-out fast path — is compOwner.
	var servingNode string
	var serve time.Duration
	var retryRaw time.Duration
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		switch sp.Name {
		case "read.attempt":
			if sp.Err != "" {
				retryRaw += sp.Duration
				continue
			}
			servingNode = annot(sp, "node")
			if w := annot(sp, "winner"); w != "" && w != servingNode {
				d.class = compReplica
				servingNode = w
			}
			if annot(sp, "hedge") == "win" {
				d.class = compHedge
			}
		case "read.leg":
			if sp.Err != "" {
				retryRaw += sp.Duration
			}
		case "pfs.read":
			if sp.Err == "" {
				d.class = compPFS
				serve = sp.Duration
				servingNode = ""
			}
		}
	}
	if d.class != compPFS {
		// The serving rpc.read is the successful one against the serving
		// node (fan-out losers are cancelled or carry a fail annotation).
		for i := range tr.Spans {
			sp := &tr.Spans[i]
			if sp.Name != "rpc.read" || sp.Err != "" || annot(sp, "source") == "" {
				continue
			}
			if servingNode == "" || annot(sp, "node") == servingNode {
				serve = sp.Duration
				break
			}
		}
	}

	// Server-side share of the serving leg, from the matching fragment.
	var queueRaw, storageRaw time.Duration
	for _, fr := range fragments {
		if fr.Root != "server.read" || len(fr.Spans) == 0 {
			continue
		}
		var root *trace.SpanRecord
		for i := range fr.Spans {
			if fr.Spans[i].Name == "server.read" {
				root = &fr.Spans[i]
				break
			}
		}
		if root == nil || (servingNode != "" && annot(root, "node") != servingNode) {
			continue
		}
		queueRaw = annotNs(root, "conn_queue_ns") + annotNs(root, "admission_wait_ns") + annotNs(root, "device_wait_ns")
		for i := range fr.Spans {
			if fr.Spans[i].Name == "storage.read" {
				storageRaw = fr.Spans[i].Duration
			}
		}
		break
	}

	// Clamp hierarchically so the parts always sum to exactly total:
	// queue and storage are carved out of the serving leg, retry out of
	// the remainder, and other absorbs what is left.
	clamp := func(v, hi time.Duration) time.Duration {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	serve = clamp(serve, d.total)
	queue := clamp(queueRaw, serve)
	storage := clamp(storageRaw, serve-queue)
	retry := clamp(retryRaw, d.total-serve)
	d.parts[d.class] = serve - queue - storage
	d.parts[compQueue] = queue
	d.parts[compStorage] = storage
	d.parts[compRetry] = retry
	d.parts[compOther] = d.total - serve - retry
	return d
}

// traceAttribution computes the p99 decomposition over a recorder
// snapshot: the mean of each component across the reads at or above
// the end-to-end p99 ("where does a p99 read's time go"), alongside
// the all-reads mean for contrast.
type traceAttribution struct {
	Reads    int
	TailSize int
	P99      time.Duration
	TailMean [compCount]time.Duration
	TailTot  time.Duration
	AllMean  [compCount]time.Duration
	AllTot   time.Duration
	Tail     []readDecomp // slowest-first exemplars (the tail set)
}

func attributeTraces(traces []*trace.Trace) (traceAttribution, error) {
	var att traceAttribution
	fragments := make(map[trace.TraceID][]*trace.Trace)
	for _, tr := range traces {
		if tr.Remote {
			fragments[tr.ID] = append(fragments[tr.ID], tr)
		}
	}
	var reads []readDecomp
	for _, tr := range traces {
		if tr.Remote || tr.Root != "client.read" || tr.Err {
			continue
		}
		reads = append(reads, decomposeRead(tr, fragments[tr.ID]))
	}
	if len(reads) == 0 {
		return att, fmt.Errorf("no successful client.read traces recorded")
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i].total > reads[j].total })
	att.Reads = len(reads)
	att.P99 = reads[(len(reads)-1)/100].total
	tail := reads[:(len(reads)-1)/100+1]
	att.TailSize = len(tail)
	att.Tail = tail

	mean := func(set []readDecomp, out *[compCount]time.Duration) time.Duration {
		var tot time.Duration
		var sums [compCount]time.Duration
		for _, r := range set {
			tot += r.total
			for c := 0; c < compCount; c++ {
				sums[c] += r.parts[c]
			}
		}
		for c := 0; c < compCount; c++ {
			out[c] = sums[c] / time.Duration(len(set))
		}
		return tot / time.Duration(len(set))
	}
	att.TailTot = mean(tail, &att.TailMean)
	att.AllTot = mean(reads, &att.AllMean)
	return att, nil
}

// writeAttributionTable renders the decomposition as a markdown table
// (the EXPERIMENTS.md artifact; also what the run prints).
func (att traceAttribution) writeAttributionTable(w io.Writer) {
	fmt.Fprintf(w, "| component | p99-tail mean | share | all-reads mean |\n")
	fmt.Fprintf(w, "|-----------|--------------:|------:|---------------:|\n")
	var tailSum time.Duration
	for c := 0; c < compCount; c++ {
		tailSum += att.TailMean[c]
		if att.TailMean[c] == 0 && att.AllMean[c] == 0 {
			continue
		}
		fmt.Fprintf(w, "| %-9s | %13s | %4.1f%% | %14s |\n",
			compNames[c], fmtDur(float64(att.TailMean[c])),
			100*float64(att.TailMean[c])/float64(att.TailTot),
			fmtDur(float64(att.AllMean[c])))
	}
	fmt.Fprintf(w, "| **sum**   | %13s | 100%%  | %14s |\n",
		fmtDur(float64(tailSum)), fmtDur(float64(att.AllTot)))
}

// reportTraceAttribution analyzes the recorder after a traced hotpath
// run: prints the table, logs tail exemplars with their trace ids (the
// correlation key into /debug/traces), and optionally appends the
// markdown artifact to outPath.
func reportTraceAttribution(rec *trace.Recorder, outPath string, logger *slog.Logger) error {
	att, err := attributeTraces(rec.Snapshot())
	if err != nil {
		return err
	}
	st := rec.Stats()
	fmt.Printf("trace attribution: %d reads analyzed (recorder kept %d of %d offered), e2e p99 %s, tail set %d\n",
		att.Reads, st.Kept, st.Offered, fmtDur(float64(att.P99)), att.TailSize)
	att.writeAttributionTable(os.Stdout)
	for i, r := range att.Tail {
		if i == 3 {
			break
		}
		logger.Info("p99 tail exemplar",
			"trace_id", fmt.Sprintf("%016x", uint64(r.id)),
			"total", r.total.Round(time.Microsecond),
			"class", compNames[r.class],
			"retry", r.parts[compRetry].Round(time.Microsecond),
			"queue", r.parts[compQueue].Round(time.Microsecond),
			"storage", r.parts[compStorage].Round(time.Microsecond))
	}
	if outPath == "" {
		return nil
	}
	f, err := os.OpenFile(outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "\np99 attribution (%d reads, p99 %s, tail set %d):\n\n",
		att.Reads, fmtDur(float64(att.P99)), att.TailSize)
	att.writeAttributionTable(f)
	logger.Info("wrote attribution table", "path", outPath)
	return nil
}
