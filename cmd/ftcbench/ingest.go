package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/hvac"
	"repro/internal/telemetry"
)

// ingestConfig parameterizes the write-path benchmark: a sustained
// ingest stream from many clients into a large simulated cluster, run
// once with synchronous per-object puts and once through the batched
// async pipeline, so the speedup is a single command:
//
//	ftcbench -ingest -duration 3s
type ingestConfig struct {
	nodes      int           // simulated server nodes (ingest default: 64)
	clients    int           // concurrent writer clients
	objBytes   int64         // bytes per ingested object
	duration   time.Duration // measurement window per phase
	seed       int64
	batch      int    // batched phase: max entries per wire batch
	flushEvery int    // batched phase: ops between explicit Flush barriers
	out        string // JSON result path
}

// ingestResult is one phase's measurement, JSON-shaped for
// results/BENCH_ingest.json and the benchguard regression check.
type ingestResult struct {
	Mode        string  `json:"mode"`
	Puts        int64   `json:"puts"`
	Seconds     float64 `json:"seconds"`
	PutsPerSec  float64 `json:"puts_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P99Metric   string  `json:"p99_metric"` // what the quantiles measure
	Writes      int64   `json:"client_writes"`
	WritesPerOp float64 `json:"writes_per_op"` // socket writes per put (syscall proxy)
	FramesPerWr float64 `json:"frames_per_write"`
}

type ingestReport struct {
	Bench     string        `json:"bench"`
	Nodes     int           `json:"nodes"`
	Clients   int           `json:"clients"`
	ObjBytes  int64         `json:"obj_bytes"`
	Batch     int           `json:"batch_entries"`
	Sync      ingestResult  `json:"sync"`
	Batched   ingestResult  `json:"batched"`
	Speedup   float64       `json:"speedup"`
	WriteAmpl float64       `json:"write_reduction"` // sync writes/op over batched writes/op
	Duration  time.Duration `json:"-"`
}

func runIngest(cfg ingestConfig) error {
	if cfg.nodes < 1 || cfg.clients < 1 {
		return fmt.Errorf("-nodes and -clients must be >= 1")
	}
	if cfg.batch <= 0 {
		cfg.batch = 64
	}
	if cfg.flushEvery <= 0 {
		cfg.flushEvery = 256
	}
	fmt.Printf("ingest: %d nodes, %d clients, %d B objects, %s/phase, batch=%d flushevery=%d\n",
		cfg.nodes, cfg.clients, cfg.objBytes, cfg.duration, cfg.batch, cfg.flushEvery)

	syncRes, err := runIngestPhase(cfg, nil)
	if err != nil {
		return fmt.Errorf("sync phase: %w", err)
	}
	batchedRes, err := runIngestPhase(cfg, &hvac.IngestConfig{MaxBatchEntries: cfg.batch})
	if err != nil {
		return fmt.Errorf("batched phase: %w", err)
	}

	rep := ingestReport{
		Bench:    "ingest",
		Nodes:    cfg.nodes,
		Clients:  cfg.clients,
		ObjBytes: cfg.objBytes,
		Batch:    cfg.batch,
		Sync:     syncRes,
		Batched:  batchedRes,
	}
	if syncRes.PutsPerSec > 0 {
		rep.Speedup = batchedRes.PutsPerSec / syncRes.PutsPerSec
	}
	if batchedRes.WritesPerOp > 0 {
		rep.WriteAmpl = syncRes.WritesPerOp / batchedRes.WritesPerOp
	}

	for _, r := range []ingestResult{syncRes, batchedRes} {
		fmt.Printf("  %-8s puts=%-9d puts/sec=%-10.0f p99(%s)=%.2fms writes/op=%.3f\n",
			r.Mode, r.Puts, r.PutsPerSec, r.P99Metric, r.P99Ms, r.WritesPerOp)
	}
	fmt.Printf("  speedup      %.2fx\n", rep.Speedup)
	fmt.Printf("  write-reduction %.1fx fewer socket writes per put\n", rep.WriteAmpl)

	if cfg.out != "" {
		if err := os.MkdirAll(filepath.Dir(cfg.out), 0o755); err != nil {
			return err
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  [wrote %s]\n", cfg.out)
	}
	return nil
}

// runIngestPhase boots a fresh cluster and drives the write path for the
// window. With ingest == nil every put is a synchronous RPC round trip;
// with a config the clients stream PutAsync and pay only periodic Flush
// barriers. The latency histogram measures what a caller actually waits
// on in each mode: the put itself (sync) or the batch commit (batched).
func runIngestPhase(cfg ingestConfig, ingest *hvac.IngestConfig) (ingestResult, error) {
	res := ingestResult{Mode: "sync", P99Metric: "put"}
	if ingest != nil {
		res.Mode, res.P99Metric = "batched", "flush"
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Nodes:        cfg.nodes,
		Strategy:     ftcache.KindNVMe,
		NVMeCapacity: 16 << 20, // bound node memory; ingest may evict, never block
		// The failure-detector TTL is not the measurement here: under
		// full write saturation an individual batch RPC may queue past
		// the 500ms production default, which would abort the phase.
		RPCTimeout: 10 * time.Second,
		Ingest:     ingest,
	})
	if err != nil {
		return res, err
	}
	defer c.Close()

	flushC := telemetry.Default().Counter("ftc_rpc_client_flushes_total")
	framesC := telemetry.Default().Counter("ftc_rpc_client_frames_total")
	flushes0, frames0 := flushC.Load(), framesC.Load()

	var (
		puts atomic.Int64
		mu   sync.Mutex
		lats []int64 // ns; sync: per put, batched: per flush barrier
		wg   sync.WaitGroup
	)
	record := func(local []int64) {
		mu.Lock()
		lats = append(lats, local...)
		mu.Unlock()
	}
	stop := make(chan struct{})
	errCh := make(chan error, cfg.clients)
	data := make([]byte, cfg.objBytes)
	for i := range data {
		data[i] = byte(i)
	}
	start := time.Now()
	for w := 0; w < cfg.clients; w++ {
		cli, _, err := c.NewClient()
		if err != nil {
			return res, err
		}
		defer cli.Close()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]int64, 0, 1<<14)
			defer func() { record(local) }()
			ctx := context.Background()
			seq := 0
			for {
				select {
				case <-stop:
					if ingest != nil {
						_ = cli.Flush(ctx)
					}
					return
				default:
				}
				path := fmt.Sprintf("%s/c%02d/k%09d", res.Mode, w, seq)
				seq++
				if ingest == nil {
					t0 := time.Now()
					if err := cli.Put(ctx, path, data); err != nil {
						errCh <- fmt.Errorf("client %d put: %w", w, err)
						return
					}
					local = append(local, int64(time.Since(t0)))
					puts.Add(1)
					continue
				}
				if err := cli.PutAsync(path, data); err != nil {
					errCh <- fmt.Errorf("client %d putasync: %w", w, err)
					return
				}
				puts.Add(1)
				if seq%cfg.flushEvery == 0 {
					t0 := time.Now()
					if err := cli.Flush(ctx); err != nil {
						errCh <- fmt.Errorf("client %d flush: %w", w, err)
						return
					}
					local = append(local, int64(time.Since(t0)))
				}
			}
		}(w)
	}
	time.Sleep(cfg.duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return res, err
	default:
	}

	res.Puts = puts.Load()
	res.Seconds = elapsed.Seconds()
	res.PutsPerSec = float64(res.Puts) / elapsed.Seconds()
	res.Writes = flushC.Load() - flushes0
	if res.Puts > 0 {
		res.WritesPerOp = float64(res.Writes) / float64(res.Puts)
	}
	if res.Writes > 0 {
		res.FramesPerWr = float64(framesC.Load()-frames0) / float64(res.Writes)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		res.P50Ms = float64(lats[n/2]) / 1e6
		res.P99Ms = float64(lats[n*99/100]) / 1e6
	}
	return res, nil
}
