package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ftc"
	"repro/internal/analysis/load"
)

// vetConfig mirrors the JSON cmd/go writes for each package when
// driving a vet tool (cmd/go/internal/work's vetConfig). Only the
// fields ftclint consumes are declared; unknown fields are ignored.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string // import path as written -> canonical path
	PackageFile map[string]string // canonical path -> export data file
	PackageVetx map[string]string // canonical path -> dependency fact file
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// vetImporter resolves a package's imports using the cfg maps: the
// source-level path goes through ImportMap (vendoring, test variants)
// and the canonical path through PackageFile to export data.
type vetImporter struct {
	cfg *vetConfig
	gc  types.ImporterFrom
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	return v.ImportFrom(path, "", 0)
}

func (v *vetImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := v.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return v.gc.ImportFrom(path, dir, mode)
}

// moduleScope is the import-path prefix the suite analyzes: the module
// that built this binary. cmd/go drives a vet tool over every
// dependency unit — the standard library included — to thread facts
// through the graph, but actually analyzing the runtime's own source
// would tag nearly every function as blocking (mallocgc can start a GC
// cycle that parks on a channel) and bury the module's findings.
// Standalone mode has the same scope for free: go list only yields
// module packages there.
func moduleScope() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		return bi.Main.Path
	}
	return "repro"
}

// runVet executes one vet-protocol unit of work.
func runVet(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftclint:", err)
		return 1
	}
	cfg := &vetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ftclint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Dependency units outside the module export an empty fact set and
	// report nothing; cmd/go still expects the vetx file to exist.
	if mod := moduleScope(); cfg.ImportPath != mod && !strings.HasPrefix(cfg.ImportPath, mod+"/") {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "ftclint:", err)
				return 1
			}
		}
		return 0
	}

	// Load the dependencies' facts. Each vetx file carries its
	// package's accumulated fact closure, so the union over direct
	// PackageVetx entries covers the whole import graph.
	suite := analysis.All()
	ftc.RegisterFactTypes(suite)
	facts := ftc.NewFactStore()
	for _, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftclint:", err)
			return 1
		}
		if err := facts.DecodeFacts(data); err != nil {
			fmt.Fprintf(os.Stderr, "ftclint: reading facts from %s: %v\n", vetxFile, err)
			return 1
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "ftclint:", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := &vetImporter{cfg: cfg, gc: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)}
	pkg, err := load.CheckFiles(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "ftclint:", err)
		return 1
	}

	diags, err := ftc.RunPackage(fset, files, pkg.Types, pkg.Info, suite, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftclint:", err)
		return 1
	}

	// Serialize the accumulated fact closure (this package's exports
	// plus everything inherited) for downstream units. cmd/go expects
	// the file to exist even when empty.
	if cfg.VetxOutput != "" {
		blob, err := facts.EncodePackageFacts(facts.PackagePaths()...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftclint:", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, blob, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ftclint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	found := false
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		// Test variants flow through vet too; the suite targets
		// shipped code, so findings in _test.go files are dropped for
		// parity with the standalone loader.
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		found = true
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if found {
		return 2
	}
	return 0
}
