// Command ftclint runs the FT-Cache analyzer suite (internal/analysis)
// over Go packages. It enforces the repo's concurrency and resource
// invariants statically: pooled wire-buffer lease discipline, the
// lock-free hot-path rules, the retry-vs-detector error taxonomy,
// all-or-nothing atomic field access, and bounded telemetry label
// cardinality. See DESIGN.md §12.
//
// Two modes:
//
//	ftclint [packages]          standalone; defaults to ./...
//	go vet -vettool=$(command -v ftclint) ./...
//
// The second form speaks cmd/go's vet-tool protocol (the same contract
// x/tools' unitchecker implements): respond to -V=full with a stable
// build identity, respond to -flags with the supported flag set, and
// accept a *.cfg file describing one package's files and its import →
// export-data maps. Findings go to stderr as file:line:col lines and
// the exit status is non-zero when any survive suppression.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ftc"
	"repro/internal/analysis/load"
)

func main() {
	args := os.Args[1:]

	// cmd/go probes the tool's identity and flag set before using it.
	for _, a := range args {
		if a == "-V=full" {
			printVersion()
			return
		}
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}

	if len(args) > 0 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		usage()
		return
	}
	os.Exit(runStandalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ftclint [packages]\n\nAnalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress a justified false positive with\n  //ftclint:ignore <analyzer> <reason>\non or directly above the reported line.\n")
}

// printVersion emits the `name version ...` line cmd/go hashes into
// its build cache key; the binary's own digest keys invalidation.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("ftclint version devel buildID=%x\n", h.Sum(nil)[:16])
}

// runStandalone loads the requested module packages and applies the
// suite.
func runStandalone(patterns []string) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftclint:", err)
		return 1
	}
	pkgs, err := load.Module(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftclint:", err)
		return 1
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := ftc.RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftclint:", err)
			return 1
		}
		for _, d := range diags {
			found = true
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if found {
		return 2
	}
	return 0
}
