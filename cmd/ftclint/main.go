// Command ftclint runs the FT-Cache analyzer suite (internal/analysis)
// over Go packages. It enforces the repo's concurrency and resource
// invariants statically: pooled wire-buffer lease discipline, the
// lock-free hot-path rules, the retry-vs-detector error taxonomy,
// all-or-nothing atomic field access, bounded telemetry label
// cardinality, and the interprocedural rules of DESIGN.md §17 —
// cross-package lock-order cycles, context threading, and goroutine
// stoppability — whose verdicts travel between packages as facts.
//
// Two modes:
//
//	ftclint [-json] [-cache dir] [packages]   standalone; defaults to ./...
//	go vet -vettool=$(command -v ftclint) ./...
//
// Standalone mode analyzes the matched packages in dependency order
// (`go list -deps` order), so every package's imported facts exist
// before the package itself is analyzed. With -cache, per-package
// results (findings + exported facts) are reused across runs; the key
// covers the tool binary, the package's source bytes, every dependency
// export file in the listing, and the fact store contents at the
// package's turn, so a body-only change in an upstream package that
// alters its facts invalidates every dependent. -json emits findings
// to stdout as a JSON array of {file,line,col,analyzer,message} for CI
// annotation rendering instead of the human file:line text on stderr.
//
// The second form speaks cmd/go's vet-tool protocol (the same contract
// x/tools' unitchecker implements): respond to -V=full with a stable
// build identity, respond to -flags with the supported flag set, and
// accept a *.cfg file describing one package's files, its import →
// export-data maps, and its dependencies' fact files (PackageVetx).
// Facts exported while checking a package are serialized to VetxOutput
// for cmd/go to feed downstream. Findings go to stderr as
// file:line:col lines and the exit status is non-zero when any survive
// suppression.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ftc"
	"repro/internal/analysis/load"
)

func main() {
	args := os.Args[1:]

	// cmd/go probes the tool's identity and flag set before using it.
	for _, a := range args {
		if a == "-V=full" {
			printVersion()
			return
		}
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}

	jsonOut := false
	cacheDir := os.Getenv("FTCLINT_CACHE")
	var patterns []string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return
		case a == "-json":
			jsonOut = true
		case a == "-cache":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "ftclint: -cache needs a directory")
				os.Exit(1)
			}
			i++
			cacheDir = args[i]
		case strings.HasPrefix(a, "-cache="):
			cacheDir = strings.TrimPrefix(a, "-cache=")
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "ftclint: unknown flag %s\n", a)
			usage()
			os.Exit(1)
		default:
			patterns = append(patterns, a)
		}
	}
	os.Exit(runStandalone(patterns, jsonOut, cacheDir))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ftclint [-json] [-cache dir] [packages]\n\nAnalyzers:\n")
	for _, a := range ftc.Expand(analysis.All()) {
		fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nFlags:\n  -json        findings to stdout as a JSON array of {file,line,col,analyzer,message}\n  -cache dir   reuse per-package results keyed by source + dep exports + facts (also $FTCLINT_CACHE)\n")
	fmt.Fprintf(os.Stderr, "\nSuppress a justified false positive with\n  //ftclint:ignore <analyzer> <reason>\non or directly above the reported line.\n")
}

// toolDigest hashes the running binary: the cache and build identity
// key component that invalidates everything when the analyzers change.
func toolDigest() []byte {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return h.Sum(nil)
}

// printVersion emits the `name version ...` line cmd/go hashes into
// its build cache key; the binary's own digest keys invalidation.
func printVersion() {
	fmt.Printf("ftclint version devel buildID=%x\n", toolDigest()[:16])
}

// A Finding is one surviving diagnostic in -json output.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// cacheEntry is one package's cached outcome: its findings and the
// facts its analysis exported.
type cacheEntry struct {
	Findings []Finding `json:"findings"`
	Facts    []byte    `json:"facts"`
}

// runStandalone analyzes the requested module packages in dependency
// order with a shared fact store.
func runStandalone(patterns []string, jsonOut bool, cacheDir string) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "ftclint:", err)
		return 1
	}
	dir, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	listing, err := load.List(dir, patterns...)
	if err != nil {
		return fail(err)
	}
	suite := analysis.All()
	ftc.RegisterFactTypes(suite)
	facts := ftc.NewFactStore()

	var toolID, exportsID []byte
	if cacheDir != "" {
		if err := os.MkdirAll(cacheDir, 0o777); err != nil {
			return fail(err)
		}
		toolID = toolDigest()
		exportsID = exportsDigest(listing)
	}

	var all []Finding
	for _, t := range listing.Targets {
		var key string
		if cacheDir != "" {
			key, err = cacheKey(t, toolID, exportsID, facts)
			if err != nil {
				return fail(err)
			}
			if entry, ok := readCache(cacheDir, key); ok {
				if err := facts.DecodeFacts(entry.Facts); err != nil {
					return fail(fmt.Errorf("%s: corrupt fact cache: %w", t.PkgPath, err))
				}
				all = append(all, entry.Findings...)
				continue
			}
		}
		pkg, err := listing.Load(t)
		if err != nil {
			return fail(err)
		}
		diags, err := ftc.RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, suite, facts)
		if err != nil {
			return fail(fmt.Errorf("%s: %w", t.PkgPath, err))
		}
		var fs []Finding
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fs = append(fs, Finding{File: pos.Filename, Line: pos.Line, Col: pos.Column, Analyzer: d.Analyzer, Message: d.Message})
		}
		all = append(all, fs...)
		if cacheDir != "" {
			blob, err := facts.EncodePackageFacts(t.PkgPath)
			if err != nil {
				return fail(err)
			}
			writeCache(cacheDir, key, cacheEntry{Findings: fs, Facts: blob})
		}
	}

	if jsonOut {
		out := all
		if out == nil {
			out = []Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fail(err)
		}
	} else {
		for _, f := range all {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(all) > 0 {
		return 2
	}
	return 0
}

// exportsDigest hashes every dependency export file in the listing.
// Coarse by design: gc export data is not transitively self-contained,
// so any dependency change anywhere invalidates every cached package —
// soundness over hit rate.
func exportsDigest(listing *load.Listing) []byte {
	paths := make([]string, 0, len(listing.ExportFiles))
	for p := range listing.ExportFiles {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, p := range paths {
		io.WriteString(h, p)
		h.Write([]byte{0})
		if data, err := os.ReadFile(listing.ExportFiles[p]); err == nil {
			h.Write(data)
		}
		h.Write([]byte{0})
	}
	return h.Sum(nil)
}

// cacheKey derives the package's cache key: tool binary, the global
// dependency export digest, the package's own source bytes, and the
// fact store contents at this package's turn in the dependency order
// (which covers body-only upstream changes that altered facts).
func cacheKey(t load.Target, toolID, exportsID []byte, facts *ftc.FactStore) (string, error) {
	h := sha256.New()
	h.Write(toolID)
	h.Write(exportsID)
	io.WriteString(h, t.PkgPath)
	h.Write([]byte{0})
	for _, path := range t.FilePaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return "", err
		}
		io.WriteString(h, path)
		h.Write([]byte{0})
		h.Write(data)
		h.Write([]byte{0})
	}
	blob, err := facts.EncodePackageFacts(facts.PackagePaths()...)
	if err != nil {
		return "", err
	}
	h.Write(blob)
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func readCache(dir, key string) (cacheEntry, bool) {
	var e cacheEntry
	data, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return e, false
	}
	if json.Unmarshal(data, &e) != nil {
		return cacheEntry{}, false
	}
	return e, true
}

// writeCache stores an entry best-effort: a cache write failure never
// fails the lint run.
func writeCache(dir, key string, e cacheEntry) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return
	}
	os.Rename(tmp, filepath.Join(dir, key+".json"))
}
