// Command ftcsim exposes the Frontier-scale training model directly, for
// exploring configurations beyond the paper's fixed experiment grid:
//
//	ftcsim -nodes 512 -strategy ftnvme -failures 3
//	ftcsim -nodes 1024 -strategy ftnvme -replication 2 -failures 5 -vnodes 1000
//	ftcsim -nodes 64 -strategy ftpfs -failures 1 -epochs 10 -divisor 8
//
// It prints the per-epoch breakdown and summary for a single run — the
// knob-turning companion to cmd/ftcbench's fixed tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ftcache"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 64, "compute nodes")
	strategy := flag.String("strategy", "ftnvme", "noft|ftpfs|ftnvme")
	failures := flag.Int("failures", 0, "random single-node failures after epoch 1")
	epochs := flag.Int("epochs", 5, "training epochs")
	vnodes := flag.Int("vnodes", 100, "virtual nodes per physical node")
	replication := flag.Int("replication", 0, "cached copies per file (ftnvme extension; 0/1 = off)")
	localBatch := flag.Int("local-batch", 8, "samples per node per step")
	divisor := flag.Int("divisor", 1, "shrink the CosmoFlow dataset by this factor")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	kind := ftcache.StrategyKind(*strategy)
	switch kind {
	case ftcache.KindNoFT, ftcache.KindPFS, ftcache.KindNVMe:
	default:
		fmt.Fprintf(os.Stderr, "ftcsim: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	cfg := trainsim.Frontier(*nodes, kind)
	cfg.Epochs = *epochs
	cfg.VirtualNodes = *vnodes
	cfg.Replication = *replication
	cfg.LocalBatch = *localBatch
	cfg.Seed = *seed
	if *divisor > 1 {
		cfg.Dataset = workload.CosmoFlowTrain().Scaled(*divisor)
	}
	if *failures > 0 {
		if *epochs < 2 {
			fmt.Fprintln(os.Stderr, "ftcsim: failures need at least 2 epochs")
			os.Exit(2)
		}
		cfg.Failures = trainsim.RandomFailures(*failures, cfg.Epochs, *seed+7)
	}

	fmt.Printf("ftcsim: %d nodes, %s, %d files × %d B, %d epochs, %d failure(s), vnodes=%d",
		*nodes, kind, cfg.Dataset.NumFiles, cfg.Dataset.FileBytes, cfg.Epochs,
		*failures, cfg.VirtualNodes)
	if *replication > 1 {
		fmt.Printf(", replication=%d", *replication)
	}
	fmt.Println()

	start := time.Now()
	res := trainsim.Run(cfg)
	wall := time.Since(start)

	fmt.Printf("\n%6s %12s %8s %6s %6s %10s\n",
		"epoch", "sim time", "workers", "fails", "post", "PFS reads")
	for _, e := range res.Epochs {
		post := ""
		if e.PostFailure {
			post = "yes"
		}
		fmt.Printf("%6d %12s %8d %6d %6s %10d\n",
			e.Epoch, e.Duration.Round(time.Millisecond), e.Workers, e.Failures, post, e.PFSReads)
	}
	fmt.Println()
	if res.Aborted {
		fmt.Printf("ABORTED after %v simulated (job terminated by node failure)\n",
			res.Total.Round(time.Second))
	} else {
		fmt.Printf("total simulated time: %v\n", res.Total.Round(time.Second))
	}
	fmt.Printf("restarts: %d   total PFS reads: %d\n", res.Restarts, res.PFSReads)
	if clean := res.CleanEpochMean(); clean > 0 {
		fmt.Printf("clean epoch mean:     %v\n", clean.Round(time.Millisecond))
	}
	if victim := res.VictimEpochMean(); victim > 0 {
		fmt.Printf("victim epoch mean:    %v\n", victim.Round(time.Millisecond))
	}
	if post := res.PostFailureEpochMean(); post > 0 {
		fmt.Printf("post-failure mean:    %v\n", post.Round(time.Millisecond))
	}
	fmt.Printf("(computed in %v of wall time)\n", wall.Round(time.Millisecond))
}
