// Load-balance study: the paper's Fig 6(b) as an interactive demo.
// Sweeps the virtual-node count on a hash ring, fails a random node per
// trial, and charts how many survivors share the recaching load versus
// how many files each absorbs.
//
//	go run ./examples/loadbalance [-nodes 256] [-files 65536] [-trials 100]
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/loadsim"
)

func main() {
	nodes := flag.Int("nodes", 256, "physical nodes on the ring")
	files := flag.Int("files", 65536, "cached files")
	trials := flag.Int("trials", 100, "Monte-Carlo trials per setting")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("hash-ring load redistribution after one node failure\n")
	fmt.Printf("%d physical nodes, %d files, %d trials per point\n\n", *nodes, *files, *trials)

	points := loadsim.Sweep(*nodes, *files, *trials, *seed, loadsim.PaperSweep)

	maxRecv := 1.0
	for _, p := range points {
		if p.ReceiverMean > maxRecv {
			maxRecv = p.ReceiverMean
		}
	}
	fmt.Printf("%7s  %-44s %16s %14s\n", "vnodes", "receiver nodes (bar)", "receivers", "files/receiver")
	for _, p := range points {
		bar := strings.Repeat("█", int(p.ReceiverMean/maxRecv*40))
		fmt.Printf("%7d  %-44s %9.1f ±%4.1f %8.1f ±%4.1f\n",
			p.VirtualNodes, bar, p.ReceiverMean, p.ReceiverStdDev,
			p.FilesPerNodeMean, p.FilesPerNodeStdDev)
	}

	fmt.Println()
	fmt.Println("reading the chart (paper §V-B.2):")
	fmt.Println(" - more virtual nodes → more survivors share the recaching burst;")
	fmt.Println(" - files per receiver falls and its spread tightens → balanced load;")
	fmt.Println(" - growth flattens at high counts: once receivers ≈ lost files,")
	fmt.Println("   extra virtual nodes only inflate ring memory and lookup cost.")
	fmt.Println("   The paper's production choice is 100 per physical node.")
}
