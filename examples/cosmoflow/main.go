// CosmoFlow scenario: the paper's motivating workload. Runs the same
// data-parallel training job (shuffled epochs, batch-synchronous steps,
// elastic rollback) under all three fault-tolerance strategies with an
// identical mid-training node failure, on a live in-process cluster,
// and prints the end-to-end comparison.
//
//	go run ./examples/cosmoflow
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	nodes     = 6
	workers   = 6
	epochs    = 4
	batchSize = 4
)

func main() {
	// A laptop-scale CosmoFlow: 192 files, 8 KiB each.
	ds := repro.CosmoFlowTrain().Scaled(2730).WithFileBytes(8192)
	fmt.Printf("dataset: %d files × %d bytes; %d nodes, %d epochs\n\n",
		ds.NumFiles, ds.FileBytes, nodes, epochs)

	for _, strategy := range []repro.StrategyKind{
		repro.StrategyNoFT, repro.StrategyPFS, repro.StrategyNVMe,
	} {
		runOne(strategy, ds)
	}
}

func runOne(strategy repro.StrategyKind, ds repro.Dataset) {
	cluster, err := repro.NewCluster(repro.ClusterConfig{
		Nodes:        nodes,
		Strategy:     strategy,
		RPCTimeout:   80 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Stage(ds); err != nil {
		log.Fatal(err)
	}

	trainer, err := repro.NewTrainer(repro.TrainConfig{
		Cluster:   cluster,
		Dataset:   repro.TrainDataset(ds),
		Workers:   workers,
		Epochs:    epochs,
		BatchSize: batchSize,
		Seed:      42,
		// One node dies early in epoch 1, after the cache is warm —
		// the paper's injection protocol.
		Failures: []repro.TrainFailure{{Epoch: 1, Step: 1, Mode: repro.FailUnresponsive}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	rep, err := trainer.Run(context.Background())
	if err != nil {
		log.Fatalf("%s: %v", strategy, err)
	}

	fmt.Printf("=== %s ===\n", strategy)
	if rep.Aborted {
		fmt.Printf("  JOB TERMINATED after %d epoch(s): %v\n", len(rep.Epochs), rep.AbortErr)
		fmt.Printf("  (the baseline HVAC has no fault tolerance: all progress lost)\n\n")
		return
	}
	for _, e := range rep.Epochs {
		marker := ""
		if e.Restarts > 0 {
			marker = fmt.Sprintf("  <- failure: rolled back ×%d, continued on %d workers",
				e.Restarts, e.Workers)
		}
		fmt.Printf("  epoch %d: %-10v workers=%d samples=%d%s\n",
			e.Epoch, e.Duration.Round(time.Millisecond), e.Workers, e.Samples, marker)
	}
	st := rep.ClientStats
	fmt.Printf("  total=%v nvme-reads=%d server-pfs-reads=%d direct-pfs-reads=%d timeouts=%d\n\n",
		rep.Total.Round(time.Millisecond), st.ServedNVMe, st.ServedPFS, st.DirectPFS, st.Timeouts)
}
