// Resume: the full fault-tolerance story. A training job on the
// fault-INTOLERANT baseline (NoFT) dies when a node fails — but because
// it checkpointed after each epoch (node-local NVMe write, async PFS
// drain), the "next submission" resumes from the last durable epoch
// instead of losing everything. Then the same failure is replayed under
// hash-ring recaching, which simply does not die.
//
//	go run ./examples/resume
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

const epochs = 4

func main() {
	ds := repro.CosmoFlowTrain().Scaled(4096).WithFileBytes(2048)

	fmt.Println("=== run 1: NoFT baseline, node fails in epoch 2 ===")
	cluster1 := mustCluster(repro.StrategyNoFT)
	defer cluster1.Close()
	mustStage(cluster1, ds)
	ck, err := repro.NewCheckpointer(cluster1, 0, repro.CheckpointConfig{Keep: 2})
	if err != nil {
		log.Fatal(err)
	}

	rep1 := mustRun(cluster1, ds, repro.TrainConfig{
		Checkpointer: ck,
		Failures:     []repro.TrainFailure{{Epoch: 2, Step: 1, Mode: repro.FailUnresponsive}},
	})
	if !rep1.Aborted {
		log.Fatal("expected the NoFT job to die")
	}
	fmt.Printf("job TERMINATED after %d completed epoch(s): %v\n",
		len(rep1.Epochs), rep1.AbortErr)
	ck.Drain()
	meta, _, err := ck.Latest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("durable checkpoint: epoch %d (written to NVMe, drained to PFS)\n\n", meta.Epoch)

	fmt.Println("=== run 2: resubmission resumes from the checkpoint ===")
	cluster2 := mustCluster(repro.StrategyNoFT)
	defer cluster2.Close()
	mustStage(cluster2, ds)
	rep2 := mustRun(cluster2, ds, repro.TrainConfig{
		Checkpointer: ck,
		Resume:       true,
	})
	fmt.Printf("resumed from epoch %d; ran epochs", rep2.ResumedFromEpoch)
	for _, e := range rep2.Epochs {
		fmt.Printf(" %d", e.Epoch)
	}
	fmt.Printf(" — no wasted recomputation\n\n")

	fmt.Println("=== run 3: same failure under FT w/ NVMe (hash-ring recaching) ===")
	cluster3 := mustCluster(repro.StrategyNVMe)
	defer cluster3.Close()
	mustStage(cluster3, ds)
	rep3 := mustRun(cluster3, ds, repro.TrainConfig{
		Failures: []repro.TrainFailure{{Epoch: 2, Step: 1, Mode: repro.FailUnresponsive}},
	})
	if rep3.Aborted {
		log.Fatal("ring-recaching run should survive")
	}
	fmt.Printf("survived in-place: %d epochs, finished on %d workers, total %v\n",
		len(rep3.Epochs), rep3.FinalWorkers, rep3.Total.Round(time.Millisecond))
	fmt.Println("(no resubmission, no queue wait, no lost epoch — the paper's point)")
}

func mustCluster(kind repro.StrategyKind) *repro.Cluster {
	c, err := repro.NewCluster(repro.ClusterConfig{
		Nodes:        4,
		Strategy:     kind,
		RPCTimeout:   80 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func mustStage(c *repro.Cluster, ds repro.Dataset) {
	if _, err := c.Stage(ds); err != nil {
		log.Fatal(err)
	}
}

func mustRun(c *repro.Cluster, ds repro.Dataset, cfg repro.TrainConfig) repro.TrainReport {
	cfg.Cluster = c
	cfg.Dataset = repro.TrainDataset(ds)
	cfg.Workers = 4
	cfg.Epochs = epochs
	cfg.BatchSize = 4
	cfg.Seed = 11
	tr, err := repro.NewTrainer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	rep, err := tr.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return rep
}
