// Elastic training over TCP: runs the FT-Cache fleet on real loopback
// sockets (the same transport cmd/ftcserver uses), trains with repeated
// node failures, and shows the job surviving every one of them via
// hash-ring recaching and elastic rollback.
//
//	go run ./examples/elastic
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro"
	"repro/internal/rpc"
)

func main() {
	cluster, err := repro.NewCluster(repro.ClusterConfig{
		Nodes:        8,
		Strategy:     repro.StrategyNVMe,
		RPCTimeout:   150 * time.Millisecond,
		TimeoutLimit: 2,
		// Real TCP on loopback instead of the in-process pipe network:
		// node names resolve through a local registry below.
		Network: newLoopback(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ds := repro.CosmoFlowTrain().Scaled(2048).WithFileBytes(16384)
	if _, err := cluster.Stage(ds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-node cluster over TCP loopback, %d files × %d KiB\n\n",
		ds.NumFiles, ds.FileBytes/1024)

	trainer, err := repro.NewTrainer(repro.TrainConfig{
		Cluster:   cluster,
		Dataset:   repro.TrainDataset(ds),
		Workers:   8,
		Epochs:    5,
		BatchSize: 4,
		Seed:      7,
		Failures: []repro.TrainFailure{
			{Epoch: 1, Step: 2, Mode: repro.FailUnresponsive},
			{Epoch: 2, Step: 1, Mode: repro.FailKill},
			{Epoch: 3, Step: 3, Mode: repro.FailUnresponsive},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	rep, err := trainer.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if rep.Aborted {
		log.Fatalf("job aborted: %v", rep.AbortErr)
	}
	for _, e := range rep.Epochs {
		note := ""
		if e.Restarts > 0 {
			note = fmt.Sprintf("  <- %d failure(s), elastic rollback", e.Restarts)
		}
		fmt.Printf("epoch %d: %-10v workers=%d%s\n",
			e.Epoch, e.Duration.Round(time.Millisecond), e.Workers, note)
	}
	fmt.Printf("\nsurvived 3 node failures; finished on %d of 8 workers\n", rep.FinalWorkers)
	st := rep.ClientStats
	fmt.Printf("reads: nvme=%d server-pfs=%d timeouts=%d failovers=%d\n",
		st.ServedNVMe, st.ServedPFS, st.Timeouts, st.FailoverReads)
}

// loopback implements rpc.Network over real TCP: every logical node name
// binds an ephemeral 127.0.0.1 port at Listen time and dials resolve
// through the registry — a miniature service discovery, standing in for
// the hostfile a real SLURM launch distributes.
type loopback struct {
	mu    sync.Mutex
	addrs map[string]string
}

func newLoopback() *loopback { return &loopback{addrs: make(map[string]string)} }

// Listen implements rpc.Network.
func (l *loopback) Listen(name string) (net.Listener, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.addrs[name] = lis.Addr().String()
	l.mu.Unlock()
	return lis, nil
}

// Dial implements rpc.Network.
func (l *loopback) Dial(name string) (net.Conn, error) {
	l.mu.Lock()
	addr, ok := l.addrs[name]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("loopback: unknown node %q", name)
	}
	return net.Dial("tcp", addr)
}

var _ rpc.Network = (*loopback)(nil)
