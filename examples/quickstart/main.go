// Quickstart: boot a 4-node FT-Cache cluster in-process, stage a small
// dataset on the PFS, read everything through the fault-tolerant client
// (populating the NVMe caches), kill a node, and watch the hash ring
// recache the lost files with exactly one extra PFS read per file.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	cluster, err := repro.NewCluster(repro.ClusterConfig{
		Nodes:        4,
		Strategy:     repro.StrategyNVMe, // the paper's hash-ring recaching
		RPCTimeout:   100 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A laptop-sized slice of the CosmoFlow geometry: 128 files of 4 KiB.
	ds := repro.CosmoFlowTrain().Scaled(4096).WithFileBytes(4096)
	staged, err := cluster.Stage(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged %d files (%d bytes) on the PFS\n", ds.NumFiles, staged)

	client, _, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	// Epoch 1: every read misses the cache, falls back to the PFS, and
	// is recached on its owner's NVMe by the data mover.
	readAll := func(label string) {
		start := time.Now()
		for i := 0; i < ds.NumFiles; i++ {
			if _, err := client.Read(ctx, ds.FilePath(i)); err != nil {
				log.Fatalf("%s: read %d: %v", label, i, err)
			}
		}
		reads, _, _ := cluster.PFS().Counters()
		fmt.Printf("%-22s %4d reads in %-8v PFS accesses: %d\n",
			label, ds.NumFiles, time.Since(start).Round(time.Millisecond), reads)
		cluster.PFS().ResetCounters()
	}
	readAll("epoch 1 (cold):")
	cluster.FlushMovers()
	readAll("epoch 2 (cached):")

	// Kill a node. The client's timeout detector will notice, drop it
	// from the hash ring, and re-route its files to ring successors.
	victim := cluster.Nodes()[1]
	lost, _ := cluster.Server(victim).NVMe().Stats()
	fmt.Printf("\nkilling %s (it caches %d files)\n", victim, lost)
	if err := cluster.Fail(victim, repro.FailUnresponsive); err != nil {
		log.Fatal(err)
	}

	// Epoch 3: the lost files are fetched from the PFS exactly once by
	// their new owners and recached.
	readAll("epoch 3 (recaching):")
	cluster.FlushMovers()
	// Epoch 4: the cache has healed — zero PFS traffic again.
	readAll("epoch 4 (healed):")

	st := client.Stats()
	fmt.Printf("\nclient stats: remote=%d nvme=%d pfs-fallback=%d timeouts=%d failovers=%d\n",
		st.RemoteReads, st.ServedNVMe, st.ServedPFS, st.Timeouts, st.FailoverReads)
}
