// Package repro is a from-scratch Go reproduction of "Fault-Tolerant
// Deep Learning Cache with Hash Ring for Load Balancing in HPC Systems"
// (SC 2024): FT-Cache, a fault-tolerant extension of the HVAC
// distributed node-local NVMe cache for large-scale deep-learning
// training.
//
// The root package re-exports the library surface:
//
//   - Cluster boots an HVAC server fleet (in-process or TCP) over a
//     shared PFS and hands out fault-tolerant clients.
//   - The three strategies the paper evaluates are selected with
//     StrategyNoFT, StrategyPFS and StrategyNVMe.
//   - Training runs against the live cluster via repro/internal/dltrain,
//     and at Frontier scale (64–1024 nodes) via the discrete-event model
//     in repro/internal/trainsim.
//   - Every table and figure of the paper regenerates through
//     repro/internal/experiments (CLI: cmd/ftcbench).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured comparison.
package repro
