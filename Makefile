# FT-Cache build/test/lint entry points. Everything here is plain go
# tool invocations — the Makefile exists so `make verify` is the one
# command a contributor (or CI) needs to know.

GOBIN := $(shell go env GOPATH)/bin

.PHONY: build test race lint vet ftclint verify bench adaptft clean

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# ftclint builds the analyzer driver into GOPATH/bin.
ftclint:
	go install ./cmd/ftclint

vet:
	go vet ./...

# lint = go vet plus the repo's own analyzer suite, run through the
# vet-tool protocol so findings carry package context and caching.
lint: ftclint vet
	go vet -vettool=$(GOBIN)/ftclint ./...

# verify is the full local gate: what CI enforces, in one command.
verify: build lint test

bench:
	go test -run=NONE -bench=. -benchtime=100x ./internal/hashring ./internal/rpc

# adaptft regenerates the adaptive-vs-static policy comparison
# (results/BENCH_adaptft.json): 2 phase-shift schedules x 3 seeds,
# adaptive must beat every static policy on each block.
adaptft:
	go run ./cmd/ftcbench -adaptft

clean:
	go clean ./...
	rm -f $(GOBIN)/ftclint
