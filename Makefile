# FT-Cache build/test/lint entry points. Everything here is plain go
# tool invocations — the Makefile exists so `make verify` is the one
# command a contributor (or CI) needs to know.

GOBIN := $(shell go env GOPATH)/bin

.PHONY: build test race lint vet ftclint static verify bench adaptft clean

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# ftclint builds the analyzer driver into GOPATH/bin.
ftclint:
	go install ./cmd/ftclint

vet:
	go vet ./...

# lint = go vet plus the repo's own analyzer suite, run through the
# vet-tool protocol so findings carry package context and caching.
lint: ftclint vet
	go vet -vettool=$(GOBIN)/ftclint ./...

# static is the full static gate, exactly what CI's static job
# enforces: gofmt (no unformatted files), go vet, then the ftclint
# suite through the standalone driver — packages in dependency order,
# cross-package facts, cycles and context/goroutine lifetimes included.
# Set FTCLINT_CACHE=<dir> to reuse per-package results across runs.
static: ftclint
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "$$unformatted"; echo "gofmt: the files above need formatting"; exit 1; fi
	go vet ./...
	$(GOBIN)/ftclint ./...

# verify is the full local gate: what CI enforces, in one command.
verify: build lint test

bench:
	go test -run=NONE -bench=. -benchtime=100x ./internal/hashring ./internal/rpc

# adaptft regenerates the adaptive-vs-static policy comparison
# (results/BENCH_adaptft.json): 2 phase-shift schedules x 3 seeds,
# adaptive must beat every static policy on each block.
adaptft:
	go run ./cmd/ftcbench -adaptft

clean:
	go clean ./...
	rm -f $(GOBIN)/ftclint
