package trace

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Recorder is the flight recorder: fixed-size lock-free rings of
// recently completed traces. Sampling happens at two points:
//
// At *creation* (sampleRate), consulted by StartTrace: 1-in-sampleRate
// requests get spans at all; the rest run with the nil span and pay one
// atomic add. The decision is by TraceID, so it is consistent across
// the whole request — an unsampled client never puts the trace ext on
// the wire, and the servers it touches skip their fragments too. This
// is the knob that keeps tracing within its hot-path budget at
// production rates.
//
// At *retention* (Offer), applied to every completed fragment of a
// sampled request:
//
//   - error-class fragments are always kept, in a dedicated ring that
//     baseline traffic can never overwrite — a trace with a failed
//     span is exactly the one a post-mortem needs, and its retention
//     must not depend on how busy the cache was;
//   - tail sampling keeps fragments whose duration clears a streaming
//     p99 threshold maintained from all offers (a log2-bucket
//     histogram, recomputed every histRecompute offers) — the slow
//     tail is kept even when head sampling would have dropped it;
//   - head sampling keeps 1-in-headRate of the rest by TraceID, so the
//     ring always holds a representative baseline. TraceIDs are
//     deterministic under SeedIDs, which keeps the decision — and the
//     exported artifact — replayable.
//
// Keeps overwrite the oldest slot; the rings never block a request.
type Recorder struct {
	ring []atomic.Pointer[Trace]
	next atomic.Uint64

	// errRing holds error-class fragments only: a separate ring so the
	// 100%-retention guarantee for errors survives arbitrary volumes of
	// healthy traffic (up to the ring's own capacity).
	errRing []atomic.Pointer[Trace]
	errNext atomic.Uint64

	// headRate keeps 1-in-N non-error, non-tail fragments (1 = all).
	headRate uint64

	// sampleRate gates span creation: 1-in-N requests trace (1 = all).
	// Atomic so operators can retune a live recorder.
	sampleRate atomic.Uint64

	offered  atomic.Uint64
	kept     atomic.Uint64
	errKept  atomic.Uint64
	tailKept atomic.Uint64

	// hist buckets offered durations by log2(ns) for the streaming
	// tail threshold; tailNs is the current p99 cutoff (0 = not yet
	// established, tail sampling inactive).
	hist   [64]atomic.Uint64
	tailNs atomic.Int64
}

// histRecompute is how many offers pass between tail-threshold
// refreshes. The threshold trails the live distribution by at most one
// window, which is fine: tail sampling is a retention heuristic, not an
// SLO measurement.
const histRecompute = 128

// tailQuantile is the duration quantile tail sampling retains above.
const tailQuantile = 0.99

// DefaultCapacity is the flight-recorder size used when Enable is
// called without an explicit recorder.
const DefaultCapacity = 4096

// NewRecorder returns a recorder holding up to capacity completed
// traces (plus as many error-class ones), head-sampling 1-in-headRate
// of unremarkable ones. Creation-time sampling starts at 1 (every
// request traces); use SetSampleRate for production-shaped load.
// capacity and headRate are clamped to at least 1.
func NewRecorder(capacity, headRate int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	if headRate < 1 {
		headRate = 1
	}
	r := &Recorder{
		ring:     make([]atomic.Pointer[Trace], capacity),
		errRing:  make([]atomic.Pointer[Trace], capacity),
		headRate: uint64(headRate),
	}
	r.sampleRate.Store(1)
	return r
}

// SetSampleRate makes 1-in-n requests trace at all (n clamped to at
// least 1). Unsampled requests run with the nil span: one atomic add
// of overhead, no clock reads, no wire extension, no server fragments.
func (r *Recorder) SetSampleRate(n int) {
	if n < 1 {
		n = 1
	}
	r.sampleRate.Store(uint64(n))
}

// SampleRate returns the current creation-time sampling rate.
func (r *Recorder) SampleRate() int { return int(r.sampleRate.Load()) }

// sampleTrace is the creation-time decision for a freshly minted trace
// id.
//
//ftc:hotpath
func (r *Recorder) sampleTrace(id uint64) bool {
	return id%r.sampleRate.Load() == 0
}

// defaultRecorder is where root spans deliver completed fragments.
var defaultRecorder atomic.Pointer[Recorder]

// SetRecorder installs r as the process recorder (nil detaches).
func SetRecorder(r *Recorder) { defaultRecorder.Store(r) }

// ActiveRecorder returns the installed recorder, or nil.
func ActiveRecorder() *Recorder { return defaultRecorder.Load() }

func activeRecorder() *Recorder { return defaultRecorder.Load() }

// Enable is the one-call setup: install a fresh recorder and turn span
// recording on. headRate 1 keeps every trace (tests, soaks); larger
// rates are for production-shaped load.
func Enable(capacity, headRate int) *Recorder {
	r := NewRecorder(capacity, headRate)
	SetRecorder(r)
	SetEnabled(true)
	return r
}

// Disable turns span recording off and detaches the recorder.
func Disable() {
	SetEnabled(false)
	SetRecorder(nil)
}

// bucketIdx maps a duration to its log2 histogram bucket.
func bucketIdx(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d)) - 1
}

// Offer presents a completed fragment for retention. Called from the
// root span's End; must not block.
func (r *Recorder) Offer(t *Trace) {
	n := r.offered.Add(1)
	r.hist[bucketIdx(t.Duration)].Add(1)
	if n%histRecompute == 0 {
		r.recomputeTail(n)
	}

	if t.Err {
		r.errKept.Add(1)
		r.kept.Add(1)
		idx := (r.errNext.Add(1) - 1) % uint64(len(r.errRing))
		r.errRing[idx].Store(t)
		return
	}
	keep := false
	switch {
	case r.tailSampled(t.Duration):
		r.tailKept.Add(1)
		keep = true
	case uint64(t.ID)%r.headRate == 0:
		keep = true
	}
	if !keep {
		return
	}
	r.kept.Add(1)
	idx := (r.next.Add(1) - 1) % uint64(len(r.ring))
	r.ring[idx].Store(t)
}

// tailSampled reports whether d clears the current tail threshold.
func (r *Recorder) tailSampled(d time.Duration) bool {
	cut := r.tailNs.Load()
	return cut > 0 && int64(d) >= cut
}

// recomputeTail rebuilds the p99 cutoff from the bucket counts. The
// cutoff is the lower bound of the bucket holding the tail quantile —
// coarse (power-of-two resolution) but cheap and monotone.
func (r *Recorder) recomputeTail(total uint64) {
	want := uint64(float64(total) * tailQuantile)
	if want < 1 {
		want = 1
	}
	var cum uint64
	for i := range r.hist {
		cum += r.hist[i].Load()
		if cum >= want {
			r.tailNs.Store(int64(1) << uint(i))
			return
		}
	}
}

// Snapshot returns the kept traces — baseline and error rings merged —
// oldest first by start time (ties broken by trace id for a stable
// order).
func (r *Recorder) Snapshot() []*Trace {
	out := make([]*Trace, 0, len(r.ring)+len(r.errRing))
	for i := range r.ring {
		if t := r.ring[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	for i := range r.errRing {
		if t := r.errRing[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Stats is a point-in-time view of recorder retention counters.
type Stats struct {
	Capacity   int    `json:"capacity"`
	HeadRate   int    `json:"head_rate"`
	SampleRate int    `json:"sample_rate"`
	Offered    uint64 `json:"offered"`
	Kept       uint64 `json:"kept"`
	ErrKept    uint64 `json:"err_kept"`
	TailKept   uint64 `json:"tail_kept"`
	TailCutoff int64  `json:"tail_cutoff_ns"`
}

// Stats returns current retention counters.
func (r *Recorder) Stats() Stats {
	return Stats{
		Capacity:   len(r.ring),
		HeadRate:   int(r.headRate),
		SampleRate: int(r.sampleRate.Load()),
		Offered:    r.offered.Load(),
		Kept:       r.kept.Load(),
		ErrKept:    r.errKept.Load(),
		TailKept:   r.tailKept.Load(),
		TailCutoff: r.tailNs.Load(),
	}
}
