package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// DebugPayload is the JSON shape of /debug/traces.
type DebugPayload struct {
	Now     time.Time `json:"now"`
	Enabled bool      `json:"enabled"`
	Stats   *Stats    `json:"stats,omitempty"`
	Traces  []*Trace  `json:"traces"`
}

// DebugSnapshot materializes the /debug/traces payload from the active
// recorder: up to max kept traces (0 = all), newest last.
func DebugSnapshot(max int) DebugPayload {
	out := DebugPayload{Now: time.Now(), Enabled: Enabled(), Traces: []*Trace{}}
	r := ActiveRecorder()
	if r == nil {
		return out
	}
	st := r.Stats()
	out.Stats = &st
	out.Traces = r.Snapshot()
	if max > 0 && len(out.Traces) > max {
		out.Traces = out.Traces[len(out.Traces)-max:]
	}
	return out
}

// HTTPHandler serves the flight recorder as JSON:
//
//   - GET /debug/traces            — retention stats plus kept traces
//     (?max=N caps the count, newest kept)
//   - GET /debug/traces?canonical=1 — the canonical (timing-stripped,
//     deterministically ordered) form used by replay comparisons
//
// telemetry.Handler mounts it next to /metrics and /debug/ftcache.
func HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		max := 0
		if s := req.URL.Query().Get("max"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				max = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if req.URL.Query().Get("canonical") != "" {
			b, err := CanonicalJSON(DebugSnapshot(max).Traces)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			_, _ = w.Write(b)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(DebugSnapshot(max))
	})
}
