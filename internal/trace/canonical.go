package trace

import (
	"encoding/json"
	"sort"
	"strings"
)

// Canonical export: the replay artifact. A seeded chaos soak must
// produce *byte-identical* trace output across runs, but raw traces
// carry wall-clock starts, measured durations, and (unseeded) random
// ids. The canonical form strips everything timing- or identity-
// dependent and keeps only causal structure:
//
//   - ids, start times, and durations are dropped;
//   - annotations whose key ends in "_ns" are dropped — by convention
//     every measured-timing annotation (queue waits, leg latencies)
//     uses that suffix, while structural annotations (node, path,
//     status, fault descriptions) do not;
//   - annotations whose key ends in "_id" are dropped for the same
//     reason: they carry span/trace ids (e.g. the coalescer's
//     leader_id linkage), which are identity, not structure;
//   - spans are keyed by (name, parent *name*) rather than ids, and
//     both spans and annotations are sorted.
//
// What remains — which spans ran, under whom, against which node, with
// which faults and errors — is exactly what a deterministic scenario
// reproduces bit-for-bit.

// timingSuffix marks annotations carrying measured durations;
// identitySuffix marks annotations carrying span/trace ids.
const (
	timingSuffix   = "_ns"
	identitySuffix = "_id"
)

// CanonicalSpan is one span in canonical form.
type CanonicalSpan struct {
	Name        string       `json:"name"`
	Parent      string       `json:"parent,omitempty"`
	Annotations []Annotation `json:"annotations,omitempty"`
	Err         string       `json:"err,omitempty"`
}

// CanonicalTrace is one trace in canonical form.
type CanonicalTrace struct {
	Root   string          `json:"root"`
	Remote bool            `json:"remote,omitempty"`
	Err    bool            `json:"err,omitempty"`
	Spans  []CanonicalSpan `json:"spans"`
}

// Canonicalize reduces t to its canonical form.
func Canonicalize(t *Trace) CanonicalTrace {
	names := make(map[SpanID]string, len(t.Spans))
	for _, s := range t.Spans {
		names[s.ID] = s.Name
	}
	spans := make([]CanonicalSpan, 0, len(t.Spans))
	for _, s := range t.Spans {
		cs := CanonicalSpan{
			Name:   s.Name,
			Parent: names[s.Parent], // "" for roots and remote parents
			Err:    s.Err,
		}
		for _, a := range s.Annotations {
			if strings.HasSuffix(a.Key, timingSuffix) || strings.HasSuffix(a.Key, identitySuffix) {
				continue
			}
			cs.Annotations = append(cs.Annotations, a)
		}
		sort.SliceStable(cs.Annotations, func(i, j int) bool {
			if cs.Annotations[i].Key != cs.Annotations[j].Key {
				return cs.Annotations[i].Key < cs.Annotations[j].Key
			}
			return cs.Annotations[i].Value < cs.Annotations[j].Value
		})
		spans = append(spans, cs)
	}
	sort.SliceStable(spans, func(i, j int) bool { return spanLess(spans[i], spans[j]) })
	return CanonicalTrace{Root: t.Root, Remote: t.Remote, Err: t.Err, Spans: spans}
}

func spanLess(a, b CanonicalSpan) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Parent != b.Parent {
		return a.Parent < b.Parent
	}
	if a.Err != b.Err {
		return a.Err < b.Err
	}
	return annotKey(a.Annotations) < annotKey(b.Annotations)
}

func annotKey(as []Annotation) string {
	var sb strings.Builder
	for _, a := range as {
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		sb.WriteString(a.Value)
		sb.WriteByte(';')
	}
	return sb.String()
}

// CanonicalJSON renders traces in canonical form as deterministic
// JSON: each trace canonicalized, then the set sorted by its encoded
// bytes. Two runs of the same seeded scenario produce identical
// output.
func CanonicalJSON(ts []*Trace) ([]byte, error) {
	encoded := make([]json.RawMessage, 0, len(ts))
	for _, t := range ts {
		b, err := json.Marshal(Canonicalize(t))
		if err != nil {
			return nil, err
		}
		encoded = append(encoded, b)
	}
	sort.Slice(encoded, func(i, j int) bool { return string(encoded[i]) < string(encoded[j]) })
	return json.MarshalIndent(encoded, "", "  ")
}
