package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// withRecorder installs a fresh enabled recorder for one test and
// restores the disabled state afterward.
func withRecorder(t *testing.T, capacity, headRate int) *Recorder {
	t.Helper()
	r := Enable(capacity, headRate)
	t.Cleanup(Disable)
	return r
}

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	ctx, root := StartTrace(context.Background(), "client.read")
	if root != nil {
		t.Fatalf("StartTrace with tracing disabled returned %v, want nil", root)
	}
	if _, _, ok := ContextIDs(ctx); ok {
		t.Fatal("ContextIDs reported a live span with tracing disabled")
	}
	// Every method must be nil-safe.
	_, child := StartSpan(ctx, "child")
	child.Annotate("k", "v")
	child.AnnotateInt("n", 1)
	child.AnnotateDuration("d_ns", time.Millisecond)
	child.SetError(errors.New("boom"))
	child.SetErrorString("boom")
	child.End()
	root.StartChild("x").End()
	root.End()
	if StartRemote("server.read", 1, 2) != nil {
		t.Fatal("StartRemote with tracing disabled returned a span")
	}
}

func TestSpanTreeAndRecording(t *testing.T) {
	rec := withRecorder(t, 16, 1)
	SeedIDs(42)

	ctx, root := StartTrace(context.Background(), "client.read")
	if root == nil {
		t.Fatal("StartTrace returned nil with tracing enabled")
	}
	tid, sid, ok := ContextIDs(ctx)
	if !ok || tid == 0 || sid != root.ID() {
		t.Fatalf("ContextIDs = (%d, %d, %v), want root ids", tid, sid, ok)
	}
	cctx, attempt := StartSpan(ctx, "read.attempt")
	attempt.Annotate("node", "n1")
	_, rpc := StartSpan(cctx, "rpc.read")
	rpc.AnnotateInt("status", 0)
	rpc.End()
	attempt.End()
	root.End()

	traces := rec.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID != tid || tr.Root != "client.read" || tr.Remote || tr.Err {
		t.Fatalf("trace = %+v, want id %d root client.read local ok", tr, tid)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(tr.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}
	if byName["read.attempt"].Parent != root.ID() {
		t.Fatalf("read.attempt parent = %d, want root %d", byName["read.attempt"].Parent, root.ID())
	}
	if byName["rpc.read"].Parent != byName["read.attempt"].ID {
		t.Fatal("rpc.read is not a child of read.attempt")
	}
	if got := byName["read.attempt"].Annotations; len(got) != 1 || got[0].Key != "node" || got[0].Value != "n1" {
		t.Fatalf("read.attempt annotations = %v", got)
	}
}

func TestEndIdempotentAndLateChildDropped(t *testing.T) {
	rec := withRecorder(t, 16, 1)

	ctx, root := StartTrace(context.Background(), "client.read")
	_, leg := StartSpan(ctx, "read.leg")
	root.End()
	root.End() // idempotent: must not offer twice
	leg.End()  // abandoned hedge leg ends after the root sealed

	traces := rec.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	if n := len(traces[0].Spans); n != 1 {
		t.Fatalf("sealed trace has %d spans, want 1 (late leg dropped)", n)
	}
}

func TestRemoteFragment(t *testing.T) {
	rec := withRecorder(t, 16, 1)

	s := StartRemote("server.read", 7, 9)
	if s == nil {
		t.Fatal("StartRemote returned nil with tracing enabled")
	}
	st := s.StartChild("storage.read")
	st.Annotate("source", "nvme")
	st.End()
	s.End()

	if s := StartRemote("server.read", 0, 0); s != nil {
		t.Fatal("StartRemote with zero trace id returned a span")
	}

	traces := rec.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID != 7 || !tr.Remote {
		t.Fatalf("fragment = id %d remote %v, want id 7 remote", tr.ID, tr.Remote)
	}
	for _, sp := range tr.Spans {
		if sp.Name == "server.read" && sp.Parent != 9 {
			t.Fatalf("server.read parent = %d, want the client's span id 9", sp.Parent)
		}
	}
}

func TestErrorClassAlwaysKept(t *testing.T) {
	rec := withRecorder(t, 1024, 1<<20) // head rate so high nothing passes by head alone

	const n = 500
	errs := 0
	for i := 0; i < n; i++ {
		ctx, root := StartTrace(context.Background(), "client.read")
		if i%10 == 0 {
			_, leg := StartSpan(ctx, "rpc.read")
			leg.SetError(errors.New("conn reset"))
			leg.End()
			errs++
		}
		root.End()
	}
	st := rec.Stats()
	if st.Offered != n {
		t.Fatalf("offered = %d, want %d", st.Offered, n)
	}
	if st.ErrKept != uint64(errs) {
		t.Fatalf("error-class kept %d of %d", st.ErrKept, errs)
	}
	got := 0
	for _, tr := range rec.Snapshot() {
		if tr.Err {
			got++
		}
	}
	if got != errs {
		t.Fatalf("snapshot holds %d error traces, want all %d", got, errs)
	}
}

func TestHeadSampling(t *testing.T) {
	rec := withRecorder(t, 4096, 4)
	SeedIDs(1)

	const n = 1000
	for i := 0; i < n; i++ {
		_, root := StartTrace(context.Background(), "client.read")
		root.End()
	}
	st := rec.Stats()
	// TraceID mod 4: splitmix64 output is uniform, expect ~n/4 kept
	// (plus whatever tail sampling retains once its threshold forms).
	if st.Kept < n/8 || st.Kept > n/2 {
		t.Fatalf("head sampling kept %d of %d at rate 4", st.Kept, n)
	}
}

func TestTailSamplingKeepsSlowTraces(t *testing.T) {
	rec := withRecorder(t, 4096, 1<<20) // head sampling effectively off

	// Feed enough fast offers to establish a p99 threshold, then offer
	// a slow outlier directly (synthetic durations — Offer is the unit
	// under test, End would measure real time).
	for i := 0; i < 2*histRecompute; i++ {
		rec.Offer(&Trace{ID: TraceID(i + 1), Root: "client.read", Duration: time.Millisecond})
	}
	st := rec.Stats()
	if st.TailCutoff <= 0 {
		t.Fatalf("tail cutoff not established after %d offers", st.Offered)
	}
	slow := &Trace{ID: 999999, Root: "client.read", Duration: 500 * time.Millisecond}
	before := rec.Stats().TailKept
	rec.Offer(slow)
	if rec.Stats().TailKept != before+1 {
		t.Fatal("slow outlier was not tail-sampled")
	}
	found := false
	for _, tr := range rec.Snapshot() {
		if tr.ID == slow.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("tail-sampled trace missing from snapshot")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	rec := withRecorder(t, 4, 1)
	for i := 0; i < 10; i++ {
		_, root := StartTrace(context.Background(), fmt.Sprintf("t%d", i))
		root.End()
	}
	traces := rec.Snapshot()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d traces, want capacity 4", len(traces))
	}
}

func TestSeedIDsDeterministic(t *testing.T) {
	SeedIDs(123)
	a, b := nextID(), nextID()
	SeedIDs(123)
	if x := nextID(); x != a {
		t.Fatalf("first id after reseed = %d, want %d", x, a)
	}
	if x := nextID(); x != b {
		t.Fatalf("second id after reseed = %d, want %d", x, b)
	}
	if a == 0 || b == 0 || a == b {
		t.Fatalf("ids not distinct non-zero: %d %d", a, b)
	}
}

// runScenario performs one deterministic traced request mix and
// returns the canonical export.
func runScenario(t *testing.T, seed int64) []byte {
	t.Helper()
	rec := Enable(64, 1)
	defer Disable()
	SeedIDs(seed)

	for i := 0; i < 3; i++ {
		ctx, root := StartTrace(context.Background(), "client.read")
		root.Annotate("path", fmt.Sprintf("/data/f%d", i))
		cctx, attempt := StartSpan(ctx, "read.attempt")
		attempt.Annotate("node", "n1")
		attempt.AnnotateDuration("leg_ns", time.Duration(1000+i)) // timing: stripped
		_, rpc := StartSpan(cctx, "rpc.read")
		rpc.Annotate("chaos", "latency=5ms")
		if i == 2 {
			rpc.SetErrorString("timeout")
		}
		rpc.End()
		attempt.End()
		root.End()
	}
	b, err := CanonicalJSON(rec.Snapshot())
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	return b
}

func TestCanonicalExportDeterministic(t *testing.T) {
	a := runScenario(t, 7)
	time.Sleep(2 * time.Millisecond) // shift wall clock: must not matter
	b := runScenario(t, 7)
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical export differs across identical seeded runs:\n%s\n---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte("latency=5ms")) {
		t.Fatal("canonical export lost the chaos annotation")
	}
	if bytes.Contains(a, []byte("leg_ns")) {
		t.Fatal("canonical export kept a timing annotation")
	}
	if bytes.Contains(a, []byte("trace_id")) || bytes.Contains(a, []byte("duration")) {
		t.Fatal("canonical export kept ids or durations")
	}
}

func TestConcurrentSpanEnds(t *testing.T) {
	rec := withRecorder(t, 256, 1)
	const traces = 50
	done := make(chan struct{}, traces)
	for i := 0; i < traces; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			ctx, root := StartTrace(context.Background(), "client.read")
			legs := make(chan struct{}, 4)
			for l := 0; l < 4; l++ {
				go func(l int) {
					_, leg := StartSpan(ctx, "read.leg")
					leg.AnnotateInt("leg", int64(l))
					leg.End()
					legs <- struct{}{}
				}(l)
			}
			for l := 0; l < 4; l++ {
				<-legs
			}
			root.End()
		}()
	}
	for i := 0; i < traces; i++ {
		<-done
	}
	if got := len(rec.Snapshot()); got != traces {
		t.Fatalf("recorded %d traces, want %d", got, traces)
	}
	for _, tr := range rec.Snapshot() {
		if len(tr.Spans) != 5 {
			t.Fatalf("trace has %d spans, want 5", len(tr.Spans))
		}
	}
}
