// Package trace is the per-request causal tracing layer of the FT-Cache
// reproduction: a low-overhead span recorder in the spirit of the
// lock-free telemetry registry (PR 2), built for the question the
// metrics cannot answer — *why* did this read's p99 move: queueing,
// hedging, retries, or a PFS fallback?
//
// Design points (DESIGN.md §14):
//
//   - Disabled is free. A process-wide atomic gate guards every entry
//     point; with tracing off, Start* returns a nil *Span after one
//     atomic load, and every Span method is nil-safe, so instrumented
//     hot paths carry no locks, no allocation, and no time syscalls.
//   - Context propagation in-process, ids on the wire. A span travels
//     through a request DAG via context.Context; across the RPC
//     boundary only the (TraceID, parent SpanID) pair is carried, as an
//     optional versioned payload extension (wire.TraceExt). A server
//     records its handler spans as a *fragment* — a trace with the
//     client's TraceID rooted at the client's span — into its own
//     node-local flight recorder; fragments are stitched by TraceID at
//     export time.
//   - Completed traces, not live spans, are the unit of collection: a
//     root span's End assembles its finished children and offers the
//     trace to the flight recorder (recorder.go), which applies
//     head + tail sampling. Spans that outlive their root (abandoned
//     hedge legs) are dropped — by then the race has been decided and
//     the winner's timing recorded.
//
// Determinism: span ids come from a seedable splitmix64 counter
// (SeedIDs), so a seeded replay produces identical ids, and Canonical
// export (recorder.go) strips timings entirely — the byte-identical
// replay artifact chaos soaks assert on.
package trace

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one logical request end-to-end (all fragments of
// one request share it). Zero means "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// enabled is the process-wide gate. All Start* entry points check it
// first; everything downstream is nil-safe, so flipping it at runtime
// is safe (in-flight traces complete normally).
var enabled atomic.Bool

// SetEnabled turns span recording on or off process-wide.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether span recording is on.
//
//ftc:hotpath
func Enabled() bool { return enabled.Load() }

// idState is the seedable id generator: a splitmix64 walk from a seed.
// One atomic add per id, no locks; never yields zero.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) | 1)
}

// SeedIDs makes id generation deterministic from seed — seeded soaks
// and replay tests call it so trace/span ids are identical run to run.
func SeedIDs(seed int64) { idState.Store(uint64(seed)*0x9E3779B97F4A7C15 + 1) }

// nextID mints a non-zero id (splitmix64 output of an atomic counter).
//
//ftc:hotpath
func nextID() uint64 {
	z := idState.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Annotation is one key/value note on a span. Values are strings so
// exports are stable and the canonical form needs no type dispatch.
type Annotation struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanRecord is one completed span as it appears in an exported trace.
type SpanRecord struct {
	ID          SpanID        `json:"id"`
	Parent      SpanID        `json:"parent,omitempty"`
	Name        string        `json:"name"`
	Start       time.Time     `json:"start"`
	Duration    time.Duration `json:"duration_ns"`
	Annotations []Annotation  `json:"annotations,omitempty"`
	Err         string        `json:"err,omitempty"`
}

// Trace is one completed trace (or node-local fragment of one): the
// unit the flight recorder stores and /debug/traces exports.
type Trace struct {
	ID TraceID `json:"trace_id"`
	// Root is the root span's name (the fragment's entry point).
	Root string `json:"root"`
	// Remote marks a server-side fragment: the root span's Parent is a
	// span id minted by another node.
	Remote   bool          `json:"remote,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Err reports whether any span in the fragment recorded an error —
	// the error-class bit tail sampling always retains.
	Err   bool         `json:"err,omitempty"`
	Spans []SpanRecord `json:"spans"`
}

// traceData is the mutable spine shared by every live span of one
// fragment. Completed spans append under mu; the root's End snapshots
// and seals it. Contention is negligible: spans of one request complete
// a handful at a time.
type traceData struct {
	id       TraceID
	remote   bool
	recorder *Recorder

	mu     sync.Mutex
	sealed bool
	errs   int
	spans  []SpanRecord
}

// Span is one live span. The nil *Span is the disabled/no-trace form:
// every method no-ops on it, so call sites never branch on enablement.
type Span struct {
	tr     *traceData
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	annots []Annotation
	err    string
	root   bool
	ended  bool
}

// ctxKey carries the current *Span through a request DAG.
type ctxKey struct{}

// NewContext returns ctx carrying s.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextIDs returns the wire-propagation pair for the span in ctx:
// (trace id, span id, true), or zeros when ctx carries no live span.
//
//ftc:hotpath
func ContextIDs(ctx context.Context) (TraceID, SpanID, bool) {
	s := FromContext(ctx)
	if s == nil || s.tr == nil {
		return 0, 0, false
	}
	return s.tr.id, s.id, true
}

// StartTrace begins a new trace rooted at a span called name and
// returns ctx carrying it. With tracing disabled it returns (ctx, nil)
// after one atomic load; with a recorder installed, the recorder's
// creation-time sample rate decides by trace id whether this request
// traces at all — the unsampled path costs one atomic add and takes no
// clock reading. The returned span must be ended on all paths (the
// spanend analyzer enforces this).
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	rec := activeRecorder()
	id := nextID()
	if rec != nil && !rec.sampleTrace(id) {
		return ctx, nil
	}
	tr := &traceData{id: TraceID(id), recorder: rec}
	s := &Span{tr: tr, id: SpanID(nextID()), name: name, start: time.Now(), root: true}
	return NewContext(ctx, s), s
}

// StartRemote begins a server-side fragment of trace tid, rooted at a
// span called name whose parent is the client's span. It returns nil
// with tracing disabled or when tid is zero (the request carried no
// context).
func StartRemote(name string, tid TraceID, parent SpanID) *Span {
	if !enabled.Load() || tid == 0 {
		return nil
	}
	tr := &traceData{id: tid, remote: true, recorder: activeRecorder()}
	return &Span{tr: tr, id: SpanID(nextID()), parent: parent, name: name, start: time.Now(), root: true}
}

// StartSpan begins a child of the span in ctx and returns ctx carrying
// the child. Without a live span in ctx (or with tracing disabled) it
// returns (ctx, nil).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil || parent.tr == nil {
		return ctx, nil
	}
	s := &Span{tr: parent.tr, id: SpanID(nextID()), parent: parent.id, name: name, start: time.Now()}
	return NewContext(ctx, s), s
}

// StartChild begins a child span without context plumbing — for
// synchronous server handlers that never fan out.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	return &Span{tr: s.tr, id: SpanID(nextID()), parent: s.id, name: name, start: time.Now()}
}

// ID returns the span's id (zero on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the owning trace's id (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil || s.tr == nil {
		return 0
	}
	return s.tr.id
}

// Annotate attaches a key/value note. Annotations are owned by the
// span's goroutine until End, so no lock is taken.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.annots = append(s.annots, Annotation{Key: key, Value: value})
}

// AnnotateInt attaches an integer-valued note.
func (s *Span) AnnotateInt(key string, v int64) {
	if s == nil {
		return
	}
	s.annots = append(s.annots, Annotation{Key: key, Value: strconv.FormatInt(v, 10)})
}

// AnnotateDuration attaches a duration-valued note in nanoseconds.
// Timing annotations are stripped from the canonical export along with
// every other timing.
func (s *Span) AnnotateDuration(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.annots = append(s.annots, Annotation{Key: key, Value: strconv.FormatInt(int64(d), 10)})
}

// SetError marks the span failed. Any failed span makes its whole
// fragment error-class, which tail sampling always retains.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
}

// SetErrorString marks the span failed with a literal message.
func (s *Span) SetErrorString(msg string) {
	if s == nil {
		return
	}
	s.err = msg
}

// End completes the span. Ending a child appends its record to the
// fragment; ending the root seals the fragment and offers it to the
// flight recorder. End is idempotent; a child ending after its root
// sealed (an abandoned hedge leg) is dropped.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	rec := SpanRecord{
		ID:          s.id,
		Parent:      s.parent,
		Name:        s.name,
		Start:       s.start,
		Duration:    time.Since(s.start),
		Annotations: s.annots,
		Err:         s.err,
	}
	tr := s.tr
	tr.mu.Lock()
	if tr.sealed {
		tr.mu.Unlock()
		return
	}
	if s.err != "" {
		tr.errs++
	}
	tr.spans = append(tr.spans, rec)
	if !s.root {
		tr.mu.Unlock()
		return
	}
	tr.sealed = true
	spans := tr.spans
	errs := tr.errs
	tr.mu.Unlock()

	t := &Trace{
		ID:       tr.id,
		Root:     s.name,
		Remote:   tr.remote,
		Start:    s.start,
		Duration: rec.Duration,
		Err:      errs > 0,
		Spans:    spans,
	}
	if r := tr.recorder; r != nil {
		r.Offer(t)
	}
}
