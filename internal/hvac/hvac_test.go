package hvac

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// staticRouter always routes to one node — a minimal Router for tests
// that exercise the client/server path without fault-tolerance policy.
type staticRouter struct{ node cluster.NodeID }

func (s staticRouter) Name() string              { return "static" }
func (s staticRouter) Route(string) Decision     { return Decision{Kind: RouteNode, Node: s.node} }
func (s staticRouter) NodeFailed(cluster.NodeID) {}

// testCluster spins up n servers over an in-process network plus a PFS
// preloaded with files, and returns a client factory.
type testCluster struct {
	t       *testing.T
	network *rpc.InprocNetwork
	pfs     *storage.PFS
	servers map[cluster.NodeID]*Server
	nodes   []cluster.NodeID
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:       t,
		network: rpc.NewInprocNetwork(),
		pfs:     storage.NewPFS(),
		servers: make(map[cluster.NodeID]*Server),
	}
	for i := 0; i < n; i++ {
		node := cluster.NodeID(fmt.Sprintf("node-%02d", i))
		tc.nodes = append(tc.nodes, node)
		srv := NewServer(ServerConfig{Node: node}, tc.pfs)
		lis, err := tc.network.Listen(string(node))
		if err != nil {
			t.Fatalf("listen %s: %v", node, err)
		}
		go srv.Serve(lis)
		tc.servers[node] = srv
	}
	t.Cleanup(func() {
		for _, s := range tc.servers {
			s.Close()
		}
	})
	return tc
}

func (tc *testCluster) endpoints() map[cluster.NodeID]string {
	eps := make(map[cluster.NodeID]string, len(tc.nodes))
	for _, n := range tc.nodes {
		eps[n] = string(n)
	}
	return eps
}

func (tc *testCluster) client(router Router, timeout time.Duration) *Client {
	tc.t.Helper()
	c, err := NewClient(ClientConfig{
		Endpoints:    tc.endpoints(),
		Network:      tc.network,
		Router:       router,
		PFS:          tc.pfs,
		RPCTimeout:   timeout,
		TimeoutLimit: 2,
	})
	if err != nil {
		tc.t.Fatalf("NewClient: %v", err)
	}
	tc.t.Cleanup(c.Close)
	return c
}

func TestReadMissThenHit(t *testing.T) {
	tc := newTestCluster(t, 1)
	tc.pfs.Put("data/f1", []byte("payload-1"))
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	ctx := context.Background()

	// First read: PFS fallback on the server.
	got, err := c.Read(ctx, "data/f1")
	if err != nil || string(got) != "payload-1" {
		t.Fatalf("read 1: %q, %v", got, err)
	}
	st := c.Stats()
	if st.ServedPFS != 1 || st.ServedNVMe != 0 {
		t.Fatalf("first read should be a PFS fallback: %+v", st)
	}

	// After the mover runs, the second read is an NVMe hit.
	tc.servers["node-00"].Mover().Flush()
	got, err = c.Read(ctx, "data/f1")
	if err != nil || string(got) != "payload-1" {
		t.Fatalf("read 2: %q, %v", got, err)
	}
	st = c.Stats()
	if st.ServedNVMe != 1 {
		t.Fatalf("second read should hit NVMe: %+v", st)
	}
}

func TestReadRange(t *testing.T) {
	tc := newTestCluster(t, 1)
	tc.pfs.Put("f", []byte("0123456789"))
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	ctx := context.Background()

	cases := []struct {
		off, n int64
		want   string
	}{
		{0, -1, "0123456789"},
		{3, 4, "3456"},
		{8, 100, "89"}, // clipped at EOF
		{10, -1, ""},
	}
	for _, cse := range cases {
		got, err := c.ReadRange(ctx, "f", cse.off, cse.n)
		if err != nil || string(got) != cse.want {
			t.Errorf("ReadRange(%d,%d) = %q, %v; want %q", cse.off, cse.n, got, err, cse.want)
		}
	}
	if _, err := c.ReadRange(ctx, "f", -1, 2); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := c.ReadRange(ctx, "f", 11, 2); err == nil {
		t.Error("offset past EOF should fail")
	}
}

func TestReadNotFound(t *testing.T) {
	tc := newTestCluster(t, 1)
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	if _, err := c.Read(context.Background(), "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestStat(t *testing.T) {
	tc := newTestCluster(t, 1)
	tc.pfs.Put("f", []byte("12345"))
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	ctx := context.Background()

	st, err := c.Stat(ctx, "f")
	if err != nil || st.Size != 5 || st.Cached {
		t.Fatalf("stat uncached = %+v, %v", st, err)
	}
	c.Read(ctx, "f")
	tc.servers["node-00"].Mover().Flush()
	st, err = c.Stat(ctx, "f")
	if err != nil || !st.Cached {
		t.Fatalf("stat cached = %+v, %v", st, err)
	}
	if _, err := c.Stat(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("stat missing err = %v", err)
	}
}

func TestServerStatsAndPing(t *testing.T) {
	tc := newTestCluster(t, 1)
	tc.pfs.Put("f", []byte("abc"))
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	ctx := context.Background()

	if err := c.Ping(ctx, "node-00"); err != nil {
		t.Fatalf("ping: %v", err)
	}
	c.Read(ctx, "f")
	tc.servers["node-00"].Mover().Flush()
	c.Read(ctx, "f")
	st, err := c.ServerStats(ctx, "node-00")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.NVMeObjects != 1 || st.PFSFallbacks != 1 || st.NVMeHits != 1 {
		t.Errorf("server stats = %+v", st)
	}
}

func TestInvalidate(t *testing.T) {
	tc := newTestCluster(t, 1)
	srv := tc.servers["node-00"]
	srv.NVMe().Put("f", []byte("cached"))
	c := tc.client(staticRouter{node: "node-00"}, time.Second)

	// Direct RPC for invalidate (no client helper needed in production).
	conn, _ := tc.network.Dial("node-00")
	rcli := rpc.NewClient(conn)
	defer rcli.Close()
	req := StatReq{Path: "f"}
	_, status, err := rcli.Call(context.Background(), OpInvalidate, req.Marshal())
	if err != nil || status != rpc.StatusOK {
		t.Fatalf("invalidate: status=%d err=%v", status, err)
	}
	if srv.NVMe().Has("f") {
		t.Error("file still cached after invalidate")
	}
	_ = c
}

func TestTimeoutEvidenceAndRouterNotification(t *testing.T) {
	tc := newTestCluster(t, 2)
	tc.pfs.Put("f", []byte("x"))

	var failedMu sync.Mutex
	var failed []cluster.NodeID
	router := &notifyRouter{
		target: "node-00",
		onFail: func(n cluster.NodeID) {
			failedMu.Lock()
			failed = append(failed, n)
			failedMu.Unlock()
		},
	}
	c := tc.client(router, 50*time.Millisecond)
	tc.servers["node-00"].SetUnresponsive(true)

	_, err := c.Read(context.Background(), "f")
	// TimeoutLimit=2: after 2 timeouts the node is declared and the
	// router switches to node-01.
	if err != nil {
		t.Fatalf("read should succeed via failover: %v", err)
	}
	failedMu.Lock()
	defer failedMu.Unlock()
	if len(failed) != 1 || failed[0] != "node-00" {
		t.Errorf("router notified with %v, want [node-00]", failed)
	}
	st := c.Stats()
	if st.Timeouts < 2 {
		t.Errorf("timeouts = %d, want >= 2", st.Timeouts)
	}
	if st.FailoverReads != 1 {
		t.Errorf("failoverReads = %d, want 1", st.FailoverReads)
	}
}

// notifyRouter routes to target until told it failed, then to node-01.
type notifyRouter struct {
	mu     sync.Mutex
	target cluster.NodeID
	onFail func(cluster.NodeID)
}

func (r *notifyRouter) Name() string { return "notify" }
func (r *notifyRouter) Route(string) Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Decision{Kind: RouteNode, Node: r.target}
}
func (r *notifyRouter) NodeFailed(n cluster.NodeID) {
	r.mu.Lock()
	r.target = "node-01"
	r.mu.Unlock()
	r.onFail(n)
}

func TestServerKilledConnectionFailure(t *testing.T) {
	tc := newTestCluster(t, 2)
	tc.pfs.Put("f", []byte("x"))
	router := &notifyRouter{target: "node-00", onFail: func(cluster.NodeID) {}}
	c := tc.client(router, 200*time.Millisecond)
	ctx := context.Background()

	// Healthy read first so a connection exists.
	if _, err := c.Read(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	tc.servers["node-00"].Close() // hard kill: conns drop
	// Reads keep working via failover to node-01.
	if _, err := c.Read(ctx, "f"); err != nil {
		t.Fatalf("read after kill: %v", err)
	}
}

func TestReadExhaustionAgainstDeadOnlyNode(t *testing.T) {
	tc := newTestCluster(t, 1)
	tc.pfs.Put("f", []byte("x"))
	// staticRouter never reroutes, so attempts exhaust.
	c, err := NewClient(ClientConfig{
		Endpoints:    tc.endpoints(),
		Network:      tc.network,
		Router:       staticRouter{node: "node-00"},
		PFS:          tc.pfs,
		RPCTimeout:   20 * time.Millisecond,
		TimeoutLimit: 2,
		MaxAttempts:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tc.servers["node-00"].SetUnresponsive(true)
	if _, err := c.Read(context.Background(), "f"); !errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v, want ErrExhausted", err)
	}
}

func TestParentContextCancellation(t *testing.T) {
	tc := newTestCluster(t, 1)
	tc.pfs.Put("f", []byte("x"))
	c := tc.client(staticRouter{node: "node-00"}, 10*time.Second)
	tc.servers["node-00"].SetUnresponsive(true)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	if _, err := c.Read(ctx, "f"); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestConcurrentReadsSingleServer(t *testing.T) {
	tc := newTestCluster(t, 1)
	for i := 0; i < 32; i++ {
		tc.pfs.Put(fmt.Sprintf("f%d", i), bytes.Repeat([]byte{byte(i)}, 128))
	}
	c := tc.client(staticRouter{node: "node-00"}, 2*time.Second)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				p := fmt.Sprintf("f%d", (g*16+i)%32)
				data, err := c.Read(ctx, p)
				if err != nil {
					errs <- err
					return
				}
				if len(data) != 128 {
					errs <- fmt.Errorf("short read %d", len(data))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	rr := ReadReq{Path: "a/b", Offset: 7, Length: -1}
	var rr2 ReadReq
	if err := rr2.Unmarshal(rr.Marshal()); err != nil || rr2 != rr {
		t.Errorf("ReadReq: %+v, %v", rr2, err)
	}
	resp := ReadResp{Source: SourcePFS, FileSize: 99, Data: []byte("zzz")}
	var resp2 ReadResp
	if err := resp2.Unmarshal(resp.Marshal()); err != nil ||
		resp2.Source != resp.Source || resp2.FileSize != resp.FileSize ||
		!bytes.Equal(resp2.Data, resp.Data) {
		t.Errorf("ReadResp: %+v, %v", resp2, err)
	}
	st := StatResp{Size: 12, Cached: true}
	var st2 StatResp
	if err := st2.Unmarshal(st.Marshal()); err != nil || st2 != st {
		t.Errorf("StatResp: %+v, %v", st2, err)
	}
	ss := StatsResp{NVMeObjects: 1, NVMeBytes: 2, NVMeHits: 3, NVMeMisses: 4,
		PFSFallbacks: 5, MoverEnqueued: 6, MoverDropped: 7}
	var ss2 StatsResp
	if err := ss2.Unmarshal(ss.Marshal()); err != nil || ss2 != ss {
		t.Errorf("StatsResp: %+v, %v", ss2, err)
	}

	// Truncated payloads must error, not panic.
	for _, m := range [][]byte{rr.Marshal(), resp.Marshal(), st.Marshal(), ss.Marshal()} {
		var r1 ReadReq
		var r2 ReadResp
		var r3 StatResp
		var r4 StatsResp
		if len(m) < 2 {
			continue
		}
		trunc := m[:len(m)/2]
		if r1.Unmarshal(trunc) == nil && r2.Unmarshal(trunc) == nil &&
			r3.Unmarshal(trunc) == nil && r4.Unmarshal(trunc) == nil {
			t.Error("all decoders accepted a truncated payload")
		}
	}
}

func BenchmarkReadCached(b *testing.B) {
	network := rpc.NewInprocNetwork()
	pfs := storage.NewPFS()
	data := make([]byte, 64<<10)
	pfs.Put("f", data)
	srv := NewServer(ServerConfig{Node: "n0"}, pfs)
	lis, _ := network.Listen("n0")
	go srv.Serve(lis)
	defer srv.Close()
	c, err := NewClient(ClientConfig{
		Endpoints:  map[cluster.NodeID]string{"n0": "n0"},
		Network:    network,
		Router:     staticRouter{node: "n0"},
		PFS:        pfs,
		RPCTimeout: 5 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	c.Read(ctx, "f")
	srv.Mover().Flush()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(ctx, "f"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestClientLatencyTracking(t *testing.T) {
	tc := newTestCluster(t, 1)
	tc.pfs.Put("f", []byte("abc"))
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := c.Read(ctx, "f"); err != nil {
			t.Fatal(err)
		}
	}
	lat := c.Latency()
	if lat.N != 50 {
		t.Errorf("latency samples = %d, want 50", lat.N)
	}
	if lat.Mean <= 0 || lat.P50 <= 0 || lat.P95 < lat.P50 {
		t.Errorf("latency snapshot malformed: %+v", lat)
	}
	// Independent P² estimators can invert marginally at small N; allow
	// slack while still catching gross inversions.
	if lat.P99 < lat.P95*0.8 {
		t.Errorf("p99 (%v) far below p95 (%v)", lat.P99, lat.P95)
	}
	if lat.Max < lat.Mean || lat.Min > lat.Mean {
		t.Errorf("min/mean/max inconsistent: %+v", lat)
	}
}
