package hvac

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

func TestMoverStoresAsync(t *testing.T) {
	nvme := storage.NewNVMe(0)
	m := NewMover(nvme, 16, 2)
	defer m.Close()
	for i := 0; i < 10; i++ {
		if !m.Enqueue(fmt.Sprintf("f%d", i), []byte{byte(i)}) {
			t.Fatalf("enqueue %d dropped", i)
		}
	}
	m.Flush()
	for i := 0; i < 10; i++ {
		if !nvme.Has(fmt.Sprintf("f%d", i)) {
			t.Errorf("f%d not cached after flush", i)
		}
	}
	enq, drop := m.Counters()
	if enq != 10 || drop != 0 {
		t.Errorf("counters: enq=%d drop=%d", enq, drop)
	}
}

func TestMoverDropsWhenSaturated(t *testing.T) {
	nvme := storage.NewNVMe(0)
	m := NewMover(nvme, 1, 1)
	// Block the single worker by filling the queue faster than a tiny
	// queue drains; with depth 1 at least some of a burst must drop.
	dropped := false
	for i := 0; i < 1000; i++ {
		if !m.Enqueue(fmt.Sprintf("f%d", i), make([]byte, 8)) {
			dropped = true
		}
	}
	m.Close()
	_, drops := m.Counters()
	if dropped != (drops > 0) {
		t.Errorf("inconsistent drop reporting: saw=%v counter=%d", dropped, drops)
	}
}

func TestMoverCloseIdempotentAndRejects(t *testing.T) {
	m := NewMover(storage.NewNVMe(0), 4, 1)
	m.Close()
	m.Close() // must not panic
	if m.Enqueue("x", []byte("y")) {
		t.Error("enqueue after close should report drop")
	}
	_, drops := m.Counters()
	if drops != 1 {
		t.Errorf("drops = %d, want 1", drops)
	}
}

func TestMoverFlushOnEmptyQueue(t *testing.T) {
	m := NewMover(storage.NewNVMe(0), 4, 1)
	defer m.Close()
	m.Flush() // must not block
}

func TestMoverConcurrentEnqueue(t *testing.T) {
	nvme := storage.NewNVMe(0)
	m := NewMover(nvme, 1024, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Enqueue(fmt.Sprintf("g%d-f%d", g, i), []byte("d"))
			}
		}(g)
	}
	wg.Wait()
	m.Flush()
	objs, _ := nvme.Stats()
	enq, drop := m.Counters()
	if int64(objs) != enq-drop && drop == 0 && objs != 800 {
		t.Errorf("objs=%d enq=%d drop=%d", objs, enq, drop)
	}
	m.Close()
}

func TestMoverCountsFillErrors(t *testing.T) {
	// Capacity 4: a 10-byte object can never cache, so every fill —
	// inline or queued — fails with ErrTooLarge.
	nvme := storage.NewNVMe(4)
	m := NewMover(nvme, 16, 1)
	defer m.Close()

	big := []byte("0123456789")
	if !m.Enqueue("huge.bin", big) {
		t.Fatal("idle-path enqueue reported a drop")
	}
	m.Flush()

	inline, errs, lastErr := m.FillStats()
	if inline != 1 {
		t.Errorf("inline fills = %d, want 1", inline)
	}
	if errs != 1 {
		t.Errorf("fill errors = %d, want 1", errs)
	}
	if lastErr == "" {
		t.Error("lastErr empty after failed fill")
	}
	if nvme.Has("huge.bin") {
		t.Error("oversized object cached despite capacity")
	}

	// A small object still fills fine and does not disturb the error
	// record.
	if !m.Enqueue("ok.bin", []byte("ab")) {
		t.Fatal("small enqueue dropped")
	}
	m.Flush()
	if !nvme.Has("ok.bin") {
		t.Error("small object not cached")
	}
	if _, errs, _ := m.FillStats(); errs != 1 {
		t.Errorf("fill errors after success = %d, want still 1", errs)
	}
}
