package hvac

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/loadctl"
	"repro/internal/rpc"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// DecisionKind says where a read should go.
type DecisionKind uint8

// Routing decisions.
const (
	// RouteNode: ask the HVAC server on Decision.Node.
	RouteNode DecisionKind = iota
	// RoutePFS: bypass the cache layer and read the PFS directly.
	RoutePFS
	// RouteAbort: the job cannot continue (NoFT semantics — the paper's
	// baseline terminates on the first node failure).
	RouteAbort
)

// Decision is a Router verdict for one path.
type Decision struct {
	Kind DecisionKind
	Node cluster.NodeID
}

// Router is the pluggable fault-tolerance policy: it maps paths to
// targets and absorbs failure notifications. Package ftcache provides
// the paper's three policies (NoFT, PFS redirection, ring recaching).
// Implementations must be goroutine-safe.
type Router interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Route decides where to read path from.
	Route(path string) Decision
	// NodeFailed informs the policy that node was declared failed.
	NodeFailed(node cluster.NodeID)
}

// RecoveryAware is the optional Router extension for elastic scale-up:
// routers implementing it are told when a previously failed node is
// revived, so placement can re-admit it (the ring adds it back; the
// redirection strategy stops bypassing it).
type RecoveryAware interface {
	NodeRecovered(node cluster.NodeID)
}

// Replicator is the optional Router extension enabling the replication
// feature: Replicas returns up to n distinct live nodes for path, the
// first being the primary owner. When a client is configured with
// ReplicationFactor > 1 and its Router implements Replicator, objects
// fetched from the PFS are pushed to the secondary owners so a primary
// failure costs no PFS traffic at all.
type Replicator interface {
	Replicas(path string, n int) []cluster.NodeID
}

// Client errors.
var (
	// ErrAborted: the router declared the job dead (NoFT after failure).
	ErrAborted = errors.New("hvac: job aborted - node failed without fault tolerance")
	// ErrNotFound: the path exists on neither cache nor PFS.
	ErrNotFound = errors.New("hvac: file not found")
	// ErrExhausted: retries exhausted without a successful read.
	ErrExhausted = errors.New("hvac: read attempts exhausted")
	// ErrOverloaded: the server shed the request (admission control). The
	// node is alive — this is a redirect signal, never failure evidence.
	ErrOverloaded = errors.New("hvac: server overloaded")
)

// ClientConfig configures an HVAC client instance.
type ClientConfig struct {
	// Endpoints maps every server node to its dialable endpoint name.
	Endpoints map[cluster.NodeID]string
	// Network supplies Dial (TCP or in-process).
	Network rpc.Network
	// Router is the fault-tolerance policy.
	Router Router
	// PFS is the directly mounted parallel filesystem, used for RoutePFS.
	PFS storage.Store
	// RPCTimeout is the paper's TTL: the per-request deadline after which
	// a request counts as a timeout. Must exceed the longest expected
	// service latency (§IV-A).
	RPCTimeout time.Duration
	// TimeoutLimit is the consecutive-timeout threshold (TIMEOUT_LIMIT);
	// <= 0 selects cluster.DefaultTimeoutLimit.
	TimeoutLimit int
	// MaxAttempts bounds routing retries per read; <= 0 selects
	// TimeoutLimit + 8.
	MaxAttempts int
	// ReplicationFactor, when > 1 and the Router implements Replicator,
	// pushes PFS-fetched objects to that many distinct ring owners.
	ReplicationFactor int
	// LoadControl enables the hot-object load-control subsystem (read
	// coalescing, hot-key detection, replica fan-out with hedged reads).
	// nil leaves the client's behavior exactly as before. Replica fan-out
	// additionally requires the Router to implement Replicator.
	LoadControl *loadctl.Config
	// Ingest, when non-nil, enables the batched async ingest pipeline:
	// PutAsync buffers puts per destination node and ships them as
	// OpPutBatch frames, and replica pushes ride the same batches. nil
	// keeps every put (and replica push) a standalone synchronous OpPut.
	Ingest *IngestConfig
	// Retry, when non-nil, absorbs connection-class RPC failures (reset,
	// refused, listener gone) with bounded jittered backoff before they
	// become failure evidence. Timeout-class failures are never retried:
	// those are the detector's signal (see rpc.RetryPolicy). nil disables
	// retries — every failure is evidence immediately, the pre-retry
	// behavior.
	Retry *rpc.RetryPolicy
}

// ClientStats are cumulative per-client counters.
type ClientStats struct {
	RemoteReads   int64 // successful RPC reads
	RemoteBytes   int64
	ServedRAM     int64 // remote reads served from the owner's RAM tier
	ServedNVMe    int64 // remote reads served from the owner's NVMe
	ServedPFS     int64 // remote reads that fell back to PFS server-side
	DirectPFS     int64 // client-side PFS reads (redirection strategy)
	DirectBytes   int64
	Timeouts      int64 // RPC timeouts observed
	FailoverReads int64 // reads that needed more than one attempt
	ReplicaPushes int64 // replica writes issued (replication extension)

	// Load-control counters (zero unless LoadControl is configured).
	CoalescedReads int64 // reads served by joining another caller's flight
	HedgedReads    int64 // hedge legs launched
	HedgeWins      int64 // reads won by the hedged leg
	HotPushes      int64 // hot-object replica pushes issued
	ShedRedirects  int64 // overload sheds redirected to replica/PFS
}

// Client is the application-side HVAC library: the stand-in for the
// LD_PRELOAD shim that intercepts open/read/close in the C++ artifact.
type Client struct {
	cfg     ClientConfig
	tracker *cluster.Tracker

	mu    sync.Mutex
	conns map[cluster.NodeID]*connSlot

	// rejoinMu/rejoining dedup concurrent Rejoin calls per node (the
	// heartbeat can fire OnRevive again while a warmup is in flight).
	rejoinMu  sync.Mutex
	rejoining map[cluster.NodeID]bool

	remoteReads   atomic.Int64
	remoteBytes   atomic.Int64
	servedRAM     atomic.Int64
	servedNVMe    atomic.Int64
	servedPFS     atomic.Int64
	directPFS     atomic.Int64
	directBytes   atomic.Int64
	timeouts      atomic.Int64
	failoverReads atomic.Int64
	replicaPushes atomic.Int64

	// load is the optional hot-object load-control state (nil = off).
	load           *loadctl.Controller
	coalescedReads atomic.Int64
	hedgedReads    atomic.Int64
	hedgeWins      atomic.Int64
	hotPushes      atomic.Int64
	shedRedirects  atomic.Int64

	// ingest is the optional batched async put pipeline (nil = off).
	ingest *ingester

	// retryBudget, when >= 0, overrides cfg.Retry's conn-class retry
	// count at runtime (adaptive policy knob). -1 = use the policy.
	// Only meaningful when cfg.Retry is non-nil.
	retryBudget atomic.Int32

	// pfsLatNs is a streaming EWMA (α = 1/8) of direct-PFS read latency
	// in ns — the client-side contention signal the adaptive policy
	// controller watches. 0 until the first PFS read.
	pfsLatNs atomic.Int64

	// replSem bounds concurrent async replica pushes.
	replSem chan struct{}
	replWG  sync.WaitGroup
	closed  atomic.Bool

	// latMu guards the streaming latency estimators (P² is not
	// concurrency-safe; reads are RPC-bound so contention is negligible).
	latMu   sync.Mutex
	latency *stats.LatencyTracker
}

// NewClient wires a client: the failure detector is connected to the
// router so that a declaration immediately reshapes routing (e.g. the
// ring strategy removes the node from its hash ring).
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Network == nil || cfg.Router == nil {
		return nil, errors.New("hvac: Network and Router are required")
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 2 * time.Second
	}
	nodes := make([]cluster.NodeID, 0, len(cfg.Endpoints))
	for n := range cfg.Endpoints {
		nodes = append(nodes, n)
	}
	if cfg.MaxAttempts <= 0 {
		limit := cfg.TimeoutLimit
		if limit <= 0 {
			limit = cluster.DefaultTimeoutLimit
		}
		cfg.MaxAttempts = limit + 8
	}
	if cfg.ReplicationFactor > 1 {
		if _, ok := cfg.Router.(Replicator); !ok {
			return nil, errors.New("hvac: ReplicationFactor > 1 requires a Router implementing Replicator")
		}
	}
	c := &Client{
		cfg:       cfg,
		tracker:   cluster.NewTracker(nodes, cfg.TimeoutLimit),
		conns:     make(map[cluster.NodeID]*connSlot),
		rejoining: make(map[cluster.NodeID]bool),
		replSem:   make(chan struct{}, 16),
		latency:   stats.NewLatencyTracker(),
	}
	c.retryBudget.Store(-1)
	c.tracker.OnFailure(cfg.Router.NodeFailed)
	if ra, ok := cfg.Router.(RecoveryAware); ok {
		c.tracker.OnRecovery(ra.NodeRecovered)
	}
	if cfg.LoadControl != nil {
		c.load = loadctl.New(*cfg.LoadControl, nodes)
		// Registered after the router hookups: by the time the fan-out
		// record is invalidated, the ring has already re-shaped, so
		// successor sets recomputed afterwards see the new membership.
		c.tracker.OnFailure(func(cluster.NodeID) { c.load.InvalidateReplicas() })
		c.tracker.OnRecovery(func(cluster.NodeID) { c.load.InvalidateReplicas() })
		telemetry.Default().RegisterDebug("loadctl", func() any { return c.load.DebugSnapshot() })
	}
	if cfg.Ingest != nil {
		c.ingest = newIngester(c, *cfg.Ingest)
	}
	return c, nil
}

// LoadControl exposes the load-control state (nil when disabled).
func (c *Client) LoadControl() *loadctl.Controller { return c.load }

// ReviveNode re-admits a failed node (elastic scale-up): the failure
// detector clears its state and, if the router is RecoveryAware, routing
// resumes sending it traffic. Returns false if the node was not failed.
func (c *Client) ReviveNode(node cluster.NodeID) bool {
	// Drop any stale connection so the next request dials fresh (a
	// rebooted node has new sockets).
	c.dropConn(node)
	return c.tracker.Revive(node)
}

// Tracker exposes the client's failure detector.
func (c *Client) Tracker() *cluster.Tracker { return c.tracker }

// Latency returns the streaming read-latency summary in milliseconds
// (count, mean, min/max, p50/p95/p99 via the P² estimator).
func (c *Client) Latency() stats.LatencySnapshot {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	return c.latency.Snapshot()
}

// Stats snapshots the client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		RemoteReads:   c.remoteReads.Load(),
		RemoteBytes:   c.remoteBytes.Load(),
		ServedRAM:     c.servedRAM.Load(),
		ServedNVMe:    c.servedNVMe.Load(),
		ServedPFS:     c.servedPFS.Load(),
		DirectPFS:     c.directPFS.Load(),
		DirectBytes:   c.directBytes.Load(),
		Timeouts:      c.timeouts.Load(),
		FailoverReads: c.failoverReads.Load(),
		ReplicaPushes: c.replicaPushes.Load(),

		CoalescedReads: c.coalescedReads.Load(),
		HedgedReads:    c.hedgedReads.Load(),
		HedgeWins:      c.hedgeWins.Load(),
		HotPushes:      c.hotPushes.Load(),
		ShedRedirects:  c.shedRedirects.Load(),
	}
}

// connSlot is the per-node connection cache entry. Its own mutex
// serializes dialing per node, so a slow or black-holed dial to one
// node blocks only requests addressed to that node — never the whole
// client. (Dialing under the client-wide map lock would let one dead
// endpoint's connect timeout head-of-line-block every healthy read.)
type connSlot struct {
	mu  sync.Mutex
	cli *rpc.Client
}

// slot returns node's connection slot, creating it on first use. Only
// the map access holds c.mu; dialing happens under the slot lock.
func (c *Client) slot(node cluster.NodeID) *connSlot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.conns[node]
	if !ok {
		s = &connSlot{}
		c.conns[node] = s
	}
	return s
}

// conn returns (dialing if necessary) the RPC client for node.
func (c *Client) conn(node cluster.NodeID) (*rpc.Client, error) {
	if c.closed.Load() {
		return nil, rpc.ErrClosed
	}
	ep, ok := c.cfg.Endpoints[node]
	if !ok {
		return nil, fmt.Errorf("hvac: no endpoint for node %s", node)
	}
	s := c.slot(node)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cli != nil {
		return s.cli, nil
	}
	//ftclint:ignore lockorder per-node slot lock held across the dial on purpose: it dedups concurrent dials to one node and never nests inside another lock
	nc, err := c.cfg.Network.Dial(ep)
	if err != nil {
		return nil, err
	}
	if c.closed.Load() { // Close raced the dial: don't leak the conn
		nc.Close()
		return nil, rpc.ErrClosed
	}
	//ftclint:ignore lockorder NewClient only spawns the read loop; the send it starts is to the new client's own channel, not anything mu guards
	s.cli = rpc.NewClient(nc)
	return s.cli, nil
}

func (c *Client) dropConn(node cluster.NodeID) {
	c.mu.Lock()
	s := c.conns[node]
	c.mu.Unlock()
	if s == nil {
		return
	}
	s.mu.Lock()
	cli := s.cli
	s.cli = nil
	s.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
}

// noteTimeout records failure evidence against node; the tracker invokes
// Router.NodeFailed when the threshold is crossed.
func (c *Client) noteTimeout(node cluster.NodeID) {
	c.timeouts.Add(1)
	cliMetrics().timeouts.Inc()
	c.tracker.RecordTimeout(node)
}

// Read returns the full contents of path, applying the configured
// fault-tolerance policy.
func (c *Client) Read(ctx context.Context, path string) ([]byte, error) {
	return c.ReadRange(ctx, path, 0, -1)
}

// ReadRange returns [offset, offset+length) of path; length < 0 means to
// EOF.
func (c *Client) ReadRange(ctx context.Context, path string, offset, length int64) (data []byte, err error) {
	m := cliMetrics()
	start := time.Now()
	// "client.read" is the root of the whole request DAG: every attempt,
	// coalesced flight, fan-out leg, and server fragment hangs under it.
	// With tracing off this is one atomic load and sp stays nil.
	ctx, sp := trace.StartTrace(ctx, "client.read")
	sp.Annotate("path", path)
	defer func() {
		elapsed := time.Since(start)
		m.reads.Inc()
		m.readLatency.Observe(int64(elapsed))
		ms := float64(elapsed) / float64(time.Millisecond)
		c.latMu.Lock()
		c.latency.Add(ms)
		c.latMu.Unlock()
		sp.SetError(err)
		sp.End()
	}()
	// Whole-file reads through a load-controlled client coalesce:
	// concurrent readers of one path share a single flight. Range reads
	// stay independent — different ranges of one path are different work.
	if c.load != nil && offset == 0 && length < 0 {
		return c.readCoalesced(ctx, path)
	}
	return c.readAttempts(ctx, path, offset, length)
}

// coalesceRetries bounds how often a waiter re-enters the flight group
// after inheriting a transient failure from a flight winner. Each retry
// either joins a newer flight or becomes the winner itself (running the
// full readAttempts failover loop), so a small bound suffices.
const coalesceRetries = 3

// fullReadFetcher adapts the client's failover read loop to the
// coalescing group's Fetcher interface; the pointer conversion is
// allocation-free on the per-read path.
type fullReadFetcher Client

// Fetch implements loadctl.Fetcher: a whole-file read via readAttempts.
func (f *fullReadFetcher) Fetch(ctx context.Context, path string) ([]byte, error) {
	return (*Client)(f).readAttempts(ctx, path, 0, -1)
}

// readCoalesced funnels a whole-file read through the singleflight
// group. Waiters inherit the winner's outcome; a waiter that inherits a
// transient error (the winner timed out, its context died, or it
// panicked) retries while its own context is live, because the failure
// may have been specific to the winner, not to the key.
func (c *Client) readCoalesced(ctx context.Context, path string) ([]byte, error) {
	var data []byte
	var err error
	var shared bool
	for try := 0; try <= coalesceRetries; try++ {
		// The coalesce span records whether this caller led or followed
		// the flight; the winner's span id rides the flight as its
		// leader token, so a follower's trace names the flight it
		// piggybacked on (leader_id is identity-class — stripped from
		// the canonical export like every id).
		cctx, sp := trace.StartSpan(ctx, "coalesce.do")
		var leader uint64
		data, err, shared, leader = c.load.Coalesce.DoLinked(cctx, path, (*fullReadFetcher)(c), uint64(sp.ID()))
		if shared {
			sp.Annotate("role", "follower")
			if leader != 0 {
				sp.AnnotateInt("leader_id", int64(leader))
			}
			c.coalescedReads.Add(1)
			cliMetrics().coalesced.Inc()
		} else {
			sp.Annotate("role", "leader")
		}
		sp.SetError(err)
		sp.End()
		if err == nil || !shared || ctx.Err() != nil {
			return data, err
		}
		// Definitive outcomes are shared as-is; only transient inherited
		// failures are retried.
		if errors.Is(err, ErrNotFound) || errors.Is(err, ErrAborted) {
			return nil, err
		}
	}
	return data, err
}

// readAttempts is the routing/failover loop: route, read, note evidence,
// re-route — bounded by MaxAttempts.
func (c *Client) readAttempts(ctx context.Context, path string, offset, length int64) ([]byte, error) {
	m := cliMetrics()
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt == 1 {
			c.failoverReads.Add(1)
			m.failovers.Inc()
		}
		d := c.cfg.Router.Route(path)
		switch d.Kind {
		case RouteAbort:
			m.aborts.Inc()
			return nil, ErrAborted

		case RoutePFS:
			return c.readPFS(ctx, path, offset, length)

		case RouteNode:
			actx, asp := trace.StartSpan(ctx, "read.attempt")
			asp.AnnotateInt("attempt", int64(attempt))
			asp.Annotate("node", string(d.Node))
			data, err := c.readRouted(actx, d.Node, path, offset, length)
			asp.SetError(err)
			asp.End()
			if err == nil {
				return data, nil
			}
			if errors.Is(err, ErrNotFound) {
				return nil, err
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if errors.Is(err, ErrOverloaded) {
				// The whole candidate set shed the request: the data is
				// hot beyond what the cache tier will serve right now.
				// Fall through to the PFS if we can — that converts an
				// overload wall into bounded extra PFS traffic — else
				// loop and retry (the shed queue drains in milliseconds).
				c.shedRedirects.Add(1)
				m.shedRedirects.Inc()
				if c.cfg.PFS != nil {
					return c.readPFS(ctx, path, offset, length)
				}
				continue
			}
			// Timeout or connection failure: evidence recorded, re-route.
			continue

		default:
			return nil, fmt.Errorf("hvac: unknown routing kind %d", d.Kind)
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrExhausted, path)
}

// readPFS serves a read directly from the parallel filesystem.
func (c *Client) readPFS(ctx context.Context, path string, offset, length int64) (data []byte, err error) {
	_, sp := trace.StartSpan(ctx, "pfs.read")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	if c.cfg.PFS == nil {
		return nil, errors.New("hvac: RoutePFS without a PFS handle")
	}
	t0 := time.Now()
	data, err = c.cfg.PFS.Get(path)
	c.observePFSLatency(time.Since(t0))
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		return nil, err
	}
	body, ok := slice(data, offset, length)
	if !ok {
		return nil, fmt.Errorf("hvac: range out of bounds for %s", path)
	}
	c.directPFS.Add(1)
	cliMetrics().directPFS.Inc()
	c.directBytes.Add(int64(len(body)))
	return body, nil
}

// observePFSLatency folds one direct-PFS read latency into the EWMA.
// Concurrent updates may drop each other's sample (load/store, not
// CAS-looped) — the signal is a trend line, not an exact mean.
func (c *Client) observePFSLatency(d time.Duration) {
	old := c.pfsLatNs.Load()
	if old == 0 {
		c.pfsLatNs.Store(int64(d))
		return
	}
	c.pfsLatNs.Store(old + (int64(d)-old)/8)
}

// PFSReadLatency returns the EWMA of this client's direct-PFS read
// latency and whether any PFS read has been observed yet.
func (c *Client) PFSReadLatency() (time.Duration, bool) {
	v := c.pfsLatNs.Load()
	return time.Duration(v), v != 0
}

// SetRetryBudget overrides the conn-class retry count at runtime
// (adaptive policy knob): n >= 0 replaces cfg.Retry's budget, n < 0
// restores it. A no-op unless the client was built with a Retry policy
// (the backoff schedule still comes from it).
func (c *Client) SetRetryBudget(n int) {
	if n < 0 {
		n = -1
	}
	c.retryBudget.Store(int32(n))
}

// readRouted performs one routed read attempt. Without load control it
// is a plain owner read; with it, the access feeds the hot-key sketch
// and reads of hot keys fan out over the owner's replica set.
func (c *Client) readRouted(ctx context.Context, node cluster.NodeID, path string, offset, length int64) ([]byte, error) {
	if c.load == nil {
		return c.readFromNode(ctx, node, path, offset, length)
	}
	if c.load.Sketch.Touch(path) {
		return c.readHot(ctx, node, path, offset, length)
	}
	return c.readFromNode(ctx, node, path, offset, length)
}

// readFromNode performs one RPC read attempt against node, recording
// failure evidence against it.
func (c *Client) readFromNode(ctx context.Context, node cluster.NodeID, path string, offset, length int64) ([]byte, error) {
	return c.readFromNodeOpts(ctx, node, path, offset, length, true)
}

// errClass buckets a failed read attempt for the retry/evidence split.
type errClass uint8

const (
	classOK      errClass = iota
	classApp              // definitive app-level outcome (not-found, overload)
	classTimeout          // a full TTL was consumed: detector evidence, never retried
	classConn             // the connection died fast (reset, refused): retryable
	classCtx              // the caller's context ended
)

// readFromNodeOpts is the RPC read primitive plus the retry policy.
// note controls whether a failure feeds the failure detector: the
// hot-key fan-out path passes false because a hedged or raced leg is
// expected to be abandoned — a leg cancelled since a sibling won must
// never accumulate as evidence against a healthy node (the fan-out
// notes the primary itself, once, only on total failure).
//
// The retry/detector split (see rpc.RetryPolicy): timeout-class
// failures are evidence immediately and never retried here; conn-class
// failures are retried with jittered backoff and become evidence only
// when the budget is exhausted.
func (c *Client) readFromNodeOpts(ctx context.Context, node cluster.NodeID, path string, offset, length int64, note bool) ([]byte, error) {
	m := cliMetrics()
	budget := 0
	if c.cfg.Retry != nil {
		budget = c.cfg.Retry.Retries()
		if o := c.retryBudget.Load(); o >= 0 {
			budget = int(o)
		}
	}
	for attempt := 0; ; attempt++ {
		data, err, class := c.readNodeOnce(ctx, node, path, offset, length, note, attempt)
		switch class {
		case classOK, classApp, classCtx:
			return data, err
		case classTimeout:
			if note {
				c.noteTimeout(node)
			}
			return nil, err
		case classConn:
			if attempt < budget && !c.closed.Load() {
				m.retries.Inc()
				if c.cfg.Retry.Sleep(ctx, attempt) != nil {
					return nil, ctx.Err()
				}
				continue
			}
			if budget > 0 {
				m.retryExhausted.Inc()
			}
			if note {
				c.noteTimeout(node)
			}
			return nil, err
		default:
			// Unreachable: the errclass analyzer keeps this switch
			// exhaustive, so a new class cannot land here silently.
			return nil, err
		}
	}
}

// readNodeOnce performs exactly one RPC read attempt against node and
// classifies the outcome; evidence and retries are the caller's job.
// try is the conn-class retry ordinal (0 = first try), recorded on the
// span so retried RPCs are distinguishable from fresh ones.
func (c *Client) readNodeOnce(ctx context.Context, node cluster.NodeID, path string, offset, length int64, note bool, try int) (rdata []byte, rerr error, rclass errClass) {
	// "rpc.read" is the client half of one wire round-trip; the server
	// stitches its "server.read" fragment under this span's id, carried
	// in the request's trace extension.
	_, sp := trace.StartSpan(ctx, "rpc.read")
	sp.Annotate("node", string(node))
	if try > 0 {
		sp.AnnotateInt("try", int64(try))
	}
	c.annotateChaos(sp, node)
	defer func() {
		sp.SetError(rerr)
		sp.End()
	}()
	cli, err := c.conn(node)
	if err != nil {
		switch {
		case errors.Is(err, rpc.ErrClosed): // this client is shut down
			return nil, err, classCtx
		case isNetTimeout(err):
			// The dial consumed its full timeout (a black-holed SYN):
			// that is timeout evidence, exactly like an expired TTL.
			sp.Annotate("fail", "dial_timeout")
			return nil, err, classTimeout
		default:
			// Refused / no listener: fast failure, retry material.
			sp.Annotate("fail", "conn")
			return nil, err, classConn
		}
	}
	req := ReadReq{Path: path, Offset: offset, Length: length}
	if sp != nil {
		req.Trace = wire.TraceExt{TraceID: uint64(sp.TraceID()), SpanID: uint64(sp.ID())}
	}
	start := time.Now()
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	payload, status, err := cli.Call(callCtx, OpRead, req.Marshal())
	cancel()
	if err != nil {
		switch {
		case errors.Is(err, rpc.ErrTimeout):
			sp.Annotate("fail", "timeout")
			return nil, err, classTimeout
		case errors.Is(err, rpc.ErrClosed):
			c.dropConn(node)
			sp.Annotate("fail", "conn")
			return nil, err, classConn
		case ctx.Err() != nil:
			return nil, ctx.Err(), classCtx
		default:
			sp.Annotate("fail", "timeout")
			return nil, err, classTimeout
		}
	}
	// Any answer — including an overload shed — proves the node alive.
	c.tracker.RecordSuccess(node)
	elapsed := time.Since(start)
	if c.load != nil {
		c.load.Latency.Observe(node, elapsed)
	}
	switch status {
	case rpc.StatusOK:
	case StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path), classApp
	case StatusOverloaded:
		sp.Annotate("fail", "overloaded")
		return nil, fmt.Errorf("%w: %s", ErrOverloaded, node), classApp
	default:
		return nil, fmt.Errorf("hvac: server error status %d: %s", status, payload), classApp
	}
	var resp ReadResp
	if err := resp.Unmarshal(payload); err != nil {
		return nil, err, classApp
	}
	sp.Annotate("source", sourceName(resp.Source))
	// Only ordinary (non-raced) successes feed the hedge-delay p99:
	// fan-out legs complete near the hedge delay by construction and
	// would ratchet the estimate downward.
	if c.load != nil && note {
		c.load.Hedge.Observe(elapsed)
	}
	c.remoteReads.Add(1)
	c.remoteBytes.Add(int64(len(resp.Data)))
	switch resp.Source {
	case SourceRAM:
		c.servedRAM.Add(1)
		cliMetrics().servedRAM.Inc()
	case SourceNVMe:
		c.servedNVMe.Add(1)
		cliMetrics().servedNVMe.Inc()
	default:
		c.servedPFS.Add(1)
		cliMetrics().servedPFS.Inc()
		// A PFS fallback means this was the object's first touch (or a
		// post-failure recache) — replicate it to the secondary owners.
		if c.cfg.ReplicationFactor > 1 && offset == 0 && length < 0 {
			c.replicateAsync(path, resp.Data)
		}
	}
	return resp.Data, nil, classOK
}

// isNetTimeout reports whether err is a net.Error that timed out.
func isNetTimeout(err error) bool {
	var nerr net.Error
	return errors.As(err, &nerr) && nerr.Timeout()
}

// faultLister is the optional network extension (implemented by
// chaos.Network) reporting the faults currently armed on the path to a
// destination. The interface keeps hvac decoupled from the chaos
// package: any network that can describe its faults gets them onto
// spans.
type faultLister interface {
	ActiveFaults(dst string) []string
}

// annotateChaos records the armed faults on the path to node on sp, so
// a soak replay shows which injected fault stretched which request.
// Free when sp is nil (tracing off) or the network injects no faults.
func (c *Client) annotateChaos(sp *trace.Span, node cluster.NodeID) {
	if sp == nil {
		return
	}
	fl, ok := c.cfg.Network.(faultLister)
	if !ok {
		return
	}
	ep, ok := c.cfg.Endpoints[node]
	if !ok {
		return
	}
	for _, f := range fl.ActiveFaults(ep) {
		sp.Annotate("chaos", f)
	}
}

// readHot serves a read of a sketch-flagged hot key: the candidate set
// is the owner plus its live ring successors, the first target is chosen
// by power-of-two-choices over observed latency, and a hedge leg races a
// second candidate when the first exceeds the running p99. On a
// successful whole-file read the object is fanned out to the successors
// (once per key per ring epoch) so future reads find warm replicas.
func (c *Client) readHot(ctx context.Context, owner cluster.NodeID, path string, offset, length int64) ([]byte, error) {
	cands := c.hotCandidates(owner, path)
	if len(cands) <= 1 {
		return c.readFromNode(ctx, owner, path, offset, length)
	}
	data, err := c.readFanout(ctx, owner, cands, path, offset, length)
	if err == nil && offset == 0 && length < 0 {
		c.maybePushHot(path, data)
	}
	return data, err
}

// hotCandidates returns the live replica set for path: the ring owner
// first, then its successors. Falls back to just the routed owner when
// the router cannot enumerate replicas.
func (c *Client) hotCandidates(owner cluster.NodeID, path string) []cluster.NodeID {
	repl, ok := c.cfg.Router.(Replicator)
	if !ok {
		return []cluster.NodeID{owner}
	}
	owners := repl.Replicas(path, 1+c.load.Replicas())
	cands := make([]cluster.NodeID, 0, len(owners))
	for _, n := range owners {
		if c.tracker.IsAlive(n) {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		return []cluster.NodeID{owner}
	}
	return cands
}

// readFanout races a hot read over cands. One leg launches immediately
// (picked by p2c over observed latency); the hedge timer or a leg
// failure launches the next candidate. The first success wins and
// cancels the rest. ErrNotFound is definitive and short-circuits.
// Failure evidence is recorded against the primary only, once, and only
// when every candidate failed with a timeout-class error — raced legs
// individually never touch the failure detector.
func (c *Client) readFanout(ctx context.Context, primary cluster.NodeID, cands []cluster.NodeID, path string, offset, length int64) ([]byte, error) {
	m := cliMetrics()
	order := make([]cluster.NodeID, 0, len(cands))
	first := c.load.Latency.Pick(cands)
	order = append(order, first)
	for _, n := range cands {
		if n != first {
			order = append(order, n)
		}
	}

	// psp is the enclosing read.attempt span; readFanout runs on the
	// goroutine that created it, so annotating it here is race-free.
	// Leg goroutines get their own child spans instead — a losing leg
	// that outlives the root is simply dropped at End.
	psp := trace.FromContext(ctx)
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type legResult struct {
		node   cluster.NodeID
		data   []byte
		err    error
		hedged bool
	}
	// Buffered to the fan-out width: losing legs complete into the
	// buffer after we return and their goroutines exit — no leak.
	results := make(chan legResult, len(order))
	start := time.Now()
	launched := 0
	launch := func(hedged bool) {
		node := order[launched]
		launched++
		go func() {
			lctx, lsp := trace.StartSpan(fanCtx, "read.leg")
			lsp.Annotate("node", string(node))
			if hedged {
				lsp.Annotate("hedged", "true")
			}
			data, err := c.readFromNodeOpts(lctx, node, path, offset, length, false)
			lsp.SetError(err)
			lsp.End()
			results <- legResult{node: node, data: data, err: err, hedged: hedged}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if delay, ok := c.load.Hedge.Delay(); ok {
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeC = t.C
	}

	outstanding := 1
	var firstErr error
	timeoutClass := true
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()

		case <-hedgeC:
			hedgeC = nil
			if launched < len(order) {
				c.hedgedReads.Add(1)
				m.hedges.Inc()
				psp.Annotate("hedge", "fired")
				launch(true)
				outstanding++
			}

		case r := <-results:
			outstanding--
			if r.err == nil {
				elapsed := int64(time.Since(start))
				switch {
				case r.hedged:
					c.hedgeWins.Add(1)
					m.hedgeWins.Inc()
					m.hedgeLatency.Observe(elapsed)
					psp.Annotate("hedge", "win")
				case r.node == primary:
					m.ownerLatency.Observe(elapsed)
				default:
					m.replLatency.Observe(elapsed)
				}
				psp.Annotate("winner", string(r.node))
				return r.data, nil
			}
			if errors.Is(r.err, ErrNotFound) {
				return nil, r.err
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !errors.Is(r.err, rpc.ErrTimeout) && !errors.Is(r.err, rpc.ErrClosed) {
				timeoutClass = false
			}
			if errors.Is(r.err, ErrOverloaded) {
				c.shedRedirects.Add(1)
				m.shedRedirects.Inc()
			}
			// A failed leg is an immediate go-signal for the next
			// candidate — no point waiting for the hedge timer.
			if launched < len(order) {
				launch(r.hedged)
				outstanding++
			} else if outstanding == 0 {
				if timeoutClass && ctx.Err() == nil {
					// Every candidate timed out: that is genuine evidence
					// against the primary this read was routed to.
					c.noteTimeout(primary)
				}
				return nil, firstErr
			}
		}
	}
}

// maybePushHot fans a hot object out to the owner's ring successors,
// once per key per ring epoch (the record resets on any membership
// change). Pushes ride the same bounded async machinery as replication;
// failures are best-effort — a missed replica only means that server
// self-fills from the PFS on its first fanned-out read.
func (c *Client) maybePushHot(path string, data []byte) {
	repl, ok := c.cfg.Router.(Replicator)
	if !ok || c.closed.Load() || !c.load.MarkPushed(path) {
		return
	}
	owners := repl.Replicas(path, 1+c.load.Replicas())
	if len(owners) <= 1 {
		return
	}
	telemetry.TraceEvent(telemetry.EventHotKey, "", path, int64(len(data)))
	if c.ingest != nil {
		// Group commit: hot-object pushes ride the per-node ingest
		// batches instead of spawning a goroutine per push. The encode
		// copies the bytes, so no extra defensive copy is needed.
		for _, node := range owners[1:] {
			if !c.tracker.IsAlive(node) {
				continue
			}
			if c.ingest.enqueue(node, path, data) == nil {
				c.hotPushes.Add(1)
				cliMetrics().hotPush.Inc()
			}
		}
		return
	}
	// Copy once: data may alias an RPC response buffer.
	body := append([]byte(nil), data...)
	for _, node := range owners[1:] {
		if !c.tracker.IsAlive(node) {
			continue
		}
		node := node
		c.replWG.Add(1)
		c.replSem <- struct{}{}
		go func() {
			defer c.replWG.Done()
			defer func() { <-c.replSem }()
			//ftclint:ignore ctxflow hot-push replication is asynchronous by design: the triggering read has already returned, so its leg is a detached root trace
			pctx, sp := trace.StartTrace(context.Background(), "hot.push")
			sp.Annotate("node", string(node))
			sp.Annotate("path", path)
			err := c.Push(pctx, node, path, body)
			sp.SetError(err)
			sp.End()
			if err == nil {
				c.hotPushes.Add(1)
				cliMetrics().hotPush.Inc()
			}
		}()
	}
}

// replicateAsync pushes data to the secondary ring owners of path,
// bounded by the replication semaphore; failures are best-effort (a
// missed replica costs one PFS read later, never correctness).
func (c *Client) replicateAsync(path string, data []byte) {
	repl, ok := c.cfg.Router.(Replicator)
	if !ok {
		return
	}
	owners := repl.Replicas(path, c.cfg.ReplicationFactor)
	if len(owners) <= 1 {
		return
	}
	if c.ingest != nil {
		// Group commit: replica pushes ride the per-node ingest batches
		// (WaitReplication flushes them). Enqueue encodes immediately,
		// so the aliased RPC buffer is never retained.
		for _, node := range owners[1:] {
			if c.ingest.enqueue(node, path, data) == nil {
				c.replicaPushes.Add(1)
				cliMetrics().replicaPush.Inc()
			}
		}
		return
	}
	// Copy once: data aliases the RPC response buffer.
	body := append([]byte(nil), data...)
	for _, node := range owners[1:] {
		node := node
		c.replWG.Add(1)
		c.replSem <- struct{}{}
		go func() {
			defer c.replWG.Done()
			defer func() { <-c.replSem }()
			// Replication is asynchronous by design, so its leg is a
			// detached root trace: by the time it runs, the read that
			// triggered it has already returned (and sealed its trace).
			//ftclint:ignore ctxflow detached root by design, per the comment above: the triggering read has already sealed its trace
			pctx, sp := trace.StartTrace(context.Background(), "replica.push")
			sp.Annotate("node", string(node))
			sp.Annotate("path", path)
			err := c.Push(pctx, node, path, body)
			sp.SetError(err)
			sp.End()
			if err == nil {
				c.replicaPushes.Add(1)
				cliMetrics().replicaPush.Inc()
			}
		}()
	}
}

// Push writes an object into a specific node's cache (replica write).
// A span in ctx propagates on the wire, so the server's "server.put"
// fragment stitches under the caller's trace.
func (c *Client) Push(ctx context.Context, node cluster.NodeID, path string, data []byte) error {
	cli, err := c.conn(node)
	if err != nil {
		return err
	}
	req := PutReq{Path: path, Data: data}
	if tid, sid, ok := trace.ContextIDs(ctx); ok {
		req.Trace = wire.TraceExt{TraceID: uint64(tid), SpanID: uint64(sid)}
	}
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	_, status, err := cli.Call(callCtx, OpPut, req.Marshal())
	if err != nil {
		if errors.Is(err, rpc.ErrClosed) {
			c.dropConn(node) // stale conn to a restarted node: redial next time
		}
		return err
	}
	if status != rpc.StatusOK {
		return fmt.Errorf("hvac: put status %d", status)
	}
	return nil
}

// WaitReplication blocks until all in-flight replica pushes finish or
// ctx expires — used by tests and epoch boundaries that need
// determinism. With the ingest pipeline enabled it is also a batch
// flush barrier: replica pushes ride ingest batches, so buffered
// batches are sealed and their acks awaited before the wait returns
// (delivery failures stay best-effort, exactly like goroutine pushes —
// use Flush to observe them). The pushes themselves keep running after
// a ctx-triggered return (they are bounded by the replication semaphore
// and fail fast once connections drop); only the wait is abandoned.
func (c *Client) WaitReplication(ctx context.Context) error {
	if c.ingest != nil {
		if err := c.ingest.barrier(ctx); err != nil {
			return err
		}
	}
	done := make(chan struct{})
	go func() {
		c.replWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stat returns size and cache residency of path from its current owner.
func (c *Client) Stat(ctx context.Context, path string) (StatResp, error) {
	d := c.cfg.Router.Route(path)
	if d.Kind != RouteNode {
		return StatResp{}, fmt.Errorf("hvac: stat unavailable (route kind %d)", d.Kind)
	}
	cli, err := c.conn(d.Node)
	if err != nil {
		return StatResp{}, err
	}
	req := StatReq{Path: path}
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	payload, status, err := cli.Call(callCtx, OpStat, req.Marshal())
	if err != nil {
		return StatResp{}, err
	}
	if status == StatusNotFound {
		return StatResp{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if status != rpc.StatusOK {
		return StatResp{}, fmt.Errorf("hvac: stat status %d", status)
	}
	var resp StatResp
	if err := resp.Unmarshal(payload); err != nil {
		return StatResp{}, err
	}
	return resp, nil
}

// ServerStats fetches the counters of a specific server.
func (c *Client) ServerStats(ctx context.Context, node cluster.NodeID) (StatsResp, error) {
	cli, err := c.conn(node)
	if err != nil {
		return StatsResp{}, err
	}
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	payload, status, err := cli.Call(callCtx, OpStats, nil)
	if err != nil || status != rpc.StatusOK {
		return StatsResp{}, fmt.Errorf("hvac: stats from %s: status=%d err=%v", node, status, err)
	}
	var resp StatsResp
	if err := resp.Unmarshal(payload); err != nil {
		return StatsResp{}, err
	}
	return resp, nil
}

// Ping checks liveness of a node without touching the failure detector.
func (c *Client) Ping(ctx context.Context, node cluster.NodeID) error {
	cli, err := c.conn(node)
	if err != nil {
		return err
	}
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	_, status, err := cli.Call(callCtx, OpPing, nil)
	if err != nil {
		if errors.Is(err, rpc.ErrClosed) {
			// A revival probe over a conn that died with the old process
			// must not keep failing forever: drop it so the next probe
			// dials the restarted listener fresh.
			c.dropConn(node)
		}
		return err
	}
	if status != rpc.StatusOK {
		return fmt.Errorf("hvac: ping status %d", status)
	}
	return nil
}

// Close tears down all connections, then waits for in-flight replica
// pushes and ingest senders (both fail fast once their connections
// drop).
func (c *Client) Close() {
	c.closed.Store(true)
	c.mu.Lock()
	slots := c.conns
	c.conns = make(map[cluster.NodeID]*connSlot)
	c.mu.Unlock()
	for _, s := range slots {
		s.mu.Lock()
		cli := s.cli
		s.cli = nil
		s.mu.Unlock()
		if cli != nil {
			cli.Close()
		}
	}
	if c.ingest != nil {
		c.ingest.close()
	}
	c.replWG.Wait()
}
