package hvac

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// hashRouter spreads paths over all nodes (fnv mod n) and, as a
// Replicator, returns consecutive nodes — a deterministic stand-in for
// the ring so ingest tests cover multi-destination batching.
type hashRouter struct{ nodes []cluster.NodeID }

func (r hashRouter) Name() string { return "hash" }
func (r hashRouter) Route(path string) Decision {
	return Decision{Kind: RouteNode, Node: r.nodes[r.idx(path)]}
}
func (r hashRouter) NodeFailed(cluster.NodeID) {}
func (r hashRouter) idx(path string) int {
	h := fnv.New32a()
	h.Write([]byte(path))
	return int(h.Sum32() % uint32(len(r.nodes)))
}
func (r hashRouter) Replicas(path string, n int) []cluster.NodeID {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]cluster.NodeID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.nodes[(r.idx(path)+i)%len(r.nodes)])
	}
	return out
}

func (tc *testCluster) ingestClient(router Router, cfg *IngestConfig, replication int) *Client {
	tc.t.Helper()
	c, err := NewClient(ClientConfig{
		Endpoints:         tc.endpoints(),
		Network:           tc.network,
		Router:            router,
		PFS:               tc.pfs,
		RPCTimeout:        2 * time.Second,
		TimeoutLimit:      2,
		ReplicationFactor: replication,
		Ingest:            cfg,
	})
	if err != nil {
		tc.t.Fatalf("NewClient: %v", err)
	}
	tc.t.Cleanup(c.Close)
	return c
}

// TestIngestAckVisibility is the pipeline's core invariant: once Flush
// returns nil, every object accepted by PutAsync is readable from its
// owner — no buffered, un-acked writes survive the barrier.
func TestIngestAckVisibility(t *testing.T) {
	tc := newTestCluster(t, 4)
	router := hashRouter{nodes: tc.nodes}
	// A large MaxDelay ensures visibility comes from the explicit
	// barrier, not a lucky age flush racing the assertions.
	c := tc.ingestClient(router, &IngestConfig{MaxBatchEntries: 16, MaxDelay: time.Minute}, 0)

	const n = 300
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("ingest/f%03d", i)
		if err := c.PutAsync(path, []byte("batched-"+path)); err != nil {
			t.Fatalf("PutAsync %s: %v", path, err)
		}
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("ingest/f%03d", i)
		owner := router.Route(path).Node
		got, err := tc.servers[owner].NVMe().Get(path)
		if err != nil || string(got) != "batched-"+path {
			t.Fatalf("after Flush, %s not readable from owner %s: %q, %v", path, owner, got, err)
		}
	}
	// A second Flush with nothing buffered is a cheap no-op.
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
}

// TestIngestAgeFlush: with no barrier and a tiny MaxDelay, buffered
// objects still become visible — the age timer ships partial batches.
func TestIngestAgeFlush(t *testing.T) {
	tc := newTestCluster(t, 2)
	router := hashRouter{nodes: tc.nodes}
	c := tc.ingestClient(router, &IngestConfig{MaxBatchEntries: 1024, MaxDelay: 2 * time.Millisecond}, 0)

	if err := c.PutAsync("age/one", []byte("lonely")); err != nil {
		t.Fatal(err)
	}
	owner := router.Route("age/one").Node
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := tc.servers[owner].NVMe().Get("age/one"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("age flush never delivered the buffered object")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIngestReplicationRidesBatches: with replication enabled, PutAsync
// fans each object to the ring successors through the same batch
// pipeline, and WaitReplication doubles as the flush barrier.
func TestIngestReplicationRidesBatches(t *testing.T) {
	tc := newTestCluster(t, 3)
	router := hashRouter{nodes: tc.nodes}
	c := tc.ingestClient(router, &IngestConfig{MaxBatchEntries: 8, MaxDelay: time.Minute}, 2)

	const n = 40
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("repl/f%02d", i)
		if err := c.PutAsync(path, []byte(path)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitReplication(context.Background()); err != nil {
		t.Fatalf("WaitReplication: %v", err)
	}
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("repl/f%02d", i)
		for _, node := range router.Replicas(path, 2) {
			if _, err := tc.servers[node].NVMe().Get(path); err != nil {
				t.Fatalf("%s missing on replica %s after WaitReplication: %v", path, node, err)
			}
		}
	}
	if got := c.Stats().ReplicaPushes; got != n {
		t.Fatalf("ReplicaPushes=%d, want %d", got, n)
	}
}

// TestIngestReadPathReplicationRidesBatches: a PFS-fallback read with
// replication configured pushes the object to the secondary owner via
// the batch pipeline (no per-push goroutine), and WaitReplication
// flushes it.
func TestIngestReadPathReplicationRidesBatches(t *testing.T) {
	tc := newTestCluster(t, 3)
	router := hashRouter{nodes: tc.nodes}
	c := tc.ingestClient(router, &IngestConfig{MaxDelay: time.Minute}, 2)

	tc.pfs.Put("rp/file", []byte("from-pfs"))
	got, err := c.Read(context.Background(), "rp/file")
	if err != nil || string(got) != "from-pfs" {
		t.Fatalf("read: %q, %v", got, err)
	}
	if err := c.WaitReplication(context.Background()); err != nil {
		t.Fatal(err)
	}
	secondary := router.Replicas("rp/file", 2)[1]
	if _, err := tc.servers[secondary].NVMe().Get("rp/file"); err != nil {
		t.Fatalf("secondary %s missing replica after WaitReplication: %v", secondary, err)
	}
}

// TestIngestFlushReportsEntryFailure: a per-entry server-side failure
// (object larger than the node's NVMe) surfaces from Flush, and the
// failure of one entry does not block its batch-mates.
func TestIngestFlushReportsEntryFailure(t *testing.T) {
	tc := &testCluster{
		t:       t,
		network: rpc.NewInprocNetwork(),
		pfs:     storage.NewPFS(),
		servers: make(map[cluster.NodeID]*Server),
	}
	node := cluster.NodeID("node-00")
	tc.nodes = []cluster.NodeID{node}
	srv := NewServer(ServerConfig{Node: node, NVMeCapacity: 64}, tc.pfs)
	lis, err := tc.network.Listen(string(node))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	tc.servers[node] = srv

	c := tc.ingestClient(staticRouter{node: node}, &IngestConfig{MaxBatchEntries: 8, MaxDelay: time.Minute}, 0)
	if err := c.PutAsync("ok", []byte("small")); err != nil {
		t.Fatal(err)
	}
	if err := c.PutAsync("toobig", make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err == nil {
		t.Fatal("Flush swallowed a per-entry failure")
	}
	if _, err := srv.NVMe().Get("ok"); err != nil {
		t.Fatalf("failing batch-mate blocked a good entry: %v", err)
	}
	// The error was consumed; the pipeline keeps working.
	if err := c.PutAsync("after", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after consumed error: %v", err)
	}
}

// TestIngestDisabledFallsBackToSyncPut: without an IngestConfig,
// PutAsync degrades to the synchronous put — visible immediately, no
// Flush needed.
func TestIngestDisabledFallsBackToSyncPut(t *testing.T) {
	tc := newTestCluster(t, 2)
	router := hashRouter{nodes: tc.nodes}
	c := tc.ingestClient(router, nil, 0)
	if err := c.PutAsync("sync/f", []byte("direct")); err != nil {
		t.Fatal(err)
	}
	owner := router.Route("sync/f").Node
	if _, err := tc.servers[owner].NVMe().Get("sync/f"); err != nil {
		t.Fatalf("sync fallback not immediately visible: %v", err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush without pipeline: %v", err)
	}
}

// TestIngestConcurrentProducers: many goroutines share one client; the
// barrier covers all of them and every object lands intact.
func TestIngestConcurrentProducers(t *testing.T) {
	tc := newTestCluster(t, 4)
	router := hashRouter{nodes: tc.nodes}
	c := tc.ingestClient(router, &IngestConfig{MaxBatchEntries: 32, MaxDelay: 500 * time.Microsecond}, 0)

	const producers, perP = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				path := fmt.Sprintf("conc/p%d-i%02d", p, i)
				if err := c.PutAsync(path, []byte(path)); err != nil {
					t.Errorf("PutAsync %s: %v", path, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for p := 0; p < producers; p++ {
		for i := 0; i < perP; i++ {
			path := fmt.Sprintf("conc/p%d-i%02d", p, i)
			owner := router.Route(path).Node
			got, err := tc.servers[owner].NVMe().Get(path)
			if err != nil || string(got) != path {
				t.Fatalf("%s on %s: %q, %v", path, owner, got, err)
			}
		}
	}
}

// TestIngestPutAsyncAfterClose: the pipeline refuses work after Close
// instead of hanging or panicking.
func TestIngestPutAsyncAfterClose(t *testing.T) {
	tc := newTestCluster(t, 1)
	c := tc.ingestClient(staticRouter{node: tc.nodes[0]}, &IngestConfig{}, 0)
	if err := c.PutAsync("pre", []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.PutAsync("post", []byte("x")); err == nil {
		t.Fatal("PutAsync after Close succeeded")
	}
}
