package hvac

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Mover is the HVAC server's background data-mover thread (§II-B): after
// a PFS fallback the served object is queued here and copied onto the
// node-local NVMe off the request path, so the client never waits on the
// cache write.
//
// The queue is bounded; under overload new work is dropped (counted),
// never blocking a read — a dropped recache only costs one more PFS trip
// on a later epoch.
//
// When the mover is idle the fill is stored inline instead of queued: an
// in-memory cache insert costs less than the scheduler handoff to a
// worker, and landing the fill before the read response is sent closes
// the window where fast concurrent readers re-miss the same object and
// hammer the PFS with duplicate fetches. The queue only takes over when
// a backlog exists, preserving the never-block-a-read guarantee.
type Mover struct {
	nvme *storage.NVMe
	node string // owning server's identity, for event tracing
	ch   chan moveJob
	wg   sync.WaitGroup

	enqueued atomic.Int64
	dropped  atomic.Int64
	inline   atomic.Int64 // fills stored synchronously on the idle fast path
	fillErrs atomic.Int64 // fills that failed (e.g. ErrTooLarge)

	errMu   sync.Mutex
	lastErr string // most recent fill failure, for /debug/ftcache

	mu     sync.Mutex
	closed bool
	idle   *sync.Cond
	inQ    int // jobs enqueued but not yet stored
}

type moveJob struct {
	path string
	data []byte
}

// NewMover starts a mover with the given queue depth and worker count.
// Non-positive arguments select 256 and 1.
func NewMover(nvme *storage.NVMe, queueDepth, workers int) *Mover {
	if queueDepth <= 0 {
		queueDepth = 256
	}
	if workers <= 0 {
		workers = 1
	}
	m := &Mover{nvme: nvme, ch: make(chan moveJob, queueDepth)}
	m.idle = sync.NewCond(&m.mu)
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.run()
	}
	return m
}

// fill performs one cache fill and records its outcome. Historically a
// failed Put was discarded silently, which made "why is this file never
// cached?" undiagnosable; failures are now counted and the most recent
// one is kept for the debug snapshot.
func (m *Mover) fill(path string, data []byte, inlined bool) error {
	if inlined {
		m.inline.Add(1)
	}
	if err := m.nvme.Put(path, data); err != nil {
		m.fillErrs.Add(1)
		m.errMu.Lock()
		m.lastErr = path + ": " + err.Error()
		m.errMu.Unlock()
		return err
	}
	telemetry.TraceEvent(telemetry.EventRecacheFileDone, m.node, path, int64(len(data)))
	return nil
}

// FillSync stores one object synchronously through the mover's fill
// accounting and tracing. Replica writes use it: the pusher made the
// operation async on its side and wants a durable acknowledgement, and
// routing the store through here keeps every cache fill — first-touch,
// recache, or replica push — visible in the same counters.
func (m *Mover) FillSync(path string, data []byte) error {
	return m.fill(path, data, false)
}

// FillBatchSync stores a whole ingest batch in one sharded NVMe pass
// (storage.NVMe.PutBatch: one lock round-trip per destination shard
// instead of per object), with the same per-fill accounting and tracing
// as FillSync. Returns one error slot per entry.
func (m *Mover) FillBatchSync(entries []storage.BatchEntry) []error {
	errs := m.nvme.PutBatch(entries)
	for i := range entries {
		if errs[i] != nil {
			m.fillErrs.Add(1)
			m.errMu.Lock()
			m.lastErr = entries[i].Path + ": " + errs[i].Error()
			m.errMu.Unlock()
			continue
		}
		telemetry.TraceEvent(telemetry.EventRecacheFileDone, m.node, entries[i].Path, int64(len(entries[i].Data)))
	}
	return errs
}

func (m *Mover) run() {
	defer m.wg.Done()
	for job := range m.ch {
		// A detached root per queued fill: the read that queued it has
		// already sealed its trace by the time the worker runs. Inline
		// fills don't get one — they are timed inside the read's own
		// storage span.
		//ftclint:ignore ctxflow detached root by design, per the comment above: the read that queued this fill sealed its trace before the worker ran
		_, sp := trace.StartTrace(context.Background(), "mover.recache")
		sp.Annotate("node", m.node)
		sp.Annotate("path", job.path)
		err := m.fill(job.path, job.data, false)
		sp.SetError(err)
		sp.End()
		m.mu.Lock()
		m.inQ--
		if m.inQ == 0 {
			m.idle.Broadcast()
		}
		m.mu.Unlock()
	}
}

// Enqueue schedules an async cache fill; returns false when the job was
// dropped (queue full or mover closed).
func (m *Mover) Enqueue(path string, data []byte) bool {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.dropped.Add(1)
		return false
	}
	if m.inQ == 0 {
		// Idle fast path: store synchronously. inQ stays untouched, so
		// Flush sees nothing outstanding — the fill is already durable
		// (in cache terms) by the time Enqueue returns.
		m.mu.Unlock()
		m.fill(path, data, true)
		m.enqueued.Add(1)
		return true
	}
	select {
	case m.ch <- moveJob{path: path, data: data}:
		m.inQ++
		m.enqueued.Add(1)
		m.mu.Unlock()
		return true
	default:
		m.mu.Unlock()
		m.dropped.Add(1)
		return false
	}
}

// Flush blocks until every enqueued job has been stored. Tests use it to
// make async caching deterministic.
func (m *Mover) Flush() {
	m.mu.Lock()
	for m.inQ > 0 {
		m.idle.Wait()
	}
	m.mu.Unlock()
}

// Close drains outstanding jobs and stops the workers. Enqueue after
// Close reports a drop.
func (m *Mover) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.ch)
	m.wg.Wait()
	m.mu.Lock()
	// Jobs may have been consumed between the last decrement and channel
	// close; by now every queued job has been stored.
	m.inQ = 0
	m.idle.Broadcast()
	m.mu.Unlock()
}

// Counters returns the cumulative enqueue and drop counts.
func (m *Mover) Counters() (enqueued, dropped int64) {
	return m.enqueued.Load(), m.dropped.Load()
}

// FillStats returns the inline-fill count, the fill-error count, and the
// most recent fill error ("" if none has occurred).
func (m *Mover) FillStats() (inline, errs int64, lastErr string) {
	m.errMu.Lock()
	lastErr = m.lastErr
	m.errMu.Unlock()
	return m.inline.Load(), m.fillErrs.Load(), lastErr
}

// QueueDepth returns the number of jobs currently buffered in the
// channel (a point-in-time, lock-free read for the telemetry gauge).
func (m *Mover) QueueDepth() int64 { return int64(len(m.ch)) }
