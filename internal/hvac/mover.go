package hvac

import (
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// Mover is the HVAC server's background data-mover thread (§II-B): after
// a PFS fallback the served object is queued here and copied onto the
// node-local NVMe off the request path, so the client never waits on the
// cache write.
//
// The queue is bounded; under overload new work is dropped (counted),
// never blocking a read — a dropped recache only costs one more PFS trip
// on a later epoch.
//
// When the mover is idle the fill is stored inline instead of queued: an
// in-memory cache insert costs less than the scheduler handoff to a
// worker, and landing the fill before the read response is sent closes
// the window where fast concurrent readers re-miss the same object and
// hammer the PFS with duplicate fetches. The queue only takes over when
// a backlog exists, preserving the never-block-a-read guarantee.
type Mover struct {
	nvme *storage.NVMe
	ch   chan moveJob
	wg   sync.WaitGroup

	enqueued atomic.Int64
	dropped  atomic.Int64

	mu     sync.Mutex
	closed bool
	idle   *sync.Cond
	inQ    int // jobs enqueued but not yet stored
}

type moveJob struct {
	path string
	data []byte
}

// NewMover starts a mover with the given queue depth and worker count.
// Non-positive arguments select 256 and 1.
func NewMover(nvme *storage.NVMe, queueDepth, workers int) *Mover {
	if queueDepth <= 0 {
		queueDepth = 256
	}
	if workers <= 0 {
		workers = 1
	}
	m := &Mover{nvme: nvme, ch: make(chan moveJob, queueDepth)}
	m.idle = sync.NewCond(&m.mu)
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.run()
	}
	return m
}

func (m *Mover) run() {
	defer m.wg.Done()
	for job := range m.ch {
		_ = m.nvme.Put(job.path, job.data) // ErrTooLarge: object can never cache
		m.mu.Lock()
		m.inQ--
		if m.inQ == 0 {
			m.idle.Broadcast()
		}
		m.mu.Unlock()
	}
}

// Enqueue schedules an async cache fill; returns false when the job was
// dropped (queue full or mover closed).
func (m *Mover) Enqueue(path string, data []byte) bool {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.dropped.Add(1)
		return false
	}
	if m.inQ == 0 {
		// Idle fast path: store synchronously. inQ stays untouched, so
		// Flush sees nothing outstanding — the fill is already durable
		// (in cache terms) by the time Enqueue returns.
		m.mu.Unlock()
		_ = m.nvme.Put(path, data) // ErrTooLarge: object can never cache
		m.enqueued.Add(1)
		return true
	}
	select {
	case m.ch <- moveJob{path: path, data: data}:
		m.inQ++
		m.enqueued.Add(1)
		m.mu.Unlock()
		return true
	default:
		m.mu.Unlock()
		m.dropped.Add(1)
		return false
	}
}

// Flush blocks until every enqueued job has been stored. Tests use it to
// make async caching deterministic.
func (m *Mover) Flush() {
	m.mu.Lock()
	for m.inQ > 0 {
		m.idle.Wait()
	}
	m.mu.Unlock()
}

// Close drains outstanding jobs and stops the workers. Enqueue after
// Close reports a drop.
func (m *Mover) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.ch)
	m.wg.Wait()
	m.mu.Lock()
	// Jobs may have been consumed between the last decrement and channel
	// close; by now every queued job has been stored.
	m.inQ = 0
	m.idle.Broadcast()
	m.mu.Unlock()
}

// Counters returns the cumulative enqueue and drop counts.
func (m *Mover) Counters() (enqueued, dropped int64) {
	return m.enqueued.Load(), m.dropped.Load()
}
