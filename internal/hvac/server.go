package hvac

import (
	"context"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/loadctl"
	"repro/internal/memtier"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ServerConfig configures one HVAC server daemon.
type ServerConfig struct {
	// Node is this server's cluster identity.
	Node cluster.NodeID
	// NVMeCapacity bounds the node-local cache (0 = unbounded).
	NVMeCapacity int64
	// MoverQueueDepth and MoverWorkers size the background data mover.
	MoverQueueDepth int
	MoverWorkers    int
	// AdmissionLimit bounds concurrently served reads; excess requests
	// queue (AdmissionQueue deep, for at most AdmissionWait) and are then
	// shed with StatusOverloaded. <= 0 disables admission control.
	AdmissionLimit int
	// AdmissionQueue is the wait-line depth; < 0 selects AdmissionLimit.
	AdmissionQueue int
	// AdmissionWait bounds the queue wait; <= 0 selects
	// loadctl.DefaultAdmissionWait.
	AdmissionWait time.Duration
	// ReadDelay simulates the device/network service time of one read.
	// When > 0, each read holds one of readDeviceWidth device slots for
	// this long, giving every node finite serving capacity — so queueing
	// at an overloaded node is real wall-clock time even when the whole
	// in-process cluster shares one core. 0 (the default) disables the
	// simulation entirely.
	ReadDelay time.Duration
	// RAMCapacity, when > 0, enables the RAM tier: a sharded in-memory
	// hot-object cache (internal/memtier) above NVMe on the read path.
	// Only keys the server-side hot-key sketch publishes as hot are
	// admitted; hits skip the device model entirely and serve zero-copy
	// from the tier's pooled buffers. 0 (the default) disables the tier.
	RAMCapacity int64
	// RAMSketch tunes the server-side hot-key sketch driving RAM
	// admission; the zero value selects loadctl defaults.
	RAMSketch loadctl.Config
}

// readDeviceWidth is the number of simulated reads a node's device
// serves concurrently when ReadDelay is set (an NVMe-like queue width).
const readDeviceWidth = 4

// Server is one node's HVAC daemon: it owns the node-local NVMe cache
// and falls back to the shared PFS on miss.
type Server struct {
	cfg     ServerConfig
	nvme    *storage.NVMe
	pfs     storage.Store
	mover   *Mover
	rpc     *rpc.Server
	limiter *loadctl.Limiter // nil → admission control disabled
	device  chan struct{}    // simulated device slots; nil → no ReadDelay

	// baseCtx is the server's lifetime context: the wire protocol
	// carries no per-request cancellation, so server-side coalesced
	// fills hang off this root and are cut loose when Close cancels it.
	baseCtx   context.Context
	closeBase context.CancelFunc

	// RAM tier (all nil when RAMCapacity == 0): the sketch decides who
	// gets promoted, the singleflight group makes each hot fill happen
	// once, and the tier itself holds the bytes.
	ram       *memtier.Tier
	ramSketch *loadctl.Sketch
	ramFill   *loadctl.Group

	reads        atomic.Int64
	pfsFallbacks atomic.Int64
	ramServed    atomic.Int64 // reads answered from the RAM tier
	batchPuts    atomic.Int64 // OpPutBatch frames decoded
	batchEntries atomic.Int64 // objects received inside those frames
	batchSheds   atomic.Int64 // whole batches shed by admission
}

// NewServer creates a server over the shared pfs. The PFS handle stands
// in for the mounted Lustre filesystem every Frontier node sees.
func NewServer(cfg ServerConfig, pfs storage.Store) *Server {
	s := &Server{
		cfg:     cfg,
		nvme:    storage.NewNVMe(cfg.NVMeCapacity),
		pfs:     pfs,
		limiter: loadctl.NewLimiter(cfg.AdmissionLimit, cfg.AdmissionQueue, cfg.AdmissionWait),
	}
	//ftclint:ignore ctxflow server lifetime root; Close cancels it, and the wire protocol has no caller context to inherit
	s.baseCtx, s.closeBase = context.WithCancel(context.Background())
	if cfg.ReadDelay > 0 {
		s.device = make(chan struct{}, readDeviceWidth)
	}
	if cfg.RAMCapacity > 0 {
		s.ram = memtier.New(cfg.RAMCapacity, s.demoteRAM)
		s.ramSketch = loadctl.NewSketch(cfg.RAMSketch)
		s.ramFill = loadctl.NewGroup()
	}
	s.mover = NewMover(s.nvme, cfg.MoverQueueDepth, cfg.MoverWorkers)
	s.mover.node = string(cfg.Node)
	s.rpc = rpc.NewServer(s)
	s.registerTelemetry()
	return s
}

// Node returns the server's cluster identity.
func (s *Server) Node() cluster.NodeID { return s.cfg.Node }

// NVMe exposes the cache store (tests and experiments preload it).
func (s *Server) NVMe() *storage.NVMe { return s.nvme }

// RAM exposes the in-memory hot-object tier (nil when disabled).
func (s *Server) RAM() *memtier.Tier { return s.ram }

// RAMServed returns the cumulative count of reads answered from RAM.
func (s *Server) RAMServed() int64 { return s.ramServed.Load() }

// demoteRAM is the tier's eviction callback: an object squeezed out of
// RAM falls back to NVMe so its bytes stay node-local (RAM → NVMe →
// PFS, the paper's tier order). Bytes are pinned by the tier for the
// duration of the call; the NVMe fill copies them. Objects already on
// NVMe (the common case — promotion never removed them) cost one Has.
// Invalidation and Clear never demote: stale bytes must not resurrect
// into a lower tier.
func (s *Server) demoteRAM(path string, data []byte) {
	if s.nvme.Has(path) {
		return
	}
	s.mover.Enqueue(path, append([]byte(nil), data...))
}

// Mover exposes the data mover (tests flush it for determinism).
func (s *Server) Mover() *Mover { return s.mover }

// Limiter exposes the admission controller (nil when disabled).
func (s *Server) Limiter() *loadctl.Limiter { return s.limiter }

// Reads returns the cumulative OpRead count — the per-node load signal
// the skew experiments report as read share.
func (s *Server) Reads() int64 { return s.reads.Load() }

// Serve runs the RPC loop on lis until Close.
func (s *Server) Serve(lis net.Listener) error { return s.rpc.Serve(lis) }

// SetUnresponsive toggles the fault-injection mode in which the server
// reads requests but never answers (see rpc.Server.SetUnresponsive).
func (s *Server) SetUnresponsive(v bool) { s.rpc.SetUnresponsive(v) }

// Unresponsive reports whether fault-injection mode is active.
func (s *Server) Unresponsive() bool { return s.rpc.Unresponsive() }

// Close stops the RPC server and drains the mover.
func (s *Server) Close() {
	s.closeBase()
	s.rpc.Close()
	s.mover.Close()
}

// Handle implements rpc.Handler (direct handler invocations in tests
// and tools; the RPC server itself dispatches through HandleLeased).
func (s *Server) Handle(op uint16, payload []byte) (uint16, []byte) {
	return s.HandleWait(op, payload, 0)
}

// HandleWait implements rpc.WaitHandler — the copying dispatch path.
// A zero-copy read response is flattened (head and leased tail joined
// into one owned slice) and its lease released before return, so
// direct callers never see tier internals.
func (s *Server) HandleWait(op uint16, payload []byte, connWait time.Duration) (uint16, []byte) {
	lr := s.HandleLeased(op, payload, connWait)
	if lr.Release == nil {
		return lr.Status, lr.Head
	}
	resp := make([]byte, 0, len(lr.Head)+len(lr.Ext))
	resp = append(append(resp, lr.Head...), lr.Ext...)
	lr.Release()
	return lr.Status, resp
}

// HandleLeased implements rpc.LeasedHandler: the RPC server dispatches
// every request here, and a RAM-tier read hit answers with a leased
// zero-copy payload tail that stays pinned until the coalesced
// response flush has it on the wire. connWait is the time the request
// sat in the per-connection fan-out queue, which tracing reports as
// the first slice of the server-side queue component.
func (s *Server) HandleLeased(op uint16, payload []byte, connWait time.Duration) rpc.LeasedResp {
	switch op {
	case OpPing:
		return rpc.LeasedResp{Status: rpc.StatusOK}
	case OpRead:
		// Admission gate: only reads are limited — control-plane ops
		// (ping, stats) must keep answering under overload so liveness
		// probes and observability stay truthful, and puts are already
		// bounded by the pusher's semaphore. The gate runs before the
		// payload is even decoded, so a shed request costs no parse and
		// gets no span — the limiter's own counters are its record.
		admissionWait := time.Duration(0)
		if s.limiter != nil {
			ok, wait := s.limiter.AcquireWait()
			if !ok {
				return rpc.LeasedResp{Status: StatusOverloaded}
			}
			defer s.limiter.Release()
			admissionWait = wait
		}
		return s.handleRead(payload, connWait, admissionWait)
	case OpStat:
		return plainResp(s.handleStat(payload))
	case OpStats:
		return plainResp(s.handleStats())
	case OpInvalidate:
		return plainResp(s.handleInvalidate(payload))
	case OpPut:
		return plainResp(s.handlePut(payload))
	case OpPutBatch:
		return plainResp(s.handlePutBatch(payload, connWait))
	default:
		return rpc.LeasedResp{Status: StatusError, Head: []byte("unknown opcode")}
	}
}

// plainResp wraps a copying handler's result as a lease-free response.
func plainResp(status uint16, resp []byte) rpc.LeasedResp {
	return rpc.LeasedResp{Status: status, Head: resp}
}

// handlePut accepts a replica write: the pusher already holds the bytes,
// so the copy goes straight to NVMe (synchronously — the caller made it
// async on its side and wants a durable acknowledgement). Writes for
// already-cached paths are acknowledged without storing: hot-object
// fan-out means many clients may push the same object, and re-storing
// identical bytes only churns the LRU.
func (s *Server) handlePut(payload []byte) (uint16, []byte) {
	var req PutReq
	if err := req.Unmarshal(payload); err != nil {
		return StatusError, []byte(err.Error())
	}
	sp := trace.StartRemote("server.put", trace.TraceID(req.Trace.TraceID), trace.SpanID(req.Trace.SpanID))
	defer sp.End()
	sp.Annotate("node", string(s.cfg.Node))
	if s.nvme.Has(req.Path) {
		sp.Annotate("dedup", "cached")
		return rpc.StatusOK, nil
	}
	// The path is new to NVMe, so the put may carry bytes that differ
	// from a stale RAM copy (promoted earlier, then evicted from NVMe):
	// drop the RAM entry before the fill so the tier can never serve
	// stale data. When NVMe already had the path (dedup above), RAM and
	// NVMe still agree and no invalidation is needed.
	if s.ram != nil {
		s.ram.Invalidate(req.Path)
	}
	// The payload aliases the RPC buffer; copy before retaining.
	data := append([]byte(nil), req.Data...)
	st := sp.StartChild("storage.fill")
	err := s.mover.FillSync(req.Path, data)
	st.SetError(err)
	st.End()
	if err != nil {
		sp.SetError(err)
		return StatusError, []byte(err.Error())
	}
	return rpc.StatusOK, nil
}

// handlePutBatch accepts one ingest batch: every entry is decoded,
// admitted at its true cost (the batch competes for admission slots as
// N objects, not as one frame — otherwise batching would be an
// admission-control bypass), copied off the pooled RPC buffer, and
// stored in a single sharded NVMe pass. Each entry gets its own status
// so one oversized object never fails its batch-mates; already-cached
// paths are acknowledged without re-storing, like handlePut.
func (s *Server) handlePutBatch(payload []byte, connWait time.Duration) (uint16, []byte) {
	var req PutBatchReq
	if err := req.Unmarshal(payload); err != nil {
		return StatusError, []byte(err.Error())
	}
	s.batchPuts.Add(1)
	s.batchEntries.Add(int64(len(req.Entries)))
	statuses := make([]uint16, len(req.Entries))
	if len(req.Entries) == 0 {
		resp := PutBatchResp{}
		return rpc.StatusOK, resp.Marshal()
	}
	sp := trace.StartRemote("server.put_batch", trace.TraceID(req.Trace.TraceID), trace.SpanID(req.Trace.SpanID))
	defer sp.End()
	sp.Annotate("node", string(s.cfg.Node))
	sp.AnnotateInt("entries", int64(len(req.Entries)))
	if connWait > 0 {
		sp.AnnotateDuration("conn_queue_ns", connWait)
	}
	if s.limiter != nil {
		ok, wait := s.limiter.AcquireNWait(len(req.Entries))
		if !ok {
			s.batchSheds.Add(1)
			sp.SetErrorString("overloaded")
			return StatusOverloaded, nil
		}
		defer s.limiter.ReleaseN(len(req.Entries))
		if wait > 0 {
			sp.AnnotateDuration("admission_wait_ns", wait)
		}
	}
	// Collect the entries that actually need storing, remembering which
	// request index each came from so statuses line up.
	fills := make([]storage.BatchEntry, 0, len(req.Entries))
	idx := make([]int, 0, len(req.Entries))
	total := 0
	for i := range req.Entries {
		if s.nvme.Has(req.Entries[i].Path) {
			continue // acked as OK without re-storing
		}
		if s.ram != nil {
			// Same rule as handlePut: a path new to NVMe may carry new
			// bytes, so any stale RAM copy must go before the fill.
			s.ram.Invalidate(req.Entries[i].Path)
		}
		fills = append(fills, storage.BatchEntry{Path: req.Entries[i].Path, Data: req.Entries[i].Data})
		idx = append(idx, i)
		total += len(req.Entries[i].Data)
	}
	// Entry data aliases the pooled RPC buffer; copy before retaining.
	// One slab for the whole batch: per-entry allocations at full ingest
	// rate are pure allocator/GC churn, and batch-mates are inserted
	// adjacently so they leave the LRU together — the shared backing
	// array does not outlive its batch by much.
	slab := make([]byte, 0, total)
	for i := range fills {
		start := len(slab)
		slab = append(slab, fills[i].Data...)
		fills[i].Data = slab[start:len(slab):len(slab)]
	}
	failed := 0
	if len(fills) > 0 {
		st := sp.StartChild("storage.batch_fill")
		st.AnnotateInt("fills", int64(len(fills)))
		for j, err := range s.mover.FillBatchSync(fills) {
			if err != nil {
				statuses[idx[j]] = StatusError
				failed++
			}
		}
		if failed > 0 {
			st.SetErrorString("partial batch failure")
		}
		st.End()
	}
	sp.AnnotateInt("failed", int64(failed))
	resp := PutBatchResp{Statuses: statuses}
	return rpc.StatusOK, resp.Marshal()
}

// handleRead is the tiered server read path: RAM hit → serve zero-copy
// (no device model — RAM pays no NVMe service time); RAM miss → NVMe;
// NVMe miss → PFS, serve, and enqueue an async cache fill. Published-
// hot keys are promoted into the RAM tier on the way out, and a hot
// NVMe miss runs its PFS fetch + RAM/NVMe fill through the
// singleflight group so a thundering herd fills each tier exactly
// once. connWait and admissionWait are the two server-side queueing
// delays already paid before this point; the span reports them so the
// client can attribute its observed RPC time to queueing vs. storage.
func (s *Server) handleRead(payload []byte, connWait, admissionWait time.Duration) rpc.LeasedResp {
	var req ReadReq
	if err := req.Unmarshal(payload); err != nil {
		return rpc.LeasedResp{Status: StatusError, Head: []byte(err.Error())}
	}
	s.reads.Add(1)
	sp := trace.StartRemote("server.read", trace.TraceID(req.Trace.TraceID), trace.SpanID(req.Trace.SpanID))
	defer sp.End()
	sp.Annotate("node", string(s.cfg.Node))
	if connWait > 0 {
		sp.AnnotateDuration("conn_queue_ns", connWait)
	}
	if admissionWait > 0 {
		sp.AnnotateDuration("admission_wait_ns", admissionWait)
	}
	hot := false
	if s.ram != nil {
		hot = s.ramSketch.Touch(req.Path)
		if lease, ok := s.ram.Get(req.Path); ok {
			// RAM hit: no device-slot wait, no storage read, no copy.
			// The response head (source/size/length prefix) goes into
			// the shared flush buffer; the body rides as a leased
			// segment released only after the flush completes.
			hs := sp.StartChild("memtier.hit")
			data := lease.Bytes()
			body, inRange := slice(data, req.Offset, req.Length)
			if !inRange {
				lease.Release()
				hs.SetErrorString("range out of bounds")
				hs.End()
				sp.SetErrorString("range out of bounds")
				return rpc.LeasedResp{Status: StatusError, Head: []byte("range out of bounds")}
			}
			hs.AnnotateInt("bytes", int64(len(body)))
			hs.End()
			s.ramServed.Add(1)
			head := wire.NewBuffer(16).
				U8(SourceRAM).I64(int64(len(data))).U32(uint32(len(body))).Bytes()
			return rpc.LeasedResp{Status: rpc.StatusOK, Head: head, Ext: body, Release: lease.Release}
		}
	}
	if s.device != nil {
		// Device-slot wait is timed only for traced requests: the
		// untraced path (sp == nil) must not pay the clock reads.
		var t0 time.Time
		if sp != nil {
			t0 = time.Now()
		}
		s.device <- struct{}{}
		if sp != nil {
			sp.AnnotateDuration("device_wait_ns", time.Since(t0))
		}
		time.Sleep(s.cfg.ReadDelay)
		<-s.device
	}
	st := sp.StartChild("storage.read")
	source := SourceNVMe
	data, err := s.nvme.Get(req.Path)
	if err != nil {
		if hot {
			// Hot miss: coalesce the PFS fetch and both tier fills
			// into one flight — followers share the leader's bytes.
			var shared bool
			data, err, shared = s.ramFill.Do(s.baseCtx, req.Path, loadctl.FetcherFunc(s.hotFillFetch))
			if shared {
				st.Annotate("coalesced", "true")
			}
		} else {
			data, err = s.pfs.Get(req.Path)
			if err == nil {
				s.pfsFallbacks.Add(1)
				telemetry.TraceEvent(telemetry.EventPFSFallback, string(s.cfg.Node), req.Path, int64(len(data)))
				if s.mover.Enqueue(req.Path, data) {
					st.Annotate("recache", "queued")
				} else {
					st.Annotate("recache", "dropped")
				}
			}
		}
		if err != nil {
			st.SetErrorString("not found")
			st.End()
			sp.SetErrorString("not found")
			return rpc.LeasedResp{Status: StatusNotFound, Head: []byte(req.Path)}
		}
		source = SourcePFS
	} else if hot && !s.ram.Has(req.Path) {
		// Hot NVMe hit: promote into RAM (deduped through the same
		// singleflight so concurrent hits copy the bytes once).
		s.promoteRAM(req.Path, data, sp)
	}
	st.Annotate("source", sourceName(source))
	st.End()
	body, ok := slice(data, req.Offset, req.Length)
	if !ok {
		sp.SetErrorString("range out of bounds")
		return rpc.LeasedResp{Status: StatusError, Head: []byte("range out of bounds")}
	}
	resp := ReadResp{Source: source, FileSize: int64(len(data)), Data: body}
	return rpc.LeasedResp{Status: rpc.StatusOK, Head: resp.Marshal()}
}

// hotFillFetch is the singleflight body of a hot-key miss: one PFS
// read, one async NVMe fill, one RAM admission — however many readers
// piled onto the flight. Runs as the flight leader; the returned bytes
// are shared read-only with every waiter.
func (s *Server) hotFillFetch(_ context.Context, path string) ([]byte, error) {
	data, err := s.pfs.Get(path)
	if err != nil {
		return nil, err
	}
	s.pfsFallbacks.Add(1)
	telemetry.TraceEvent(telemetry.EventPFSFallback, string(s.cfg.Node), path, int64(len(data)))
	s.mover.Enqueue(path, data)
	s.ram.Admit(path, data)
	return data, nil
}

// promoteRAM copies a hot NVMe-resident object up into the RAM tier,
// deduping concurrent promotions of the same key through the
// singleflight group (the admit is a copy; N concurrent hits should
// pay for one).
func (s *Server) promoteRAM(path string, data []byte, sp *trace.Span) {
	ps := sp.StartChild("memtier.promote")
	_, _, shared := s.ramFill.Do(s.baseCtx, path, loadctl.FetcherFunc(
		func(_ context.Context, key string) ([]byte, error) {
			s.ram.Admit(key, data)
			return data, nil
		}))
	if shared {
		ps.Annotate("coalesced", "true")
	}
	ps.AnnotateInt("bytes", int64(len(data)))
	ps.End()
}

// sourceName renders a read source for span annotations.
func sourceName(source uint8) string {
	switch source {
	case SourcePFS:
		return "pfs"
	case SourceRAM:
		return "ram"
	}
	return "nvme"
}

// slice extracts [off, off+length) of data; length < 0 means to EOF.
func slice(data []byte, off, length int64) ([]byte, bool) {
	if off < 0 || off > int64(len(data)) {
		return nil, false
	}
	if length < 0 {
		return data[off:], true
	}
	end := off + length
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return data[off:end], true
}

func (s *Server) handleStat(payload []byte) (uint16, []byte) {
	var req StatReq
	if err := req.Unmarshal(payload); err != nil {
		return StatusError, []byte(err.Error())
	}
	if data, err := s.nvme.Get(req.Path); err == nil {
		resp := StatResp{Size: int64(len(data)), Cached: true}
		return rpc.StatusOK, resp.Marshal()
	}
	if data, err := s.pfs.Get(req.Path); err == nil {
		resp := StatResp{Size: int64(len(data)), Cached: false}
		return rpc.StatusOK, resp.Marshal()
	}
	return StatusNotFound, []byte(req.Path)
}

func (s *Server) handleStats() (uint16, []byte) {
	objs, bytes := s.nvme.Stats()
	hits, misses, _ := s.nvme.Counters()
	enq, drop := s.mover.Counters()
	resp := StatsResp{
		NVMeObjects:   int64(objs),
		NVMeBytes:     bytes,
		NVMeHits:      hits,
		NVMeMisses:    misses,
		PFSFallbacks:  s.pfsFallbacks.Load(),
		MoverEnqueued: enq,
		MoverDropped:  drop,
	}
	return rpc.StatusOK, resp.Marshal()
}

func (s *Server) handleInvalidate(payload []byte) (uint16, []byte) {
	var req StatReq
	if err := req.Unmarshal(payload); err != nil {
		return StatusError, []byte(err.Error())
	}
	if s.ram != nil {
		s.ram.Invalidate(req.Path)
	}
	s.nvme.Delete(req.Path)
	return rpc.StatusOK, nil
}
