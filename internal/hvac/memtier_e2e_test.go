package hvac

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/loadctl"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// newRAMServer boots one server with the RAM tier enabled and an
// every-touch sketch (SampleRate 1) so tests control hotness exactly:
// minHotCount guaranteed touches make a key hot on the next touch.
func newRAMServer(t *testing.T, ramCapacity int64) (*Server, *rpc.InprocNetwork, *storage.PFS) {
	t.Helper()
	network := rpc.NewInprocNetwork()
	pfs := storage.NewPFS()
	srv := NewServer(ServerConfig{
		Node:        "node-00",
		RAMCapacity: ramCapacity,
		RAMSketch:   loadctl.Config{SampleRate: 1},
	}, pfs)
	lis, err := network.Listen("node-00")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return srv, network, pfs
}

func ramClient(t *testing.T, network *rpc.InprocNetwork, pfs *storage.PFS) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{
		Endpoints:    map[cluster.NodeID]string{"node-00": "node-00"},
		Network:      network,
		Router:       staticRouter{node: "node-00"},
		PFS:          pfs,
		RPCTimeout:   time.Second,
		TimeoutLimit: 2,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// heat reads path until the server promotes it into RAM (the sketch
// needs minHotCount sampled touches before the key publishes hot, and
// promotion happens on the touch after that).
func heat(t *testing.T, c *Client, srv *Server, path string) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		if _, err := c.Read(ctx, path); err != nil {
			t.Fatalf("heat read %d: %v", i, err)
		}
		if srv.RAM().Has(path) {
			return
		}
	}
	t.Fatalf("%s never promoted into RAM after 64 hot reads", path)
}

func TestRAMTierPromoteAndServe(t *testing.T) {
	srv, network, pfs := newRAMServer(t, 1<<20)
	payload := bytes.Repeat([]byte("ram-tier-payload."), 64)
	pfs.Put("data/hot", payload)
	c := ramClient(t, network, pfs)
	ctx := context.Background()

	heat(t, c, srv, "data/hot")
	before := c.Stats().ServedRAM
	got, err := c.Read(ctx, "data/hot")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("RAM read: %v (len %d, want %d)", err, len(got), len(payload))
	}
	st := c.Stats()
	if st.ServedRAM != before+1 {
		t.Fatalf("ServedRAM=%d, want %d: %+v", st.ServedRAM, before+1, st)
	}
	if srv.RAMServed() == 0 {
		t.Fatal("server never counted a RAM-served read")
	}
	// The zero-copy response must leave no lease behind once delivered.
	deadline := time.Now().Add(2 * time.Second)
	for srv.RAM().ActiveLeases() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leaked leases: %d", srv.RAM().ActiveLeases())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRAMTierRangeRead(t *testing.T) {
	srv, network, pfs := newRAMServer(t, 1<<20)
	payload := []byte("0123456789abcdef")
	pfs.Put("data/hot", payload)
	c := ramClient(t, network, pfs)
	heat(t, c, srv, "data/hot")

	got, err := c.ReadRange(context.Background(), "data/hot", 4, 8)
	if err != nil || string(got) != "456789ab" {
		t.Fatalf("range read from RAM: %q, %v", got, err)
	}
}

func TestRAMTierInvalidation(t *testing.T) {
	srv, network, pfs := newRAMServer(t, 1<<20)
	pfs.Put("data/hot", []byte("version-1"))
	c := ramClient(t, network, pfs)
	ctx := context.Background()
	heat(t, c, srv, "data/hot")

	// OpInvalidate must clear both tiers: a new version on the PFS has
	// to reach subsequent readers, never the stale RAM copy.
	pfs.Put("data/hot", []byte("version-2"))
	conn, _ := network.Dial("node-00")
	rcli := rpc.NewClient(conn)
	defer rcli.Close()
	req := StatReq{Path: "data/hot"}
	if _, status, err := rcli.Call(ctx, OpInvalidate, req.Marshal()); err != nil || status != rpc.StatusOK {
		t.Fatalf("invalidate: status=%d err=%v", status, err)
	}
	if srv.RAM().Has("data/hot") {
		t.Fatal("RAM still holds the invalidated object")
	}
	got, err := c.Read(ctx, "data/hot")
	if err != nil || string(got) != "version-2" {
		t.Fatalf("post-invalidate read: %q, %v", got, err)
	}
}

func TestRAMTierPutInvalidatesStaleCopy(t *testing.T) {
	srv, network, pfs := newRAMServer(t, 1<<20)
	pfs.Put("data/hot", []byte("old-bytes"))
	c := ramClient(t, network, pfs)
	heat(t, c, srv, "data/hot")

	// Simulate NVMe losing the object while RAM keeps it (promotion
	// never removes from NVMe, but NVMe evicts independently) — then a
	// put with new bytes must displace the stale RAM copy.
	srv.NVMe().Delete("data/hot")
	if err := c.Push(context.Background(), "node-00", "data/hot", []byte("new-bytes")); err != nil {
		t.Fatalf("push: %v", err)
	}
	if srv.RAM().Has("data/hot") {
		t.Fatal("stale RAM copy survived a put of new bytes")
	}
	got, err := c.Read(context.Background(), "data/hot")
	if err != nil || string(got) != "new-bytes" {
		t.Fatalf("post-put read: %q, %v", got, err)
	}
}

func TestRAMTierDemotionRefillsNVMe(t *testing.T) {
	// Tiny RAM budget: heating a second object evicts the first, and
	// the demotion callback must land the victim's bytes on NVMe if
	// they are not already there.
	srv, network, pfs := newRAMServer(t, 64)
	a := []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa") // 40 bytes
	b := []byte("bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
	pfs.Put("data/a", a)
	pfs.Put("data/b", b)
	c := ramClient(t, network, pfs)
	heat(t, c, srv, "data/a")

	// Drop the NVMe copy so the demotion has observable work to do.
	srv.NVMe().Delete("data/a")
	heat(t, c, srv, "data/b") // evicts data/a (40+40 > 64)
	if srv.RAM().Has("data/a") {
		t.Fatal("data/a should have been evicted by data/b")
	}
	srv.Mover().Flush()
	if !srv.NVMe().Has("data/a") {
		t.Fatal("evicted object was not demoted back to NVMe")
	}
}

func TestRAMTierConcurrentHotReads(t *testing.T) {
	srv, network, pfs := newRAMServer(t, 1<<20)
	const files = 4
	payloads := make(map[string][]byte, files)
	for i := 0; i < files; i++ {
		path := fmt.Sprintf("data/f%d", i)
		payloads[path] = bytes.Repeat([]byte{byte('A' + i)}, 2048)
		pfs.Put(path, payloads[path])
	}
	c := ramClient(t, network, pfs)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 200; i++ {
				path := fmt.Sprintf("data/f%d", i%files)
				got, err := c.Read(ctx, path)
				if err != nil {
					t.Errorf("read %s: %v", path, err)
					return
				}
				if !bytes.Equal(got, payloads[path]) {
					t.Errorf("read %s: wrong bytes (len %d)", path, len(got))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if srv.RAMServed() == 0 {
		t.Fatal("no reads were served from RAM under a hot concurrent workload")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.RAM().ActiveLeases() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leaked leases after concurrent reads: %d", srv.RAM().ActiveLeases())
		}
		time.Sleep(time.Millisecond)
	}
}
