//go:build benchguard

package hvac

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/loadctl"
)

// benchUniformRead measures the client read path over an in-process
// cluster under a uniform (no hot key) workload, with load control on
// or off. Uniform is the regime where loadctl must be near-free: every
// read pays the sampled sketch touch and the coalescing map, and
// nothing ever goes hot — 512 distinct keys keep every key's share at
// ~0.2%, far under the 1% hot threshold.
func benchUniformRead(b *testing.B, enabled bool) {
	tc := newLoadctlCluster(b, 2, ServerConfig{})
	const files = 512
	paths := make([]string, files)
	for i := 0; i < files; i++ {
		paths[i] = fmt.Sprintf("bench/f%d", i)
		body := []byte(fmt.Sprintf("payload-%d", i))
		tc.pfs.Put(paths[i], body)
		tc.servers["node-00"].NVMe().Put(paths[i], body)
	}
	cfg := ClientConfig{
		Router:     newReplRouter(tc.nodes),
		RPCTimeout: 2 * time.Second,
	}
	if enabled {
		cfg.LoadControl = &loadctl.Config{}
	}
	c := tc.client(cfg)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(ctx, paths[i%files]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// TestLoadctlOverheadGuard fails when enabling load control costs more
// than the guard threshold on a uniform workload — the regime where the
// subsystem must be pure overhead-free bookkeeping (sampled sketch
// touch + singleflight map). The documented budget is 5%; the guard
// trips at 30% because single-shot in-process runs on shared CI
// machines jitter far more than the budget, and the guard's job is to
// catch an accidental lock, allocation or fan-out on the uniform path,
// not to benchstat a small drift.
//
// Gated behind the benchguard tag so ordinary `go test ./...` stays
// fast and deterministic:
//
//	go test -tags benchguard -run TestLoadctlOverheadGuard ./internal/hvac/
func TestLoadctlOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard skipped in -short mode")
	}
	// Interleave on/off pairs and keep the best of each: minimums are far
	// more robust to scheduler noise than means on a shared runner, and
	// alternating the two sides keeps slow background drift (GC state,
	// CPU frequency, co-tenants) from loading onto one side only.
	run := func(enabled bool) float64 {
		r := testing.Benchmark(func(b *testing.B) { benchUniformRead(b, enabled) })
		return float64(r.NsPerOp())
	}
	var on, off float64
	for i := 0; i < 3; i++ {
		var a, b float64
		if i%2 == 0 { // alternate which side warms the pair
			a = run(true)
			b = run(false)
		} else {
			b = run(false)
			a = run(true)
		}
		if on == 0 || a < on {
			on = a
		}
		if off == 0 || b < off {
			off = b
		}
	}
	overhead := (on - off) / off
	t.Logf("uniform read: loadctl on %.0f ns/op, off %.0f ns/op, overhead %+.1f%%", on, off, 100*overhead)
	if overhead > 0.30 {
		t.Errorf("loadctl overhead %.1f%% exceeds 30%% guard threshold (budget is 5%% under benchstat conditions)", 100*overhead)
	}
}
