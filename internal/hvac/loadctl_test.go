package hvac

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/loadctl"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// replRouter is a minimal ring-like Replicator for load-control tests:
// every path's candidate order is the fixed node list with failed nodes
// skipped, so the owner is deterministic and the replica set is the
// remaining nodes in order.
type replRouter struct {
	mu     sync.Mutex
	nodes  []cluster.NodeID
	failed map[cluster.NodeID]bool
}

func newReplRouter(nodes []cluster.NodeID) *replRouter {
	return &replRouter{nodes: nodes, failed: make(map[cluster.NodeID]bool)}
}

func (r *replRouter) Name() string { return "repl-test" }

func (r *replRouter) Route(path string) Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nodes {
		if !r.failed[n] {
			return Decision{Kind: RouteNode, Node: n}
		}
	}
	return Decision{Kind: RoutePFS}
}

func (r *replRouter) NodeFailed(n cluster.NodeID) {
	r.mu.Lock()
	r.failed[n] = true
	r.mu.Unlock()
}

func (r *replRouter) Replicas(path string, n int) []cluster.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]cluster.NodeID, 0, n)
	for _, node := range r.nodes {
		if len(out) == n {
			break
		}
		if !r.failed[node] {
			out = append(out, node)
		}
	}
	return out
}

// loadctlCluster boots n servers with a shared per-server config — the
// generic newTestCluster always uses defaults, and the load-control
// tests need admission limits and simulated service time.
type loadctlCluster struct {
	t       testing.TB
	network *rpc.InprocNetwork
	pfs     *storage.PFS
	servers map[cluster.NodeID]*Server
	nodes   []cluster.NodeID
}

func newLoadctlCluster(t testing.TB, n int, scfg ServerConfig) *loadctlCluster {
	t.Helper()
	tc := &loadctlCluster{
		t:       t,
		network: rpc.NewInprocNetwork(),
		pfs:     storage.NewPFS(),
		servers: make(map[cluster.NodeID]*Server),
	}
	for i := 0; i < n; i++ {
		node := cluster.NodeID(fmt.Sprintf("node-%02d", i))
		tc.nodes = append(tc.nodes, node)
		cfg := scfg
		cfg.Node = node
		srv := NewServer(cfg, tc.pfs)
		lis, err := tc.network.Listen(string(node))
		if err != nil {
			t.Fatalf("listen %s: %v", node, err)
		}
		go srv.Serve(lis)
		tc.servers[node] = srv
	}
	t.Cleanup(func() {
		for _, s := range tc.servers {
			s.Close()
		}
	})
	return tc
}

func (tc *loadctlCluster) client(cfg ClientConfig) *Client {
	tc.t.Helper()
	eps := make(map[cluster.NodeID]string, len(tc.nodes))
	for _, n := range tc.nodes {
		eps[n] = string(n)
	}
	cfg.Endpoints = eps
	cfg.Network = tc.network
	cfg.PFS = tc.pfs
	c, err := NewClient(cfg)
	if err != nil {
		tc.t.Fatalf("NewClient: %v", err)
	}
	tc.t.Cleanup(c.Close)
	return c
}

// TestLoadctlCoalescedConcurrentMiss drives many concurrent readers of
// one cold path through a load-controlled client: exactly one flight
// should reach the server per wave and everyone else inherits its
// result.
func TestLoadctlCoalescedConcurrentMiss(t *testing.T) {
	testutil.CheckGoroutines(t)
	// ReadDelay keeps the winning flight in-server long enough that the
	// other readers demonstrably pile onto it.
	tc := newLoadctlCluster(t, 1, ServerConfig{ReadDelay: 20 * time.Millisecond})
	tc.pfs.Put("data/cold", []byte("cold-payload"))
	c := tc.client(ClientConfig{
		Router:      newReplRouter(tc.nodes),
		RPCTimeout:  2 * time.Second,
		LoadControl: &loadctl.Config{},
	})

	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := c.Read(context.Background(), "data/cold")
			if err != nil {
				errs <- err
				return
			}
			if string(data) != "cold-payload" {
				errs <- fmt.Errorf("bad data %q", data)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := tc.servers["node-00"].Reads(); got >= readers {
		t.Fatalf("server saw %d reads for %d concurrent readers — no coalescing", got, readers)
	}
	if st := c.Stats(); st.CoalescedReads == 0 {
		t.Fatalf("no coalesced reads recorded: %+v", st)
	}
	if n := c.LoadControl().Coalesce.Inflight(); n != 0 {
		t.Fatalf("%d flights still registered after all reads returned", n)
	}
}

// TestLoadctlCoalesceNodeKillMidFlight kills the owner while a coalesced
// flight is being served. The winner's RPC dies, the failover loop (or a
// retrying waiter) re-routes to the surviving node, and every reader
// still gets the bytes — with no flight record or goroutine left behind.
func TestLoadctlCoalesceNodeKillMidFlight(t *testing.T) {
	testutil.CheckGoroutines(t)
	tc := newLoadctlCluster(t, 2, ServerConfig{ReadDelay: 30 * time.Millisecond})
	tc.pfs.Put("data/victim", []byte("victim-payload"))
	c := tc.client(ClientConfig{
		Router:       newReplRouter(tc.nodes),
		RPCTimeout:   time.Second,
		TimeoutLimit: 1, // first connection failure declares the node
		LoadControl:  &loadctl.Config{},
	})

	before := runtime.NumGoroutine()
	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := c.Read(context.Background(), "data/victim")
			if err != nil {
				errs <- err
				return
			}
			if string(data) != "victim-payload" {
				errs <- fmt.Errorf("bad data %q", data)
			}
		}()
	}
	// Let the flight reach node-00's simulated device, then kill it.
	time.Sleep(10 * time.Millisecond)
	tc.servers["node-00"].Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if n := c.LoadControl().Coalesce.Inflight(); n != 0 {
		t.Fatalf("%d flights still registered after the kill", n)
	}
	// Goroutine-leak check: allow the runtime a moment to reap the dead
	// server's connection handlers, then demand we are back near where we
	// started.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after node-kill mid-flight",
		before, runtime.NumGoroutine())
}

// TestLoadctlFanoutUnresponsiveOwner is the failure-detector hygiene
// regression: an unresponsive owner of a hot key must NOT be declared
// dead by abandoned fan-out legs — reads succeed via replicas and the
// timeout counter stays at zero even with the most trigger-happy
// detector setting.
func TestLoadctlFanoutUnresponsiveOwner(t *testing.T) {
	testutil.CheckGoroutines(t)
	tc := newLoadctlCluster(t, 3, ServerConfig{})
	body := []byte("hot-payload")
	// Warm every node's cache so replicas serve without PFS traffic.
	for _, n := range tc.nodes {
		tc.servers[n].NVMe().Put("data/hot", body)
	}
	c := tc.client(ClientConfig{
		Router:       newReplRouter(tc.nodes),
		RPCTimeout:   50 * time.Millisecond,
		TimeoutLimit: 1, // one noted timeout would declare the node dead
		LoadControl:  &loadctl.Config{SampleRate: 1},
	})
	ctx := context.Background()

	// Make the key hot with the owner healthy.
	for i := 0; i < 32; i++ {
		if _, err := c.Read(ctx, "data/hot"); err != nil {
			t.Fatalf("warm read %d: %v", i, err)
		}
	}
	if !c.LoadControl().Sketch.IsHot("data/hot") {
		t.Fatal("key not flagged hot after warmup")
	}

	tc.servers["node-00"].SetUnresponsive(true)
	for i := 0; i < 5; i++ {
		data, err := c.Read(ctx, "data/hot")
		if err != nil {
			t.Fatalf("read %d with unresponsive owner: %v", i, err)
		}
		if string(data) != string(body) {
			t.Fatalf("read %d: bad data %q", i, data)
		}
	}

	if !c.Tracker().IsAlive("node-00") {
		t.Fatal("unresponsive owner declared dead by abandoned fan-out legs")
	}
	if st := c.Stats(); st.Timeouts != 0 {
		t.Fatalf("fan-out legs fed the failure detector: %+v", st)
	}
}

// TestLoadctlOverloadShedIsNotFailureEvidence saturates a server whose
// admission limiter sheds aggressively: every shed must surface as an
// explicit redirect (served via PFS), never as failure evidence — the
// node stays alive and the timeout counter stays at zero.
func TestLoadctlOverloadShedIsNotFailureEvidence(t *testing.T) {
	testutil.CheckGoroutines(t)
	tc := newLoadctlCluster(t, 1, ServerConfig{
		AdmissionLimit: 1,
		AdmissionQueue: 0,
		AdmissionWait:  time.Millisecond,
		ReadDelay:      10 * time.Millisecond,
	})
	const workers = 8
	for i := 0; i < workers; i++ {
		tc.pfs.Put(fmt.Sprintf("data/f%d", i), []byte(fmt.Sprintf("payload-%d", i)))
	}
	c := tc.client(ClientConfig{
		Router:       newReplRouter(tc.nodes),
		RPCTimeout:   time.Second,
		TimeoutLimit: 1,
		LoadControl:  &loadctl.Config{},
	})

	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := fmt.Sprintf("data/f%d", w)
			want := fmt.Sprintf("payload-%d", w)
			for i := 0; i < 5; i++ {
				data, err := c.Read(context.Background(), path)
				if err != nil || string(data) != want {
					failures.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d workers failed — sheds must redirect, not error", n)
	}
	st := c.Stats()
	if st.ShedRedirects == 0 {
		t.Fatalf("limiter never shed under 8x overload: %+v", st)
	}
	if st.Timeouts != 0 {
		t.Fatalf("overload sheds were counted as timeouts: %+v", st)
	}
	if !c.Tracker().IsAlive("node-00") {
		t.Fatal("overloaded-but-alive node was declared dead")
	}
	if _, _, shed := tc.servers["node-00"].Limiter().Stats(); shed == 0 {
		t.Fatal("server-side shed counter is zero despite client redirects")
	}
}

// TestLoadctlWaitReplicationContext verifies the context-aware wait: a
// live context returns once pushes drain; an already-cancelled context
// returns its error instead of blocking.
func TestLoadctlWaitReplicationContext(t *testing.T) {
	testutil.CheckGoroutines(t)
	tc := newLoadctlCluster(t, 2, ServerConfig{})
	tc.pfs.Put("data/r", []byte("r-payload"))
	router := newReplRouter(tc.nodes)
	c := tc.client(ClientConfig{
		Router:            router,
		RPCTimeout:        time.Second,
		ReplicationFactor: 2,
	})
	ctx := context.Background()
	if _, err := c.Read(ctx, "data/r"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReplication(ctx); err != nil {
		t.Fatalf("WaitReplication with live ctx: %v", err)
	}
	if !tc.servers["node-01"].NVMe().Has("data/r") {
		t.Fatal("replica not present after WaitReplication returned")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	// No pushes in flight: either outcome returns promptly, but a
	// cancelled context must never block.
	done := make(chan struct{})
	go func() { c.WaitReplication(cancelled); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitReplication blocked on a cancelled context")
	}
}
