//go:build benchguard

package hvac

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/trace"
)

// benchTracedRead measures the client read path over an in-process
// cluster under a uniform cached workload, with request tracing on or
// off. Off is the shipping default: every instrumented site pays one
// atomic load and nothing else — no clock reads, no allocation. On
// uses the production sampling posture (flight recorder installed,
// 1-in-64 creation-time sampling), so the measured delta is what an
// operator buys into by flipping the gate.
func benchTracedRead(b *testing.B, enabled bool) {
	trace.SetEnabled(false)
	if enabled {
		rec := trace.Enable(trace.DefaultCapacity, 64)
		rec.SetSampleRate(64)
		defer trace.Disable()
	}
	tc := newLoadctlCluster(b, 2, ServerConfig{})
	const files = 512
	paths := make([]string, files)
	for i := 0; i < files; i++ {
		paths[i] = fmt.Sprintf("bench/f%d", i)
		body := []byte(fmt.Sprintf("payload-%d", i))
		tc.pfs.Put(paths[i], body)
		tc.servers["node-00"].NVMe().Put(paths[i], body)
	}
	c := tc.client(ClientConfig{
		Router:     newReplRouter(tc.nodes),
		RPCTimeout: 2 * time.Second,
	})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(ctx, paths[i%files]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// TestTraceOverheadGuard fails when enabling request tracing costs more
// than the guard threshold on the hot cached-read path. The documented
// budget (DESIGN.md §14) is 5%; the guard trips at 30% because
// single-shot in-process runs on shared CI machines jitter far more
// than the budget, and the guard's job is to catch an accidental lock,
// allocation, or unsampled clock read on the hot path, not to benchstat
// a small drift.
//
// Gated behind the benchguard tag so ordinary `go test ./...` stays
// fast and deterministic:
//
//	go test -tags benchguard -run TestTraceOverheadGuard ./internal/hvac/
func TestTraceOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard skipped in -short mode")
	}
	// Interleave on/off pairs and keep the best of each: minimums are far
	// more robust to scheduler noise than means on a shared runner, and
	// alternating the two sides keeps slow background drift (GC state,
	// CPU frequency, co-tenants) from loading onto one side only.
	run := func(enabled bool) float64 {
		r := testing.Benchmark(func(b *testing.B) { benchTracedRead(b, enabled) })
		return float64(r.NsPerOp())
	}
	var on, off float64
	for i := 0; i < 3; i++ {
		var a, b float64
		if i%2 == 0 { // alternate which side warms the pair
			a = run(true)
			b = run(false)
		} else {
			b = run(false)
			a = run(true)
		}
		if on == 0 || a < on {
			on = a
		}
		if off == 0 || b < off {
			off = b
		}
	}
	overhead := (on - off) / off
	t.Logf("cached read: tracing on %.0f ns/op, off %.0f ns/op, overhead %+.1f%%", on, off, 100*overhead)
	if overhead > 0.30 {
		t.Errorf("tracing overhead %.1f%% exceeds 30%% guard threshold (budget is 5%% under benchstat conditions)", 100*overhead)
	}
}
