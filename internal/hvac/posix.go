package hvac

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
)

// This file provides the POSIX-shaped surface the C++ artifact exposed
// through LD_PRELOAD: the training framework calls open/read/seek/close
// and never learns that bytes come from a remote NVMe instead of the
// mounted filesystem. Go programs can't intercept syscalls of other
// processes, so the equivalent integration point is this api — a drop-in
// for the small subset of *os.File the DL input pipelines use.

// ErrClosedFile reports an operation on a closed File.
var ErrClosedFile = errors.New("hvac: file already closed")

// File is an open handle on a cached file. It implements io.Reader,
// io.ReaderAt, io.Seeker and io.Closer. Handles are safe for concurrent
// ReadAt; Read/Seek share an offset and need external synchronization,
// matching *os.File semantics.
type File struct {
	client *Client
	path   string
	size   int64
	// ctx is the open-time context: reads on this handle inherit it,
	// matching the fd's lifetime (POSIX read(2) has no deadline slot).
	// Cancelling the context Open was given aborts in-flight reads.
	ctx context.Context

	mu     sync.Mutex
	offset int64
	closed bool
}

// Open validates that path exists (on cache or PFS) and returns a handle.
// This is the interception point for open(2): it costs one Stat RPC, the
// same metadata shortcut HVAC gives the application — no PFS metadata
// operation when the file is cached.
func (c *Client) Open(ctx context.Context, path string) (*File, error) {
	st, err := c.Stat(ctx, path)
	if err != nil {
		return nil, err
	}
	return &File{client: c, path: path, size: st.Size, ctx: ctx}, nil
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.path }

// Size returns the file size observed at open time.
func (f *File) Size() int64 { return f.size }

// Read implements io.Reader over the shared offset.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosedFile
	}
	if f.offset >= f.size {
		return 0, io.EOF
	}
	//ftclint:ignore lockorder Read serializes the shared offset under mu like a POSIX fd; the open-time ctx bounds the I/O, and ReadAt is the lock-free concurrent path
	n, err := f.readAtLocked(p, f.offset)
	f.offset += int64(n)
	return n, err
}

// ReadAt implements io.ReaderAt. Safe for concurrent use.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, ErrClosedFile
	}
	f.mu.Unlock()
	if off >= f.size {
		return 0, io.EOF
	}
	return f.readAt(p, off)
}

func (f *File) readAtLocked(p []byte, off int64) (int, error) {
	return f.readAt(p, off)
}

func (f *File) readAt(p []byte, off int64) (int, error) {
	want := int64(len(p))
	if off+want > f.size {
		want = f.size - off
	}
	if want <= 0 {
		return 0, io.EOF
	}
	data, err := f.client.ReadRange(f.ctx, f.path, off, want)
	if err != nil {
		return 0, err
	}
	n := copy(p, data)
	if int64(n) < int64(len(p)) {
		// Short fill because EOF was reached.
		if off+int64(n) >= f.size {
			return n, io.EOF
		}
	}
	return n, nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosedFile
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.offset
	case io.SeekEnd:
		base = f.size
	default:
		return 0, fmt.Errorf("hvac: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("hvac: negative seek position %d", pos)
	}
	f.offset = pos
	return pos, nil
}

// Close implements io.Closer. Closing twice returns ErrClosedFile, as
// with *os.File.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosedFile
	}
	f.closed = true
	return nil
}

// ReadFile is the convenience the input pipeline actually wants: whole
// file in one call (open+read+close collapsed into a single RPC).
func (c *Client) ReadFile(ctx context.Context, path string) ([]byte, error) {
	return c.Read(ctx, path)
}

// DownloadTo streams path into w in chunkSize ranges — the path for
// objects too large for a single RPC frame (checkpoint blobs, packed
// shards). chunkSize <= 0 selects 4 MiB. Returns the bytes written.
func (c *Client) DownloadTo(ctx context.Context, w io.Writer, path string, chunkSize int64) (int64, error) {
	if chunkSize <= 0 {
		chunkSize = 4 << 20
	}
	st, err := c.Stat(ctx, path)
	if err != nil {
		return 0, err
	}
	var written int64
	for off := int64(0); off < st.Size; off += chunkSize {
		n := chunkSize
		if off+n > st.Size {
			n = st.Size - off
		}
		chunk, err := c.ReadRange(ctx, path, off, n)
		if err != nil {
			return written, err
		}
		if int64(len(chunk)) != n {
			return written, fmt.Errorf("hvac: short chunk at %d: %d != %d", off, len(chunk), n)
		}
		m, err := w.Write(chunk)
		written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Prefetch requests the given paths in the background so that their
// owners pull them onto NVMe before the training loop needs them —
// cache warming without blocking the caller. It returns once all
// requests have been issued; results are discarded, failures ignored
// (a missed prefetch only means a slower first read).
func (c *Client) Prefetch(ctx context.Context, paths []string, parallelism int) {
	if parallelism <= 0 {
		parallelism = 4
	}
	if parallelism > len(paths) {
		parallelism = len(paths)
	}
	var wg sync.WaitGroup
	work := make(chan string)
	for i := 0; i < parallelism; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				_, _ = c.Read(ctx, p)
			}
		}()
	}
	for _, p := range paths {
		work <- p
	}
	close(work)
	wg.Wait()
}
