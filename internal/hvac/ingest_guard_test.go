//go:build benchguard

package hvac

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// benchIngestPuts drives b.N one-KiB puts from one client into a fresh
// 8-node in-process cluster — synchronously (one RPC per put) or through
// the batched async pipeline (PutAsync with periodic Flush barriers, the
// trailing barrier inside the timed region so acks are paid for).
func benchIngestPuts(b *testing.B, batched bool) {
	network := rpc.NewInprocNetwork()
	pfs := storage.NewPFS()
	var nodes []cluster.NodeID
	var servers []*Server
	for i := 0; i < 8; i++ {
		node := cluster.NodeID(fmt.Sprintf("node-%02d", i))
		nodes = append(nodes, node)
		srv := NewServer(ServerConfig{Node: node, NVMeCapacity: 8 << 20}, pfs)
		lis, err := network.Listen(string(node))
		if err != nil {
			b.Fatalf("listen %s: %v", node, err)
		}
		go srv.Serve(lis)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	eps := make(map[cluster.NodeID]string, len(nodes))
	for _, n := range nodes {
		eps[n] = string(n)
	}
	var ing *IngestConfig
	if batched {
		ing = &IngestConfig{}
	}
	c, err := NewClient(ClientConfig{
		Endpoints:    eps,
		Network:      network,
		Router:       hashRouter{nodes: nodes},
		PFS:          pfs,
		RPCTimeout:   10 * time.Second,
		TimeoutLimit: 2,
		Ingest:       ing,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	data := make([]byte, 1024)
	ctx := context.Background()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("guard/%t/k%09d", batched, i)
		if !batched {
			if err := c.Put(ctx, path, data); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if err := c.PutAsync(path, data); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			if err := c.Flush(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	if batched {
		if err := c.Flush(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// TestIngestBatchingSpeedupGuard fails when the batched async pipeline
// stops being meaningfully faster than synchronous per-object puts on
// the write path. The recorded headline (results/BENCH_ingest.json) is
// ~3x at 64 nodes; the guard threshold is a loose 1.3x at benchmark
// scale because single-shot in-process runs on shared CI machines
// jitter — its job is to catch the pipeline silently degrading to
// one-RPC-per-put (or worse), not to benchstat a small drift.
//
//	go test -tags benchguard -run TestIngestBatchingSpeedupGuard ./internal/hvac/
func TestIngestBatchingSpeedupGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard skipped in -short mode")
	}
	// Interleave A/B/A/B and keep the best of each: minimums are far more
	// robust to scheduler noise than means on a shared runner.
	best := func(batched bool) float64 {
		min := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) { benchIngestPuts(b, batched) })
			ns := float64(r.NsPerOp())
			if min == 0 || ns < min {
				min = ns
			}
		}
		return min
	}
	batched := best(true)
	sync := best(false)
	speedup := sync / batched
	t.Logf("ingest: batched %.0f ns/op, sync %.0f ns/op, speedup %.2fx", batched, sync, speedup)
	if speedup < 1.3 {
		t.Errorf("batched ingest speedup %.2fx below 1.3x guard threshold (headline is ~3x at 64 nodes)", speedup)
	}
}
