// Package hvac implements the distributed node-local cache the paper
// extends: an HVAC-style client/server pair (§II-B).
//
// Every compute node runs a Server daemon owning that node's NVMe cache.
// The Client library sits inside the training process (standing in for
// the LD_PRELOAD interception layer), hashes each file path to an owner
// node, and issues an RPC read. The owner serves from NVMe on a hit; on
// a miss it reads the PFS, serves the data, and hands the object to a
// background data mover that caches it on NVMe for subsequent epochs.
//
// Fault-tolerance policy (what happens when the owner does not answer)
// is pluggable — see package ftcache for the three strategies under test.
package hvac

import (
	"errors"

	"repro/internal/wire"
)

// RPC opcodes.
const (
	// OpPing checks liveness.
	OpPing uint16 = iota + 1
	// OpRead reads [offset, offset+length) of a file; length < 0 means
	// the whole file.
	OpRead
	// OpStat returns file size and cache residency.
	OpStat
	// OpStats returns server counters.
	OpStats
	// OpInvalidate drops a path from the server's NVMe cache.
	OpInvalidate
	// OpPut pushes an object into the server's NVMe cache — the replica
	// write used by the replication extension (see ftcache.RingReplicated).
	OpPut
	// OpPutBatch pushes many objects in one frame: the batched async
	// ingest pipeline's wire op. The payload is a length-prefixed entry
	// list; the response carries one status per entry, so a single bad
	// object never fails its batch-mates.
	OpPutBatch
)

// Application statuses (beyond rpc.StatusOK).
const (
	// StatusNotFound: the path exists on neither NVMe nor PFS.
	StatusNotFound uint16 = 1
	// StatusError: an internal server failure.
	StatusError uint16 = 2
	// StatusOverloaded: the server's admission controller shed the
	// request. The server is alive and answering — clients must treat
	// this as a redirect signal (try a replica or the PFS), never as
	// failure-detector evidence. Placed at the top of the status space,
	// just below rpc.StatusPanic (0xFFFF), to stay clear of future
	// application statuses.
	StatusOverloaded uint16 = 0xFFFE
)

// Data sources reported in read responses.
const (
	// SourceNVMe: served from the node-local cache.
	SourceNVMe uint8 = 1
	// SourcePFS: cache miss, served from the parallel file system.
	SourcePFS uint8 = 2
	// SourceRAM: served zero-copy from the in-memory hot-object tier.
	SourceRAM uint8 = 3
)

// ErrDecode reports a malformed payload.
var ErrDecode = errors.New("hvac: malformed message")

// ReadReq asks for a byte range of a file.
type ReadReq struct {
	Path   string
	Offset int64
	Length int64 // < 0 → to EOF
	// Trace is the optional trace context (zero = untraced). It rides
	// as a wire.TraceExt trailer after the request fields, so untraced
	// requests are byte-identical to the pre-trace encoding.
	Trace wire.TraceExt
}

// Marshal encodes the request.
func (r *ReadReq) Marshal() []byte {
	e := wire.NewBuffer(len(r.Path) + 24 + wire.TraceExtSize).
		String(r.Path).I64(r.Offset).I64(r.Length)
	if r.Trace.Valid() {
		e.AppendTraceExt(r.Trace)
	}
	return e.Bytes()
}

// Unmarshal decodes the request.
func (r *ReadReq) Unmarshal(b []byte) error {
	d := wire.NewReader(b)
	r.Path = d.String()
	r.Offset = d.I64()
	r.Length = d.I64()
	r.Trace, _ = d.DecodeTraceExt()
	if d.Err() != nil {
		return ErrDecode
	}
	return nil
}

// ReadResp carries file data and its serving tier.
type ReadResp struct {
	Source uint8
	// FileSize is the full size of the file (callers may have asked for
	// a sub-range).
	FileSize int64
	Data     []byte
}

// Marshal encodes the response.
func (r *ReadResp) Marshal() []byte {
	return wire.NewBuffer(len(r.Data) + 16).
		U8(r.Source).I64(r.FileSize).Bytes32(r.Data).Bytes()
}

// Unmarshal decodes the response. Data aliases b.
func (r *ReadResp) Unmarshal(b []byte) error {
	d := wire.NewReader(b)
	r.Source = d.U8()
	r.FileSize = d.I64()
	r.Data = d.Bytes32()
	if d.Err() != nil {
		return ErrDecode
	}
	return nil
}

// StatReq asks for metadata of a path.
type StatReq struct{ Path string }

// Marshal encodes the request.
func (r *StatReq) Marshal() []byte {
	return wire.NewBuffer(len(r.Path) + 4).String(r.Path).Bytes()
}

// Unmarshal decodes the request.
func (r *StatReq) Unmarshal(b []byte) error {
	d := wire.NewReader(b)
	r.Path = d.String()
	if d.Err() != nil {
		return ErrDecode
	}
	return nil
}

// StatResp reports size and cache residency.
type StatResp struct {
	Size   int64
	Cached bool
}

// Marshal encodes the response.
func (r *StatResp) Marshal() []byte {
	return wire.NewBuffer(9).I64(r.Size).Bool(r.Cached).Bytes()
}

// Unmarshal decodes the response.
func (r *StatResp) Unmarshal(b []byte) error {
	d := wire.NewReader(b)
	r.Size = d.I64()
	r.Cached = d.Bool()
	if d.Err() != nil {
		return ErrDecode
	}
	return nil
}

// PutReq pushes data into a server's cache (replica write).
type PutReq struct {
	Path string
	Data []byte
	// Trace is the optional trace context (zero = untraced).
	Trace wire.TraceExt
}

// Marshal encodes the request.
func (r *PutReq) Marshal() []byte {
	e := wire.NewBuffer(len(r.Path) + len(r.Data) + 8 + wire.TraceExtSize).
		String(r.Path).Bytes32(r.Data)
	if r.Trace.Valid() {
		e.AppendTraceExt(r.Trace)
	}
	return e.Bytes()
}

// Unmarshal decodes the request. Data aliases b.
func (r *PutReq) Unmarshal(b []byte) error {
	d := wire.NewReader(b)
	r.Path = d.String()
	r.Data = d.Bytes32()
	r.Trace, _ = d.DecodeTraceExt()
	if d.Err() != nil {
		return ErrDecode
	}
	return nil
}

// PutEntry is one object of a batched put.
type PutEntry struct {
	Path string
	Data []byte
}

// minPutEntryWire is the smallest possible encoded PutEntry (two empty
// length-prefixed fields) — the bound the decoder uses to reject a
// count field larger than the payload could possibly hold before
// allocating anything.
const minPutEntryWire = 8

// PutBatchReq pushes a batch of objects into a server's cache in one
// frame. Encoding: u32 entry count, then per entry a length-prefixed
// path and length-prefixed data. A zero-entry batch is valid (an
// explicit flush of an empty buffer acknowledges as an empty response).
type PutBatchReq struct {
	Entries []PutEntry
	// Trace is the optional trace context of the flush generation that
	// sealed this batch (zero = untraced).
	Trace wire.TraceExt
}

// Marshal encodes the request.
func (r *PutBatchReq) Marshal() []byte {
	size := 4 + wire.TraceExtSize
	for i := range r.Entries {
		size += minPutEntryWire + len(r.Entries[i].Path) + len(r.Entries[i].Data)
	}
	e := wire.NewBuffer(size)
	AppendPutBatch(e, r.Entries)
	if r.Trace.Valid() {
		e.AppendTraceExt(r.Trace)
	}
	return e.Bytes()
}

// AppendPutBatch encodes entries onto e in PutBatchReq wire form — the
// append-style primitive the ingest worker uses to build a batch
// payload incrementally (the count is known only at flush time, so the
// worker encodes entries with EncodePutEntry and prepends the count
// itself; this helper is the one-shot form).
func AppendPutBatch(e *wire.Buffer, entries []PutEntry) {
	e.U32(uint32(len(entries)))
	for i := range entries {
		EncodePutEntry(e, entries[i].Path, entries[i].Data)
	}
}

// EncodePutEntry appends one batch entry (path + data) onto e.
func EncodePutEntry(e *wire.Buffer, path string, data []byte) {
	e.String(path)
	e.Bytes32(data)
}

// Unmarshal decodes the request. Entry data aliases b.
func (r *PutBatchReq) Unmarshal(b []byte) error {
	d := wire.NewReader(b)
	n := d.U32()
	if d.Err() != nil || int64(n)*minPutEntryWire > int64(d.Remaining()) {
		return ErrDecode
	}
	r.Entries = make([]PutEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		p := d.String()
		data := d.Bytes32()
		if d.Err() != nil {
			return ErrDecode
		}
		r.Entries = append(r.Entries, PutEntry{Path: p, Data: data})
	}
	// Anything after the entries must be a well-formed trace extension;
	// other trailing bytes mean a corrupt count — reject rather than
	// silently dropping caller data.
	r.Trace, _ = d.DecodeTraceExt()
	if d.Err() != nil {
		return ErrDecode
	}
	return nil
}

// PutBatchResp acknowledges a batch with one status per entry, indexed
// like the request. rpc.StatusOK means the object is readable from this
// server's cache tier the moment the response is on the wire — the
// ack-visibility guarantee Flush builds on.
type PutBatchResp struct {
	Statuses []uint16
}

// Marshal encodes the response.
func (r *PutBatchResp) Marshal() []byte {
	e := wire.NewBuffer(4 + 2*len(r.Statuses))
	e.U32(uint32(len(r.Statuses)))
	for _, s := range r.Statuses {
		e.U16(s)
	}
	return e.Bytes()
}

// Unmarshal decodes the response.
func (r *PutBatchResp) Unmarshal(b []byte) error {
	d := wire.NewReader(b)
	n := d.U32()
	if d.Err() != nil || int64(n)*2 > int64(d.Remaining()) {
		return ErrDecode
	}
	r.Statuses = make([]uint16, n)
	for i := range r.Statuses {
		r.Statuses[i] = d.U16()
	}
	if d.Err() != nil || d.Remaining() != 0 {
		return ErrDecode
	}
	return nil
}

// StatsResp reports server-side counters for observability and tests.
type StatsResp struct {
	NVMeObjects   int64
	NVMeBytes     int64
	NVMeHits      int64
	NVMeMisses    int64
	PFSFallbacks  int64 // reads served from PFS by this server
	MoverEnqueued int64
	MoverDropped  int64
}

// Marshal encodes the response.
func (r *StatsResp) Marshal() []byte {
	return wire.NewBuffer(56).
		I64(r.NVMeObjects).I64(r.NVMeBytes).I64(r.NVMeHits).I64(r.NVMeMisses).
		I64(r.PFSFallbacks).I64(r.MoverEnqueued).I64(r.MoverDropped).Bytes()
}

// Unmarshal decodes the response.
func (r *StatsResp) Unmarshal(b []byte) error {
	d := wire.NewReader(b)
	r.NVMeObjects = d.I64()
	r.NVMeBytes = d.I64()
	r.NVMeHits = d.I64()
	r.NVMeMisses = d.I64()
	r.PFSFallbacks = d.I64()
	r.MoverEnqueued = d.I64()
	r.MoverDropped = d.I64()
	if d.Err() != nil {
		return ErrDecode
	}
	return nil
}
