//go:build benchguard

package hvac

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/loadctl"
)

// benchColdTierRead measures the client read path over an in-process
// cluster under a uniform workload with the RAM tier enabled or
// disabled. Uniform over 512 keys means nothing crosses the hot
// threshold, so with the tier on every read pays exactly the tier's
// non-hit bookkeeping — the sampled sketch touch and the shard miss
// lookup — and never its wins (no promotion fires, nothing is ever
// served from RAM). That is the path the guard pins: enabling the
// tier must be near-free for workloads it cannot help.
func benchColdTierRead(b *testing.B, ramCapacity int64) {
	// HotFraction 0.5 pins the premise: uniform over 512 keys leaves
	// every key's share at ~0.2%, and even space-saving overcounting
	// (inherited churn in a 64-slot sketch) cannot reach half the
	// window. At the default 1% threshold a long uniform run does
	// promote eventually — churn inheritance plus window decay floors
	// the threshold — which would put RAM hits into the "on" side and
	// flatter it. Every read still pays the full cold-path cost: the
	// sampled sketch touch and the shard miss lookup.
	tc := newLoadctlCluster(b, 2, ServerConfig{
		RAMCapacity: ramCapacity,
		RAMSketch:   loadctl.Config{HotFraction: 0.5},
	})
	const files = 512
	paths := make([]string, files)
	for i := 0; i < files; i++ {
		paths[i] = fmt.Sprintf("bench/f%d", i)
		body := []byte(fmt.Sprintf("payload-%d", i))
		tc.pfs.Put(paths[i], body)
		tc.servers["node-00"].NVMe().Put(paths[i], body)
		tc.servers["node-01"].NVMe().Put(paths[i], body)
	}
	c := tc.client(ClientConfig{
		Router:     newReplRouter(tc.nodes),
		RPCTimeout: 2 * time.Second,
	})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(ctx, paths[i%files]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// The guard's premise is that nothing went hot: a promoted key
	// would let the tier serve from RAM and flatter the "on" side.
	if ramCapacity > 0 {
		if srv := tc.servers["node-00"]; srv.RAMServed() > 0 {
			b.Fatalf("uniform workload promoted into RAM (%d served) — the guard is no longer measuring the non-hot path", srv.RAMServed())
		}
	}
}

// TestMemtierOverheadGuard fails when enabling the RAM tier costs more
// than the guard threshold on a uniform (never-hot) workload — the
// regime where the tier is pure bookkeeping: one sampled sketch touch
// plus one sharded map miss per read, no promotion, no demotion, no
// lease traffic. The documented budget is 5%; the guard trips at 30%
// because single-shot in-process runs on shared CI machines jitter far
// more than the budget, and its job is to catch an accidental lock,
// copy or unconditional promotion on the cold path, not to benchstat
// small drift.
//
// Gated behind the benchguard tag so ordinary `go test ./...` stays
// fast and deterministic:
//
//	go test -tags benchguard -run TestMemtierOverheadGuard ./internal/hvac/
func TestMemtierOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard skipped in -short mode")
	}
	// Interleave on/off pairs and keep the best of each: minimums are
	// far more robust to scheduler noise than means on a shared runner,
	// and alternating sides keeps slow drift off any one side.
	run := func(ramCapacity int64) float64 {
		r := testing.Benchmark(func(b *testing.B) { benchColdTierRead(b, ramCapacity) })
		return float64(r.NsPerOp())
	}
	var on, off float64
	for i := 0; i < 3; i++ {
		var a, b float64
		if i%2 == 0 {
			a = run(1 << 20)
			b = run(0)
		} else {
			b = run(0)
			a = run(1 << 20)
		}
		if on == 0 || a < on {
			on = a
		}
		if off == 0 || b < off {
			off = b
		}
	}
	overhead := (on - off) / off
	t.Logf("uniform read: ram tier on %.0f ns/op, off %.0f ns/op, overhead %+.1f%%", on, off, 100*overhead)
	if overhead > 0.30 {
		t.Errorf("memtier overhead %.1f%% exceeds 30%% guard threshold (budget is 5%% under benchstat conditions)", 100*overhead)
	}
}
