package hvac

import (
	"sync"

	"repro/internal/telemetry"
)

// clientMetrics are shared by every HVAC client in the process: in a
// training job each rank runs one client and the aggregate over ranks
// is the paper-relevant signal (per-client detail stays available via
// Client.Stats). Handles resolve once; the read path never touches the
// registry.
type clientMetrics struct {
	reads       *telemetry.Counter   // completed Read/ReadRange calls (any outcome)
	readLatency *telemetry.Histogram // end-to-end read latency incl. failover
	servedRAM   *telemetry.Counter   // remote reads served from the owner's RAM tier
	servedNVMe  *telemetry.Counter   // remote reads served from owner NVMe (cache hit)
	servedPFS   *telemetry.Counter   // remote reads the server fell back to PFS for (cache miss)
	directPFS   *telemetry.Counter   // client-side PFS bypass reads (redirection strategy)
	timeouts    *telemetry.Counter   // detection-timer expiries observed
	failovers   *telemetry.Counter   // reads that needed more than one attempt
	replicaPush *telemetry.Counter   // replica writes issued
	aborts      *telemetry.Counter   // reads terminated by RouteAbort (NoFT)

	// Retry / rejoin series (zero unless Retry is set / Rejoin is used).
	retries         *telemetry.Counter // conn-class attempts retried with backoff
	retryExhausted  *telemetry.Counter // retry budgets exhausted (became evidence)
	rejoins         *telemetry.Counter // node rejoins completed
	rejoinWarmFiles *telemetry.Counter // objects warmed onto rejoining nodes
	rejoinWarmBytes *telemetry.Counter // bytes warmed onto rejoining nodes

	// Load-control series (all zero unless ClientConfig.LoadControl set).
	// Ingest series (zero unless ClientConfig.Ingest is set).
	ingestEntries      *telemetry.Counter   // objects accepted by PutAsync / riding batches
	ingestBatches      *telemetry.Counter   // batches sealed
	ingestBatchEntries *telemetry.Histogram // batch size (entries) at seal
	ingestFlushSize    *telemetry.Counter   // batches sealed by the size/bytes bound
	ingestFlushAge     *telemetry.Counter   // batches sealed by the age timer
	ingestFlushSync    *telemetry.Counter   // batches sealed by an explicit barrier
	ingestErrors       *telemetry.Counter   // objects whose batched delivery failed

	coalesced     *telemetry.Counter   // reads served by joining another caller's flight
	hedges        *telemetry.Counter   // hedge legs launched
	hedgeWins     *telemetry.Counter   // reads won by the hedged leg
	hotPush       *telemetry.Counter   // hot-object replica pushes issued
	shedRedirects *telemetry.Counter   // overload sheds redirected to replica/PFS
	ownerLatency  *telemetry.Histogram // hot reads answered by the ring owner
	replLatency   *telemetry.Histogram // hot reads answered by a replica
	hedgeLatency  *telemetry.Histogram // hot reads answered by a hedge leg
}

var (
	cliMetricsOnce sync.Once
	cliMetricsInst *clientMetrics
)

func cliMetrics() *clientMetrics {
	cliMetricsOnce.Do(func() {
		reg := telemetry.Default()
		cliMetricsInst = &clientMetrics{
			reads:       reg.Counter("ftc_client_reads_total"),
			readLatency: reg.Histogram("ftc_client_read_latency_seconds"),
			servedRAM:   reg.Counter("ftc_client_served_ram_total"),
			servedNVMe:  reg.Counter("ftc_client_served_nvme_total"),
			servedPFS:   reg.Counter("ftc_client_served_pfs_total"),
			directPFS:   reg.Counter("ftc_client_direct_pfs_total"),
			timeouts:    reg.Counter("ftc_client_timeouts_total"),
			failovers:   reg.Counter("ftc_client_failover_reads_total"),
			replicaPush: reg.Counter("ftc_client_replica_pushes_total"),
			aborts:      reg.Counter("ftc_client_aborts_total"),

			retries:         reg.Counter("ftc_client_retry_attempts_total"),
			retryExhausted:  reg.Counter("ftc_client_retry_exhausted_total"),
			rejoins:         reg.Counter("ftc_client_rejoins_total"),
			rejoinWarmFiles: reg.Counter("ftc_client_rejoin_warm_files_total"),
			rejoinWarmBytes: reg.Counter("ftc_client_rejoin_warm_bytes_total"),

			ingestEntries:      reg.Counter("ftc_client_ingest_entries_total"),
			ingestBatches:      reg.Counter("ftc_client_ingest_batches_total"),
			ingestBatchEntries: reg.Histogram("ftc_client_ingest_batch_entries"),
			ingestFlushSize:    reg.Counter("ftc_client_ingest_flush_size_total"),
			ingestFlushAge:     reg.Counter("ftc_client_ingest_flush_age_total"),
			ingestFlushSync:    reg.Counter("ftc_client_ingest_flush_sync_total"),
			ingestErrors:       reg.Counter("ftc_client_ingest_errors_total"),

			coalesced:     reg.Counter("ftc_client_coalesced_reads_total"),
			hedges:        reg.Counter("ftc_client_hedged_reads_total"),
			hedgeWins:     reg.Counter("ftc_client_hedge_wins_total"),
			hotPush:       reg.Counter("ftc_client_hot_pushes_total"),
			shedRedirects: reg.Counter("ftc_client_shed_redirects_total"),
			ownerLatency:  reg.Histogram("ftc_client_read_owner_latency_seconds"),
			replLatency:   reg.Histogram("ftc_client_read_replica_latency_seconds"),
			hedgeLatency:  reg.Histogram("ftc_client_read_hedged_latency_seconds"),
		}
		m := cliMetricsInst
		reg.RegisterDebug("ingest", func() any {
			return map[string]any{
				"entries":     m.ingestEntries.Load(),
				"batches":     m.ingestBatches.Load(),
				"flush_size":  m.ingestFlushSize.Load(),
				"flush_age":   m.ingestFlushAge.Load(),
				"flush_sync":  m.ingestFlushSync.Load(),
				"errors":      m.ingestErrors.Load(),
				"batch_sizes": m.ingestBatchEntries.Snapshot(),
			}
		})
		reg.RegisterDebug("rejoin", func() any {
			return map[string]any{
				"retry_attempts":    m.retries.Load(),
				"retry_exhausted":   m.retryExhausted.Load(),
				"rejoins":           m.rejoins.Load(),
				"rejoin_warm_files": m.rejoinWarmFiles.Load(),
				"rejoin_warm_bytes": m.rejoinWarmBytes.Load(),
			}
		})
	})
	return cliMetricsInst
}

// registerTelemetry publishes a server's observables into the Default
// registry, labeled by node so an in-process fleet stays separable.
// Everything is exported through scrape-time callbacks over the atomic
// counters the request path already maintains — zero added cost per
// request — and every callback is a lock-free read, so a scrape never
// contends with the serve path. Re-registration after a node revive
// rebinds the series to the fresh instance (latest wins).
func (s *Server) registerTelemetry() {
	reg := telemetry.Default()
	node := string(s.cfg.Node)
	nvme, mover := s.nvme, s.mover

	reg.CounterFunc("ftc_server_reads_total", s.reads.Load, "node", node)
	reg.CounterFunc("ftc_server_pfs_fallbacks_total", s.pfsFallbacks.Load, "node", node)
	reg.CounterFunc("ftc_server_batch_puts_total", s.batchPuts.Load, "node", node)
	reg.CounterFunc("ftc_server_batch_put_entries_total", s.batchEntries.Load, "node", node)
	reg.CounterFunc("ftc_server_batch_sheds_total", s.batchSheds.Load, "node", node)
	if s.limiter != nil {
		reg.CounterFunc("ftc_server_sheds_total", s.limiter.Sheds, "node", node)
		reg.GaugeFunc("ftc_server_admission_inflight", s.limiter.Inflight, "node", node)
	}

	reg.CounterFunc("ftc_server_nvme_hits_total", func() int64 { h, _, _ := nvme.Counters(); return h }, "node", node)
	reg.CounterFunc("ftc_server_nvme_misses_total", func() int64 { _, m, _ := nvme.Counters(); return m }, "node", node)
	reg.CounterFunc("ftc_server_nvme_evictions_total", func() int64 { _, _, e := nvme.Counters(); return e }, "node", node)
	reg.CounterFunc("ftc_server_nvme_spills_total", nvme.Spills, "node", node)
	reg.GaugeFunc("ftc_server_nvme_bytes", func() int64 { _, b := nvme.StatsAtomic(); return b }, "node", node)
	reg.GaugeFunc("ftc_server_nvme_objects", func() int64 { o, _ := nvme.StatsAtomic(); return o }, "node", node)

	if ram := s.ram; ram != nil {
		reg.CounterFunc("ftc_server_ram_hits_total", func() int64 { h, _, _, _, _, _ := ram.Counters(); return h }, "node", node)
		reg.CounterFunc("ftc_server_ram_misses_total", func() int64 { _, m, _, _, _, _ := ram.Counters(); return m }, "node", node)
		reg.CounterFunc("ftc_server_ram_admits_total", func() int64 { _, _, a, _, _, _ := ram.Counters(); return a }, "node", node)
		reg.CounterFunc("ftc_server_ram_evictions_total", func() int64 { _, _, _, e, _, _ := ram.Counters(); return e }, "node", node)
		reg.CounterFunc("ftc_server_ram_demotions_total", func() int64 { _, _, _, _, d, _ := ram.Counters(); return d }, "node", node)
		reg.CounterFunc("ftc_server_ram_invalidations_total", func() int64 { _, _, _, _, _, i := ram.Counters(); return i }, "node", node)
		reg.CounterFunc("ftc_server_ram_served_total", s.ramServed.Load, "node", node)
		reg.GaugeFunc("ftc_server_ram_bytes", func() int64 { _, b := ram.StatsAtomic(); return b }, "node", node)
		reg.GaugeFunc("ftc_server_ram_objects", func() int64 { o, _ := ram.StatsAtomic(); return o }, "node", node)
		reg.GaugeFunc("ftc_server_ram_leases", ram.ActiveLeases, "node", node)
	}

	reg.CounterFunc("ftc_server_fills_total", func() int64 { e, _ := mover.Counters(); return e }, "node", node)
	reg.CounterFunc("ftc_server_fill_drops_total", func() int64 { _, d := mover.Counters(); return d }, "node", node)
	reg.CounterFunc("ftc_server_inline_fills_total", func() int64 { i, _, _ := mover.FillStats(); return i }, "node", node)
	reg.CounterFunc("ftc_server_fill_errors_total", func() int64 { _, e, _ := mover.FillStats(); return e }, "node", node)
	reg.GaugeFunc("ftc_server_mover_queue_depth", mover.QueueDepth, "node", node)

	reg.RegisterDebug("server:"+node, s.debugSnapshot)
}

// debugSnapshot is this server's section of /debug/ftcache.
func (s *Server) debugSnapshot() any {
	objects, bytes := s.nvme.StatsAtomic()
	hits, misses, evictions := s.nvme.Counters()
	enq, drop := s.mover.Counters()
	inline, fillErrs, lastErr := s.mover.FillStats()
	snap := map[string]any{
		"node":            string(s.cfg.Node),
		"nvme_objects":    objects,
		"nvme_bytes":      bytes,
		"nvme_capacity":   s.nvme.Capacity(),
		"nvme_hits":       hits,
		"nvme_misses":     misses,
		"nvme_evictions":  evictions,
		"nvme_spills":     s.nvme.Spills(),
		"shard_bytes":     s.nvme.ShardBytes(),
		"pfs_fallbacks":   s.pfsFallbacks.Load(),
		"fills_enqueued":  enq,
		"fills_dropped":   drop,
		"fills_inline":    inline,
		"fill_errors":     fillErrs,
		"last_fill_error": lastErr,
		"queue_depth":     s.mover.QueueDepth(),
		"batch_puts":      s.batchPuts.Load(),
		"batch_entries":   s.batchEntries.Load(),
		"batch_sheds":     s.batchSheds.Load(),
		"unresponsive":    s.Unresponsive(),
	}
	if s.limiter != nil {
		admitted, queued, shed := s.limiter.Stats()
		snap["admission"] = map[string]any{
			"limit":    s.cfg.AdmissionLimit,
			"inflight": s.limiter.Inflight(),
			"admitted": admitted,
			"queued":   queued,
			"shed":     shed,
		}
	}
	snap["tiers"] = s.tierSnapshot()
	return snap
}

// tierSnapshot is the per-tier breakdown of /debug/ftcache's storage
// section: capacity, occupancy, and hit ratio for each serving tier in
// paper order (RAM → NVMe → PFS). The PFS tier is the shared backstop —
// it has no node-local capacity, and every read it serves is by
// definition a miss of the tiers above, so its "hit ratio" is the
// fallback fraction.
func (s *Server) tierSnapshot() []map[string]any {
	tiers := make([]map[string]any, 0, 3)
	reads := s.reads.Load()
	if s.ram != nil {
		objects, bytes := s.ram.StatsAtomic()
		hits, misses, _, _, _, _ := s.ram.Counters()
		tiers = append(tiers, map[string]any{
			"tier":      "ram",
			"capacity":  s.ram.Capacity(),
			"bytes":     bytes,
			"objects":   objects,
			"hits":      hits,
			"misses":    misses,
			"hit_ratio": ratio(hits, hits+misses),
			"served":    s.ramServed.Load(),
			"leases":    s.ram.ActiveLeases(),
		})
	}
	nvmeObjects, nvmeBytes := s.nvme.StatsAtomic()
	nvmeHits, nvmeMisses, _ := s.nvme.Counters()
	tiers = append(tiers, map[string]any{
		"tier":      "nvme",
		"capacity":  s.nvme.Capacity(),
		"bytes":     nvmeBytes,
		"objects":   nvmeObjects,
		"hits":      nvmeHits,
		"misses":    nvmeMisses,
		"hit_ratio": ratio(nvmeHits, nvmeHits+nvmeMisses),
	})
	fallbacks := s.pfsFallbacks.Load()
	tiers = append(tiers, map[string]any{
		"tier":      "pfs",
		"served":    fallbacks,
		"hit_ratio": ratio(fallbacks, reads),
	})
	return tiers
}

// ratio renders num/den as a float, 0 when den is zero.
func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
