package hvac

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

// RejoinPlanner is the optional Router extension for elastic
// re-expansion: given a rejoining node and the key population, it
// returns the keys that node will own once re-added to the placement —
// the inverse of the recache plan computed when the node was removed.
// The ring strategy answers from hashring.PlanRejoin.
type RejoinPlanner interface {
	PlanRejoin(node cluster.NodeID, keys []string) []string
}

// Rejoin errors.
var (
	// ErrRejoinActive: another Rejoin for the same node is in flight.
	ErrRejoinActive = errors.New("hvac: rejoin already in progress")
	// ErrNotFailed: the node is not declared failed, nothing to rejoin.
	ErrNotFailed = errors.New("hvac: node is not failed")
)

// RejoinOptions tunes a Rejoin.
type RejoinOptions struct {
	// Probes is the number of consecutive successful pings required
	// before the node is trusted (K in the protocol); <= 0 selects 3.
	// Callers driving Rejoin from a Heartbeat that already required K
	// probes may pass 1.
	Probes int
	// Keys is the key population to plan warming over (typically the
	// dataset manifest). Empty skips warmup: the node rejoins cold and
	// self-fills from the PFS on first touch.
	Keys []string
	// WarmConcurrency bounds parallel warm transfers; <= 0 selects 4.
	WarmConcurrency int
}

// RejoinReport summarizes a completed (or aborted) Rejoin.
type RejoinReport struct {
	Node        cluster.NodeID
	Probes      int   // successful probes performed
	PlannedKeys int   // keys the node will own post-rejoin
	WarmedFiles int   // keys pushed onto its NVMe before the swap
	WarmedBytes int64 // bytes pushed
	WarmErrors  int   // best-effort warm failures (node self-fills later)
	Revived     bool  // tracker cleared + router re-admitted the node
}

// Rejoin runs the full node-recovery protocol — the inverse of the
// failure path, ordered so readers never observe a half-rejoined node:
//
//  1. Probe: K consecutive pings must succeed (a flapping node is
//     rejected before any work is spent on it).
//  2. Warm: plan the keys the node will own once re-added (RejoinPlanner,
//     the inverse of PlanRecache), read each from its *current* owner —
//     the ring still routes around the rejoining node — and push it onto
//     the node's NVMe. Warm failures are best-effort: a missed key is a
//     PFS self-fill on first touch, never an error.
//  3. Swap: Tracker.Revive fires OnRecovery, the RecoveryAware router
//     re-adds the node (the ring strategy swaps in a new COW snapshot),
//     and traffic starts routing to the now-warm node atomically.
//
// Concurrent Rejoins for one node dedup: the losers get ErrRejoinActive.
func (c *Client) Rejoin(ctx context.Context, node cluster.NodeID, opts RejoinOptions) (RejoinReport, error) {
	rep := RejoinReport{Node: node}
	if opts.Probes <= 0 {
		opts.Probes = 3
	}
	if opts.WarmConcurrency <= 0 {
		opts.WarmConcurrency = 4
	}
	c.rejoinMu.Lock()
	if c.rejoining[node] {
		c.rejoinMu.Unlock()
		return rep, fmt.Errorf("%w: %s", ErrRejoinActive, node)
	}
	c.rejoining[node] = true
	c.rejoinMu.Unlock()
	defer func() {
		c.rejoinMu.Lock()
		delete(c.rejoining, node)
		c.rejoinMu.Unlock()
	}()

	if c.tracker.IsAlive(node) {
		return rep, fmt.Errorf("%w: %s", ErrNotFailed, node)
	}

	// Probe over a fresh connection: the cached one died with the old
	// process.
	c.dropConn(node)
	for i := 0; i < opts.Probes; i++ {
		if err := c.Ping(ctx, node); err != nil {
			return rep, fmt.Errorf("hvac: rejoin probe %d/%d of %s: %w", i+1, opts.Probes, node, err)
		}
		rep.Probes++
	}

	var warm []string
	if planner, ok := c.cfg.Router.(RejoinPlanner); ok && len(opts.Keys) > 0 {
		warm = planner.PlanRejoin(node, opts.Keys)
	}
	rep.PlannedKeys = len(warm)

	m := cliMetrics()
	var warmedFiles, warmedBytes, warmErrs atomic.Int64
	sem := make(chan struct{}, opts.WarmConcurrency)
	var wg sync.WaitGroup
	for _, key := range warm {
		if ctx.Err() != nil {
			break
		}
		key := key
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// Read from the current owner (the ring has not swapped yet,
			// so this routes to whoever inherited the key), then place it
			// on the rejoining node's NVMe.
			data, err := c.readAttempts(ctx, key, 0, -1)
			if err == nil {
				err = c.Push(ctx, node, key, data)
			}
			if err != nil {
				warmErrs.Add(1)
				return
			}
			warmedFiles.Add(1)
			warmedBytes.Add(int64(len(data)))
		}()
	}
	wg.Wait()
	rep.WarmedFiles = int(warmedFiles.Load())
	rep.WarmedBytes = warmedBytes.Load()
	rep.WarmErrors = int(warmErrs.Load())
	m.rejoinWarmFiles.Add(int64(rep.WarmedFiles))
	m.rejoinWarmBytes.Add(rep.WarmedBytes)
	if ctx.Err() != nil {
		// Interrupted mid-warmup: leave the node out of the ring; the
		// pushed objects stay warm for the next attempt.
		return rep, ctx.Err()
	}

	rep.Revived = c.ReviveNode(node)
	m.rejoins.Inc()
	telemetry.TraceEvent(telemetry.EventNodeRejoined, string(node), "rejoin", rep.WarmedBytes)
	return rep, nil
}
