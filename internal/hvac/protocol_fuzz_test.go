package hvac

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// FuzzPutBatchReq hardens the batch decoder: arbitrary bytes must yield
// ErrDecode or a batch that re-encodes to an equivalent payload — never
// a panic or an over-allocation driven by a corrupt count field. The
// decode runs on a payload delivered through the pooled frame path,
// exactly as the server sees it.
func FuzzPutBatchReq(f *testing.F) {
	// Seeds: zero-entry, one-entry, multi-entry, and truncations.
	empty := (&PutBatchReq{}).Marshal()
	f.Add(empty)
	one := (&PutBatchReq{Entries: []PutEntry{{Path: "a/b", Data: []byte("data")}}}).Marshal()
	f.Add(one)
	multi := (&PutBatchReq{Entries: []PutEntry{
		{Path: "x", Data: nil},
		{Path: "", Data: []byte{0}},
		{Path: "long/path/name", Data: bytes.Repeat([]byte{7}, 100)},
	}}).Marshal()
	f.Add(multi)
	f.Add(multi[:len(multi)-1]) // truncated tail
	f.Add(multi[:5])            // truncated mid-count
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Deliver the payload through the pooled frame path: the decoded
		// entries alias the lease, mirroring the server's buffer lifetime.
		var framed bytes.Buffer
		if err := wire.WriteFrame(&framed, &wire.Frame{Type: wire.TypeRequest, ID: 1, Op: OpPutBatch, Payload: data}); err != nil {
			t.Fatalf("frame: %v", err)
		}
		fr, lease, err := wire.ReadFramePooled(&framed, 1<<22)
		if err != nil {
			t.Fatalf("pooled read of a valid frame: %v", err)
		}
		defer lease.Release()

		var req PutBatchReq
		if err := req.Unmarshal(fr.Payload); err != nil {
			// Malformed input must also be rejected by the plain path.
			var again PutBatchReq
			if err2 := again.Unmarshal(data); err2 == nil {
				t.Fatal("pooled and plain decode disagree on malformed input")
			}
			return
		}
		// A valid decode must round-trip losslessly.
		re := (&PutBatchReq{Entries: req.Entries}).Marshal()
		var back PutBatchReq
		if err := back.Unmarshal(re); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(back.Entries) != len(req.Entries) {
			t.Fatalf("round trip entry count %d, want %d", len(back.Entries), len(req.Entries))
		}
		for i := range req.Entries {
			if back.Entries[i].Path != req.Entries[i].Path || !bytes.Equal(back.Entries[i].Data, req.Entries[i].Data) {
				t.Fatalf("entry %d mismatch", i)
			}
		}
		// Any strict prefix of a valid encoding must be rejected (except
		// a prefix that is itself a complete shorter encoding — the
		// decoder's trailing-bytes check makes that impossible here
		// because the count pins the entry total).
		if len(re) > 0 {
			var trunc PutBatchReq
			if err := trunc.Unmarshal(re[:len(re)-1]); err == nil && len(req.Entries) > 0 {
				t.Fatal("truncated encoding decoded successfully")
			}
		}
	})
}

// FuzzPutBatchResp hardens the ack decoder the client runs on server
// responses.
func FuzzPutBatchResp(f *testing.F) {
	f.Add((&PutBatchResp{}).Marshal())
	f.Add((&PutBatchResp{Statuses: []uint16{0, 1, 0xFFFE}}).Marshal())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var resp PutBatchResp
		if err := resp.Unmarshal(data); err != nil {
			return
		}
		re := (&PutBatchResp{Statuses: resp.Statuses}).Marshal()
		var back PutBatchResp
		if err := back.Unmarshal(re); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(back.Statuses) != len(resp.Statuses) {
			t.Fatalf("round trip count %d, want %d", len(back.Statuses), len(resp.Statuses))
		}
		for i := range resp.Statuses {
			if back.Statuses[i] != resp.Statuses[i] {
				t.Fatalf("status %d mismatch", i)
			}
		}
	})
}

// TestPutBatchZeroEntry pins the zero-entry batch down as a valid,
// stable encoding (the explicit-flush-of-empty-buffer frame).
func TestPutBatchZeroEntry(t *testing.T) {
	b := (&PutBatchReq{}).Marshal()
	var req PutBatchReq
	if err := req.Unmarshal(b); err != nil {
		t.Fatalf("zero-entry decode: %v", err)
	}
	if len(req.Entries) != 0 {
		t.Fatalf("zero-entry decoded %d entries", len(req.Entries))
	}
	if len(b) != 4 {
		t.Fatalf("zero-entry encoding is %d bytes, want 4", len(b))
	}
}

// TestPutBatchCountOverflowRejected pins the count-field sanity bound:
// a count promising more entries than the payload could hold must be
// rejected before any allocation sized by it.
func TestPutBatchCountOverflowRejected(t *testing.T) {
	e := wire.NewBuffer(8)
	e.U32(0xFFFFFFFF)
	var req PutBatchReq
	if err := req.Unmarshal(e.Bytes()); err == nil {
		t.Fatal("absurd count accepted")
	}
}
