package hvac

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

func openFixture(t *testing.T) (*testCluster, *Client, *File) {
	t.Helper()
	tc := newTestCluster(t, 1)
	tc.pfs.Put("data/seq", []byte("0123456789abcdef"))
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	f, err := c.Open(context.Background(), "data/seq")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return tc, c, f
}

func TestFileSequentialRead(t *testing.T) {
	_, _, f := openFixture(t)
	defer f.Close()
	if f.Name() != "data/seq" || f.Size() != 16 {
		t.Errorf("name=%q size=%d", f.Name(), f.Size())
	}
	buf := make([]byte, 5)
	n, err := f.Read(buf)
	if err != nil || n != 5 || string(buf) != "01234" {
		t.Fatalf("read 1: %q %d %v", buf[:n], n, err)
	}
	n, err = f.Read(buf)
	if err != nil || n != 5 || string(buf) != "56789" {
		t.Fatalf("read 2: %q %d %v", buf[:n], n, err)
	}
	// Read everything remaining via io.ReadAll.
	rest, err := io.ReadAll(f)
	if err != nil || string(rest) != "abcdef" {
		t.Fatalf("rest: %q %v", rest, err)
	}
	// At EOF.
	if _, err := f.Read(buf); err != io.EOF {
		t.Errorf("post-EOF read err = %v", err)
	}
}

func TestFileReadAt(t *testing.T) {
	_, _, f := openFixture(t)
	defer f.Close()
	buf := make([]byte, 4)
	n, err := f.ReadAt(buf, 10)
	if err != nil || n != 4 || string(buf) != "abcd" {
		t.Fatalf("ReadAt: %q %d %v", buf[:n], n, err)
	}
	// Tail read returns short count with EOF.
	n, err = f.ReadAt(buf, 14)
	if n != 2 || err != io.EOF || string(buf[:n]) != "ef" {
		t.Fatalf("tail ReadAt: %q %d %v", buf[:n], n, err)
	}
	if _, err := f.ReadAt(buf, 16); err != io.EOF {
		t.Errorf("past-EOF ReadAt err = %v", err)
	}
	// ReadAt must not move the sequential offset.
	head := make([]byte, 2)
	f.Read(head)
	if string(head) != "01" {
		t.Errorf("offset disturbed by ReadAt: %q", head)
	}
}

func TestFileSeek(t *testing.T) {
	_, _, f := openFixture(t)
	defer f.Close()
	if pos, err := f.Seek(10, io.SeekStart); err != nil || pos != 10 {
		t.Fatalf("seek start: %d %v", pos, err)
	}
	buf := make([]byte, 3)
	f.Read(buf)
	if string(buf) != "abc" {
		t.Errorf("after seek: %q", buf)
	}
	if pos, err := f.Seek(-3, io.SeekCurrent); err != nil || pos != 10 {
		t.Fatalf("seek current: %d %v", pos, err)
	}
	if pos, err := f.Seek(-6, io.SeekEnd); err != nil || pos != 10 {
		t.Fatalf("seek end: %d %v", pos, err)
	}
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Error("negative position should fail")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Error("bad whence should fail")
	}
	// Seeking past EOF then reading yields EOF (POSIX allows the seek).
	if _, err := f.Seek(100, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(buf); err != io.EOF {
		t.Errorf("read past EOF err = %v", err)
	}
}

func TestFileClose(t *testing.T) {
	_, _, f := openFixture(t)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosedFile) {
		t.Errorf("double close err = %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosedFile) {
		t.Errorf("read after close err = %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosedFile) {
		t.Errorf("readAt after close err = %v", err)
	}
	if _, err := f.Seek(0, io.SeekStart); !errors.Is(err, ErrClosedFile) {
		t.Errorf("seek after close err = %v", err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	tc := newTestCluster(t, 1)
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	if _, err := c.Open(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestReadFileMatchesRead(t *testing.T) {
	tc := newTestCluster(t, 1)
	tc.pfs.Put("f", []byte("whole-file"))
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	ctx := context.Background()
	a, err1 := c.ReadFile(ctx, "f")
	b, err2 := c.Read(ctx, "f")
	if err1 != nil || err2 != nil || !bytes.Equal(a, b) {
		t.Errorf("ReadFile mismatch: %v %v", err1, err2)
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	tc := newTestCluster(t, 1)
	paths := make([]string, 20)
	for i := range paths {
		paths[i] = fmt.Sprintf("warm/file-%02d", i)
		tc.pfs.Put(paths[i], []byte{byte(i)})
	}
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	c.Prefetch(context.Background(), paths, 4)
	tc.servers["node-00"].Mover().Flush()
	srv := tc.servers["node-00"]
	for _, p := range paths {
		if !srv.NVMe().Has(p) {
			t.Errorf("path %q not cached after prefetch", p)
		}
	}
}

func TestPrefetchDegenerateArgs(t *testing.T) {
	tc := newTestCluster(t, 1)
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	c.Prefetch(context.Background(), nil, 0)             // no paths, no panic
	c.Prefetch(context.Background(), []string{"x"}, 100) // parallelism > paths
}

func TestDownloadTo(t *testing.T) {
	tc := newTestCluster(t, 1)
	// 10000 bytes streamed in 1 KiB chunks → 10 RPCs.
	body := bytes.Repeat([]byte("0123456789"), 1000)
	tc.pfs.Put("big", body)
	c := tc.client(staticRouter{node: "node-00"}, time.Second)
	var out bytes.Buffer
	n, err := c.DownloadTo(context.Background(), &out, "big", 1024)
	if err != nil || n != int64(len(body)) {
		t.Fatalf("DownloadTo = %d, %v", n, err)
	}
	if !bytes.Equal(out.Bytes(), body) {
		t.Error("streamed content mismatch")
	}
	// Default chunk size path.
	out.Reset()
	if n, err := c.DownloadTo(context.Background(), &out, "big", 0); err != nil || n != int64(len(body)) {
		t.Fatalf("default chunk: %d, %v", n, err)
	}
	if _, err := c.DownloadTo(context.Background(), &out, "missing", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing err = %v", err)
	}
}
