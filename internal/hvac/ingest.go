package hvac

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Ingest defaults (see IngestConfig).
const (
	DefaultMaxBatchEntries = 64
	DefaultMaxBatchBytes   = 256 << 10
	DefaultMaxBatchDelay   = 2 * time.Millisecond
	defaultIngestQueue     = 4
)

// IngestConfig enables the batched async ingest pipeline: PutAsync
// buffers objects per destination node and ships them as OpPutBatch
// frames, amortizing one RPC round-trip (and, underneath, one coalesced
// socket write) over many objects. nil leaves the client put path
// exactly as before — every put is its own synchronous OpPut.
type IngestConfig struct {
	// MaxBatchEntries flushes a batch when it holds this many objects.
	// <= 0 selects DefaultMaxBatchEntries.
	MaxBatchEntries int
	// MaxBatchBytes flushes a batch when its encoded payload exceeds
	// this size. <= 0 selects DefaultMaxBatchBytes. A single object
	// larger than the bound still ships (as a one-entry batch).
	MaxBatchBytes int
	// MaxDelay bounds how long a buffered object may wait for
	// batch-mates before an age flush. <= 0 selects
	// DefaultMaxBatchDelay.
	MaxDelay time.Duration
	// QueueDepth bounds sealed batches waiting on each node's sender.
	// When full, PutAsync blocks — enqueue-rate backpressure instead of
	// unbounded buffering. <= 0 selects 4.
	QueueDepth int
}

func (cfg IngestConfig) withDefaults() IngestConfig {
	if cfg.MaxBatchEntries <= 0 {
		cfg.MaxBatchEntries = DefaultMaxBatchEntries
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultMaxBatchDelay
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultIngestQueue
	}
	return cfg
}

// ErrIngestClosed reports a put against a closed client.
var ErrIngestClosed = errors.New("hvac: ingest pipeline closed")

// ingestBufPool recycles batch encode buffers across batches. A building
// batch would otherwise allocate up to MaxBatchBytes each time it is
// created — at full ingest rate that is hundreds of MB/s of garbage, and
// the GC churn costs more than the round trips batching saves. Buffers
// start small and grow to the steady-state batch size once.
var ingestBufPool = sync.Pool{New: func() any { return wire.NewBuffer(8 << 10) }}

// Flush reasons, recorded per sealed batch so the telemetry shows
// whether the pipeline runs full (size), trickles (age), or is driven
// by explicit barriers (sync).
const (
	flushReasonSize = iota
	flushReasonAge
	flushReasonSync
)

func flushReasonName(reason int) string {
	switch reason {
	case flushReasonSize:
		return "size"
	case flushReasonAge:
		return "age"
	default:
		return "sync"
	}
}

// ingestBatch is one sealed-or-building batch bound for a node. The
// payload is encoded at enqueue time straight into enc (count prefix
// patched at seal), so flushing is a pointer handoff, not an O(bytes)
// re-encode under a lock.
type ingestBatch struct {
	enc   *wire.Buffer
	paths []string // request-ordered, for per-entry error reporting
	done  chan struct{}
	err   error // batch-level failure; set before done closes
	// span is the batch's root trace ("ingest.batch"): one per flush
	// generation, nil with tracing off. Access is sequential across the
	// batch's lifecycle (build/seal under the worker lock, then the
	// sender after the channel handoff), never concurrent. Per-entry
	// spans are deliberately avoided — a batch can hold thousands of
	// objects, and the generation is the unit that queues, ships, and
	// acks.
	span *trace.Span
}

func (b *ingestBatch) entries() int { return len(b.paths) }

// appendWorker is the per-destination-node ingest worker: a building
// batch, a bounded queue of sealed batches, and one lazily started
// sender goroutine that ships them in order.
type appendWorker struct {
	ing  *ingester
	node cluster.NodeID
	ch   chan *ingestBatch // nil element = shutdown sentinel

	mu      sync.Mutex
	cur     *ingestBatch
	timer   *time.Timer    // age-flush timer for cur; nil when cur empty
	unacked []*ingestBatch // sealed, not yet acked (pruned lazily)
	closed  bool

	senderDone chan struct{}
}

// ingester owns the per-node append workers and the collected flush
// errors of one client.
type ingester struct {
	c   *Client
	cfg IngestConfig

	mu      sync.Mutex
	workers map[cluster.NodeID]*appendWorker
	closed  bool

	errMu    sync.Mutex
	firstErr error // first flush failure since the last Flush
}

func newIngester(c *Client, cfg IngestConfig) *ingester {
	return &ingester{c: c, cfg: cfg.withDefaults(), workers: make(map[cluster.NodeID]*appendWorker)}
}

func (in *ingester) worker(node cluster.NodeID) (*appendWorker, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return nil, ErrIngestClosed
	}
	w, ok := in.workers[node]
	if !ok {
		w = &appendWorker{
			ing:        in,
			node:       node,
			ch:         make(chan *ingestBatch, in.cfg.QueueDepth),
			senderDone: make(chan struct{}),
		}
		go w.sender()
		in.workers[node] = w
	}
	return w, nil
}

// enqueue buffers one object for node, copying data into the batch's
// wire encoding immediately (the caller's slice is not retained). It
// blocks only when the node's sealed-batch queue is full.
func (in *ingester) enqueue(node cluster.NodeID, path string, data []byte) error {
	w, err := in.worker(node)
	if err != nil {
		return err
	}
	return w.enqueue(path, data)
}

func (w *appendWorker) enqueue(path string, data []byte) error {
	cfg := w.ing.cfg
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrIngestClosed
	}
	if w.cur == nil {
		enc := ingestBufPool.Get().(*wire.Buffer)
		enc.Reset()
		w.cur = &ingestBatch{
			enc:  enc,
			done: make(chan struct{}),
		}
		// A detached root per batch: the batch aggregates puts from many
		// callers, so no single caller's trace can parent it. Starting at
		// batch creation makes the span duration cover build + queue +
		// send — the full latency an object can see inside the pipeline.
		//ftclint:ignore ctxflow detached root by design, per the comment above: a batch aggregates many callers, so none of their traces can parent it
		_, w.cur.span = trace.StartTrace(context.Background(), "ingest.batch")
		w.cur.span.Annotate("node", string(w.node))
		// 4-byte count placeholder, patched at seal.
		w.cur.enc.U32(0)
		w.timer = time.AfterFunc(cfg.MaxDelay, w.flushAge)
	}
	EncodePutEntry(w.cur.enc, path, data)
	w.cur.paths = append(w.cur.paths, path)
	cliMetrics().ingestEntries.Inc()
	if w.cur.entries() >= cfg.MaxBatchEntries || w.cur.enc.Len() >= cfg.MaxBatchBytes {
		//ftclint:ignore lockorder sealLocked's queue send is safe under mu: the sender drains w.ch without ever taking the worker lock
		w.sealLocked(flushReasonSize)
	}
	return nil
}

// flushAge is the age-timer callback: ship whatever is buffered so no
// object waits longer than MaxDelay for batch-mates.
func (w *appendWorker) flushAge() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur != nil && !w.closed {
		//ftclint:ignore lockorder sealLocked's queue send is safe under mu: the sender drains w.ch without ever taking the worker lock
		w.sealLocked(flushReasonAge)
	}
}

// sealLocked finishes the building batch and hands it to the sender.
// The queue send may block (bounded in-flight batches); the sender
// needs no worker lock to drain, so the send always completes.
func (w *appendWorker) sealLocked(reason int) {
	b := w.cur
	w.cur = nil
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	binary.LittleEndian.PutUint32(b.enc.Bytes()[:4], uint32(b.entries()))
	if b.span != nil {
		b.span.Annotate("flush", flushReasonName(reason))
		b.span.AnnotateInt("entries", int64(b.entries()))
		// The ext rides after the entries; PutBatchReq decodes it as the
		// optional trailer, so the server's handler span joins this trace.
		b.enc.AppendTraceExt(wire.TraceExt{TraceID: uint64(b.span.TraceID()), SpanID: uint64(b.span.ID())})
	}
	// Prune acked batches so unacked doesn't grow without bound on a
	// long-lived worker that is never explicitly flushed.
	kept := w.unacked[:0]
	for _, u := range w.unacked {
		select {
		case <-u.done:
		default:
			kept = append(kept, u)
		}
	}
	w.unacked = append(kept, b)
	m := cliMetrics()
	m.ingestBatches.Inc()
	m.ingestBatchEntries.Observe(int64(b.entries()))
	switch reason {
	case flushReasonSize:
		m.ingestFlushSize.Inc()
	case flushReasonAge:
		m.ingestFlushAge.Inc()
	case flushReasonSync:
		m.ingestFlushSync.Inc()
	}
	w.ch <- b
}

// sender ships sealed batches in order until it receives the shutdown
// sentinel. One goroutine per destination node: batches to one node
// serialize (preserving put order per node), batches to different nodes
// overlap.
func (w *appendWorker) sender() {
	defer close(w.senderDone)
	for b := range w.ch {
		if b == nil {
			return
		}
		w.send(b)
	}
}

func (w *appendWorker) send(b *ingestBatch) {
	defer close(b.done)
	defer func() {
		b.span.SetError(b.err)
		b.span.End()
	}()
	// The encoding is consumed by the time Call returns (the frame is
	// copied into the coalesced write buffer); recycle it. Only done/err
	// are read after this point.
	defer func() {
		enc := b.enc
		b.enc = nil
		ingestBufPool.Put(enc)
	}()
	c := w.ing.c
	m := cliMetrics()
	// failBatch records a whole-batch failure: every entry is unacked,
	// so the error counter moves by the batch's entry count, keeping
	// ingestErrors in objects — the same unit as ingestEntries.
	failBatch := func(err error) {
		b.err = err
		m.ingestErrors.Add(int64(b.entries()))
		w.ing.recordErr(err)
	}
	cli, err := c.conn(w.node)
	if err != nil {
		failBatch(err)
		return
	}
	//ftclint:ignore ctxflow the sender goroutine outlives every enqueueing caller, so there is no caller context; RPCTimeout bounds the call instead
	callCtx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
	defer cancel()
	payload, status, err := cli.Call(callCtx, OpPutBatch, b.enc.Bytes())
	if err != nil {
		if errors.Is(err, rpc.ErrClosed) {
			c.dropConn(w.node)
		}
		failBatch(err)
		return
	}
	switch status {
	case rpc.StatusOK:
	case StatusOverloaded:
		failBatch(fmt.Errorf("%w: %s (batch of %d)", ErrOverloaded, w.node, b.entries()))
		return
	default:
		failBatch(fmt.Errorf("hvac: put batch status %d: %s", status, payload))
		return
	}
	var resp PutBatchResp
	if err := resp.Unmarshal(payload); err != nil {
		failBatch(err)
		return
	}
	if len(resp.Statuses) != b.entries() {
		failBatch(fmt.Errorf("hvac: put batch ack count %d, want %d", len(resp.Statuses), b.entries()))
		return
	}
	var firstBad error
	bad := 0
	for i, s := range resp.Statuses {
		if s != rpc.StatusOK {
			bad++
			if firstBad == nil {
				firstBad = fmt.Errorf("hvac: put %s on %s: status %d", b.paths[i], w.node, s)
			}
		}
	}
	b.span.AnnotateInt("acked", int64(b.entries()-bad))
	b.span.AnnotateInt("failed", int64(bad))
	if bad > 0 {
		b.err = firstBad
		m.ingestErrors.Add(int64(bad))
		w.ing.recordErr(firstBad)
	}
}

func (in *ingester) recordErr(err error) {
	in.errMu.Lock()
	if in.firstErr == nil {
		in.firstErr = err
	}
	in.errMu.Unlock()
}

// takeErr returns and clears the first flush failure since the last
// call.
func (in *ingester) takeErr() error {
	in.errMu.Lock()
	defer in.errMu.Unlock()
	err := in.firstErr
	in.firstErr = nil
	return err
}

// barrier seals every building batch (reason sync) and waits until all
// sealed batches have been acked or ctx expires. It does not consume
// collected errors — Flush layers that on top.
func (in *ingester) barrier(ctx context.Context) error {
	in.mu.Lock()
	workers := make([]*appendWorker, 0, len(in.workers))
	for _, w := range in.workers {
		workers = append(workers, w)
	}
	in.mu.Unlock()

	var wait []*ingestBatch
	for _, w := range workers {
		w.mu.Lock()
		if w.cur != nil && !w.closed {
			//ftclint:ignore lockorder sealLocked's queue send is safe under mu: the sender drains w.ch without ever taking the worker lock
			w.sealLocked(flushReasonSync)
		}
		wait = append(wait, w.unacked...)
		w.mu.Unlock()
	}
	for _, b := range wait {
		select {
		case <-b.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// close seals what is buffered, stops every sender, and waits for them
// to exit. In-flight batches fail fast once the client's connections
// drop (Close tears those down first), so this never hangs on a dead
// node.
func (in *ingester) close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	workers := make([]*appendWorker, 0, len(in.workers))
	for _, w := range in.workers {
		workers = append(workers, w)
	}
	in.mu.Unlock()

	for _, w := range workers {
		w.mu.Lock()
		if w.cur != nil {
			//ftclint:ignore lockorder sealLocked's queue send is safe under mu: the sender drains w.ch without ever taking the worker lock
			w.sealLocked(flushReasonSync)
		}
		w.closed = true
		w.mu.Unlock()
		w.ch <- nil // shutdown sentinel; sender drains sealed batches first
	}
	for _, w := range workers {
		<-w.senderDone
	}
}

// PutAsync buffers one object for batched delivery to its ring owner
// (and, with replication enabled, to the ring successors — replica
// pushes ride the same batches). The data slice is encoded immediately
// and not retained. Delivery and errors are deferred: Flush returns the
// first failure since the previous Flush, and the ack-visibility
// guarantee is that once Flush returns nil, every object put since the
// previous barrier is readable from its owner.
//
// Without an IngestConfig the call degrades to the synchronous put.
func (c *Client) PutAsync(path string, data []byte) error {
	if c.closed.Load() {
		return ErrIngestClosed
	}
	owners := c.putOwners(path)
	if len(owners) == 0 {
		return fmt.Errorf("hvac: no owner for %s", path)
	}
	if c.ingest == nil {
		//ftclint:ignore ctxflow PutAsync is fire-and-forget by contract — its signature deliberately takes no context, so the sync fallback has none to plumb
		return c.Put(context.Background(), path, data)
	}
	if err := c.ingest.enqueue(owners[0], path, data); err != nil {
		return err
	}
	for _, node := range owners[1:] {
		if !c.tracker.IsAlive(node) {
			continue
		}
		// Replica legs are best-effort, like replicateAsync.
		if c.ingest.enqueue(node, path, data) == nil {
			c.replicaPushes.Add(1)
			cliMetrics().replicaPush.Inc()
		}
	}
	return nil
}

// Put stores one object synchronously on its ring owner: the unbatched
// baseline PutAsync is measured against, and the fallback when no
// ingest pipeline is configured. Replica pushes (with replication
// enabled) stay asynchronous, exactly like the read-path fill.
func (c *Client) Put(ctx context.Context, path string, data []byte) error {
	owners := c.putOwners(path)
	if len(owners) == 0 {
		return fmt.Errorf("hvac: no owner for %s", path)
	}
	if err := c.Push(ctx, owners[0], path, data); err != nil {
		return err
	}
	if len(owners) > 1 {
		c.replicateAsync(path, data)
	}
	return nil
}

// putOwners resolves the destination set of a put: the routed owner,
// extended to the replica set when replication is configured. Empty
// when the router does not currently map the path to a node.
func (c *Client) putOwners(path string) []cluster.NodeID {
	if repl, ok := c.cfg.Router.(Replicator); ok && c.cfg.ReplicationFactor > 1 {
		if owners := repl.Replicas(path, c.cfg.ReplicationFactor); len(owners) > 0 {
			return owners
		}
	}
	d := c.cfg.Router.Route(path)
	if d.Kind != RouteNode {
		return nil
	}
	return []cluster.NodeID{d.Node}
}

// Flush is the ingest barrier: it seals and ships every buffered batch,
// waits for their acks, and returns the first delivery failure since
// the previous Flush (nil with no pipeline configured). When it returns
// nil, every object accepted by PutAsync since the previous barrier is
// readable from its owner — the ack-visibility guarantee batched
// training ingest relies on at epoch boundaries.
func (c *Client) Flush(ctx context.Context) error {
	if c.ingest == nil {
		return nil
	}
	if err := c.ingest.barrier(ctx); err != nil {
		return err
	}
	return c.ingest.takeErr()
}
