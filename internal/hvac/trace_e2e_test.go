package hvac

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/trace"
)

// chaosCluster is a testCluster whose links run through a chaos
// controller, so tests can arm faults and assert they surface in
// traces.
type chaosCluster struct {
	ctl     *chaos.Controller
	pfs     *storage.PFS
	servers map[cluster.NodeID]*Server
	nodes   []cluster.NodeID
}

func newChaosCluster(t *testing.T, seed int64, n int) *chaosCluster {
	t.Helper()
	cc := &chaosCluster{
		ctl:     chaos.New(rpc.NewInprocNetwork(), chaos.Config{Seed: seed, DialTimeout: 50 * time.Millisecond}),
		pfs:     storage.NewPFS(),
		servers: make(map[cluster.NodeID]*Server),
	}
	for i := 0; i < n; i++ {
		node := cluster.NodeID(fmt.Sprintf("node-%02d", i))
		cc.nodes = append(cc.nodes, node)
		srv := NewServer(ServerConfig{Node: node}, cc.pfs)
		lis, err := cc.ctl.Network(string(node)).Listen(string(node))
		if err != nil {
			t.Fatalf("listen %s: %v", node, err)
		}
		go srv.Serve(lis)
		cc.servers[node] = srv
	}
	t.Cleanup(func() {
		for _, s := range cc.servers {
			s.Close()
		}
	})
	return cc
}

func (cc *chaosCluster) client(t *testing.T, clientName string, router Router) *Client {
	t.Helper()
	eps := make(map[cluster.NodeID]string, len(cc.nodes))
	for _, n := range cc.nodes {
		eps[n] = string(n)
	}
	c, err := NewClient(ClientConfig{
		Endpoints:    eps,
		Network:      cc.ctl.Network(clientName),
		Router:       router,
		PFS:          cc.pfs,
		RPCTimeout:   2 * time.Second,
		TimeoutLimit: 2,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// findSpan returns the first span named name in t, or nil.
func findSpan(tr *trace.Trace, name string) *trace.SpanRecord {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

// TestTraceChaosFaultAnnotated asserts the chaos->trace bridge: a
// latency fault armed on the client->server link shows up as a
// structural annotation on the rpc.read span of a request that crossed
// the faulted link — the trace says not just "this leg was slow" but
// "this leg was slow and a 5ms latency fault was armed on it".
func TestTraceChaosFaultAnnotated(t *testing.T) {
	rec := trace.Enable(64, 1)
	defer trace.Disable()
	_ = rec

	cc := newChaosCluster(t, 1, 1)
	body := []byte("traced-payload")
	cc.pfs.Put("data/f1", body)
	cc.servers["node-00"].NVMe().Put("data/f1", body)

	c := cc.client(t, "cli", staticRouter{node: "node-00"})
	cc.ctl.SetLatency("cli", "node-00", 5*time.Millisecond, time.Millisecond)

	data, err := c.Read(context.Background(), "data/f1")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(data, body) {
		t.Fatalf("read returned %q, want %q", data, body)
	}

	var rpcSpan *trace.SpanRecord
	for _, tr := range rec.Snapshot() {
		if tr.Remote {
			continue
		}
		if sp := findSpan(tr, "rpc.read"); sp != nil {
			rpcSpan = sp
		}
	}
	if rpcSpan == nil {
		t.Fatal("no client trace with an rpc.read span was recorded")
	}
	found := ""
	for _, a := range rpcSpan.Annotations {
		if a.Key == "chaos" {
			found = a.Value
		}
	}
	if !strings.HasPrefix(found, "latency=5ms") {
		t.Fatalf("rpc.read chaos annotation = %q, want latency=5ms fault; annotations: %v",
			found, rpcSpan.Annotations)
	}
}

// TestTraceErrorRetentionUnderLoad asserts the flight recorder's
// headline guarantee: error-class traces are retained 100% under a
// volume of healthy traffic that overwrites the baseline ring many
// times over. The errors live in their own ring, so no amount of
// healthy load can evict them.
func TestTraceErrorRetentionUnderLoad(t *testing.T) {
	const (
		capacity = 256
		okReads  = 2000 // ~8x the baseline ring capacity
		errReads = 100
	)
	rec := trace.Enable(capacity, 1)
	defer trace.Disable()

	tc := newTestCluster(t, 1)
	body := []byte("retained-payload")
	tc.pfs.Put("data/ok", body)
	tc.servers["node-00"].NVMe().Put("data/ok", body)
	c := tc.client(staticRouter{node: "node-00"}, time.Second)

	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < okReads/8; i++ {
				if _, err := c.Read(ctx, "data/ok"); err != nil {
					t.Errorf("ok read failed: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < errReads; i++ {
		if _, err := c.Read(ctx, fmt.Sprintf("data/missing-%d", i)); err == nil {
			t.Fatalf("read of missing path %d unexpectedly succeeded", i)
		}
	}
	wg.Wait()

	errRoots := 0
	for _, tr := range rec.Snapshot() {
		if tr.Err && !tr.Remote && tr.Root == "client.read" {
			errRoots++
		}
	}
	if errRoots != errReads {
		t.Errorf("retained %d error-class client traces, want all %d", errRoots, errReads)
	}
	st := rec.Stats()
	if st.ErrKept == 0 {
		t.Error("recorder stats report zero error-class keeps")
	}
	t.Logf("recorder: offered=%d kept=%d errKept=%d tailKept=%d", st.Offered, st.Kept, st.ErrKept, st.TailKept)
}

// runSeededTraceScenario is one deterministic traced scenario: seeded
// span ids, a single-node cluster behind a seeded chaos controller
// with a latency fault armed, a fixed sequence of reads (three hits
// and one miss), exported in canonical form.
func runSeededTraceScenario(t *testing.T, seed int64) []byte {
	trace.SeedIDs(seed)
	rec := trace.Enable(256, 1)
	defer trace.Disable()

	cc := newChaosCluster(t, seed, 1)
	paths := []string{"soak/a", "soak/b", "soak/c"}
	for _, p := range paths {
		body := []byte("content-" + p)
		cc.pfs.Put(p, body)
		cc.servers["node-00"].NVMe().Put(p, body)
	}
	c := cc.client(t, "cli", staticRouter{node: "node-00"})
	cc.ctl.SetLatency("cli", "node-00", 5*time.Millisecond, 0)

	ctx := context.Background()
	for _, p := range paths {
		if _, err := c.Read(ctx, p); err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
	}
	if _, err := c.Read(ctx, "soak/missing"); err == nil {
		t.Fatal("read of missing path unexpectedly succeeded")
	}

	out, err := trace.CanonicalJSON(rec.Snapshot())
	if err != nil {
		t.Fatalf("canonical export: %v", err)
	}
	return out
}

// TestTraceSeededReplayByteIdentical is the replay acceptance check:
// the same seeded faulted scenario run twice exports byte-identical
// canonical traces, and the artifact carries the injected-fault
// annotation. Wall-clock timings, measured durations, and span ids all
// differ between the runs; everything the canonical form keeps must
// not.
func TestTraceSeededReplayByteIdentical(t *testing.T) {
	const seed = 7
	run1 := runSeededTraceScenario(t, seed)
	time.Sleep(3 * time.Millisecond) // shift wall clock between runs
	run2 := runSeededTraceScenario(t, seed)

	if !bytes.Equal(run1, run2) {
		t.Errorf("canonical exports differ between identically seeded runs:\nrun1:\n%s\nrun2:\n%s", run1, run2)
	}
	if !bytes.Contains(run1, []byte("latency=5ms")) {
		t.Errorf("canonical export does not carry the injected latency-fault annotation:\n%s", run1)
	}
	if !bytes.Contains(run1, []byte(`"root": "server.read"`)) && !bytes.Contains(run1, []byte(`"root":"server.read"`)) {
		t.Errorf("canonical export carries no server-side fragment:\n%s", run1)
	}
}
