// Package testutil holds hand-rolled test infrastructure shared by the
// integration-style tests: currently the goroutine leak guard. It is
// deliberately dependency-free (runtime.Stack parsing, no goleak) per
// the repo's no-external-modules rule.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// leakGraceDefault is how long CheckGoroutines polls for stragglers to
// exit before declaring a leak. Teardown in the e2e tests is
// asynchronous (connection readers observe a closed socket, hedged legs
// observe a cancelled context), so a freshly-stopped cluster legitimately
// has goroutines mid-exit for a few milliseconds.
const leakGraceDefault = 2 * time.Second

// goroutineSignature is one normalized stack: the function call chain
// with goroutine IDs, argument values, pointers, and line offsets
// stripped, so two goroutines parked in the same place compare equal
// and a pre-existing goroutine compares equal to itself later even
// after it moved a line.
type goroutineSignature string

// stacks captures every goroutine's stack in one runtime.Stack call,
// growing the buffer until the dump fits.
func stacks() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, len(buf)*2)
	}
}

// normalize reduces one goroutine's raw stack block to its signature.
func normalize(block string) goroutineSignature {
	lines := strings.Split(block, "\n")
	var frames []string
	for _, line := range lines[1:] { // lines[0] is "goroutine N [state]:"
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "created by ") {
			continue
		}
		// Function lines look like "pkg.fn(0xc000..., 0x1)"; file lines
		// look like "\t/path/file.go:123 +0x45" before TrimSpace. Keep
		// only function lines, minus the argument list.
		if strings.HasPrefix(line, "/") || strings.Contains(line, ".go:") {
			continue
		}
		if i := strings.IndexByte(line, '('); i > 0 {
			line = line[:i]
		}
		frames = append(frames, line)
	}
	return goroutineSignature(strings.Join(frames, "<-"))
}

// parseStacks splits a full runtime.Stack dump into per-goroutine
// signature counts.
func parseStacks(dump []byte) map[goroutineSignature]int {
	out := map[goroutineSignature]int{}
	for _, block := range strings.Split(string(dump), "\n\n") {
		if !strings.HasPrefix(block, "goroutine ") {
			continue
		}
		out[normalize(block)]++
	}
	return out
}

// interesting reports whether a leaked signature implicates this repo:
// only goroutines with a repro/ frame somewhere in the chain count.
// Runtime helpers (GC workers, netpoll) and the testing harness itself
// come and go on their own schedule and are never our leak.
func interesting(sig goroutineSignature) bool {
	s := string(sig)
	if strings.Contains(s, "repro/internal/testutil.stacks") {
		// The goroutine taking the snapshot: its own stack contains the
		// capture chain, which differs between baseline and cleanup.
		return false
	}
	return strings.Contains(s, "repro/")
}

// CheckGoroutines snapshots the current goroutine population and
// registers a cleanup that fails t if, after the grace window, any
// repro/ goroutine exists whose normalized stack was not in the
// snapshot (or whose count grew). Call it first thing in a test, before
// starting servers:
//
//	func TestSoak(t *testing.T) {
//		testutil.CheckGoroutines(t)
//		...
//	}
func CheckGoroutines(t *testing.T) {
	t.Helper()
	CheckGoroutinesWithin(t, leakGraceDefault)
}

// CheckGoroutinesWithin is CheckGoroutines with an explicit grace
// window.
func CheckGoroutinesWithin(t *testing.T, grace time.Duration) {
	t.Helper()
	base := parseStacks(stacks())
	t.Cleanup(func() {
		var leaked map[goroutineSignature]int
		deadline := time.Now().Add(grace)
		for {
			leaked = leakedSince(base)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		var sigs []string
		for sig, n := range leaked {
			sigs = append(sigs, fmt.Sprintf("  %d × %s", n, sig))
		}
		sort.Strings(sigs)
		t.Errorf("goroutine leak: %d new repro/ goroutine signature(s) still running %v after test end:\n%s",
			len(sigs), grace, strings.Join(sigs, "\n"))
	})
}

// leakedSince diffs the current goroutine population against base,
// keeping only interesting signatures that appeared or multiplied.
func leakedSince(base map[goroutineSignature]int) map[goroutineSignature]int {
	now := parseStacks(stacks())
	leaked := map[goroutineSignature]int{}
	for sig, n := range now {
		if extra := n - base[sig]; extra > 0 && interesting(sig) {
			leaked[sig] = extra
		}
	}
	return leaked
}
