package testutil

import (
	"testing"
	"time"
)

func leakyWorker(stop <-chan struct{}, done chan<- struct{}) {
	<-stop
	close(done)
}

// poll retries fn every millisecond until it returns true or the
// timeout lapses.
func poll(timeout time.Duration, fn func() bool) bool {
	deadline := time.Now().Add(timeout)
	for !fn() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

func TestLeakedSinceDetectsAndClears(t *testing.T) {
	base := parseStacks(stacks())

	stop := make(chan struct{})
	done := make(chan struct{})
	go leakyWorker(stop, done)

	if !poll(2*time.Second, func() bool { return len(leakedSince(base)) > 0 }) {
		t.Fatal("parked repro/ goroutine never reported as leaked")
	}
	for sig := range leakedSince(base) {
		if !interesting(sig) {
			t.Errorf("uninteresting signature reported: %s", sig)
		}
	}

	close(stop)
	<-done
	if !poll(2*time.Second, func() bool { return len(leakedSince(base)) == 0 }) {
		t.Fatalf("leak report did not clear after the goroutine exited: %v", leakedSince(base))
	}
}

func TestNormalizeStripsVolatileParts(t *testing.T) {
	block := `goroutine 42 [chan receive]:
repro/internal/testutil.leakyWorker(0xc000076060, 0xc0000760c0)
	/root/repo/internal/testutil/leakcheck_test.go:9 +0x2c
created by repro/internal/testutil.TestX in goroutine 1
	/root/repo/internal/testutil/leakcheck_test.go:30 +0x9e`
	got := normalize(block)
	want := goroutineSignature("repro/internal/testutil.leakyWorker")
	if got != want {
		t.Errorf("normalize = %q, want %q", got, want)
	}
	if !interesting(got) {
		t.Error("repro/ signature classified uninteresting")
	}
	if interesting(normalize(`goroutine 7 [GC worker (idle)]:
runtime.gcBgMarkWorker(0xc00004e000)
	/usr/local/go/src/runtime/mgc.go:1423 +0x25`)) {
		t.Error("runtime-only signature classified interesting")
	}
}

func TestCheckGoroutinesCleanTest(t *testing.T) {
	CheckGoroutines(t)
	stop := make(chan struct{})
	done := make(chan struct{})
	go leakyWorker(stop, done)
	close(stop)
	<-done
	// Cleanup runs after the test body: the worker has exited, so the
	// guard must stay silent.
}
