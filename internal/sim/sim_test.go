package sim

import (
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []int
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("final time = %v", e.Now())
	}
	if e.Processed() != 3 || e.Pending() != 0 {
		t.Errorf("processed=%d pending=%d", e.Processed(), e.Pending())
	}
}

func TestEqualTimestampsStableOrder(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("unstable order at %d: %v", i, got)
		}
	}
}

func TestEventsScheduledFromCallbacks(t *testing.T) {
	e := New()
	var ticks []time.Duration
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if len(ticks) < 5 {
			e.After(10*time.Millisecond, tick)
		}
	}
	e.After(10*time.Millisecond, tick)
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, at := range ticks {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := map[int]bool{}
	e.At(10*time.Millisecond, func() { fired[10] = true })
	e.At(20*time.Millisecond, func() { fired[20] = true })
	e.At(30*time.Millisecond, func() { fired[30] = true })
	e.RunUntil(20 * time.Millisecond)
	if !fired[10] || !fired[20] || fired[30] {
		t.Errorf("fired = %v", fired)
	}
	if e.Now() != 20*time.Millisecond {
		t.Errorf("now = %v", e.Now())
	}
	// RunUntil past the last event advances the clock.
	e.RunUntil(time.Second)
	if !fired[30] || e.Now() != time.Second {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty queue should report false")
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.At(time.Millisecond, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.After(-time.Second, func() {})
}

func TestZeroDelaySelfScheduleTerminates(t *testing.T) {
	// Zero-delay events at the same timestamp still drain in FIFO order.
	e := New()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < 100 {
			e.After(0, fn)
		}
	}
	e.After(0, fn)
	e.Run()
	if n != 100 {
		t.Errorf("n = %d", n)
	}
	if e.Now() != 0 {
		t.Errorf("now = %v, want 0", e.Now())
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	var fn func()
	i := 0
	fn = func() {
		i++
		if i < b.N {
			e.After(time.Microsecond, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(time.Microsecond, fn)
	e.Run()
}
