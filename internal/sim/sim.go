// Package sim is a minimal discrete-event simulation engine: a virtual
// clock and an ordered event queue. The Frontier-scale training model
// (package trainsim) runs on it, interleaving step-barrier events with
// asynchronously scheduled failure injections exactly as wall-clock time
// would on the real machine — without sleeping.
//
// Events at equal timestamps fire in scheduling order (stable), which
// keeps simulations deterministic for a fixed seed.
package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event executor. It is not
// goroutine-safe: all scheduling must happen from the initial setup or
// from within event callbacks.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	// processed counts dispatched events (observability/tests).
	processed uint64
}

// New creates an engine at virtual time zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of dispatched events.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of undispatched events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it is always a model bug.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		panic("sim: scheduling into the past")
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current virtual time. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+d, fn)
}

// Step dispatches the single earliest event; returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with timestamps <= t, then advances the
// clock to t (if it is ahead of the last event).
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
