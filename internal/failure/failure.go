// Package failure builds the fault-injection plans the experiments use,
// mirroring the paper's §V-A.3 protocol: node failures are injected at
// random points strictly after the first epoch (so the cache is fully
// populated), with both timing and victim selection randomized; in the
// artifact this was done with `scontrol update NodeName=<n> State=DRAIN`.
//
// One Plan converts into both execution forms: live-cluster events for
// the dltrain trainer and virtual-time specs for the trainsim model, so
// live runs and simulations inject the same failures.
package failure

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dltrain"
	"repro/internal/trainsim"
)

// Event is one planned node failure.
type Event struct {
	// Epoch (0-based) in which the failure strikes; always >= 1 per the
	// paper's protocol.
	Epoch int
	// Frac is the position within the epoch, in [0, 1).
	Frac float64
	// Rank is the victim's rank index; -1 = choose randomly at fire time.
	Rank int
	// Mode is how the node dies on a live cluster.
	Mode core.FailureMode
}

// Plan is an ordered set of failures for one run.
type Plan struct {
	Events []Event
}

// RandomPlan draws `count` single-node failures over `epochs` epochs,
// random victims, deterministic for a seed. fracMax bounds how deep into
// an epoch a failure may strike (the paper's drains are armed at epoch
// boundaries, so strikes land early; pass 1.0 for uniform timing).
func RandomPlan(count, epochs int, fracMax float64, seed int64) Plan {
	if epochs < 2 {
		panic("failure: need at least 2 epochs (failures start after epoch 1)")
	}
	if fracMax <= 0 || fracMax > 1 {
		fracMax = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Events: make([]Event, count)}
	for i := range p.Events {
		p.Events[i] = Event{
			Epoch: 1 + rng.Intn(epochs-1),
			Frac:  rng.Float64() * fracMax,
			Rank:  -1,
			Mode:  core.FailUnresponsive,
		}
	}
	return p
}

// SingleAt is a convenience plan with one pinned failure.
func SingleAt(epoch int, frac float64, rank int, mode core.FailureMode) Plan {
	return Plan{Events: []Event{{Epoch: epoch, Frac: frac, Rank: rank, Mode: mode}}}
}

// LiveEvents converts the plan for the live trainer. stepsPerEpoch maps
// Frac onto a step index; node resolution of random victims is deferred
// to the trainer (empty NodeID).
func (p Plan) LiveEvents(cluster *core.Cluster, stepsPerEpoch int) []dltrain.FailureEvent {
	nodes := cluster.Nodes()
	out := make([]dltrain.FailureEvent, 0, len(p.Events))
	for _, e := range p.Events {
		ev := dltrain.FailureEvent{
			Epoch: e.Epoch,
			Step:  int(e.Frac * float64(stepsPerEpoch)),
			Mode:  e.Mode,
		}
		if e.Rank >= 0 && e.Rank < len(nodes) {
			ev.Node = nodes[e.Rank]
		}
		out = append(out, ev)
	}
	return out
}

// SimSpecs converts the plan for the trainsim model.
func (p Plan) SimSpecs() []trainsim.FailureSpec {
	out := make([]trainsim.FailureSpec, 0, len(p.Events))
	for _, e := range p.Events {
		out = append(out, trainsim.FailureSpec{
			Epoch: e.Epoch,
			Frac:  e.Frac,
			Node:  e.Rank,
		})
	}
	return out
}

// DrainCommand renders the SLURM command the artifact used to realize
// event on a real machine — documentation of the real-world equivalent
// of core.Cluster.Fail.
func DrainCommand(node string) string {
	return fmt.Sprintf("scontrol update NodeName=%s State=DRAIN Reason=ftcache-inject", node)
}
