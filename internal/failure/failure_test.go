package failure

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ftcache"
)

func TestRandomPlanBounds(t *testing.T) {
	p := RandomPlan(20, 5, 0.05, 42)
	if len(p.Events) != 20 {
		t.Fatalf("events = %d", len(p.Events))
	}
	for _, e := range p.Events {
		if e.Epoch < 1 || e.Epoch > 4 {
			t.Errorf("epoch %d out of [1,4]", e.Epoch)
		}
		if e.Frac < 0 || e.Frac >= 0.05 {
			t.Errorf("frac %v out of [0,0.05)", e.Frac)
		}
		if e.Rank != -1 {
			t.Error("random plan should defer victim choice")
		}
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(5, 5, 1, 7)
	b := RandomPlan(5, 5, 1, 7)
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("plan not deterministic")
		}
	}
}

func TestRandomPlanFracMaxClamp(t *testing.T) {
	p := RandomPlan(50, 3, -1, 1) // invalid fracMax → uniform
	sawLate := false
	for _, e := range p.Events {
		if e.Frac >= 1 {
			t.Errorf("frac %v >= 1", e.Frac)
		}
		if e.Frac > 0.5 {
			sawLate = true
		}
	}
	if !sawLate {
		t.Error("uniform timing should produce late-epoch strikes")
	}
}

func TestRandomPlanPanicsOnOneEpoch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RandomPlan(1, 1, 1, 1)
}

func TestConversions(t *testing.T) {
	c, err := core.NewCluster(core.ClusterConfig{
		Nodes:      3,
		Strategy:   ftcache.KindNVMe,
		RPCTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := SingleAt(2, 0.5, 1, core.FailKill)
	live := p.LiveEvents(c, 10)
	if len(live) != 1 {
		t.Fatalf("live events = %d", len(live))
	}
	if live[0].Epoch != 2 || live[0].Step != 5 || live[0].Mode != core.FailKill {
		t.Errorf("live event = %+v", live[0])
	}
	if live[0].Node != c.Nodes()[1] {
		t.Errorf("node = %s", live[0].Node)
	}

	sim := p.SimSpecs()
	if len(sim) != 1 || sim[0].Epoch != 2 || sim[0].Frac != 0.5 || sim[0].Node != 1 {
		t.Errorf("sim spec = %+v", sim[0])
	}

	// Random victims stay deferred in both forms.
	rp := RandomPlan(1, 5, 1, 3)
	if rp.LiveEvents(c, 10)[0].Node != "" {
		t.Error("random victim should be empty NodeID")
	}
	if rp.SimSpecs()[0].Node != -1 {
		t.Error("random victim should be -1 in sim form")
	}
}

func TestDrainCommand(t *testing.T) {
	cmd := DrainCommand("frontier01234")
	if !strings.Contains(cmd, "scontrol update NodeName=frontier01234") ||
		!strings.Contains(cmd, "State=DRAIN") {
		t.Errorf("cmd = %q", cmd)
	}
}
