package trainsim

import (
	"testing"

	"repro/internal/ftcache"
)

// TestReplicationEliminatesFailoverPFSReads: with R=2, a single failure
// costs no PFS reads at all — every lost file's new ring owner already
// holds the replica.
func TestReplicationEliminatesFailoverPFSReads(t *testing.T) {
	cfg := testConfig(16, ftcache.KindNVMe)
	cfg.Replication = 2
	cfg.Failures = []FailureSpec{{Epoch: 2, Frac: 0.1, Node: 5}}
	res := Run(cfg)
	if res.Aborted {
		t.Fatal("aborted")
	}
	for _, e := range res.Epochs {
		if e.Epoch >= 1 && e.PFSReads != 0 {
			t.Errorf("epoch %d PFS reads = %d, want 0 with replication", e.Epoch, e.PFSReads)
		}
	}
	// Compare against R=1: same failure must cost PFS reads there.
	cfg1 := testConfig(16, ftcache.KindNVMe)
	cfg1.Failures = cfg.Failures
	res1 := Run(cfg1)
	post1 := int64(0)
	for _, e := range res1.Epochs {
		if e.Epoch >= 1 {
			post1 += e.PFSReads
		}
	}
	if post1 == 0 {
		t.Fatal("R=1 run shows no recache traffic; test degenerate")
	}
	if res.Total >= res1.Total {
		t.Errorf("replicated run (%v) should not be slower than recache (%v)",
			res.Total, res1.Total)
	}
}

// TestReplicationExhaustion: R=2 absorbs the first failure free, but a
// second failure can exhaust replicas of some files, forcing refetches
// (which restore the replica count).
func TestReplicationExhaustion(t *testing.T) {
	cfg := testConfig(8, ftcache.KindNVMe)
	cfg.Replication = 2
	cfg.Failures = []FailureSpec{
		{Epoch: 1, Frac: 0.05, Node: 1},
		{Epoch: 2, Frac: 0.05, Node: 2},
		{Epoch: 3, Frac: 0.05, Node: 3},
	}
	res := Run(cfg)
	if res.Aborted {
		t.Fatal("aborted")
	}
	if res.Restarts != 3 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	// Later failures may hit files whose replica died earlier; total
	// post-failure reads must be far below the R=1 equivalent but need
	// not be exactly zero.
	var postRepl int64
	for _, e := range res.Epochs {
		if e.Epoch >= 1 {
			postRepl += e.PFSReads
		}
	}
	cfg1 := testConfig(8, ftcache.KindNVMe)
	cfg1.Failures = cfg.Failures
	res1 := Run(cfg1)
	var post1 int64
	for _, e := range res1.Epochs {
		if e.Epoch >= 1 {
			post1 += e.PFSReads
		}
	}
	if post1 == 0 {
		t.Fatal("baseline shows no recache traffic")
	}
	if postRepl >= post1/2 {
		t.Errorf("replication should absorb most refetches: repl=%d base=%d", postRepl, post1)
	}
}

func TestReplicationNoFailureIdentical(t *testing.T) {
	// Without failures, replication must not change epoch timing (pushes
	// are off the critical path).
	a := Run(testConfig(16, ftcache.KindNVMe))
	cfg := testConfig(16, ftcache.KindNVMe)
	cfg.Replication = 3
	b := Run(cfg)
	if a.Total != b.Total {
		t.Errorf("replication changed no-failure total: %v vs %v", a.Total, b.Total)
	}
}

func TestExtensionExperimentsRunAtTinyScale(t *testing.T) {
	// Smoke the experiment harness wrappers (see package experiments for
	// the shape assertions).
	cfg := testConfig(8, ftcache.KindNVMe)
	cfg.Replication = 2
	cfg.Failures = RandomFailures(2, cfg.Epochs, 3)
	res := Run(cfg)
	if res.Aborted || len(res.Epochs) != cfg.Epochs {
		t.Fatalf("run: %+v", res)
	}
}
