package trainsim

import (
	"fmt"
	"time"

	"repro/internal/dltrain"
	"repro/internal/ftcache"
	"repro/internal/hashring"
	"repro/internal/sim"
	"repro/internal/xhash"
)

// rng is a tiny deterministic generator (splitmix64) so simulation runs
// are exactly reproducible for a given seed.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng { return &rng{state: uint64(seed)*2654435761 + 1} }

func (r *rng) next() uint64 { return xhash.SplitMix64(&r.state) }

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// EpochResult describes one completed epoch of a simulated run.
type EpochResult struct {
	Epoch    int
	Duration time.Duration
	// Workers is the live rank count that completed the epoch.
	Workers int
	// Failures counts failures (and hence rollbacks) within the epoch.
	Failures int
	// PostFailure is true when the epoch ran with at least one node
	// already lost (for FT w/ PFS this means redirection was active).
	PostFailure bool
	// PFSReads during the epoch (including its rollback passes).
	PFSReads int64
}

// Result is the outcome of one simulated run.
type Result struct {
	Strategy string
	Nodes    int
	Total    time.Duration
	Epochs   []EpochResult
	Aborted  bool
	Restarts int
	PFSReads int64
}

// CleanEpochMean averages post-warmup epochs without failures and
// without active redirection — the "no failure" reference of Fig 6(a).
func (r Result) CleanEpochMean() time.Duration {
	var sum time.Duration
	n := 0
	for _, e := range r.Epochs {
		if e.Epoch == 0 || e.Failures > 0 || e.PostFailure {
			continue
		}
		sum += e.Duration
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// VictimEpochMean averages epochs in which a failure struck.
func (r Result) VictimEpochMean() time.Duration {
	var sum time.Duration
	n := 0
	for _, e := range r.Epochs {
		if e.Failures == 0 {
			continue
		}
		sum += e.Duration
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// PostFailureEpochMean averages failure-free epochs that ran with lost
// nodes (FT w/ PFS steady-state redirection epochs).
func (r Result) PostFailureEpochMean() time.Duration {
	var sum time.Duration
	n := 0
	for _, e := range r.Epochs {
		if e.Failures > 0 || !e.PostFailure || e.Epoch == 0 {
			continue
		}
		sum += e.Duration
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// sample classes on the read path.
const (
	classLocal     = iota // cached on the reader's own NVMe
	classRemote           // cached on a remote NVMe
	classPFSServer        // uncached: owner fetches from PFS, then caches
	classPFSDirect        // FT w/ PFS: client reads PFS directly, never cached
)

type model struct {
	cfg Config
	eng *sim.Engine
	rng *rng

	paths  []string
	owner  []int32 // current owner rank
	cached []bool
	lost   []bool  // FT w/ PFS: permanently redirected to PFS
	repl   []uint8 // surviving cached copies (replication extension)

	ring      *hashring.Ring // FT w/ NVMe only
	rankOf    map[hashring.NodeID]int32
	nodeNames []hashring.NodeID

	live     []int32 // live rank indices
	aliveMap []bool

	// run state
	epoch      int
	step       int
	steps      int
	order      []int
	epochStart time.Duration
	epochFails int
	epochPFS   int64
	anyLost    bool

	pendingTimed []int // indices into cfg.Failures fired by absolute time
	firedFail    []bool

	res Result

	// scratch
	touched    []int32
	sCompute   []time.Duration
	sHidden    []time.Duration
	sPFSCount  []int32 // server-mediated PFS fetches (recache, cold)
	sPFSDirect []int32 // client-direct PFS reads (FT w/ PFS redirection)
	sPFSAccum  []time.Duration
	fetchedBuf []int32
}

// Run executes one simulated training run.
func Run(cfg Config) Result {
	if cfg.Nodes <= 0 || cfg.Epochs <= 0 || cfg.LocalBatch <= 0 {
		panic("trainsim: Nodes, Epochs, LocalBatch must be positive")
	}
	m := &model{
		cfg: cfg,
		eng: sim.New(),
		rng: newRNG(cfg.Seed),
	}
	m.init()
	m.eng.At(0, m.startEpoch)
	m.eng.Run()
	m.res.Total = m.eng.Now()
	m.res.Strategy = string(cfg.Strategy)
	m.res.Nodes = cfg.Nodes
	return m.res
}

func (m *model) init() {
	f := m.cfg.Dataset.NumFiles
	m.paths = make([]string, f)
	for i := range m.paths {
		m.paths[i] = m.cfg.Dataset.FilePath(i)
	}
	m.owner = make([]int32, f)
	m.cached = make([]bool, f)
	m.lost = make([]bool, f)
	m.repl = make([]uint8, f)
	m.firedFail = make([]bool, len(m.cfg.Failures))

	m.nodeNames = make([]hashring.NodeID, m.cfg.Nodes)
	m.rankOf = make(map[hashring.NodeID]int32, m.cfg.Nodes)
	for i := range m.nodeNames {
		m.nodeNames[i] = hashring.NodeID(fmt.Sprintf("node-%04d", i))
		m.rankOf[m.nodeNames[i]] = int32(i)
	}

	switch m.cfg.Strategy {
	case ftcache.KindNVMe:
		m.ring = hashring.NewWithNodes(
			hashring.Config{VirtualNodes: m.cfg.VirtualNodes}, m.nodeNames)
		for i, p := range m.paths {
			o, _ := m.ring.Owner(p)
			m.owner[i] = m.rankOf[o]
		}
	default: // NoFT and FT w/ PFS use HVAC's static modulo placement
		for i, p := range m.paths {
			m.owner[i] = int32(xhash.FNV1aString(p) % uint64(m.cfg.Nodes))
		}
	}

	m.live = make([]int32, m.cfg.Nodes)
	m.aliveMap = make([]bool, m.cfg.Nodes)
	for i := range m.live {
		m.live[i] = int32(i)
		m.aliveMap[i] = true
	}

	m.touched = make([]int32, 0, m.cfg.Nodes)
	m.sCompute = make([]time.Duration, m.cfg.Nodes)
	m.sHidden = make([]time.Duration, m.cfg.Nodes)
	m.sPFSCount = make([]int32, m.cfg.Nodes)
	m.sPFSDirect = make([]int32, m.cfg.Nodes)
	m.sPFSAccum = make([]time.Duration, m.cfg.Nodes)
	m.fetchedBuf = make([]int32, 0, m.cfg.LocalBatch*m.cfg.Nodes)

	// Absolute-time failures become engine events that arm a pending flag;
	// the next step boundary applies them (a failure manifests to peers
	// as timeouts on in-flight requests, observed at the barrier).
	for i, fs := range m.cfg.Failures {
		if fs.At > 0 {
			idx := i
			m.eng.At(fs.At, func() {
				if !m.firedFail[idx] && !m.res.Aborted {
					m.pendingTimed = append(m.pendingTimed, idx)
				}
			})
		}
	}
}

func (m *model) startEpoch() {
	if m.res.Aborted {
		return
	}
	m.order = dltrain.Shuffle(m.cfg.Dataset.NumFiles, m.cfg.Seed, m.epoch)
	m.steps = m.stepsPerEpoch()
	m.step = 0
	m.epochStart = m.eng.Now()
	m.epochFails = 0
	m.epochPFS = 0
	m.runStep()
}

// stepsPerEpoch derives the step count from the live rank set: the
// local batch is fixed, so fewer ranks mean a smaller global batch and
// more steps.
func (m *model) stepsPerEpoch() int {
	chunk := m.cfg.LocalBatch * len(m.live)
	if chunk <= 0 {
		return 0
	}
	return (len(m.order) + chunk - 1) / chunk
}

// resumeEpoch restarts the current epoch after a rollback without
// resetting its wall-clock start or failure count. The step count is
// recomputed for the shrunken communicator.
func (m *model) resumeEpoch() {
	if m.res.Aborted {
		return
	}
	m.steps = m.stepsPerEpoch()
	m.step = 0
	m.runStep()
}

// dueFailure returns the index of an injection due at this boundary.
func (m *model) dueFailure() (int, bool) {
	if len(m.pendingTimed) > 0 {
		idx := m.pendingTimed[0]
		m.pendingTimed = m.pendingTimed[1:]
		return idx, true
	}
	for i, fs := range m.cfg.Failures {
		if m.firedFail[i] || fs.At > 0 {
			continue
		}
		if fs.Epoch == m.epoch && m.step == int(fs.Frac*float64(m.steps)) {
			return i, true
		}
	}
	return 0, false
}

func (m *model) runStep() {
	if idx, ok := m.dueFailure(); ok {
		m.firedFail[idx] = true
		m.applyFailure(m.cfg.Failures[idx])
		return
	}
	dt := m.stepTime()
	m.eng.After(dt, func() {
		m.step++
		if m.step >= m.steps {
			m.endEpoch()
			return
		}
		m.runStep()
	})
}

func (m *model) endEpoch() {
	m.eng.After(m.cfg.EpochOverhead, func() {
		m.res.Epochs = append(m.res.Epochs, EpochResult{
			Epoch:       m.epoch,
			Duration:    m.eng.Now() - m.epochStart,
			Workers:     len(m.live),
			Failures:    m.epochFails,
			PostFailure: m.anyLost,
			PFSReads:    m.epochPFS,
		})
		m.epoch++
		if m.epoch >= m.cfg.Epochs {
			return
		}
		m.startEpoch()
	})
}

func (m *model) applyFailure(fs FailureSpec) {
	victimRank := int32(-1)
	if fs.Node >= 0 && fs.Node < m.cfg.Nodes && m.aliveMap[fs.Node] {
		victimRank = int32(fs.Node)
	} else {
		if len(m.live) > 1 {
			victimRank = m.live[m.rng.intn(len(m.live))]
		}
	}
	if victimRank < 0 {
		// No viable victim; ignore the event and continue the step.
		m.runStep()
		return
	}

	m.epochFails++
	m.res.Restarts++
	m.anyLost = true

	// Remove the rank.
	m.aliveMap[victimRank] = false
	kept := m.live[:0]
	for _, r := range m.live {
		if r != victimRank {
			kept = append(kept, r)
		}
	}
	m.live = kept

	switch m.cfg.Strategy {
	case ftcache.KindNoFT:
		m.res.Aborted = true
		// Job dies once detection concludes; account the dead time.
		m.eng.After(m.cfg.DetectionTime, func() {})
		return

	case ftcache.KindPFS:
		for i := range m.owner {
			if m.owner[i] == victimRank {
				m.lost[i] = true
			}
		}

	case ftcache.KindNVMe:
		victim := m.nodeNames[victimRank]
		// With replication active, the victim may hold secondary copies
		// of files it does not own; every such replica dies with it.
		if m.cfg.Replication > 1 {
			for i := range m.repl {
				if m.repl[i] < 2 || m.owner[i] == victimRank {
					continue // owner-held copies handled below
				}
				holders, ok := m.ring.Owners(m.paths[i], int(m.repl[i]))
				if !ok {
					continue
				}
				for _, h := range holders {
					if h == victim {
						m.repl[i]--
						break
					}
				}
			}
		}
		m.ring.Remove(victim)
		for i := range m.owner {
			if m.owner[i] == victimRank {
				o, ok := m.ring.Owner(m.paths[i])
				if !ok {
					m.lost[i] = true // no servers left at all
					continue
				}
				m.owner[i] = m.rankOf[o]
				if m.repl[i] > 1 {
					// Replication extension: the ring's new owner is the
					// clockwise successor — exactly the node holding the
					// next replica. The copy survives; one replica gone.
					m.repl[i]--
				} else {
					m.cached[i] = false // the only copy died with the node
					m.repl[i] = 0
				}
			}
		}
	}

	if len(m.live) == 0 {
		m.res.Aborted = true
		return
	}
	// Detection (timeouts accumulating to TIMEOUT_LIMIT) plus Horovod
	// elastic resumption, then the epoch restarts from its beginning.
	m.eng.After(m.cfg.DetectionTime+m.cfg.ElasticRestartCost, m.resumeEpoch)
}

// ftOverhead is the per-read bookkeeping cost of the FT machinery.
func (m *model) ftOverhead() time.Duration {
	if m.cfg.Strategy == ftcache.KindNoFT {
		return 0
	}
	return m.cfg.FTReadOverhead
}

// stepTime computes the duration of the current global step: per-rank
// compute and I/O with the barrier max, PFS contention shared across the
// step's PFS readers, cold reads unhidden by the input pipeline.
func (m *model) stepTime() time.Duration {
	nLive := len(m.live)
	chunk := m.cfg.LocalBatch * nLive
	lo := m.step * chunk
	hi := lo + chunk
	if hi > len(m.order) {
		hi = len(m.order)
	}
	if nLive == 0 || hi <= lo {
		return m.cfg.StepOverhead
	}

	m.touched = m.touched[:0]
	m.fetchedBuf = m.fetchedBuf[:0]
	ftOv := m.ftOverhead()
	size := m.cfg.Dataset.FileBytes

	// Pass 1: classify reads, accumulate compute/hidden I/O, count PFS
	// readers (their service time needs the step's PFS concurrency).
	for j := lo; j < hi; j++ {
		f := m.order[j]
		reader := m.live[(j-lo)%nLive]
		if m.sCompute[reader] == 0 && m.sHidden[reader] == 0 &&
			m.sPFSCount[reader] == 0 && m.sPFSDirect[reader] == 0 {
			m.touched = append(m.touched, reader)
		}
		m.sCompute[reader] += m.cfg.ComputePerSample + ftOv

		class := m.classify(int32(f), reader)
		switch class {
		case classLocal:
			m.sHidden[reader] += m.cfg.NVMe.ReadTime(size)
		case classRemote:
			m.sHidden[reader] += m.cfg.Net.TransferTime(size) + m.cfg.NVMe.ReadTime(size)
		case classPFSServer:
			m.sPFSCount[reader]++
			if m.owner[f] != reader {
				m.sPFSAccum[reader] += m.cfg.Net.TransferTime(size)
			}
			m.fetchedBuf = append(m.fetchedBuf, int32(f))
			m.epochPFS++
			m.res.PFSReads++
		case classPFSDirect:
			m.sPFSDirect[reader]++
			m.epochPFS++
			m.res.PFSReads++
		}
	}

	// PFS contention (§II-A): the step's PFS ops queue on the metadata
	// service — a rank's pipelined opens wait out the step-wide queue
	// depth once — and all transfers share the aggregate bandwidth
	// across the ranks reading the PFS this step.
	kOps, kRanks := 0, 0
	for _, r := range m.touched {
		if c := m.sPFSCount[r] + m.sPFSDirect[r]; c > 0 {
			kOps += int(c)
			kRanks++
		}
	}
	var metaWait, dataTime time.Duration
	if kOps > 0 {
		metaWait = m.cfg.PFS.MetadataTime(kOps)
		dataTime = m.cfg.PFS.DataTime(size, kRanks)
	}
	directFactor := m.cfg.DirectPFSFactor
	if directFactor <= 0 {
		directFactor = 1
	}

	// Pass 2: per-rank step time; barrier max.
	var maxRank time.Duration
	for _, r := range m.touched {
		unhidden := m.sPFSAccum[r]
		if m.sPFSCount[r] > 0 || m.sPFSDirect[r] > 0 {
			unhidden += metaWait + time.Duration(m.sPFSCount[r])*dataTime
		}
		if m.sPFSDirect[r] > 0 {
			direct := time.Duration(float64(metaWait+dataTime) * directFactor)
			unhidden += time.Duration(m.sPFSDirect[r]) * direct
		}
		t := m.sCompute[r]
		if m.sHidden[r] > t {
			t = m.sHidden[r] // input pipeline couldn't keep up
		}
		t += unhidden
		if t > maxRank {
			maxRank = t
		}
		m.sCompute[r], m.sHidden[r], m.sPFSAccum[r] = 0, 0, 0
		m.sPFSCount[r], m.sPFSDirect[r] = 0, 0
	}

	// Server-side fetches populate the owners' NVMe (data mover); with
	// replication the client fans the object out to the secondary owners
	// asynchronously (off the critical path).
	replTarget := uint8(1)
	if m.cfg.Replication > 1 {
		r := m.cfg.Replication
		if r > len(m.live) {
			r = len(m.live)
		}
		if r > 255 {
			r = 255
		}
		replTarget = uint8(r)
	}
	for _, f := range m.fetchedBuf {
		m.cached[f] = true
		m.repl[f] = replTarget
	}

	return maxRank + m.cfg.StepOverhead
}

func (m *model) classify(f, reader int32) int {
	if m.lost[f] {
		return classPFSDirect
	}
	if !m.cached[f] {
		return classPFSServer
	}
	if m.owner[f] == reader {
		return classLocal
	}
	return classRemote
}
