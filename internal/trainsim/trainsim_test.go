package trainsim

import (
	"testing"
	"time"

	"repro/internal/ftcache"
	"repro/internal/storage"
	"repro/internal/workload"
)

// testConfig is a scaled-down geometry that keeps tests fast while
// preserving the model's mechanics (many files per node, many steps).
func testConfig(nodes int, strategy ftcache.StrategyKind) Config {
	cfg := Frontier(nodes, strategy)
	cfg.Dataset = workload.Dataset{
		Name: "t", Prefix: "t", NumFiles: 8192, FileBytes: 2_600_000,
	}
	cfg.LocalBatch = 8
	cfg.Epochs = 5
	return cfg
}

func TestColdFirstEpochThenCached(t *testing.T) {
	res := Run(testConfig(16, ftcache.KindNVMe))
	if res.Aborted {
		t.Fatal("no-failure run aborted")
	}
	if len(res.Epochs) != 5 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	e0 := res.Epochs[0]
	if e0.PFSReads != 8192 {
		t.Errorf("first epoch PFS reads = %d, want 8192 (cold cache)", e0.PFSReads)
	}
	for _, e := range res.Epochs[1:] {
		if e.PFSReads != 0 {
			t.Errorf("epoch %d PFS reads = %d, want 0 (fully cached)", e.Epoch, e.PFSReads)
		}
		if e.Duration >= e0.Duration {
			t.Errorf("epoch %d (%v) not faster than cold epoch (%v)", e.Epoch, e.Duration, e0.Duration)
		}
	}
	if res.PFSReads != 8192 {
		t.Errorf("total PFS reads = %d", res.PFSReads)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := testConfig(16, ftcache.KindNVMe)
	cfg.Failures = RandomFailures(2, cfg.Epochs, 9)
	a := Run(cfg)
	b := Run(cfg)
	if a.Total != b.Total || a.PFSReads != b.PFSReads || a.Restarts != b.Restarts {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestNoFTAbortsOnFailure(t *testing.T) {
	cfg := testConfig(8, ftcache.KindNoFT)
	cfg.Failures = []FailureSpec{{Epoch: 1, Frac: 0.5, Node: 3}}
	res := Run(cfg)
	if !res.Aborted {
		t.Fatal("NoFT run did not abort")
	}
	if len(res.Epochs) != 1 {
		t.Errorf("completed epochs = %d, want 1", len(res.Epochs))
	}
}

func TestNoFTFastestWithoutFailures(t *testing.T) {
	// Fig 5(a): NoFT consistently best because FT bookkeeping costs.
	noft := Run(testConfig(16, ftcache.KindNoFT))
	fpfs := Run(testConfig(16, ftcache.KindPFS))
	fnvme := Run(testConfig(16, ftcache.KindNVMe))
	if noft.Total >= fpfs.Total || noft.Total >= fnvme.Total {
		t.Errorf("NoFT (%v) should beat FT-PFS (%v) and FT-NVMe (%v)",
			noft.Total, fpfs.Total, fnvme.Total)
	}
	// But only slightly: within ~10%.
	if float64(fnvme.Total) > 1.10*float64(noft.Total) {
		t.Errorf("FT overhead too large: %v vs %v", fnvme.Total, noft.Total)
	}
}

func TestPFSRedirectPaysEveryEpoch(t *testing.T) {
	cfg := testConfig(16, ftcache.KindPFS)
	cfg.Failures = []FailureSpec{{Epoch: 1, Frac: 0.1, Node: 5}}
	res := Run(cfg)
	if res.Aborted {
		t.Fatal("aborted")
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	// Epochs 2..4 run failure-free but keep hitting the PFS for the lost
	// files, with identical read counts.
	var post []int64
	for _, e := range res.Epochs {
		if e.Epoch >= 2 {
			if !e.PostFailure {
				t.Errorf("epoch %d should be post-failure", e.Epoch)
			}
			if e.PFSReads == 0 {
				t.Errorf("epoch %d: redirection should hit PFS", e.Epoch)
			}
			post = append(post, e.PFSReads)
		}
	}
	for i := 1; i < len(post); i++ {
		if post[i] != post[0] {
			t.Errorf("redirection reads vary: %v", post)
		}
	}
}

func TestRingRecachePaysOnce(t *testing.T) {
	cfg := testConfig(16, ftcache.KindNVMe)
	cfg.Failures = []FailureSpec{{Epoch: 1, Frac: 0.1, Node: 5}}
	res := Run(cfg)
	if res.Aborted {
		t.Fatal("aborted")
	}
	// The victim epoch recaches the lost files; later epochs are clean.
	victimReads := int64(0)
	for _, e := range res.Epochs {
		switch {
		case e.Epoch == 1:
			victimReads = e.PFSReads
			if victimReads == 0 {
				t.Error("victim epoch should recache from PFS")
			}
		case e.Epoch >= 2:
			if e.PFSReads != 0 {
				t.Errorf("epoch %d PFS reads = %d; recaching should have healed", e.Epoch, e.PFSReads)
			}
		}
	}
	// Lost files ≈ F/N; recache reads should be within 2x of that
	// (shuffled re-pass can touch a file before/after rollback).
	expect := int64(8192 / 16)
	if victimReads < expect/2 || victimReads > expect*3 {
		t.Errorf("victim recache reads = %d, expected around %d", victimReads, expect)
	}
}

// TestHeadline is the paper's central comparison: with failures, FT w/
// NVMe beats FT w/ PFS, and both lose to the no-failure baseline.
func TestHeadline(t *testing.T) {
	fail := []FailureSpec{
		{Epoch: 1, Frac: 0.2, Node: -1},
		{Epoch: 2, Frac: 0.4, Node: -1},
		{Epoch: 3, Frac: 0.1, Node: -1},
	}
	mk := func(kind ftcache.StrategyKind, failures []FailureSpec) Result {
		cfg := testConfig(32, kind)
		cfg.Failures = failures
		return Run(cfg)
	}
	base := mk(ftcache.KindNVMe, nil)
	nvme := mk(ftcache.KindNVMe, fail)
	pfs := mk(ftcache.KindPFS, fail)
	if nvme.Aborted || pfs.Aborted {
		t.Fatal("FT runs aborted")
	}
	if nvme.Total <= base.Total {
		t.Errorf("failures should cost time: %v vs base %v", nvme.Total, base.Total)
	}
	if pfs.Total <= nvme.Total {
		t.Errorf("FT w/ PFS (%v) should be slower than FT w/ NVMe (%v)", pfs.Total, nvme.Total)
	}
}

func TestStrongScaling(t *testing.T) {
	prev := time.Duration(0)
	for i, n := range []int{64, 32, 16, 8} {
		res := Run(testConfig(n, ftcache.KindNVMe))
		if i > 0 && res.Total <= prev {
			t.Errorf("%d nodes (%v) should be slower than %d nodes (%v)",
				n, res.Total, n*2, prev)
		}
		prev = res.Total
	}
}

func TestVictimAndCleanEpochMeans(t *testing.T) {
	cfg := testConfig(16, ftcache.KindNVMe)
	cfg.Failures = []FailureSpec{{Epoch: 2, Frac: 0.3, Node: -1}}
	res := Run(cfg)
	clean := res.CleanEpochMean()
	victim := res.VictimEpochMean()
	if clean <= 0 || victim <= 0 {
		t.Fatalf("means: clean=%v victim=%v", clean, victim)
	}
	if victim <= clean {
		t.Errorf("victim epoch (%v) should exceed clean epoch (%v)", victim, clean)
	}
	// A no-failure run has no victim or post-failure epochs.
	base := Run(testConfig(16, ftcache.KindNVMe))
	if base.VictimEpochMean() != 0 || base.PostFailureEpochMean() != 0 {
		t.Error("no-failure run should have zero victim/post-failure means")
	}
}

func TestPostFailureEpochMeanPFS(t *testing.T) {
	cfg := testConfig(16, ftcache.KindPFS)
	cfg.Failures = []FailureSpec{{Epoch: 1, Frac: 0.2, Node: -1}}
	res := Run(cfg)
	post := res.PostFailureEpochMean()
	clean := Run(testConfig(16, ftcache.KindPFS)).CleanEpochMean()
	if post <= clean {
		t.Errorf("redirection epochs (%v) should exceed clean epochs (%v)", post, clean)
	}
}

func TestAbsoluteTimeFailure(t *testing.T) {
	cfg := testConfig(8, ftcache.KindNVMe)
	// Fire well into the run by absolute virtual time.
	probe := Run(cfg)
	cfg.Failures = []FailureSpec{{At: probe.Total / 2, Node: -1}}
	res := Run(cfg)
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
	if res.Aborted {
		t.Error("aborted")
	}
}

func TestAllNodesFailedAborts(t *testing.T) {
	cfg := testConfig(2, ftcache.KindNVMe)
	cfg.Failures = []FailureSpec{
		{Epoch: 1, Frac: 0.1, Node: 0},
		{Epoch: 1, Frac: 0.2, Node: 1},
	}
	res := Run(cfg)
	// With one node left the run continues; both gone → abort. Victim
	// selection never picks the last node via random choice, so pin them.
	if !res.Aborted && len(res.Epochs) == 5 {
		// Acceptable: second failure may be unapplicable if node 1 is the
		// last one; verify at least one restart happened.
		if res.Restarts == 0 {
			t.Error("expected at least one restart")
		}
		return
	}
}

func TestRandomFailuresGenerator(t *testing.T) {
	fs := RandomFailures(5, 5, 3)
	if len(fs) != 5 {
		t.Fatalf("len = %d", len(fs))
	}
	for _, f := range fs {
		if f.Epoch < 1 || f.Epoch > 4 {
			t.Errorf("epoch %d outside (0,5)", f.Epoch)
		}
		if f.Frac < 0 || f.Frac >= 1 {
			t.Errorf("frac %v out of range", f.Frac)
		}
		if f.Node != -1 {
			t.Errorf("node should be random (-1)")
		}
	}
	// Deterministic per seed.
	gs := RandomFailures(5, 5, 3)
	for i := range fs {
		if fs[i] != gs[i] {
			t.Error("generator not deterministic")
		}
	}
}

func TestFrontierConfigSanity(t *testing.T) {
	cfg := Frontier(1024, ftcache.KindNVMe)
	if cfg.Dataset.NumFiles != 524288 {
		t.Errorf("dataset files = %d", cfg.Dataset.NumFiles)
	}
	if cfg.Epochs != 5 || cfg.VirtualNodes != 100 {
		t.Errorf("epochs=%d vnodes=%d", cfg.Epochs, cfg.VirtualNodes)
	}
	if cfg.PFS.PerClientCap >= float64(storage.GiB) {
		t.Errorf("PFS per-client cap should reflect small random reads")
	}
}

func BenchmarkRunScaled(b *testing.B) {
	cfg := testConfig(64, ftcache.KindNVMe)
	cfg.Failures = RandomFailures(2, cfg.Epochs, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(cfg)
	}
}
