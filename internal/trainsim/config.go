// Package trainsim models FT-Cache training runs at Frontier scale
// (64–1024 nodes) on the discrete-event engine, reproducing the paper's
// Fig 5(a), 5(b) and 6(a).
//
// What is modelled mechanistically (not curve-fit):
//
//   - real placement: the same hash-ring / modulo code paths the live
//     system uses decide which node owns every one of the 524,288 files;
//   - cold first epoch: every first touch is a PFS fetch that then
//     populates the owner's NVMe;
//   - batch-synchronous steps: a step ends when the slowest node ends
//     (the straggler barrier), and cold/lost PFS reads cannot be hidden
//     behind compute while cached reads can (pipeline prefetch);
//   - PFS contention: concurrent PFS readers share aggregate bandwidth
//     and queue on the metadata service;
//   - strategy semantics: NoFT aborts; FT w/ PFS redirects lost files to
//     the PFS in every subsequent epoch; FT w/ NVMe re-owns lost files on
//     the ring and pays one PFS fetch each;
//   - Horovod elastic: a failure rolls the epoch back to its start with
//     one fewer rank plus a fixed resumption cost.
//
// Absolute times depend on calibration constants (documented below and
// in EXPERIMENTS.md); shapes and orderings emerge from the mechanisms.
package trainsim

import (
	"time"

	"repro/internal/ftcache"
	"repro/internal/storage"
	"repro/internal/workload"
)

// FailureSpec schedules one node failure.
type FailureSpec struct {
	// At, when positive, fires at this absolute virtual time.
	At time.Duration
	// Otherwise the failure fires in the given epoch at the given
	// fraction of its steps (0 ≤ Frac < 1).
	Epoch int
	Frac  float64
	// Node is the victim's rank index; -1 picks a random live rank.
	Node int
}

// Config parameterizes one simulated run.
type Config struct {
	// Nodes is the number of compute nodes (ranks); one HVAC server and
	// one trainer rank per node, as on Frontier.
	Nodes int
	// Dataset geometry (file count and size drive all I/O).
	Dataset workload.Dataset
	// Epochs to train (the paper runs 5).
	Epochs int
	// LocalBatch is the per-node samples per step. Horovod elastic keeps
	// the local batch fixed when ranks die, so the global batch is
	// LocalBatch × live ranks and an epoch has
	// ceil(files / (LocalBatch × live)) steps.
	LocalBatch int
	// Strategy selects the fault-tolerance policy.
	Strategy ftcache.StrategyKind
	// VirtualNodes per physical node for the ring strategy.
	VirtualNodes int
	// Replication (> 1, ring strategy only) keeps that many cached
	// copies per file on distinct ring owners — the replication
	// extension. A failure then re-routes to a node that already holds
	// the data: no PFS fetch until a file's replicas are exhausted.
	Replication int
	// Seed drives shuffles and random victim selection.
	Seed int64

	// Device models.
	NVMe storage.NVMeModel
	Net  storage.NetworkModel
	PFS  storage.PFSModel

	// ComputePerSample is node-level GPU time per sample (8 GPUs
	// aggregated).
	ComputePerSample time.Duration
	// StepOverhead is the fixed allreduce/barrier cost per step.
	StepOverhead time.Duration
	// EpochOverhead is the fixed per-epoch cost (shuffle, bookkeeping).
	EpochOverhead time.Duration
	// FTReadOverhead is the per-read client bookkeeping cost of the
	// fault-tolerance machinery (timeout monitoring, mutex-guarded maps);
	// applied to FT strategies only. This is what makes NoFT slightly
	// fastest in Fig 5(a).
	FTReadOverhead time.Duration
	// DetectionTime is TTL × TIMEOUT_LIMIT: dead time between a failure
	// and its declaration by the detector.
	DetectionTime time.Duration
	// ElasticRestartCost is Horovod elastic's fixed resumption cost
	// (communicator rebuild, state broadcast).
	ElasticRestartCost time.Duration
	// DirectPFSFactor scales the cost of *client-direct* PFS reads (the
	// FT w/ PFS redirection path) relative to server-mediated fetches.
	// The original HVAC paper's core result is that routing reads
	// through the cache daemons beats direct Lustre access even when the
	// data ultimately comes from the PFS: the daemon issues large
	// sequential reads from a dedicated I/O path, while a direct read
	// funnels through LD_PRELOAD into the framework's input pipeline.
	// <= 0 selects 1 (no penalty).
	DirectPFSFactor float64

	// Failures is the injection plan.
	Failures []FailureSpec
}

// Frontier returns the calibrated configuration for the paper's setup at
// the given scale and strategy. See EXPERIMENTS.md for the calibration
// rationale; the anchor is the published relative overheads, not
// absolute runtimes.
func Frontier(nodes int, strategy ftcache.StrategyKind) Config {
	pfs := storage.FrontierOrion()
	// DL reads on the shared, HDD-backed Orion capacity tier are ~2.6 MB
	// and random; the effective per-stream rate is far below marketing
	// sequential numbers (≈8.7 ms per sample at 300 MB/s). Steps that
	// touch the PFS additionally stall on the metadata service (§II-A),
	// ~1 ms per queued op at 4-wide effective parallelism, saturating at
	// 24 ms under large bursts where readahead and RPC batching kick in.
	pfs.PerClientCap = 300 * storage.MiB
	pfs.MetadataOpTime = time.Millisecond
	pfs.MetadataParallelism = 4
	pfs.MetadataWaitCap = 24 * time.Millisecond
	return Config{
		Nodes:              nodes,
		Dataset:            workload.CosmoFlowTrain(),
		Epochs:             5,
		LocalBatch:         8,
		Strategy:           strategy,
		VirtualNodes:       100,
		Seed:               1,
		NVMe:               storage.FrontierNVMe(),
		Net:                storage.FrontierNetwork(),
		PFS:                pfs,
		ComputePerSample:   70 * time.Millisecond,
		StepOverhead:       2 * time.Millisecond,
		EpochOverhead:      5 * time.Second,
		FTReadOverhead:     1500 * time.Microsecond,
		DetectionTime:      2 * time.Second, // TTL 1s × limit 2
		ElasticRestartCost: 8 * time.Second,
		DirectPFSFactor:    4.0,
	}
}

// RandomFailures builds the paper's Fig 5(b) plan: count single-node
// failures at random points strictly after the first epoch, random
// victims. Deterministic for a given seed.
func RandomFailures(count, epochs int, seed int64) []FailureSpec {
	rng := newRNG(seed)
	out := make([]FailureSpec, count)
	for i := range out {
		// Epochs 1..epochs-1 (0-based), uniformly. Fractions are
		// early-in-epoch: the artifact arms its SLURM DRAIN at epoch
		// boundaries, so the strike lands shortly after an epoch starts.
		// (This is also what keeps rollback redo small enough to match
		// the paper's published overheads — see EXPERIMENTS.md.)
		epoch := 1 + int(rng.next()%uint64(epochs-1))
		frac := float64(rng.next()%1000) / 1000 * 0.05
		out[i] = FailureSpec{Epoch: epoch, Frac: frac, Node: -1}
	}
	return out
}
