package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/storage"
)

func newCkpt(t *testing.T, keep int) (*Checkpointer, *storage.NVMe, *storage.PFS) {
	t.Helper()
	local := storage.NewNVMe(0)
	pfs := storage.NewPFS()
	c, err := New(local, pfs, Config{Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	return c, local, pfs
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	c, _, _ := newCkpt(t, 2)
	state := []byte("model-weights-epoch-3")
	if err := c.Save(Meta{Epoch: 3, Step: 120, Workers: 8}, state); err != nil {
		t.Fatal(err)
	}
	m, got, err := c.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 3 || m.Step != 120 || m.Workers != 8 {
		t.Errorf("meta = %+v", m)
	}
	if !bytes.Equal(got, state) {
		t.Errorf("state = %q", got)
	}
}

func TestLatestPicksNewest(t *testing.T) {
	c, _, _ := newCkpt(t, 5)
	for e := 1; e <= 4; e++ {
		if err := c.Save(Meta{Epoch: e, Workers: 4}, []byte(fmt.Sprintf("state-%d", e))); err != nil {
			t.Fatal(err)
		}
	}
	m, state, err := c.Latest()
	if err != nil || m.Epoch != 4 || string(state) != "state-4" {
		t.Errorf("latest = %+v %q %v", m, state, err)
	}
}

func TestRestoreFromPFSWhenLocalLost(t *testing.T) {
	c, local, _ := newCkpt(t, 2)
	c.Save(Meta{Epoch: 2, Workers: 4}, []byte("durable-state"))
	c.Drain()
	// Node dies: its NVMe contents vanish.
	local.Clear()
	m, state, err := c.Latest()
	if err != nil || m.Epoch != 2 || string(state) != "durable-state" {
		t.Errorf("pfs restore = %+v %q %v", m, state, err)
	}
}

func TestNoCheckpoint(t *testing.T) {
	c, _, _ := newCkpt(t, 2)
	if _, _, err := c.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err = %v", err)
	}
}

func TestCorruptionDetectedAndSkipped(t *testing.T) {
	c, local, pfs := newCkpt(t, 5)
	c.Save(Meta{Epoch: 1}, []byte("good-old"))
	c.Save(Meta{Epoch: 2}, []byte("bad-new"))
	c.Drain()

	// Corrupt the newest blob in both tiers.
	path := c.objectPath(Meta{Epoch: 2})
	for _, st := range []storage.Store{local, pfs} {
		blob, err := st.Get(path)
		if err != nil {
			t.Fatal(err)
		}
		evil := append([]byte(nil), blob...)
		evil[len(evil)/2] ^= 0xFF
		st.Put(path, evil)
	}
	m, state, err := c.Latest()
	if err != nil {
		t.Fatalf("restore failed entirely: %v", err)
	}
	if m.Epoch != 1 || string(state) != "good-old" {
		t.Errorf("should have fallen back to intact epoch 1, got %+v %q", m, state)
	}
}

func TestTruncatedBlobRejected(t *testing.T) {
	blob := encode(Meta{Epoch: 1}, []byte("abc"))
	for _, cut := range []int{0, 4, len(blob) - 1} {
		if _, _, err := decode(blob[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("cut=%d err = %v", cut, err)
		}
	}
	// Flip the magic.
	evil := append([]byte(nil), blob...)
	evil[0] ^= 0xFF
	if _, _, err := decode(evil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic err = %v", err)
	}
}

func TestRetention(t *testing.T) {
	c, local, pfs := newCkpt(t, 2)
	for e := 1; e <= 6; e++ {
		c.Save(Meta{Epoch: e}, []byte{byte(e)})
	}
	c.Drain()
	for _, tc := range []struct {
		name string
		st   storage.Store
	}{{"local", local}, {"pfs", pfs}} {
		objs, _ := tc.st.Stats()
		// Keep=2 checkpoints + 1 manifest object.
		if objs != 3 {
			t.Errorf("%s objects = %d, want 3", tc.name, objs)
		}
		if tc.st.Has(c.objectPath(Meta{Epoch: 1})) {
			t.Errorf("%s still holds epoch-1 checkpoint", tc.name)
		}
		if !tc.st.Has(c.objectPath(Meta{Epoch: 6})) {
			t.Errorf("%s missing newest checkpoint", tc.name)
		}
	}
}

func TestPFSOnlyMode(t *testing.T) {
	pfs := storage.NewPFS()
	c, err := New(nil, pfs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Save(Meta{Epoch: 1}, []byte("x"))
	c.Drain()
	if _, state, err := c.Latest(); err != nil || string(state) != "x" {
		t.Errorf("pfs-only restore: %q %v", state, err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Config{}); err == nil {
		t.Error("nil durable store should fail")
	}
}

func TestStepOrderingWithinEpoch(t *testing.T) {
	c, _, _ := newCkpt(t, 5)
	c.Save(Meta{Epoch: 2, Step: 100}, []byte("s100"))
	c.Save(Meta{Epoch: 2, Step: 900}, []byte("s900"))
	c.Save(Meta{Epoch: 2, Step: 50}, []byte("s50"))
	m, state, err := c.Latest()
	if err != nil || m.Step != 900 || string(state) != "s900" {
		t.Errorf("latest = %+v %q %v", m, state, err)
	}
}
