// Package checkpoint is the model-state half of fault-tolerant training.
// FT-Cache protects the *input* data; the model itself survives failures
// through periodic checkpoints (the FastPersist/DeepFreeze line of work
// the paper cites, §I). This package implements the two-tier pattern
// those systems converge on:
//
//   - write the checkpoint to node-local NVMe first (fast, off the
//     training critical path),
//   - drain it to the PFS asynchronously (durable against node loss),
//   - restore from local if present, else from the PFS,
//   - keep a bounded history and garbage-collect the rest.
//
// Every checkpoint carries an xxHash64 integrity seal; a corrupt or
// truncated blob is rejected at load time rather than silently resuming
// from garbage.
package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
	"repro/internal/wire"
	"repro/internal/xhash"
)

// Meta identifies one checkpoint.
type Meta struct {
	// Epoch is the last fully completed epoch.
	Epoch int
	// Step is the global step within the run (0 for epoch-granularity).
	Step int
	// Workers is the rank count that produced the state.
	Workers int
}

// Errors surfaced by the checkpointer.
var (
	// ErrNoCheckpoint: no usable checkpoint exists in either tier.
	ErrNoCheckpoint = errors.New("checkpoint: none available")
	// ErrCorrupt: the stored blob failed its integrity seal.
	ErrCorrupt = errors.New("checkpoint: integrity check failed")
)

const (
	magic      = 0xC4B7
	formatVers = 1
)

// Config tunes a Checkpointer.
type Config struct {
	// Prefix namespaces checkpoint objects in both stores.
	Prefix string
	// Keep is how many recent checkpoints each tier retains; <= 0
	// selects 2 (current + previous, the usual safety margin).
	Keep int
}

// Checkpointer writes and restores checkpoints across the two tiers.
// Safe for concurrent use; Save calls are serialized.
type Checkpointer struct {
	cfg   Config
	local storage.Store // node-local NVMe tier (fast)
	pfs   storage.Store // durable tier

	mu      sync.Mutex
	drainWG sync.WaitGroup
}

// New creates a Checkpointer over a local (may be nil for PFS-only
// operation) and a durable store.
func New(local, pfs storage.Store, cfg Config) (*Checkpointer, error) {
	if pfs == nil {
		return nil, errors.New("checkpoint: durable store is required")
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "checkpoints"
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 2
	}
	return &Checkpointer{cfg: cfg, local: local, pfs: pfs}, nil
}

// objectPath orders lexicographically by (epoch, step) via zero-padding,
// so Latest can sort paths directly.
func (c *Checkpointer) objectPath(m Meta) string {
	return fmt.Sprintf("%s/ckpt-%09d-%09d", c.cfg.Prefix, m.Epoch, m.Step)
}

// encode seals meta+state into one blob.
func encode(m Meta, state []byte) []byte {
	e := wire.NewBuffer(len(state) + 64)
	e.U16(magic).U8(formatVers)
	e.U64(uint64(m.Epoch)).U64(uint64(m.Step)).U64(uint64(m.Workers))
	e.Bytes32(state)
	sum := xhash.XXH64(e.Bytes(), 0)
	e.U64(sum)
	return e.Bytes()
}

// decode verifies the seal and splits the blob.
func decode(blob []byte) (Meta, []byte, error) {
	if len(blob) < 8 {
		return Meta{}, nil, ErrCorrupt
	}
	body, tail := blob[:len(blob)-8], blob[len(blob)-8:]
	d := wire.NewReader(tail)
	if d.U64() != xhash.XXH64(body, 0) {
		return Meta{}, nil, ErrCorrupt
	}
	d = wire.NewReader(body)
	if d.U16() != magic || d.U8() != formatVers {
		return Meta{}, nil, ErrCorrupt
	}
	m := Meta{
		Epoch:   int(d.U64()),
		Step:    int(d.U64()),
		Workers: int(d.U64()),
	}
	state := d.Bytes32()
	if d.Err() != nil {
		return Meta{}, nil, ErrCorrupt
	}
	// Copy out of the blob so callers may retain it.
	return m, append([]byte(nil), state...), nil
}

// Save writes the checkpoint to the local tier (if configured) and
// drains it to the PFS asynchronously. It returns once the local write
// completes — the training loop resumes immediately, as in FastPersist.
func (c *Checkpointer) Save(m Meta, state []byte) error {
	blob := encode(m, state)
	path := c.objectPath(m)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.local != nil {
		if err := c.local.Put(path, blob); err != nil {
			return fmt.Errorf("checkpoint: local write: %w", err)
		}
		//ftclint:ignore lockorder GC runs under mu by design: it serializes the manifest against concurrent saves, and Save is checkpoint-rate, never a request path
		c.addAndGCLocked(c.local, path)
	}
	c.drainWG.Add(1)
	go func(path string, blob []byte) {
		defer c.drainWG.Done()
		if err := c.pfs.Put(path, blob); err != nil {
			return // durable drain is best-effort per save; next save retries
		}
		c.mu.Lock()
		//ftclint:ignore lockorder same manifest serialization as the local-tier GC above; the drain goroutine is off the training loop's critical path
		c.addAndGCLocked(c.pfs, path)
		c.mu.Unlock()
	}(path, blob)
	return nil
}

// Drain blocks until every pending PFS write has landed.
func (c *Checkpointer) Drain() { c.drainWG.Wait() }

// Latest restores the most recent checkpoint, preferring the local tier
// (fast restart on the same node) and falling back to the PFS (restart
// anywhere). Corrupt candidates are skipped in favour of older intact
// ones.
func (c *Checkpointer) Latest() (Meta, []byte, error) {
	if c.local != nil {
		if m, s, err := c.latestFrom(c.local); err == nil {
			return m, s, nil
		}
	}
	return c.latestFrom(c.pfs)
}

// latestFrom scans a tier for the newest intact checkpoint.
func (c *Checkpointer) latestFrom(st storage.Store) (Meta, []byte, error) {
	paths := c.list(st)
	for i := len(paths) - 1; i >= 0; i-- {
		blob, err := st.Get(paths[i])
		if err != nil {
			continue
		}
		m, state, err := decode(blob)
		if err != nil {
			continue // corrupt: try the previous one
		}
		return m, state, nil
	}
	return Meta{}, nil, ErrNoCheckpoint
}

// list returns this prefix's checkpoint paths in ascending (epoch, step)
// order. Store has no native listing, so the checkpointer tracks its own
// objects via a manifest object per tier.
func (c *Checkpointer) list(st storage.Store) []string {
	manifest, err := st.Get(c.manifestPath())
	if err != nil {
		return nil
	}
	var out []string
	for _, line := range strings.Split(string(manifest), "\n") {
		if line != "" {
			out = append(out, line)
		}
	}
	sort.Strings(out)
	return out
}

func (c *Checkpointer) manifestPath() string { return c.cfg.Prefix + "/MANIFEST" }

// writeList persists the manifest for a tier.
func (c *Checkpointer) writeList(st storage.Store, paths []string) {
	sort.Strings(paths)
	_ = st.Put(c.manifestPath(), []byte(strings.Join(paths, "\n")))
}

// addAndGCLocked records a freshly written object in the tier's
// manifest and enforces the retention bound. Caller holds c.mu.
func (c *Checkpointer) addAndGCLocked(st storage.Store, path string) {
	paths := c.list(st)
	seen := false
	for _, p := range paths {
		if p == path {
			seen = true
			break
		}
	}
	if !seen {
		paths = append(paths, path)
		sort.Strings(paths)
	}
	for len(paths) > c.cfg.Keep {
		st.Delete(paths[0])
		paths = paths[1:]
	}
	c.writeList(st, paths)
}
