package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if !almostEq(r.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", r.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if !almostEq(r.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Variance() != 0 {
		t.Error("single observation has zero variance")
	}
	if r.Min() != 3.5 || r.Max() != 3.5 {
		t.Error("min/max of single observation")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	merged := func(a, b []float64) bool {
		var whole, left, right Running
		for _, x := range a {
			whole.Add(x)
			left.Add(x)
		}
		for _, x := range b {
			whole.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		if whole.N() != left.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return almostEq(whole.Mean(), left.Mean(), 1e-6*(1+math.Abs(whole.Mean()))) &&
			almostEq(whole.Variance(), left.Variance(), 1e-6*(1+whole.Variance()))
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		a := randomSlice(rng, rng.Intn(50))
		b := randomSlice(rng, rng.Intn(50))
		if !merged(a, b) {
			t.Fatalf("merge mismatch for lens %d,%d", len(a), len(b))
		}
	}
}

func randomSlice(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.NormFloat64()*10 + 50
	}
	return s
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if !almostEq(StdDev(xs), want, 1e-12) {
		t.Errorf("stddev = %v, want %v", StdDev(xs), want)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolated value.
	if got := Percentile([]float64{10, 20}, 50); !almostEq(got, 15, 1e-9) {
		t.Errorf("P50 of {10,20} = %v, want 15", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should have N=0")
	}
	if s.String() == "" {
		t.Error("summary string should be non-empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 15} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	// -3 clamps into bucket 0; 15 clamps into bucket 4.
	if h.Buckets[0] != 3 { // 0, 1.9, -3
		t.Errorf("bucket 0 = %d, want 3", h.Buckets[0])
	}
	if h.Buckets[4] != 2 { // 9.99, 15
		t.Errorf("bucket 4 = %d, want 2", h.Buckets[4])
	}
	if !almostEq(h.Fraction(0), 3.0/7.0, 1e-12) {
		t.Errorf("fraction(0) = %v", h.Fraction(0))
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Errorf("bounds(1) = [%v,%v), want [2,4)", lo, hi)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCoeffVar(t *testing.T) {
	if CoeffVar([]float64{5, 5, 5}) != 0 {
		t.Error("constant sample should have CV 0")
	}
	if CoeffVar([]float64{0, 0}) != 0 {
		t.Error("zero-mean sample should report CV 0")
	}
	cv := CoeffVar([]float64{10, 20})
	if !almostEq(cv, StdDev([]float64{10, 20})/15, 1e-12) {
		t.Errorf("cv = %v", cv)
	}
}

func TestRunningQuickMeanInRange(t *testing.T) {
	// Property: mean always lies within [min, max].
	f := func(xs []float64) bool {
		var r Running
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true // avoid overflow regimes; not the property under test
			}
			r.Add(x)
		}
		if r.N() > 0 {
			ok = r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
