// Package stats provides the small statistical toolkit used by the
// experiment harnesses: streaming mean/variance, percentiles, histograms,
// and run summaries. The paper reports averages over 3 repeated runs
// (training experiments) and 500 trials (load-distribution simulation)
// with standard deviations; this package computes exactly those.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of float64 observations using Welford's
// algorithm, giving numerically stable mean and variance without storing
// the samples.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the arithmetic mean, or 0 for an empty accumulator.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest observation, or 0 for an empty accumulator.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 for an empty accumulator.
func (r *Running) Max() float64 { return r.max }

// Variance returns the sample variance (n-1 denominator); 0 when n < 2.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Merge combines another accumulator into r (parallel Welford merge),
// so per-goroutine accumulators can be reduced without locking.
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	mean := r.mean + d*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// Mean returns the arithmetic mean of xs; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs; 0 when len < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary is a compact description of a sample used in experiment output.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		StdDev: StdDev(s),
		Min:    s[0],
		P50:    Percentile(s, 50),
		P95:    Percentile(s, 95),
		Max:    s[len(s)-1],
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// Histogram is a fixed-width-bucket histogram over [Lo, Hi). Values
// outside the range are clamped into the first/last bucket so totals are
// preserved.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	total   int
}

// NewHistogram creates a histogram with nbuckets equal-width buckets
// spanning [lo, hi). It panics if nbuckets < 1 or hi <= lo.
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if nbuckets < 1 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, nbuckets)}
}

// Add records x in the appropriate bucket.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
	h.total++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// Fraction returns bucket i's share of the total, or 0 when empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.total)
}

// BucketBounds returns the [lo, hi) range covered by bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// CoeffVar returns the coefficient of variation (stddev/mean) of xs, a
// scale-free imbalance measure used in the load-distribution analysis.
// Returns 0 when the mean is 0.
func CoeffVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}
