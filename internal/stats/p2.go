package stats

import "sort"

// P2Quantile is the Jain & Chlamtac P² algorithm: a streaming estimate
// of one quantile in O(1) memory, no sample buffer. The latency
// observability in the HVAC client uses it to report p50/p95/p99 read
// latencies without allocating per read — exactly what a long-running
// cache daemon needs.
type P2Quantile struct {
	p       float64
	n       int
	q       [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	desired [5]float64
	inc     [5]float64
	initBuf []float64
}

// NewP2Quantile creates an estimator for quantile p ∈ (0, 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: quantile must be in (0,1)")
	}
	e := &P2Quantile{p: p}
	e.desired = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	e.initBuf = make([]float64, 0, 5)
	return e
}

// Add incorporates one observation.
func (e *P2Quantile) Add(x float64) {
	e.n++
	if len(e.initBuf) < 5 {
		e.initBuf = append(e.initBuf, x)
		if len(e.initBuf) == 5 {
			sort.Float64s(e.initBuf)
			for i := 0; i < 5; i++ {
				e.q[i] = e.initBuf[i]
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}

	// Find the cell k containing x and update extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	// Shift positions of markers above the cell.
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.desired[i] += e.inc[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.desired[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			// Piecewise-parabolic prediction.
			qNew := e.parabolic(i, sign)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// N returns the number of observations.
func (e *P2Quantile) N() int { return e.n }

// Value returns the current quantile estimate. With fewer than 5
// observations it falls back to the exact small-sample quantile.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if len(e.initBuf) < 5 {
		s := append([]float64(nil), e.initBuf...)
		sort.Float64s(s)
		return Percentile(s, e.p*100)
	}
	return e.q[2]
}

// LatencyTracker bundles count/mean plus streaming p50/p95/p99 — the
// per-operation observability record used by the cache client.
type LatencyTracker struct {
	mean Running
	p50  *P2Quantile
	p95  *P2Quantile
	p99  *P2Quantile
}

// NewLatencyTracker creates an empty tracker.
func NewLatencyTracker() *LatencyTracker {
	return &LatencyTracker{
		p50: NewP2Quantile(0.50),
		p95: NewP2Quantile(0.95),
		p99: NewP2Quantile(0.99),
	}
}

// Add records one latency observation (any consistent unit).
func (l *LatencyTracker) Add(x float64) {
	l.mean.Add(x)
	l.p50.Add(x)
	l.p95.Add(x)
	l.p99.Add(x)
}

// Snapshot returns the current summary.
func (l *LatencyTracker) Snapshot() LatencySnapshot {
	return LatencySnapshot{
		N:    l.mean.N(),
		Mean: l.mean.Mean(),
		Min:  l.mean.Min(),
		Max:  l.mean.Max(),
		P50:  l.p50.Value(),
		P95:  l.p95.Value(),
		P99:  l.p99.Value(),
	}
}

// LatencySnapshot is a point-in-time latency summary.
type LatencySnapshot struct {
	N              int
	Mean, Min, Max float64
	P50, P95, P99  float64
}
