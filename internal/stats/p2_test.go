package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestP2AgainstExactUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		e := NewP2Quantile(p)
		xs := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			x := rng.Float64() * 100
			e.Add(x)
			xs = append(xs, x)
		}
		exact := Percentile(xs, p*100)
		got := e.Value()
		if math.Abs(got-exact) > 2.0 { // 2% of range on uniform data
			t.Errorf("p=%.2f: P² = %.2f, exact = %.2f", p, got, exact)
		}
	}
}

func TestP2AgainstExactLognormal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewP2Quantile(0.95)
	xs := make([]float64, 0, 30000)
	for i := 0; i < 30000; i++ {
		x := math.Exp(rng.NormFloat64())
		e.Add(x)
		xs = append(xs, x)
	}
	exact := Percentile(xs, 95)
	if rel := math.Abs(e.Value()-exact) / exact; rel > 0.08 {
		t.Errorf("p95 = %.3f, exact = %.3f (rel err %.3f)", e.Value(), exact, rel)
	}
}

func TestP2SmallSamples(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 || e.N() != 0 {
		t.Error("empty estimator should report 0")
	}
	for _, x := range []float64{10, 20, 30} {
		e.Add(x)
	}
	if e.N() != 3 {
		t.Errorf("n = %d", e.N())
	}
	// Exact small-sample median.
	if e.Value() != 20 {
		t.Errorf("median of 3 = %v, want 20", e.Value())
	}
}

func TestP2MonotoneInvariant(t *testing.T) {
	// Marker heights must stay sorted throughout a long stream.
	rng := rand.New(rand.NewSource(3))
	e := NewP2Quantile(0.9)
	for i := 0; i < 50000; i++ {
		e.Add(rng.ExpFloat64() * 1000)
		if e.n >= 5 {
			for j := 1; j < 5; j++ {
				if e.q[j] < e.q[j-1] {
					t.Fatalf("markers unsorted at step %d: %v", i, e.q)
				}
			}
		}
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) should panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestLatencyTracker(t *testing.T) {
	lt := NewLatencyTracker()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		lt.Add(1 + rng.Float64()*9) // uniform [1,10)
	}
	s := lt.Snapshot()
	if s.N != 10000 {
		t.Errorf("n = %d", s.N)
	}
	if s.Mean < 5 || s.Mean > 6 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 < 4.5 || s.P50 > 6.5 {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 < 8.8 || s.P95 > 10 {
		t.Errorf("p95 = %v", s.P95)
	}
	if s.P99 < 9.3 || s.P99 > 10 {
		t.Errorf("p99 = %v", s.P99)
	}
	if !(s.Min >= 1 && s.Max < 10 && s.Min < s.Max) {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles unordered: %v %v %v", s.P50, s.P95, s.P99)
	}
}

func BenchmarkP2Add(b *testing.B) {
	e := NewP2Quantile(0.95)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Add(xs[i&1023])
	}
}
