// Package experiments regenerates every table and figure of the paper's
// evaluation from this repository's implementations:
//
//	Table I  — failure counts/ratios from the (synthetic) SLURM log
//	Fig 1    — weekly mean elapsed time of failed jobs, 27 weeks
//	Fig 2    — failure-type mix by node count (a) and elapsed time (b)
//	Fig 5(a) — end-to-end training time without failures, 64–1024 nodes
//	Fig 5(b) — end-to-end training time with 5 random failures
//	Fig 6(a) — per-epoch analysis around a failure
//	Fig 6(b) — virtual-node sweep of post-failure load redistribution
//
// Each experiment returns a structured result plus a Format() rendering
// of the same rows/series the paper reports. EXPERIMENTS.md records the
// paper-vs-measured comparison produced by these functions.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ftcache"
	"repro/internal/loadsim"
	"repro/internal/slurmlog"
	"repro/internal/stats"
	"repro/internal/trainsim"
	"repro/internal/workload"
)

// Scale selects experiment fidelity.
type Scale struct {
	// Nodes is the x-axis of Fig 5/6(a) (paper: 64..1024).
	Nodes []int
	// Repeats per configuration (paper: 3).
	Repeats int
	// DatasetDivisor shrinks the CosmoFlow file count (1 = full).
	DatasetDivisor int
	// LocalBatch per node per step for the training model (default 8).
	LocalBatch int
	// Jobs in the synthetic SLURM log (paper: 181,933).
	Jobs int
	// Fig6bTrials per sweep point (paper: 500).
	Fig6bTrials int
	// Fig6bNodes is the ring size for Fig 6(b) (paper: 1024).
	Fig6bNodes int
	// Seed for all randomness.
	Seed int64
}

// PaperScale reproduces the published configuration (minutes of CPU).
func PaperScale() Scale {
	return Scale{
		Nodes:          []int{64, 128, 256, 512, 1024},
		Repeats:        3,
		DatasetDivisor: 1,
		LocalBatch:     8,
		Jobs:           181933,
		Fig6bTrials:    500,
		Fig6bNodes:     1024,
		Seed:           1,
	}
}

// QuickScale is a seconds-scale variant with the same shapes, used by
// the benchmark harness and CI.
func QuickScale() Scale {
	return Scale{
		Nodes:          []int{64, 256, 1024},
		Repeats:        1,
		DatasetDivisor: 8,
		LocalBatch:     8,
		Jobs:           40000,
		Fig6bTrials:    60,
		Fig6bNodes:     256,
		Seed:           1,
	}
}

func (s Scale) trainConfig(nodes int, kind ftcache.StrategyKind, seed int64) trainsim.Config {
	cfg := trainsim.Frontier(nodes, kind)
	if s.DatasetDivisor > 1 {
		cfg.Dataset = workload.CosmoFlowTrain().Scaled(s.DatasetDivisor)
	}
	if s.LocalBatch > 0 {
		cfg.LocalBatch = s.LocalBatch
	}
	cfg.Seed = seed
	return cfg
}

// --- Table I -----------------------------------------------------------

// Table1Result is the reproduced Table I.
type Table1Result struct {
	Table slurmlog.TableI
}

// Table1 generates the synthetic log and computes Table I.
func Table1(s Scale) Table1Result {
	cfg := slurmlog.FrontierDefaults(s.Seed)
	if s.Jobs > 0 {
		cfg.Jobs = s.Jobs
	}
	recs := slurmlog.Generate(cfg)
	return Table1Result{Table: slurmlog.ComputeTableI(recs)}
}

// Format renders the paper's Table I layout.
func (r Table1Result) Format() string {
	t := r.Table
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: job failures (synthetic log calibrated to Frontier)\n")
	fmt.Fprintf(&b, "%-16s %9s %14s %14s\n", "Type", "Count", "Failure ratio", "Overall ratio")
	fmt.Fprintf(&b, "%-16s %9d %14s %13.2f%%\n", "Total Jobs", t.TotalJobs, "N/A", 100.0)
	fmt.Fprintf(&b, "%-16s %9d %13.2f%% %13.2f%%\n", "Total Failures",
		t.TotalFailures, 100.0, 100*t.FailureRatio())
	rows := []struct {
		name  string
		state slurmlog.State
		count int
	}{
		{"Node Fail", slurmlog.StateNodeFail, t.NodeFail},
		{"Timeout", slurmlog.StateTimeout, t.Timeout},
		{"Job Fail", slurmlog.StateJobFail, t.JobFail},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-16s %9d %13.2f%% %13.2f%%\n", row.name, row.count,
			100*t.ShareOfFailures(row.state), 100*t.ShareOfAll(row.state))
	}
	return b.String()
}

// --- Fig 1 -------------------------------------------------------------

// Fig1Result is the weekly failed-job elapsed series.
type Fig1Result struct {
	Weeks          []slurmlog.WeeklyElapsed
	OverallMinutes float64
}

// Fig1 computes the weekly series from the synthetic log.
func Fig1(s Scale) Fig1Result {
	cfg := slurmlog.FrontierDefaults(s.Seed)
	if s.Jobs > 0 {
		cfg.Jobs = s.Jobs
	}
	recs := slurmlog.Generate(cfg)
	weeks, overall := slurmlog.Fig1(recs, cfg.Start, cfg.Weeks)
	return Fig1Result{Weeks: weeks, OverallMinutes: overall}
}

// Format renders the weekly series with an ASCII bar per week.
func (r Fig1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1: mean elapsed minutes of failed jobs per week (overall %.1f min)\n",
		r.OverallMinutes)
	fmt.Fprintf(&b, "%4s %9s %9s %9s %9s  %s\n", "week", "JOB_FAIL", "TIMEOUT", "NODE_FAIL", "ALL", "")
	maxAll := 1.0
	for _, w := range r.Weeks {
		if w.AllFailedMinutes > maxAll {
			maxAll = w.AllFailedMinutes
		}
	}
	for _, w := range r.Weeks {
		bar := strings.Repeat("#", int(w.AllFailedMinutes/maxAll*40))
		fmt.Fprintf(&b, "%4d %9.1f %9.1f %9.1f %9.1f  %s\n",
			w.Week, w.JobFailMinutes, w.TimeoutMinutes, w.NodeFailMinutes,
			w.AllFailedMinutes, bar)
	}
	return b.String()
}

// --- Fig 2 -------------------------------------------------------------

// Fig2Result is the bucketed failure-type distribution.
type Fig2Result struct {
	ByNodes   []slurmlog.Bucket
	ByElapsed []slurmlog.Bucket
}

// Fig2 computes both panels from the synthetic log.
func Fig2(s Scale) Fig2Result {
	cfg := slurmlog.FrontierDefaults(s.Seed)
	if s.Jobs > 0 {
		cfg.Jobs = s.Jobs
	}
	recs := slurmlog.Generate(cfg)
	return Fig2Result{ByNodes: slurmlog.Fig2a(recs), ByElapsed: slurmlog.Fig2b(recs)}
}

// Format renders both panels.
func (r Fig2Result) Format() string {
	var b strings.Builder
	panel := func(title string, buckets []slurmlog.Bucket) {
		fmt.Fprintf(&b, "%s\n", title)
		fmt.Fprintf(&b, "%-12s %8s %9s %9s %10s %12s\n",
			"bucket", "total", "JOB_FAIL", "TIMEOUT", "NODE_FAIL", "NF+TO share")
		for _, bk := range buckets {
			fmt.Fprintf(&b, "%-12s %8d %8.1f%% %8.1f%% %9.1f%% %11.1f%%\n",
				bk.Label, bk.Total(),
				100*bk.Share(slurmlog.StateJobFail),
				100*bk.Share(slurmlog.StateTimeout),
				100*bk.Share(slurmlog.StateNodeFail),
				100*bk.NodeFailureClassShare())
		}
	}
	panel("Fig 2(a): failure mix by node count", r.ByNodes)
	b.WriteString("\n")
	panel("Fig 2(b): failure mix by elapsed time", r.ByElapsed)
	return b.String()
}

// --- Fig 5 -------------------------------------------------------------

// Fig5Row is one (strategy, node-count) cell of Fig 5.
type Fig5Row struct {
	Strategy ftcache.StrategyKind
	Nodes    int
	// Mean and stddev of total training time across repeats.
	Mean   time.Duration
	StdDev time.Duration
	// OverheadVsBase is Mean relative to the same-scale no-failure
	// FT w/ NVMe baseline minus 1 (only meaningful for Fig 5(b)).
	OverheadVsBase float64
	Aborted        bool
}

// Fig5Result holds one panel of Fig 5.
type Fig5Result struct {
	Title string
	Rows  []Fig5Row
	// BaseByNodes is the no-failure reference per node count (the
	// dashed line of Fig 5(b)).
	BaseByNodes map[int]time.Duration
}

var fig5Strategies = []ftcache.StrategyKind{
	ftcache.KindNoFT, ftcache.KindPFS, ftcache.KindNVMe,
}

// Fig5a runs the no-failure panel.
func Fig5a(s Scale) Fig5Result {
	return fig5(s, "Fig 5(a): end-to-end training time, no failures", false)
}

// Fig5b runs the with-failures panel: 5 random single-node failures
// after the first epoch, as in the paper.
func Fig5b(s Scale) Fig5Result {
	return fig5(s, "Fig 5(b): end-to-end training time, 5 random failures", true)
}

func fig5(s Scale, title string, withFailures bool) Fig5Result {
	res := Fig5Result{Title: title, BaseByNodes: make(map[int]time.Duration)}
	for _, n := range s.Nodes {
		base := trainsim.Run(s.trainConfig(n, ftcache.KindNVMe, s.Seed))
		res.BaseByNodes[n] = base.Total
		for _, kind := range fig5Strategies {
			var runs []float64
			aborted := false
			for rep := 0; rep < s.Repeats; rep++ {
				seed := s.Seed + int64(rep)*101
				cfg := s.trainConfig(n, kind, seed)
				if withFailures {
					cfg.Failures = trainsim.RandomFailures(5, cfg.Epochs, seed+7)
				}
				out := trainsim.Run(cfg)
				if out.Aborted {
					aborted = true
					continue
				}
				runs = append(runs, out.Total.Seconds())
			}
			row := Fig5Row{Strategy: kind, Nodes: n, Aborted: aborted && len(runs) == 0}
			if len(runs) > 0 {
				row.Mean = time.Duration(stats.Mean(runs) * float64(time.Second))
				row.StdDev = time.Duration(stats.StdDev(runs) * float64(time.Second))
				row.OverheadVsBase = float64(row.Mean)/float64(base.Total) - 1
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Gap returns how much faster FT w/ NVMe is than FT w/ PFS at n nodes:
// 1 - nvme/pfs (the paper reports 14.8% at 64, 24.9% at 1024).
func (r Fig5Result) Gap(n int) float64 {
	var nvme, pfs time.Duration
	for _, row := range r.Rows {
		if row.Nodes != n {
			continue
		}
		switch row.Strategy {
		case ftcache.KindNVMe:
			nvme = row.Mean
		case ftcache.KindPFS:
			pfs = row.Mean
		}
	}
	if pfs == 0 || nvme == 0 {
		return 0
	}
	return 1 - float64(nvme)/float64(pfs)
}

// Format renders the panel as a table.
func (r Fig5Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%6s %-12s %12s %10s %10s\n", "nodes", "strategy", "total", "stddev", "vs base")
	for _, row := range r.Rows {
		if row.Aborted {
			fmt.Fprintf(&b, "%6d %-12s %12s %10s %10s\n",
				row.Nodes, name(row.Strategy), "ABORTED", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%6d %-12s %12s %10s %+9.1f%%\n",
			row.Nodes, name(row.Strategy),
			row.Mean.Round(time.Second), row.StdDev.Round(time.Second),
			100*row.OverheadVsBase)
	}
	for _, n := range sortedNodes(r.Rows) {
		if g := r.Gap(n); g != 0 {
			fmt.Fprintf(&b, "  FT w/ NVMe beats FT w/ PFS by %.1f%% at %d nodes\n", 100*g, n)
		}
	}
	return b.String()
}

func name(k ftcache.StrategyKind) string {
	switch k {
	case ftcache.KindPFS:
		return "FT w/ PFS"
	case ftcache.KindNVMe:
		return "FT w/ NVMe"
	default:
		return "NoFT"
	}
}

func sortedNodes(rows []Fig5Row) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range rows {
		if !seen[r.Nodes] {
			seen[r.Nodes] = true
			out = append(out, r.Nodes)
		}
	}
	return out
}

// --- Fig 6(a) ----------------------------------------------------------

// Fig6aRow is the per-epoch analysis at one scale, all from runs with a
// single random failure in epoch 2 (plus a failure-free reference run).
type Fig6aRow struct {
	Nodes int
	// NoFailure is the clean epoch time.
	NoFailure time.Duration
	// PFSRedirect is the mean of failure-free epochs running with
	// redirection active (FT w/ PFS after the failure).
	PFSRedirect time.Duration
	// NVMeVictim is the epoch in which the failure struck (rollback +
	// recache) under FT w/ NVMe.
	NVMeVictim time.Duration
	// NVMeRecached is the mean of post-recache epochs (healed cache).
	NVMeRecached time.Duration
}

// Fig6aResult holds the Fig 6(a) series.
type Fig6aResult struct{ Rows []Fig6aRow }

// Fig6a runs the per-epoch analysis.
func Fig6a(s Scale) Fig6aResult {
	var res Fig6aResult
	spec := []trainsim.FailureSpec{{Epoch: 2, Frac: 0.02, Node: -1}}
	for _, n := range s.Nodes {
		base := trainsim.Run(s.trainConfig(n, ftcache.KindNVMe, s.Seed))
		pcfg := s.trainConfig(n, ftcache.KindPFS, s.Seed)
		pcfg.Failures = spec
		pfs := trainsim.Run(pcfg)
		ncfg := s.trainConfig(n, ftcache.KindNVMe, s.Seed)
		ncfg.Failures = spec
		nvme := trainsim.Run(ncfg)
		res.Rows = append(res.Rows, Fig6aRow{
			Nodes:        n,
			NoFailure:    base.CleanEpochMean(),
			PFSRedirect:  pfs.PostFailureEpochMean(),
			NVMeVictim:   nvme.VictimEpochMean(),
			NVMeRecached: nvme.PostFailureEpochMean(),
		})
	}
	return res
}

// Format renders the series.
func (r Fig6aResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6(a): per-epoch time around a single failure\n")
	fmt.Fprintf(&b, "%6s %12s %14s %14s %14s\n",
		"nodes", "no-failure", "PFS-redirect", "NVMe victim", "NVMe recached")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %12s %14s %14s %14s\n",
			row.Nodes,
			row.NoFailure.Round(time.Second),
			row.PFSRedirect.Round(time.Second),
			row.NVMeVictim.Round(time.Second),
			row.NVMeRecached.Round(time.Second))
	}
	return b.String()
}

// --- Fig 6(b) ----------------------------------------------------------

// Fig6bResult is the virtual-node sweep.
type Fig6bResult struct{ Points []loadsim.Point }

// Fig6b runs the Monte-Carlo sweep (paper: 1024 physical nodes, 500
// trials, vnodes ∈ {10, 50, 100, 500, 1000}).
func Fig6b(s Scale) Fig6bResult {
	files := workload.CosmoFlowTrain().NumFiles
	if s.DatasetDivisor > 1 {
		files /= s.DatasetDivisor
	}
	return Fig6bResult{Points: loadsim.Sweep(
		s.Fig6bNodes, files, s.Fig6bTrials, s.Seed, loadsim.PaperSweep)}
}

// Format renders the sweep.
func (r Fig6bResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6(b): post-failure load redistribution vs virtual-node count\n")
	fmt.Fprintf(&b, "%7s %16s %18s %12s\n",
		"vnodes", "receiver nodes", "files per node", "lost files")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%7d %9.1f ±%5.1f %11.1f ±%5.1f %12.1f\n",
			p.VirtualNodes, p.ReceiverMean, p.ReceiverStdDev,
			p.FilesPerNodeMean, p.FilesPerNodeStdDev, p.LostMean)
	}
	return b.String()
}
