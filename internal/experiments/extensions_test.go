package experiments

import (
	"strings"
	"testing"
)

func TestExtReplication(t *testing.T) {
	r := ExtReplication(tiny())
	if r.Factor != 2 || len(r.Rows) != 2 {
		t.Fatalf("result shape: %+v", r)
	}
	for _, row := range r.Rows {
		if row.RecachePFSReads <= 0 {
			t.Errorf("n=%d: recache should pay post-failure PFS reads, got %d",
				row.Nodes, row.RecachePFSReads)
		}
		if row.ReplicatedPFSReads >= row.RecachePFSReads {
			t.Errorf("n=%d: replication should slash PFS traffic: %d vs %d",
				row.Nodes, row.ReplicatedPFSReads, row.RecachePFSReads)
		}
		if row.Replicated > row.Recache {
			t.Errorf("n=%d: replicated run (%v) slower than recache (%v)",
				row.Nodes, row.Replicated, row.Recache)
		}
		if row.Base >= row.Recache {
			continue // base can equal under rounding; no hard assert
		}
	}
	if !strings.Contains(r.Format(), "replication") {
		t.Error("format missing description")
	}
}

func TestExtVnodeSweep(t *testing.T) {
	r := ExtVnodeSweep(tiny())
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i, row := range r.Rows {
		if row.Total <= 0 {
			t.Errorf("row %d: zero total", i)
		}
		if row.VictimEpoch <= 0 {
			t.Errorf("row %d: zero victim epoch", i)
		}
	}
	if !strings.Contains(r.Format(), "vnodes") {
		t.Error("format missing header")
	}
}
