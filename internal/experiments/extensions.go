package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ftcache"
	"repro/internal/trainsim"
)

// This file holds extension experiments beyond the paper's published
// evaluation — the ablations DESIGN.md calls out.

// ExtReplicationRow compares hash-ring recaching (the paper's design)
// against the replication extension at one scale, under the Fig 5(b)
// failure plan.
type ExtReplicationRow struct {
	Nodes int
	// Base is the no-failure total.
	Base time.Duration
	// Recache is FT w/ NVMe (R=1), the paper's design.
	Recache         time.Duration
	RecachePFSReads int64
	// Replicated is FT w/ NVMe with R cached copies.
	Replicated         time.Duration
	ReplicatedPFSReads int64
}

// ExtReplicationResult is the replication-vs-recache comparison.
type ExtReplicationResult struct {
	Factor int
	Rows   []ExtReplicationRow
}

// ExtReplication runs the comparison with replication factor 2. Cold
// first-epoch PFS reads are identical by construction; the interesting
// column is post-failure PFS traffic (recache pays one read per lost
// file, replication pays none until copies are exhausted) and the
// resulting end-to-end time.
func ExtReplication(s Scale) ExtReplicationResult {
	const factor = 2
	res := ExtReplicationResult{Factor: factor}
	for _, n := range s.Nodes {
		base := trainsim.Run(s.trainConfig(n, ftcache.KindNVMe, s.Seed))

		rc := s.trainConfig(n, ftcache.KindNVMe, s.Seed)
		fails := trainsim.RandomFailures(5, rc.Epochs, s.Seed+7)
		rc.Failures = fails
		recache := trainsim.Run(rc)

		rp := s.trainConfig(n, ftcache.KindNVMe, s.Seed)
		rp.Failures = fails
		rp.Replication = factor
		replicated := trainsim.Run(rp)

		coldReads := int64(rc.Dataset.NumFiles)
		res.Rows = append(res.Rows, ExtReplicationRow{
			Nodes:              n,
			Base:               base.Total,
			Recache:            recache.Total,
			RecachePFSReads:    recache.PFSReads - coldReads,
			Replicated:         replicated.Total,
			ReplicatedPFSReads: replicated.PFSReads - coldReads,
		})
	}
	return res
}

// Format renders the comparison.
func (r ExtReplicationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: recaching vs %d-way replication (5 random failures)\n", r.Factor)
	fmt.Fprintf(&b, "%6s %10s | %12s %14s | %12s %14s\n",
		"nodes", "no-fail", "recache", "post-fail PFS", "replicated", "post-fail PFS")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %10s | %12s %14d | %12s %14d\n",
			row.Nodes,
			row.Base.Round(time.Second),
			row.Recache.Round(time.Second), row.RecachePFSReads,
			row.Replicated.Round(time.Second), row.ReplicatedPFSReads)
	}
	b.WriteString("  replication trades cache capacity (R× NVMe) for zero-PFS failover\n")
	return b.String()
}

// ExtVnodeSweepRow is one point of the virtual-node end-to-end ablation:
// Fig 6(b) studies redistribution balance in isolation; this runs the
// full failure workload at different virtual-node counts to show the
// balance effect (and its diminishing returns) in training time.
type ExtVnodeSweepRow struct {
	VirtualNodes int
	Total        time.Duration
	// VictimEpoch is the mean epoch duration where failures struck.
	VictimEpoch time.Duration
}

// ExtVnodeSweepResult is the end-to-end virtual-node ablation.
type ExtVnodeSweepResult struct {
	Nodes int
	Rows  []ExtVnodeSweepRow
}

// ExtVnodeSweep runs the Fig 5(b) workload at the largest configured
// scale across virtual-node settings.
func ExtVnodeSweep(s Scale) ExtVnodeSweepResult {
	n := s.Nodes[len(s.Nodes)-1]
	res := ExtVnodeSweepResult{Nodes: n}
	fails := trainsim.RandomFailures(5, 5, s.Seed+7)
	for _, v := range []int{1, 10, 100, 1000} {
		cfg := s.trainConfig(n, ftcache.KindNVMe, s.Seed)
		cfg.VirtualNodes = v
		cfg.Failures = fails
		out := trainsim.Run(cfg)
		res.Rows = append(res.Rows, ExtVnodeSweepRow{
			VirtualNodes: v,
			Total:        out.Total,
			VictimEpoch:  out.VictimEpochMean(),
		})
	}
	return res
}

// Format renders the sweep.
func (r ExtVnodeSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: virtual-node count vs training time (%d nodes, 5 failures)\n", r.Nodes)
	fmt.Fprintf(&b, "%7s %12s %14s\n", "vnodes", "total", "victim epoch")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7d %12s %14s\n",
			row.VirtualNodes, row.Total.Round(time.Second), row.VictimEpoch.Round(time.Second))
	}
	return b.String()
}
