package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

// parseCSV re-parses emitted CSV and sanity-checks the grid shape.
func parseCSV(t *testing.T, buf *bytes.Buffer, wantCols int) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("only %d rows", len(rows))
	}
	for i, r := range rows {
		if len(r) != wantCols {
			t.Fatalf("row %d has %d cols, want %d", i, len(r), wantCols)
		}
	}
	return rows
}

func TestCSVEmitters(t *testing.T) {
	s := tiny()

	t.Run("table1", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Table1(s).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows := parseCSV(t, &buf, 4)
		if rows[0][0] != "type" || len(rows) != 6 {
			t.Errorf("table1 shape: %v", rows[0])
		}
	})

	t.Run("fig1", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Fig1(s).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows := parseCSV(t, &buf, 6)
		if len(rows) != 28 { // header + 27 weeks
			t.Errorf("fig1 rows = %d", len(rows))
		}
		if _, err := strconv.ParseFloat(rows[1][4], 64); err != nil {
			t.Errorf("all_min not numeric: %v", err)
		}
	})

	t.Run("fig2", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Fig2(s).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows := parseCSV(t, &buf, 7)
		if len(rows) != 11 { // header + 2×5 buckets
			t.Errorf("fig2 rows = %d", len(rows))
		}
	})

	t.Run("fig5", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Fig5a(s).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows := parseCSV(t, &buf, 6)
		if len(rows) != 1+len(s.Nodes)*3 {
			t.Errorf("fig5 rows = %d", len(rows))
		}
	})

	t.Run("fig6a", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Fig6a(s).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		parseCSV(t, &buf, 5)
	})

	t.Run("fig6b", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Fig6b(s).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows := parseCSV(t, &buf, 7)
		if len(rows) != 6 { // header + 5 sweep points
			t.Errorf("fig6b rows = %d", len(rows))
		}
	})

	t.Run("extrepl", func(t *testing.T) {
		var buf bytes.Buffer
		if err := ExtReplication(s).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		parseCSV(t, &buf, 6)
	})

	t.Run("extvnode", func(t *testing.T) {
		var buf bytes.Buffer
		if err := ExtVnodeSweep(s).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		parseCSV(t, &buf, 3)
	})
}
