package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ftcache"
)

// tiny returns a fast scale for unit tests.
func tiny() Scale {
	return Scale{
		Nodes:          []int{64, 1024},
		Repeats:        1,
		DatasetDivisor: 64,
		LocalBatch:     8,
		Jobs:           20000,
		Fig6bTrials:    15,
		Fig6bNodes:     64,
		Seed:           1,
	}
}

func TestTable1ShapeAndFormat(t *testing.T) {
	r := Table1(tiny())
	tab := r.Table
	if tab.TotalJobs == 0 || tab.TotalFailures == 0 {
		t.Fatal("empty table")
	}
	if math.Abs(tab.FailureRatio()-0.2504) > 0.03 {
		t.Errorf("failure ratio %.3f far from paper's 0.2504", tab.FailureRatio())
	}
	out := r.Format()
	for _, want := range []string{"Total Jobs", "Node Fail", "Timeout", "Job Fail"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestFig1ShapeAndFormat(t *testing.T) {
	r := Fig1(tiny())
	if len(r.Weeks) != 27 {
		t.Fatalf("weeks = %d", len(r.Weeks))
	}
	if r.OverallMinutes < 40 || r.OverallMinutes > 130 {
		t.Errorf("overall mean = %.1f min", r.OverallMinutes)
	}
	if !strings.Contains(r.Format(), "week") {
		t.Error("format missing header")
	}
}

func TestFig2ShapeAndFormat(t *testing.T) {
	r := Fig2(tiny())
	if len(r.ByNodes) != 5 || len(r.ByElapsed) != 5 {
		t.Fatal("bucket counts wrong")
	}
	top := r.ByNodes[len(r.ByNodes)-1]
	low := r.ByNodes[0]
	if top.Total() > 0 && top.NodeFailureClassShare() <= low.NodeFailureClassShare() {
		t.Error("node-failure class share should grow with node count")
	}
	if !strings.Contains(r.Format(), "Fig 2(a)") || !strings.Contains(r.Format(), "Fig 2(b)") {
		t.Error("format missing panels")
	}
}

func TestFig5aOrderingAndScaling(t *testing.T) {
	r := Fig5a(tiny())
	byKey := map[[2]interface{}]Fig5Row{}
	for _, row := range r.Rows {
		byKey[[2]interface{}{row.Nodes, row.Strategy}] = row
	}
	for _, n := range []int{64, 1024} {
		noft := byKey[[2]interface{}{n, ftcache.KindNoFT}]
		pfs := byKey[[2]interface{}{n, ftcache.KindPFS}]
		nvme := byKey[[2]interface{}{n, ftcache.KindNVMe}]
		if noft.Mean >= pfs.Mean || noft.Mean >= nvme.Mean {
			t.Errorf("n=%d: NoFT (%v) should be fastest (pfs %v, nvme %v)",
				n, noft.Mean, pfs.Mean, nvme.Mean)
		}
	}
	// Strong scaling: 1024 nodes faster than 64 for every strategy.
	for _, k := range fig5Strategies {
		if byKey[[2]interface{}{1024, k}].Mean >= byKey[[2]interface{}{64, k}].Mean {
			t.Errorf("%s: no speedup from 64 to 1024 nodes", k)
		}
	}
	if !strings.Contains(r.Format(), "Fig 5(a)") {
		t.Error("format missing title")
	}
}

func TestFig5bHeadline(t *testing.T) {
	r := Fig5b(tiny())
	for _, n := range []int{64, 1024} {
		var noft, pfs, nvme Fig5Row
		for _, row := range r.Rows {
			if row.Nodes != n {
				continue
			}
			switch row.Strategy {
			case ftcache.KindNoFT:
				noft = row
			case ftcache.KindPFS:
				pfs = row
			case ftcache.KindNVMe:
				nvme = row
			}
		}
		if !noft.Aborted {
			t.Errorf("n=%d: NoFT should abort under failures", n)
		}
		if nvme.Mean >= pfs.Mean {
			t.Errorf("n=%d: FT w/ NVMe (%v) should beat FT w/ PFS (%v)", n, nvme.Mean, pfs.Mean)
		}
		if nvme.OverheadVsBase <= 0 || pfs.OverheadVsBase <= nvme.OverheadVsBase {
			t.Errorf("n=%d: overheads nvme=%.2f pfs=%.2f", n, nvme.OverheadVsBase, pfs.OverheadVsBase)
		}
		if g := r.Gap(n); g <= 0 || g > 0.8 {
			t.Errorf("n=%d: gap = %.2f", n, g)
		}
	}
	if !strings.Contains(r.Format(), "beats FT w/ PFS") {
		t.Error("format missing gap line")
	}
}

func TestFig6aTrends(t *testing.T) {
	r := Fig6a(tiny())
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.PFSRedirect <= row.NoFailure {
			t.Errorf("n=%d: redirect epochs (%v) should exceed clean (%v)",
				row.Nodes, row.PFSRedirect, row.NoFailure)
		}
		if row.NVMeVictim <= row.NoFailure {
			t.Errorf("n=%d: victim epoch (%v) should exceed clean (%v)",
				row.Nodes, row.NVMeVictim, row.NoFailure)
		}
		if row.NVMeRecached >= row.PFSRedirect {
			t.Errorf("n=%d: recached epochs (%v) should beat redirect epochs (%v)",
				row.Nodes, row.NVMeRecached, row.PFSRedirect)
		}
	}
	// The recached series approaches no-failure as nodes grow.
	small, large := r.Rows[0], r.Rows[1]
	relSmall := float64(small.NVMeRecached) / float64(small.NoFailure)
	relLarge := float64(large.NVMeRecached) / float64(large.NoFailure)
	if relLarge >= relSmall+0.05 {
		t.Errorf("recached/no-failure ratio should not grow with scale: %.3f → %.3f",
			relSmall, relLarge)
	}
	if !strings.Contains(r.Format(), "Fig 6(a)") {
		t.Error("format missing title")
	}
}

func TestFig6bTrends(t *testing.T) {
	r := Fig6b(tiny())
	pts := r.Points
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ReceiverMean < pts[i-1].ReceiverMean {
			t.Errorf("receivers should be non-decreasing: %v", pts)
		}
		if pts[i].FilesPerNodeMean > pts[i-1].FilesPerNodeMean {
			t.Errorf("files per node should be non-increasing")
		}
	}
	// Diminishing returns past 500 vnodes (paper's plateau).
	grow10to100 := pts[2].ReceiverMean - pts[0].ReceiverMean
	grow500to1000 := pts[4].ReceiverMean - pts[3].ReceiverMean
	if grow500to1000 > grow10to100 {
		t.Error("receiver growth should flatten at high vnode counts")
	}
	if !strings.Contains(r.Format(), "vnodes") {
		t.Error("format missing header")
	}
}

func TestScalePresets(t *testing.T) {
	p := PaperScale()
	if p.Jobs != 181933 || p.Fig6bTrials != 500 || p.Fig6bNodes != 1024 {
		t.Errorf("paper scale wrong: %+v", p)
	}
	if p.DatasetDivisor != 1 || p.Repeats != 3 {
		t.Errorf("paper scale fidelity wrong: %+v", p)
	}
	q := QuickScale()
	if q.DatasetDivisor <= 1 {
		t.Error("quick scale should shrink the dataset")
	}
}
