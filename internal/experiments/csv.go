package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/slurmlog"
)

// CSV emitters: every experiment result writes a machine-readable table
// so the figures can be re-plotted with any tool. Columns are stable and
// documented by their headers; times are seconds as floats.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
func d(v int64) string   { return strconv.FormatInt(v, 10) }

// WriteCSV emits Table I.
func (r Table1Result) WriteCSV(out io.Writer) error {
	t := r.Table
	rows := [][]string{
		{"type", "count", "failure_ratio", "overall_ratio"},
		{"total_jobs", d(int64(t.TotalJobs)), "", "1.0"},
		{"total_failures", d(int64(t.TotalFailures)), "1.0", f(t.FailureRatio())},
		{"node_fail", d(int64(t.NodeFail)), f(t.ShareOfFailures(slurmlog.StateNodeFail)), f(t.ShareOfAll(slurmlog.StateNodeFail))},
		{"timeout", d(int64(t.Timeout)), f(t.ShareOfFailures(slurmlog.StateTimeout)), f(t.ShareOfAll(slurmlog.StateTimeout))},
		{"job_fail", d(int64(t.JobFail)), f(t.ShareOfFailures(slurmlog.StateJobFail)), f(t.ShareOfAll(slurmlog.StateJobFail))},
	}
	return writeAll(csv.NewWriter(out), rows)
}

// WriteCSV emits the Fig 1 weekly series.
func (r Fig1Result) WriteCSV(out io.Writer) error {
	rows := [][]string{{"week", "job_fail_min", "timeout_min", "node_fail_min", "all_min", "failures"}}
	for _, w := range r.Weeks {
		rows = append(rows, []string{
			d(int64(w.Week)), f(w.JobFailMinutes), f(w.TimeoutMinutes),
			f(w.NodeFailMinutes), f(w.AllFailedMinutes), d(int64(w.Failures)),
		})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// WriteCSV emits both Fig 2 panels, tagged by dimension.
func (r Fig2Result) WriteCSV(out io.Writer) error {
	rows := [][]string{{"dimension", "bucket", "total", "job_fail", "timeout", "node_fail", "nf_to_share"}}
	add := func(dim string, buckets []slurmlog.Bucket) {
		for _, b := range buckets {
			rows = append(rows, []string{
				dim, b.Label, d(int64(b.Total())),
				f(b.Share(slurmlog.StateJobFail)),
				f(b.Share(slurmlog.StateTimeout)),
				f(b.Share(slurmlog.StateNodeFail)),
				f(b.NodeFailureClassShare()),
			})
		}
	}
	add("nodes", r.ByNodes)
	add("elapsed", r.ByElapsed)
	return writeAll(csv.NewWriter(out), rows)
}

// WriteCSV emits one Fig 5 panel.
func (r Fig5Result) WriteCSV(out io.Writer) error {
	rows := [][]string{{"nodes", "strategy", "total_sec", "stddev_sec", "overhead_vs_base", "aborted"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(int64(row.Nodes)), name(row.Strategy),
			f(row.Mean.Seconds()), f(row.StdDev.Seconds()),
			f(row.OverheadVsBase), fmt.Sprintf("%v", row.Aborted),
		})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// WriteCSV emits the Fig 6(a) series.
func (r Fig6aResult) WriteCSV(out io.Writer) error {
	rows := [][]string{{"nodes", "no_failure_sec", "pfs_redirect_sec", "nvme_victim_sec", "nvme_recached_sec"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(int64(row.Nodes)),
			f(row.NoFailure.Seconds()), f(row.PFSRedirect.Seconds()),
			f(row.NVMeVictim.Seconds()), f(row.NVMeRecached.Seconds()),
		})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// WriteCSV emits the Fig 6(b) sweep.
func (r Fig6bResult) WriteCSV(out io.Writer) error {
	rows := [][]string{{"vnodes", "receivers_mean", "receivers_sd", "files_per_node_mean", "files_per_node_sd", "lost_mean", "trials"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			d(int64(p.VirtualNodes)),
			f(p.ReceiverMean), f(p.ReceiverStdDev),
			f(p.FilesPerNodeMean), f(p.FilesPerNodeStdDev),
			f(p.LostMean), d(int64(p.Trials)),
		})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// WriteCSV emits the replication extension comparison.
func (r ExtReplicationResult) WriteCSV(out io.Writer) error {
	rows := [][]string{{"nodes", "base_sec", "recache_sec", "recache_pfs_reads", "replicated_sec", "replicated_pfs_reads"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(int64(row.Nodes)), f(row.Base.Seconds()),
			f(row.Recache.Seconds()), d(row.RecachePFSReads),
			f(row.Replicated.Seconds()), d(row.ReplicatedPFSReads),
		})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// WriteCSV emits the virtual-node end-to-end ablation.
func (r ExtVnodeSweepResult) WriteCSV(out io.Writer) error {
	rows := [][]string{{"vnodes", "total_sec", "victim_epoch_sec"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(int64(row.VirtualNodes)), f(row.Total.Seconds()), f(row.VictimEpoch.Seconds()),
		})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// CSVWriter is implemented by every experiment result.
type CSVWriter interface {
	WriteCSV(io.Writer) error
}

var (
	_ CSVWriter = Table1Result{}
	_ CSVWriter = Fig1Result{}
	_ CSVWriter = Fig2Result{}
	_ CSVWriter = Fig5Result{}
	_ CSVWriter = Fig6aResult{}
	_ CSVWriter = Fig6bResult{}
	_ CSVWriter = ExtReplicationResult{}
	_ CSVWriter = ExtVnodeSweepResult{}
)
