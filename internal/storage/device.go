package storage

import "time"

// Byte-rate helpers for readable model definitions.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40
)

// timeFor converts bytes at bytesPerSec into a duration.
func timeFor(bytes int64, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bytesPerSec * float64(time.Second))
}

// NVMeModel captures per-node NVMe service times. Frontier's node-local
// RAID0 pair delivers ~8 GB/s sequential read and ~4 GB/s write
// (paper §V-A), with sub-100µs access latency.
type NVMeModel struct {
	ReadBandwidth  float64 // bytes/s
	WriteBandwidth float64 // bytes/s
	AccessLatency  time.Duration
}

// FrontierNVMe is the calibrated Frontier node-local device.
func FrontierNVMe() NVMeModel {
	return NVMeModel{
		ReadBandwidth:  8 * GiB,
		WriteBandwidth: 4 * GiB,
		AccessLatency:  80 * time.Microsecond,
	}
}

// ReadTime returns the service time for one read of size bytes.
func (m NVMeModel) ReadTime(bytes int64) time.Duration {
	return m.AccessLatency + timeFor(bytes, m.ReadBandwidth)
}

// WriteTime returns the service time for one write of size bytes.
func (m NVMeModel) WriteTime(bytes int64) time.Duration {
	return m.AccessLatency + timeFor(bytes, m.WriteBandwidth)
}

// NetworkModel captures the interconnect used for remote-NVMe reads
// (Frontier: Cray Slingshot, ~25 GB/s per NIC, microsecond-scale
// latency; the effective per-flow rate we model is conservative).
type NetworkModel struct {
	Bandwidth float64 // bytes/s per flow
	Latency   time.Duration
}

// FrontierNetwork is the calibrated Slingshot per-flow model.
func FrontierNetwork() NetworkModel {
	return NetworkModel{Bandwidth: 12 * GiB, Latency: 5 * time.Microsecond}
}

// TransferTime returns the time to move size bytes over one flow.
func (m NetworkModel) TransferTime(bytes int64) time.Duration {
	return m.Latency + timeFor(bytes, m.Bandwidth)
}

// PFSModel captures the shared parallel file system. Its defining
// features for this paper:
//
//   - the aggregate read bandwidth is shared: k concurrent readers each
//     see Aggregate/k (never more than PerClientCap), so post-failure
//     PFS traffic slows *with scale*;
//   - every open pays a metadata-server round trip, and the metadata
//     server serializes: its effective service rate bounds small-file
//     open throughput (the "metadata lock contention" of §II-A).
type PFSModel struct {
	AggregateBandwidth float64 // bytes/s across all clients
	PerClientCap       float64 // bytes/s ceiling for one client
	MetadataOpTime     time.Duration
	// MetadataParallelism is how many metadata ops the MDS can overlap;
	// 1 reproduces a fully serialized MDS.
	MetadataParallelism int
	// MetadataWaitCap bounds the queueing wait one client observes:
	// under huge bursts (a cold epoch opening thousands of files) deep
	// client-side readahead and batched RPCs keep the effective stall
	// bounded rather than linear in burst size. 0 = uncapped.
	MetadataWaitCap time.Duration
}

// FrontierOrion is a deliberately modest share of Orion calibrated for a
// 1024-node job: DL reads are small and random, far from the marketing
// sequential numbers. The absolute values matter less than the ratio to
// NVMe speed; see EXPERIMENTS.md for how the shapes were validated.
func FrontierOrion() PFSModel {
	return PFSModel{
		AggregateBandwidth:  220 * GiB,
		PerClientCap:        1.5 * GiB,
		MetadataOpTime:      600 * time.Microsecond,
		MetadataParallelism: 32,
	}
}

// ReadTime returns one client's service time for a read of size bytes
// while `concurrent` clients (including this one) are hitting the PFS.
func (m PFSModel) ReadTime(bytes int64, concurrent int) time.Duration {
	return m.MetadataTime(concurrent) + m.DataTime(bytes, concurrent)
}

// DataTime returns the pure transfer time for size bytes while
// `concurrent` clients share the aggregate bandwidth.
func (m PFSModel) DataTime(bytes int64, concurrent int) time.Duration {
	if concurrent < 1 {
		concurrent = 1
	}
	bw := m.AggregateBandwidth / float64(concurrent)
	if m.PerClientCap > 0 && bw > m.PerClientCap {
		bw = m.PerClientCap
	}
	return timeFor(bytes, bw)
}

// MetadataTime returns the expected metadata-server delay for one open
// when `concurrent` clients are opening simultaneously: queueing behind
// concurrent/parallelism ops on average.
func (m PFSModel) MetadataTime(concurrent int) time.Duration {
	if concurrent < 1 {
		concurrent = 1
	}
	par := m.MetadataParallelism
	if par < 1 {
		par = 1
	}
	depth := (concurrent + par - 1) / par
	wait := time.Duration(depth) * m.MetadataOpTime
	if m.MetadataWaitCap > 0 && wait > m.MetadataWaitCap {
		wait = m.MetadataWaitCap
	}
	return wait
}
