package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestPutBatchBasic(t *testing.T) {
	n := NewNVMe(0)
	entries := make([]BatchEntry, 20)
	for i := range entries {
		entries[i] = BatchEntry{Path: fmt.Sprintf("b/f%02d", i), Data: []byte{byte(i)}}
	}
	for i, err := range n.PutBatch(entries) {
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
	for i := range entries {
		got, err := n.Get(entries[i].Path)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("get %s: %v, %v", entries[i].Path, got, err)
		}
	}
	objs, bytes := n.Stats()
	if objs != 20 || bytes != 20 {
		t.Fatalf("stats: %d objects / %d bytes, want 20/20", objs, bytes)
	}
}

func TestPutBatchMixedTooLarge(t *testing.T) {
	n := NewNVMe(16)
	errs := n.PutBatch([]BatchEntry{
		{Path: "small", Data: []byte("abc")},
		{Path: "huge", Data: make([]byte, 64)},
		{Path: "small2", Data: []byte("def")},
	})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good entries failed: %v / %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], ErrTooLarge) {
		t.Fatalf("oversized entry: err=%v, want ErrTooLarge", errs[1])
	}
	if _, err := n.Get("small"); err != nil {
		t.Fatalf("batch-mate of an oversized entry lost: %v", err)
	}
}

func TestPutBatchAllTooLarge(t *testing.T) {
	n := NewNVMe(4)
	errs := n.PutBatch([]BatchEntry{
		{Path: "a", Data: make([]byte, 8)},
		{Path: "b", Data: make([]byte, 8)},
	})
	for i, err := range errs {
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
	if objs, _ := n.Stats(); objs != 0 {
		t.Fatalf("store not empty: %d objects", objs)
	}
}

func TestPutBatchEvictsToCapacity(t *testing.T) {
	n := NewNVMe(100)
	// Fill near capacity, then batch-insert enough to force eviction.
	for i := 0; i < 9; i++ {
		if err := n.Put(fmt.Sprintf("old/%d", i), make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	entries := make([]BatchEntry, 5)
	for i := range entries {
		entries[i] = BatchEntry{Path: fmt.Sprintf("new/%d", i), Data: make([]byte, 10)}
	}
	for i, err := range n.PutBatch(entries) {
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
	if _, bytes := n.Stats(); bytes > 100 {
		t.Fatalf("capacity exceeded after batch: %d bytes", bytes)
	}
	// Every batch entry must have survived its own insert round — a
	// batch may evict older objects but never its own members.
	for i := range entries {
		if _, err := n.Get(entries[i].Path); err != nil {
			t.Fatalf("batch entry %s evicted by its own batch: %v", entries[i].Path, err)
		}
	}
}

func TestPutBatchLargerThanCacheDegrades(t *testing.T) {
	// A batch whose total exceeds the whole cache cannot keep every
	// member; it must still restore the capacity invariant and keep the
	// newest insert, like a run of sequential Puts would.
	n := NewNVMe(32)
	entries := make([]BatchEntry, 8)
	for i := range entries {
		entries[i] = BatchEntry{Path: fmt.Sprintf("big/%d", i), Data: make([]byte, 8)}
	}
	for i, err := range n.PutBatch(entries) {
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
	if _, bytes := n.Stats(); bytes > 32 {
		t.Fatalf("capacity invariant broken: %d bytes", bytes)
	}
	if objs, _ := n.Stats(); objs == 0 {
		t.Fatal("cache empty after oversized batch; newest insert should survive")
	}
}

func TestPutBatchReplaceAccountsBytes(t *testing.T) {
	n := NewNVMe(0)
	if err := n.Put("k", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	errs := n.PutBatch([]BatchEntry{{Path: "k", Data: []byte("xy")}})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	objs, bytes := n.Stats()
	if objs != 1 || bytes != 2 {
		t.Fatalf("after replace: %d objects / %d bytes, want 1/2", objs, bytes)
	}
}

func TestPutBatchConcurrentWithReads(t *testing.T) {
	n := NewNVMe(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				entries := make([]BatchEntry, 16)
				for i := range entries {
					entries[i] = BatchEntry{
						Path: fmt.Sprintf("w%d/r%d/f%d", w, r, i),
						Data: make([]byte, 32),
					}
				}
				for j, err := range n.PutBatch(entries) {
					if err != nil {
						t.Errorf("w%d r%d entry %d: %v", w, r, j, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_, _ = n.Get(fmt.Sprintf("w0/r0/f%d", i%16))
		}
	}()
	wg.Wait()
	if _, bytes := n.Stats(); bytes > 1<<16 {
		t.Fatalf("capacity exceeded: %d bytes", bytes)
	}
}
