package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func newDirStore(t *testing.T) *DirStore {
	t.Helper()
	d, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDirStoreRoundTrip(t *testing.T) {
	d := newDirStore(t)
	if err := d.Put("cosmo/train/a.tfrecord", []byte("data-a")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("cosmo/train/a.tfrecord")
	if err != nil || !bytes.Equal(got, []byte("data-a")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if !d.Has("cosmo/train/a.tfrecord") || d.Has("cosmo/other") {
		t.Error("Has mismatch")
	}
	objs, b := d.Stats()
	if objs != 1 || b != 6 {
		t.Errorf("stats = %d, %d", objs, b)
	}
	d.Delete("cosmo/train/a.tfrecord")
	if d.Has("cosmo/train/a.tfrecord") {
		t.Error("still present after delete")
	}
	d.Delete("cosmo/train/a.tfrecord") // idempotent
}

func TestDirStoreNotFound(t *testing.T) {
	d := newDirStore(t)
	if _, err := d.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestDirStoreRejectsEscapes(t *testing.T) {
	d := newDirStore(t)
	for _, p := range []string{"../evil", "/etc/passwd", "a/../../evil"} {
		if err := d.Put(p, []byte("x")); err == nil {
			t.Errorf("Put(%q) should be rejected", p)
		}
		if _, err := d.Get(p); err == nil {
			t.Errorf("Get(%q) should be rejected", p)
		}
		if d.Has(p) {
			t.Errorf("Has(%q) should be false", p)
		}
	}
}

func TestDirStoreInternalDotDot(t *testing.T) {
	// "a/../b" stays inside the root after cleaning and is allowed.
	d := newDirStore(t)
	if err := d.Put("a/../b", []byte("x")); err != nil {
		t.Fatalf("internal .. should clean to b: %v", err)
	}
	if !d.Has("b") {
		t.Error("cleaned path not stored")
	}
}

func TestNewDirStoreValidation(t *testing.T) {
	if _, err := NewDirStore(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing root should fail")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := (func() error {
		d, err := NewDirStore(t.TempDir())
		if err != nil {
			return err
		}
		return d.Put("file", []byte("x"))
	})(); err != nil {
		t.Fatal(err)
	}
	_ = f
}

func TestDirStoreRootIsFile(t *testing.T) {
	dir := t.TempDir()
	d, _ := NewDirStore(dir)
	d.Put("somefile", []byte("x"))
	if _, err := NewDirStore(filepath.Join(dir, "somefile")); err == nil {
		t.Error("file root should fail")
	}
}
