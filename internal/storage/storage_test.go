package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNVMePutGet(t *testing.T) {
	n := NewNVMe(0)
	if err := n.Put("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := n.Get("a")
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if !n.Has("a") || n.Has("b") {
		t.Error("Has mismatch")
	}
	if _, err := n.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing Get err = %v", err)
	}
	objs, used := n.Stats()
	if objs != 1 || used != 5 {
		t.Errorf("stats = %d, %d", objs, used)
	}
}

func TestNVMeReplaceAccountsBytes(t *testing.T) {
	n := NewNVMe(0)
	n.Put("a", make([]byte, 100))
	n.Put("a", make([]byte, 40))
	objs, used := n.Stats()
	if objs != 1 || used != 40 {
		t.Errorf("stats after replace = %d, %d", objs, used)
	}
}

func TestNVMeDelete(t *testing.T) {
	n := NewNVMe(0)
	n.Put("a", make([]byte, 10))
	n.Delete("a")
	n.Delete("a") // idempotent
	if objs, used := n.Stats(); objs != 0 || used != 0 {
		t.Errorf("stats after delete = %d, %d", objs, used)
	}
}

func TestNVMeLRUEviction(t *testing.T) {
	// One shard: exact global LRU order, so the victim is deterministic.
	n := NewNVMeShards(100, 1)
	n.Put("a", make([]byte, 40))
	n.Put("b", make([]byte, 40))
	// Touch "a" so "b" is the LRU victim.
	n.Get("a")
	n.Put("c", make([]byte, 40)) // exceeds 100 → evict b
	if !n.Has("a") || n.Has("b") || !n.Has("c") {
		t.Errorf("eviction picked wrong victim: a=%v b=%v c=%v", n.Has("a"), n.Has("b"), n.Has("c"))
	}
	if _, _, ev := n.Counters(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if _, used := n.Stats(); used > 100 {
		t.Errorf("used %d exceeds capacity", used)
	}
}

func TestNVMeTooLarge(t *testing.T) {
	n := NewNVMe(10)
	if err := n.Put("a", make([]byte, 11)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestNVMeHitMissCounters(t *testing.T) {
	n := NewNVMe(0)
	n.Put("a", []byte("x"))
	n.Get("a")
	n.Get("a")
	n.Get("missing")
	hits, misses, _ := n.Counters()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestNVMeClear(t *testing.T) {
	n := NewNVMe(0)
	for i := 0; i < 10; i++ {
		n.Put(fmt.Sprintf("f%d", i), make([]byte, 8))
	}
	n.Clear()
	if objs, used := n.Stats(); objs != 0 || used != 0 {
		t.Errorf("after clear: %d objs %d bytes", objs, used)
	}
	// Store must remain usable.
	n.Put("again", []byte("y"))
	if !n.Has("again") {
		t.Error("store broken after Clear")
	}
}

func TestNVMeCapacityInvariantQuick(t *testing.T) {
	// Property: used never exceeds capacity regardless of op sequence.
	f := func(ops []uint16) bool {
		n := NewNVMe(1000)
		for _, op := range ops {
			path := fmt.Sprintf("f%d", op%50)
			switch op % 3 {
			case 0:
				n.Put(path, make([]byte, int(op%400)))
			case 1:
				n.Get(path)
			case 2:
				n.Delete(path)
			}
			if _, used := n.Stats(); used > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNVMeConcurrent(t *testing.T) {
	n := NewNVMe(10000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := fmt.Sprintf("g%d-f%d", g, i%20)
				n.Put(p, make([]byte, 64))
				n.Get(p)
				if i%7 == 0 {
					n.Delete(p)
				}
			}
		}(g)
	}
	wg.Wait()
	if _, used := n.Stats(); used > 10000 {
		t.Errorf("capacity exceeded under concurrency: %d", used)
	}
}

func TestPFSBasics(t *testing.T) {
	p := NewPFS()
	p.Put("d/a", []byte("data-a"))
	got, err := p.Get("d/a")
	if err != nil || string(got) != "data-a" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := p.Get("d/x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if !p.Has("d/a") || p.Has("d/x") {
		t.Error("Has mismatch")
	}
	p.Put("d/a", []byte("xy"))
	if objs, b := p.Stats(); objs != 1 || b != 2 {
		t.Errorf("stats = %d, %d", objs, b)
	}
	p.Delete("d/a")
	if objs, b := p.Stats(); objs != 0 || b != 0 {
		t.Errorf("stats after delete = %d, %d", objs, b)
	}
}

func TestPFSCounters(t *testing.T) {
	p := NewPFS()
	p.Put("a", make([]byte, 10))
	p.Get("a")
	p.Get("a")
	p.Get("missing") // metadata op but no read
	p.Has("a")       // metadata op only
	reads, rb, meta := p.Counters()
	if reads != 2 || rb != 20 {
		t.Errorf("reads=%d bytes=%d", reads, rb)
	}
	if meta != 4 {
		t.Errorf("metadataOps=%d, want 4", meta)
	}
	p.ResetCounters()
	if r, b, m := p.Counters(); r != 0 || b != 0 || m != 0 {
		t.Error("counters not reset")
	}
}

func TestNVMeModelTimes(t *testing.T) {
	m := FrontierNVMe()
	rt := m.ReadTime(8 * GiB)
	if rt < time.Second || rt > 1100*time.Millisecond {
		t.Errorf("8 GiB read at 8 GiB/s = %v, want ~1s", rt)
	}
	wt := m.WriteTime(4 * GiB)
	if wt < time.Second || wt > 1100*time.Millisecond {
		t.Errorf("4 GiB write at 4 GiB/s = %v, want ~1s", wt)
	}
	if m.ReadTime(0) != m.AccessLatency {
		t.Error("zero-byte read should cost only latency")
	}
}

func TestPFSModelContention(t *testing.T) {
	m := FrontierOrion()
	alone := m.ReadTime(64*MiB, 1)
	crowded := m.ReadTime(64*MiB, 1024)
	if crowded <= alone {
		t.Errorf("contended read (%v) should exceed solo read (%v)", crowded, alone)
	}
	// At 1024 readers each gets ~220/1024 GiB/s ≈ 0.215 GiB/s; a 64 MiB
	// read takes ≈ 0.29 s plus metadata.
	if crowded < 200*time.Millisecond || crowded > 2*time.Second {
		t.Errorf("contended read = %v, out of plausible range", crowded)
	}
}

func TestPFSModelPerClientCap(t *testing.T) {
	m := PFSModel{AggregateBandwidth: 100 * GiB, PerClientCap: 1 * GiB, MetadataParallelism: 1}
	// A single client must be capped at 1 GiB/s even though the aggregate
	// would allow 100 GiB/s.
	rt := m.ReadTime(1*GiB, 1)
	if rt < 900*time.Millisecond {
		t.Errorf("per-client cap not applied: %v", rt)
	}
}

func TestPFSMetadataQueueing(t *testing.T) {
	m := PFSModel{MetadataOpTime: time.Millisecond, MetadataParallelism: 4}
	if got := m.MetadataTime(1); got != time.Millisecond {
		t.Errorf("solo metadata = %v", got)
	}
	if got := m.MetadataTime(8); got != 2*time.Millisecond {
		t.Errorf("8 clients over 4-wide MDS = %v, want 2ms", got)
	}
	if got := m.MetadataTime(0); got != time.Millisecond {
		t.Errorf("clamped concurrency = %v", got)
	}
}

func TestModelMonotonicity(t *testing.T) {
	m := FrontierOrion()
	prev := time.Duration(0)
	for _, c := range []int{1, 2, 8, 64, 512, 1024} {
		rt := m.ReadTime(2*MiB, c)
		if rt < prev {
			t.Errorf("ReadTime not monotonic in concurrency at %d: %v < %v", c, rt, prev)
		}
		prev = rt
	}
	prevB := time.Duration(0)
	for _, b := range []int64{0, KiB, MiB, 16 * MiB, GiB} {
		rt := m.ReadTime(b, 16)
		if rt < prevB {
			t.Errorf("ReadTime not monotonic in size at %d", b)
		}
		prevB = rt
	}
}

func BenchmarkNVMePutGet(b *testing.B) {
	n := NewNVMe(1 << 30)
	data := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := fmt.Sprintf("f%d", i%1000)
		n.Put(p, data)
		n.Get(p)
	}
}

// TestNVMeBatchSpillEvictionRace drives concurrent PutBatch calls into
// a store whose budget forces constant cross-shard spill and eviction:
// batches large relative to capacity mean every insert triggers the
// evictShardLockedProtected / evictSpill machinery while other batches
// and single puts race it. Under -race this exercises the lock-ordering
// and accounting paths; the assertions pin the invariants — the global
// byte budget is never overshot, per-shard atomic mirrors reconcile
// with the locked maps, and every surviving object reads back intact.
func TestNVMeBatchSpillEvictionRace(t *testing.T) {
	const (
		capacity   = 4096
		goroutines = 8
		rounds     = 60
		batchSize  = 12
		objBytes   = 96 // goroutines*batchSize*objBytes >> capacity
	)
	n := NewNVMeShards(capacity, 8)
	content := func(g, r, k int) []byte {
		b := make([]byte, objBytes)
		for i := range b {
			b[i] = byte(g*31 + r*7 + k)
		}
		return b
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				entries := make([]BatchEntry, batchSize)
				for k := range entries {
					// Shared key space across goroutines: replacements
					// and same-key races are part of the workload.
					entries[k] = BatchEntry{
						Path: fmt.Sprintf("batch/f%03d", (g*rounds+r*batchSize+k)%200),
						Data: content(g, r, k),
					}
				}
				for _, err := range n.PutBatch(entries) {
					if err != nil {
						t.Errorf("PutBatch: %v", err)
						return
					}
				}
				// Interleave the non-batch mutators so single-key evict
				// and delete race the batch machinery.
				solo := fmt.Sprintf("solo/g%d-r%d", g, r)
				if err := n.Put(solo, content(g, r, 255)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				n.Get(fmt.Sprintf("batch/f%03d", r%200))
				if r%5 == 0 {
					n.Delete(solo)
				}
				if _, used := n.Stats(); used > capacity {
					t.Errorf("budget overshot mid-race: used=%d > capacity=%d", used, capacity)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The churn usually spills, but whether any single insert exhausts
	// its own shard is scheduling-dependent. Force one deterministic
	// cross-shard spill: top the store up to its budget, then aim a
	// batch at the *smallest* shard that is bigger than that shard plus
	// the free headroom combined — local eviction cannot cover it, so
	// the insert must evict from sibling shards.
	for i := 0; ; i++ {
		if _, used := n.Stats(); used > capacity-objBytes {
			break
		}
		if err := n.Put(fmt.Sprintf("fill/%d", i), content(9, i, 0)); err != nil {
			t.Fatalf("top-up Put: %v", err)
		}
	}
	target := 0
	for i, b := range n.ShardBytes() {
		if b < n.ShardBytes()[target] {
			target = i
		}
	}
	// Shard placement is a deterministic hash, so probing a scratch
	// store with the same shard count reveals where a key will land.
	probe := NewNVMeShards(1<<20, 8)
	shardOf := func(path string) int {
		if err := probe.Put(path, []byte("x")); err != nil {
			t.Fatalf("probe Put: %v", err)
		}
		defer probe.Delete(path)
		for i, b := range probe.ShardBytes() {
			if b > 0 {
				return i
			}
		}
		return -1
	}
	var spillBatch []BatchEntry
	for i := 0; len(spillBatch) < (capacity-2*objBytes)/objBytes; i++ {
		key := fmt.Sprintf("spill/k%d", i)
		if shardOf(key) == target {
			spillBatch = append(spillBatch, BatchEntry{Path: key, Data: content(11, i, 0)})
		}
	}
	spillsBefore := n.Spills()
	for _, err := range n.PutBatch(spillBatch) {
		if err != nil {
			t.Fatalf("forced-spill PutBatch: %v", err)
		}
	}
	if n.Spills() == spillsBefore {
		t.Errorf("single-shard batch of %d B into the smallest shard did not spill cross-shard", len(spillBatch)*objBytes)
	}

	// Quiescent reconciliation: locked Stats, atomic mirrors, and the
	// per-shard byte vector must all agree.
	objs, used := n.Stats()
	aObjs, aUsed := n.StatsAtomic()
	if int64(objs) != aObjs || used != aUsed {
		t.Errorf("accounting diverged: Stats=(%d,%d) StatsAtomic=(%d,%d)", objs, used, aObjs, aUsed)
	}
	var shardSum int64
	for _, b := range n.ShardBytes() {
		shardSum += b
	}
	if shardSum != used {
		t.Errorf("shard byte vector sums to %d, Stats says %d", shardSum, used)
	}
	if used > capacity {
		t.Errorf("budget overshot at quiescence: used=%d > capacity=%d", used, capacity)
	}
	// Every survivor must read back with the uniform fill byte its
	// writer stamped (a mixed buffer means eviction freed live bytes).
	for _, path := range n.Paths() {
		data, err := n.Get(path)
		if err != nil {
			t.Fatalf("resident path %s unreadable at quiescence: %v", path, err)
		}
		for i := 1; i < len(data); i++ {
			if data[i] != data[0] {
				t.Fatalf("torn object %s: byte %d is %#x, want %#x", path, i, data[i], data[0])
			}
		}
	}
}
