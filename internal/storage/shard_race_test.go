package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestNVMeShardedEvictionConcurrent hammers a sharded cache from many
// goroutines with capacity set to half the working set, so eviction and
// cross-shard spill run constantly while Gets, Deletes and Stats race
// them. Invariants checked after the storm: the byte budget was
// respected, the books balance (deleting everything returns used to 0),
// and no stored object was corrupted. Run under -race in CI.
func TestNVMeShardedEvictionConcurrent(t *testing.T) {
	const (
		workers  = 8
		files    = 256
		fileSize = 128
	)
	n := NewNVMeShards(files*fileSize/2, 8)
	keys := make([]string, files)
	vals := make([][]byte, files)
	for i := range keys {
		keys[i] = fmt.Sprintf("train/f%04d", i)
		vals[i] = bytes.Repeat([]byte{byte(i)}, fileSize)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				k := (i*7 + w*13) % files
				switch i % 5 {
				case 0, 1:
					if err := n.Put(keys[k], vals[k]); err != nil {
						t.Errorf("put %s: %v", keys[k], err)
						return
					}
				case 2, 3:
					if data, err := n.Get(keys[k]); err == nil {
						if len(data) != fileSize || data[0] != byte(k) || data[fileSize-1] != byte(k) {
							t.Errorf("get %s: corrupt data", keys[k])
							return
						}
					}
				case 4:
					if i%50 == 0 {
						n.Delete(keys[k])
					} else {
						n.Stats()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if _, used := n.Stats(); used > n.Capacity() {
		t.Errorf("used %d exceeds capacity %d after quiescence", used, n.Capacity())
	}
	hits, misses, evictions := n.Counters()
	if evictions == 0 {
		t.Error("expected eviction churn at half-capacity")
	}
	if hits == 0 || misses == 0 {
		t.Errorf("implausible counters: hits=%d misses=%d", hits, misses)
	}
	// The books must balance exactly: empty cache, zero bytes.
	for _, k := range keys {
		n.Delete(k)
	}
	if objs, used := n.Stats(); objs != 0 || used != 0 {
		t.Errorf("after deleting all: objs=%d used=%d, want 0,0", objs, used)
	}
}

// TestNVMeSpillEvictsOtherShards pins the cross-shard budget: with many
// shards and sequential inserts of distinct keys, the global byte bound
// holds even though each insert's victims usually live on other shards.
func TestNVMeSpillEvictsOtherShards(t *testing.T) {
	n := NewNVMeShards(1024, 16)
	for i := 0; i < 200; i++ {
		if err := n.Put(fmt.Sprintf("f%03d", i), make([]byte, 256)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if _, used := n.Stats(); used > 1024 {
			t.Fatalf("after put %d: used %d exceeds capacity", i, used)
		}
		// The object just inserted must never be its own victim.
		if !n.Has(fmt.Sprintf("f%03d", i)) {
			t.Fatalf("put %d evicted itself", i)
		}
	}
	if _, _, ev := n.Counters(); ev == 0 {
		t.Error("expected evictions")
	}
}

// TestNVMeClearConcurrentWithPuts races Clear (node failure simulation)
// against writers; afterwards the accounting must still balance.
func TestNVMeClearConcurrentWithPuts(t *testing.T) {
	n := NewNVMeShards(1<<20, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n.Put(fmt.Sprintf("w%d/f%d", w, i%64), make([]byte, 64))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		n.Clear()
	}
	close(stop)
	wg.Wait()
	n.Clear()
	if objs, used := n.Stats(); objs != 0 || used != 0 {
		t.Errorf("after final clear: objs=%d used=%d, want 0,0", objs, used)
	}
}

// TestPFSShardedConcurrent races reads, writes, deletes and stats on the
// sharded PFS; byte accounting must balance after a full delete.
func TestPFSShardedConcurrent(t *testing.T) {
	p := NewPFS()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("ds/f%04d", (i+w*37)%128)
				switch i % 4 {
				case 0:
					p.Put(k, make([]byte, 32))
				case 1:
					p.Get(k)
				case 2:
					p.Has(k)
				case 3:
					p.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 128; i++ {
		p.Delete(fmt.Sprintf("ds/f%04d", i))
	}
	if objs, bytes := p.Stats(); objs != 0 || bytes != 0 {
		t.Errorf("after deleting all: objs=%d bytes=%d, want 0,0", objs, bytes)
	}
}
