// Package storage provides the two storage tiers of the FT-Cache stack:
//
//   - NVMe: the node-local cache device (Frontier: 2×1.9 TB PM9A3 in
//     RAID0, 3.5 TB usable) — here an in-memory object store with
//     capacity accounting and LRU eviction.
//   - PFS: the center-wide parallel file system (Lustre "Orion") — a
//     shared object store that additionally tracks access counts, the
//     key observable in the paper's experiments (each strategy is
//     distinguished by *how often it goes back to the PFS*).
//
// Both stores are sharded: object paths hash onto independent
// lock-protected shards so concurrent requests from many client
// goroutines contend only when they land on the same shard, not on one
// global mutex. The NVMe cache keeps a single global capacity budget
// (an atomic counter) across its shards, so the byte bound and the
// ErrTooLarge rule are identical to an unsharded cache; only the LRU
// victim order becomes per-shard-approximate when more than one shard is
// configured (shards=1 preserves exact global LRU for tests).
//
// Functional behaviour (what is stored where) is separated from
// performance behaviour: device *models* in device.go turn byte counts
// and concurrency into service times for the discrete-event simulator,
// so live tests run at memory speed while experiments reproduce
// Frontier-like timing.
package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xhash"
)

// Common store errors.
var (
	// ErrNotFound reports a missing object.
	ErrNotFound = errors.New("storage: object not found")
	// ErrTooLarge reports an object bigger than the device capacity.
	ErrTooLarge = errors.New("storage: object exceeds device capacity")
)

// notFoundError carries the missing path without paying a fmt.Errorf
// allocation storm on every miss — the miss path is as hot as the hit
// path under a cold cache. errors.Is(err, ErrNotFound) still matches
// through Unwrap.
type notFoundError struct{ path string }

func (e *notFoundError) Error() string { return "storage: object not found: " + e.path }
func (e *notFoundError) Unwrap() error { return ErrNotFound }

// Store is the minimal object interface shared by both tiers.
type Store interface {
	// Put stores data under path, replacing any prior object.
	Put(path string, data []byte) error
	// Get returns the object at path or ErrNotFound. The returned slice
	// must not be modified by the caller.
	Get(path string) ([]byte, error)
	// Has reports whether path is present.
	Has(path string) bool
	// Delete removes path if present; absent paths are a no-op.
	Delete(path string)
	// Stats returns object count and total bytes.
	Stats() (objects int, bytes int64)
}

// DefaultNVMeShards is the shard count NewNVMe uses: enough to spread a
// busy node's request goroutines (one per in-flight RPC) across
// independent locks without bloating the per-store footprint.
const DefaultNVMeShards = 16

// shardSeed decorrelates the shard-pick hash from the consistent-hash
// ring's key hash so ring placement does not concentrate a node's keys
// onto few shards.
const shardSeed = 0x9E3779B97F4A7C15

// NVMe is the node-local cache store: bounded capacity with LRU eviction
// on insert pressure (the cache holds a *replaceable copy* of PFS data,
// so evicting is always safe).
//
// Internally the key space is hashed across shards, each with its own
// mutex, map and LRU list. Capacity is a single global byte budget: an
// insert that pushes the total over capacity evicts least-recently-used
// objects from its own shard first, then spills to the other shards —
// taking one shard lock at a time, so there is no lock ordering to
// deadlock on.
type NVMe struct {
	capacity int64
	used     atomic.Int64
	shards   []nvmeShard
	mask     uint64

	evictions atomic.Int64
	spills    atomic.Int64 // evictions performed outside the inserting shard
	hits      atomic.Int64
	misses    atomic.Int64
}

type nvmeShard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List // front = most recently used
	// bytes/objects mirror the shard's content for lock-free telemetry
	// reads; they are written under mu but loaded without it.
	bytes   atomic.Int64
	objects atomic.Int64
	_       [40]byte // pad to a cache line so shard locks don't false-share
}

type nvmeEntry struct {
	path string
	data []byte
}

// NewNVMe creates a store with the given byte capacity and
// DefaultNVMeShards shards. capacity <= 0 means unbounded (useful in
// unit tests).
func NewNVMe(capacity int64) *NVMe {
	return NewNVMeShards(capacity, DefaultNVMeShards)
}

// NewNVMeShards creates a store with an explicit shard count (rounded up
// to a power of two; non-positive selects DefaultNVMeShards). shards=1
// gives the exact global LRU order of an unsharded cache, which the
// eviction-order tests rely on.
func NewNVMeShards(capacity int64, shards int) *NVMe {
	if shards <= 0 {
		shards = DefaultNVMeShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &NVMe{
		capacity: capacity,
		shards:   make([]nvmeShard, n),
		mask:     uint64(n - 1),
	}
	for i := range s.shards {
		s.shards[i].items = make(map[string]*list.Element)
		s.shards[i].lru = list.New()
	}
	return s
}

func (n *NVMe) shardFor(path string) *nvmeShard {
	return &n.shards[xhash.XXH64String(path, shardSeed)&n.mask]
}

// Put implements Store, evicting least-recently-used objects as needed.
func (n *NVMe) Put(path string, data []byte) error {
	size := int64(len(data))
	if n.capacity > 0 && size > n.capacity {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, size, n.capacity)
	}
	sh := n.shardFor(path)
	sh.mu.Lock()
	kept := n.insertLocked(sh, path, data)
	if n.capacity > 0 {
		n.evictShardLocked(sh, kept)
	}
	sh.mu.Unlock()
	if n.capacity > 0 && n.used.Load() > n.capacity {
		n.evictSpill(sh, kept)
	}
	return nil
}

// insertLocked stores or replaces path in sh (whose lock the caller
// holds), maintaining the byte/object accounting, and returns the
// entry's LRU element.
func (n *NVMe) insertLocked(sh *nvmeShard, path string, data []byte) *list.Element {
	size := int64(len(data))
	if el, ok := sh.items[path]; ok {
		old := el.Value.(*nvmeEntry)
		n.used.Add(size - int64(len(old.data)))
		sh.bytes.Add(size - int64(len(old.data)))
		old.data = data
		sh.lru.MoveToFront(el)
		return el
	}
	el := sh.lru.PushFront(&nvmeEntry{path: path, data: data})
	sh.items[path] = el
	n.used.Add(size)
	sh.bytes.Add(size)
	sh.objects.Add(1)
	return el
}

// BatchEntry is one object of a PutBatch.
type BatchEntry struct {
	Path string
	Data []byte
}

// PutBatch stores a batch of objects, taking each destination shard's
// lock exactly once for all of that shard's entries — the server-side
// half of the batched ingest pipeline, where one decoded wire batch
// becomes one sharded insert pass instead of len(entries) lock
// round-trips. Returns one error slot per entry (nil on success); the
// only per-entry failure is ErrTooLarge.
//
// Eviction protects every member of the batch, not just the newest
// insert: evicting an object the same call just accepted would turn the
// batch ack into a lie, so pressure spills to older objects across all
// shards first. Only a pathological batch that cannot fit even in an
// otherwise-empty cache falls back to sequential-put semantics (newest
// insert protected, earlier batch-mates evictable). Occupancy may
// transiently overshoot capacity by at most the batch's byte size
// (bounded by the ingest batch limit) while the pass runs.
func (n *NVMe) PutBatch(entries []BatchEntry) []error {
	errs := make([]error, len(entries))
	if len(entries) == 0 {
		return errs
	}
	// Group entry indices by shard. The common batch is small (tens of
	// entries), so a per-shard slice map beats sorting.
	byShard := make(map[*nvmeShard][]int, 4)
	for i := range entries {
		size := int64(len(entries[i].Data))
		if n.capacity > 0 && size > n.capacity {
			errs[i] = fmt.Errorf("%w: %d > %d", ErrTooLarge, size, n.capacity)
			continue
		}
		sh := n.shardFor(entries[i].Path)
		byShard[sh] = append(byShard[sh], i)
	}
	protected := make(map[*nvmeShard]map[*list.Element]struct{}, len(byShard))
	var lastShard *nvmeShard
	var lastKept *list.Element
	for sh, idxs := range byShard {
		sh.mu.Lock()
		prot := make(map[*list.Element]struct{}, len(idxs))
		for _, i := range idxs {
			lastKept = n.insertLocked(sh, entries[i].Path, entries[i].Data)
			prot[lastKept] = struct{}{}
		}
		if n.capacity > 0 {
			n.evictShardLockedProtected(sh, prot)
		}
		sh.mu.Unlock()
		protected[sh] = prot
		lastShard = sh
	}
	if lastShard == nil || n.capacity <= 0 {
		return errs
	}
	// Spill pass: the batch's shards ran out of unprotected objects, so
	// walk every shard (batch members still protected) to meet the
	// budget.
	for i := range n.shards {
		if n.used.Load() <= n.capacity {
			return errs
		}
		sh := &n.shards[i]
		sh.mu.Lock()
		evicted := n.evictShardLockedProtected(sh, protected[sh])
		sh.mu.Unlock()
		if protected[sh] == nil {
			n.spills.Add(int64(evicted))
		}
	}
	if n.used.Load() > n.capacity {
		// The batch alone exceeds the cache: nothing unprotected is
		// left, so degrade to sequential-put semantics — only the very
		// newest insert is sacred.
		n.evictSpill(lastShard, lastKept)
	}
	return errs
}

// evictShardLockedProtected evicts LRU-order objects from sh (whose
// lock the caller holds) until the global budget is met, skipping any
// element in protected (nil = none). Returns the number evicted.
func (n *NVMe) evictShardLockedProtected(sh *nvmeShard, protected map[*list.Element]struct{}) int {
	evicted := 0
	for n.used.Load() > n.capacity {
		tail := sh.lru.Back()
		for tail != nil {
			if _, ok := protected[tail]; !ok {
				break
			}
			tail = tail.Prev()
		}
		if tail == nil {
			return evicted
		}
		ent := tail.Value.(*nvmeEntry)
		sh.lru.Remove(tail)
		delete(sh.items, ent.path)
		n.used.Add(-int64(len(ent.data)))
		sh.bytes.Add(-int64(len(ent.data)))
		sh.objects.Add(-1)
		n.evictions.Add(1)
		evicted++
	}
	return evicted
}

// evictShardLocked evicts LRU-order objects from sh (whose lock the
// caller holds) until the global budget is met or only keep remains,
// returning the number of objects evicted.
func (n *NVMe) evictShardLocked(sh *nvmeShard, keep *list.Element) int {
	evicted := 0
	for n.used.Load() > n.capacity {
		tail := sh.lru.Back()
		if tail != nil && tail == keep {
			// Never evict the object that was just inserted — the point
			// of the Put is for it to be cached; spill to other shards.
			tail = tail.Prev()
		}
		if tail == nil {
			return evicted
		}
		ent := tail.Value.(*nvmeEntry)
		sh.lru.Remove(tail)
		delete(sh.items, ent.path)
		n.used.Add(-int64(len(ent.data)))
		sh.bytes.Add(-int64(len(ent.data)))
		sh.objects.Add(-1)
		n.evictions.Add(1)
		evicted++
	}
	return evicted
}

// evictSpill walks the other shards (one lock at a time) evicting their
// LRU tails until the global budget is met. from is the shard whose
// insert overflowed; it is revisited last with its keep element still
// protected, so a full cycle can evict everything except the newest
// object — at which point used == len(new object) <= capacity.
func (n *NVMe) evictSpill(from *nvmeShard, keep *list.Element) {
	start := 0
	for i := range n.shards {
		if &n.shards[i] == from {
			start = i
			break
		}
	}
	for off := 1; off <= len(n.shards); off++ {
		if n.used.Load() <= n.capacity {
			return
		}
		sh := &n.shards[(start+off)&int(n.mask)]
		k := keep
		if sh != from {
			k = nil
		}
		sh.mu.Lock()
		evicted := n.evictShardLocked(sh, k)
		sh.mu.Unlock()
		if sh != from {
			n.spills.Add(int64(evicted))
		}
	}
}

// Get implements Store and refreshes recency on hit.
//
//ftc:hotpath
func (n *NVMe) Get(path string) ([]byte, error) {
	sh := n.shardFor(path)
	sh.mu.Lock() //ftclint:ignore hotpathlock per-shard LRU lock is the sharded design; contention is 1/N by construction
	el, ok := sh.items[path]
	if !ok {
		sh.mu.Unlock()
		n.misses.Add(1)
		return nil, &notFoundError{path}
	}
	sh.lru.MoveToFront(el)
	data := el.Value.(*nvmeEntry).data
	sh.mu.Unlock()
	n.hits.Add(1)
	return data, nil
}

// Has implements Store without perturbing recency or hit counters.
func (n *NVMe) Has(path string) bool {
	sh := n.shardFor(path)
	sh.mu.Lock()
	_, ok := sh.items[path]
	sh.mu.Unlock()
	return ok
}

// Delete implements Store.
func (n *NVMe) Delete(path string) {
	sh := n.shardFor(path)
	sh.mu.Lock()
	if el, ok := sh.items[path]; ok {
		size := int64(len(el.Value.(*nvmeEntry).data))
		n.used.Add(-size)
		sh.bytes.Add(-size)
		sh.objects.Add(-1)
		sh.lru.Remove(el)
		delete(sh.items, path)
	}
	sh.mu.Unlock()
}

// Stats implements Store.
// Paths returns every resident path (unordered). Diagnostic use only —
// it takes each shard lock in turn, so the snapshot is per-shard
// consistent, not globally atomic.
func (n *NVMe) Paths() []string {
	var out []string
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		for p := range sh.items {
			out = append(out, p)
		}
		sh.mu.Unlock()
	}
	return out
}

func (n *NVMe) Stats() (int, int64) {
	objects := 0
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		objects += len(sh.items)
		sh.mu.Unlock()
	}
	return objects, n.used.Load()
}

// StatsAtomic is the lock-free variant of Stats for telemetry scrapes:
// it sums the per-shard atomic mirrors, so a scrape never contends with
// the request path. Counts may be mid-update-skewed by in-flight Puts.
//
//ftc:hotpath
func (n *NVMe) StatsAtomic() (objects int64, bytes int64) {
	for i := range n.shards {
		objects += n.shards[i].objects.Load()
	}
	return objects, n.used.Load()
}

// ShardBytes returns the current per-shard byte occupancy (lock-free) —
// the balance observable the /debug/ftcache snapshot exposes.
//
//ftc:hotpath
func (n *NVMe) ShardBytes() []int64 {
	out := make([]int64, len(n.shards))
	for i := range n.shards {
		out[i] = n.shards[i].bytes.Load()
	}
	return out
}

// Counters returns cumulative hit/miss/eviction counts.
func (n *NVMe) Counters() (hits, misses, evictions int64) {
	return n.hits.Load(), n.misses.Load(), n.evictions.Load()
}

// Spills returns the cumulative count of evictions that spilled outside
// the inserting shard — a signal that one shard's insert pressure is
// eating the budget of the others.
func (n *NVMe) Spills() int64 { return n.spills.Load() }

// Capacity returns the configured byte capacity (0 = unbounded).
func (n *NVMe) Capacity() int64 { return n.capacity }

// Clear drops every object — used to model losing a node's cache when
// the node "fails" and later rejoins empty. Shards are cleared one at a
// time; the byte budget is decremented per shard so a concurrent Put
// keeps a consistent view.
func (n *NVMe) Clear() {
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		var bytes int64
		for _, el := range sh.items {
			bytes += int64(len(el.Value.(*nvmeEntry).data))
		}
		sh.items = make(map[string]*list.Element)
		sh.lru.Init()
		n.used.Add(-bytes)
		sh.bytes.Add(-bytes)
		sh.objects.Store(0)
		sh.mu.Unlock()
	}
}

// DefaultPFSShards spreads the shared store's read traffic — every node
// of a job faulting in its first epoch hits the same PFS — across
// independent read-write locks.
const DefaultPFSShards = 16

// PFS is the shared parallel file system: the durable home of the
// training dataset. It counts reads and metadata operations because the
// paper's whole argument is about minimizing them. The object map is
// sharded by path hash; counters are global atomics.
type PFS struct {
	shards []pfsShard
	mask   uint64
	bytes  atomic.Int64

	// readDelay, when > 0 (ns), stalls every Get by that long — the
	// chaos harness's PFS-contention model (a loaded Lustre answering
	// slowly fleet-wide). One atomic load when unset.
	readDelay atomic.Int64

	reads       atomic.Int64
	readBytes   atomic.Int64
	metadataOps atomic.Int64
}

type pfsShard struct {
	mu    sync.RWMutex
	items map[string][]byte
	_     [40]byte // pad to a cache line so shard locks don't false-share
}

// NewPFS creates an empty PFS with DefaultPFSShards shards.
func NewPFS() *PFS {
	p := &PFS{shards: make([]pfsShard, DefaultPFSShards), mask: DefaultPFSShards - 1}
	for i := range p.shards {
		p.shards[i].items = make(map[string][]byte)
	}
	return p
}

func (p *PFS) shardFor(path string) *pfsShard {
	return &p.shards[xhash.XXH64String(path, shardSeed)&p.mask]
}

// Put implements Store (dataset staging, done before training).
func (p *PFS) Put(path string, data []byte) error {
	sh := p.shardFor(path)
	sh.mu.Lock()
	if old, ok := sh.items[path]; ok {
		p.bytes.Add(-int64(len(old)))
	}
	sh.items[path] = data
	p.bytes.Add(int64(len(data)))
	sh.mu.Unlock()
	return nil
}

// Get implements Store, counting one metadata op and one read.
//
//ftc:hotpath
func (p *PFS) Get(path string) ([]byte, error) {
	if d := p.readDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	p.metadataOps.Add(1)
	sh := p.shardFor(path)
	sh.mu.RLock() //ftclint:ignore hotpathlock per-shard read lock is the sharded design; contention is 1/N by construction
	data, ok := sh.items[path]
	sh.mu.RUnlock()
	if !ok {
		return nil, &notFoundError{path}
	}
	p.reads.Add(1)
	p.readBytes.Add(int64(len(data)))
	return data, nil
}

// Has implements Store, counting one metadata op.
func (p *PFS) Has(path string) bool {
	p.metadataOps.Add(1)
	sh := p.shardFor(path)
	sh.mu.RLock()
	_, ok := sh.items[path]
	sh.mu.RUnlock()
	return ok
}

// Delete implements Store.
func (p *PFS) Delete(path string) {
	sh := p.shardFor(path)
	sh.mu.Lock()
	if old, ok := sh.items[path]; ok {
		p.bytes.Add(-int64(len(old)))
		delete(sh.items, path)
	}
	sh.mu.Unlock()
}

// Stats implements Store.
func (p *PFS) Stats() (int, int64) {
	objects := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		objects += len(sh.items)
		sh.mu.RUnlock()
	}
	return objects, p.bytes.Load()
}

// Counters returns cumulative read count, read bytes, and metadata ops.
func (p *PFS) Counters() (reads, readBytes, metadataOps int64) {
	return p.reads.Load(), p.readBytes.Load(), p.metadataOps.Load()
}

// ResetCounters zeroes the access counters (between experiment phases).
func (p *PFS) ResetCounters() {
	p.reads.Store(0)
	p.readBytes.Store(0)
	p.metadataOps.Store(0)
}

// SetReadDelay injects a per-Get service delay (contention model);
// d <= 0 clears it. Takes effect on the next read, fleet-wide — every
// consumer of this PFS (server fallback, client direct read, policy
// probe) observes the same slowdown, exactly like a congested shared
// file system.
func (p *PFS) SetReadDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.readDelay.Store(int64(d))
}

// ReadDelay returns the injected per-Get delay (0 = none).
func (p *PFS) ReadDelay() time.Duration { return time.Duration(p.readDelay.Load()) }
