// Package storage provides the two storage tiers of the FT-Cache stack:
//
//   - NVMe: the node-local cache device (Frontier: 2×1.9 TB PM9A3 in
//     RAID0, 3.5 TB usable) — here an in-memory object store with
//     capacity accounting and LRU eviction.
//   - PFS: the center-wide parallel file system (Lustre "Orion") — a
//     shared object store that additionally tracks access counts, the
//     key observable in the paper's experiments (each strategy is
//     distinguished by *how often it goes back to the PFS*).
//
// Functional behaviour (what is stored where) is separated from
// performance behaviour: device *models* in device.go turn byte counts
// and concurrency into service times for the discrete-event simulator,
// so live tests run at memory speed while experiments reproduce
// Frontier-like timing.
package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Common store errors.
var (
	// ErrNotFound reports a missing object.
	ErrNotFound = errors.New("storage: object not found")
	// ErrTooLarge reports an object bigger than the device capacity.
	ErrTooLarge = errors.New("storage: object exceeds device capacity")
)

// Store is the minimal object interface shared by both tiers.
type Store interface {
	// Put stores data under path, replacing any prior object.
	Put(path string, data []byte) error
	// Get returns the object at path or ErrNotFound. The returned slice
	// must not be modified by the caller.
	Get(path string) ([]byte, error)
	// Has reports whether path is present.
	Has(path string) bool
	// Delete removes path if present; absent paths are a no-op.
	Delete(path string)
	// Stats returns object count and total bytes.
	Stats() (objects int, bytes int64)
}

// NVMe is the node-local cache store: bounded capacity with LRU eviction
// on insert pressure (the cache holds a *replaceable copy* of PFS data,
// so evicting is always safe).
type NVMe struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	items    map[string]*list.Element
	lru      *list.List // front = most recently used

	evictions atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
}

type nvmeEntry struct {
	path string
	data []byte
}

// NewNVMe creates a store with the given byte capacity. capacity <= 0
// means unbounded (useful in unit tests).
func NewNVMe(capacity int64) *NVMe {
	return &NVMe{
		capacity: capacity,
		items:    make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Put implements Store, evicting least-recently-used objects as needed.
func (n *NVMe) Put(path string, data []byte) error {
	size := int64(len(data))
	if n.capacity > 0 && size > n.capacity {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, size, n.capacity)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if el, ok := n.items[path]; ok {
		old := el.Value.(*nvmeEntry)
		n.used -= int64(len(old.data))
		old.data = data
		n.used += size
		n.lru.MoveToFront(el)
	} else {
		el := n.lru.PushFront(&nvmeEntry{path: path, data: data})
		n.items[path] = el
		n.used += size
	}
	for n.capacity > 0 && n.used > n.capacity {
		tail := n.lru.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*nvmeEntry)
		n.lru.Remove(tail)
		delete(n.items, ent.path)
		n.used -= int64(len(ent.data))
		n.evictions.Add(1)
	}
	return nil
}

// Get implements Store and refreshes recency on hit.
func (n *NVMe) Get(path string) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	el, ok := n.items[path]
	if !ok {
		n.misses.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	n.hits.Add(1)
	n.lru.MoveToFront(el)
	return el.Value.(*nvmeEntry).data, nil
}

// Has implements Store without perturbing recency or hit counters.
func (n *NVMe) Has(path string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.items[path]
	return ok
}

// Delete implements Store.
func (n *NVMe) Delete(path string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if el, ok := n.items[path]; ok {
		n.used -= int64(len(el.Value.(*nvmeEntry).data))
		n.lru.Remove(el)
		delete(n.items, path)
	}
}

// Stats implements Store.
func (n *NVMe) Stats() (int, int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.items), n.used
}

// Counters returns cumulative hit/miss/eviction counts.
func (n *NVMe) Counters() (hits, misses, evictions int64) {
	return n.hits.Load(), n.misses.Load(), n.evictions.Load()
}

// Capacity returns the configured byte capacity (0 = unbounded).
func (n *NVMe) Capacity() int64 { return n.capacity }

// Clear drops every object — used to model losing a node's cache when
// the node "fails" and later rejoins empty.
func (n *NVMe) Clear() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.items = make(map[string]*list.Element)
	n.lru.Init()
	n.used = 0
}

// PFS is the shared parallel file system: the durable home of the
// training dataset. It counts reads and metadata operations because the
// paper's whole argument is about minimizing them.
type PFS struct {
	mu    sync.RWMutex
	items map[string][]byte
	bytes int64

	reads       atomic.Int64
	readBytes   atomic.Int64
	metadataOps atomic.Int64
}

// NewPFS creates an empty PFS.
func NewPFS() *PFS {
	return &PFS{items: make(map[string][]byte)}
}

// Put implements Store (dataset staging, done before training).
func (p *PFS) Put(path string, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if old, ok := p.items[path]; ok {
		p.bytes -= int64(len(old))
	}
	p.items[path] = data
	p.bytes += int64(len(data))
	return nil
}

// Get implements Store, counting one metadata op and one read.
func (p *PFS) Get(path string) ([]byte, error) {
	p.metadataOps.Add(1)
	p.mu.RLock()
	data, ok := p.items[path]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	p.reads.Add(1)
	p.readBytes.Add(int64(len(data)))
	return data, nil
}

// Has implements Store, counting one metadata op.
func (p *PFS) Has(path string) bool {
	p.metadataOps.Add(1)
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.items[path]
	return ok
}

// Delete implements Store.
func (p *PFS) Delete(path string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if old, ok := p.items[path]; ok {
		p.bytes -= int64(len(old))
		delete(p.items, path)
	}
}

// Stats implements Store.
func (p *PFS) Stats() (int, int64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.items), p.bytes
}

// Counters returns cumulative read count, read bytes, and metadata ops.
func (p *PFS) Counters() (reads, readBytes, metadataOps int64) {
	return p.reads.Load(), p.readBytes.Load(), p.metadataOps.Load()
}

// ResetCounters zeroes the access counters (between experiment phases).
func (p *PFS) ResetCounters() {
	p.reads.Store(0)
	p.readBytes.Store(0)
	p.metadataOps.Store(0)
}
