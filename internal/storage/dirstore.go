package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// DirStore exposes a directory tree as a read-mostly Store — the adapter
// that lets a standalone ftcserver treat a real mounted filesystem (on
// Frontier: the Lustre mount) as its PFS tier. Paths are slash-separated
// and confined to the root; escapes ("..", absolute paths) are rejected.
type DirStore struct {
	root string
}

// NewDirStore creates a store rooted at dir, which must exist.
func NewDirStore(dir string) (*DirStore, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: dir store root: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("storage: dir store root %s is not a directory", dir)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return &DirStore{root: abs}, nil
}

// Root returns the absolute root directory.
func (d *DirStore) Root() string { return d.root }

// resolve maps a store path to a filesystem path inside the root.
func (d *DirStore) resolve(path string) (string, error) {
	clean := filepath.Clean(filepath.FromSlash(path))
	if filepath.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("storage: path %q escapes the store root", path)
	}
	return filepath.Join(d.root, clean), nil
}

// Put implements Store, creating parent directories as needed.
func (d *DirStore) Put(path string, data []byte) error {
	fp, err := d.resolve(path)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(fp), 0o755); err != nil {
		return err
	}
	return os.WriteFile(fp, data, 0o644)
}

// Get implements Store.
func (d *DirStore) Get(path string) ([]byte, error) {
	fp, err := d.resolve(path)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(fp)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return data, err
}

// Has implements Store.
func (d *DirStore) Has(path string) bool {
	fp, err := d.resolve(path)
	if err != nil {
		return false
	}
	info, err := os.Stat(fp)
	return err == nil && !info.IsDir()
}

// Delete implements Store.
func (d *DirStore) Delete(path string) {
	if fp, err := d.resolve(path); err == nil {
		os.Remove(fp)
	}
}

// Stats implements Store by walking the tree.
func (d *DirStore) Stats() (int, int64) {
	var objects int
	var bytes int64
	filepath.WalkDir(d.root, func(_ string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return nil
		}
		if info, err := e.Info(); err == nil {
			objects++
			bytes += info.Size()
		}
		return nil
	})
	return objects, bytes
}

var _ Store = (*DirStore)(nil)
