package storage

import (
	"fmt"
	"testing"
)

// BenchmarkNVMeParallel measures the server-side cache under concurrent
// client load: mostly Gets with a Put mixed in every 16 ops, over a
// working set that fits in capacity. Run with -cpu 8 to see scaling.
func BenchmarkNVMeParallel(b *testing.B) {
	n := NewNVMe(1 << 30)
	data := make([]byte, 4096)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("cosmoUniverse/train/univ_%06d.tfrecord", i)
		n.Put(keys[i], data)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i&1023]
			if i&15 == 0 {
				n.Put(k, data)
			} else {
				n.Get(k)
			}
			i++
		}
	})
}

// BenchmarkNVMeParallelEviction measures the cache under insert pressure:
// capacity holds only half the working set, so Puts continuously evict.
func BenchmarkNVMeParallelEviction(b *testing.B) {
	n := NewNVMe(512 * 4096)
	data := make([]byte, 4096)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("cosmoUniverse/train/univ_%06d.tfrecord", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i&1023]
			if i&3 == 0 {
				n.Put(k, data)
			} else {
				n.Get(k)
			}
			i++
		}
	})
}

// BenchmarkPFSParallel measures the shared store under concurrent reads,
// the access pattern of a whole job faulting in its first epoch.
func BenchmarkPFSParallel(b *testing.B) {
	p := NewPFS()
	data := make([]byte, 4096)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("cosmoUniverse/train/univ_%06d.tfrecord", i)
		p.Put(keys[i], data)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p.Get(keys[i&1023])
			i++
		}
	})
}
