package chaos_test

// The chaos soak: a live in-process FT-Cache cluster under a seeded
// random fault schedule, asserting the system's safety and liveness
// invariants end to end:
//
//   1. Correctness — every read that completes returns exactly the
//      staged bytes (from NVMe, a replica, or the PFS fallback); a
//      single wrong byte fails the soak.
//   2. No stuck reads — every read completes within a generous budget
//      even while faults are active (transient failures are retried by
//      the harness; never finishing is the violation).
//   3. Convergence — after the fault window heals, every client's ring
//      returns to full membership and every tracker sees every node
//      alive: a healthy node is never permanently dead, even when the
//      only "fault" it suffered was added latency past the RPC TTL.
//   4. Post-heal epoch — a full verification pass over the dataset by
//      every client completes with zero errors.
//
// The schedule is deterministic from the seed: a failure reruns exactly
// with FTC_CHAOS_SEED=<printed seed>.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/hvac"
	"repro/internal/rpc"
	"repro/internal/testutil"
	"repro/internal/workload"
)

func TestChaosSoak(t *testing.T) {
	testutil.CheckGoroutines(t)
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	if s := os.Getenv("FTC_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FTC_CHAOS_SEED=%q: %v", s, err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSoak(t, seed, nil, 0)
		})
	}
}

// TestChaosSoakBatchedIngest is the soak with the batched async ingest
// pipeline on: writers PutAsync/Flush staged objects throughout the
// fault window (flush failures under faults are tolerated and retried
// as transients), and after the heal a dedicated epoch asserts the
// ack-visibility invariant — a Flush that returns success leaves every
// put object readable from its ring owner's NVMe.
func TestChaosSoakBatchedIngest(t *testing.T) {
	testutil.CheckGoroutines(t)
	seed := int64(4)
	if s := os.Getenv("FTC_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FTC_CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	runSoak(t, seed, &hvac.IngestConfig{MaxBatchEntries: 16, MaxDelay: 2 * time.Millisecond}, 0)
}

// TestChaosSoakRAMTier is the soak with the in-memory hot-object tier
// enabled on every server: the same wrong-bytes/stuck/convergence
// invariants must hold while hot objects get promoted into RAM, served
// zero-copy, evicted, demoted, and wiped by crash-restarts — and after
// the readers drain, no server may hold a leaked pool lease.
func TestChaosSoakRAMTier(t *testing.T) {
	testutil.CheckGoroutines(t)
	seeds := []int64{5, 6, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	if s := os.Getenv("FTC_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FTC_CHAOS_SEED=%q: %v", s, err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// 32 KiB per node holds ~64 of the 512-byte soak objects:
			// small enough that promotion, eviction, and demotion all
			// churn constantly during the run.
			runSoak(t, seed, nil, 32<<10)
		})
	}
}

func runSoak(t *testing.T, seed int64, ingest *hvac.IngestConfig, ramCapacity int64) {
	const (
		nodes      = 16
		nClients   = 4
		rpcTimeout = 60 * time.Millisecond
		readBudget = 15 * time.Second // per logical read, faults included
	)
	t.Logf("chaos soak seed=%d (replay: FTC_CHAOS_SEED=%d)", seed, seed)

	ctl := chaos.New(rpc.NewInprocNetwork(), chaos.Config{Seed: seed, DialTimeout: 50 * time.Millisecond})
	cl, err := core.NewCluster(core.ClusterConfig{
		Nodes:        nodes,
		Strategy:     ftcache.KindNVMe,
		RPCTimeout:   rpcTimeout,
		TimeoutLimit: 2,
		Network:      ctl.Network("boot"),
		Retry:        &rpc.RetryPolicy{},
		Ingest:       ingest,
		RAMCapacity:  ramCapacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ds := workload.Dataset{Name: "soak", Prefix: "soak/train", NumFiles: 200, FileBytes: 512}
	if _, err := cl.Stage(ds); err != nil {
		t.Fatal(err)
	}
	if err := cl.WarmCache(ds); err != nil {
		t.Fatal(err)
	}
	paths := ds.AllPaths()

	type soakClient struct {
		cli    *hvac.Client
		router hvac.Router
		ring   interface{ Len() int }
		hb     *cluster.Heartbeat
	}
	clients := make([]*soakClient, nClients)
	for i := range clients {
		cli, router, err := cl.NewClientNet(ctl.Network(fmt.Sprintf("cli-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		sc := &soakClient{cli: cli, router: router, ring: router.(*ftcache.RingRecache).Ring()}
		sc.hb = cluster.NewHeartbeat(cli.Tracker(), cli, cluster.HeartbeatConfig{
			Interval:        15 * time.Millisecond,
			Timeout:         rpcTimeout,
			ReviveThreshold: 2,
			OnRevive: func(n cluster.NodeID) {
				// Fire-and-forget: convergence is polled below, and a
				// rejoin losing a race (node flapped again, concurrent
				// rejoin) just retries on the next threshold crossing.
				go cli.Rejoin(context.Background(), n,
					hvac.RejoinOptions{Probes: 1, Keys: paths})
			},
		})
		sc.hb.Start()
		clients[i] = sc
		defer cli.Close()
		defer sc.hb.Stop()
	}

	nodeNames := make([]string, 0, nodes)
	for _, n := range cl.Nodes() {
		nodeNames = append(nodeNames, string(n))
	}
	plan := chaos.GeneratePlan(seed, nodeNames, chaos.PlanConfig{Horizon: 3 * time.Second})
	t.Logf("plan: %s", plan.Summary())

	var (
		reads      atomic.Int64
		transient  atomic.Int64
		wrongBytes atomic.Int64
		stuck      atomic.Int64
		notFound   atomic.Int64
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for ci, sc := range clients {
		for g := 0; g < 2; g++ {
			readers.Add(1)
			cli := sc.cli
			rng := rand.New(rand.NewSource(seed ^ int64(ci*7+g+1)))
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					i := rng.Intn(ds.NumFiles)
					want := ds.SampleContent(i)
					deadline := time.Now().Add(readBudget)
					for {
						ctx, cancel := context.WithDeadline(context.Background(), deadline)
						data, err := cli.Read(ctx, paths[i])
						cancel()
						if err == nil {
							reads.Add(1)
							if !bytes.Equal(data, want) {
								wrongBytes.Add(1)
								t.Errorf("seed=%d: wrong bytes for %s (%d vs %d)", seed, paths[i], len(data), len(want))
							}
							break
						}
						if err == hvac.ErrNotFound || err == hvac.ErrAborted {
							notFound.Add(1)
							t.Errorf("seed=%d: read %s: %v", seed, paths[i], err)
							break
						}
						if time.Now().After(deadline) {
							stuck.Add(1)
							t.Errorf("seed=%d: read %s stuck: no success within %v (last err: %v)",
								seed, paths[i], readBudget, err)
							break
						}
						transient.Add(1)
					}
				}
			}()
		}
	}

	// With ingest on, one writer per client streams batched async puts
	// through the whole fault window. Flush failures under active faults
	// are legitimate (the batch was NOT acked — that is the contract);
	// what the writers assert is liveness: the pipeline keeps accepting
	// and flushing work while nodes crash and recover, without a panic,
	// a wedged Flush, or a poisoned ingester.
	var (
		ingestPuts    atomic.Int64
		ingestFlushes atomic.Int64
		ingestFlushOK atomic.Int64
	)
	if ingest != nil {
		for ci, sc := range clients {
			readers.Add(1)
			cli := sc.cli
			go func(ci int) {
				defer readers.Done()
				seq := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					for k := 0; k < 16; k++ {
						path := fmt.Sprintf("soak/ingest/c%d/k%06d", ci, seq)
						data := []byte(fmt.Sprintf("ingest-%d-%d-%d", seed, ci, seq))
						if err := cli.PutAsync(path, data); err == nil {
							ingestPuts.Add(1)
						} else {
							transient.Add(1)
						}
						seq++
					}
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := cli.Flush(ctx)
					cancel()
					ingestFlushes.Add(1)
					if err == nil {
						ingestFlushOK.Add(1)
					} else {
						transient.Add(1)
					}
				}
			}(ci)
		}
	}

	// Run the fault schedule in real time against the live cluster.
	planCtx, planCancel := context.WithTimeout(context.Background(), plan.Horizon+5*time.Second)
	plan.Execute(planCtx, ctl, chaos.Actions{
		Crash: func(node string, kill bool) {
			mode := core.FailUnresponsive
			if kill {
				mode = core.FailKill
			}
			if err := cl.Fail(core.NodeID(node), mode); err != nil {
				t.Errorf("crash %s: %v", node, err)
			}
		},
		Restart: func(node string) {
			if err := cl.Revive(core.NodeID(node)); err != nil {
				t.Errorf("restart %s: %v", node, err)
			}
		},
	})
	planCancel()
	ctl.HealAll() // belt and braces: the plan heals everything it opened

	// Convergence: every client's ring and tracker must return to full
	// membership within the heal window (heartbeat revival + rejoin).
	converged := func() bool {
		for _, sc := range clients {
			if sc.ring.Len() != nodes || len(sc.cli.Tracker().Alive()) != nodes {
				return false
			}
		}
		return true
	}
	healDeadline := time.Now().Add(20 * time.Second)
	for !converged() {
		if time.Now().After(healDeadline) {
			for i, sc := range clients {
				t.Errorf("seed=%d: client %d not converged: ring=%d alive=%d",
					seed, i, sc.ring.Len(), len(sc.cli.Tracker().Alive()))
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	readers.Wait()

	// Post-heal verification epoch: every client reads the whole dataset
	// with zero tolerance for errors.
	for i, sc := range clients {
		for j := 0; j < ds.NumFiles; j++ {
			if err := core.VerifyRead(context.Background(), sc.cli, ds, j); err != nil {
				t.Fatalf("seed=%d: post-heal verify client=%d file=%d: %v", seed, i, j, err)
			}
		}
	}

	// Ack-visibility epoch (batched ingest only): on the healed cluster,
	// every client pushes a fresh set of keys through the async pipeline;
	// once Flush returns success, every one of those keys MUST be readable
	// from its ring owner's NVMe — that is the batching ack contract.
	if ingest != nil {
		if ingestPuts.Load() == 0 {
			t.Errorf("seed=%d: ingest writers completed zero puts during the fault window", seed)
		}
		for ci, sc := range clients {
			const epochKeys = 50
			var flushErr error
			for attempt := 0; attempt < 3; attempt++ {
				for k := 0; k < epochKeys; k++ {
					path := fmt.Sprintf("soak/ackvis/c%d/k%03d", ci, k)
					data := []byte(fmt.Sprintf("ackvis-%d-%d-%d", seed, ci, k))
					if err := sc.cli.PutAsync(path, data); err != nil {
						t.Fatalf("seed=%d: post-heal PutAsync client=%d key=%d: %v", seed, ci, k, err)
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				flushErr = sc.cli.Flush(ctx)
				cancel()
				if flushErr == nil {
					break
				}
				// A straggler error from the chaos window can surface on the
				// first post-heal Flush; re-put and flush again — the retry
				// loop ends on a clean ack or fails the soak.
			}
			if flushErr != nil {
				t.Fatalf("seed=%d: post-heal Flush client=%d never acked: %v", seed, ci, flushErr)
			}
			for k := 0; k < epochKeys; k++ {
				path := fmt.Sprintf("soak/ackvis/c%d/k%03d", ci, k)
				want := []byte(fmt.Sprintf("ackvis-%d-%d-%d", seed, ci, k))
				dec := sc.router.Route(path)
				if dec.Kind != hvac.RouteNode {
					t.Fatalf("seed=%d: post-heal route for %s: kind=%v", seed, path, dec.Kind)
				}
				got, err := cl.Server(core.NodeID(dec.Node)).NVMe().Get(path)
				if err != nil {
					t.Errorf("seed=%d: ack-visibility violated: acked key %s not on owner %s: %v",
						seed, path, dec.Node, err)
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("seed=%d: acked key %s corrupt on owner %s", seed, path, dec.Node)
				}
			}
		}
		t.Logf("seed=%d: ingest puts=%d flushes=%d acked=%d",
			seed, ingestPuts.Load(), ingestFlushes.Load(), ingestFlushOK.Load())
	}

	// RAM-tier epilogue: the tier must actually have served traffic
	// (otherwise the variant proved nothing), and with every reader
	// drained and every response flushed, no server may still hold a
	// pool lease — a nonzero count here is a leaked zero-copy buffer.
	if ramCapacity > 0 {
		ramServed := int64(0)
		for _, n := range cl.Nodes() {
			ramServed += cl.Server(n).RAMServed()
		}
		if ramServed == 0 {
			t.Errorf("seed=%d: RAM tier enabled but served zero reads", seed)
		}
		leaseDeadline := time.Now().Add(5 * time.Second)
		for {
			leaked := int64(0)
			for _, n := range cl.Nodes() {
				if ram := cl.Server(n).RAM(); ram != nil {
					leaked += ram.ActiveLeases()
				}
			}
			if leaked == 0 {
				break
			}
			if time.Now().After(leaseDeadline) {
				t.Errorf("seed=%d: %d pool leases still active after drain", seed, leaked)
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Logf("seed=%d: ram-served=%d", seed, ramServed)
	}

	faults := ctl.FaultCounts()
	total := int64(0)
	for _, v := range faults {
		total += v
	}
	t.Logf("seed=%d: faults[%s] reads=%d transient-retries=%d wrong-bytes=%d stuck=%d",
		seed, ctl.FormatFaults(), reads.Load(), transient.Load(), wrongBytes.Load(), stuck.Load())
	if total == 0 {
		t.Error("soak injected zero faults — the schedule did nothing")
	}
	if reads.Load() == 0 {
		t.Error("soak completed zero reads")
	}
	if wrongBytes.Load() != 0 || stuck.Load() != 0 || notFound.Load() != 0 {
		t.Errorf("invariant violations: wrong-bytes=%d stuck=%d not-found=%d",
			wrongBytes.Load(), stuck.Load(), notFound.Load())
	}
}
