package chaos_test

// The chaos soak: a live in-process FT-Cache cluster under a seeded
// random fault schedule, asserting the system's safety and liveness
// invariants end to end:
//
//   1. Correctness — every read that completes returns exactly the
//      staged bytes (from NVMe, a replica, or the PFS fallback); a
//      single wrong byte fails the soak.
//   2. No stuck reads — every read completes within a generous budget
//      even while faults are active (transient failures are retried by
//      the harness; never finishing is the violation).
//   3. Convergence — after the fault window heals, every client's ring
//      returns to full membership and every tracker sees every node
//      alive: a healthy node is never permanently dead, even when the
//      only "fault" it suffered was added latency past the RPC TTL.
//   4. Post-heal epoch — a full verification pass over the dataset by
//      every client completes with zero errors.
//
// The schedule is deterministic from the seed: a failure reruns exactly
// with FTC_CHAOS_SEED=<printed seed>.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/hvac"
	"repro/internal/rpc"
	"repro/internal/testutil"
	"repro/internal/workload"
)

func TestChaosSoak(t *testing.T) {
	testutil.CheckGoroutines(t)
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	if s := os.Getenv("FTC_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FTC_CHAOS_SEED=%q: %v", s, err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSoak(t, seed)
		})
	}
}

func runSoak(t *testing.T, seed int64) {
	const (
		nodes      = 16
		nClients   = 4
		rpcTimeout = 60 * time.Millisecond
		readBudget = 15 * time.Second // per logical read, faults included
	)
	t.Logf("chaos soak seed=%d (replay: FTC_CHAOS_SEED=%d)", seed, seed)

	ctl := chaos.New(rpc.NewInprocNetwork(), chaos.Config{Seed: seed, DialTimeout: 50 * time.Millisecond})
	cl, err := core.NewCluster(core.ClusterConfig{
		Nodes:        nodes,
		Strategy:     ftcache.KindNVMe,
		RPCTimeout:   rpcTimeout,
		TimeoutLimit: 2,
		Network:      ctl.Network("boot"),
		Retry:        &rpc.RetryPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ds := workload.Dataset{Name: "soak", Prefix: "soak/train", NumFiles: 200, FileBytes: 512}
	if _, err := cl.Stage(ds); err != nil {
		t.Fatal(err)
	}
	if err := cl.WarmCache(ds); err != nil {
		t.Fatal(err)
	}
	paths := ds.AllPaths()

	type soakClient struct {
		cli  *hvac.Client
		ring interface{ Len() int }
		hb   *cluster.Heartbeat
	}
	clients := make([]*soakClient, nClients)
	for i := range clients {
		cli, router, err := cl.NewClientNet(ctl.Network(fmt.Sprintf("cli-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		sc := &soakClient{cli: cli, ring: router.(*ftcache.RingRecache).Ring()}
		sc.hb = cluster.NewHeartbeat(cli.Tracker(), cli, cluster.HeartbeatConfig{
			Interval:        15 * time.Millisecond,
			Timeout:         rpcTimeout,
			ReviveThreshold: 2,
			OnRevive: func(n cluster.NodeID) {
				// Fire-and-forget: convergence is polled below, and a
				// rejoin losing a race (node flapped again, concurrent
				// rejoin) just retries on the next threshold crossing.
				go cli.Rejoin(context.Background(), n,
					hvac.RejoinOptions{Probes: 1, Keys: paths})
			},
		})
		sc.hb.Start()
		clients[i] = sc
		defer cli.Close()
		defer sc.hb.Stop()
	}

	nodeNames := make([]string, 0, nodes)
	for _, n := range cl.Nodes() {
		nodeNames = append(nodeNames, string(n))
	}
	plan := chaos.GeneratePlan(seed, nodeNames, chaos.PlanConfig{Horizon: 3 * time.Second})
	t.Logf("plan: %s", plan.Summary())

	var (
		reads      atomic.Int64
		transient  atomic.Int64
		wrongBytes atomic.Int64
		stuck      atomic.Int64
		notFound   atomic.Int64
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for ci, sc := range clients {
		for g := 0; g < 2; g++ {
			readers.Add(1)
			cli := sc.cli
			rng := rand.New(rand.NewSource(seed ^ int64(ci*7+g+1)))
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					i := rng.Intn(ds.NumFiles)
					want := ds.SampleContent(i)
					deadline := time.Now().Add(readBudget)
					for {
						ctx, cancel := context.WithDeadline(context.Background(), deadline)
						data, err := cli.Read(ctx, paths[i])
						cancel()
						if err == nil {
							reads.Add(1)
							if !bytes.Equal(data, want) {
								wrongBytes.Add(1)
								t.Errorf("seed=%d: wrong bytes for %s (%d vs %d)", seed, paths[i], len(data), len(want))
							}
							break
						}
						if err == hvac.ErrNotFound || err == hvac.ErrAborted {
							notFound.Add(1)
							t.Errorf("seed=%d: read %s: %v", seed, paths[i], err)
							break
						}
						if time.Now().After(deadline) {
							stuck.Add(1)
							t.Errorf("seed=%d: read %s stuck: no success within %v (last err: %v)",
								seed, paths[i], readBudget, err)
							break
						}
						transient.Add(1)
					}
				}
			}()
		}
	}

	// Run the fault schedule in real time against the live cluster.
	planCtx, planCancel := context.WithTimeout(context.Background(), plan.Horizon+5*time.Second)
	plan.Execute(planCtx, ctl, chaos.Actions{
		Crash: func(node string, kill bool) {
			mode := core.FailUnresponsive
			if kill {
				mode = core.FailKill
			}
			if err := cl.Fail(core.NodeID(node), mode); err != nil {
				t.Errorf("crash %s: %v", node, err)
			}
		},
		Restart: func(node string) {
			if err := cl.Revive(core.NodeID(node)); err != nil {
				t.Errorf("restart %s: %v", node, err)
			}
		},
	})
	planCancel()
	ctl.HealAll() // belt and braces: the plan heals everything it opened

	// Convergence: every client's ring and tracker must return to full
	// membership within the heal window (heartbeat revival + rejoin).
	converged := func() bool {
		for _, sc := range clients {
			if sc.ring.Len() != nodes || len(sc.cli.Tracker().Alive()) != nodes {
				return false
			}
		}
		return true
	}
	healDeadline := time.Now().Add(20 * time.Second)
	for !converged() {
		if time.Now().After(healDeadline) {
			for i, sc := range clients {
				t.Errorf("seed=%d: client %d not converged: ring=%d alive=%d",
					seed, i, sc.ring.Len(), len(sc.cli.Tracker().Alive()))
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	readers.Wait()

	// Post-heal verification epoch: every client reads the whole dataset
	// with zero tolerance for errors.
	for i, sc := range clients {
		for j := 0; j < ds.NumFiles; j++ {
			if err := core.VerifyRead(context.Background(), sc.cli, ds, j); err != nil {
				t.Fatalf("seed=%d: post-heal verify client=%d file=%d: %v", seed, i, j, err)
			}
		}
	}

	faults := ctl.FaultCounts()
	total := int64(0)
	for _, v := range faults {
		total += v
	}
	t.Logf("seed=%d: faults[%s] reads=%d transient-retries=%d wrong-bytes=%d stuck=%d",
		seed, ctl.FormatFaults(), reads.Load(), transient.Load(), wrongBytes.Load(), stuck.Load())
	if total == 0 {
		t.Error("soak injected zero faults — the schedule did nothing")
	}
	if reads.Load() == 0 {
		t.Error("soak completed zero reads")
	}
	if wrongBytes.Load() != 0 || stuck.Load() != 0 || notFound.Load() != 0 {
		t.Errorf("invariant violations: wrong-bytes=%d stuck=%d not-found=%d",
			wrongBytes.Load(), stuck.Load(), notFound.Load())
	}
}
