package chaos

import (
	"reflect"
	"testing"
	"time"
)

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = string(rune('a' + i))
	}
	return nodes
}

// Same (seed, nodes, phases) input must yield the identical plan —
// that's what makes a failed adaptive soak replayable.
func TestGeneratePhasedPlanDeterministic(t *testing.T) {
	nodes := testNodes(16)
	phases := PhasesCalmBurstHealContention(400*time.Millisecond, 2*time.Millisecond)
	for _, seed := range []int64{1, 7, 42} {
		a := GeneratePhasedPlan(seed, nodes, phases)
		b := GeneratePhasedPlan(seed, nodes, phases)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plans differ:\n%+v\nvs\n%+v", seed, a, b)
		}
		if len(a.Events) == 0 {
			t.Fatalf("seed %d: empty plan", seed)
		}
	}
	// Different seeds should (overwhelmingly) differ.
	a := GeneratePhasedPlan(1, nodes, phases)
	b := GeneratePhasedPlan(2, nodes, phases)
	if reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("seeds 1 and 2 produced identical event sequences")
	}
}

// Every phased plan must end healed: each EvCrash paired with an
// EvRestart at or before the horizon, and the final PFS delay cleared.
func TestGeneratePhasedPlanEndsHealed(t *testing.T) {
	nodes := testNodes(16)
	for _, phases := range [][]Phase{
		PhasesCalmBurstHealContention(400*time.Millisecond, 2*time.Millisecond),
		PhasesContentionFirst(400*time.Millisecond, 2*time.Millisecond),
	} {
		p := GeneratePhasedPlan(42, nodes, phases)
		down := make(map[string]bool)
		lastDelay := time.Duration(0)
		for _, ev := range p.Events {
			if ev.At > p.Horizon {
				t.Fatalf("event past horizon: %+v (horizon %s)", ev, p.Horizon)
			}
			switch ev.Kind {
			case EvCrash:
				if down[ev.Node] {
					t.Fatalf("double crash without restart: %+v", ev)
				}
				down[ev.Node] = true
			case EvRestart:
				if !down[ev.Node] {
					t.Fatalf("restart without crash: %+v", ev)
				}
				delete(down, ev.Node)
			case EvPFSDelay:
				lastDelay = ev.Delay
			default:
				t.Fatalf("unexpected event kind in phased plan: %+v", ev)
			}
		}
		if len(down) != 0 {
			t.Fatalf("plan ends with nodes still down: %v", down)
		}
		if lastDelay != 0 {
			t.Fatalf("plan ends with PFS delay %s still installed", lastDelay)
		}
	}
}

// The burst phase must actually be a burst: the bulk of the crash
// events land inside it, none in calm/heal.
func TestGeneratePhasedPlanPhaseShape(t *testing.T) {
	unit := 400 * time.Millisecond
	phases := PhasesCalmBurstHealContention(unit, 2*time.Millisecond)
	p := GeneratePhasedPlan(7, testNodes(16), phases)
	calmEnd := unit
	burstEnd := 2 * unit
	inCalm, inBurst := 0, 0
	for _, ev := range p.Events {
		if ev.Kind != EvCrash {
			continue
		}
		switch {
		case ev.At < calmEnd:
			inCalm++
		case ev.At < burstEnd:
			inBurst++
		}
	}
	if inCalm != 0 {
		t.Fatalf("calm phase has %d crashes", inCalm)
	}
	if inBurst < 3 {
		t.Fatalf("burst phase has only %d crashes", inBurst)
	}
}
