// Package chaos is the fault-injection middleware of the FT-Cache
// reproduction: an rpc.Network wrapper that deterministically injects
// network faults — symmetric and asymmetric partitions, per-link added
// latency and jitter, dial black-holes, and mid-stream connection drops
// — from a seeded plan, so the failure path the paper claims (timeout
// detection, PFS redirection, elastic recaching, node rejoin) can be
// exercised under adversarial conditions and replayed exactly by seed.
//
// Topology model: only clients dial servers in this system, so a link
// is a (source view, destination endpoint) pair. Every injected fault
// is counted in telemetry (ftc_chaos_faults_total{kind=...}) and kept
// in a local snapshot for /debug/ftcache, together with the seed.
//
// The Controller owns the fault state; Controller.Network(src) hands
// out per-source views implementing rpc.Network. Faults are applied at
// frame granularity by a protocol-aware relay (relay.go): a partition
// drops whole frames (the RPC above observes a clean timeout, never a
// corrupt stream), added latency delays frame delivery without blocking
// the sender's peer, and a connection drop closes both relay ends so
// the client sees the reset a real mid-stream failure produces.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/xhash"
)

// Wildcard matches any endpoint in a link rule.
const Wildcard = "*"

// Fault kinds as counted in telemetry and fault snapshots.
const (
	KindPartition     = "partition"      // symmetric cut installed
	KindAsymPartition = "asym-partition" // one-way cut installed
	KindLatency       = "latency"        // per-link delay installed
	KindDialBlackhole = "dial-blackhole" // a dial was black-holed
	KindFrameDrop     = "frame-drop"     // a frame was dropped by a cut
	KindFrameDelay    = "frame-delay"    // a frame was delayed
	KindConnDrop      = "conn-drop"      // an active conn was killed
	KindCrash         = "crash"          // node crash (plan executor)
	KindRestart       = "restart"        // node restart (plan executor)
	KindPFSDelay      = "pfs-delay"      // PFS read-delay change (plan executor)
)

// Config tunes a Controller.
type Config struct {
	// Seed drives every pseudo-random decision (per-link jitter streams,
	// plan generation). The same seed over the same topology replays the
	// same fault sequence; it is logged and surfaced in /debug/ftcache.
	Seed int64
	// DialTimeout is how long a black-holed dial blocks before failing
	// with a timeout error — emulating a SYN dropped by a dead switch.
	// <= 0 selects DefaultDialTimeout. Keep it below the failure
	// detector's suspect budget so a black-holed endpoint surfaces as
	// ordinary timeout evidence, not an unbounded hang.
	DialTimeout time.Duration
}

// DefaultDialTimeout bounds black-holed dials.
const DefaultDialTimeout = 150 * time.Millisecond

type link struct{ src, dst string }

type latSpec struct {
	delay  time.Duration
	jitter time.Duration
}

// Controller owns shared fault state for a wrapped network. All methods
// are goroutine-safe; fault changes take effect on the next frame (live
// connections re-check rules per frame).
type Controller struct {
	cfg   Config
	inner rpc.Network

	mu         sync.RWMutex
	cuts       map[link]struct{}
	lats       map[link]latSpec
	blackholes map[string]struct{}
	relays     map[*relay]struct{}

	countMu sync.Mutex
	counts  map[string]int64
	ctrs    map[string]*telemetry.Counter
}

// New wraps inner with a chaos controller. The controller starts with
// no faults: traffic passes through unmodified (minus the relay hop)
// until a fault is installed.
func New(inner rpc.Network, cfg Config) *Controller {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	c := &Controller{
		cfg:        cfg,
		inner:      inner,
		cuts:       make(map[link]struct{}),
		lats:       make(map[link]latSpec),
		blackholes: make(map[string]struct{}),
		relays:     make(map[*relay]struct{}),
		counts:     make(map[string]int64),
		ctrs:       make(map[string]*telemetry.Counter),
	}
	telemetry.Default().RegisterDebug("chaos", c.debugSnapshot)
	return c
}

// Seed returns the controller's replay seed.
func (c *Controller) Seed() int64 { return c.cfg.Seed }

// Network returns the rpc.Network view for source src. Listens pass
// through to the inner network; dials from this view are subject to the
// (src, dst) link rules. Views share all controller state.
func (c *Controller) Network(src string) rpc.Network {
	return &Network{ctl: c, src: src}
}

// Network is one source's view of the chaos-wrapped network.
type Network struct {
	ctl *Controller
	src string
}

// Listen implements rpc.Network (pass-through).
func (n *Network) Listen(name string) (net.Listener, error) {
	return n.ctl.inner.Listen(name)
}

// Dial implements rpc.Network with dial-time fault injection.
func (n *Network) Dial(name string) (net.Conn, error) {
	return n.ctl.dial(n.src, name)
}

// timeoutError is the net.Error a black-holed dial returns, so callers
// that classify errors (the HVAC client's detector) see a timeout, the
// same evidence a silently dropped SYN produces.
type timeoutError struct{ op, dst string }

func (e *timeoutError) Error() string   { return fmt.Sprintf("chaos: %s %s: i/o timeout", e.op, e.dst) }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

var _ net.Error = (*timeoutError)(nil)

func (c *Controller) dial(src, dst string) (net.Conn, error) {
	c.mu.RLock()
	_, holed := c.blackholes[dst]
	// A cut in either direction kills the handshake: the SYN or the
	// SYN-ACK is dropped, so the dial hangs until its timeout.
	cut := c.cutLocked(src, dst) || c.cutLocked(dst, src)
	c.mu.RUnlock()
	if holed || cut {
		c.Record(KindDialBlackhole)
		time.Sleep(c.cfg.DialTimeout)
		return nil, &timeoutError{op: "dial", dst: dst}
	}
	real, err := c.inner.Dial(dst)
	if err != nil {
		return nil, err
	}
	app, relayEnd := rpc.NewBufferedPipe(dst)
	r := newRelay(c, src, dst, relayEnd, real)
	c.mu.Lock()
	c.relays[r] = struct{}{}
	c.mu.Unlock()
	r.start()
	return app, nil
}

func (c *Controller) removeRelay(r *relay) {
	c.mu.Lock()
	delete(c.relays, r)
	c.mu.Unlock()
}

// cutLocked reports whether the src→dst direction is cut; callers hold
// c.mu. Wildcards match any endpoint.
func (c *Controller) cutLocked(src, dst string) bool {
	if _, ok := c.cuts[link{src, dst}]; ok {
		return true
	}
	if _, ok := c.cuts[link{src, Wildcard}]; ok {
		return true
	}
	if _, ok := c.cuts[link{Wildcard, dst}]; ok {
		return true
	}
	_, ok := c.cuts[link{Wildcard, Wildcard}]
	return ok
}

// latencyFor resolves the added-latency spec for the src→dst direction
// (most-specific rule wins: exact, src→*, *→dst, *→*).
func (c *Controller) latencyFor(src, dst string) (latSpec, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, l := range [4]link{{src, dst}, {src, Wildcard}, {Wildcard, dst}, {Wildcard, Wildcard}} {
		if s, ok := c.lats[l]; ok {
			return s, true
		}
	}
	return latSpec{}, false
}

// isCut reports whether the src→dst direction is currently cut.
func (c *Controller) isCut(src, dst string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.cutLocked(src, dst)
}

// ActiveFaults describes the faults currently armed on this source's
// path to dst, as deterministic human-readable strings in a fixed
// order (cut before blackhole before latency). Request tracing
// annotates a failed or slow RPC's span with them, so a seeded soak
// replay shows *which* injected fault stretched *which* request —
// configured values only, never measured ones, keeping the annotation
// replay-stable.
func (n *Network) ActiveFaults(dst string) []string {
	c := n.ctl
	var out []string
	c.mu.RLock()
	if c.cutLocked(n.src, dst) || c.cutLocked(dst, n.src) {
		out = append(out, "cut")
	}
	if _, ok := c.blackholes[dst]; ok {
		out = append(out, "blackhole")
	}
	c.mu.RUnlock()
	if s, ok := c.latencyFor(n.src, dst); ok {
		f := fmt.Sprintf("latency=%v", s.delay)
		if s.jitter > 0 {
			f += fmt.Sprintf("±%v", s.jitter)
		}
		out = append(out, f)
	}
	return out
}

// CutOneWay installs an asymmetric partition: frames flowing src→dst
// are dropped (requests lost but responses intact, or vice versa — the
// gray-failure shape a half-broken link produces). Wildcards allowed.
func (c *Controller) CutOneWay(src, dst string) {
	c.mu.Lock()
	c.cuts[link{src, dst}] = struct{}{}
	c.mu.Unlock()
	c.Record(KindAsymPartition)
}

// CutBoth installs a symmetric partition between a and b (both frame
// directions dropped, dials between them black-holed).
func (c *Controller) CutBoth(a, b string) {
	c.mu.Lock()
	c.cuts[link{a, b}] = struct{}{}
	c.cuts[link{b, a}] = struct{}{}
	c.mu.Unlock()
	c.Record(KindPartition)
}

// Isolate symmetrically partitions node from every endpoint.
func (c *Controller) Isolate(node string) { c.CutBoth(Wildcard, node) }

// Heal removes any cut between a and b (both directions).
func (c *Controller) Heal(a, b string) {
	c.mu.Lock()
	delete(c.cuts, link{a, b})
	delete(c.cuts, link{b, a})
	c.mu.Unlock()
}

// HealNode removes every cut rule mentioning node (including the
// wildcard rules Isolate installs).
func (c *Controller) HealNode(node string) {
	c.mu.Lock()
	for l := range c.cuts {
		if l.src == node || l.dst == node {
			delete(c.cuts, l)
		}
	}
	c.mu.Unlock()
}

// HealAll removes every cut, latency, and black-hole rule.
func (c *Controller) HealAll() {
	c.mu.Lock()
	c.cuts = make(map[link]struct{})
	c.lats = make(map[link]latSpec)
	c.blackholes = make(map[string]struct{})
	c.mu.Unlock()
}

// SetLatency adds delay ± uniform jitter to every frame on the src→dst
// direction. Frames stay ordered (delays are applied by a per-direction
// delivery loop). Wildcards allowed.
func (c *Controller) SetLatency(src, dst string, delay, jitter time.Duration) {
	c.mu.Lock()
	c.lats[link{src, dst}] = latSpec{delay: delay, jitter: jitter}
	c.mu.Unlock()
	c.Record(KindLatency)
}

// SetLinkLatency adds symmetric latency on both directions of a link.
func (c *Controller) SetLinkLatency(a, b string, delay, jitter time.Duration) {
	c.SetLatency(a, b, delay, jitter)
	c.SetLatency(b, a, delay, jitter)
}

// ClearLatencyNode removes every latency rule mentioning node.
func (c *Controller) ClearLatencyNode(node string) {
	c.mu.Lock()
	for l := range c.lats {
		if l.src == node || l.dst == node {
			delete(c.lats, l)
		}
	}
	c.mu.Unlock()
}

// Blackhole makes dials to dst hang for DialTimeout and fail with a
// timeout (existing connections are untouched — use DropConns for the
// full black-hole).
func (c *Controller) Blackhole(dst string) {
	c.mu.Lock()
	c.blackholes[dst] = struct{}{}
	c.mu.Unlock()
}

// Unblackhole lifts a dial black-hole.
func (c *Controller) Unblackhole(dst string) {
	c.mu.Lock()
	delete(c.blackholes, dst)
	c.mu.Unlock()
}

// DropConns closes every active connection whose destination is dst
// (Wildcard drops everything), emulating a mid-stream connection reset.
// Returns the number of connections killed.
func (c *Controller) DropConns(dst string) int {
	c.mu.RLock()
	victims := make([]*relay, 0, len(c.relays))
	for r := range c.relays {
		if dst == Wildcard || r.dst == dst {
			victims = append(victims, r)
		}
	}
	c.mu.RUnlock()
	for _, r := range victims {
		r.close()
		c.Record(KindConnDrop)
	}
	return len(victims)
}

// OpenConns returns the number of live relayed connections.
func (c *Controller) OpenConns() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.relays)
}

// Record counts one injected fault of the given kind, both in the
// process-wide telemetry registry and the controller's local snapshot.
func (c *Controller) Record(kind string) {
	c.countMu.Lock()
	c.counts[kind]++
	ctr := c.ctrs[kind]
	if ctr == nil {
		ctr = telemetry.Default().Counter("ftc_chaos_faults_total", "kind", kind)
		c.ctrs[kind] = ctr
	}
	c.countMu.Unlock()
	ctr.Inc()
}

// FaultCounts snapshots the per-kind injected-fault counters.
func (c *Controller) FaultCounts() map[string]int64 {
	c.countMu.Lock()
	defer c.countMu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// FormatFaults renders the fault counters as "kind=N" pairs in sorted
// order — the replay line soak output prints next to the seed.
func (c *Controller) FormatFaults() string {
	counts := c.FaultCounts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b []byte
	for i, k := range kinds {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%d", k, counts[k])...)
	}
	return string(b)
}

// debugSnapshot is the "chaos" section of /debug/ftcache.
func (c *Controller) debugSnapshot() any {
	c.mu.RLock()
	cuts := make([]string, 0, len(c.cuts))
	for l := range c.cuts {
		cuts = append(cuts, l.src+"->"+l.dst)
	}
	lats := make([]string, 0, len(c.lats))
	for l, s := range c.lats {
		lats = append(lats, fmt.Sprintf("%s->%s:%s±%s", l.src, l.dst, s.delay, s.jitter))
	}
	holes := make([]string, 0, len(c.blackholes))
	for h := range c.blackholes {
		holes = append(holes, h)
	}
	open := len(c.relays)
	c.mu.RUnlock()
	sort.Strings(cuts)
	sort.Strings(lats)
	sort.Strings(holes)
	return map[string]any{
		"seed":       c.cfg.Seed,
		"cuts":       cuts,
		"latencies":  lats,
		"blackholes": holes,
		"open_conns": open,
		"faults":     c.FaultCounts(),
	}
}

// linkRNG derives a deterministic per-link, per-direction PRNG from the
// controller seed, so jitter replays exactly for a given seed.
func (c *Controller) linkRNG(src, dst string, inbound bool) *rand.Rand {
	h := xhash.XXH64String(src+"\x00"+dst, uint64(c.cfg.Seed))
	if inbound {
		h = ^h
	}
	return rand.New(rand.NewSource(int64(h)))
}
