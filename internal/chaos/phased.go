// Phased plans: regime-shift schedules for the adaptive policy
// controller. Where GeneratePlan mixes every fault kind uniformly over
// the horizon, GeneratePhasedPlan strings together named phases — calm,
// failure burst, heal, PFS contention — each with its own fault-rate
// knobs, so a soak (or ftcbench -adaptft) can walk the workload through
// exactly the regime changes the ftpolicy controller is supposed to
// detect and react to. Same determinism contract as GeneratePlan: the
// identical (seed, nodes, phases) input always yields the identical
// event sequence.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Phase is one regime segment of a phased plan.
type Phase struct {
	// Name labels the phase in summaries and logs ("calm", "burst", ...).
	Name string
	// Duration is the phase length. <= 0 phases are skipped.
	Duration time.Duration
	// MeanGap is the mean time between crash injections inside the
	// phase; <= 0 means the phase injects no crashes (calm/heal).
	MeanGap time.Duration
	// KillFrac is the probability a crash is a hard kill rather than an
	// unresponsive hang (0..1).
	KillFrac float64
	// MeanDown is the mean down-window per crash; <= 0 selects 500ms.
	// Restarts are capped at the plan horizon so every plan ends healed.
	MeanDown time.Duration
	// MaxDownFrac caps the fraction of nodes simultaneously crashed
	// during the phase; <= 0 selects 0.25 (at least 1 node may drop).
	MaxDownFrac float64
	// PFSDelay is the injected fleet-wide PFS read delay for the phase
	// (the contention model); it is installed at phase entry and the
	// following phase's value replaces it.
	PFSDelay time.Duration
}

// GeneratePhasedPlan builds a deterministic multi-phase fault schedule
// over nodes from seed. Each phase contributes crash/restart events at
// its own rate plus an EvPFSDelay event at its boundary whenever the
// injected PFS delay changes; the final phase end emits a closing
// EvPFSDelay 0 if needed, so a completed plan always leaves the PFS
// clean and the fleet healed.
func GeneratePhasedPlan(seed int64, nodes []string, phases []Phase) Plan {
	rng := rand.New(rand.NewSource(seed))
	horizon := time.Duration(0)
	for _, ph := range phases {
		if ph.Duration > 0 {
			horizon += ph.Duration
		}
	}
	p := Plan{Seed: seed, Horizon: horizon}
	downUntil := make(map[string]time.Duration) // node → restart time

	downAt := func(t time.Duration) int {
		n := 0
		for _, until := range downUntil {
			if until > t {
				n++
			}
		}
		return n
	}

	start := time.Duration(0)
	prevDelay := time.Duration(0)
	for _, ph := range phases {
		if ph.Duration <= 0 {
			continue
		}
		end := start + ph.Duration
		if ph.PFSDelay != prevDelay {
			p.Events = append(p.Events, Event{At: start, Kind: EvPFSDelay, Delay: ph.PFSDelay})
			prevDelay = ph.PFSDelay
		}
		if ph.MeanGap > 0 {
			meanDown := ph.MeanDown
			if meanDown <= 0 {
				meanDown = 500 * time.Millisecond
			}
			maxFrac := ph.MaxDownFrac
			if maxFrac <= 0 {
				maxFrac = 0.25
			}
			maxDown := int(float64(len(nodes)) * maxFrac)
			if maxDown < 1 {
				maxDown = 1
			}
			t := start + ph.MeanGap/2 + time.Duration(rng.Int63n(int64(ph.MeanGap)))
			for t < end {
				node := nodes[rng.Intn(len(nodes))]
				dur := meanDown/2 + time.Duration(rng.Int63n(int64(meanDown)))
				if t+dur > horizon {
					dur = horizon - t
				}
				busyUntil, busy := downUntil[node]
				switch {
				case busy && busyUntil > t:
					// Node already down; skip this slot.
				case downAt(t) >= maxDown:
					// Phase down-budget exhausted; skip this slot.
				default:
					p.Events = append(p.Events,
						Event{At: t, Kind: EvCrash, Node: node, Kill: rng.Float64() < ph.KillFrac},
						Event{At: t + dur, Kind: EvRestart, Node: node})
					downUntil[node] = t + dur
				}
				t += ph.MeanGap/2 + time.Duration(rng.Int63n(int64(ph.MeanGap)))
			}
		}
		start = end
	}
	if prevDelay != 0 {
		p.Events = append(p.Events, Event{At: horizon, Kind: EvPFSDelay, Delay: 0})
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}

// PhasesCalmBurstHealContention is the canonical regime walk for
// adaptive-policy evaluation: a calm warm-up, a dense failure burst
// (rapid unresponsive flaps), a heal window, then sustained PFS
// contention (pfsDelay added to every PFS read) with a rolling set of
// long-lived node losses — the losses keep a meaningful key fraction
// on the dead arcs, so per-read PFS redirection pays the full
// contention price. unit is the per-phase duration base.
func PhasesCalmBurstHealContention(unit, pfsDelay time.Duration) []Phase {
	return []Phase{
		{Name: "calm", Duration: unit},
		{Name: "burst", Duration: unit, MeanGap: unit / 10, KillFrac: 0.2,
			MeanDown: unit / 5, MaxDownFrac: 0.35},
		{Name: "heal", Duration: unit / 2},
		{Name: "contention", Duration: unit, MeanGap: unit / 8, KillFrac: 1.0,
			MeanDown: 10 * unit, MaxDownFrac: 0.3, PFSDelay: pfsDelay},
		{Name: "drain", Duration: unit / 2},
	}
}

// PhasesContentionFirst reverses the stress ordering: PFS contention
// with churning short node losses, a breather, then a failure burst
// into a final heal — the mirror-image schedule, so a controller tuned
// to one ordering can't win by accident. The contention losses are
// short-lived (unlike the sibling schedule's) so the fleet is healed
// again before the burst phase starts.
func PhasesContentionFirst(unit, pfsDelay time.Duration) []Phase {
	return []Phase{
		{Name: "calm", Duration: unit / 2},
		{Name: "contention", Duration: unit, MeanGap: unit / 8, KillFrac: 1.0,
			MeanDown: unit / 2, MaxDownFrac: 0.3, PFSDelay: pfsDelay},
		{Name: "breather", Duration: unit / 2},
		{Name: "burst", Duration: unit, MeanGap: unit / 10, KillFrac: 0.2,
			MeanDown: unit / 5, MaxDownFrac: 0.35},
		{Name: "drain", Duration: unit},
	}
}

// PhaseSummary renders a one-line phase schedule for logs.
func PhaseSummary(phases []Phase) string {
	parts := make([]string, 0, len(phases))
	for _, ph := range phases {
		if ph.Duration <= 0 {
			continue
		}
		s := fmt.Sprintf("%s=%s", ph.Name, ph.Duration)
		if ph.PFSDelay > 0 {
			s += fmt.Sprintf("(pfs+%s)", ph.PFSDelay)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " ")
}
