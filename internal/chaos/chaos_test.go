package chaos

import (
	"bytes"
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/rpc"
)

// startEcho boots an echo RPC server named name on the inner network.
func startEcho(t *testing.T, inner rpc.Network, name string) *rpc.Server {
	t.Helper()
	srv := rpc.NewServer(rpc.HandlerFunc(func(op uint16, payload []byte) (uint16, []byte) {
		return rpc.StatusOK, payload
	}))
	lis, err := inner.Listen(name)
	if err != nil {
		t.Fatalf("listen %s: %v", name, err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// dialClient dials dst from the given chaos view.
func dialClient(t *testing.T, view rpc.Network, dst string) *rpc.Client {
	t.Helper()
	conn, err := view.Dial(dst)
	if err != nil {
		t.Fatalf("dial %s: %v", dst, err)
	}
	cli := rpc.NewClient(conn)
	t.Cleanup(func() { cli.Close() })
	return cli
}

func echo(cli *rpc.Client, timeout time.Duration, msg string) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	resp, status, err := cli.Call(ctx, 1, []byte(msg))
	if err != nil {
		return "", err
	}
	if status != rpc.StatusOK {
		return "", errors.New("bad status")
	}
	return string(resp), nil
}

func TestPassThroughNoFaults(t *testing.T) {
	ctl := New(rpc.NewInprocNetwork(), Config{Seed: 1})
	startEcho(t, ctl.innerNet(), "srv")
	cli := dialClient(t, ctl.Network("cli"), "srv")
	got, err := echo(cli, time.Second, "hello through the relay")
	if err != nil || got != "hello through the relay" {
		t.Fatalf("echo = %q, %v", got, err)
	}
	if ctl.OpenConns() != 1 {
		t.Errorf("open conns = %d, want 1", ctl.OpenConns())
	}
}

func TestPartitionTimesOutThenHeals(t *testing.T) {
	ctl := New(rpc.NewInprocNetwork(), Config{Seed: 1})
	startEcho(t, ctl.innerNet(), "srv")
	cli := dialClient(t, ctl.Network("cli"), "srv")

	if _, err := echo(cli, time.Second, "before"); err != nil {
		t.Fatalf("pre-fault echo: %v", err)
	}
	ctl.Isolate("srv")
	if _, err := echo(cli, 50*time.Millisecond, "during"); !errors.Is(err, rpc.ErrTimeout) {
		t.Fatalf("partitioned echo err = %v, want ErrTimeout", err)
	}
	ctl.HealNode("srv")
	// The dropped frame is gone but the connection survived the
	// partition: the next call must succeed with correct bytes.
	got, err := echo(cli, time.Second, "after-heal")
	if err != nil || got != "after-heal" {
		t.Fatalf("post-heal echo = %q, %v", got, err)
	}
	counts := ctl.FaultCounts()
	if counts[KindFrameDrop] == 0 {
		t.Error("no frame drops recorded during partition")
	}
	if counts[KindPartition] == 0 {
		t.Error("partition installation not recorded")
	}
}

func TestAsymmetricCutDirectionality(t *testing.T) {
	ctl := New(rpc.NewInprocNetwork(), Config{Seed: 1})
	startEcho(t, ctl.innerNet(), "srv")

	// Establish first (a cut in either direction also blocks the
	// handshake — the SYN-ACK would be lost), then cut only srv→cli:
	// the request still arrives and the echo server processes it, but
	// the response vanishes and the caller times out.
	cli := dialClient(t, ctl.Network("cli"), "srv")
	if _, err := echo(cli, time.Second, "pre"); err != nil {
		t.Fatalf("pre-cut echo: %v", err)
	}
	ctl.CutOneWay("srv", "cli")
	if _, err := echo(cli, 50*time.Millisecond, "lost-response"); !errors.Is(err, rpc.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout (response direction cut)", err)
	}
	ctl.Heal("srv", "cli")
	if got, err := echo(cli, time.Second, "healed"); err != nil || got != "healed" {
		t.Fatalf("post-heal echo = %q, %v", got, err)
	}

	// Other sources are unaffected by the (srv, cli) rule.
	other := dialClient(t, ctl.Network("other"), "srv")
	if got, err := echo(other, time.Second, "bystander"); err != nil || got != "bystander" {
		t.Fatalf("bystander echo = %q, %v", got, err)
	}
}

func TestLatencyDelaysButDelivers(t *testing.T) {
	ctl := New(rpc.NewInprocNetwork(), Config{Seed: 1})
	startEcho(t, ctl.innerNet(), "srv")
	cli := dialClient(t, ctl.Network("cli"), "srv")

	const delay = 30 * time.Millisecond
	ctl.SetLinkLatency("cli", "srv", delay, 0)
	start := time.Now()
	got, err := echo(cli, 2*time.Second, "slow")
	elapsed := time.Since(start)
	if err != nil || got != "slow" {
		t.Fatalf("latency echo = %q, %v", got, err)
	}
	// Both directions are delayed: request + response ≥ 2×delay.
	if elapsed < 2*delay {
		t.Errorf("roundtrip %v under injected 2×%v", elapsed, delay)
	}
	if ctl.FaultCounts()[KindFrameDelay] < 2 {
		t.Error("frame delays not recorded for both directions")
	}
}

func TestBlackholeDialBoundedTimeout(t *testing.T) {
	ctl := New(rpc.NewInprocNetwork(), Config{Seed: 1, DialTimeout: 40 * time.Millisecond})
	startEcho(t, ctl.innerNet(), "srv")
	ctl.Blackhole("srv")

	start := time.Now()
	_, err := ctl.Network("cli").Dial("srv")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("black-holed dial succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("black-holed dial err = %v, want a net.Error timeout", err)
	}
	if elapsed < 40*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("black-holed dial took %v, want ≈ configured 40ms", elapsed)
	}
	ctl.Unblackhole("srv")
	cli := dialClient(t, ctl.Network("cli"), "srv")
	if got, err := echo(cli, time.Second, "ok"); err != nil || got != "ok" {
		t.Fatalf("post-unblackhole echo = %q, %v", got, err)
	}
}

func TestDropConnsKillsMidStream(t *testing.T) {
	ctl := New(rpc.NewInprocNetwork(), Config{Seed: 1})
	startEcho(t, ctl.innerNet(), "srv")
	cli := dialClient(t, ctl.Network("cli"), "srv")
	if _, err := echo(cli, time.Second, "warm"); err != nil {
		t.Fatalf("warm echo: %v", err)
	}
	if n := ctl.DropConns("srv"); n != 1 {
		t.Fatalf("DropConns = %d, want 1", n)
	}
	if _, err := echo(cli, time.Second, "dead"); !errors.Is(err, rpc.ErrClosed) {
		t.Fatalf("post-drop echo err = %v, want ErrClosed", err)
	}
	if ctl.OpenConns() != 0 {
		t.Errorf("open conns = %d after drop", ctl.OpenConns())
	}
	if ctl.FaultCounts()[KindConnDrop] != 1 {
		t.Error("conn drop not recorded")
	}
}

func TestLargePayloadSurvivesRelay(t *testing.T) {
	ctl := New(rpc.NewInprocNetwork(), Config{Seed: 1})
	startEcho(t, ctl.innerNet(), "srv")
	cli := dialClient(t, ctl.Network("cli"), "srv")
	big := bytes.Repeat([]byte{0xA5}, 1<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, status, err := cli.Call(ctx, 1, big)
	if err != nil || status != rpc.StatusOK {
		t.Fatalf("big echo: status=%d err=%v", status, err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("1MiB payload corrupted through the relay")
	}
}

func TestGeneratePlanDeterministic(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3"}
	a := GeneratePlan(99, nodes, PlanConfig{})
	b := GeneratePlan(99, nodes, PlanConfig{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans — replay is broken")
	}
	c := GeneratePlan(100, nodes, PlanConfig{})
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("plan has no events")
	}
}

func TestGeneratePlanAllFaultsHeal(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3", "n4", "n5"}
	for seed := int64(1); seed <= 10; seed++ {
		p := GeneratePlan(seed, nodes, PlanConfig{})
		open := make(map[string]EventKind) // node → durable fault kind
		for _, ev := range p.Events {
			switch ev.Kind {
			case EvPartition, EvAsymSend, EvAsymRecv, EvLatency, EvBlackhole:
				open[ev.Node] = ev.Kind
			case EvCrash:
				open[ev.Node] = EvCrash
			case EvHeal:
				delete(open, ev.Node)
			case EvRestart:
				delete(open, ev.Node)
			}
			if ev.At > p.Horizon {
				t.Fatalf("seed %d: event at %v past horizon %v", seed, ev.At, p.Horizon)
			}
		}
		if len(open) != 0 {
			t.Errorf("seed %d: unhealed faults at end of plan: %v", seed, open)
		}
	}
}

func TestGeneratePlanBoundsSimultaneousDown(t *testing.T) {
	nodes := make([]string, 16)
	for i := range nodes {
		nodes[i] = string(rune('a' + i))
	}
	p := GeneratePlan(7, nodes, PlanConfig{MaxDownFrac: 0.25})
	down := make(map[string]bool)
	maxDown := 0
	for _, ev := range p.Events {
		switch ev.Kind {
		case EvPartition, EvAsymSend, EvBlackhole, EvCrash:
			down[ev.Node] = true
		case EvHeal, EvRestart:
			delete(down, ev.Node)
		}
		if len(down) > maxDown {
			maxDown = len(down)
		}
	}
	if maxDown > 4 {
		t.Errorf("up to %d nodes simultaneously down, cap is 4", maxDown)
	}
}

func TestLinkRNGDeterministic(t *testing.T) {
	a := New(rpc.NewInprocNetwork(), Config{Seed: 5})
	b := New(rpc.NewInprocNetwork(), Config{Seed: 5})
	ra, rb := a.linkRNG("x", "y", false), b.linkRNG("x", "y", false)
	for i := 0; i < 16; i++ {
		if ra.Int63() != rb.Int63() {
			t.Fatal("same seed, same link: diverging jitter streams")
		}
	}
	if a.linkRNG("x", "y", false).Int63() == a.linkRNG("x", "y", true).Int63() &&
		a.linkRNG("x", "y", false).Int63() == a.linkRNG("y", "x", false).Int63() {
		t.Error("link/direction not decorrelated")
	}
}

// innerNet exposes the wrapped network for test server setup.
func (c *Controller) innerNet() rpc.Network { return c.inner }
