package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// EventKind enumerates plan events.
type EventKind uint8

// Plan event kinds. Every durable fault (everything except EvConnDrop)
// is paired with a closing EvHeal or EvRestart in the generated plan,
// so a plan always ends with the network healed.
const (
	// EvPartition symmetrically isolates Node from every endpoint.
	EvPartition EventKind = iota
	// EvAsymSend drops frames flowing toward Node (requests lost).
	EvAsymSend
	// EvAsymRecv drops frames flowing from Node (responses lost — the
	// gray-failure shape: the node works but nobody hears it).
	EvAsymRecv
	// EvLatency adds Delay ± Jitter to both directions of Node's links.
	EvLatency
	// EvBlackhole black-holes dials to Node.
	EvBlackhole
	// EvConnDrop instantly kills Node's active connections.
	EvConnDrop
	// EvCrash takes the node process down (Kill selects hard-kill vs
	// unresponsive); executed via Actions, not the network.
	EvCrash
	// EvHeal ends the durable network fault Of on Node.
	EvHeal
	// EvRestart restarts a crashed node; executed via Actions.
	EvRestart
	// EvPFSDelay (re)sets the injected fleet-wide PFS read delay to
	// Delay (0 clears it); executed via Actions.SetPFSDelay. Phased
	// plans use it to model PFS contention storms.
	EvPFSDelay
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvPartition:
		return "partition"
	case EvAsymSend:
		return "asym-send"
	case EvAsymRecv:
		return "asym-recv"
	case EvLatency:
		return "latency"
	case EvBlackhole:
		return "blackhole"
	case EvConnDrop:
		return "conn-drop"
	case EvCrash:
		return "crash"
	case EvHeal:
		return "heal"
	case EvRestart:
		return "restart"
	case EvPFSDelay:
		return "pfs-delay"
	default:
		return "unknown"
	}
}

// Event is one scheduled fault action.
type Event struct {
	// At is the offset from plan start.
	At   time.Duration
	Kind EventKind
	// Node is the fault target.
	Node string
	// Of is the fault an EvHeal ends.
	Of EventKind
	// Kill selects hard-kill (true) vs unresponsive (false) for EvCrash.
	Kill bool
	// Delay/Jitter parameterize EvLatency.
	Delay, Jitter time.Duration
}

// Plan is a deterministic, seeded fault schedule.
type Plan struct {
	Seed    int64
	Horizon time.Duration
	Events  []Event
}

// PlanConfig tunes plan generation.
type PlanConfig struct {
	// Horizon is the fault window; all faults heal by Horizon. <= 0
	// selects 3s.
	Horizon time.Duration
	// MaxDownFrac caps the fraction of nodes simultaneously unreachable
	// (crashed, partitioned, or black-holed); <= 0 selects 0.25. At
	// least one node may always be down.
	MaxDownFrac float64
	// MeanGap is the mean time between fault injections; <= 0 selects
	// 120ms.
	MeanGap time.Duration
	// LatencyMax bounds injected per-frame delay; <= 0 selects 40ms.
	// Keep it near (or past) the RPC deadline to exercise the detector's
	// false-positive path: latency alone may suspect a node, and the
	// rejoin path must bring it back.
	LatencyMax time.Duration
}

// GeneratePlan builds a random fault schedule over nodes from seed.
// The same (seed, nodes, cfg) triple always yields the identical plan,
// which is what makes a failed soak replayable: rerun with the printed
// seed and the same fault sequence fires at the same offsets.
func GeneratePlan(seed int64, nodes []string, cfg PlanConfig) Plan {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 3 * time.Second
	}
	if cfg.MaxDownFrac <= 0 {
		cfg.MaxDownFrac = 0.25
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = 120 * time.Millisecond
	}
	if cfg.LatencyMax <= 0 {
		cfg.LatencyMax = 40 * time.Millisecond
	}
	maxDown := int(float64(len(nodes)) * cfg.MaxDownFrac)
	if maxDown < 1 {
		maxDown = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Seed: seed, Horizon: cfg.Horizon}
	downUntil := make(map[string]time.Duration) // node → when it heals

	downAt := func(t time.Duration) int {
		n := 0
		for _, until := range downUntil {
			if until > t {
				n++
			}
		}
		return n
	}

	t := cfg.MeanGap/2 + time.Duration(rng.Int63n(int64(cfg.MeanGap)))
	for t < cfg.Horizon {
		node := nodes[rng.Intn(len(nodes))]
		dur := 250*time.Millisecond + time.Duration(rng.Int63n(int64(500*time.Millisecond)))
		if t+dur > cfg.Horizon {
			dur = cfg.Horizon - t
		}
		kind := pickKind(rng)
		isDown := kind == EvPartition || kind == EvAsymSend || kind == EvBlackhole || kind == EvCrash
		if until, busy := downUntil[node]; busy && until > t {
			// Node already under a durable fault; skip this slot.
		} else if isDown && downAt(t) >= maxDown {
			// Too many nodes unreachable; degrade to a transient fault.
			p.Events = append(p.Events, Event{At: t, Kind: EvConnDrop, Node: node})
		} else {
			switch kind {
			case EvConnDrop:
				p.Events = append(p.Events, Event{At: t, Kind: EvConnDrop, Node: node})
			case EvCrash:
				p.Events = append(p.Events,
					Event{At: t, Kind: EvCrash, Node: node, Kill: rng.Intn(2) == 0},
					Event{At: t + dur, Kind: EvRestart, Node: node})
				downUntil[node] = t + dur
			case EvLatency:
				delay := time.Duration(rng.Int63n(int64(cfg.LatencyMax)))
				jitter := delay / 2
				p.Events = append(p.Events,
					Event{At: t, Kind: EvLatency, Node: node, Delay: delay, Jitter: jitter},
					Event{At: t + dur, Kind: EvHeal, Node: node, Of: EvLatency})
				downUntil[node] = t + dur // one durable fault per node at a time
			default: // partition variants, blackhole
				p.Events = append(p.Events,
					Event{At: t, Kind: kind, Node: node},
					Event{At: t + dur, Kind: EvHeal, Node: node, Of: kind})
				downUntil[node] = t + dur
			}
		}
		t += cfg.MeanGap/2 + time.Duration(rng.Int63n(int64(cfg.MeanGap)))
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}

// pickKind draws an event kind with fixed weights.
func pickKind(rng *rand.Rand) EventKind {
	switch n := rng.Intn(100); {
	case n < 18:
		return EvPartition
	case n < 28:
		return EvAsymSend
	case n < 38:
		return EvAsymRecv
	case n < 60:
		return EvLatency
	case n < 70:
		return EvBlackhole
	case n < 80:
		return EvConnDrop
	default:
		return EvCrash
	}
}

// Actions are the node-lifecycle hooks a plan needs beyond the network:
// the chaos package cannot kill a server process itself, so the harness
// (soak test, ftcbench -chaos) supplies these against its cluster.
type Actions struct {
	// Crash takes node down; kill selects hard-kill vs unresponsive.
	Crash func(node string, kill bool)
	// Restart brings a crashed node back up (listening again).
	Restart func(node string)
	// SetPFSDelay (re)sets the injected fleet-wide PFS read delay
	// (phased plans' contention model); 0 clears it. Optional.
	SetPFSDelay func(d time.Duration)
}

// Execute applies the plan against ctl (and act, for crash/restart) in
// real time, sleeping between events. It returns after the last event
// or when ctx is done; on a clean run every durable fault has healed.
func (p Plan) Execute(ctx context.Context, ctl *Controller, act Actions) {
	start := time.Now()
	for _, ev := range p.Events {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return
			}
		}
		if ctx.Err() != nil {
			return
		}
		switch ev.Kind {
		case EvPartition:
			ctl.Isolate(ev.Node)
		case EvAsymSend:
			ctl.CutOneWay(Wildcard, ev.Node)
			// CutOneWay records asym-partition itself.
		case EvAsymRecv:
			ctl.CutOneWay(ev.Node, Wildcard)
		case EvLatency:
			ctl.SetLinkLatency(Wildcard, ev.Node, ev.Delay, ev.Jitter)
		case EvBlackhole:
			ctl.Blackhole(ev.Node)
			ctl.Record(KindDialBlackhole + "-installed")
		case EvConnDrop:
			ctl.DropConns(ev.Node)
		case EvCrash:
			if act.Crash != nil {
				act.Crash(ev.Node, ev.Kill)
			}
			ctl.Record(KindCrash)
		case EvRestart:
			if act.Restart != nil {
				act.Restart(ev.Node)
			}
			ctl.Record(KindRestart)
		case EvPFSDelay:
			if act.SetPFSDelay != nil {
				act.SetPFSDelay(ev.Delay)
			}
			ctl.Record(KindPFSDelay)
		case EvHeal:
			switch ev.Of {
			case EvLatency:
				ctl.ClearLatencyNode(ev.Node)
			case EvBlackhole:
				ctl.Unblackhole(ev.Node)
			default:
				ctl.HealNode(ev.Node)
			}
		}
	}
}

// Summary renders a one-line plan description for logs.
func (p Plan) Summary() string {
	byKind := make(map[EventKind]int)
	for _, ev := range p.Events {
		byKind[ev.Kind]++
	}
	return fmt.Sprintf("seed=%d events=%d horizon=%s partitions=%d asym=%d latency=%d blackholes=%d conndrops=%d crashes=%d",
		p.Seed, len(p.Events), p.Horizon,
		byKind[EvPartition], byKind[EvAsymSend]+byKind[EvAsymRecv],
		byKind[EvLatency], byKind[EvBlackhole], byKind[EvConnDrop], byKind[EvCrash])
}
