package chaos

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// relay is the per-connection fault applicator: it sits between the
// application end of a dialed connection and the real endpoint,
// forwarding whole wire frames in both directions and applying the
// controller's current link rules per frame.
//
// Operating on frames rather than bytes is what keeps fault injection
// protocol-clean: a cut drops entire requests or responses (the peer
// observes silence and the RPC layer a timeout — never a half-frame
// that would corrupt the stream after the partition heals), and added
// latency delays delivery inside the relay without holding any lock the
// sender's other traffic needs.
//
// Each direction is one goroutine, so per-direction delivery stays FIFO
// even under jitter — injected latency reorders nothing, it only
// shifts delivery times, which keeps replays deterministic in effect.
type relay struct {
	ctl      *Controller
	src, dst string
	app      net.Conn // relay-side end of the pipe handed to the dialer
	real     net.Conn // connection to the true endpoint

	once sync.Once
}

func newRelay(ctl *Controller, src, dst string, app, real net.Conn) *relay {
	return &relay{ctl: ctl, src: src, dst: dst, app: app, real: real}
}

func (r *relay) start() {
	go r.pump(r.app, r.real, r.src, r.dst, r.ctl.linkRNG(r.src, r.dst, false))
	go r.pump(r.real, r.app, r.dst, r.src, r.ctl.linkRNG(r.src, r.dst, true))
}

// pump forwards frames from conn `from` to conn `to`; the flow
// direction is fromName→toName for rule lookups.
func (r *relay) pump(from, to net.Conn, fromName, toName string, rng *rand.Rand) {
	for {
		f, err := wire.ReadFrame(from, 0)
		if err != nil {
			r.close()
			return
		}
		if r.ctl.isCut(fromName, toName) {
			r.ctl.Record(KindFrameDrop)
			continue // the frame vanishes into the partition
		}
		if spec, ok := r.ctl.latencyFor(fromName, toName); ok {
			d := spec.delay
			if spec.jitter > 0 {
				d += time.Duration(rng.Int63n(int64(2*spec.jitter))) - spec.jitter
			}
			if d > 0 {
				r.ctl.Record(KindFrameDelay)
				time.Sleep(d)
				// Rules may have changed while the frame was "in flight":
				// a partition installed mid-delay eats it, like a packet
				// still on the wire when the link dies.
				if r.ctl.isCut(fromName, toName) {
					r.ctl.Record(KindFrameDrop)
					continue
				}
			}
		}
		if err := wire.WriteFrame(to, &f); err != nil {
			r.close()
			return
		}
	}
}

// close tears both ends down (idempotent); the application side sees a
// connection reset, the real endpoint an EOF.
func (r *relay) close() {
	r.once.Do(func() {
		r.app.Close()
		r.real.Close()
		r.ctl.removeRelay(r)
	})
}
