package loadsim

import (
	"testing"
)

// small runs a fast sweep point for unit testing.
func small(vnodes, trials int) Point {
	return Run(Config{
		PhysicalNodes: 64,
		VirtualNodes:  vnodes,
		Files:         4096,
		Trials:        trials,
		Seed:          1,
	})
}

func TestReceiverCountGrowsWithVirtualNodes(t *testing.T) {
	lo := small(2, 30)
	hi := small(100, 30)
	if hi.ReceiverMean <= lo.ReceiverMean {
		t.Errorf("receivers: v=2 → %.1f, v=100 → %.1f; should grow", lo.ReceiverMean, hi.ReceiverMean)
	}
	// With very few virtual nodes, only a handful of survivors receive
	// anything (the paper's v=10 point shows ~3 of 1024).
	if lo.ReceiverMean > 10 {
		t.Errorf("v=2 receivers = %.1f, expected a handful", lo.ReceiverMean)
	}
}

func TestFilesPerReceiverShrinksWithVirtualNodes(t *testing.T) {
	lo := small(2, 30)
	hi := small(100, 30)
	if hi.FilesPerNodeMean >= lo.FilesPerNodeMean {
		t.Errorf("files/receiver: v=2 → %.1f, v=100 → %.1f; should shrink",
			lo.FilesPerNodeMean, hi.FilesPerNodeMean)
	}
}

func TestConservation(t *testing.T) {
	// Receivers × mean files per receiver ≈ lost files (they must all
	// land somewhere).
	p := small(50, 20)
	redistributed := p.ReceiverMean * p.FilesPerNodeMean
	if redistributed < p.LostMean*0.8 || redistributed > p.LostMean*1.2 {
		t.Errorf("redistribution not conserved: receivers×files = %.1f, lost = %.1f",
			redistributed, p.LostMean)
	}
	// Lost files should be about files/nodes on average.
	expLost := 4096.0 / 64.0
	if p.LostMean < expLost/2 || p.LostMean > expLost*2 {
		t.Errorf("lost mean = %.1f, expected near %.1f", p.LostMean, expLost)
	}
}

func TestReceiversBoundedByLostAndSurvivors(t *testing.T) {
	p := small(1000, 10)
	if p.ReceiverMean > 63 {
		t.Errorf("receivers %.1f exceed survivor count", p.ReceiverMean)
	}
	if p.ReceiverMean > p.LostMean {
		t.Errorf("receivers %.1f exceed lost files %.1f", p.ReceiverMean, p.LostMean)
	}
}

func TestDiminishingReturns(t *testing.T) {
	// The paper's key observation: receiver growth flattens at high
	// virtual-node counts (files, not arcs, become the limit).
	a := small(10, 20)
	b := small(100, 20)
	c := small(1000, 20)
	growLow := b.ReceiverMean - a.ReceiverMean
	growHigh := c.ReceiverMean - b.ReceiverMean
	if growHigh >= growLow {
		t.Errorf("receiver growth should flatten: 10→100 = %.1f, 100→1000 = %.1f",
			growLow, growHigh)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := small(50, 10)
	b := small(50, 10)
	if a.ReceiverMean != b.ReceiverMean || a.FilesPerNodeMean != b.FilesPerNodeMean {
		t.Error("same seed should reproduce identical results")
	}
}

func TestSweepShape(t *testing.T) {
	pts := Sweep(32, 4096, 10, 3, []int{5, 50})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].VirtualNodes != 5 || pts[1].VirtualNodes != 50 {
		t.Error("sweep order broken")
	}
	for _, p := range pts {
		if p.Trials != 10 {
			t.Errorf("trials = %d", p.Trials)
		}
		if p.ReceiverStdDev < 0 || p.FilesPerNodeStdDev < 0 {
			t.Error("negative stddev")
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(Config{PhysicalNodes: 1, Files: 10, Trials: 1})
}

func BenchmarkTrialV100(b *testing.B) {
	cfg := Config{PhysicalNodes: 256, VirtualNodes: 100, Files: 16384, Seed: 1, Trials: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		Run(cfg)
	}
}

func TestMultiFailure(t *testing.T) {
	single := Run(Config{
		PhysicalNodes: 64, VirtualNodes: 100, Files: 4096, Trials: 20, Seed: 5,
	})
	multi := Run(Config{
		PhysicalNodes: 64, VirtualNodes: 100, Files: 4096, Trials: 20, Seed: 5,
		SimultaneousFailures: 4,
	})
	// Four simultaneous failures lose ~4x the files and spread over more
	// receivers.
	if multi.LostMean < single.LostMean*3 || multi.LostMean > single.LostMean*5 {
		t.Errorf("lost: single=%.1f multi=%.1f, want ~4x", single.LostMean, multi.LostMean)
	}
	if multi.ReceiverMean <= single.ReceiverMean {
		t.Errorf("receivers: single=%.1f multi=%.1f", single.ReceiverMean, multi.ReceiverMean)
	}
	// Receivers never include failed nodes: bounded by survivors.
	if multi.ReceiverMean > 60 {
		t.Errorf("receivers %.1f exceed survivor count", multi.ReceiverMean)
	}
}

func TestMultiFailurePanicsWithoutSurvivors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(Config{PhysicalNodes: 4, VirtualNodes: 10, Files: 100, Trials: 1,
		SimultaneousFailures: 4})
}

func TestAnalyticMatchesMonteCarlo(t *testing.T) {
	for _, tc := range []struct{ nodes, vnodes, files int }{
		{64, 10, 4096},
		{64, 100, 4096},
		{128, 50, 8192},
		{64, 1000, 4096},
	} {
		mc := Run(Config{
			PhysicalNodes: tc.nodes, VirtualNodes: tc.vnodes,
			Files: tc.files, Trials: 40, Seed: 9,
		})
		an := ExpectedReceivers(tc.nodes, tc.vnodes, tc.files)
		rel := (mc.ReceiverMean - an) / an
		if rel < -0.30 || rel > 0.30 {
			t.Errorf("n=%d v=%d f=%d: MC=%.1f analytic=%.1f (rel %.2f)",
				tc.nodes, tc.vnodes, tc.files, mc.ReceiverMean, an, rel)
		}
	}
}

func TestAnalyticPlateau(t *testing.T) {
	// The model explains the paper's plateau: receivers are capped by
	// lost files, not virtual nodes.
	lost := 524288.0 / 1024.0
	atHuge := ExpectedReceivers(1024, 100000, 524288)
	if atHuge > lost {
		t.Errorf("analytic receivers %.1f exceed lost files %.1f", atHuge, lost)
	}
	// Per-virtual-node marginal gain collapses at high counts (the
	// paper's diminishing returns): compare slope per added vnode.
	slopeHigh := (ExpectedReceivers(1024, 1000, 524288) - ExpectedReceivers(1024, 500, 524288)) / 500
	slopeLow := (ExpectedReceivers(1024, 100, 524288) - ExpectedReceivers(1024, 50, 524288)) / 50
	if slopeHigh >= slopeLow/2 {
		t.Errorf("marginal receiver gain should collapse: %.3f vs %.3f", slopeHigh, slopeLow)
	}
	if ExpectedReceivers(1, 10, 100) != 0 || ExpectedReceivers(10, 0, 100) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}
