package loadsim_test

import (
	"fmt"

	"repro/internal/loadsim"
)

// The closed-form Fig 6(b) model: receiver count is capped by lost
// files, which is why adding virtual nodes past a few hundred stops
// helping (the paper's plateau at ~300 of 1024 nodes).
func ExampleExpectedReceivers() {
	for _, v := range []int{10, 100, 1000, 10000} {
		r := loadsim.ExpectedReceivers(1024, v, 524288)
		fmt.Printf("vnodes=%5d expected receivers=%3.0f\n", v, r)
	}
	// Output:
	// vnodes=   10 expected receivers= 10
	// vnodes=  100 expected receivers= 95
	// vnodes= 1000 expected receivers=332
	// vnodes=10000 expected receivers=395
}
