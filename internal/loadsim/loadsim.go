// Package loadsim is the Monte-Carlo load-redistribution study behind the
// paper's Fig 6(b): on a 1024-physical-node hash ring, fail one random
// node and measure (a) how many surviving nodes receive its files and
// (b) how many files each receiver absorbs, as the virtual-node count
// sweeps from 10 to 1000 per physical node. 500 trials per setting; the
// plotted values are means, the error bars standard deviations.
//
// The simulation runs against the real hashring package — the same code
// the live cache uses — so the figure measures the actual system, not an
// abstraction of it. This mirrors the artifact's
// load_distribution_simul.cpp.
package loadsim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/hashring"
	"repro/internal/stats"
)

// Config parameterizes one sweep point.
type Config struct {
	// PhysicalNodes on the ring (paper: 1024).
	PhysicalNodes int
	// VirtualNodes per physical node (the sweep variable).
	VirtualNodes int
	// Files is the cached-key population (paper: the CosmoFlow training
	// set, 524,288 files).
	Files int
	// Trials is the Monte-Carlo repetition count (paper: 500).
	Trials int
	// Seed makes the experiment reproducible.
	Seed int64
	// Workers bounds trial parallelism; <= 0 uses GOMAXPROCS.
	Workers int
	// SimultaneousFailures is how many distinct nodes fail at once per
	// trial; <= 0 selects 1 (the paper's single-failure protocol).
	// Correlated multi-node failures (a rack or switch dying) are the
	// obvious extension scenario.
	SimultaneousFailures int
}

// Point is the aggregated outcome for one virtual-node setting.
type Point struct {
	VirtualNodes int
	// ReceiverNodes: how many distinct survivors inherited at least one
	// file (mean ± stddev across trials) — Fig 6(b) left axis.
	ReceiverMean   float64
	ReceiverStdDev float64
	// FilesPerReceiver: files landing on each receiver (mean of
	// per-trial means ± pooled stddev of per-receiver counts) —
	// Fig 6(b) right axis.
	FilesPerNodeMean   float64
	FilesPerNodeStdDev float64
	// LostMean is the average number of files the failed node held.
	LostMean float64
	// Trials actually executed.
	Trials int
}

// trialOut carries one trial's raw observations.
type trialOut struct {
	receivers int
	lost      int
	perNode   []int
}

// Run executes the Monte-Carlo sweep point.
//
// Building a fresh 1024-node ring per trial would dominate runtime, so
// each trial reuses a shared immutable base ring: the failed node's key
// reassignment is computed with PlanRecache on a clone, exactly what a
// live client does when the detector fires.
func Run(cfg Config) Point {
	if cfg.PhysicalNodes < 2 || cfg.Trials < 1 || cfg.Files < 1 {
		panic("loadsim: PhysicalNodes>=2, Trials>=1, Files>=1 required")
	}
	failures := cfg.SimultaneousFailures
	if failures <= 0 {
		failures = 1
	}
	if failures >= cfg.PhysicalNodes {
		panic("loadsim: SimultaneousFailures must leave survivors")
	}
	nodes := make([]hashring.NodeID, cfg.PhysicalNodes)
	for i := range nodes {
		nodes[i] = hashring.NodeID(fmt.Sprintf("node-%04d", i))
	}
	base := hashring.NewWithNodes(hashring.Config{VirtualNodes: cfg.VirtualNodes}, nodes)

	keys := make([]string, cfg.Files)
	for i := range keys {
		keys[i] = fmt.Sprintf("cosmoUniverse/train/univ_%07d.tfrecord", i)
	}
	// Precompute each key's owner once: per trial we only need the keys
	// owned by the failed node.
	byOwner := make(map[hashring.NodeID][]string, cfg.PhysicalNodes)
	for _, k := range keys {
		o, _ := base.Owner(k)
		byOwner[o] = append(byOwner[o], k)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	outs := make([]trialOut, cfg.Trials)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for t := w; t < cfg.Trials; t += workers {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*7919))
				victims := pickDistinct(rng, len(nodes), failures)
				after := base.Clone()
				var lostKeys []string
				for _, vi := range victims {
					lostKeys = append(lostKeys, byOwner[nodes[vi]]...)
					after.Remove(nodes[vi])
				}
				counts := make(map[hashring.NodeID]int)
				for _, k := range lostKeys {
					newOwner, ok := after.Owner(k)
					if !ok {
						continue
					}
					counts[newOwner]++
				}
				per := make([]int, 0, len(counts))
				for _, c := range counts {
					per = append(per, c)
				}
				// Map iteration order is random; sort so the float
				// accumulation below is bit-for-bit reproducible.
				sort.Ints(per)
				outs[t] = trialOut{receivers: len(counts), lost: len(lostKeys), perNode: per}
			}
		}(w)
	}
	wg.Wait()

	var recv, lost stats.Running
	var perAll stats.Running
	var perMeans stats.Running
	for _, o := range outs {
		recv.Add(float64(o.receivers))
		lost.Add(float64(o.lost))
		var m stats.Running
		for _, c := range o.perNode {
			perAll.Add(float64(c))
			m.Add(float64(c))
		}
		if m.N() > 0 {
			perMeans.Add(m.Mean())
		}
	}
	return Point{
		VirtualNodes:       cfg.VirtualNodes,
		ReceiverMean:       recv.Mean(),
		ReceiverStdDev:     recv.StdDev(),
		FilesPerNodeMean:   perMeans.Mean(),
		FilesPerNodeStdDev: perAll.StdDev(),
		LostMean:           lost.Mean(),
		Trials:             cfg.Trials,
	}
}

// pickDistinct draws k distinct indices from [0, n).
func pickDistinct(rng *rand.Rand, n, k int) []int {
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// ExpectedReceivers is the closed-form approximation of Fig 6(b)'s
// receiver count, used to cross-validate the Monte-Carlo:
//
//	lost files  L ≈ files / nodes fall into the victim's V arcs
//	non-empty arcs  A = V·(1−(1−1/V)^L)           (balls into V bins)
//	receivers       R = (N−1)·(1−(1−1/(N−1))^A)   (arcs onto survivors)
//
// Both stages are standard occupancy expectations; the composition
// explains the paper's plateau: once V ≫ L, A saturates at ≈ L and more
// virtual nodes cannot create more receivers than there are lost files.
func ExpectedReceivers(physicalNodes, virtualNodes, files int) float64 {
	if physicalNodes < 2 || virtualNodes < 1 || files < 1 {
		return 0
	}
	l := float64(files) / float64(physicalNodes)
	v := float64(virtualNodes)
	n := float64(physicalNodes - 1)
	arcs := v * (1 - math.Pow(1-1/v, l))
	return n * (1 - math.Pow(1-1/n, arcs))
}

// PaperSweep is the published Fig 6(b) x-axis.
var PaperSweep = []int{10, 50, 100, 500, 1000}

// Sweep runs Run for each virtual-node setting.
func Sweep(physicalNodes, files, trials int, seed int64, vnodeSettings []int) []Point {
	out := make([]Point, 0, len(vnodeSettings))
	for _, v := range vnodeSettings {
		out = append(out, Run(Config{
			PhysicalNodes: physicalNodes,
			VirtualNodes:  v,
			Files:         files,
			Trials:        trials,
			Seed:          seed,
		}))
	}
	return out
}
