package rpc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalescedCallsAmortizeWrites: under concurrent callers, request
// frames leave in fewer socket writes than calls — the client-side
// coalescing metric moves.
func TestCoalescedCallsAmortizeWrites(t *testing.T) {
	_, cli := startPair(t, NewInprocNetwork(), "coalesce")
	m := metrics()
	frames0, flushes0 := m.clientFrames.Load(), m.clientFlushes.Load()

	const callers, perC = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				payload := []byte(fmt.Sprintf("c%d-%d", g, i))
				resp, status, err := cli.Call(context.Background(), opEcho, payload)
				if err != nil || status != StatusOK {
					t.Errorf("call: status=%d err=%v", status, err)
					return
				}
				if string(resp) != "echo:"+string(payload) {
					t.Errorf("resp %q", resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	frames := m.clientFrames.Load() - frames0
	flushes := m.clientFlushes.Load() - flushes0
	if frames < callers*perC {
		t.Fatalf("clientFrames moved by %d, want >= %d", frames, callers*perC)
	}
	if flushes > frames {
		t.Fatalf("flushes=%d exceeds frames=%d", flushes, frames)
	}
}

// blockableHandler parks requests until released, so a controlled number
// of handler goroutines pile up per connection.
type blockableHandler struct {
	inflight atomic.Int64
	peak     atomic.Int64
	release  chan struct{}
}

func (h *blockableHandler) Handle(op uint16, payload []byte) (uint16, []byte) {
	cur := h.inflight.Add(1)
	for {
		p := h.peak.Load()
		if cur <= p || h.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	<-h.release
	h.inflight.Add(-1)
	return StatusOK, payload
}

// TestServeConnBoundsHandlerFanout: more concurrent requests than
// MaxConnConcurrency on one conn must not spawn more than
// MaxConnConcurrency handler goroutines — the overflow queues in the
// read loop and completes once handlers drain.
func TestServeConnBoundsHandlerFanout(t *testing.T) {
	h := &blockableHandler{release: make(chan struct{})}
	network := NewInprocNetwork()
	srv := NewServer(h)
	lis, err := network.Listen("bound")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	conn, err := network.Dial("bound")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	t.Cleanup(func() { cli.Close(); srv.Close() })

	const total = MaxConnConcurrency + 50
	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, status, err := cli.Call(context.Background(), opEcho, []byte("x"))
			if err != nil || status != StatusOK {
				errs <- fmt.Errorf("status=%d err=%v", status, err)
			}
		}()
	}

	// Wait until the semaphore is saturated, then check the bound held.
	deadline := time.Now().Add(2 * time.Second)
	for h.inflight.Load() < MaxConnConcurrency {
		if time.Now().After(deadline) {
			t.Fatalf("never saturated: inflight=%d", h.inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // give an unbounded server time to overshoot
	if peak := h.peak.Load(); peak > MaxConnConcurrency {
		t.Fatalf("handler fan-out peaked at %d, bound is %d", peak, MaxConnConcurrency)
	}
	close(h.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRespWriteErrorCounted: a response the server cannot deliver (the
// client hung up first) moves the resp-write-error counter instead of
// vanishing into a discarded error.
func TestRespWriteErrorCounted(t *testing.T) {
	network := NewInprocNetwork()
	release := make(chan struct{})
	srv := NewServer(HandlerFunc(func(op uint16, payload []byte) (uint16, []byte) {
		<-release
		return StatusOK, payload
	}))
	lis, err := network.Listen("drop")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	conn, err := network.Dial("drop")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)

	m := metrics()
	dropped0 := m.respDropped.Load()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, _ = cli.Call(ctx, opEcho, []byte("x")) // times out while the handler is parked
	cli.Close()                                  // conn gone before the response is written
	close(release)

	deadline := time.Now().Add(2 * time.Second)
	for m.respDropped.Load() == dropped0 {
		if time.Now().After(deadline) {
			t.Fatal("dropped response write never counted")
		}
		time.Sleep(time.Millisecond)
	}
}
