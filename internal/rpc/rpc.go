// Package rpc is the request/response transport of the FT-Cache
// reproduction — the stdlib-only stand-in for the Mercury HPC RPC
// framework the paper's C++ artifact used.
//
// It provides:
//
//   - Server: a framed-message server dispatching requests to a Handler,
//     with an "unresponsive" switch used by the failure-injection harness
//     to emulate a node that is up at the TCP level but no longer answers
//     (the network-timeout failure mode §III classifies as node failure).
//   - Client: a multiplexing client with per-call deadlines. A deadline
//     expiry surfaces as ErrTimeout, the signal the HVAC client's
//     timeout-counting failure detector consumes.
//   - Network interfaces over TCP and an in-process pipe network so whole
//     clusters can run inside one test binary.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// StatusOK is the conventional success status; applications define their
// own non-zero statuses.
const StatusOK uint16 = 0

// Errors surfaced by Client.Call.
var (
	// ErrTimeout reports that the per-call deadline expired before a
	// response arrived. The connection stays usable; a late response is
	// discarded.
	ErrTimeout = errors.New("rpc: call timed out")
	// ErrClosed reports that the connection failed or was closed.
	ErrClosed = errors.New("rpc: connection closed")
)

// Handler processes one request and returns a status and response
// payload. Handlers run concurrently; implementations must be
// goroutine-safe.
//
// Buffer lifetime: payload aliases a pooled receive buffer that is
// reused after the response has been written. A handler may slice it and
// may return a resp that aliases it, but it must copy anything it
// retains beyond its own return (e.g. bytes stored into a cache).
type Handler interface {
	Handle(op uint16, payload []byte) (status uint16, resp []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(op uint16, payload []byte) (uint16, []byte)

// Handle implements Handler.
func (f HandlerFunc) Handle(op uint16, payload []byte) (uint16, []byte) {
	return f(op, payload)
}

// WaitHandler is an optional extension a Handler may implement to
// learn how long a request sat in the per-connection fan-out queue
// (the serveConn concurrency semaphore) before its goroutine started.
// Request tracing attributes that wait to the "queue" component of
// p99; a plain Handler never sees it. connWait is zero when the
// semaphore had a free slot (the common case — measured without a
// clock read).
type WaitHandler interface {
	HandleWait(op uint16, payload []byte, connWait time.Duration) (status uint16, resp []byte)
}

// LeasedResp is a response whose payload tail is a zero-copy lease:
// the wire payload is Head||Ext, where Head is copied into the shared
// flush buffer as usual and Ext is spliced into the flush directly
// from memory the handler still owns. Release (which may be nil when
// there is no lease) fires exactly once, after the flush attempt
// carrying the response completes — that is the moment the handler's
// ownership of Ext ends. The RAM-tier read path uses this to serve
// cache hits straight out of pooled tier buffers without a copy.
type LeasedResp struct {
	Status  uint16
	Head    []byte
	Ext     []byte
	Release func()
}

// LeasedHandler is the optional Handler extension for zero-copy leased
// responses. When implemented, the server dispatches every request
// through HandleLeased instead of Handle/HandleWait. Implementations
// must not panic between acquiring a lease and returning it in the
// LeasedResp — a panic unwinds past the server's recovery without the
// Release ever reaching the writer, leaking the lease.
type LeasedHandler interface {
	HandleLeased(op uint16, payload []byte, connWait time.Duration) LeasedResp
}

// Server accepts framed-RPC connections and dispatches requests.
type Server struct {
	handler Handler

	mu           sync.Mutex
	lis          net.Listener
	conns        map[net.Conn]struct{}
	closed       bool
	unresponsive atomic.Bool
	wg           sync.WaitGroup
}

// NewServer creates a Server dispatching to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// SetUnresponsive toggles fault-injection mode: while set, the server
// keeps reading requests but never replies, so clients observe timeouts —
// exactly how a node behind a failed switch appears to its peers.
func (s *Server) SetUnresponsive(v bool) { s.unresponsive.Store(v) }

// Unresponsive reports whether fault-injection mode is active.
func (s *Server) Unresponsive() bool { return s.unresponsive.Load() }

// Serve accepts connections on lis until Close. It returns after the
// listener fails (nil after Close).
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// MaxConnConcurrency bounds the per-connection handler fan-out: at most
// this many request goroutines run per conn; past the bound the read
// loop itself blocks, so a write burst turns into TCP backpressure the
// sender feels instead of an unbounded goroutine pile the admission
// controller never saw.
const MaxConnConcurrency = 256

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	m := metrics()
	// Responses from concurrent handlers group-commit: whoever finishes
	// while another response is mid-write parks its frame in the shared
	// buffer, and one Write flushes them all (see wire.CoalescedWriter).
	cw := wire.NewCoalescedWriter(conn, serverFlushObserver(m))
	lh, _ := s.handler.(LeasedHandler)
	sem := make(chan struct{}, MaxConnConcurrency)
	for {
		// The request body is leased from the wire buffer pool, so the
		// steady-state receive path allocates nothing per frame. The lease
		// is released once the handler has run and its response (which may
		// alias the request payload) has been written.
		f, lease, err := wire.ReadFramePooled(conn, 0)
		if err != nil {
			return
		}
		if f.Type != wire.TypeRequest || s.unresponsive.Load() {
			// Non-requests are ignored; in fault-injection mode requests
			// are swallowed so the client observes a timeout.
			lease.Release()
			continue
		}
		req := f
		// Acquire a fan-out slot, timing the wait only when the fast
		// path misses: the try-send costs no clock read, so an idle
		// semaphore (the steady state) adds nothing to the hot path.
		var connWait time.Duration
		select {
		case sem <- struct{}{}:
		default:
			t0 := time.Now()
			sem <- struct{}{}
			connWait = time.Since(t0)
		}
		go func() {
			defer func() { <-sem }()
			defer lease.Release()
			if lh != nil {
				// Leased-response path: the handler may return a payload
				// tail it still owns; the coalescing writer splices it
				// into the flush and fires Release once the bytes are on
				// the wire (or the flush is abandoned) — the lease
				// outlives this goroutine.
				lr := s.safeHandleLeased(lh, req.Op, req.Payload, connWait)
				if s.unresponsive.Load() {
					if lr.Release != nil {
						lr.Release()
					}
					return
				}
				out := wire.Frame{
					Type:    wire.TypeResponse,
					ID:      req.ID,
					Op:      req.Op,
					Status:  lr.Status,
					Payload: lr.Head,
				}
				var werr error
				if lr.Ext != nil || lr.Release != nil {
					werr = cw.WriteFrameExt(&out, lr.Ext, lr.Release, time.Time{})
				} else {
					werr = cw.WriteFrame(&out)
				}
				if werr != nil {
					m.respDropped.Inc()
				}
				return
			}
			status, resp := s.safeHandle(req.Op, req.Payload, connWait)
			if s.unresponsive.Load() {
				return // became unresponsive while handling
			}
			out := wire.Frame{
				Type:    wire.TypeResponse,
				ID:      req.ID,
				Op:      req.Op,
				Status:  status,
				Payload: resp,
			}
			if werr := cw.WriteFrame(&out); werr != nil {
				// The conn failure also surfaces on the next read; the
				// counter records that a computed response was dropped —
				// historically this was a silent `_ =`.
				m.respDropped.Inc()
			}
		}()
	}
}

// StatusPanic is returned to the client when a handler panics: a daemon
// serving a thousand-node job must not die because one request tripped a
// bug — the client sees an error status and the failure stays scoped to
// that request.
const StatusPanic uint16 = 0xFFFF

func (s *Server) safeHandle(op uint16, payload []byte, connWait time.Duration) (status uint16, resp []byte) {
	defer func() {
		if r := recover(); r != nil {
			status = StatusPanic
			resp = []byte(fmt.Sprintf("handler panic: %v", r))
		}
	}()
	if wh, ok := s.handler.(WaitHandler); ok {
		return wh.HandleWait(op, payload, connWait)
	}
	return s.handler.Handle(op, payload)
}

// safeHandleLeased is safeHandle for the leased-response dispatch path.
// A recovered panic yields a plain (lease-free) StatusPanic response;
// see LeasedHandler for the no-panic-while-holding-a-lease contract.
func (s *Server) safeHandleLeased(lh LeasedHandler, op uint16, payload []byte, connWait time.Duration) (lr LeasedResp) {
	defer func() {
		if r := recover(); r != nil {
			lr = LeasedResp{Status: StatusPanic, Head: []byte(fmt.Sprintf("handler panic: %v", r))}
		}
	}()
	return lh.HandleLeased(op, payload, connWait)
}

// Close stops accepting, closes all connections, and waits for
// per-connection goroutines to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.lis != nil {
		s.lis.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

type pendingCall struct {
	ch chan wire.Frame
}

// callPool recycles pendingCall structs (and their response channels)
// across Calls. A pendingCall is only returned to the pool on the happy
// path, after its single buffered response has been consumed: a call
// that timed out or failed may still receive a late send or a close on
// its channel, so those channels are abandoned to the GC instead.
var callPool = sync.Pool{
	New: func() any { return &pendingCall{ch: make(chan wire.Frame, 1)} },
}

func acquireCall() *pendingCall {
	p := callPool.Get().(*pendingCall)
	select { // defensive drain; the pool discipline should keep it empty
	case <-p.ch:
	default:
	}
	return p
}

// Client is a multiplexing RPC client over a single connection. Calls
// may be issued concurrently from any goroutine; requests issued while
// another caller's frame is on the wire coalesce into a single write.
type Client struct {
	conn   net.Conn
	cw     *wire.CoalescedWriter
	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	err     error // terminal connection error
	done    chan struct{}
}

// NewClient wraps an established connection and starts the read loop.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		cw:      wire.NewCoalescedWriter(conn, clientFlushObserver(metrics())),
		pending: make(map[uint64]*pendingCall),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		f, err := wire.ReadFrame(c.conn, 0)
		if err != nil {
			c.failAll(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		if f.Type != wire.TypeResponse {
			continue
		}
		c.mu.Lock()
		p := c.pending[f.ID]
		delete(c.pending, f.ID)
		c.mu.Unlock()
		if p != nil {
			p.ch <- f // buffered; never blocks
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	for id, p := range c.pending {
		delete(c.pending, id)
		close(p.ch)
	}
	c.mu.Unlock()
}

// Call sends op/payload and waits for the matching response, the context
// deadline, or connection failure. Status is the application status from
// the server. Context expiry maps to ErrTimeout so failure detectors can
// distinguish "slow/silent node" from "connection refused" (ErrClosed).
func (c *Client) Call(ctx context.Context, op uint16, payload []byte) (resp []byte, status uint16, err error) {
	m := metrics()
	m.inflight.Add(1)
	start := time.Now()
	resp, status, err = c.call(ctx, op, payload)
	m.inflight.Add(-1)
	m.calls.Inc()
	switch {
	case err == nil:
		m.roundtrip.ObserveSince(start)
	case errors.Is(err, ErrTimeout):
		m.timeouts.Inc()
	default:
		m.failures.Inc()
	}
	return resp, status, err
}

// call is the uninstrumented body of Call.
func (c *Client) call(ctx context.Context, op uint16, payload []byte) (resp []byte, status uint16, err error) {
	id := c.nextID.Add(1)
	p := acquireCall()

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, 0, err
	}
	c.pending[id] = p
	c.mu.Unlock()

	f := wire.Frame{Type: wire.TypeRequest, ID: id, Op: op, Payload: payload}
	// The coalescing writer batches this frame with any concurrent
	// callers' frames into one Write, arming the conn write deadline to
	// the earliest deadline in the batch (and only touching it when some
	// frame has one — SetWriteDeadline is a timer dance on every conn
	// type, and the steady-state hot path has no deadline).
	var dl time.Time
	if d, ok := ctx.Deadline(); ok {
		dl = d
	}
	werr := c.cw.WriteFrameDeadline(&f, dl)
	if werr != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		if isTimeoutErr(werr) {
			return nil, 0, fmt.Errorf("%w: write: %v", ErrTimeout, werr)
		}
		return nil, 0, fmt.Errorf("%w: write: %v", ErrClosed, werr)
	}

	select {
	case got, ok := <-p.ch:
		if !ok {
			return nil, 0, c.terminalErr()
		}
		// Happy path: the readLoop removed id from pending before the
		// send, so no further send or close can reach this channel.
		callPool.Put(p)
		return got.Payload, got.Status, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, 0, ErrTimeout
		}
		return nil, 0, ctx.Err()
	case <-c.done:
		return nil, 0, c.terminalErr()
	}
}

func (c *Client) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClosed
}

func isTimeoutErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Close tears down the connection; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.failAll(ErrClosed)
	return err
}

// Err returns the terminal connection error, or nil while healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
