package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

const (
	opEcho uint16 = 1
	opFail uint16 = 2
	opSlow uint16 = 3
)

func echoHandler() Handler {
	return HandlerFunc(func(op uint16, payload []byte) (uint16, []byte) {
		switch op {
		case opEcho:
			return StatusOK, append([]byte("echo:"), payload...)
		case opFail:
			return 7, []byte("application error")
		case opSlow:
			time.Sleep(50 * time.Millisecond)
			return StatusOK, payload
		default:
			return 99, nil
		}
	})
}

// startPair starts a server on net and returns a connected client.
func startPair(t *testing.T, network Network, name string) (*Server, *Client) {
	t.Helper()
	srv := NewServer(echoHandler())
	lis, err := network.Listen(name)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	var addr string
	if _, ok := network.(TCPNetwork); ok {
		addr = lis.Addr().String()
	} else {
		addr = name
	}
	conn, err := network.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cli := NewClient(conn)
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return srv, cli
}

func TestEchoOverInproc(t *testing.T) { testEcho(t, NewInprocNetwork(), "srv-a") }
func TestEchoOverTCP(t *testing.T)    { testEcho(t, TCPNetwork{}, "127.0.0.1:0") }

func testEcho(t *testing.T, network Network, name string) {
	_, cli := startPair(t, network, name)
	resp, status, err := cli.Call(context.Background(), opEcho, []byte("hello"))
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if status != StatusOK {
		t.Errorf("status = %d", status)
	}
	if string(resp) != "echo:hello" {
		t.Errorf("resp = %q", resp)
	}
}

func TestApplicationStatusPassthrough(t *testing.T) {
	_, cli := startPair(t, NewInprocNetwork(), "s")
	resp, status, err := cli.Call(context.Background(), opFail, nil)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if status != 7 || string(resp) != "application error" {
		t.Errorf("got status=%d resp=%q", status, resp)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	_, cli := startPair(t, NewInprocNetwork(), "s")
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%03d", i))
			resp, status, err := cli.Call(context.Background(), opEcho, msg)
			if err != nil || status != StatusOK {
				errs <- fmt.Errorf("call %d: status=%d err=%v", i, status, err)
				return
			}
			if !bytes.Equal(resp, append([]byte("echo:"), msg...)) {
				errs <- fmt.Errorf("call %d: cross-wired response %q", i, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTimeoutAgainstUnresponsiveServer(t *testing.T) {
	srv, cli := startPair(t, NewInprocNetwork(), "s")
	srv.SetUnresponsive(true)
	if !srv.Unresponsive() {
		t.Fatal("flag not set")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := cli.Call(ctx, opEcho, []byte("x"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > time.Second {
		t.Error("timeout took far too long")
	}

	// Recovery: once responsive again, the same client works.
	srv.SetUnresponsive(false)
	resp, status, err := cli.Call(context.Background(), opEcho, []byte("back"))
	if err != nil || status != StatusOK || string(resp) != "echo:back" {
		t.Fatalf("post-recovery call failed: resp=%q status=%d err=%v", resp, status, err)
	}
}

func TestLateResponseDiscarded(t *testing.T) {
	_, cli := startPair(t, NewInprocNetwork(), "s")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, _, err := cli.Call(ctx, opSlow, []byte("slow")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The late opSlow response must not be delivered to this new call.
	resp, status, err := cli.Call(context.Background(), opEcho, []byte("fresh"))
	if err != nil || status != StatusOK || string(resp) != "echo:fresh" {
		t.Fatalf("follow-up call got resp=%q status=%d err=%v", resp, status, err)
	}
}

func TestServerCloseFailsInflightCalls(t *testing.T) {
	srv, cli := startPair(t, NewInprocNetwork(), "s")
	done := make(chan error, 1)
	go func() {
		_, _, err := cli.Call(context.Background(), opSlow, []byte("x"))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the call get in flight
	srv.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrClosed-ish", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call did not fail after server close")
	}
}

func TestCallAfterClientClose(t *testing.T) {
	_, cli := startPair(t, NewInprocNetwork(), "s")
	cli.Close()
	if _, _, err := cli.Call(context.Background(), opEcho, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if cli.Err() == nil {
		t.Error("Err() should be terminal after close")
	}
}

func TestDialUnknownEndpoint(t *testing.T) {
	n := NewInprocNetwork()
	if _, err := n.Dial("nobody"); !errors.Is(err, ErrNoEndpoint) {
		t.Errorf("err = %v, want ErrNoEndpoint", err)
	}
}

func TestInprocDuplicateListen(t *testing.T) {
	n := NewInprocNetwork()
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Error("duplicate listen should fail")
	}
	l.Close()
	if _, err := n.Listen("a"); err != nil {
		t.Errorf("re-listen after close failed: %v", err)
	}
}

func TestInprocDialAfterListenerClose(t *testing.T) {
	n := NewInprocNetwork()
	l, _ := n.Listen("a")
	l.Close()
	if _, err := n.Dial("a"); !errors.Is(err, ErrNoEndpoint) {
		t.Errorf("err = %v, want ErrNoEndpoint", err)
	}
	if l.Addr().Network() != "inproc" || l.Addr().String() != "a" {
		t.Error("listener address accessors")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startPair(t, NewInprocNetwork(), "s")
	srv.Close()
	srv.Close() // must not panic or deadlock
}

func TestCancelledContext(t *testing.T) {
	srv, cli := startPair(t, NewInprocNetwork(), "s")
	srv.SetUnresponsive(true)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, _, err := cli.Call(ctx, opEcho, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func BenchmarkCallInproc(b *testing.B)  { benchCall(b, NewInprocNetwork(), "bench") }
func BenchmarkCallTCPLoop(b *testing.B) { benchCall(b, TCPNetwork{}, "127.0.0.1:0") }

func benchCall(b *testing.B, network Network, name string) {
	srv := NewServer(echoHandler())
	lis, err := network.Listen(name)
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	addr := name
	if _, ok := network.(TCPNetwork); ok {
		addr = lis.Addr().String()
	}
	conn, err := network.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()
	payload := make([]byte, 1024)
	ctx := context.Background()
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cli.Call(ctx, opEcho, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHandlerPanicIsolated(t *testing.T) {
	srv := NewServer(HandlerFunc(func(op uint16, payload []byte) (uint16, []byte) {
		if op == 66 {
			panic("handler bug")
		}
		return StatusOK, []byte("fine")
	}))
	network := NewInprocNetwork()
	lis, _ := network.Listen("p")
	go srv.Serve(lis)
	defer srv.Close()
	conn, _ := network.Dial("p")
	cli := NewClient(conn)
	defer cli.Close()
	ctx := context.Background()

	resp, status, err := cli.Call(ctx, 66, nil)
	if err != nil {
		t.Fatalf("panic should surface as status, not transport error: %v", err)
	}
	if status != StatusPanic || !bytes.Contains(resp, []byte("handler bug")) {
		t.Errorf("status=%d resp=%q", status, resp)
	}
	// The server must still be alive for other requests.
	resp, status, err = cli.Call(ctx, 1, nil)
	if err != nil || status != StatusOK || string(resp) != "fine" {
		t.Errorf("post-panic call: %q %d %v", resp, status, err)
	}
}
