package rpc

import (
	"sync"

	"repro/internal/telemetry"
)

// rpcMetrics are the transport-level series, shared by every Client in
// the process (a training rank opens one connection per server; the
// aggregate is the interesting signal). Handles are resolved once and
// cached — Call never touches the registry.
type rpcMetrics struct {
	roundtrip *telemetry.Histogram // successful call latency
	inflight  *telemetry.Gauge     // calls issued and not yet resolved
	calls     *telemetry.Counter   // every Call, any outcome
	timeouts  *telemetry.Counter   // ErrTimeout outcomes
	failures  *telemetry.Counter   // ErrClosed / write / context failures
}

var (
	metricsOnce sync.Once
	metricsInst *rpcMetrics
)

func metrics() *rpcMetrics {
	metricsOnce.Do(func() {
		reg := telemetry.Default()
		metricsInst = &rpcMetrics{
			roundtrip: reg.Histogram("ftc_rpc_roundtrip_seconds"),
			inflight:  reg.Gauge("ftc_rpc_inflight"),
			calls:     reg.Counter("ftc_rpc_calls_total"),
			timeouts:  reg.Counter("ftc_rpc_timeouts_total"),
			failures:  reg.Counter("ftc_rpc_failures_total"),
		}
	})
	return metricsInst
}
