package rpc

import (
	"sync"

	"repro/internal/telemetry"
)

// rpcMetrics are the transport-level series, shared by every Client in
// the process (a training rank opens one connection per server; the
// aggregate is the interesting signal). Handles are resolved once and
// cached — Call never touches the registry.
type rpcMetrics struct {
	roundtrip *telemetry.Histogram // successful call latency
	inflight  *telemetry.Gauge     // calls issued and not yet resolved
	calls     *telemetry.Counter   // every Call, any outcome
	timeouts  *telemetry.Counter   // ErrTimeout outcomes
	failures  *telemetry.Counter   // ErrClosed / write / context failures

	// Coalesced-write series (the pipelined wire protocol): one flush is
	// one Write syscall; frames/flush > 1 is the amortization win.
	clientFlushes   *telemetry.Counter // client-side flushes (writes issued)
	clientFrames    *telemetry.Counter // client-side frames written
	clientCoalesced *telemetry.Counter // frames that shared a flush with another
	serverFlushes   *telemetry.Counter // server-side response flushes
	serverFrames    *telemetry.Counter // server-side response frames
	serverCoalesced *telemetry.Counter // response frames that shared a flush
	respDropped     *telemetry.Counter // computed responses lost to a write error
}

var (
	metricsOnce sync.Once
	metricsInst *rpcMetrics
)

func metrics() *rpcMetrics {
	metricsOnce.Do(func() {
		reg := telemetry.Default()
		metricsInst = &rpcMetrics{
			roundtrip: reg.Histogram("ftc_rpc_roundtrip_seconds"),
			inflight:  reg.Gauge("ftc_rpc_inflight"),
			calls:     reg.Counter("ftc_rpc_calls_total"),
			timeouts:  reg.Counter("ftc_rpc_timeouts_total"),
			failures:  reg.Counter("ftc_rpc_failures_total"),

			clientFlushes:   reg.Counter("ftc_rpc_client_flushes_total"),
			clientFrames:    reg.Counter("ftc_rpc_client_frames_total"),
			clientCoalesced: reg.Counter("ftc_rpc_client_coalesced_frames_total"),
			serverFlushes:   reg.Counter("ftc_rpc_server_flushes_total"),
			serverFrames:    reg.Counter("ftc_rpc_server_frames_total"),
			serverCoalesced: reg.Counter("ftc_rpc_server_coalesced_frames_total"),
			respDropped:     reg.Counter("ftc_rpc_resp_write_errors_total"),
		}
		m := metricsInst
		reg.RegisterDebug("rpc", func() any {
			return map[string]any{
				"calls":                   m.calls.Load(),
				"timeouts":                m.timeouts.Load(),
				"failures":                m.failures.Load(),
				"responses_dropped":       m.respDropped.Load(),
				"client_flushes":          m.clientFlushes.Load(),
				"client_frames":           m.clientFrames.Load(),
				"client_coalesced_frames": m.clientCoalesced.Load(),
				"server_flushes":          m.serverFlushes.Load(),
				"server_frames":           m.serverFrames.Load(),
				"server_coalesced_frames": m.serverCoalesced.Load(),
			}
		})
	})
	return metricsInst
}

// clientFlushObserver adapts the request-path flush stats onto the
// shared counters (one callback per Write the coalescing writer issues).
func clientFlushObserver(m *rpcMetrics) func(frames, bytes int) {
	return func(frames, bytes int) {
		m.clientFlushes.Inc()
		m.clientFrames.Add(int64(frames))
		if frames > 1 {
			m.clientCoalesced.Add(int64(frames))
		}
	}
}

// serverFlushObserver is clientFlushObserver for the response path.
func serverFlushObserver(m *rpcMetrics) func(frames, bytes int) {
	return func(frames, bytes int) {
		m.serverFlushes.Inc()
		m.serverFrames.Add(int64(frames))
		if frames > 1 {
			m.serverCoalesced.Add(int64(frames))
		}
	}
}
