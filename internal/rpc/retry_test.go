package rpc

import (
	"context"
	"testing"
	"time"
)

func TestRetryPolicyDefaults(t *testing.T) {
	var p RetryPolicy
	if got := p.Retries(); got != 2 {
		t.Errorf("zero-value Retries() = %d, want 2", got)
	}
	if p := (RetryPolicy{MaxRetries: 7}); p.Retries() != 7 {
		t.Errorf("Retries() = %d, want 7", p.Retries())
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 2 * time.Millisecond, MaxDelay: 16 * time.Millisecond, Jitter: -1}
	want := []time.Duration{
		2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
		16 * time.Millisecond, 16 * time.Millisecond, // capped
	}
	for attempt, w := range want {
		if got := p.Backoff(attempt); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", attempt, got, w)
		}
	}
	// Deep attempts must not shift-overflow into negatives.
	if got := p.Backoff(200); got != 16*time.Millisecond {
		t.Errorf("Backoff(200) = %v, want cap", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Jitter: 0.5}
	lo, hi := 5*time.Millisecond, 15*time.Millisecond
	seen := make(map[time.Duration]bool)
	for i := 0; i < 128; i++ {
		d := p.Backoff(0)
		if d < lo || d > hi {
			t.Fatalf("jittered backoff %v outside [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Error("128 jittered backoffs were all identical")
	}
}

func TestRetrySleepHonorsContext(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Hour, MaxDelay: time.Hour, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not return after cancel")
	}
}

func TestRetrySleepCompletes(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Jitter: -1}
	if err := p.Sleep(context.Background(), 0); err != nil {
		t.Errorf("Sleep = %v", err)
	}
}

func TestTCPDialTimeoutBounded(t *testing.T) {
	// 192.0.2.0/24 (TEST-NET-1) is reserved and unroutable: the SYN is
	// silently dropped, exactly the black-hole the timeout must bound.
	n := TCPNetwork{DialTimeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := n.Dial("192.0.2.1:9")
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("unroutable address unexpectedly connected (unusual network namespace)")
	}
	if elapsed > 5*time.Second {
		t.Errorf("black-holed dial took %v — timeout not applied", elapsed)
	}
}

func TestTCPDialTimeoutDefault(t *testing.T) {
	if (TCPNetwork{}).DialTimeout != 0 {
		t.Skip("zero value changed")
	}
	// The zero-value network must still apply DefaultDialTimeout rather
	// than the kernel's multi-minute connect timeout. We only verify the
	// constant is sane here; the behavioral bound is covered above.
	if DefaultDialTimeout <= 0 || DefaultDialTimeout > 5*time.Second {
		t.Errorf("DefaultDialTimeout = %v, want a small positive bound", DefaultDialTimeout)
	}
}
