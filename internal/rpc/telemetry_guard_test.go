//go:build benchguard

package rpc

import (
	"testing"
)

// TestTelemetryOverheadGuard fails when enabling telemetry costs more
// than the budget on the parallel RPC roundtrip — the hottest
// instrumented path in the system. The issue budget is 5%; the guard
// threshold is looser because single-shot in-process benchmark runs on
// shared CI machines jitter far more than that, and the guard's job is
// to catch an accidental lock or allocation on the hot path (an
// order-of-magnitude regression), not to benchstat a 3% drift.
//
// Gated behind the benchguard tag so ordinary `go test ./...` stays
// fast and deterministic:
//
//	go test -tags benchguard -run TestTelemetryOverheadGuard ./internal/rpc/
func TestTelemetryOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard skipped in -short mode")
	}
	// Interleave A/B/A/B and keep the best of each: minimums are far more
	// robust to scheduler noise than means on a shared runner.
	best := func(enabled bool) float64 {
		min := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) { benchRoundtripTelemetry(b, enabled) })
			ns := float64(r.NsPerOp())
			if min == 0 || ns < min {
				min = ns
			}
		}
		return min
	}
	on := best(true)
	off := best(false)
	overhead := (on - off) / off
	t.Logf("roundtrip: telemetry on %.0f ns/op, off %.0f ns/op, overhead %+.1f%%", on, off, 100*overhead)
	if overhead > 0.30 {
		t.Errorf("telemetry overhead %.1f%% exceeds 30%% guard threshold (budget is 5%% under benchstat conditions)", 100*overhead)
	}
}
