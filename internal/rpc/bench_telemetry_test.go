package rpc

import (
	"context"
	"testing"

	"repro/internal/telemetry"
)

// benchRoundtripTelemetry is BenchmarkRPCRoundtrip with the telemetry
// gate in a chosen position, so the on/off delta — the cost of the
// histogram observes and trace gating added to Call — is one benchstat
// comparison:
//
//	go test ./internal/rpc -bench 'RPCRoundtripTelemetry' -count 10
func benchRoundtripTelemetry(b *testing.B, enabled bool) {
	prev := telemetry.Enabled()
	telemetry.SetEnabled(enabled)
	defer telemetry.SetEnabled(prev)

	payload := make([]byte, 4096)
	net := NewInprocNetwork()
	lis, err := net.Listen("bench-tel")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(HandlerFunc(func(op uint16, req []byte) (uint16, []byte) {
		return StatusOK, payload
	}))
	go srv.Serve(lis)
	defer srv.Close()

	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("bench-tel")
		if err != nil {
			b.Error(err)
			return
		}
		cli := NewClient(conn)
		defer cli.Close()
		ctx := context.Background()
		req := []byte("cosmoUniverse/train/univ_000042.tfrecord")
		for pb.Next() {
			if _, _, err := cli.Call(ctx, 1, req); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkRPCRoundtripTelemetryOn(b *testing.B)  { benchRoundtripTelemetry(b, true) }
func BenchmarkRPCRoundtripTelemetryOff(b *testing.B) { benchRoundtripTelemetry(b, false) }
