package rpc

import (
	"context"
	"math/rand"
	"time"
)

// RetryPolicy is a bounded exponential-backoff-with-jitter schedule for
// absorbing transient transport faults (a connection reset mid-stream,
// a listener briefly gone during a restart) without surfacing them to
// higher layers as failure evidence.
//
// The interaction rule with the timeout-based failure detector (paper
// §IV-A) is deliberate and asymmetric:
//
//   - Timeout-class failures are NEVER retried in place: the request
//     already consumed a full TTL, and the detector exists precisely to
//     count those. Retrying them would both double the latency cost and
//     starve the detector of its evidence.
//   - Connection-class failures (reset, refused) ARE retried here with
//     backoff: they are cheap to observe (fail fast, no TTL consumed),
//     commonly transient (a flapping link, a restarting daemon), and a
//     healthy node must not accrue detector evidence because one TCP
//     connection died.
//
// The jittered delays also decorrelate clients retrying after a mass
// event, the same storm-avoidance argument as heartbeat jitter.
type RetryPolicy struct {
	// MaxRetries is the number of additional attempts after the first
	// failure; <= 0 selects 2.
	MaxRetries int
	// BaseDelay is the first backoff step; <= 0 selects 2ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; <= 0 selects 100ms. Keep
	// MaxRetries × MaxDelay below the detector's suspect budget so an
	// exhausted retry loop still surfaces evidence promptly.
	MaxDelay time.Duration
	// Jitter is the uniformly random fraction of each delay added or
	// removed, in [0, 1]; 0 selects 0.5 (negative disables jitter).
	Jitter float64
}

// DefaultRetryPolicy is the client default when retries are enabled.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 2, BaseDelay: 2 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: 0.5}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxRetries <= 0 {
		p.MaxRetries = d.MaxRetries
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Jitter == 0 {
		p.Jitter = d.Jitter
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Retries returns the effective retry budget.
func (p RetryPolicy) Retries() int { return p.withDefaults().MaxRetries }

// Backoff returns the jittered delay before retry attempt (0-based: the
// delay between the first failure and the first retry is Backoff(0)).
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	d := p.BaseDelay << uint(attempt)
	if d <= 0 || d > p.MaxDelay { // <= 0 catches shift overflow
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		f := 1 + p.Jitter*(2*rand.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Sleep blocks for Backoff(attempt) or until ctx is done, returning
// ctx.Err() in the latter case.
func (p RetryPolicy) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.Backoff(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
