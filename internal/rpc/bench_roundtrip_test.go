package rpc

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/wire"
)

// BenchmarkRPCRoundtrip measures steady-state request/response throughput
// the way the HVAC data path uses the transport: many client goroutines,
// each with its own connection to one server, issuing 4 KiB reads. Run
// with -cpu 8 to see core scaling.
func BenchmarkRPCRoundtrip(b *testing.B) {
	payload := make([]byte, 4096)
	net := NewInprocNetwork()
	lis, err := net.Listen("bench-rt")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(HandlerFunc(func(op uint16, req []byte) (uint16, []byte) {
		return StatusOK, payload
	}))
	go srv.Serve(lis)
	defer srv.Close()

	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("bench-rt")
		if err != nil {
			b.Error(err)
			return
		}
		cli := NewClient(conn)
		defer cli.Close()
		ctx := context.Background()
		req := []byte("cosmoUniverse/train/univ_000042.tfrecord")
		for pb.Next() {
			if _, _, err := cli.Call(ctx, 1, req); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkRPCFramePath isolates the wire-level cost of one roundtrip —
// encode request, server-side decode, encode response, client-side
// decode — without the transport, so allocs/op shows exactly what the
// framing layer charges per steady-state RPC.
func BenchmarkRPCFramePath(b *testing.B) {
	reqPayload := []byte("cosmoUniverse/train/univ_000042.tfrecord")
	respPayload := make([]byte, 4096)
	var buf bytes.Buffer
	buf.Grow(8192)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		req := wire.Frame{Type: wire.TypeRequest, ID: uint64(i), Op: 1, Payload: reqPayload}
		if err := wire.WriteFrame(&buf, &req); err != nil {
			b.Fatal(err)
		}
		// Server side: pooled receive, response may alias the request.
		got, lease, err := wire.ReadFramePooled(&buf, 0)
		if err != nil {
			b.Fatal(err)
		}
		resp := wire.Frame{Type: wire.TypeResponse, ID: got.ID, Op: got.Op, Payload: respPayload}
		buf.Reset()
		if err := wire.WriteFrame(&buf, &resp); err != nil {
			b.Fatal(err)
		}
		lease.Release()
		// Client side: the application owns the response payload, so this
		// side's read allocates exactly once (the payload itself).
		if _, err := wire.ReadFrame(&buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}
