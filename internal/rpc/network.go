package rpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Network abstracts how cluster endpoints listen and dial so the same
// HVAC client/server code runs over real TCP (cmd/ftcserver) or fully
// in-process (tests, examples, single-binary experiments).
type Network interface {
	// Listen creates a listener for the named endpoint. For TCP the name
	// is a host:port address; for the in-process network it is any
	// unique string (conventionally the node ID).
	Listen(name string) (net.Listener, error)
	// Dial connects to the named endpoint.
	Dial(name string) (net.Conn, error)
}

// DefaultDialTimeout bounds TCP connection establishment. It must stay
// below the failure detector's suspect budget (RPCTimeout × limit) so a
// black-holed endpoint — a host whose switch silently drops SYNs —
// surfaces as ordinary, bounded timeout evidence instead of hanging the
// dialing client for the kernel's multi-minute connect timeout.
const DefaultDialTimeout = 1 * time.Second

// TCPNetwork is the Network over real TCP sockets.
type TCPNetwork struct {
	// DialTimeout bounds Dial; <= 0 selects DefaultDialTimeout.
	DialTimeout time.Duration
}

// Listen implements Network.
func (TCPNetwork) Listen(name string) (net.Listener, error) {
	return net.Listen("tcp", name)
}

// Dial implements Network.
func (n TCPNetwork) Dial(name string) (net.Conn, error) {
	d := n.DialTimeout
	if d <= 0 {
		d = DefaultDialTimeout
	}
	return net.DialTimeout("tcp", name, d)
}

// ErrNoEndpoint reports a dial to a name nobody is listening on.
var ErrNoEndpoint = errors.New("rpc: no such endpoint")

// InprocNetwork connects clients and servers through buffered in-process
// pipes. Every Listen registers a name; Dial hands the listener one end
// of a bufferedPipe pair. Unlike net.Pipe — whose unbuffered rendezvous
// forces a writer/reader goroutine handoff per Write and serializes the
// framed RPC hot path — writes complete immediately into a growable
// buffer, so a request/response roundtrip costs two wakeups instead of
// four scheduler rendezvous.
type InprocNetwork struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// NewInprocNetwork creates an empty in-process network.
func NewInprocNetwork() *InprocNetwork {
	return &InprocNetwork{listeners: make(map[string]*inprocListener)}
}

// Listen implements Network.
func (n *InprocNetwork) Listen(name string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[name]; exists {
		return nil, fmt.Errorf("rpc: endpoint %q already listening", name)
	}
	l := &inprocListener{
		name:    name,
		network: n,
		accept:  make(chan net.Conn),
		closed:  make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

// Dial implements Network.
func (n *InprocNetwork) Dial(name string) (net.Conn, error) {
	n.mu.Lock()
	l := n.listeners[name]
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoEndpoint, name)
	}
	client, server := newBufferedPipe(name)
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("%w: %q (closed)", ErrNoEndpoint, name)
	}
}

func (n *InprocNetwork) remove(name string) {
	n.mu.Lock()
	delete(n.listeners, name)
	n.mu.Unlock()
}

type inprocListener struct {
	name    string
	network *InprocNetwork
	accept  chan net.Conn
	once    sync.Once
	closed  chan struct{}
}

// Accept implements net.Listener.
func (l *inprocListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.network.remove(l.name)
	})
	return nil
}

// Addr implements net.Listener.
func (l *inprocListener) Addr() net.Addr { return inprocAddr(l.name) }

type inprocAddr string

func (a inprocAddr) Network() string { return "inproc" }
func (a inprocAddr) String() string  { return string(a) }

// pipeHalf is one direction of a buffered in-process pipe: a growable
// byte queue with exactly one writer conn and one reader conn. Reads
// block on an empty queue; writes never block (the queue is unbounded —
// the framed RPC protocol is request/response, so the amount in flight
// is naturally bounded by outstanding calls).
type pipeHalf struct {
	mu   sync.Mutex
	cond sync.Cond
	data []byte
	off  int // read offset into data

	wclosed bool // writer side closed: reads drain then io.EOF
	rclosed bool // reader side closed: writes fail immediately

	rexpired, wexpired bool // deadline state, one flag per conn using this half
	rtimer, wtimer     *time.Timer
}

func newPipeHalf() *pipeHalf {
	h := &pipeHalf{}
	h.cond.L = &h.mu
	return h
}

func (h *pipeHalf) read(b []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if h.rclosed {
			return 0, io.ErrClosedPipe
		}
		if h.off < len(h.data) {
			n := copy(b, h.data[h.off:])
			h.off += n
			if h.off == len(h.data) {
				// Fully drained: reset so the backing array is reused
				// instead of growing without bound.
				h.data = h.data[:0]
				h.off = 0
			}
			return n, nil
		}
		if h.wclosed {
			return 0, io.EOF
		}
		if h.rexpired {
			return 0, os.ErrDeadlineExceeded
		}
		h.cond.Wait()
	}
}

func (h *pipeHalf) write(b []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.wexpired {
		return 0, os.ErrDeadlineExceeded
	}
	if h.wclosed || h.rclosed {
		return 0, io.ErrClosedPipe
	}
	h.data = append(h.data, b...)
	h.cond.Broadcast()
	return len(b), nil
}

func (h *pipeHalf) closeWrite() {
	h.mu.Lock()
	h.wclosed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *pipeHalf) closeRead() {
	h.mu.Lock()
	h.rclosed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// setDeadline arms one of the half's deadline flags. expired and timer
// select the reader's or writer's pair; t.IsZero clears the deadline.
func (h *pipeHalf) setDeadline(t time.Time, expired *bool, timer **time.Timer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if *timer != nil {
		(*timer).Stop()
		*timer = nil
	}
	*expired = false
	if t.IsZero() {
		return
	}
	d := time.Until(t)
	if d <= 0 {
		*expired = true
		h.cond.Broadcast()
		return
	}
	*timer = time.AfterFunc(d, func() {
		h.mu.Lock()
		*expired = true
		h.cond.Broadcast()
		h.mu.Unlock()
	})
}

// bufferedPipe is one endpoint of an in-process duplex connection.
type bufferedPipe struct {
	rb, wb *pipeHalf // rb: peer→us, wb: us→peer
	addr   inprocAddr
}

// NewBufferedPipe returns the two connected endpoints of a fresh duplex
// in-process connection, named for Addr purposes. Exported for network
// middleware (package chaos interposes a frame relay between the two).
func NewBufferedPipe(name string) (client, server net.Conn) {
	return newBufferedPipe(name)
}

// newBufferedPipe returns the two connected endpoints of a fresh duplex
// in-process connection.
func newBufferedPipe(name string) (client, server net.Conn) {
	c2s, s2c := newPipeHalf(), newPipeHalf()
	a := inprocAddr(name)
	return &bufferedPipe{rb: s2c, wb: c2s, addr: a},
		&bufferedPipe{rb: c2s, wb: s2c, addr: a}
}

// Read implements net.Conn.
func (p *bufferedPipe) Read(b []byte) (int, error) { return p.rb.read(b) }

// Write implements net.Conn.
func (p *bufferedPipe) Write(b []byte) (int, error) { return p.wb.write(b) }

// Close implements net.Conn: our outbound half delivers EOF to the peer
// once drained; our inbound half fails the peer's writes and wakes any of
// our own blocked reads.
func (p *bufferedPipe) Close() error {
	p.wb.closeWrite()
	p.rb.closeRead()
	return nil
}

// LocalAddr implements net.Conn.
func (p *bufferedPipe) LocalAddr() net.Addr { return p.addr }

// RemoteAddr implements net.Conn.
func (p *bufferedPipe) RemoteAddr() net.Addr { return p.addr }

// SetDeadline implements net.Conn.
func (p *bufferedPipe) SetDeadline(t time.Time) error {
	p.SetReadDeadline(t)
	p.SetWriteDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (p *bufferedPipe) SetReadDeadline(t time.Time) error {
	p.rb.setDeadline(t, &p.rb.rexpired, &p.rb.rtimer)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (p *bufferedPipe) SetWriteDeadline(t time.Time) error {
	p.wb.setDeadline(t, &p.wb.wexpired, &p.wb.wtimer)
	return nil
}
