package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Network abstracts how cluster endpoints listen and dial so the same
// HVAC client/server code runs over real TCP (cmd/ftcserver) or fully
// in-process (tests, examples, single-binary experiments).
type Network interface {
	// Listen creates a listener for the named endpoint. For TCP the name
	// is a host:port address; for the in-process network it is any
	// unique string (conventionally the node ID).
	Listen(name string) (net.Listener, error)
	// Dial connects to the named endpoint.
	Dial(name string) (net.Conn, error)
}

// TCPNetwork is the Network over real TCP sockets.
type TCPNetwork struct{}

// Listen implements Network.
func (TCPNetwork) Listen(name string) (net.Listener, error) {
	return net.Listen("tcp", name)
}

// Dial implements Network.
func (TCPNetwork) Dial(name string) (net.Conn, error) {
	return net.Dial("tcp", name)
}

// ErrNoEndpoint reports a dial to a name nobody is listening on.
var ErrNoEndpoint = errors.New("rpc: no such endpoint")

// InprocNetwork connects clients and servers through synchronous pipes
// inside one process. Every Listen registers a name; Dial hands the
// listener one end of a net.Pipe.
type InprocNetwork struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// NewInprocNetwork creates an empty in-process network.
func NewInprocNetwork() *InprocNetwork {
	return &InprocNetwork{listeners: make(map[string]*inprocListener)}
}

// Listen implements Network.
func (n *InprocNetwork) Listen(name string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[name]; exists {
		return nil, fmt.Errorf("rpc: endpoint %q already listening", name)
	}
	l := &inprocListener{
		name:    name,
		network: n,
		accept:  make(chan net.Conn),
		closed:  make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

// Dial implements Network.
func (n *InprocNetwork) Dial(name string) (net.Conn, error) {
	n.mu.Lock()
	l := n.listeners[name]
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoEndpoint, name)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("%w: %q (closed)", ErrNoEndpoint, name)
	}
}

func (n *InprocNetwork) remove(name string) {
	n.mu.Lock()
	delete(n.listeners, name)
	n.mu.Unlock()
}

type inprocListener struct {
	name    string
	network *InprocNetwork
	accept  chan net.Conn
	once    sync.Once
	closed  chan struct{}
}

// Accept implements net.Listener.
func (l *inprocListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.network.remove(l.name)
	})
	return nil
}

// Addr implements net.Listener.
func (l *inprocListener) Addr() net.Addr { return inprocAddr(l.name) }

type inprocAddr string

func (a inprocAddr) Network() string { return "inproc" }
func (a inprocAddr) String() string  { return string(a) }
