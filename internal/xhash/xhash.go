// Package xhash provides the non-cryptographic hash functions used across
// the FT-Cache reproduction: xxHash64 (the default key hash for the
// consistent-hash ring), FNV-1a (the hash HVAC's original static
// partitioner used for path→node mapping), and splitmix64 (used to derive
// well-distributed virtual-node points and seeded RNG streams).
//
// All implementations are self-contained and allocation-free so they can
// sit on the hot path of every cache lookup.
package xhash

const (
	prime64_1 = 11400714785074694791
	prime64_2 = 14029467366897019727
	prime64_3 = 1609587929392839161
	prime64_4 = 9650029242287828579
	prime64_5 = 2870177450012600261
)

func rotl64(x uint64, r uint) uint64 { return (x << r) | (x >> (64 - r)) }

func round64(acc, input uint64) uint64 {
	acc += input * prime64_2
	acc = rotl64(acc, 31)
	acc *= prime64_1
	return acc
}

func mergeRound64(acc, val uint64) uint64 {
	val = round64(0, val)
	acc ^= val
	acc = acc*prime64_1 + prime64_4
	return acc
}

func u64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func u32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// XXH64 computes the 64-bit xxHash of b with the given seed.
func XXH64(b []byte, seed uint64) uint64 {
	n := len(b)
	var h64 uint64

	if n >= 32 {
		v1 := seed + prime64_1 + prime64_2
		v2 := seed + prime64_2
		v3 := seed
		v4 := seed - prime64_1
		for len(b) >= 32 {
			v1 = round64(v1, u64(b[0:8]))
			v2 = round64(v2, u64(b[8:16]))
			v3 = round64(v3, u64(b[16:24]))
			v4 = round64(v4, u64(b[24:32]))
			b = b[32:]
		}
		h64 = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18)
		h64 = mergeRound64(h64, v1)
		h64 = mergeRound64(h64, v2)
		h64 = mergeRound64(h64, v3)
		h64 = mergeRound64(h64, v4)
	} else {
		h64 = seed + prime64_5
	}

	h64 += uint64(n)

	for len(b) >= 8 {
		h64 ^= round64(0, u64(b[:8]))
		h64 = rotl64(h64, 27)*prime64_1 + prime64_4
		b = b[8:]
	}
	if len(b) >= 4 {
		h64 ^= uint64(u32(b[:4])) * prime64_1
		h64 = rotl64(h64, 23)*prime64_2 + prime64_3
		b = b[4:]
	}
	for _, c := range b {
		h64 ^= uint64(c) * prime64_5
		h64 = rotl64(h64, 11) * prime64_1
	}

	h64 ^= h64 >> 33
	h64 *= prime64_2
	h64 ^= h64 >> 29
	h64 *= prime64_3
	h64 ^= h64 >> 32
	return h64
}

// XXH64String is XXH64 over the bytes of s without allocating.
func XXH64String(s string, seed uint64) uint64 {
	// The compiler recognises the []byte(s) conversion passed directly to a
	// non-escaping function and avoids the copy in most cases; measured via
	// BenchmarkXXH64String this does not allocate.
	return XXH64([]byte(s), seed)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// FNV1a computes the 64-bit FNV-1a hash of b. This mirrors the hash the
// original HVAC static partitioner applied to file paths before the
// modulo-N node selection.
func FNV1a(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// FNV1aString is FNV1a over the bytes of s.
func FNV1aString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// SplitMix64 advances the splitmix64 generator state and returns the next
// output. It is the recommended way to expand one 64-bit seed into a
// sequence of well-distributed values (e.g. virtual-node point seeds).
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x, producing an avalanched
// value. Useful to decorrelate sequential integers.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
