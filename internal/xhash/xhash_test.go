package xhash

import (
	"hash/fnv"
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference vectors for XXH64 with seed 0 (from the canonical xxHash
// test suite).
var xxh64Vectors = []struct {
	in   string
	want uint64
}{
	{"", 0xef46db3751d8e999},
	{"a", 0xd24ec4f1a98c6e5b},
	{"as", 0x1c330fb2d66be179},
	{"asd", 0x631c37ce72a97393},
	{"asdf", 0x415872f599cea71e},
	// Exactly 64 bytes — exercises the 32-byte lane loop twice.
	{"Call me Ishmael. Some years ago--never mind how long precisely-",
		0x02a2e85470d6fd96},
}

func TestXXH64Vectors(t *testing.T) {
	for _, v := range xxh64Vectors {
		if got := XXH64([]byte(v.in), 0); got != v.want {
			t.Errorf("XXH64(%q) = %#x, want %#x", v.in, got, v.want)
		}
		if got := XXH64String(v.in, 0); got != v.want {
			t.Errorf("XXH64String(%q) = %#x, want %#x", v.in, got, v.want)
		}
	}
}

func TestXXH64LengthBoundaries(t *testing.T) {
	// Every size around the internal block boundaries must be stable and
	// distinct from its neighbours (catches off-by-one in tail handling).
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 70)
	rng.Read(buf)
	seen := make(map[uint64]int)
	for n := 0; n <= 70; n++ {
		h := XXH64(buf[:n], 42)
		if prev, dup := seen[h]; dup {
			t.Fatalf("length %d collides with length %d", n, prev)
		}
		seen[h] = n
		if h2 := XXH64(buf[:n], 42); h2 != h {
			t.Fatalf("length %d: non-deterministic hash", n)
		}
	}
}

func TestXXH64SeedSensitivity(t *testing.T) {
	in := []byte("frontier/cosmoflow/train/file_000123.tfrecord")
	if XXH64(in, 0) == XXH64(in, 1) {
		t.Error("seed 0 and seed 1 should produce different hashes")
	}
}

func TestXXH64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := []byte("abcdefghijklmnopqrstuvwxyz0123456789ABCD")
	h0 := XXH64(base, 0)
	mut := append([]byte(nil), base...)
	mut[7] ^= 1
	h1 := XXH64(mut, 0)
	diff := h0 ^ h1
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 || bits > 48 {
		t.Errorf("poor avalanche: %d differing bits", bits)
	}
}

func TestFNV1aMatchesStdlib(t *testing.T) {
	f := func(b []byte) bool {
		h := fnv.New64a()
		h.Write(b)
		return FNV1a(b) == h.Sum64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFNV1aStringMatchesBytes(t *testing.T) {
	f := func(s string) bool { return FNV1aString(s) == FNV1a([]byte(s)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplitMix64Sequence(t *testing.T) {
	// Known-good values of splitmix64 with seed 1234567 (first 5 outputs).
	state := uint64(1234567)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := SplitMix64(&state)
		if seen[v] {
			t.Fatalf("splitmix64 repeated value at step %d", i)
		}
		seen[v] = true
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := uint64(99), uint64(99)
	for i := 0; i < 100; i++ {
		if SplitMix64(&a) != SplitMix64(&b) {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestMix64Bijectivity(t *testing.T) {
	// Mix64 is a bijection; distinct inputs must map to distinct outputs.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		m := Mix64(i)
		if prev, dup := seen[m]; dup {
			t.Fatalf("Mix64 collision: %d and %d both map to %#x", prev, i, m)
		}
		seen[m] = i
	}
}

func TestMix64Distribution(t *testing.T) {
	// Sequential integers must spread across the upper bits after mixing.
	var hi [16]int
	const n = 16000
	for i := uint64(0); i < n; i++ {
		hi[Mix64(i)>>60]++
	}
	for b, c := range hi {
		if c < n/16/2 || c > n/16*2 {
			t.Errorf("bucket %d has %d values, expected near %d", b, c, n/16)
		}
	}
}

func BenchmarkXXH64_16B(b *testing.B)  { benchXXH64(b, 16) }
func BenchmarkXXH64_256B(b *testing.B) { benchXXH64(b, 256) }
func BenchmarkXXH64_4KB(b *testing.B)  { benchXXH64(b, 4096) }

func benchXXH64(b *testing.B, n int) {
	buf := make([]byte, n)
	rand.New(rand.NewSource(7)).Read(buf)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XXH64(buf, 0)
	}
}

func BenchmarkXXH64String(b *testing.B) {
	s := "frontier/cosmoflow/train/file_000123.tfrecord"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XXH64String(s, 0)
	}
}

func BenchmarkFNV1aString(b *testing.B) {
	s := "frontier/cosmoflow/train/file_000123.tfrecord"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FNV1aString(s)
	}
}
