// Package ftcache implements the three fault-tolerance policies the
// paper evaluates (§IV, §V-A):
//
//   - NoFT — the original HVAC baseline: static modulo placement, no
//     recovery. The first declared node failure aborts the job ("the
//     baseline HVAC lacks fault-tolerant aspects, resulting in immediate
//     job termination upon failure").
//   - PFSRedirect (FT w/ PFS, §IV-A) — placement stays static; once a
//     node is declared failed, every read that hashes to it goes to the
//     PFS directly, for the remainder of the job.
//   - RingRecache (FT w/ NVMe, §IV-B) — placement lives on a consistent-
//     hash ring with virtual nodes; a failure removes the node from the
//     ring, so its files re-map to clockwise successors. The new owner
//     misses once, fetches from PFS, recaches on its NVMe — one extra
//     PFS access per lost file, total.
//
// All three implement hvac.Router and are driven by the client's
// timeout-based failure detector.
package ftcache

import (
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/hashring"
	"repro/internal/hvac"
	"repro/internal/partition"
	"repro/internal/telemetry"
)

// NoFT is the fault-intolerant baseline router.
type NoFT struct {
	part    *partition.Modulo
	aborted atomic.Bool
}

// NewNoFT creates the baseline router over the initial membership.
func NewNoFT(nodes []cluster.NodeID) *NoFT {
	return &NoFT{part: partition.NewModulo(nodes)}
}

// Name implements hvac.Router.
func (n *NoFT) Name() string { return "NoFT" }

// Route implements hvac.Router.
func (n *NoFT) Route(path string) hvac.Decision {
	if n.aborted.Load() {
		return hvac.Decision{Kind: hvac.RouteAbort}
	}
	owner, ok := n.part.Owner(path)
	if !ok {
		return hvac.Decision{Kind: hvac.RouteAbort}
	}
	return hvac.Decision{Kind: hvac.RouteNode, Node: owner}
}

// NodeFailed implements hvac.Router: any failure is fatal.
func (n *NoFT) NodeFailed(cluster.NodeID) { n.aborted.Store(true) }

// Aborted reports whether a failure has terminated the job.
func (n *NoFT) Aborted() bool { return n.aborted.Load() }

// PFSRedirect is the FT w/ PFS router: static placement, failed owners'
// traffic redirected to the PFS for the rest of the job.
type PFSRedirect struct {
	part *partition.Modulo // over the ORIGINAL membership; never shrinks

	mu     sync.RWMutex
	failed map[cluster.NodeID]bool
}

// NewPFSRedirect creates the FT w/ PFS router.
func NewPFSRedirect(nodes []cluster.NodeID) *PFSRedirect {
	return &PFSRedirect{
		part:   partition.NewModulo(nodes),
		failed: make(map[cluster.NodeID]bool),
	}
}

// Name implements hvac.Router.
func (p *PFSRedirect) Name() string { return "FT w/ PFS" }

// Route implements hvac.Router. The hash is computed over the original
// membership — this strategy never re-partitions, which is exactly why
// every post-failure access to a lost file pays the PFS price again.
func (p *PFSRedirect) Route(path string) hvac.Decision {
	owner, ok := p.part.Owner(path)
	if !ok {
		return hvac.Decision{Kind: hvac.RoutePFS}
	}
	p.mu.RLock()
	dead := p.failed[owner]
	p.mu.RUnlock()
	if dead {
		return hvac.Decision{Kind: hvac.RoutePFS}
	}
	return hvac.Decision{Kind: hvac.RouteNode, Node: owner}
}

// NodeFailed implements hvac.Router.
func (p *PFSRedirect) NodeFailed(node cluster.NodeID) {
	p.mu.Lock()
	p.failed[node] = true
	p.mu.Unlock()
}

// NodeRecovered implements hvac.RecoveryAware: stop bypassing the node.
// Its cache may be stale-empty, but the server's miss path repopulates
// it transparently.
func (p *PFSRedirect) NodeRecovered(node cluster.NodeID) {
	p.mu.Lock()
	delete(p.failed, node)
	p.mu.Unlock()
}

// FailedCount returns the number of nodes being redirected around.
func (p *PFSRedirect) FailedCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.failed)
}

// RingRecache is the FT w/ NVMe router: consistent-hash-ring placement
// with elastic recaching on failure.
type RingRecache struct {
	ring *hashring.Ring
}

// NewRingRecache creates the FT w/ NVMe router. virtualNodes <= 0 selects
// the paper's production value of 100 per physical node.
func NewRingRecache(nodes []cluster.NodeID, virtualNodes int) *RingRecache {
	r := &RingRecache{
		ring: hashring.NewWithNodes(hashring.Config{VirtualNodes: virtualNodes}, nodes),
	}
	// Latest-wins: a process normally runs one routing policy, and the
	// debug endpoint wants the live ring.
	telemetry.Default().RegisterDebug("ring", func() any {
		nodes := r.ring.Nodes()
		members := make([]string, len(nodes))
		for i, n := range nodes {
			members[i] = string(n)
		}
		return map[string]any{
			"strategy": r.Name(),
			"members":  members,
			"points":   r.ring.PointCount(),
		}
	})
	return r
}

// Name implements hvac.Router.
func (r *RingRecache) Name() string { return "FT w/ NVMe" }

// Route implements hvac.Router: the current ring owner. Only when every
// server is gone does the client fall back to the PFS.
func (r *RingRecache) Route(path string) hvac.Decision {
	owner, ok := r.ring.Owner(path)
	if !ok {
		return hvac.Decision{Kind: hvac.RoutePFS}
	}
	return hvac.Decision{Kind: hvac.RouteNode, Node: owner}
}

// NodeFailed implements hvac.Router: drop the node from the ring; its
// arcs flow to the clockwise successors. The recache itself is elastic —
// the new owners fill on miss — so the "plan" here is implicit; the
// event marks the moment recaching became the routing policy's answer
// for the lost arcs.
func (r *RingRecache) NodeFailed(node cluster.NodeID) {
	r.ring.Remove(node)
	telemetry.TraceEvent(telemetry.EventRecachePlanned, string(node), "elastic", int64(r.ring.Len()))
}

// NodeRecovered implements hvac.RecoveryAware: re-adding the node
// restores its original virtual points, so it reclaims exactly the arcs
// it owned before failing — by the minimal-movement property only those
// keys move back, and the node re-warms via its server's miss path.
func (r *RingRecache) NodeRecovered(node cluster.NodeID) { r.ring.Add(node) }

// PlanRejoin implements hvac.RejoinPlanner: the keys node will own once
// re-added — the warm set the client fills onto the node's NVMe before
// NodeRecovered commits the ring swap, so a rejoining node starts hot.
func (r *RingRecache) PlanRejoin(node cluster.NodeID, keys []string) []string {
	return r.ring.PlanRejoin(node, keys).Keys
}

// Ring exposes the underlying hash ring for analysis and tests.
func (r *RingRecache) Ring() *hashring.Ring { return r.ring }

// Replicas implements hvac.Replicator: up to n distinct live owners in
// ring order, the first being the primary. This enables the replication
// extension: with the copy already on the clockwise successor, a primary
// failure re-routes to a node that *has the data* — zero PFS reads.
func (r *RingRecache) Replicas(path string, n int) []cluster.NodeID {
	owners, ok := r.ring.Owners(path, n)
	if !ok {
		return nil
	}
	return owners
}

var (
	_ hvac.Router        = (*NoFT)(nil)
	_ hvac.Router        = (*PFSRedirect)(nil)
	_ hvac.Router        = (*RingRecache)(nil)
	_ hvac.Replicator    = (*RingRecache)(nil)
	_ hvac.RecoveryAware = (*RingRecache)(nil)
	_ hvac.RejoinPlanner = (*RingRecache)(nil)
	_ hvac.RecoveryAware = (*PFSRedirect)(nil)
)

// StrategyKind enumerates the three policies for config surfaces.
type StrategyKind string

// The three evaluated strategies.
const (
	KindNoFT StrategyKind = "noft"
	KindPFS  StrategyKind = "ftpfs"
	KindNVMe StrategyKind = "ftnvme"
)

// NewRouter constructs the named strategy. virtualNodes applies to
// KindNVMe and KindAdaptive (the ring-placement strategies).
func NewRouter(kind StrategyKind, nodes []cluster.NodeID, virtualNodes int) hvac.Router {
	switch kind {
	case KindPFS:
		return NewPFSRedirect(nodes)
	case KindNVMe:
		return NewRingRecache(nodes, virtualNodes)
	case KindAdaptive:
		return NewSwitchable(nodes, virtualNodes, KindNVMe)
	default:
		return NewNoFT(nodes)
	}
}
