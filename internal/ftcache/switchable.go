// Switchable routing: the adaptive strategy family.
//
// The three paper strategies differ in two independent axes: *placement*
// (static modulo vs consistent-hash ring) and *failure response* (abort
// vs PFS redirect vs ring recache). Switching between different
// placements at runtime would remap nearly the whole key space — a
// recache storm per switch — so the adaptive family pins placement to
// the consistent-hash ring and varies only the failure response:
//
//   - RingNoFT    — ring owner; any declared failure aborts (escape
//     hatch: see Switchable.Route).
//   - RingPFS     — ring owner computed over the ORIGINAL membership
//     (the ring never shrinks); a failed owner's reads go to the PFS.
//   - RingRecache — the paper's FT w/ NVMe, unchanged: live ring,
//     failures recache onto clockwise successors.
//
// With identical vnode configuration all three agree bit-for-bit on
// healthy-state ownership, so a switch moves zero keys while the fleet
// is healthy and only changes what happens to a failed node's arcs.
//
// Switchable is the atomically-swapped snapshot the ftpolicy controller
// drives: Route is one atomic pointer load plus the active strategy's
// own (lock-free or RLock-cheap) lookup, mirroring the copy-on-write
// ring. Failure/recovery evidence fans out to EVERY member strategy, so
// each one's world view is always current and a switch is a pure
// pointer swap — no rebuild, no torn state, no catch-up phase.
package ftcache

import (
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/hashring"
	"repro/internal/hvac"
	"repro/internal/telemetry"
)

// KindAdaptive selects the Switchable router: the ring-placement
// strategy family under live policy control.
const KindAdaptive StrategyKind = "adaptive"

// RingStatic routes on a consistent-hash ring over the original
// membership — the ring is never modified after construction, so
// placement is static like the paper's modulo strategies but agrees
// with RingRecache's healthy-state ownership. A failed owner's reads
// get the configured fallback decision: RoutePFS gives the adaptive
// ftpfs mode, RouteAbort the adaptive noft mode.
type RingStatic struct {
	ring    *hashring.Ring
	name    string
	onFail  hvac.DecisionKind
	mu      sync.RWMutex
	failed  map[cluster.NodeID]bool
	aborted atomic.Bool // noft mode: any failure is fatal
}

// NewRingPFS creates the adaptive ftpfs mode: static ring placement,
// failed owners redirected to the PFS.
func NewRingPFS(nodes []cluster.NodeID, virtualNodes int) *RingStatic {
	return &RingStatic{
		ring:   hashring.NewWithNodes(hashring.Config{VirtualNodes: virtualNodes}, nodes),
		name:   "FT w/ PFS (ring)",
		onFail: hvac.RoutePFS,
		failed: make(map[cluster.NodeID]bool),
	}
}

// NewRingNoFT creates the adaptive noft mode: static ring placement,
// any declared failure aborts the job (the Switchable escape hatch
// converts the abort into a strategy switch instead).
func NewRingNoFT(nodes []cluster.NodeID, virtualNodes int) *RingStatic {
	return &RingStatic{
		ring:   hashring.NewWithNodes(hashring.Config{VirtualNodes: virtualNodes}, nodes),
		name:   "NoFT (ring)",
		onFail: hvac.RouteAbort,
		failed: make(map[cluster.NodeID]bool),
	}
}

// Name implements hvac.Router.
func (r *RingStatic) Name() string { return r.name }

// Route implements hvac.Router: the static ring owner, or the
// configured fallback when the owner (or, in noft mode, anything) has
// failed.
func (r *RingStatic) Route(path string) hvac.Decision {
	if r.onFail == hvac.RouteAbort && r.aborted.Load() {
		return hvac.Decision{Kind: hvac.RouteAbort}
	}
	owner, ok := r.ring.Owner(path)
	if !ok {
		return hvac.Decision{Kind: hvac.RoutePFS}
	}
	r.mu.RLock()
	dead := r.failed[owner]
	r.mu.RUnlock()
	if dead {
		return hvac.Decision{Kind: r.onFail}
	}
	return hvac.Decision{Kind: hvac.RouteNode, Node: owner}
}

// NodeFailed implements hvac.Router.
func (r *RingStatic) NodeFailed(node cluster.NodeID) {
	r.mu.Lock()
	r.failed[node] = true
	r.mu.Unlock()
	if r.onFail == hvac.RouteAbort {
		r.aborted.Store(true)
	}
}

// NodeRecovered implements hvac.RecoveryAware. Recovery clears the
// noft abort too: under the adaptive controller the job is not dead,
// the strategy just stops being viable until the fleet heals.
func (r *RingStatic) NodeRecovered(node cluster.NodeID) {
	r.mu.Lock()
	delete(r.failed, node)
	healthy := len(r.failed) == 0
	r.mu.Unlock()
	if healthy {
		r.aborted.Store(false)
	}
}

// FailedCount returns the number of members currently marked failed.
func (r *RingStatic) FailedCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.failed)
}

// switchState is the atomically-published active-strategy snapshot.
type switchState struct {
	kind   StrategyKind
	router hvac.Router
}

// Switchable multiplexes the adaptive strategy family behind a single
// hvac.Router whose active member is swapped atomically at runtime.
//
// Invariants:
//   - Route/Replicas/PlanRejoin observe exactly one member's answer per
//     call (one atomic load — never a torn mix of two strategies).
//   - NodeFailed/NodeRecovered fan out to every member, active or not,
//     so switching never has to reconcile missed evidence.
//   - A RouteAbort from the active member (noft mode after a failure)
//     triggers an automatic escape switch and re-route, so adaptive
//     jobs never observe hvac.ErrAborted.
type Switchable struct {
	active   atomic.Pointer[switchState]
	members  map[StrategyKind]hvac.Router
	escape   StrategyKind
	switches atomic.Int64

	// onSwitch, when set, observes every committed switch (including
	// escape switches) — the ftpolicy controller's decision-log hook.
	onSwitch atomic.Pointer[func(from, to StrategyKind, auto bool)]
}

// NewSwitchable builds the adaptive family over the original
// membership. start selects the initially active member (empty =
// KindNVMe); virtualNodes <= 0 selects the paper's 100.
func NewSwitchable(nodes []cluster.NodeID, virtualNodes int, start StrategyKind) *Switchable {
	s := &Switchable{
		members: map[StrategyKind]hvac.Router{
			KindNoFT: NewRingNoFT(nodes, virtualNodes),
			KindPFS:  NewRingPFS(nodes, virtualNodes),
			KindNVMe: NewRingRecache(nodes, virtualNodes),
		},
		escape: KindNVMe,
	}
	if start == "" || s.members[start] == nil {
		start = KindNVMe
	}
	s.active.Store(&switchState{kind: start, router: s.members[start]})
	return s
}

// Name implements hvac.Router: the active member's name, tagged as
// adaptive.
func (s *Switchable) Name() string {
	return "Adaptive [" + s.active.Load().router.Name() + "]"
}

// Kind returns the active strategy.
func (s *Switchable) Kind() StrategyKind { return s.active.Load().kind }

// Switches returns the cumulative number of committed switches.
func (s *Switchable) Switches() int64 { return s.switches.Load() }

// Member exposes a family member (tests and warm planning).
func (s *Switchable) Member(kind StrategyKind) hvac.Router { return s.members[kind] }

// OnSwitch registers the single switch observer (latest wins).
func (s *Switchable) OnSwitch(fn func(from, to StrategyKind, auto bool)) {
	s.onSwitch.Store(&fn)
}

// SwitchTo makes kind the active strategy. Returns the previously
// active kind and whether a swap happened (false when kind is unknown
// or already active). The swap is a single pointer store: requests
// routed before it use the old member, requests after it the new one,
// and both members are evidence-current, so no request observes an
// inconsistent world.
func (s *Switchable) SwitchTo(kind StrategyKind) (StrategyKind, bool) {
	return s.switchTo(kind, false)
}

func (s *Switchable) switchTo(kind StrategyKind, auto bool) (StrategyKind, bool) {
	next, ok := s.members[kind]
	if !ok {
		return s.active.Load().kind, false
	}
	for {
		cur := s.active.Load()
		if cur.kind == kind {
			return cur.kind, false
		}
		if s.active.CompareAndSwap(cur, &switchState{kind: kind, router: next}) {
			s.switches.Add(1)
			if fn := s.onSwitch.Load(); fn != nil {
				(*fn)(cur.kind, kind, auto)
			}
			telemetry.TraceEvent(telemetry.EventPolicySwitch, "", string(cur.kind)+"->"+string(kind), s.switches.Load())
			return cur.kind, true
		}
	}
}

// Route implements hvac.Router: one atomic pointer load, then the
// active member's own lookup.
//
// The noft escape hatch lives here: if the active member answers
// RouteAbort (ring noft after a declared failure), Switchable commits
// an automatic switch to the escape strategy and re-routes through it.
// Every member is already evidence-current, so the re-route is correct
// immediately.
//
//ftc:hotpath
func (s *Switchable) Route(path string) hvac.Decision {
	st := s.active.Load()
	d := st.router.Route(path)
	if d.Kind != hvac.RouteAbort {
		return d
	}
	// Escape: adaptive jobs must survive what a static NoFT run would
	// die of. switchTo is idempotent under races — exactly one caller
	// commits the swap, the rest observe it.
	//ftclint:ignore hotpathlock the escape switch fires once per declared failure, never on the steady-state route; its trace emit is off the hot path
	s.switchTo(s.escape, true)
	return s.active.Load().router.Route(path)
}

// NodeFailed implements hvac.Router: evidence fans out to every member.
func (s *Switchable) NodeFailed(node cluster.NodeID) {
	for _, r := range s.members {
		r.NodeFailed(node)
	}
}

// NodeRecovered implements hvac.RecoveryAware: recovery fans out to
// every member.
func (s *Switchable) NodeRecovered(node cluster.NodeID) {
	for _, r := range s.members {
		if ra, ok := r.(hvac.RecoveryAware); ok {
			ra.NodeRecovered(node)
		}
	}
}

// Replicas implements hvac.Replicator. Fan-out always consults the
// live ring (the recache member): its Owners are live nodes in ring
// order, and in the healthy state they coincide with every member's
// static owners, so replica placement is stable across switches.
func (s *Switchable) Replicas(path string, n int) []cluster.NodeID {
	return s.members[KindNVMe].(*RingRecache).Replicas(path, n)
}

// PlanRejoin implements hvac.RejoinPlanner via the live ring: the keys
// the node owns once re-added — the same set every member routes to it
// while healthy.
func (s *Switchable) PlanRejoin(node cluster.NodeID, keys []string) []string {
	return s.members[KindNVMe].(*RingRecache).PlanRejoin(node, keys)
}

var (
	_ hvac.Router        = (*RingStatic)(nil)
	_ hvac.RecoveryAware = (*RingStatic)(nil)
	_ hvac.Router        = (*Switchable)(nil)
	_ hvac.RecoveryAware = (*Switchable)(nil)
	_ hvac.Replicator    = (*Switchable)(nil)
	_ hvac.RejoinPlanner = (*Switchable)(nil)
)
