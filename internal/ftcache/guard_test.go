//go:build benchguard

package ftcache

import (
	"fmt"
	"testing"
)

// TestSwitchableRouteGuard fails when routing through the adaptive
// Switchable costs more than the guard threshold over routing through
// the raw recache ring directly. The hot-path contract (ISSUE 9) is one
// atomic pointer load plus the member's own lookup. The raw ring
// lookup is only tens of ns, so even the contractual pointer load plus
// the interface indirection is a ~25% relative share; the guard trips
// at 50%, which still flags an accidental mutex (an uncontended RWMutex
// pair roughly doubles the cost at this base) or a map lookup, while
// tolerating CI jitter. The zero-allocation check is exact.
//
// Gated behind the benchguard tag:
//
//	go test -tags benchguard -run TestSwitchableRouteGuard ./internal/ftcache/
func TestSwitchableRouteGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard skipped in -short mode")
	}
	nodes := switchNodes(16)
	paths := make([]string, 512)
	for i := range paths {
		paths[i] = fmt.Sprintf("/data/train/shard-%04d.bin", i)
	}
	sw := NewSwitchable(nodes, 100, KindNVMe)
	raw := NewRingRecache(nodes, 100)

	runSw := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sw.Route(paths[i%len(paths)])
			}
		})
		if allocs := r.AllocsPerOp(); allocs > 0 {
			t.Errorf("Switchable.Route allocates %d objects/op, want 0", allocs)
		}
		return float64(r.NsPerOp())
	}
	runRaw := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = raw.Route(paths[i%len(paths)])
			}
		})
		return float64(r.NsPerOp())
	}

	// Alternate sides and keep minimums: robust to scheduler noise and
	// background drift on a shared runner (same idiom as the loadctl
	// guard).
	var viaSwitch, direct float64
	for i := 0; i < 3; i++ {
		var a, b float64
		if i%2 == 0 {
			a = runSw()
			b = runRaw()
		} else {
			b = runRaw()
			a = runSw()
		}
		if viaSwitch == 0 || a < viaSwitch {
			viaSwitch = a
		}
		if direct == 0 || b < direct {
			direct = b
		}
	}
	overhead := (viaSwitch - direct) / direct
	t.Logf("route: via Switchable %.0f ns/op, direct ring %.0f ns/op, overhead %+.1f%%", viaSwitch, direct, 100*overhead)
	if overhead > 0.50 {
		t.Errorf("Switchable routing overhead %.1f%% exceeds 50%% guard threshold (contract: one atomic pointer load)", 100*overhead)
	}
}
