package ftcache

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hvac"
)

func nodes(n int) []cluster.NodeID {
	out := make([]cluster.NodeID, n)
	for i := range out {
		out[i] = cluster.NodeID(fmt.Sprintf("node-%02d", i))
	}
	return out
}

func paths(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cosmoUniverse/train/univ_%06d.tfrecord", i)
	}
	return out
}

func TestNoFTRoutesThenAborts(t *testing.T) {
	r := NewNoFT(nodes(4))
	if r.Name() != "NoFT" {
		t.Errorf("name = %q", r.Name())
	}
	d := r.Route("file-a")
	if d.Kind != hvac.RouteNode {
		t.Fatalf("healthy route kind = %v", d.Kind)
	}
	if r.Aborted() {
		t.Error("aborted before any failure")
	}
	r.NodeFailed("node-02")
	if !r.Aborted() {
		t.Error("not aborted after failure")
	}
	for _, p := range paths(10) {
		if got := r.Route(p); got.Kind != hvac.RouteAbort {
			t.Fatalf("route after failure = %+v, want abort", got)
		}
	}
}

func TestNoFTAbortsEvenIfFailedNodeOwnedNothingRelevant(t *testing.T) {
	// NoFT aborts on ANY node failure, not only for keys it owned —
	// the baseline job dies wholesale.
	r := NewNoFT(nodes(2))
	r.NodeFailed("node-01")
	if d := r.Route("any"); d.Kind != hvac.RouteAbort {
		t.Error("NoFT must abort for every path after any failure")
	}
}

func TestPFSRedirectOnlyVictimTrafficMoves(t *testing.T) {
	ns := nodes(8)
	r := NewPFSRedirect(ns)
	if r.Name() != "FT w/ PFS" {
		t.Errorf("name = %q", r.Name())
	}
	ps := paths(400)
	before := map[string]hvac.Decision{}
	for _, p := range ps {
		before[p] = r.Route(p)
		if before[p].Kind != hvac.RouteNode {
			t.Fatalf("healthy route = %+v", before[p])
		}
	}
	victim := cluster.NodeID("node-03")
	r.NodeFailed(victim)
	if r.FailedCount() != 1 {
		t.Errorf("failed count = %d", r.FailedCount())
	}
	redirected := 0
	for _, p := range ps {
		after := r.Route(p)
		if before[p].Node == victim {
			if after.Kind != hvac.RoutePFS {
				t.Fatalf("victim-owned %q not redirected: %+v", p, after)
			}
			redirected++
			continue
		}
		// Everyone else's placement is untouched — no recaching happens.
		if after != before[p] {
			t.Fatalf("placement of %q changed: %+v -> %+v", p, before[p], after)
		}
	}
	if redirected == 0 {
		t.Error("victim owned no paths; test degenerate")
	}
}

func TestPFSRedirectAllNodesFailed(t *testing.T) {
	ns := nodes(3)
	r := NewPFSRedirect(ns)
	for _, n := range ns {
		r.NodeFailed(n)
	}
	for _, p := range paths(20) {
		if d := r.Route(p); d.Kind != hvac.RoutePFS {
			t.Fatalf("route with all failed = %+v", d)
		}
	}
}

func TestRingRecacheRemapsOnlyVictimKeys(t *testing.T) {
	ns := nodes(16)
	r := NewRingRecache(ns, 100)
	if r.Name() != "FT w/ NVMe" {
		t.Errorf("name = %q", r.Name())
	}
	ps := paths(2000)
	before := map[string]cluster.NodeID{}
	for _, p := range ps {
		d := r.Route(p)
		if d.Kind != hvac.RouteNode {
			t.Fatalf("healthy route = %+v", d)
		}
		before[p] = d.Node
	}
	victim := cluster.NodeID("node-09")
	r.NodeFailed(victim)
	moved := 0
	for _, p := range ps {
		d := r.Route(p)
		if d.Kind != hvac.RouteNode {
			t.Fatalf("route after failure = %+v", d)
		}
		if d.Node == victim {
			t.Fatalf("path %q still routed to failed node", p)
		}
		if before[p] == victim {
			moved++
		} else if d.Node != before[p] {
			t.Fatalf("surviving placement changed for %q: %s -> %s", p, before[p], d.Node)
		}
	}
	if moved == 0 {
		t.Error("victim owned no paths; test degenerate")
	}
	if r.Ring().Len() != 15 {
		t.Errorf("ring members = %d", r.Ring().Len())
	}
}

func TestRingRecacheFallsBackToPFSWhenRingEmpty(t *testing.T) {
	ns := nodes(2)
	r := NewRingRecache(ns, 10)
	r.NodeFailed(ns[0])
	r.NodeFailed(ns[1])
	if d := r.Route("p"); d.Kind != hvac.RoutePFS {
		t.Errorf("empty-ring route = %+v, want PFS", d)
	}
}

func TestRingRecacheDefaultVirtualNodes(t *testing.T) {
	r := NewRingRecache(nodes(2), 0)
	if r.Ring().PointCount() != 200 {
		t.Errorf("points = %d, want 200 (100/node default)", r.Ring().PointCount())
	}
}

func TestNewRouterFactory(t *testing.T) {
	ns := nodes(3)
	cases := []struct {
		kind StrategyKind
		name string
	}{
		{KindNoFT, "NoFT"},
		{KindPFS, "FT w/ PFS"},
		{KindNVMe, "FT w/ NVMe"},
		{StrategyKind("bogus"), "NoFT"}, // unknown → safe baseline
	}
	for _, c := range cases {
		r := NewRouter(c.kind, ns, 50)
		if r.Name() != c.name {
			t.Errorf("NewRouter(%q).Name() = %q, want %q", c.kind, r.Name(), c.name)
		}
	}
}

func TestRepeatedFailuresRingKeepsWorking(t *testing.T) {
	// The paper's motivation for the ring includes "handling repeated
	// node failures" cleanly; fail half the cluster sequentially.
	ns := nodes(8)
	r := NewRingRecache(ns, 64)
	ps := paths(500)
	for i := 0; i < 4; i++ {
		victim := r.Ring().Nodes()[0]
		prev := map[string]cluster.NodeID{}
		for _, p := range ps {
			prev[p] = r.Route(p).Node
		}
		r.NodeFailed(victim)
		for _, p := range ps {
			d := r.Route(p)
			if d.Kind != hvac.RouteNode || d.Node == victim {
				t.Fatalf("failure %d: bad route %+v", i, d)
			}
			if prev[p] != victim && d.Node != prev[p] {
				t.Fatalf("failure %d: collateral move of %q", i, p)
			}
		}
	}
}
