package ftcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hvac"
)

func switchNodes(n int) []cluster.NodeID {
	nodes := make([]cluster.NodeID, n)
	for i := range nodes {
		nodes[i] = cluster.NodeID(fmt.Sprintf("node-%02d", i))
	}
	return nodes
}

// The whole adaptive family shares ring placement: with the same vnode
// config every member must agree bit-for-bit on healthy-state
// ownership, so a switch moves zero keys while the fleet is healthy.
func TestSwitchableHealthyOwnershipIdentical(t *testing.T) {
	nodes := switchNodes(16)
	s := NewSwitchable(nodes, 100, KindNVMe)
	for i := 0; i < 2000; i++ {
		path := fmt.Sprintf("/data/train/shard-%04d.bin", i)
		want := s.Member(KindNVMe).Route(path)
		if want.Kind != hvac.RouteNode {
			t.Fatalf("recache member did not route %q to a node: %+v", path, want)
		}
		for _, kind := range []StrategyKind{KindNoFT, KindPFS} {
			got := s.Member(kind).Route(path)
			if got.Kind != hvac.RouteNode || got.Node != want.Node {
				t.Fatalf("%s owner for %q = %+v, recache owner %+v", kind, path, got, want)
			}
		}
	}
}

// Failure evidence must fan out to every member, active or not, so a
// later switch needs no catch-up: the PFS member redirects, the recache
// member remaps, the noft member aborts — all from one NodeFailed.
func TestSwitchableEvidenceFanOut(t *testing.T) {
	nodes := switchNodes(8)
	s := NewSwitchable(nodes, 100, KindNVMe)

	// Find a path and its owner.
	path := "/data/val/shard-0000.bin"
	d := s.Route(path)
	if d.Kind != hvac.RouteNode {
		t.Fatalf("initial route: %+v", d)
	}
	owner := d.Node

	s.NodeFailed(owner)

	if got := s.Member(KindPFS).Route(path); got.Kind != hvac.RoutePFS {
		t.Fatalf("pfs member after failure: %+v, want RoutePFS", got)
	}
	if got := s.Member(KindNoFT).Route(path); got.Kind != hvac.RouteAbort {
		t.Fatalf("noft member after failure: %+v, want RouteAbort", got)
	}
	if got := s.Member(KindNVMe).Route(path); got.Kind != hvac.RouteNode || got.Node == owner {
		t.Fatalf("recache member after failure: %+v, want a different live node", got)
	}

	s.NodeRecovered(owner)

	for _, kind := range []StrategyKind{KindNoFT, KindPFS, KindNVMe} {
		if got := s.Member(kind).Route(path); got.Kind != hvac.RouteNode || got.Node != owner {
			t.Fatalf("%s member after recovery: %+v, want owner %s back", kind, got, owner)
		}
	}
}

// A RouteAbort from the active noft member must escape to the recache
// strategy instead of surfacing: adaptive jobs never observe aborts.
func TestSwitchableNoFTEscape(t *testing.T) {
	nodes := switchNodes(8)
	s := NewSwitchable(nodes, 100, KindNoFT)
	var gotFrom, gotTo StrategyKind
	var gotAuto bool
	s.OnSwitch(func(from, to StrategyKind, auto bool) { gotFrom, gotTo, gotAuto = from, to, auto })

	path := "/data/train/shard-0042.bin"
	if d := s.Route(path); d.Kind != hvac.RouteNode {
		t.Fatalf("healthy noft route: %+v", d)
	}

	s.NodeFailed(nodes[0])
	d := s.Route(path) // any path: noft aborts globally after a failure
	if d.Kind == hvac.RouteAbort {
		t.Fatal("adaptive route surfaced RouteAbort")
	}
	if s.Kind() != KindNVMe {
		t.Fatalf("active after escape = %s, want %s", s.Kind(), KindNVMe)
	}
	if gotFrom != KindNoFT || gotTo != KindNVMe || !gotAuto {
		t.Fatalf("onSwitch saw (%s,%s,auto=%v), want (noft,ftnvme,true)", gotFrom, gotTo, gotAuto)
	}
	if s.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", s.Switches())
	}
}

// SwitchTo semantics: unknown kinds and self-switches are no-ops.
func TestSwitchableSwitchTo(t *testing.T) {
	s := NewSwitchable(switchNodes(4), 100, KindNVMe)
	if _, ok := s.SwitchTo(KindNVMe); ok {
		t.Fatal("self-switch reported a swap")
	}
	if _, ok := s.SwitchTo(StrategyKind("bogus")); ok {
		t.Fatal("unknown kind reported a swap")
	}
	from, ok := s.SwitchTo(KindPFS)
	if !ok || from != KindNVMe || s.Kind() != KindPFS {
		t.Fatalf("SwitchTo(pfs) = (%s,%v), active %s", from, ok, s.Kind())
	}
	if s.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", s.Switches())
	}
}

// Torn-snapshot check (run under -race): concurrent routing during
// rapid switching must always observe exactly one member's coherent
// answer — a RouteNode to a live node or a RoutePFS, never an abort,
// never an empty node.
func TestSwitchableConcurrentSwitchRoute(t *testing.T) {
	nodes := switchNodes(8)
	s := NewSwitchable(nodes, 100, KindNVMe)
	live := make(map[cluster.NodeID]bool, len(nodes))
	for _, n := range nodes {
		live[n] = true
	}
	// One failed node so the members genuinely disagree on fallback.
	s.NodeFailed(nodes[0])
	live[nodes[0]] = false

	stop := make(chan struct{})
	switcherDone := make(chan struct{})
	go func() {
		defer close(switcherDone)
		kinds := []StrategyKind{KindPFS, KindNVMe, KindPFS, KindNVMe}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.SwitchTo(kinds[i%len(kinds)])
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				path := fmt.Sprintf("/data/%d/shard-%04d.bin", g, i)
				d := s.Route(path)
				switch d.Kind {
				case hvac.RouteNode:
					if !live[d.Node] {
						t.Errorf("routed to dead node %s", d.Node)
						return
					}
				case hvac.RoutePFS:
					// ftpfs fallback for the failed node's arcs — fine.
				default:
					t.Errorf("unexpected decision %+v", d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-switcherDone
}
