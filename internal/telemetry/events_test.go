package telemetry

import "testing"

func TestEventTraceOrderAndSince(t *testing.T) {
	tr := NewEventTrace(8)
	base := tr.Seq()
	tr.Emit(EventNodeSuspected, "n0", "", 0)
	tr.Emit(EventNodeDead, "n0", "", 42)
	tr.Emit(EventRecachePlanned, "n0", "", 10)
	got := tr.Since(base)
	if len(got) != 3 {
		t.Fatalf("Since returned %d events, want 3", len(got))
	}
	wantTypes := []EventType{EventNodeSuspected, EventNodeDead, EventRecachePlanned}
	for i, e := range got {
		if e.Type != wantTypes[i] {
			t.Fatalf("event %d type = %s, want %s", i, e.Type, wantTypes[i])
		}
		if e.Seq != base+uint64(i)+1 {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, base+uint64(i)+1)
		}
	}
	if got[1].Value != 42 {
		t.Fatalf("dead event value = %d, want 42", got[1].Value)
	}
}

func TestEventTraceBounded(t *testing.T) {
	tr := NewEventTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit(EventPFSFallback, "n", "", int64(i))
	}
	got := tr.Recent(100)
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Value != int64(6+i) {
			t.Fatalf("retained event %d value = %d, want %d", i, e.Value, 6+i)
		}
	}
	// Since a sequence point that was overwritten returns only what is
	// still retained.
	if got := tr.Since(1); len(got) != 4 {
		t.Fatalf("Since(1) returned %d events, want 4", len(got))
	}
	// Since the current head returns nothing.
	if got := tr.Since(tr.Seq()); len(got) != 0 {
		t.Fatalf("Since(head) returned %d events, want 0", len(got))
	}
}

func TestEventTypeStrings(t *testing.T) {
	for typ, want := range map[EventType]string{
		EventNodeSuspected:   "node-suspected",
		EventNodeDead:        "node-declared-dead",
		EventRingChange:      "ring-membership-change",
		EventRecachePlanned:  "recache-planned",
		EventRecacheFileDone: "recache-file-done",
		EventPFSFallback:     "pfs-fallback",
		EventNodeRevived:     "node-revived",
		EventNodeRejoined:    "node-rejoined",
	} {
		if typ.String() != want {
			t.Errorf("EventType %d = %q, want %q", typ, typ.String(), want)
		}
	}
}
