package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func scrapeRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("ftc_hits_total", "node", "n0").Add(12)
	r.Counter("ftc_hits_total", "node", "n1").Add(3)
	r.GaugeFunc("ftc_bytes", func() int64 { return 4096 })
	h := r.Histogram("ftc_lat_seconds")
	h.Observe(1_000_000)  // 1ms
	h.Observe(2_000_000)  // 2ms
	h.Observe(50_000_000) // 50ms
	r.RegisterDebug("server", func() any { return map[string]any{"node": "n0"} })
	r.Trace().Emit(EventNodeDead, "n1", "", 7)
	return r
}

func TestWritePrometheusFormat(t *testing.T) {
	r := scrapeRegistry(t)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ftc_hits_total counter",
		`ftc_hits_total{node="n0"} 12`,
		`ftc_hits_total{node="n1"} 3`,
		"# TYPE ftc_bytes gauge",
		"ftc_bytes 4096",
		"# TYPE ftc_lat_seconds histogram",
		`ftc_lat_seconds_bucket{le="+Inf"} 3`,
		"ftc_lat_seconds_count 3",
		"ftc_lat_seconds_sum 0.053",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The TYPE line for a name must appear exactly once.
	if strings.Count(out, "# TYPE ftc_hits_total") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", out)
	}
	// Bucket counts must be cumulative.
	last := int64(-1)
	seen := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "ftc_lat_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative:\n%s", out)
		}
		last = v
		seen++
	}
	if seen < 4 { // 3 value buckets + +Inf
		t.Fatalf("expected >= 4 bucket lines, got %d:\n%s", seen, out)
	}
}

func TestHTTPHandlerEndpoints(t *testing.T) {
	r := scrapeRegistry(t)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ftc_hits_total") {
		t.Fatalf("scrape missing counters:\n%s", body)
	}

	dresp, err := srv.Client().Get(srv.URL + "/debug/ftcache?events=10")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var state DebugState
	if err := json.NewDecoder(dresp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if _, ok := state.Sections["server"]; !ok {
		t.Fatalf("debug snapshot missing server section: %+v", state.Sections)
	}
	if len(state.Events) != 1 || state.Events[0].Type != "node-declared-dead" {
		t.Fatalf("debug events wrong: %+v", state.Events)
	}
}
