// Package telemetry is the observability layer of the FT-Cache stack:
// a dependency-free (stdlib-only) metrics registry built so that the
// *write* side — the read hot path instrumented in rpc, storage,
// hashring and hvac — is wait-free and allocation-free, while the
// *read* side (a Prometheus scrape or a /debug snapshot) never takes a
// lock the hot path contends on.
//
// Primitives:
//
//   - Counter / Gauge: single atomic words. Incrementing costs the same
//     as the ad-hoc atomic stats counters the repo already kept.
//   - Histogram (histogram.go): striped, lock-free, fixed log-scale
//     buckets — Observe is one atomic add into a stripe picked from the
//     caller's stack address, so concurrent observers do not share a
//     cache line.
//   - EventTrace (events.go): a bounded ring buffer of structured
//     fault-tolerance events (node-suspected, node-declared-dead,
//     ring-membership-change, recache-planned, recache-file-done,
//     pfs-fallback). Events are rare (failure-path only), so a small
//     mutex is acceptable there.
//
// Metrics are registered once (start-up or first use, via sync.Once in
// the instrumented package) and the returned handle is stored; the hot
// path never touches the registry map. CounterFunc/GaugeFunc register a
// callback evaluated only at scrape time, which lets existing atomic
// counters (storage.NVMe hits, mover drop counts, …) surface with zero
// added hot-path cost. Scrape-time callbacks must themselves be
// lock-free reads (atomic loads) — every provider in this repo is.
//
// A process-wide Default registry wires the whole stack together: every
// instrumented layer publishes into it, ftcserver serves it over HTTP
// (http.go), and ftcbench -hotpath prints it at exit. Tests that need
// isolation construct private registries.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates the non-trivial write paths (histogram observations and
// event emission). Counters and gauges stay live regardless — they are
// single atomic adds, no cheaper off than on. The overhead guard and
// the before/after benchmarks toggle this.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns histogram observation and event tracing on or off
// process-wide. Used by the telemetry-overhead benchmarks; production
// code leaves it on.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether histogram/event telemetry is active.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus counter semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// metricEntry is one registered series: a base name plus a rendered
// label set.
type metricEntry struct {
	name   string
	labels string // `k="v",k2="v2"` without braces; "" when unlabeled
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64 // kindCounterFunc / kindGaugeFunc; swappable
}

// Registry holds named metrics, an event trace, and debug-snapshot
// providers. All methods are goroutine-safe. Registration takes the
// registry mutex; the returned handles never do.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metricEntry
	entries []*metricEntry // registration order (stable output)

	trace *EventTrace

	debugMu sync.Mutex
	debug   map[string]func() any

	controlMu sync.Mutex
	control   map[string]func(arg string) error
}

// NewRegistry creates an empty registry with a DefaultTraceCapacity
// event trace.
func NewRegistry() *Registry {
	return &Registry{
		byKey:   make(map[string]*metricEntry),
		trace:   NewEventTrace(DefaultTraceCapacity),
		debug:   make(map[string]func() any),
		control: make(map[string]func(arg string) error),
	}
}

var std = NewRegistry()

// Default returns the process-wide registry every instrumented layer
// publishes into.
func Default() *Registry { return std }

// renderLabels turns pairs (k1, v1, k2, v2, ...) into a canonical
// `k1="v1",k2="v2"` string, sorted by key so the same label set always
// identifies the same series. Panics on an odd pair count — labels are
// developer-provided, never data-driven.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("telemetry: odd label pair count")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the entry for (name, labels), creating it with mk when
// absent. It panics when the existing entry has a different kind —
// metric names are a global namespace and a kind clash is a bug.
func (r *Registry) lookup(name string, kind metricKind, labelPairs []string, mk func(*metricEntry)) *metricEntry {
	labels := renderLabels(labelPairs)
	key := name + "{" + labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		if e.kind != kind {
			panic("telemetry: metric " + name + " re-registered as a different kind")
		}
		return e
	}
	e := &metricEntry{name: name, labels: labels, kind: kind}
	mk(e)
	r.byKey[key] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns (registering on first use) the counter for name and
// the optional label pairs (k1, v1, k2, v2, ...).
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	e := r.lookup(name, kindCounter, labelPairs, func(e *metricEntry) {
		e.counter = &Counter{}
	})
	return e.counter
}

// Gauge returns (registering on first use) the gauge for name/labels.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	e := r.lookup(name, kindGauge, labelPairs, func(e *metricEntry) {
		e.gauge = &Gauge{}
	})
	return e.gauge
}

// Histogram returns (registering on first use) the histogram for
// name/labels. Histograms record int64 nanoseconds and render as
// seconds; name them *_seconds.
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	e := r.lookup(name, kindHistogram, labelPairs, func(e *metricEntry) {
		e.hist = &Histogram{}
	})
	return e.hist
}

// CounterFunc registers fn as a scrape-time counter. Re-registering the
// same series swaps in the new callback (latest wins) — a revived
// server re-binds its funcs to the fresh instance's state.
func (r *Registry) CounterFunc(name string, fn func() int64, labelPairs ...string) {
	e := r.lookup(name, kindCounterFunc, labelPairs, func(e *metricEntry) {})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers fn as a scrape-time gauge; latest wins like
// CounterFunc.
func (r *Registry) GaugeFunc(name string, fn func() int64, labelPairs ...string) {
	e := r.lookup(name, kindGaugeFunc, labelPairs, func(e *metricEntry) {})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// Trace returns the registry's event trace.
func (r *Registry) Trace() *EventTrace { return r.trace }

// TraceEvent emits a structured event into the Default registry's
// trace — the one-liner the instrumented layers use.
func TraceEvent(typ EventType, node, detail string, value int64) {
	std.trace.Emit(typ, node, detail, value)
}

// RegisterDebug attaches a named section provider to the /debug/ftcache
// snapshot. fn is evaluated at snapshot time and must be goroutine-safe
// and lock-light. Re-registering a name replaces the provider (latest
// wins).
func (r *Registry) RegisterDebug(name string, fn func() any) {
	r.debugMu.Lock()
	r.debug[name] = fn
	r.debugMu.Unlock()
}

// RegisterControl attaches a named operator action, served as
// POST /control/<name>?arg=... by the HTTP handler (ftcctl policy
// -force is the canonical caller). fn must be goroutine-safe; its error
// is returned to the HTTP client verbatim. Re-registering a name
// replaces the handler (latest wins), mirroring RegisterDebug.
func (r *Registry) RegisterControl(name string, fn func(arg string) error) {
	r.controlMu.Lock()
	r.control[name] = fn
	r.controlMu.Unlock()
}

// controlHandler returns the named control action, or nil.
func (r *Registry) controlHandler(name string) func(arg string) error {
	r.controlMu.Lock()
	defer r.controlMu.Unlock()
	return r.control[name]
}

// debugSections evaluates every provider outside the registry locks.
func (r *Registry) debugSections() map[string]any {
	r.debugMu.Lock()
	fns := make(map[string]func() any, len(r.debug))
	for k, v := range r.debug {
		fns[k] = v
	}
	r.debugMu.Unlock()
	out := make(map[string]any, len(fns))
	for k, fn := range fns {
		out[k] = fn()
	}
	return out
}

// MetricValue is one series in a registry snapshot.
type MetricValue struct {
	Name   string
	Labels string // canonical `k="v"` list, "" when unlabeled
	Kind   string // "counter" | "gauge" | "histogram"
	Value  int64  // counters and gauges
	Hist   *HistogramSnapshot
}

// Snapshot captures every registered series. Callback metrics are
// evaluated outside the registry lock.
func (r *Registry) Snapshot() []MetricValue {
	r.mu.Lock()
	entries := make([]*metricEntry, len(r.entries))
	copy(entries, r.entries)
	fns := make([]func() int64, len(entries))
	for i, e := range entries {
		fns[i] = e.fn
	}
	r.mu.Unlock()

	out := make([]MetricValue, 0, len(entries))
	for i, e := range entries {
		mv := MetricValue{Name: e.name, Labels: e.labels, Kind: e.kind.String()}
		switch e.kind {
		case kindCounter:
			mv.Value = e.counter.Load()
		case kindGauge:
			mv.Value = e.gauge.Load()
		case kindCounterFunc, kindGaugeFunc:
			if fns[i] != nil {
				mv.Value = fns[i]()
			}
		case kindHistogram:
			s := e.hist.Snapshot()
			mv.Hist = &s
		}
		out = append(out, mv)
	}
	return out
}
