package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4). Histograms record
// nanoseconds and are rendered in seconds (_sum and the le bounds are
// divided by 1e9); only buckets that hold observations are emitted
// (plus +Inf), which is valid — Prometheus allows arbitrary le subsets
// as long as counts are cumulative.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	// Group series under one # TYPE line per metric name, preserving
	// first-registration order.
	names := make([]string, 0, len(snap))
	byName := make(map[string][]MetricValue, len(snap))
	for _, mv := range snap {
		if _, ok := byName[mv.Name]; !ok {
			names = append(names, mv.Name)
		}
		byName[mv.Name] = append(byName[mv.Name], mv)
	}
	for _, name := range names {
		series := byName[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, series[0].Kind); err != nil {
			return err
		}
		for _, mv := range series {
			if err := writeSeries(w, mv); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, mv MetricValue) error {
	if mv.Hist == nil {
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(mv.Name, mv.Labels, ""), mv.Value)
		return err
	}
	s := mv.Hist
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		_, hi := bucketBounds(i)
		le := strconv.FormatFloat(float64(hi)/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s %d\n",
			seriesName(mv.Name+"_bucket", mv.Labels, `le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n",
		seriesName(mv.Name+"_bucket", mv.Labels, `le="+Inf"`), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n",
		seriesName(mv.Name+"_sum", mv.Labels, ""),
		strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesName(mv.Name+"_count", mv.Labels, ""), s.Count)
	return err
}

// seriesName renders name plus the union of the stored label string and
// an extra label (the histogram le).
func seriesName(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}
