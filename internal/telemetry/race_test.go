package telemetry

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentRegistryRace hammers counters, gauges, histograms and
// the event trace from many writers while readers scrape continuously —
// the satellite race test run under -race in CI. It validates the core
// claim: scrapes never block or corrupt the write side.
func TestConcurrentRegistryRace(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		perOp   = 2000
	)
	c := r.Counter("ftc_race_total")
	g := r.Gauge("ftc_race_gauge")
	h := r.Histogram("ftc_race_seconds")
	r.GaugeFunc("ftc_race_fn", func() int64 { return c.Load() })
	r.RegisterDebug("race", func() any { return c.Load() })

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: Prometheus scrape, snapshot, debug snapshot, quantile.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.WritePrometheus(io.Discard)
				snap := r.Snapshot()
				for _, mv := range snap {
					if mv.Hist != nil {
						_ = mv.Hist.Quantile(0.99)
					}
				}
				_ = r.DebugSnapshot(64)
			}
		}()
	}

	// Writers: counters, gauges, histogram observations, events, and
	// concurrent registration of labeled series.
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			lbl := r.Counter("ftc_race_labeled_total", "w", string(rune('a'+w)))
			for i := 0; i < perOp; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i%1000) * 1000)
				lbl.Inc()
				if i%64 == 0 {
					r.Trace().Emit(EventPFSFallback, "n0", "p", int64(i))
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got := c.Load(); got != writers*perOp {
		t.Fatalf("counter = %d, want %d", got, writers*perOp)
	}
	s := h.Snapshot()
	if s.Count != writers*perOp {
		t.Fatalf("histogram count = %d, want %d", s.Count, writers*perOp)
	}
}
