package telemetry

import (
	"sync"
	"time"
)

// EventType enumerates the structured fault-tolerance events the stack
// emits. The live failure sequence a client drives is, in order:
// node-suspected (first timeout) → node-declared-dead (threshold) →
// ring-membership-change + recache-planned (router drops the node) →
// pfs-fallback / recache-file-done (new owners refill on demand).
type EventType uint8

// Event types.
const (
	// EventNodeSuspected: a node accumulated its first timeout evidence.
	EventNodeSuspected EventType = iota
	// EventNodeDead: the detector crossed TIMEOUT_LIMIT and declared the
	// node failed. Value carries the suspect→dead latency in ns.
	EventNodeDead
	// EventRingChange: a node joined or left the hash ring. Detail is
	// "add" or "remove"; Value is the member count after the change.
	EventRingChange
	// EventRecachePlanned: a failure was absorbed by re-owning the dead
	// node's arcs (ftcache live path) or an explicit RecachePlan was
	// computed (offline analysis; Value = keys moved).
	EventRecachePlanned
	// EventRecacheFileDone: a cache fill landed on NVMe (the elastic
	// recache action; also fires for first-touch fills). Detail is the
	// path, Value the object size.
	EventRecacheFileDone
	// EventPFSFallback: a server miss was served from the PFS. Detail is
	// the path.
	EventPFSFallback
	// EventNodeRevived: a failed node was re-admitted (elastic
	// scale-up).
	EventNodeRevived
	// EventHotKey: the load-control sketch flagged a key hot and its
	// replica fan-out was issued. Detail is the path, Value the object
	// size being pushed.
	EventHotKey
	// EventNodeRejoined: a revived node completed the full rejoin path —
	// probes passed, NVMe warmed, ring re-add committed. Detail is the
	// node, Value the warmed byte count.
	EventNodeRejoined
	// EventPolicySwitch: the adaptive controller (or the noft escape
	// hatch) swapped the active fault-tolerance strategy. Detail is
	// "from->to", Value the cumulative switch count.
	EventPolicySwitch
)

// String implements fmt.Stringer with stable wire-friendly names.
func (t EventType) String() string {
	switch t {
	case EventNodeSuspected:
		return "node-suspected"
	case EventNodeDead:
		return "node-declared-dead"
	case EventRingChange:
		return "ring-membership-change"
	case EventRecachePlanned:
		return "recache-planned"
	case EventRecacheFileDone:
		return "recache-file-done"
	case EventPFSFallback:
		return "pfs-fallback"
	case EventNodeRevived:
		return "node-revived"
	case EventHotKey:
		return "hot-key-flagged"
	case EventNodeRejoined:
		return "node-rejoined"
	case EventPolicySwitch:
		return "policy-switch"
	default:
		return "unknown"
	}
}

// Event is one traced occurrence. Seq increases monotonically from 1
// across the trace's lifetime, so consumers can order events and detect
// how many the bounded buffer dropped.
type Event struct {
	Seq    uint64
	Time   time.Time
	Type   EventType
	Node   string
	Detail string
	Value  int64
}

// DefaultTraceCapacity bounds the registry trace: large enough to hold
// every event of a multi-failure run's fault window, small enough to be
// a fixed memory cost.
const DefaultTraceCapacity = 1024

// EventTrace is a bounded ring buffer of events. Emission takes a
// short mutex — events fire on the failure/miss path, never on the
// cache-hit hot path, so a lock here cannot contend with steady-state
// reads.
type EventTrace struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever emitted
}

// NewEventTrace creates a trace retaining the last capacity events
// (non-positive selects DefaultTraceCapacity).
func NewEventTrace(capacity int) *EventTrace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &EventTrace{buf: make([]Event, capacity)}
}

// Emit appends an event (no-op while telemetry is disabled).
func (t *EventTrace) Emit(typ EventType, node, detail string, value int64) {
	if !enabled.Load() {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.next++
	t.buf[(t.next-1)%uint64(len(t.buf))] = Event{
		Seq:    t.next,
		Time:   now,
		Type:   typ,
		Node:   node,
		Detail: detail,
		Value:  value,
	}
	t.mu.Unlock()
}

// Seq returns the sequence number of the most recently emitted event
// (0 before any). Record it before an action, then pass it to Since to
// read only the events that action produced.
func (t *EventTrace) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Since returns retained events with Seq > seq, oldest first.
func (t *EventTrace) Since(seq uint64) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.copyLocked(seq, len(t.buf))
}

// Recent returns up to max retained events, oldest first.
func (t *EventTrace) Recent(max int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if max <= 0 || max > len(t.buf) {
		max = len(t.buf)
	}
	lo := uint64(0)
	if t.next > uint64(max) {
		lo = t.next - uint64(max)
	}
	return t.copyLocked(lo, max)
}

// copyLocked gathers retained events with Seq > seq (capped at max).
func (t *EventTrace) copyLocked(seq uint64, max int) []Event {
	cap64 := uint64(len(t.buf))
	lo := seq
	if t.next > cap64 && lo < t.next-cap64 {
		lo = t.next - cap64 // older entries were overwritten
	}
	n := int(t.next - lo)
	if n > max {
		lo = t.next - uint64(max)
		n = max
	}
	out := make([]Event, 0, n)
	for s := lo + 1; s <= t.next; s++ {
		out = append(out, t.buf[(s-1)%cap64])
	}
	return out
}
