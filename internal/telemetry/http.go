package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/trace"
)

// Handler serves the registry over HTTP:
//
//   - GET /metrics        — Prometheus text exposition
//   - GET /debug/ftcache  — JSON snapshot: debug sections registered via
//     RegisterDebug (server cache state, ring membership, …) plus the
//     recent event trace (?events=N, default 128)
//   - GET /debug/traces   — flight-recorder dump: retained request
//     traces plus sampling stats (?max=N caps traces, ?canonical=1
//     selects the byte-stable replay form)
//   - POST /control/<name> — operator actions registered via
//     RegisterControl (?arg=... is passed through); the one mutating
//     surface, used by ftcctl policy -force
//
// The GET surface is read-only and lock-light; ftcserver mounts the
// handler behind an opt-in -metrics listen address.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/ftcache", func(w http.ResponseWriter, req *http.Request) {
		n := 128
		if s := req.URL.Query().Get("events"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.DebugSnapshot(n))
	})
	mux.Handle("/debug/traces", trace.HTTPHandler())
	mux.HandleFunc("/control/", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "control actions are POST-only", http.StatusMethodNotAllowed)
			return
		}
		name := strings.TrimPrefix(req.URL.Path, "/control/")
		fn := r.controlHandler(name)
		if fn == nil {
			http.Error(w, "unknown control action "+strconv.Quote(name), http.StatusNotFound)
			return
		}
		if err := fn(req.URL.Query().Get("arg")); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// DebugState is the JSON shape of /debug/ftcache.
type DebugState struct {
	Now      time.Time      `json:"now"`
	Sections map[string]any `json:"sections"`
	Events   []EventJSON    `json:"events"`
}

// EventJSON is the wire form of one traced event.
type EventJSON struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Type   string    `json:"type"`
	Node   string    `json:"node,omitempty"`
	Detail string    `json:"detail,omitempty"`
	Value  int64     `json:"value,omitempty"`
}

// DebugSnapshot materializes the /debug/ftcache payload with up to
// maxEvents recent events.
func (r *Registry) DebugSnapshot(maxEvents int) DebugState {
	events := r.trace.Recent(maxEvents)
	out := DebugState{
		Now:      time.Now(),
		Sections: r.debugSections(),
		Events:   make([]EventJSON, 0, len(events)),
	}
	for _, e := range events {
		out.Events = append(out.Events, EventJSON{
			Seq:    e.Seq,
			Time:   e.Time,
			Type:   e.Type.String(),
			Node:   e.Node,
			Detail: e.Detail,
			Value:  e.Value,
		})
	}
	return out
}
