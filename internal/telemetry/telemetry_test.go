package telemetry

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ftc_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("ftc_test_gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Same name+labels returns the same instance.
	if r.Counter("ftc_test_total") != c {
		t.Fatal("re-lookup returned a different counter")
	}
}

func TestLabelsIdentifySeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ftc_multi_total", "node", "n0")
	b := r.Counter("ftc_multi_total", "node", "n1")
	if a == b {
		t.Fatal("distinct labels must create distinct series")
	}
	// Label order must not matter.
	x := r.Counter("ftc_pair_total", "a", "1", "b", "2")
	y := r.Counter("ftc_pair_total", "b", "2", "a", "1")
	if x != y {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ftc_clash_total")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("ftc_clash_total")
}

func TestFuncMetricsLatestWins(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("ftc_fn_total", func() int64 { return 1 })
	r.CounterFunc("ftc_fn_total", func() int64 { return 2 })
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d series, want 1", len(snap))
	}
	if snap[0].Value != 2 {
		t.Fatalf("func counter = %d, want latest-wins 2", snap[0].Value)
	}
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("ftc_a_total").Add(3)
	r.Gauge("ftc_b").Set(-1)
	r.GaugeFunc("ftc_c", func() int64 { return 9 })
	r.Histogram("ftc_d_seconds").Observe(1000)
	snap := r.Snapshot()
	kinds := map[string]string{}
	for _, mv := range snap {
		kinds[mv.Name] = mv.Kind
	}
	want := map[string]string{
		"ftc_a_total":   "counter",
		"ftc_b":         "gauge",
		"ftc_c":         "gauge",
		"ftc_d_seconds": "histogram",
	}
	for n, k := range want {
		if kinds[n] != k {
			t.Errorf("%s kind = %q, want %q", n, kinds[n], k)
		}
	}
	for _, mv := range snap {
		if mv.Name == "ftc_d_seconds" {
			if mv.Hist == nil || mv.Hist.Count != 1 {
				t.Fatalf("histogram snapshot missing observation: %+v", mv.Hist)
			}
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	got := renderLabels([]string{"k", `a"b\c` + "\n"})
	if !strings.Contains(got, `a\"b\\c\n`) {
		t.Fatalf("label escaping wrong: %s", got)
	}
}

func TestSetEnabledGatesHistogramsAndEvents(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	h := r.Histogram("ftc_gate_seconds")
	SetEnabled(false)
	h.Observe(100)
	r.Trace().Emit(EventPFSFallback, "n0", "p", 0)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("histogram observed while disabled: %+v", s)
	}
	if got := len(r.Trace().Recent(10)); got != 0 {
		t.Fatalf("trace recorded %d events while disabled", got)
	}
	SetEnabled(true)
	h.Observe(100)
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("histogram did not resume after enable: %+v", s)
	}
}
