package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// Histogram bucket scheme (fixed, log-scale):
//
//   - bucket 0 holds values <= 0;
//   - buckets 1..7 hold the exact small values 1..7;
//   - from 8 upward, each power-of-two octave splits into 4 sub-buckets
//     keyed by the two bits below the leading bit, for a worst-case
//     relative bucket width of 25%.
//
// Values are int64 nanoseconds. bucketIndex is branch-light integer
// arithmetic (bits.Len64 + shifts), so Observe is one index computation
// and one atomic add — no locks, no allocation, no float math.
const (
	histStripes = 8            // power of two; stripe picked per-goroutine
	numBuckets  = 8 + (64-3)*4 // 252: exact 0..7, then 4 per octave up to 2^64
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	if u < 8 {
		return int(u)
	}
	e := bits.Len64(u)          // 4..64
	sub := (u >> uint(e-3)) & 3 // two bits below the leading bit
	return 8 + (e-4)*4 + int(sub)
}

// bucketBounds returns bucket i's value range [lo, hi).
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	if i < 8 {
		return uint64(i), uint64(i) + 1
	}
	i -= 8
	e := uint(i/4 + 4)
	sub := uint64(i % 4)
	lo = 1<<(e-1) | sub<<(e-3)
	return lo, lo + 1<<(e-3)
}

// histStripe is one writer stripe. Stripes are padded apart so two
// cores observing concurrently do not bounce a cache line between them
// on the count/sum words.
type histStripe struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	_       [48]byte // keep the hot count/sum words off the next stripe's line
}

// Histogram is a striped, lock-free, log-scale-bucket histogram.
// The zero value is ready to use; obtain shared instances from a
// Registry so they render on scrape.
type Histogram struct {
	stripes [histStripes]histStripe
}

// stripeHint derives a stable-per-goroutine stripe from the address of
// a stack variable: goroutine stacks live in distinct allocations, so
// concurrent observers spread across stripes without any shared state.
// The low bits (in-frame offset) are discarded. unsafe is used only to
// read the address; nothing is dereferenced.
func stripeHint() uint64 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return uint64(p >> 10)
}

// Observe records v (nanoseconds): one bucket index computation and
// three atomic adds into this goroutine's stripe. No-op while telemetry
// is disabled.
//
//ftc:hotpath
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	s := &h.stripes[stripeHint()&(histStripes-1)]
	s.buckets[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// ObserveSince records the elapsed time since start.
//
//ftc:hotpath
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// HistogramSnapshot is a merged point-in-time view. Buckets has
// numBuckets entries; Sum and the quantiles are nanoseconds.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets []uint64
}

// Snapshot merges the stripes with atomic loads only — a scrape never
// blocks an observer. The merge is not a single consistent cut (counts
// may land between stripe reads); for monitoring that skew is
// irrelevant and it is the price of a lock-free write side.
func (h *Histogram) Snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Buckets: make([]uint64, numBuckets)}
	for i := range h.stripes {
		s := &h.stripes[i]
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		for b := range s.buckets {
			out.Buckets[b] += s.buckets[b].Load()
		}
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) in nanoseconds by
// linear interpolation inside the target bucket. Returns 0 on an empty
// histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - prev) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return float64(lo) + frac*float64(hi-lo)
		}
	}
	lo, hi := bucketBounds(numBuckets - 1)
	_ = lo
	return float64(hi)
}

// Mean returns the mean observation in nanoseconds (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
