package telemetry

import (
	"math"
	"testing"
)

func TestBucketIndexBoundsRoundtrip(t *testing.T) {
	// Every bucket's bounds must map back to that bucket, and indices
	// must be monotonic in the value.
	for i := 0; i < numBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo < math.MaxInt64 && int64(lo) >= 0 {
			if got := bucketIndex(int64(lo)); got != i {
				t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, i)
			}
		}
		last := hi - 1
		if last <= math.MaxInt64 {
			if got := bucketIndex(int64(last)); got != i {
				t.Fatalf("bucketIndex(hi-1=%d) = %d, want %d", last, got, i)
			}
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 2, 3, 7, 8, 9, 15, 16, 100, 1000, 1e6, 1e9, 1e12, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotonic at %d", v)
		}
		prev = idx
	}
	if bucketIndex(-5) != 0 {
		t.Fatal("negative values must land in bucket 0")
	}
}

func TestBucketRelativeWidth(t *testing.T) {
	// From 8 up, bucket width must stay within 25% of the lower bound.
	for i := 8; i < numBuckets; i++ {
		lo, hi := bucketBounds(i)
		if float64(hi-lo)/float64(lo) > 0.25+1e-9 {
			t.Fatalf("bucket %d [%d,%d) wider than 25%%", i, lo, hi)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 µs uniform: p50 ≈ 500µs, p99 ≈ 990µs, within bucket
	// resolution (25%).
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v * 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	p50 := s.Quantile(0.50)
	p99 := s.Quantile(0.99)
	if p50 < 350e3 || p50 > 650e3 {
		t.Errorf("p50 = %.0f ns, want ~500µs", p50)
	}
	if p99 < 750e3 || p99 > 1250e3 {
		t.Errorf("p99 = %.0f ns, want ~990µs", p99)
	}
	if s.Quantile(0) > s.Quantile(1) {
		t.Error("quantiles not monotonic")
	}
	wantSum := int64(1000*1001/2) * 1000
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram not zero: %+v", s)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v += 997
		}
	})
}
