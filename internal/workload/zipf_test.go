package workload

import (
	"math"
	"testing"
)

func TestZipfUniformAtZeroExponent(t *testing.T) {
	const n, draws = 16, 160000
	z := NewZipf(0, n, 1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Fatalf("index %d drawn %d times, want ~%.0f (uniform)", i, c, want)
		}
	}
}

func TestZipfSkewConcentratesOnHead(t *testing.T) {
	const n, draws = 512, 200000
	z := NewZipf(1.1, n, 7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	head := float64(counts[0]) / draws
	if want := z.Share(0); math.Abs(head-want) > 0.03 {
		t.Fatalf("head share %.3f, want ~%.3f", head, want)
	}
	if counts[0] <= counts[n-1]*10 {
		t.Fatalf("head %d not dominating tail %d", counts[0], counts[n-1])
	}
}

func TestZipfSharesSumToOne(t *testing.T) {
	z := NewZipf(1.3, 64, 0)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Share(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestZipfFractionalExponent(t *testing.T) {
	// rand.Zipf rejects s <= 1; ours must handle it.
	z := NewZipf(0.9, 100, 3)
	for i := 0; i < 10000; i++ {
		if idx := z.Next(); idx < 0 || idx >= 100 {
			t.Fatalf("draw %d out of range", idx)
		}
	}
}

func TestZipfDeterministicPerSeed(t *testing.T) {
	a, b := NewZipf(1.1, 64, 42), NewZipf(1.1, 64, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}
