package workload

import (
	"math"
	"sort"

	"repro/internal/xhash"
)

// Zipf draws sample indices from a Zipf(s) distribution over [0, n):
// index i is drawn with probability proportional to 1/(i+1)^s. It models
// the skewed access patterns that break placement-only load balancing —
// shared index files, dataset manifests, popular samples under
// importance sampling.
//
// Unlike math/rand's Zipf it supports any s >= 0 (including s < 1 and
// the s = 0 uniform edge) by inverting the explicit cumulative weight
// table: one binary search per draw over n precomputed floats. The
// deterministic seed keeps experiment runs reproducible.
type Zipf struct {
	cum   []float64 // cumulative weights, cum[n-1] = total mass
	state uint64
}

// NewZipf creates a generator over n indices with exponent s (s = 0 is
// uniform; larger s is more skewed). n < 1 is treated as 1.
func NewZipf(s float64, n int, seed int64) *Zipf {
	if n < 1 {
		n = 1
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &Zipf{cum: cum, state: uint64(seed) ^ 0x9E3779B97F4A7C15}
}

// Next draws one index in [0, n).
func (z *Zipf) Next() int {
	u := float64(xhash.SplitMix64(&z.state)>>11) / float64(1<<53)
	target := u * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, target)
}

// N returns the index-space size.
func (z *Zipf) N() int { return len(z.cum) }

// Share returns the probability mass of index i — used by experiments to
// report the theoretical skew next to the measured one.
func (z *Zipf) Share(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	lo := 0.0
	if i > 0 {
		lo = z.cum[i-1]
	}
	return (z.cum[i] - lo) / z.cum[len(z.cum)-1]
}
