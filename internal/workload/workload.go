// Package workload describes the training datasets the experiments read.
// The reference geometry is the paper's CosmoFlow/cosmoUniverse setup:
// 524,288 training samples plus 65,536 validation samples stored as
// individual TFRecord files totalling 1.3 TB (≈2.6 MB per sample) staged
// on the PFS before any run (§V-A). The many-small-files shape is the
// point: it is what makes PFS metadata the bottleneck.
package workload

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/xhash"
)

// Dataset is an immutable description of a file population.
type Dataset struct {
	// Name labels the dataset in experiment output.
	Name string
	// Prefix is the path prefix of every file (the PFS staging directory).
	Prefix string
	// NumFiles is the number of sample files.
	NumFiles int
	// FileBytes is the size of each sample file.
	FileBytes int64
}

// CosmoFlowTrain is the paper's training split at full scale.
func CosmoFlowTrain() Dataset {
	return Dataset{
		Name:      "cosmoUniverse-train",
		Prefix:    "cosmoUniverse/train",
		NumFiles:  524288,
		FileBytes: 2_600_000, // ≈2.6 MB TFRecord per sample, ~1.3 TB total
	}
}

// CosmoFlowValidation is the paper's validation split at full scale.
func CosmoFlowValidation() Dataset {
	return Dataset{
		Name:      "cosmoUniverse-val",
		Prefix:    "cosmoUniverse/val",
		NumFiles:  65536,
		FileBytes: 2_600_000,
	}
}

// Scaled returns a copy shrunk by factor in file count (geometry
// preserved): Scaled(64) has 1/64 of the files. File sizes are kept so
// per-file service times stay realistic. factor < 1 is treated as 1.
func (d Dataset) Scaled(factor int) Dataset {
	if factor < 1 {
		factor = 1
	}
	out := d
	out.NumFiles = d.NumFiles / factor
	if out.NumFiles < 1 {
		out.NumFiles = 1
	}
	out.Name = fmt.Sprintf("%s/%d", d.Name, factor)
	return out
}

// WithFileBytes returns a copy with a different per-file size (for live
// in-process runs where 2.6 MB × thousands of files would waste memory).
func (d Dataset) WithFileBytes(n int64) Dataset {
	out := d
	out.FileBytes = n
	return out
}

// FilePath returns the path of sample i (0-based). It panics when i is
// out of range, which always indicates a sampler bug.
func (d Dataset) FilePath(i int) string {
	if i < 0 || i >= d.NumFiles {
		panic(fmt.Sprintf("workload: sample %d out of range [0,%d)", i, d.NumFiles))
	}
	return fmt.Sprintf("%s/univ_%07d.tfrecord", d.Prefix, i)
}

// AllPaths materializes every file path.
func (d Dataset) AllPaths() []string {
	out := make([]string, d.NumFiles)
	for i := range out {
		out[i] = d.FilePath(i)
	}
	return out
}

// TotalBytes is the full dataset size.
func (d Dataset) TotalBytes() int64 { return int64(d.NumFiles) * d.FileBytes }

// SampleContent deterministically generates the body of sample i: a
// seeded pseudo-random block so reads can be content-verified end to end
// without storing a golden copy.
func (d Dataset) SampleContent(i int) []byte {
	buf := make([]byte, d.FileBytes)
	state := xhash.XXH64String(d.FilePath(i), 0x5EED)
	var word uint64
	for off := range buf {
		if off%8 == 0 {
			word = xhash.SplitMix64(&state)
		}
		buf[off] = byte(word >> (8 * (off % 8)))
	}
	return buf
}

// Stage writes the whole dataset into the PFS — the "dataset is stored on
// the Orion file system before any training run" step. Returns the byte
// total staged.
func (d Dataset) Stage(pfs *storage.PFS) (int64, error) {
	var total int64
	for i := 0; i < d.NumFiles; i++ {
		body := d.SampleContent(i)
		if err := pfs.Put(d.FilePath(i), body); err != nil {
			return total, fmt.Errorf("stage %s: %w", d.FilePath(i), err)
		}
		total += int64(len(body))
	}
	return total, nil
}
