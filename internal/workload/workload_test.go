package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestCosmoFlowGeometry(t *testing.T) {
	train := CosmoFlowTrain()
	if train.NumFiles != 524288 {
		t.Errorf("train files = %d, want 524288", train.NumFiles)
	}
	// ~1.3 TB total, as in the paper.
	tb := float64(train.TotalBytes()) / 1e12
	if tb < 1.2 || tb > 1.5 {
		t.Errorf("train size = %.2f TB, want ~1.3", tb)
	}
	val := CosmoFlowValidation()
	if val.NumFiles != 65536 {
		t.Errorf("val files = %d, want 65536", val.NumFiles)
	}
}

func TestScaled(t *testing.T) {
	d := CosmoFlowTrain()
	s := d.Scaled(64)
	if s.NumFiles != d.NumFiles/64 {
		t.Errorf("scaled files = %d", s.NumFiles)
	}
	if s.FileBytes != d.FileBytes {
		t.Error("scaling must preserve file size")
	}
	if !strings.Contains(s.Name, "/64") {
		t.Errorf("scaled name = %q", s.Name)
	}
	// Degenerate factors.
	if d.Scaled(0).NumFiles != d.NumFiles {
		t.Error("factor < 1 should be treated as 1")
	}
	if d.Scaled(1<<30).NumFiles != 1 {
		t.Error("over-scaling should clamp to 1 file")
	}
}

func TestWithFileBytes(t *testing.T) {
	d := CosmoFlowTrain().WithFileBytes(512)
	if d.FileBytes != 512 || d.NumFiles != 524288 {
		t.Errorf("got %+v", d)
	}
}

func TestFilePathStableAndUnique(t *testing.T) {
	d := Dataset{Name: "t", Prefix: "p", NumFiles: 100, FileBytes: 10}
	seen := map[string]bool{}
	for i := 0; i < d.NumFiles; i++ {
		p := d.FilePath(i)
		if seen[p] {
			t.Fatalf("duplicate path %q", p)
		}
		seen[p] = true
		if !strings.HasPrefix(p, "p/") {
			t.Fatalf("path %q missing prefix", p)
		}
	}
	if d.FilePath(7) != d.FilePath(7) {
		t.Error("paths must be stable")
	}
}

func TestFilePathPanicsOutOfRange(t *testing.T) {
	d := Dataset{NumFiles: 3}
	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FilePath(%d) should panic", i)
				}
			}()
			d.FilePath(i)
		}()
	}
}

func TestAllPaths(t *testing.T) {
	d := Dataset{Prefix: "x", NumFiles: 5, FileBytes: 1}
	paths := d.AllPaths()
	if len(paths) != 5 {
		t.Fatalf("len = %d", len(paths))
	}
	for i, p := range paths {
		if p != d.FilePath(i) {
			t.Errorf("paths[%d] mismatch", i)
		}
	}
}

func TestSampleContentDeterministicAndDistinct(t *testing.T) {
	d := Dataset{Prefix: "x", NumFiles: 4, FileBytes: 256}
	a := d.SampleContent(0)
	b := d.SampleContent(0)
	if !bytes.Equal(a, b) {
		t.Error("content must be deterministic")
	}
	if int64(len(a)) != d.FileBytes {
		t.Errorf("content length = %d", len(a))
	}
	c := d.SampleContent(1)
	if bytes.Equal(a, c) {
		t.Error("different samples must differ")
	}
	// Content should not be trivially compressible (all zeros).
	zeros := 0
	for _, x := range a {
		if x == 0 {
			zeros++
		}
	}
	if zeros > len(a)/2 {
		t.Errorf("content looks degenerate: %d/%d zero bytes", zeros, len(a))
	}
}

func TestStage(t *testing.T) {
	d := Dataset{Prefix: "s", NumFiles: 8, FileBytes: 64}
	pfs := storage.NewPFS()
	n, err := d.Stage(pfs)
	if err != nil {
		t.Fatal(err)
	}
	if n != d.TotalBytes() {
		t.Errorf("staged %d bytes, want %d", n, d.TotalBytes())
	}
	objs, b := pfs.Stats()
	if objs != 8 || b != 8*64 {
		t.Errorf("pfs stats = %d, %d", objs, b)
	}
	got, err := pfs.Get(d.FilePath(3))
	if err != nil || !bytes.Equal(got, d.SampleContent(3)) {
		t.Errorf("staged content mismatch: %v", err)
	}
}

func BenchmarkSampleContent(b *testing.B) {
	d := Dataset{Prefix: "x", NumFiles: 1, FileBytes: 1 << 20}
	b.SetBytes(d.FileBytes)
	for i := 0; i < b.N; i++ {
		d.SampleContent(0)
	}
}
