package cluster

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// driveDead records timeouts until the tracker declares node failed.
func driveDead(t *testing.T, tr *Tracker, node NodeID) {
	t.Helper()
	for i := 0; i < tr.Limit(); i++ {
		tr.RecordTimeout(node)
	}
	if tr.IsAlive(node) {
		t.Fatalf("%s still alive after %d timeouts", node, tr.Limit())
	}
}

func TestReviveRestoresAlive(t *testing.T) {
	tr := NewTracker(members(3), 2)
	driveDead(t, tr, "node-01")
	if !tr.Revive("node-01") {
		t.Fatal("Revive of a failed node returned false")
	}
	if !tr.IsAlive("node-01") {
		t.Error("node not alive after Revive")
	}
	if got := tr.TimeoutCount("node-01"); got != 0 {
		t.Errorf("timeout count = %d after Revive, want 0 (stale evidence must not survive)", got)
	}
	// The revived node must be able to be declared dead again.
	driveDead(t, tr, "node-01")
}

func TestDoubleReviveIdempotent(t *testing.T) {
	tr := NewTracker(members(2), 1)
	fired := 0
	tr.OnRecovery(func(NodeID) { fired++ })
	driveDead(t, tr, "node-00")
	if !tr.Revive("node-00") {
		t.Fatal("first Revive returned false")
	}
	if tr.Revive("node-00") {
		t.Error("second Revive of an alive node returned true")
	}
	if tr.Revive("node-never-existed") {
		t.Error("Revive of an unknown node returned true")
	}
	if fired != 1 {
		t.Errorf("recovery listeners fired %d times, want 1", fired)
	}
}

func TestReviveListenerOrderingInTrace(t *testing.T) {
	trace := telemetry.Default().Trace()
	since := trace.Seq()
	tr := NewTracker([]NodeID{"trace-node-a", "trace-node-b"}, 1)
	recovered := make(chan NodeID, 1)
	tr.OnRecovery(func(n NodeID) { recovered <- n })

	driveDead(t, tr, "trace-node-a")
	tr.Revive("trace-node-a")

	select {
	case n := <-recovered:
		if n != "trace-node-a" {
			t.Errorf("recovery listener got %s", n)
		}
	case <-time.After(time.Second):
		t.Fatal("recovery listener never fired")
	}

	// The trace must show this node's dead event strictly before its
	// revived event: consumers replaying the trace reconstruct membership
	// and a reordered pair would resurrect a node before it died.
	var deadSeq, revivedSeq uint64
	for _, ev := range trace.Since(since) {
		if ev.Node != "trace-node-a" {
			continue
		}
		switch ev.Type {
		case telemetry.EventNodeDead:
			if deadSeq == 0 {
				deadSeq = ev.Seq
			}
		case telemetry.EventNodeRevived:
			if revivedSeq == 0 {
				revivedSeq = ev.Seq
			}
		}
	}
	if deadSeq == 0 || revivedSeq == 0 {
		t.Fatalf("missing trace events: deadSeq=%d revivedSeq=%d", deadSeq, revivedSeq)
	}
	if deadSeq >= revivedSeq {
		t.Errorf("dead event (seq %d) not before revived event (seq %d)", deadSeq, revivedSeq)
	}
}

func TestReviveFailedNodesShrink(t *testing.T) {
	tr := NewTracker(members(4), 1)
	driveDead(t, tr, "node-01")
	driveDead(t, tr, "node-03")
	if got := len(tr.FailedNodes()); got != 2 {
		t.Fatalf("failed nodes = %d, want 2", got)
	}
	tr.Revive("node-01")
	failed := tr.FailedNodes()
	if len(failed) != 1 || failed[0] != "node-03" {
		t.Errorf("failed nodes after revive = %v, want [node-03]", failed)
	}
}
