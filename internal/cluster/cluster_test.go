package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func members(n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(fmt.Sprintf("node-%02d", i))
	}
	return out
}

func TestThresholdDeclaration(t *testing.T) {
	tr := NewTracker(members(4), 3)
	n := NodeID("node-01")
	if tr.RecordTimeout(n) {
		t.Error("1st timeout must not declare failure")
	}
	if tr.StatusOf(n) != Suspect {
		t.Errorf("status = %v, want Suspect", tr.StatusOf(n))
	}
	if tr.RecordTimeout(n) {
		t.Error("2nd timeout must not declare failure")
	}
	if !tr.RecordTimeout(n) {
		t.Error("3rd timeout must declare failure")
	}
	if tr.StatusOf(n) != Failed || tr.IsAlive(n) {
		t.Error("node should be failed")
	}
	// Further timeouts are no-ops, not re-declarations.
	if tr.RecordTimeout(n) {
		t.Error("timeout after failure must not re-declare")
	}
}

func TestSuccessResetsCounter(t *testing.T) {
	tr := NewTracker(members(2), 3)
	n := NodeID("node-00")
	tr.RecordTimeout(n)
	tr.RecordTimeout(n)
	tr.RecordSuccess(n) // transient blip resolved
	if tr.TimeoutCount(n) != 0 {
		t.Errorf("count = %d after success", tr.TimeoutCount(n))
	}
	if tr.StatusOf(n) != Alive {
		t.Errorf("status = %v, want Alive", tr.StatusOf(n))
	}
	// Needs a full fresh run of timeouts to fail now.
	tr.RecordTimeout(n)
	tr.RecordTimeout(n)
	if tr.StatusOf(n) == Failed {
		t.Error("failed with only 2 consecutive timeouts after reset")
	}
	if !tr.RecordTimeout(n) {
		t.Error("3rd consecutive timeout should fail the node")
	}
}

func TestSuccessCannotResurrect(t *testing.T) {
	tr := NewTracker(members(2), 1)
	n := NodeID("node-00")
	tr.RecordTimeout(n)
	tr.RecordSuccess(n) // late response from a declared-dead node
	if tr.IsAlive(n) {
		t.Error("failed node must stay failed within a job")
	}
}

func TestListenersFireOncePerNode(t *testing.T) {
	tr := NewTracker(members(3), 2)
	var calls []NodeID
	tr.OnFailure(func(n NodeID) { calls = append(calls, n) })
	tr.OnFailure(func(n NodeID) { calls = append(calls, n) }) // second listener

	n := NodeID("node-02")
	tr.RecordTimeout(n)
	tr.RecordTimeout(n)
	tr.RecordTimeout(n) // past threshold; must not refire
	tr.MarkFailed(n)    // already failed; must not refire
	if len(calls) != 2 || calls[0] != n || calls[1] != n {
		t.Errorf("listener calls = %v, want [%s %s]", calls, n, n)
	}
}

func TestMarkFailed(t *testing.T) {
	tr := NewTracker(members(3), 3)
	n := NodeID("node-01")
	if !tr.MarkFailed(n) {
		t.Error("first MarkFailed should report transition")
	}
	if tr.MarkFailed(n) {
		t.Error("second MarkFailed should be a no-op")
	}
	if tr.MarkFailed("ghost") {
		t.Error("unknown node cannot be marked")
	}
	if got := tr.FailedNodes(); len(got) != 1 || got[0] != n {
		t.Errorf("FailedNodes = %v", got)
	}
	if got := tr.Alive(); len(got) != 2 {
		t.Errorf("Alive = %v", got)
	}
}

func TestUnknownNodesAlwaysFailed(t *testing.T) {
	tr := NewTracker(members(2), 2)
	if tr.IsAlive("ghost") {
		t.Error("unknown node reported alive")
	}
	if tr.StatusOf("ghost") != Failed {
		t.Error("unknown node status should be Failed")
	}
	if tr.RecordTimeout("ghost") {
		t.Error("timeout on unknown node should be ignored")
	}
}

func TestDefaultLimit(t *testing.T) {
	tr := NewTracker(members(1), 0)
	if tr.Limit() != DefaultTimeoutLimit {
		t.Errorf("limit = %d", tr.Limit())
	}
}

func TestMembersSortedAndImmutable(t *testing.T) {
	tr := NewTracker([]NodeID{"c", "a", "b"}, 1)
	got := tr.Members()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Members = %v", got)
	}
	got[0] = "mutated"
	if tr.Members()[0] != "a" {
		t.Error("Members leaked internal slice")
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{Alive: "alive", Suspect: "suspect", Failed: "failed", Status(9): "unknown"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestConcurrentTimeoutsSingleDeclaration(t *testing.T) {
	// Many goroutines hammer timeouts for the same node; exactly one
	// must observe the declaration and listeners fire exactly once.
	tr := NewTracker(members(1), 100)
	var fired atomic.Int32
	tr.OnFailure(func(NodeID) { fired.Add(1) })
	var declared atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if tr.RecordTimeout("node-00") {
					declared.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if declared.Load() != 1 {
		t.Errorf("declared %d times, want exactly 1", declared.Load())
	}
	if fired.Load() != 1 {
		t.Errorf("listener fired %d times, want exactly 1", fired.Load())
	}
}

func TestAliveShrinksInOrder(t *testing.T) {
	tr := NewTracker(members(5), 1)
	tr.RecordTimeout("node-03")
	tr.RecordTimeout("node-00")
	alive := tr.Alive()
	want := []NodeID{"node-01", "node-02", "node-04"}
	if len(alive) != len(want) {
		t.Fatalf("alive = %v", alive)
	}
	for i := range want {
		if alive[i] != want[i] {
			t.Errorf("alive[%d] = %s, want %s", i, alive[i], want[i])
		}
	}
}

func BenchmarkRecordSuccess(b *testing.B) {
	tr := NewTracker(members(64), 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.RecordSuccess("node-07")
	}
}

func BenchmarkIsAlive(b *testing.B) {
	tr := NewTracker(members(1024), 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.IsAlive("node-0512")
	}
}
