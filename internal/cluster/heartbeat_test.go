package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakePinger fails for nodes in the dead set.
type fakePinger struct {
	mu    sync.Mutex
	dead  map[NodeID]bool
	calls map[NodeID]int
}

func newFakePinger() *fakePinger {
	return &fakePinger{dead: make(map[NodeID]bool), calls: make(map[NodeID]int)}
}

func (p *fakePinger) kill(n NodeID) {
	p.mu.Lock()
	p.dead[n] = true
	p.mu.Unlock()
}

func (p *fakePinger) Ping(_ context.Context, n NodeID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls[n]++
	if p.dead[n] {
		return errors.New("probe timeout")
	}
	return nil
}

func TestHeartbeatDetectsDeadNode(t *testing.T) {
	tr := NewTracker(members(4), 2)
	p := newFakePinger()
	declared := make(chan NodeID, 1)
	tr.OnFailure(func(n NodeID) { declared <- n })

	hb := NewHeartbeat(tr, p, HeartbeatConfig{Interval: 5 * time.Millisecond})
	p.kill("node-02")
	hb.Start()
	defer hb.Stop()

	select {
	case n := <-declared:
		if n != "node-02" {
			t.Errorf("declared %s, want node-02", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeat never declared the dead node")
	}
	if tr.IsAlive("node-02") {
		t.Error("node still alive after declaration")
	}
	// Healthy nodes stay alive.
	for _, n := range []NodeID{"node-00", "node-01", "node-03"} {
		if !tr.IsAlive(n) {
			t.Errorf("%s wrongly declared", n)
		}
	}
}

func TestHeartbeatSkipsDeclaredNodes(t *testing.T) {
	tr := NewTracker(members(2), 1)
	p := newFakePinger()
	hb := NewHeartbeat(tr, p, HeartbeatConfig{Interval: 5 * time.Millisecond})
	p.kill("node-01")
	hb.Start()
	// Wait for detection plus several more rounds.
	deadline := time.After(2 * time.Second)
	for tr.IsAlive("node-01") {
		select {
		case <-deadline:
			t.Fatal("never detected")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	p.mu.Lock()
	callsAtDetection := p.calls["node-01"]
	p.mu.Unlock()
	for hb.Rounds() < 20 {
		time.Sleep(time.Millisecond)
	}
	hb.Stop()
	p.mu.Lock()
	callsAfter := p.calls["node-01"]
	p.mu.Unlock()
	// Dead nodes drop out of Alive() and must not keep being probed
	// (allow one in-flight round of slack).
	if callsAfter > callsAtDetection+2 {
		t.Errorf("dead node probed %d more times after declaration", callsAfter-callsAtDetection)
	}
}

func TestHeartbeatTransientBlipNoDeclaration(t *testing.T) {
	tr := NewTracker(members(1), 3)
	p := newFakePinger()
	hb := NewHeartbeat(tr, p, HeartbeatConfig{Interval: 3 * time.Millisecond})
	hb.Start()
	// One failed probe, then recovery: with limit 3 nothing declares.
	p.kill("node-00")
	time.Sleep(5 * time.Millisecond)
	p.mu.Lock()
	p.dead["node-00"] = false
	p.mu.Unlock()
	time.Sleep(30 * time.Millisecond)
	hb.Stop()
	if !tr.IsAlive("node-00") {
		t.Error("transient blip should not declare failure")
	}
}

func TestHeartbeatStartStopIdempotent(t *testing.T) {
	tr := NewTracker(members(2), 2)
	hb := NewHeartbeat(tr, newFakePinger(), HeartbeatConfig{Interval: time.Millisecond})
	hb.Stop() // before start: no-op
	hb.Start()
	hb.Start() // double start: no-op
	for hb.Rounds() < 3 {
		time.Sleep(time.Millisecond)
	}
	hb.Stop()
	hb.Stop() // double stop: no-op
	rounds := hb.Rounds()
	time.Sleep(10 * time.Millisecond)
	if hb.Rounds() != rounds {
		t.Error("probing continued after Stop")
	}
}

func TestHeartbeatDefaults(t *testing.T) {
	hb := NewHeartbeat(NewTracker(members(1), 1), newFakePinger(), HeartbeatConfig{})
	if hb.cfg.Interval != 500*time.Millisecond {
		t.Errorf("interval = %v", hb.cfg.Interval)
	}
	if hb.cfg.Timeout != 250*time.Millisecond {
		t.Errorf("timeout = %v", hb.cfg.Timeout)
	}
	if hb.cfg.Parallelism != 8 {
		t.Errorf("parallelism = %d", hb.cfg.Parallelism)
	}
	if hb.cfg.Jitter != DefaultHeartbeatJitter {
		t.Errorf("jitter = %v, want default %v", hb.cfg.Jitter, DefaultHeartbeatJitter)
	}
}

func TestHeartbeatJitterVariesIntervals(t *testing.T) {
	const interval = 100 * time.Millisecond
	hb := NewHeartbeat(NewTracker(members(1), 1), newFakePinger(),
		HeartbeatConfig{Interval: interval, Jitter: 0.1})
	lo, hi := 90*time.Millisecond, 110*time.Millisecond
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		w := hb.nextWait()
		if w < lo || w > hi {
			t.Fatalf("wait %v outside jitter band [%v, %v]", w, lo, hi)
		}
		seen[w] = true
	}
	if len(seen) < 2 {
		t.Error("64 jittered waits were all identical — probes would stay synchronized")
	}

	// Negative jitter disables: every wait is exactly the interval.
	fixed := NewHeartbeat(NewTracker(members(1), 1), newFakePinger(),
		HeartbeatConfig{Interval: interval, Jitter: -1})
	for i := 0; i < 8; i++ {
		if w := fixed.nextWait(); w != interval {
			t.Fatalf("jitter disabled but wait = %v", w)
		}
	}
}

func TestHeartbeatRevivesAfterThreshold(t *testing.T) {
	tr := NewTracker(members(2), 1)
	p := newFakePinger()
	revived := make(chan NodeID, 4)
	hb := NewHeartbeat(tr, p, HeartbeatConfig{
		Interval:        3 * time.Millisecond,
		ReviveThreshold: 3,
		OnRevive: func(n NodeID) {
			tr.Revive(n)
			revived <- n
		},
	})
	p.kill("node-01")
	hb.Start()
	defer hb.Stop()

	deadline := time.After(2 * time.Second)
	for tr.IsAlive("node-01") {
		select {
		case <-deadline:
			t.Fatal("never detected the dead node")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Node restarts: revival probes must see ReviveThreshold consecutive
	// successes and then fire OnRevive exactly once.
	p.mu.Lock()
	p.dead["node-01"] = false
	callsAtRestart := p.calls["node-01"]
	p.mu.Unlock()
	select {
	case n := <-revived:
		if n != "node-01" {
			t.Fatalf("revived %s, want node-01", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnRevive never fired")
	}
	if !tr.IsAlive("node-01") {
		t.Error("node not alive after OnRevive → Revive")
	}
	p.mu.Lock()
	probes := p.calls["node-01"] - callsAtRestart
	p.mu.Unlock()
	if probes < 3 {
		t.Errorf("OnRevive fired after %d post-restart probes, want >= threshold 3", probes)
	}
	// No duplicate firings while the node stays healthy.
	time.Sleep(30 * time.Millisecond)
	select {
	case n := <-revived:
		t.Errorf("OnRevive fired again for %s after revival", n)
	default:
	}
}

func TestHeartbeatDefaultOnReviveUsesTracker(t *testing.T) {
	tr := NewTracker(members(1), 1)
	p := newFakePinger()
	hb := NewHeartbeat(tr, p, HeartbeatConfig{Interval: 2 * time.Millisecond, ReviveThreshold: 2})
	p.kill("node-00")
	hb.Start()
	defer hb.Stop()
	deadline := time.After(2 * time.Second)
	for tr.IsAlive("node-00") {
		select {
		case <-deadline:
			t.Fatal("never detected")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	p.mu.Lock()
	p.dead["node-00"] = false
	p.mu.Unlock()
	deadline = time.After(2 * time.Second)
	for !tr.IsAlive("node-00") {
		select {
		case <-deadline:
			t.Fatal("nil OnRevive never revived via the tracker")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestHeartbeatFlappingNodeResetsStreak(t *testing.T) {
	tr := NewTracker(members(1), 1)
	p := newFakePinger()
	var fired int
	var firedMu sync.Mutex
	hb := NewHeartbeat(tr, p, HeartbeatConfig{
		Interval:        2 * time.Millisecond,
		ReviveThreshold: 1000, // unreachably high: OnRevive must never fire
		OnRevive: func(NodeID) {
			firedMu.Lock()
			fired++
			firedMu.Unlock()
		},
	})
	p.kill("node-00")
	hb.Start()
	deadline := time.After(2 * time.Second)
	for tr.IsAlive("node-00") {
		select {
		case <-deadline:
			t.Fatal("never detected")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Flap: alternate the node up and down across rounds.
	for i := 0; i < 10; i++ {
		p.mu.Lock()
		p.dead["node-00"] = i%2 == 0
		p.mu.Unlock()
		time.Sleep(4 * time.Millisecond)
	}
	hb.Stop()
	firedMu.Lock()
	defer firedMu.Unlock()
	if fired != 0 {
		t.Errorf("OnRevive fired %d times below the streak threshold", fired)
	}
	if tr.IsAlive("node-00") {
		t.Error("flapping node was resurrected without OnRevive")
	}
}
