// Package cluster implements per-client membership tracking and the
// timeout-based failure detector FT-Cache uses (paper §IV-A):
//
//	"Each HVAC client tracks active and faulty nodes, monitoring for
//	 timeouts on each request. Upon a timeout, the client increments a
//	 counter ... Once the timeout count for a specific node reaches a
//	 predefined threshold, that node is flagged as failed."
//
// The counter exists to absorb transient network delays (false-positive
// mitigation); a successful response resets it. Detection is purely
// local — no inter-node communication — which is exactly what lets every
// client converge on the same post-failure hash ring independently.
package cluster

import (
	"sort"
	"sync"
	"time"

	"repro/internal/hashring"
	"repro/internal/telemetry"
)

// detectorMetrics aggregate detection observables across every Tracker
// in the process (one per client rank; they detect independently, and
// the paper's detection-latency claim is about the distribution).
type detectorMetrics struct {
	suspected     *telemetry.Counter   // Alive → Suspect transitions
	declared      *telemetry.Counter   // Suspect → Failed declarations
	resets        *telemetry.Counter   // suspicion cleared by a success
	suspectToDead *telemetry.Histogram // first timeout → declaration latency
}

var (
	detMetricsOnce sync.Once
	detMetricsInst *detectorMetrics
)

func detMetrics() *detectorMetrics {
	detMetricsOnce.Do(func() {
		reg := telemetry.Default()
		detMetricsInst = &detectorMetrics{
			suspected:     reg.Counter("ftc_detect_suspected_total"),
			declared:      reg.Counter("ftc_detect_declared_dead_total"),
			resets:        reg.Counter("ftc_detect_suspect_resets_total"),
			suspectToDead: reg.Histogram("ftc_detect_suspect_to_dead_seconds"),
		}
	})
	return detMetricsInst
}

// NodeID aliases the cluster-wide node identifier.
type NodeID = hashring.NodeID

// DefaultTimeoutLimit mirrors the artifact's TIMEOUT_LIMIT knob: the
// number of consecutive RPC timeouts after which a node is declared
// failed.
const DefaultTimeoutLimit = 3

// Status describes a tracked node.
type Status uint8

// Node statuses.
const (
	// Alive is a node with no outstanding suspicion.
	Alive Status = iota
	// Suspect is a node with 1..limit-1 consecutive timeouts.
	Suspect
	// Failed is a node past the timeout threshold (or manually marked).
	Failed
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	default:
		return "unknown"
	}
}

// Tracker is a goroutine-safe failure detector over a fixed initial
// membership. Failure listeners fire exactly once per node, outside the
// tracker lock, in declaration order.
type Tracker struct {
	limit int

	mu        sync.Mutex
	counts    map[NodeID]int
	failed    map[NodeID]bool
	suspectAt map[NodeID]time.Time // first-timeout instant, while suspect
	members   []NodeID             // sorted, fixed at construction
	memberSet map[NodeID]bool
	listeners []func(NodeID)
	// recovery listeners fire when a failed node is explicitly revived
	// (elastic scale-up; never triggered by late responses).
	recoveryListeners []func(NodeID)
}

// NewTracker creates a Tracker over nodes. limit <= 0 selects
// DefaultTimeoutLimit.
func NewTracker(nodes []NodeID, limit int) *Tracker {
	if limit <= 0 {
		limit = DefaultTimeoutLimit
	}
	t := &Tracker{
		limit:     limit,
		counts:    make(map[NodeID]int, len(nodes)),
		failed:    make(map[NodeID]bool),
		suspectAt: make(map[NodeID]time.Time),
		memberSet: make(map[NodeID]bool, len(nodes)),
	}
	t.members = append(t.members, nodes...)
	sort.Slice(t.members, func(i, j int) bool { return t.members[i] < t.members[j] })
	for _, n := range t.members {
		t.memberSet[n] = true
	}
	return t
}

// Limit returns the configured timeout threshold.
func (t *Tracker) Limit() int { return t.limit }

// OnFailure registers fn to be called when a node is declared failed.
// Listeners registered after a node already failed are NOT retroactively
// invoked; register before serving traffic.
func (t *Tracker) OnFailure(fn func(NodeID)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.listeners = append(t.listeners, fn)
}

// RecordTimeout notes one RPC timeout against node. It returns true when
// this call crossed the threshold and declared the node failed. Timeouts
// against unknown or already-failed nodes are ignored.
//
// Telemetry ordering guarantee: for a given declaration, the
// node-suspected event precedes node-declared-dead, which precedes the
// failure listeners (and therefore any ring-membership-change /
// recache-planned events they emit).
func (t *Tracker) RecordTimeout(node NodeID) bool {
	now := time.Now()
	t.mu.Lock()
	if !t.memberSet[node] || t.failed[node] {
		t.mu.Unlock()
		return false
	}
	t.counts[node]++
	count := t.counts[node]
	suspected := count == 1
	if suspected {
		t.suspectAt[node] = now
	}
	if count < t.limit {
		t.mu.Unlock()
		if suspected {
			detMetrics().suspected.Inc()
			telemetry.TraceEvent(telemetry.EventNodeSuspected, string(node), "timeout", int64(count))
		}
		return false
	}
	t.failed[node] = true
	firstTimeout := t.suspectAt[node]
	delete(t.suspectAt, node)
	listeners := append(make([]func(NodeID), 0, len(t.listeners)), t.listeners...)
	t.mu.Unlock()
	m := detMetrics()
	if suspected {
		// limit == 1: the same timeout both suspects and declares.
		m.suspected.Inc()
		telemetry.TraceEvent(telemetry.EventNodeSuspected, string(node), "timeout", int64(count))
	}
	latency := now.Sub(firstTimeout)
	m.declared.Inc()
	m.suspectToDead.Observe(int64(latency))
	telemetry.TraceEvent(telemetry.EventNodeDead, string(node), "timeout-limit", int64(latency))
	for _, fn := range listeners {
		fn(node)
	}
	return true
}

// RecordSuccess resets node's timeout counter: a transient delay followed
// by a response must not accumulate toward failure. Successes from
// already-failed nodes are ignored — the paper's design never resurrects
// a node mid-job (a rejoin arrives via elastic restart instead).
func (t *Tracker) RecordSuccess(node NodeID) {
	t.mu.Lock()
	wasSuspect := t.counts[node] > 0 && !t.failed[node]
	if !t.failed[node] {
		t.counts[node] = 0
		delete(t.suspectAt, node)
	}
	t.mu.Unlock()
	if wasSuspect {
		// A transient delay survived: the detection timer ran but did
		// not fire — the false-positive-mitigation outcome.
		detMetrics().resets.Inc()
	}
}

// MarkFailed force-declares node failed (fault injection, or external
// knowledge such as a scheduler DRAIN event). Returns true if the node
// transitioned now.
func (t *Tracker) MarkFailed(node NodeID) bool {
	now := time.Now()
	t.mu.Lock()
	if !t.memberSet[node] || t.failed[node] {
		t.mu.Unlock()
		return false
	}
	t.failed[node] = true
	firstTimeout, wasSuspect := t.suspectAt[node]
	delete(t.suspectAt, node)
	listeners := append(make([]func(NodeID), 0, len(t.listeners)), t.listeners...)
	t.mu.Unlock()
	m := detMetrics()
	m.declared.Inc()
	var latency time.Duration
	if wasSuspect {
		latency = now.Sub(firstTimeout)
		m.suspectToDead.Observe(int64(latency))
	}
	telemetry.TraceEvent(telemetry.EventNodeDead, string(node), "forced", int64(latency))
	for _, fn := range listeners {
		fn(node)
	}
	return true
}

// OnRecovery registers fn to be called when a failed node is revived via
// Revive. Like failure listeners, recovery listeners run outside the
// tracker lock.
func (t *Tracker) OnRecovery(fn func(NodeID)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recoveryListeners = append(t.recoveryListeners, fn)
}

// Revive re-admits a previously failed member: elastic scale-up after
// the scheduler hands the job a replacement (or repaired) node. This is
// an explicit administrative action — unlike RecordSuccess, which never
// resurrects, because a single late packet must not undo a declaration.
// Returns true if the node transitioned back to Alive.
func (t *Tracker) Revive(node NodeID) bool {
	t.mu.Lock()
	if !t.memberSet[node] || !t.failed[node] {
		t.mu.Unlock()
		return false
	}
	delete(t.failed, node)
	t.counts[node] = 0
	delete(t.suspectAt, node)
	listeners := append(make([]func(NodeID), 0, len(t.recoveryListeners)), t.recoveryListeners...)
	t.mu.Unlock()
	telemetry.TraceEvent(telemetry.EventNodeRevived, string(node), "", 0)
	for _, fn := range listeners {
		fn(node)
	}
	return true
}

// StatusOf returns node's current status; unknown nodes report Failed so
// callers never route to them.
func (t *Tracker) StatusOf(node NodeID) Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case !t.memberSet[node] || t.failed[node]:
		return Failed
	case t.counts[node] > 0:
		return Suspect
	default:
		return Alive
	}
}

// IsAlive reports whether node is a member not declared failed
// (Suspect counts as alive — it still receives traffic).
func (t *Tracker) IsAlive(node NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.memberSet[node] && !t.failed[node]
}

// Alive returns the live members in sorted order.
func (t *Tracker) Alive() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, len(t.members))
	for _, n := range t.members {
		if !t.failed[n] {
			out = append(out, n)
		}
	}
	return out
}

// FailedNodes returns the declared-failed members in sorted order.
func (t *Tracker) FailedNodes() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, len(t.failed))
	for _, n := range t.members {
		if t.failed[n] {
			out = append(out, n)
		}
	}
	return out
}

// Members returns the full initial membership in sorted order.
func (t *Tracker) Members() []NodeID {
	return append([]NodeID(nil), t.members...)
}

// TimeoutCount returns node's current consecutive-timeout count.
func (t *Tracker) TimeoutCount(node NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[node]
}
