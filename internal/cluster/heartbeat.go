package cluster

import (
	"context"
	"sync"
	"time"
)

// The paper's detector is passive: failures surface only when a read
// addressed to the dead node times out, so detection latency is bounded
// by TTL × TIMEOUT_LIMIT *after* the first unlucky request. Heartbeat is
// the proactive alternative: a background prober that feeds the same
// Tracker, declaring nodes dead within Interval × FailThreshold of the
// failure even if no reads touched them — at the cost of steady
// background RPC chatter. The ablation in bench_test.go compares the
// two; production FT-Cache can run both against one Tracker since the
// evidence model (consecutive timeouts, success resets) is shared.

// Pinger probes a node; a non-nil error is failure evidence.
type Pinger interface {
	Ping(ctx context.Context, node NodeID) error
}

// PingerFunc adapts a function to Pinger.
type PingerFunc func(ctx context.Context, node NodeID) error

// Ping implements Pinger.
func (f PingerFunc) Ping(ctx context.Context, node NodeID) error { return f(ctx, node) }

// HeartbeatConfig tunes the prober.
type HeartbeatConfig struct {
	// Interval between probe rounds; <= 0 selects 500ms.
	Interval time.Duration
	// Timeout per probe; <= 0 selects Interval/2.
	Timeout time.Duration
	// Parallelism bounds concurrent probes per round; <= 0 selects 8.
	Parallelism int
}

// Heartbeat periodically probes every live member of a Tracker.
type Heartbeat struct {
	cfg     HeartbeatConfig
	tracker *Tracker
	pinger  Pinger

	mu      sync.Mutex
	cancel  context.CancelFunc
	done    chan struct{}
	rounds  int
	started bool
}

// NewHeartbeat creates a prober bound to tracker and pinger.
func NewHeartbeat(tracker *Tracker, pinger Pinger, cfg HeartbeatConfig) *Heartbeat {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval / 2
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 8
	}
	return &Heartbeat{cfg: cfg, tracker: tracker, pinger: pinger}
}

// Start launches the probe loop; calling Start twice is a no-op.
func (h *Heartbeat) Start() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.started {
		return
	}
	h.started = true
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.done = make(chan struct{})
	go h.loop(ctx)
}

// Stop halts probing and waits for the loop to exit. Safe to call
// without Start or repeatedly.
func (h *Heartbeat) Stop() {
	h.mu.Lock()
	if !h.started {
		h.mu.Unlock()
		return
	}
	h.started = false
	cancel, done := h.cancel, h.done
	h.mu.Unlock()
	cancel()
	<-done
}

// Rounds returns how many probe rounds have completed.
func (h *Heartbeat) Rounds() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rounds
}

func (h *Heartbeat) loop(ctx context.Context) {
	defer close(h.done)
	ticker := time.NewTicker(h.cfg.Interval)
	defer ticker.Stop()
	for {
		h.probeRound(ctx)
		h.mu.Lock()
		h.rounds++
		h.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// probeRound pings every live member and feeds the tracker.
func (h *Heartbeat) probeRound(ctx context.Context) {
	alive := h.tracker.Alive()
	sem := make(chan struct{}, h.cfg.Parallelism)
	var wg sync.WaitGroup
	for _, node := range alive {
		node := node
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			probeCtx, cancel := context.WithTimeout(ctx, h.cfg.Timeout)
			defer cancel()
			if err := h.pinger.Ping(probeCtx, node); err != nil {
				if ctx.Err() == nil { // don't count shutdown as evidence
					h.tracker.RecordTimeout(node)
				}
				return
			}
			h.tracker.RecordSuccess(node)
		}()
	}
	wg.Wait()
}
