package cluster

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// The paper's detector is passive: failures surface only when a read
// addressed to the dead node times out, so detection latency is bounded
// by TTL × TIMEOUT_LIMIT *after* the first unlucky request. Heartbeat is
// the proactive alternative: a background prober that feeds the same
// Tracker, declaring nodes dead within Interval × FailThreshold of the
// failure even if no reads touched them — at the cost of steady
// background RPC chatter. The ablation in bench_test.go compares the
// two; production FT-Cache can run both against one Tracker since the
// evidence model (consecutive timeouts, success resets) is shared.
//
// Heartbeat is also the recovery sensor: with ReviveThreshold > 0 it
// keeps probing *declared-failed* nodes, and when one answers K
// consecutive probes the OnRevive hook fires — the trigger for the
// elastic rejoin path (Tracker.Revive → ring re-add → NVMe warmup).
// Requiring K consecutive successes mirrors the failure side's
// consecutive-timeout threshold: a single lucky packet from a flapping
// node must not re-admit it, just as a single lost packet must not
// declare it dead.

// Pinger probes a node; a non-nil error is failure evidence.
type Pinger interface {
	Ping(ctx context.Context, node NodeID) error
}

// PingerFunc adapts a function to Pinger.
type PingerFunc func(ctx context.Context, node NodeID) error

// Ping implements Pinger.
func (f PingerFunc) Ping(ctx context.Context, node NodeID) error { return f(ctx, node) }

// HeartbeatConfig tunes the prober.
type HeartbeatConfig struct {
	// Interval between probe rounds; <= 0 selects 500ms.
	Interval time.Duration
	// Timeout per probe; <= 0 selects Interval/2.
	Timeout time.Duration
	// Parallelism bounds concurrent probes per round; <= 0 selects 8.
	Parallelism int
	// Jitter is the fraction of Interval each round's wait is randomly
	// shifted by (uniform in ±Jitter×Interval). After a mass event every
	// client's prober fires on the same schedule; without jitter those
	// synchronized probe storms hit the surviving nodes as one pulse per
	// interval. 0 selects DefaultHeartbeatJitter; negative disables.
	Jitter float64
	// ReviveThreshold enables recovery probing: failed nodes keep being
	// probed, and after this many consecutive successful probes OnRevive
	// fires for the node. 0 disables recovery probing (failed nodes are
	// never probed — the pre-rejoin behavior).
	ReviveThreshold int
	// OnRevive is invoked (from a prober goroutine) when a failed node
	// passes ReviveThreshold consecutive probes. The streak then resets,
	// so while the node *stays* failed — e.g. the triggered rejoin lost a
	// race with a still-active fault — OnRevive re-fires after every
	// further ReviveThreshold consecutive successes rather than latching
	// shut; handlers running a multi-step rejoin should dedup in-flight
	// work (hvac.Client.Rejoin does). nil selects Tracker.Revive
	// directly; the HVAC client wires its warmup-then-revive rejoin here
	// instead.
	OnRevive func(NodeID)
}

// DefaultHeartbeatJitter is the probe-interval jitter fraction.
const DefaultHeartbeatJitter = 0.1

// Heartbeat periodically probes every live member of a Tracker.
type Heartbeat struct {
	cfg     HeartbeatConfig
	tracker *Tracker
	pinger  Pinger

	mu      sync.Mutex
	cancel  context.CancelFunc
	done    chan struct{}
	rounds  int
	started bool
	rng     *rand.Rand
	// reviveStreak counts consecutive successful probes of failed nodes.
	reviveStreak map[NodeID]int
}

// NewHeartbeat creates a prober bound to tracker and pinger.
func NewHeartbeat(tracker *Tracker, pinger Pinger, cfg HeartbeatConfig) *Heartbeat {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval / 2
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 8
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = DefaultHeartbeatJitter
	} else if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	return &Heartbeat{
		cfg:          cfg,
		tracker:      tracker,
		pinger:       pinger,
		rng:          rand.New(rand.NewSource(rand.Int63())),
		reviveStreak: make(map[NodeID]int),
	}
}

// Start launches the probe loop; calling Start twice is a no-op.
func (h *Heartbeat) Start() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.started {
		return
	}
	h.started = true
	//ftclint:ignore ctxflow probe-loop lifetime root owned by the Start/Stop pair; Stop cancels it
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.done = make(chan struct{})
	go h.loop(ctx)
}

// Stop halts probing and waits for the loop to exit. Safe to call
// without Start or repeatedly.
func (h *Heartbeat) Stop() {
	h.mu.Lock()
	if !h.started {
		h.mu.Unlock()
		return
	}
	h.started = false
	cancel, done := h.cancel, h.done
	h.mu.Unlock()
	cancel()
	<-done
}

// Rounds returns how many probe rounds have completed.
func (h *Heartbeat) Rounds() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rounds
}

// nextWait returns the jittered inter-round wait.
func (h *Heartbeat) nextWait() time.Duration {
	d := h.cfg.Interval
	if h.cfg.Jitter <= 0 {
		return d
	}
	h.mu.Lock()
	f := h.rng.Float64()
	h.mu.Unlock()
	shift := time.Duration((2*f - 1) * h.cfg.Jitter * float64(d))
	return d + shift
}

func (h *Heartbeat) loop(ctx context.Context) {
	defer close(h.done)
	timer := time.NewTimer(h.cfg.Interval)
	defer timer.Stop()
	for {
		h.probeRound(ctx)
		h.mu.Lock()
		h.rounds++
		h.mu.Unlock()
		timer.Reset(h.nextWait())
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
	}
}

// probeRound pings every live member and feeds the tracker; with
// recovery probing enabled it also pings failed members and fires
// OnRevive when one has answered ReviveThreshold rounds in a row.
func (h *Heartbeat) probeRound(ctx context.Context) {
	alive := h.tracker.Alive()
	sem := make(chan struct{}, h.cfg.Parallelism)
	var wg sync.WaitGroup
	for _, node := range alive {
		node := node
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			probeCtx, cancel := context.WithTimeout(ctx, h.cfg.Timeout)
			defer cancel()
			if err := h.pinger.Ping(probeCtx, node); err != nil {
				if ctx.Err() == nil { // don't count shutdown as evidence
					h.tracker.RecordTimeout(node)
				}
				return
			}
			h.tracker.RecordSuccess(node)
		}()
	}
	if h.cfg.ReviveThreshold > 0 {
		for _, node := range h.tracker.FailedNodes() {
			node := node
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				probeCtx, cancel := context.WithTimeout(ctx, h.cfg.Timeout)
				defer cancel()
				err := h.pinger.Ping(probeCtx, node)
				if ctx.Err() != nil {
					return
				}
				h.mu.Lock()
				if err != nil {
					h.reviveStreak[node] = 0
					h.mu.Unlock()
					return
				}
				h.reviveStreak[node]++
				fire := h.reviveStreak[node] >= h.cfg.ReviveThreshold
				if fire {
					h.reviveStreak[node] = 0
				}
				h.mu.Unlock()
				if fire {
					if h.cfg.OnRevive != nil {
						h.cfg.OnRevive(node)
					} else {
						h.tracker.Revive(node)
					}
				}
			}()
		}
	}
	wg.Wait()
}
