package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ftc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/passes/atomicfield"
	"repro/internal/analysis/passes/errclass"
	"repro/internal/analysis/passes/hotpathlock"
	"repro/internal/analysis/passes/poollease"
	"repro/internal/analysis/passes/spanend"
	"repro/internal/analysis/passes/telemetrylabel"
)

// srcRoot locates internal/analysis/testdata/src relative to this file
// so the tests work from any working directory.
func srcRoot(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Join(filepath.Dir(thisFile), "testdata", "src")
}

func TestPoollease(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "poollease", poollease.Analyzer)
}

func TestHotpathlock(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "hotpathlock", hotpathlock.Analyzer)
}

func TestErrclass(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "errclass", errclass.Analyzer)
}

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "atomicfield", atomicfield.Analyzer)
}

func TestSpanend(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "spanend", spanend.Analyzer)
}

func TestTelemetrylabel(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "telemetrylabel", telemetrylabel.Analyzer)
}

// TestRepoIsClean is the meta-test: the full suite over the whole
// module must report nothing. A new finding either gets fixed or gets
// an explicit //ftclint:ignore with a reason — never left ambient.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	repoRoot := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
	pkgs, err := load.Module(repoRoot, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		diags, err := ftc.RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analysis.All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
