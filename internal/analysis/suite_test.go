package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ftc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/passes/atomicfield"
	"repro/internal/analysis/passes/ctxflow"
	"repro/internal/analysis/passes/errclass"
	"repro/internal/analysis/passes/gostop"
	"repro/internal/analysis/passes/hotpathlock"
	"repro/internal/analysis/passes/lockorder"
	"repro/internal/analysis/passes/poollease"
	"repro/internal/analysis/passes/spanend"
	"repro/internal/analysis/passes/telemetrylabel"
)

// srcRoot locates internal/analysis/testdata/src relative to this file
// so the tests work from any working directory.
func srcRoot(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Join(filepath.Dir(thisFile), "testdata", "src")
}

func TestPoollease(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "poollease", poollease.Analyzer)
}

func TestHotpathlock(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "hotpathlock", hotpathlock.Analyzer)
}

func TestErrclass(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "errclass", errclass.Analyzer)
}

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "atomicfield", atomicfield.Analyzer)
}

func TestSpanend(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "spanend", spanend.Analyzer)
}

func TestTelemetrylabel(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "telemetrylabel", telemetrylabel.Analyzer)
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "lockorder", lockorder.Analyzer)
}

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "ctxflow", ctxflow.Analyzer)
}

func TestGostop(t *testing.T) {
	analysistest.Run(t, srcRoot(t), "gostop", gostop.Analyzer)
}

// The *Facts tests are the multi-package suites: dependencies are
// listed before their importers, and each asserts that a verdict
// computed in src/<x>2/dep crosses into src/<x>2/use as a fact.

func TestLockorderFacts(t *testing.T) {
	analysistest.RunMulti(t, srcRoot(t), []string{"lockorder2/dep", "lockorder2/use"}, lockorder.Analyzer)
}

func TestCtxflowFacts(t *testing.T) {
	analysistest.RunMulti(t, srcRoot(t), []string{"ctxflow2/dep", "ctxflow2/use"}, ctxflow.Analyzer)
}

func TestGostopFacts(t *testing.T) {
	analysistest.RunMulti(t, srcRoot(t), []string{"gostop2/dep", "gostop2/use"}, gostop.Analyzer)
}

func TestPoolleaseFacts(t *testing.T) {
	analysistest.RunMulti(t, srcRoot(t), []string{"poollease2/dep", "poollease2/use"}, poollease.Analyzer)
}

func TestHotpathlockFacts(t *testing.T) {
	analysistest.RunMulti(t, srcRoot(t), []string{"hotpathlock2/dep", "hotpathlock2/use"}, hotpathlock.Analyzer)
}

// loadRepo loads every module package in dependency order, exactly as
// the standalone ftclint driver does.
func loadRepo(t *testing.T) []*load.Package {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	repoRoot := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
	pkgs, err := load.Module(repoRoot, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	return pkgs
}

// TestRepoIsClean is the meta-test: the full suite over the whole
// module — dependency order, one shared fact store, so every
// interprocedural verdict crosses package boundaries exactly as in the
// ftclint driver — must report nothing. A new finding either gets
// fixed or gets an explicit //ftclint:ignore with a reason — never
// left ambient.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	facts := ftc.NewFactStore()
	for _, pkg := range loadRepo(t) {
		diags, err := ftc.RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analysis.All(), facts)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}

// TestSuppressionsAreLive audits every //ftclint:ignore in the repo:
// after the full suite runs, a suppression that silenced nothing is
// stale — the code it excused has been fixed or moved — and must be
// deleted rather than left to swallow a future, unrelated finding.
func TestSuppressionsAreLive(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	facts := ftc.NewFactStore()
	for _, pkg := range loadRepo(t) {
		res, err := ftc.RunPackageEx(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analysis.All(), facts)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range res.Diags {
			// Repo cleanliness is TestRepoIsClean's job; this test only
			// needs the run for its suppression usage trail.
			_ = d
		}
		for _, s := range res.Stale {
			t.Errorf("%s: stale //ftclint:ignore %s: it suppresses nothing — delete it", pkg.Fset.Position(s.Pos), s.Analyzer)
		}
	}
}
