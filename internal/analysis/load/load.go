// Package load type-checks Go packages for the ftclint analyzers
// without golang.org/x/tools: it drives `go list -deps -export` for
// package metadata and resolves every import from the compiler's
// export data via the stdlib gc importer. Two loaders are provided:
//
//   - Module: loads packages of the enclosing module by pattern
//     (`./...`), the standalone ftclint path and the repo-wide
//     "suite is clean" meta-test.
//   - Dir: loads a single GOPATH-style package rooted under a source
//     tree (internal/analysis/testdata/src), resolving non-stdlib
//     imports from sibling directories — the analysistest path, where
//     stub dependency packages live next to the package under test.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/ftc"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	// FilePaths are the absolute paths of the parsed files, in parse
	// order (inputs to content-hash cache keys).
	FilePaths []string
	// Imports are the package's direct imports (canonical paths).
	Imports []string
	// ExportFile is this package's own compiled export data, when the
	// listing produced one.
	ExportFile string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loaders use.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path, Dir string }
}

// goList runs `go list` in dir with the given arguments and decodes
// the JSON package stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data files, the
// way the compiler itself sees dependencies. extra maps import paths to
// already-type-checked packages (source-loaded testdata stubs) and wins
// over export data.
type exportImporter struct {
	gc    types.ImporterFrom
	extra map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, exportFiles map[string]string, extra map[string]*types.Package) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		gc:    importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		extra: extra,
	}
}

func (imp *exportImporter) Import(path string) (*types.Package, error) {
	return imp.ImportFrom(path, "", 0)
}

func (imp *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := imp.extra[path]; ok {
		return p, nil
	}
	return imp.gc.ImportFrom(path, dir, mode)
}

// nonTestGoFiles drops _test.go entries; the analyzers target shipped
// code, and the vet driver applies the same filter when reporting.
func nonTestGoFiles(files []string) []string {
	out := files[:0:0]
	for _, f := range files {
		if !strings.HasSuffix(f, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// parseFiles parses the named files (joined onto dir) with comments.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckFiles type-checks already-parsed files as package path using
// imp, returning the analysis-ready Package.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := ftc.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{PkgPath: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// A Target is one to-be-analyzed package from a module Listing: its
// metadata is available before (and without) parsing or type-checking,
// so a caching driver can skip loading entirely on a cache hit.
type Target struct {
	PkgPath    string
	Dir        string
	FilePaths  []string // absolute non-test Go files
	Imports    []string // direct imports (canonical paths)
	ExportFile string   // this package's compiled export data
}

// A Listing is the module load plan: the matched targets in dependency
// order (every target's in-module imports precede it) plus the export
// data locations of the full transitive dependency set.
type Listing struct {
	Targets []Target
	// ExportFiles maps every dependency import path (targets included)
	// to its compiled export data file.
	ExportFiles map[string]string

	fset *token.FileSet
	imp  *exportImporter
}

// List runs the module listing for patterns (relative to dir): the
// `go list -deps -export` pass both compiles export data for every
// dependency and yields dependency order, which the interprocedural
// driver relies on so imported facts exist before their importers are
// analyzed. Test files are excluded; packages with no non-test Go
// files (external-test-only) are skipped.
func List(dir string, patterns ...string) (*Listing, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fields := "-json=Dir,ImportPath,Name,Export,Standard,GoFiles,Imports,Module"
	targets, err := goList(dir, append([]string{fields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	matched := map[string]bool{}
	for _, t := range targets {
		matched[t.ImportPath] = true
	}
	// `go list -deps` emits dependencies before dependents; keeping
	// that order for the matched targets gives the driver its
	// dependency-ordered plan.
	deps, err := goList(dir, append([]string{"-deps", "-export", fields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l := &Listing{ExportFiles: map[string]string{}, fset: token.NewFileSet()}
	for _, p := range deps {
		if p.Export != "" {
			l.ExportFiles[p.ImportPath] = p.Export
		}
		if !matched[p.ImportPath] {
			continue
		}
		names := nonTestGoFiles(p.GoFiles)
		if len(names) == 0 {
			continue
		}
		t := Target{PkgPath: p.ImportPath, Dir: p.Dir, Imports: p.Imports, ExportFile: p.Export}
		for _, name := range names {
			t.FilePaths = append(t.FilePaths, filepath.Join(p.Dir, name))
		}
		l.Targets = append(l.Targets, t)
	}
	l.imp = newExportImporter(l.fset, l.ExportFiles, nil)
	return l, nil
}

// Load parses and type-checks one listed target. Targets share the
// listing's FileSet and importer, so positions and imported type
// identities are consistent across the whole run.
func (l *Listing) Load(t Target) (*Package, error) {
	var files []*ast.File
	for _, path := range t.FilePaths {
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := CheckFiles(l.fset, t.PkgPath, files, l.imp)
	if err != nil {
		return nil, err
	}
	pkg.Dir = t.Dir
	pkg.FilePaths = t.FilePaths
	pkg.Imports = t.Imports
	pkg.ExportFile = t.ExportFile
	return pkg, nil
}

// Module loads the module packages matching patterns (relative to
// dir), type-checked against export data, in dependency order. Test
// files are excluded. Packages with no non-test Go files
// (external-test-only) are skipped.
func Module(dir string, patterns ...string) ([]*Package, error) {
	listing, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range listing.Targets {
		pkg, err := listing.Load(t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// dirLoader loads GOPATH-style packages under srcRoot, type-checking
// sibling (stub) packages from source and everything else from stdlib
// export data.
type dirLoader struct {
	srcRoot string
	fset    *token.FileSet
	loaded  map[string]*Package // import path -> source-checked package
	imp     *exportImporter
}

// newDirLoader prepares a loader for srcRoot: one pass over the whole
// tree to collect every import that is not a sibling source package,
// then one `go list` to map those (and their dependencies) to export
// data.
func newDirLoader(srcRoot string) (*dirLoader, error) {
	l := &dirLoader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		loaded:  map[string]*Package{},
	}
	external, err := l.externalImports()
	if err != nil {
		return nil, err
	}
	exportFiles := map[string]string{}
	if len(external) > 0 {
		args := append([]string{"-deps", "-export", "-json=ImportPath,Export,Standard"}, external...)
		pkgs, err := goList(srcRoot, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exportFiles[p.ImportPath] = p.Export
			}
		}
	}
	l.imp = newExportImporter(l.fset, exportFiles, nil)
	return l, nil
}

// Dir loads the single package in pkgDir, resolving imports that
// resolve to directories under srcRoot from source, and the rest
// (stdlib) from export data. It returns the target package; stub
// dependencies are type-checked but not returned.
func Dir(srcRoot, pkgDir string) (*Package, error) {
	pkgs, err := Dirs(srcRoot, pkgDir)
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// Dirs loads the packages in pkgDirs (absolute or srcRoot-relative
// directories) from one shared loader — one FileSet, each package
// type-checked once even when listed and imported — and returns them
// in the given order. Callers analyzing with facts list dependency
// packages before their importers, mirroring the module driver's
// dependency order.
func Dirs(srcRoot string, pkgDirs ...string) ([]*Package, error) {
	l, err := newDirLoader(srcRoot)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range pkgDirs {
		path := dir
		if filepath.IsAbs(dir) {
			rel, err := filepath.Rel(srcRoot, dir)
			if err != nil {
				return nil, err
			}
			path = filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// externalImports walks srcRoot and returns the sorted set of imports
// that do not resolve to directories under it.
func (l *dirLoader) externalImports() ([]string, error) {
	seen := map[string]bool{}
	err := filepath.Walk(l.srcRoot, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(p))); err == nil && st.IsDir() {
				continue
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// load type-checks the package at import path (relative to srcRoot),
// recursively loading sibling imports from source first. Results are
// memoized so a package listed and imported is checked once.
func (l *dirLoader) load(path string) (*Package, error) {
	if pkg := l.loaded[path]; pkg != nil {
		return pkg, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files, err := parseFiles(l.fset, dir, names)
	if err != nil {
		return nil, err
	}

	// Source-load sibling imports depth-first so the importer can hand
	// them out.
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			imports = append(imports, p)
			if l.loaded[p] != nil {
				continue
			}
			if st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(p))); err == nil && st.IsDir() {
				if _, err := l.load(p); err != nil {
					return nil, err
				}
			}
		}
	}

	extra := map[string]*types.Package{}
	for p, dep := range l.loaded {
		extra[p] = dep.Types
	}
	imp := &exportImporter{gc: l.imp.gc, extra: extra}
	pkg, err := CheckFiles(l.fset, path, files, imp)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	for _, name := range names {
		pkg.FilePaths = append(pkg.FilePaths, filepath.Join(dir, name))
	}
	sort.Strings(imports)
	pkg.Imports = imports
	l.loaded[path] = pkg
	return pkg, nil
}
