// Package ftc is the minimal static-analysis framework the ftclint
// analyzers are written against. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) so the
// passes can be ported mechanically if that module ever becomes a
// dependency — but it is stdlib-only, because this repo vendors nothing.
//
// Two comment conventions are defined here and honored suite-wide:
//
//   - `//ftc:hotpath` in a function's doc comment marks it as part of
//     the lock-free hot path; the hotpathlock analyzer enforces the
//     concurrency rules of DESIGN.md §12 on marked functions and on
//     every same-package function they reach.
//   - `//ftclint:ignore <analyzer> <reason>` on (or immediately above)
//     a reported line suppresses that analyzer's finding there. The
//     reason is mandatory: a suppression without a justification is
//     itself reported.
package ftc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//ftclint:ignore <name> ...` suppressions.
	Name string
	// Doc is the one-paragraph rule statement shown by `ftclint -help`.
	Doc string
	// Requires lists analyzers that must run on the same package
	// first; their Run results are available via Pass.ResultOf. The
	// driver expands the set transitively (Expand).
	Requires []*Analyzer
	// FactTypes declares the Fact types this analyzer exports, for gob
	// registration. An analyzer that exports a fact type it does not
	// declare still works in-process but will not survive
	// serialization (vetx files, the fact cache).
	FactTypes []Fact
	// Run applies the check to one package, reports findings via
	// pass.Reportf, and may return a result value for analyzers that
	// Require it.
	Run func(*Pass) (any, error)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ResultOf holds the Run results of this analyzer's Requires,
	// keyed by analyzer.
	ResultOf map[*Analyzer]any

	facts  *FactStore
	report func(Diagnostic)
}

// Expand returns analyzers plus every analyzer reachable through
// Requires, dependencies first, each exactly once.
func Expand(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	seen := map[*Analyzer]bool{}
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, dep := range a.Requires {
			visit(dep)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewInfo returns a types.Info with every map the analyzers consult
// populated. Loaders share it so no pass finds a nil map.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// HotPathDirective is the doc-comment directive marking a hot-path
// function.
const HotPathDirective = "//ftc:hotpath"

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "//ftclint:ignore"

// HasHotPath reports whether fn's doc comment carries the
// `//ftc:hotpath` directive.
func HasHotPath(fn *ast.FuncDecl) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if text, ok := strings.CutPrefix(c.Text, HotPathDirective); ok {
			if text == "" || text[0] == ' ' || text[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// ignoreKey locates one suppression: a file/line pair plus the analyzer
// it silences ("*" silences all).
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// Suppressions indexes every `//ftclint:ignore` comment in files.
// Malformed suppressions (missing analyzer or missing reason) are
// returned as diagnostics in their own right, attributed to "ftclint".
type Suppressions struct {
	keys map[ignoreKey]bool
	used map[ignoreKey]bool
	// sites records each well-formed suppression comment at its own
	// position (the comment, not the covered line), for the stale-
	// ignore audit.
	sites []SuppressionSite
}

// A SuppressionSite is one well-formed `//ftclint:ignore` comment.
type SuppressionSite struct {
	Pos      token.Pos
	Analyzer string // the silenced analyzer, or "*"
	key      ignoreKey
}

// CollectSuppressions scans files for suppression comments. A trailing
// ignore (sharing its line with code) covers only that line; a
// standalone ignore covers only the line below it — never both, so an
// ignore cannot silently swallow a second, unrelated finding.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) (*Suppressions, []Diagnostic) {
	s := &Suppressions{keys: map[ignoreKey]bool{}, used: map[ignoreKey]bool{}}
	var bad []Diagnostic
	for _, f := range files {
		codeLines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil:
				return false
			case *ast.Comment, *ast.CommentGroup:
				return false
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			codeLines[fset.Position(n.End()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "ftclint",
						Pos:      c.Pos(),
						Message:  "malformed ftclint:ignore: need `//ftclint:ignore <analyzer> <reason>`",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if !codeLines[line] {
					line++ // standalone: covers the line below
				}
				key := ignoreKey{pos.Filename, line, fields[0]}
				s.keys[key] = true
				s.sites = append(s.sites, SuppressionSite{Pos: c.Pos(), Analyzer: fields[0], key: key})
			}
		}
	}
	return s, bad
}

// Suppressed reports whether d is silenced by an ignore comment
// covering its line (trailing on the line itself, or standalone on the
// line above), and marks the matching suppression as live.
func (s *Suppressions) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	if s == nil {
		return false
	}
	pos := fset.Position(d.Pos)
	for _, name := range []string{d.Analyzer, "*"} {
		key := ignoreKey{pos.Filename, pos.Line, name}
		if s.keys[key] {
			s.used[key] = true
			return true
		}
	}
	return false
}

// Stale returns the suppression sites that silenced nothing during the
// runs they were consulted in — candidates for deletion (stale-ignore
// rot). Only meaningful after the full suite has run over the package.
func (s *Suppressions) Stale() []SuppressionSite {
	var out []SuppressionSite
	for _, site := range s.sites {
		if !s.used[site.key] {
			out = append(out, site)
		}
	}
	return out
}

// A PackageResult is the full outcome of running a suite over one
// package: surviving findings, the findings an ignore silenced, and
// ignores that silenced nothing (stale).
type PackageResult struct {
	Diags      []Diagnostic
	Suppressed []Diagnostic
	Stale      []SuppressionSite
}

// sortDiags orders findings by position for stable output.
func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// RunPackage applies the analyzers (expanded with their Requires) to
// one package and returns the surviving findings (suppressions
// applied, malformed suppressions included) ordered by position.
// facts carries object/package facts across packages; pass nil for a
// standalone single-package run.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	res, err := RunPackageEx(fset, files, pkg, info, analyzers, facts)
	if res == nil {
		return nil, err
	}
	return res.Diags, err
}

// RunPackageEx is RunPackage plus the suppression audit trail.
func RunPackageEx(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactStore) (*PackageResult, error) {
	if facts == nil {
		facts = NewFactStore()
	}
	sup, diags := CollectSuppressions(fset, files)
	res := &PackageResult{Diags: diags}
	results := map[*Analyzer]any{}
	for _, a := range Expand(analyzers) {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			ResultOf: results,
			facts:    facts,
			report: func(d Diagnostic) {
				if sup.Suppressed(fset, d) {
					res.Suppressed = append(res.Suppressed, d)
				} else {
					res.Diags = append(res.Diags, d)
				}
			},
		}
		result, err := a.Run(pass)
		if err != nil {
			return res, fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = result
	}
	res.Stale = sup.Stale()
	sortDiags(fset, res.Diags)
	sortDiags(fset, res.Suppressed)
	return res, nil
}

// --- shared type/AST helpers used by several passes ---

// PkgNamed reports whether pkg is named name. Analyzer keying matches
// on package *name* (wire, telemetry, hvac, rpc) rather than import
// path so the analysistest stub packages exercise the same code paths
// the real repro packages do.
func PkgNamed(pkg *types.Package, name string) bool {
	return pkg != nil && pkg.Name() == name
}

// PkgPathIs reports whether pkg's import path is exactly path (used
// for stdlib packages, whose paths are canonical everywhere).
func PkgPathIs(pkg *types.Package, path string) bool {
	return pkg != nil && pkg.Path() == path
}

// CalleeObject resolves the object a call expression invokes, seeing
// through parentheses. It returns nil for calls through function
// values, builtins, and type conversions.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.Fn.
		if obj := info.Uses[fun.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

// ReceiverNamed reports whether fn is a method whose receiver's named
// type is typeName declared in a package named pkgName.
func ReceiverNamed(fn *types.Func, pkgName, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && PkgNamed(obj.Pkg(), pkgName)
}

// FuncFor returns the FuncDecl in files whose declared object is obj,
// or nil. Used by call-graph-aware passes to find same-package callee
// bodies.
func FuncFor(info *types.Info, files []*ast.File, obj types.Object) *ast.FuncDecl {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if info.Defs[fd.Name] == obj {
				return fd
			}
		}
	}
	return nil
}

// RootIdent digs to the leftmost identifier of an expression chain
// (x, x.f, x[i].g, (*x).f → x), or nil if the root is not a plain
// identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// DeclaredWithin reports whether obj is declared inside the half-open
// position interval [lo, hi) — e.g. local to a function body.
func DeclaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos().IsValid() && lo <= obj.Pos() && obj.Pos() < hi
}
