package ftc

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// posOf returns the Pos at the start of the first occurrence of marker.
func posOf(t *testing.T, fset *token.FileSet, src, marker string) token.Pos {
	t.Helper()
	off := strings.Index(src, marker)
	if off < 0 {
		t.Fatalf("marker %q not in source", marker)
	}
	var file *token.File
	fset.Iterate(func(f *token.File) bool { file = f; return false })
	return file.Pos(off)
}

func TestSuppressions(t *testing.T) {
	src := `package a

func f() {
	x() //ftclint:ignore poollease pool reclaimed on close
	y()
	//ftclint:ignore * legacy block pending rewrite
	z()
}
`
	fset, files := parseSrc(t, src)
	sup, bad := CollectSuppressions(fset, files)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed suppressions: %v", bad)
	}

	cases := []struct {
		marker   string
		analyzer string
		want     bool
	}{
		{"x()", "poollease", true},      // same-line ignore, matching analyzer
		{"x()", "hotpathlock", false},   // same-line ignore, different analyzer
		{"y()", "poollease", false},     // no ignore on or above this line
		{"z()", "poollease", true},      // wildcard ignore on the line above
		{"z()", "telemetrylabel", true}, // wildcard covers every analyzer
	}
	for _, c := range cases {
		d := Diagnostic{Analyzer: c.analyzer, Pos: posOf(t, fset, src, c.marker)}
		if got := sup.Suppressed(fset, d); got != c.want {
			t.Errorf("Suppressed(%s at %q) = %v, want %v", c.analyzer, c.marker, got, c.want)
		}
	}
}

func TestMalformedSuppression(t *testing.T) {
	src := `package a

func f() {
	x() //ftclint:ignore poollease
	y() //ftclint:ignore
}
`
	fset, files := parseSrc(t, src)
	_, bad := CollectSuppressions(fset, files)
	if len(bad) != 2 {
		t.Fatalf("got %d malformed-suppression diagnostics, want 2: %v", len(bad), bad)
	}
	for _, d := range bad {
		if d.Analyzer != "ftclint" {
			t.Errorf("malformed suppression attributed to %q, want ftclint", d.Analyzer)
		}
		if !strings.Contains(d.Message, "malformed ftclint:ignore") {
			t.Errorf("unexpected message %q", d.Message)
		}
	}
}

func TestHasHotPath(t *testing.T) {
	src := `package a

//ftc:hotpath
func marked() {}

// Comment first.
//
//ftc:hotpath
func markedAfterProse() {}

// ftc:hotpath — a space after the slashes is prose, not a directive.
func prose() {}

//ftc:hotpathological
func prefixOnly() {}

func unmarked() {}
`
	_, files := parseSrc(t, src)
	want := map[string]bool{
		"marked":           true,
		"markedAfterProse": true,
		"prose":            false,
		"prefixOnly":       false,
		"unmarked":         false,
	}
	for _, decl := range files[0].Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if got := HasHotPath(fd); got != want[fd.Name.Name] {
			t.Errorf("HasHotPath(%s) = %v, want %v", fd.Name.Name, got, want[fd.Name.Name])
		}
	}
}
