// Facts: the cross-package channel of the interprocedural framework
// (DESIGN.md §17). An analyzer exports typed facts on package-level
// objects (functions, mostly) or on the package itself; the driver
// analyzes packages in dependency order, so by the time a package is
// analyzed every fact of its (transitive) imports is present in the
// FactStore. Mirrors golang.org/x/tools/go/analysis facts, with one
// deliberate simplification: facts attach only to *package-level*
// objects and are keyed by a stable string encoding of the object
// (package path + name, or receiver type + method name) instead of
// objectpath. That makes a fact survive the round trip through gc
// export data — the same function seen from source in its home package
// and through an importer downstream maps to the same key — and makes
// serialization (gob) trivial for the vet protocol's .vetx files and
// the standalone driver's fact cache.
package ftc

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a typed datum exported by one analyzer for consumption by
// downstream passes (same package or importers). Implementations must
// be pointers to gob-encodable structs and list themselves in their
// analyzer's FactTypes.
type Fact interface {
	AFact() // marker
}

// ObjectKey returns the stable cross-package encoding of a
// package-level object: "Fn" for a function or var, "(T).M" /
// "(*T).M" for methods. ok is false for objects facts cannot attach
// to (locals, non-package-level, nil).
func ObjectKey(obj types.Object) (key string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, isFn := obj.(*types.Func); isFn {
		fn = fn.Origin() // normalize generic instantiations
		sig, isSig := fn.Type().(*types.Signature)
		if isSig && sig.Recv() != nil {
			t := sig.Recv().Type()
			ptr := false
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
				ptr = true
			}
			named, isNamed := t.(*types.Named)
			if !isNamed {
				return "", false
			}
			if ptr {
				return "(*" + named.Obj().Name() + ")." + fn.Name(), true
			}
			return "(" + named.Obj().Name() + ")." + fn.Name(), true
		}
		if fn.Parent() != nil && fn.Parent() != fn.Pkg().Scope() {
			return "", false // closure-scoped
		}
		return fn.Name(), true
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// factKey identifies one fact slot: one fact of each concrete type per
// object (objKey=="" means the package itself).
type factKey struct {
	pkgPath string
	objKey  string
	typ     string
}

func typeName(f Fact) string { return reflect.TypeOf(f).String() }

// FactStore holds every fact produced during one driver run (or
// imported from serialized dependency facts). Safe for sequential use
// by the driver; a mutex guards the maps so concurrent package
// analysis stays an option.
type FactStore struct {
	mu    sync.Mutex
	facts map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[factKey]Fact{}}
}

func (s *FactStore) put(pkgPath, objKey string, f Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.facts[factKey{pkgPath, objKey, typeName(f)}] = f
}

// get copies the stored fact (if any) into ptr, which must be a
// pointer to the same concrete type.
func (s *FactStore) get(pkgPath, objKey string, ptr Fact) bool {
	s.mu.Lock()
	f, ok := s.facts[factKey{pkgPath, objKey, typeName(ptr)}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// encodedFact is the serialized form of one fact.
type encodedFact struct {
	PkgPath string
	ObjKey  string
	Fact    Fact
}

// RegisterFactTypes registers every fact type the analyzers declare
// with gob, so stores round-trip through Encode/Decode. Idempotent.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range Expand(analyzers) {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// EncodePackageFacts serializes every fact belonging to the packages
// in paths (own facts plus re-exported dependency facts, if the caller
// includes their paths) in a deterministic order.
func (s *FactStore) EncodePackageFacts(paths ...string) ([]byte, error) {
	want := map[string]bool{}
	for _, p := range paths {
		want[p] = true
	}
	s.mu.Lock()
	var out []encodedFact
	for k, f := range s.facts {
		if want[k.pkgPath] {
			out = append(out, encodedFact{k.pkgPath, k.objKey, f})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].PkgPath != out[j].PkgPath {
			return out[i].PkgPath < out[j].PkgPath
		}
		if out[i].ObjKey != out[j].ObjKey {
			return out[i].ObjKey < out[j].ObjKey
		}
		return typeName(out[i].Fact) < typeName(out[j].Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts merges serialized facts into the store.
func (s *FactStore) DecodeFacts(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in []encodedFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&in); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, e := range in {
		s.put(e.PkgPath, e.ObjKey, e.Fact)
	}
	return nil
}

// PackagePaths returns the sorted set of package paths that have at
// least one fact in the store.
func (s *FactStore) PackagePaths() []string {
	s.mu.Lock()
	seen := map[string]bool{}
	for k := range s.facts {
		seen[k.pkgPath] = true
	}
	s.mu.Unlock()
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// --- Pass-level fact API ---

// ExportObjectFact attaches fact to obj, which must be a package-level
// object of the package under analysis.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact: object %v is not from the package under analysis", p.Analyzer.Name, obj))
	}
	key, ok := ObjectKey(obj)
	if !ok {
		panic(fmt.Sprintf("%s: ExportObjectFact: object %v is not package-level", p.Analyzer.Name, obj))
	}
	p.facts.put(p.Pkg.Path(), key, fact)
}

// ImportObjectFact copies the fact of ptr's type attached to obj (from
// any package analyzed earlier, including this one) into ptr.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	return p.facts.get(obj.Pkg().Path(), key, ptr)
}

// ImportFactByKey copies the fact of ptr's type attached to the object
// identified by (pkgPath, objKey) — a cross-package Ref from the call
// graph, which may name a package the current one does not import —
// into ptr.
func (p *Pass) ImportFactByKey(pkgPath, objKey string, ptr Fact) bool {
	return p.facts.get(pkgPath, objKey, ptr)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.put(p.Pkg.Path(), "", fact)
}

// ImportPackageFact copies the package-level fact of ptr's type for
// pkg into ptr.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	if pkg == nil {
		return false
	}
	return p.facts.get(pkg.Path(), "", ptr)
}
