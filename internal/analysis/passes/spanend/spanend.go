// Package spanend enforces the trace span lifecycle (DESIGN.md §14):
// every span acquired from trace.StartTrace, trace.StartSpan,
// trace.StartRemote, or (*trace.Span).StartChild must reach End on
// every path out of the acquiring function. A span that never ends is
// worse than a leak: a never-ended child silently withholds its record
// from the fragment, and a never-ended root withholds the whole trace
// from the flight recorder — the instrumentation *looks* present and
// records nothing.
//
// The check is the poollease walk with the release verb renamed:
//
//   - on every path from the acquisition to a path end (return, branch,
//     loop re-entry, end of function) the span must be ended, deferred
//     for ending, or handed off (passed to another function, returned,
//     stored into a non-local location, or captured by a closure that
//     ends it);
//   - there is no error-path exemption: Start* cannot fail, and the
//     nil *Span the disabled gate returns makes End free, so "ended on
//     all paths" has no legitimate exception — an early return that
//     skips End is exactly the regression this pass exists for;
//   - a goroutine that captures the span without ending it is
//     reported: the span's annotations are owned by one goroutine at a
//     time, and the parent has no way to know when the capture ends.
//
// The walk is intra-procedural and syntactic about aliases (a copy of
// the span pointer into another local is not tracked); function
// literals are walked as functions of their own, so spans started
// inside goroutine bodies (detached push/recache roots) are checked
// where they live.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/ftc"
)

// Analyzer is the spanend pass.
var Analyzer = &ftc.Analyzer{
	Name: "spanend",
	Doc:  "every trace span from Start*/StartChild must reach End on all paths",
	Run:  run,
}

func run(pass *ftc.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// spanResultIndex reports whether call acquires a span, and at which
// result index the *Span sits: StartTrace and StartSpan return
// (context.Context, *Span), StartRemote and StartChild return it alone.
func spanResultIndex(info *types.Info, call *ast.CallExpr) (int, bool) {
	fn, ok := ftc.CalleeObject(info, call).(*types.Func)
	if !ok {
		return 0, false
	}
	switch fn.Name() {
	case "StartTrace", "StartSpan":
		if ftc.PkgNamed(fn.Pkg(), "trace") && fn.Type().(*types.Signature).Recv() == nil {
			return 1, true
		}
	case "StartRemote":
		if ftc.PkgNamed(fn.Pkg(), "trace") && fn.Type().(*types.Signature).Recv() == nil {
			return 0, true
		}
	case "StartChild":
		if ftc.ReceiverNamed(fn, "trace", "Span") {
			return 0, true
		}
	}
	return 0, false
}

// acquisition is one `_, sp := trace.StartX(...)` site.
type acquisition struct {
	stmt *ast.AssignStmt
	call *ast.CallExpr
	span types.Object // nil: assigned to _, itself a finding
	body *ast.BlockStmt
}

// checkFunc checks every acquisition in fd, attributing each to the
// innermost function-like body (the decl's or a function literal's)
// that contains it, so a span started inside a goroutine closure is
// checked against that closure's paths, not the enclosing function's.
func checkFunc(pass *ftc.Pass, fd *ast.FuncDecl) {
	bodies := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			bodies = append(bodies, fl.Body)
		}
		return true
	})
	innermost := func(pos token.Pos) *ast.BlockStmt {
		best := fd.Body
		for _, b := range bodies {
			if b.Pos() <= pos && pos < b.End() && b.Pos() > best.Pos() {
				best = b
			}
		}
		return best
	}

	var acqs []acquisition
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if idx, ok := spanResultIndex(pass.Info, call); ok {
						a := acquisition{stmt: n, call: call, body: innermost(n.Pos())}
						if idx < len(n.Lhs) {
							if obj := lhsObject(pass.Info, n.Lhs[idx]); obj != nil {
								a.span = obj
							} else if !isBlank(n.Lhs[idx]) {
								// Assigned straight into a field or other
								// non-ident location: the owner of that
								// location owns the End (handoff).
								return true
							}
						}
						acqs = append(acqs, a)
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if _, ok := spanResultIndex(pass.Info, call); ok {
					pass.Reportf(call.Pos(), "trace span discarded: End can never run and the span is lost")
				}
			}
		}
		return true
	})
	for _, a := range acqs {
		if a.span == nil {
			pass.Reportf(a.call.Pos(), "trace span assigned to _: End can never run and the span is lost")
			continue
		}
		w := &walker{
			pass:     pass,
			body:     a.body,
			acq:      a,
			reported: map[token.Pos]bool{},
		}
		ends := w.walkStmts(a.body.List, state{})
		for _, st := range ends {
			w.endPath(a.body.Rbrace, st)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// state is the End obligation along one control-flow path.
type state struct {
	active bool // the acquisition has executed on this path
	ended  bool // End called, deferred, or ownership handed off
}

type walker struct {
	pass     *ftc.Pass
	body     *ast.BlockStmt
	acq      acquisition
	reported map[token.Pos]bool
}

func (w *walker) reportf(pos token.Pos, format string, args ...any) {
	if !w.reported[pos] {
		w.reported[pos] = true
		w.pass.Reportf(pos, format, args...)
	}
}

// endPath checks the obligation where a path terminates.
func (w *walker) endPath(pos token.Pos, st state) {
	if !st.active || st.ended {
		return
	}
	w.reportf(pos, "trace span started at %s is not ended on this path",
		w.pass.Fset.Position(w.acq.call.Pos()))
}

// usesObj reports whether n references obj.
func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	if obj == nil || n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isEndCall matches sp.End().
func (w *walker) isEndCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && w.pass.Info.Uses[id] == w.acq.span
}

// containsEnd reports whether n contains sp.End() anywhere (used for
// closures and goroutines that take over the obligation).
func (w *walker) containsEnd(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok && w.isEndCall(call) {
			found = true
		}
		return !found
	})
	return found
}

// scanExprEvents processes the span events inside one evaluated
// expression tree: ends and handoffs. Returns the updated state.
func (w *walker) scanExprEvents(n ast.Node, st state) state {
	if !st.active || st.ended {
		return st
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if st.ended {
			return false
		}
		switch c := c.(type) {
		case *ast.CallExpr:
			if w.isEndCall(c) {
				st.ended = true
				return false
			}
			// Span passed to another function: ownership handoff.
			for _, arg := range c.Args {
				if usesObj(w.pass.Info, arg, w.acq.span) {
					st.ended = true
					return false
				}
			}
		case *ast.FuncLit:
			// A closure that ends the span takes over the obligation
			// wherever it ends up running.
			if w.containsEnd(c) {
				st.ended = true
			}
			return false
		}
		return true
	})
	return st
}

func (w *walker) walkStmt(s ast.Stmt, st state) []state {
	// Activation: the acquisition statement itself.
	if s == ast.Stmt(w.acq.stmt) {
		st.active = true
		st.ended = false
		return []state{st}
	}

	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.ExprStmt:
		return []state{w.scanExprEvents(s.X, st)}

	case *ast.AssignStmt:
		st = w.scanExprEvents(s, st)
		if st.active && !st.ended {
			// Span stored into a non-local location (a struct field, a
			// map, a captured variable): the owner of that location owns
			// the End now.
			for i, rhs := range s.Rhs {
				if !usesObj(w.pass.Info, rhs, w.acq.span) {
					continue
				}
				lhs := s.Lhs[min(i, len(s.Lhs)-1)]
				root := ftc.RootIdent(lhs)
				if root == nil {
					st.ended = true
					continue
				}
				if root.Name == "_" {
					continue // discarding a value is not a handoff
				}
				obj := w.pass.Info.Uses[root]
				if obj == nil {
					obj = w.pass.Info.Defs[root]
				}
				if !ftc.DeclaredWithin(obj, w.body.Pos(), w.body.End()) {
					st.ended = true
				}
			}
		}
		return []state{st}

	case *ast.DeferStmt:
		if st.active && !st.ended {
			if w.isEndCall(s.Call) || w.containsEnd(s.Call) {
				st.ended = true
				return []state{st}
			}
			for _, arg := range s.Call.Args {
				if usesObj(w.pass.Info, arg, w.acq.span) {
					st.ended = true
					return []state{st}
				}
			}
		}
		return []state{st}

	case *ast.GoStmt:
		if st.active && !st.ended {
			if w.containsEnd(s.Call) {
				st.ended = true
				return []state{st}
			}
			if usesObj(w.pass.Info, s.Call, w.acq.span) {
				w.reportf(s.Pos(), "goroutine captures the trace span without ending it; End it inside the goroutine or start the span there")
			}
		}
		return []state{st}

	case *ast.ReturnStmt:
		if st.active && !st.ended {
			// Returning the span transfers ownership to the caller.
			for _, r := range s.Results {
				if usesObj(w.pass.Info, r, w.acq.span) {
					return nil
				}
			}
		}
		w.endPath(s.Pos(), st)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE, token.GOTO, token.BREAK:
			// Conservative, like poollease: the obligation must be
			// resolved before leaving the loop or jumping.
			w.endPath(s.Pos(), st)
			return nil
		}
		return []state{st}

	case *ast.IfStmt:
		if s.Init != nil {
			st = w.scanExprEvents(s.Init, st)
		}
		st = w.scanExprEvents(s.Cond, st)
		out := w.walkStmts([]ast.Stmt{s.Body}, st)
		if s.Else != nil {
			out = append(out, w.walkStmts([]ast.Stmt{s.Else}, st)...)
		} else {
			out = append(out, st)
		}
		return out

	case *ast.ForStmt:
		return w.walkLoop(s.Body, st, s.Init, s.Cond, s.Post)

	case *ast.RangeStmt:
		return w.walkLoop(s.Body, st, nil, s.X, nil)

	case *ast.SwitchStmt:
		return w.walkCases(s.Body, st, s.Tag, s.Init)

	case *ast.TypeSwitchStmt:
		return w.walkCases(s.Body, st, nil, s.Init)

	case *ast.SelectStmt:
		var out []state
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			cst := st
			if comm.Comm != nil {
				cst = w.scanExprEvents(comm.Comm, cst)
			}
			out = append(out, w.walkStmts(comm.Body, cst)...)
		}
		if len(s.Body.List) == 0 {
			out = append(out, st)
		}
		return out

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		if n, ok := s.(ast.Node); ok {
			st = w.scanExprEvents(n, st)
		}
		return []state{st}

	default:
		return []state{st}
	}
}

// walkStmts walks a statement list, returning the states that fall
// through its end.
func (w *walker) walkStmts(stmts []ast.Stmt, st state) []state {
	cur := []state{st}
	for _, s := range stmts {
		var next []state
		for _, c := range cur {
			next = append(next, w.walkStmt(s, c)...)
		}
		cur = dedupe(next)
		if len(cur) == 0 {
			break // every path terminated
		}
	}
	return cur
}

// dedupe collapses identical path states so branch-heavy functions
// stay linear instead of exponential.
func dedupe(states []state) []state {
	if len(states) < 2 {
		return states
	}
	seen := map[state]bool{}
	out := states[:0]
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// walkLoop walks a loop body. The acquisition may live inside the body
// (per-iteration obligation: must resolve by the end of the body) or
// outside it (the obligation simply flows through).
func (w *walker) walkLoop(body *ast.BlockStmt, st state, init ast.Stmt, cond ast.Expr, post ast.Stmt) []state {
	if init != nil {
		st = w.scanExprEvents(init, st)
	}
	if cond != nil {
		st = w.scanExprEvents(cond, st)
	}
	acqInside := body.Pos() <= w.acq.stmt.Pos() && w.acq.stmt.Pos() < body.End()
	exits := w.walkStmts(body.List, st)
	var out []state
	for _, ex := range exits {
		if acqInside && ex.active && !ex.ended {
			// Falling into the next iteration starts a fresh span; this
			// one never ends.
			w.endPath(body.Rbrace, ex)
			continue
		}
		out = append(out, ex)
	}
	// Zero-iteration path.
	out = append(out, st)
	return out
}

// walkCases forks the walk across switch case clauses.
func (w *walker) walkCases(body *ast.BlockStmt, st state, tag ast.Expr, init ast.Stmt) []state {
	if init != nil {
		st = w.scanExprEvents(init, st)
	}
	if tag != nil {
		st = w.scanExprEvents(tag, st)
	}
	var out []state
	hasDefault := false
	for _, cl := range body.List {
		clause, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		out = append(out, w.walkStmts(clause.Body, st)...)
	}
	if !hasDefault {
		out = append(out, st)
	}
	return out
}
