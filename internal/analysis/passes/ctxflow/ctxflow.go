// Package ctxflow enforces context threading in library code
// (DESIGN.md §17): a deadline or cancellation decided by the caller
// must survive the trip through every layer of the cache, so library
// functions may not fabricate fresh root contexts or silently discard
// the one they were handed.
//
// Three rules, in decreasing order of certainty:
//
//   - replaced context: context.Background() / context.TODO() called
//     inside a function (or a closure within one) that has an incoming
//     context.Context parameter. The caller's deadline is discarded on
//     the spot; pass ctx instead.
//
//   - unbounded blocking root: context.Background()/TODO() passed
//     directly to a callee whose lockorder summary (LockFact, imported
//     cross-package via facts) says it blocks — channel ops, Waits,
//     network I/O. The blocking work is now unattached to any caller
//     lifetime. This is the interprocedural tier: the callee's
//     blocking-ness travels along the import graph as a fact.
//
//   - root context in library code: any other Background()/TODO() in
//     non-main, non-test code. Weakest tier; sometimes legitimate
//     (detached maintenance loops), which is what //ftclint:ignore
//     with a reason is for.
//
// A fourth check catches the discarded parameter: a function that
// takes ctx but only ever mentions it in blank assignments (`_ = ctx`)
// or not at all, while calling at least one context-accepting callee —
// the author had somewhere to thread it and didn't.
//
// Exemptions: package main, _test.go files, and func init — process
// roots own their contexts.
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/ftc"
	"repro/internal/analysis/passes/callgraph"
	"repro/internal/analysis/passes/lockorder"
)

// Analyzer is the ctxflow pass.
var Analyzer = &ftc.Analyzer{
	Name:     "ctxflow",
	Doc:      "library code must thread the incoming context.Context; flag fabricated root contexts and discarded ctx parameters",
	Requires: []*ftc.Analyzer{callgraph.Analyzer, lockorder.Analyzer},
	Run:      run,
}

func run(pass *ftc.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	graph := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)
	c := &checker{pass: pass, graph: graph}
	for _, f := range pass.Files {
		if fname := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "init" {
				continue
			}
			c.checkFunc(fd)
		}
		// Package-level var initializers run at process start; a root
		// context there is a detached-lifetime singleton, tier three.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if name := rootCtxCall(pass.Info, call); name != "" {
						pass.Reportf(call.Pos(), "context.%s() in library code: accept a context from the caller instead of fabricating a root", name)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

type checker struct {
	pass  *ftc.Pass
	graph *callgraph.Graph
}

// rootCtxCall returns "Background" or "TODO" when call fabricates a
// root context, else "".
func rootCtxCall(info *types.Info, call *ast.CallExpr) string {
	fn, ok := ftc.CalleeObject(info, call).(*types.Func)
	if !ok || !ftc.PkgPathIs(fn.Pkg(), "context") {
		return ""
	}
	switch fn.Name() {
	case "Background", "TODO":
		return fn.Name()
	}
	return ""
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && ftc.PkgPathIs(obj.Pkg(), "context")
}

// ctxParams returns the function's context.Context parameter objects.
func ctxParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj, ok := info.Defs[name].(*types.Var); ok && isCtxType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// calleeAcceptsCtx reports whether the call's callee has a
// context.Context parameter.
func calleeAcceptsCtx(info *types.Info, call *ast.CallExpr) bool {
	obj := ftc.CalleeObject(info, call)
	if obj == nil {
		// Function-typed values still have a signature.
		if tv, ok := info.Types[call.Fun]; ok {
			if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
				return sigAcceptsCtx(sig)
			}
		}
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && sigAcceptsCtx(sig)
}

func sigAcceptsCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeBlocks imports the lockorder summary of the call's resolved
// callee(s); a non-empty string is the blocking reason.
func (c *checker) calleeBlocks(call *ast.CallExpr) string {
	res := c.graph.ResolveCall(call)
	if res.Static != nil {
		var fact lockorder.LockFact
		if c.pass.ImportObjectFact(res.Static, &fact) {
			return fact.Blocks
		}
		return ""
	}
	for _, cand := range res.Candidates {
		var fact lockorder.LockFact
		if c.pass.ImportFactByKey(cand.PkgPath, cand.ObjKey, &fact) && fact.Blocks != "" {
			return fmt.Sprintf("candidate %s: %s", cand.String(), fact.Blocks)
		}
	}
	return ""
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	info := c.pass.Info
	params := ctxParams(info, fd)
	hasCtx := len(params) > 0

	// Track real uses of each ctx param: a mention on the RHS of an
	// all-blank assignment (`_ = ctx`) is a discard, not a use.
	realUse := map[*types.Var]bool{}
	discardOnly := map[*types.Var]ast.Node{}
	callsCtxAware := false

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if allBlank(n.Lhs) {
				for _, rhs := range n.Rhs {
					if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok && isParamOf(v, params) {
							discardOnly[v] = n
							return false // don't count this mention as a use
						}
					}
				}
			}
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && isParamOf(v, params) {
				realUse[v] = true
			}
		case *ast.CallExpr:
			if calleeAcceptsCtx(info, n) {
				callsCtxAware = true
			}
			if name := rootCtxCall(info, n); name != "" {
				c.reportRootCtx(n, name, hasCtx)
			}
		}
		return true
	})

	if !callsCtxAware {
		return
	}
	for _, p := range params {
		if realUse[p] || p.Name() == "_" {
			continue
		}
		if at, discarded := discardOnly[p]; discarded {
			c.pass.Reportf(at.Pos(), "incoming context %q is discarded (`_ = %s`) but this function calls context-accepting callees; thread it through", p.Name(), p.Name())
		} else {
			c.pass.Reportf(p.Pos(), "incoming context %q is never used but this function calls context-accepting callees; thread it through", p.Name())
		}
	}
}

// reportRootCtx emits the tiered Background()/TODO() diagnostic.
func (c *checker) reportRootCtx(call *ast.CallExpr, name string, hasCtx bool) {
	if hasCtx {
		c.pass.Reportf(call.Pos(), "context.%s() discards the incoming ctx; pass ctx instead", name)
		return
	}
	// Does the fresh root feed a blocking callee? Look for the call
	// expression whose argument list contains this Background() call —
	// resolved through the call graph and lockorder facts.
	if parent, reason := c.blockingConsumer(call); parent != nil {
		c.pass.Reportf(call.Pos(), "context.%s() roots an unbounded blocking call (%s); plumb a caller context so it can be cancelled", name, reason)
		return
	}
	c.pass.Reportf(call.Pos(), "context.%s() in library code: accept a context from the caller instead of fabricating a root", name)
}

// blockingConsumer finds the enclosing call that takes the root
// context as a direct argument and (per imported facts) blocks.
func (c *checker) blockingConsumer(root *ast.CallExpr) (*ast.CallExpr, string) {
	for _, f := range c.pass.Files {
		var found *ast.CallExpr
		var reason string
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found != nil {
				return found == nil
			}
			for _, arg := range call.Args {
				if ast.Unparen(arg) == root {
					if r := c.calleeBlocks(call); r != "" {
						found, reason = call, r
					}
					return false
				}
			}
			return true
		})
		if found != nil {
			return found, reason
		}
	}
	return nil, ""
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

func isParamOf(v *types.Var, params []*types.Var) bool {
	for _, p := range params {
		if p == v {
			return true
		}
	}
	return false
}
