// Package callgraph is the shared cross-package call-graph pass the
// interprocedural analyzers (lockorder, ctxflow, gostop, hotpathlock,
// poollease) build on. It reports nothing itself; its value is
//
//   - the per-package Graph result: every declared function's call
//     sites with their statically resolved callees, plus CHA-style
//     candidate sets for interface method calls;
//   - the Impls package fact: which concrete in-repo methods implement
//     which interface methods. Each package exports its own
//     implementations unioned with those of its imports, so by the
//     time a package is analyzed the accumulated fact covers its whole
//     import closure — the facts channel is the import graph, which is
//     exactly the visibility a class-hierarchy analysis needs (an
//     implementation in a package nobody below you imports cannot be
//     called through any interface value you can construct).
//
// Resolution is deliberately conservative: a call through a plain
// function value stays unresolved (nil Static, no candidates), and
// consumers treat unresolved callees per their own sound default.
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/ftc"
)

// A Ref names a function cross-package: the fact key pair.
type Ref struct {
	PkgPath string
	ObjKey  string
}

// String renders the ref for diagnostics ("pkg.(*T).M" shortened to
// the package's base name).
func (r Ref) String() string {
	base := r.PkgPath
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return base + "." + r.ObjKey
}

// ShortRef renders a function object for diagnostics, e.g.
// "memtier.(*Tier).Get".
func ShortRef(obj types.Object) string {
	if ref, ok := MakeRef(obj); ok {
		return ref.String()
	}
	return obj.Name()
}

// MakeRef builds the cross-package ref for a function object, if it is
// package-level.
func MakeRef(fn types.Object) (Ref, bool) {
	if fn == nil || fn.Pkg() == nil {
		return Ref{}, false
	}
	key, ok := ftc.ObjectKey(fn)
	if !ok {
		return Ref{}, false
	}
	return Ref{PkgPath: fn.Pkg().Path(), ObjKey: key}, true
}

// Impls is the accumulated package fact: interface method → concrete
// in-repo implementations, covering this package and its whole import
// closure.
type Impls struct {
	Entries []ImplEntry
}

// AFact marks Impls as a fact.
func (*Impls) AFact() {}

// An ImplEntry records that Impl's method implements
// (IfacePkg.Iface).Method.
type ImplEntry struct {
	IfacePkg string
	Iface    string
	Method   string
	Impl     Ref
}

// A Graph is the per-package call-graph result.
type Graph struct {
	pass *ftc.Pass
	// sites maps each call expression in the package to its resolution.
	sites map[*ast.CallExpr]Resolution
	// impls is the accumulated implementation index, keyed by
	// interface method.
	impls map[implKey][]Ref
}

// A Resolution is what a call site dispatches to.
type Resolution struct {
	// Static is the called function object for direct calls and
	// concrete method calls (same-package or imported), nil otherwise.
	Static types.Object
	// Candidates are the CHA candidates for an interface method call:
	// every in-repo implementation visible in the import closure.
	Candidates []Ref
	// Iface is the interface method object for interface calls.
	Iface *types.Func
}

type implKey struct{ pkg, iface, method string }

// Analyzer is the callgraph pass.
var Analyzer = &ftc.Analyzer{
	Name:      "callgraph",
	Doc:       "builds the cross-package call graph (static calls + CHA interface resolution) consumed by the interprocedural analyzers",
	FactTypes: []ftc.Fact{(*Impls)(nil)},
	Run:       run,
}

func run(pass *ftc.Pass) (any, error) {
	g := &Graph{
		pass:  pass,
		sites: map[*ast.CallExpr]Resolution{},
		impls: map[implKey][]Ref{},
	}

	// Accumulate implementation entries: imports' facts first, then
	// this package's own types against every visible interface.
	seen := map[ImplEntry]bool{}
	add := func(e ImplEntry) {
		if !seen[e] {
			seen[e] = true
			g.impls[implKey{e.IfacePkg, e.Iface, e.Method}] = append(g.impls[implKey{e.IfacePkg, e.Iface, e.Method}], e.Impl)
		}
	}
	var accumulated []ImplEntry
	for _, imp := range pass.Pkg.Imports() {
		var dep Impls
		if pass.ImportPackageFact(imp, &dep) {
			for _, e := range dep.Entries {
				add(e)
				accumulated = append(accumulated, e)
			}
		}
	}
	own := localImpls(pass)
	for _, e := range own {
		add(e)
		accumulated = append(accumulated, e)
	}
	sort.Slice(accumulated, func(i, j int) bool {
		a, b := accumulated[i], accumulated[j]
		if a.IfacePkg != b.IfacePkg {
			return a.IfacePkg < b.IfacePkg
		}
		if a.Iface != b.Iface {
			return a.Iface < b.Iface
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.Impl != b.Impl && (a.Impl.PkgPath < b.Impl.PkgPath || (a.Impl.PkgPath == b.Impl.PkgPath && a.Impl.ObjKey < b.Impl.ObjKey))
	})
	pass.ExportPackageFact(&Impls{Entries: dedupe(accumulated)})

	// Resolve every call site.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			g.sites[call] = g.resolve(call)
			return true
		})
	}
	return g, nil
}

func dedupe(entries []ImplEntry) []ImplEntry {
	out := entries[:0]
	var last ImplEntry
	for i, e := range entries {
		if i > 0 && e == last {
			continue
		}
		last = e
		out = append(out, e)
	}
	return out
}

// ResolveCall returns the resolution of a call expression in the
// analyzed package (zero Resolution for unknown calls).
func (g *Graph) ResolveCall(call *ast.CallExpr) Resolution {
	return g.sites[call]
}

// localImpls scans the package's named types against every interface
// visible in the package or its import closure and records which
// interface methods they implement.
func localImpls(pass *ftc.Pass) []ImplEntry {
	ifaces := visibleInterfaces(pass.Pkg)
	var out []ImplEntry
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		for _, cand := range []types.Type{named, types.NewPointer(named)} {
			for _, entry := range ifaces {
				if !types.Implements(cand, entry.iface) {
					continue
				}
				for i := 0; i < entry.iface.NumMethods(); i++ {
					m := entry.iface.Method(i)
					obj, _, _ := types.LookupFieldOrMethod(cand, true, pass.Pkg, m.Name())
					fn, ok := obj.(*types.Func)
					if !ok || fn.Pkg() != pass.Pkg {
						continue // promoted from an embedded foreign type: its home package exports it
					}
					if ref, ok := MakeRef(fn); ok {
						out = append(out, ImplEntry{
							IfacePkg: entry.pkgPath,
							Iface:    entry.name,
							Method:   m.Name(),
							Impl:     ref,
						})
					}
				}
			}
		}
	}
	return out
}

type ifaceEntry struct {
	pkgPath string
	name    string
	iface   *types.Interface
}

// visibleInterfaces enumerates the non-empty interfaces declared in
// pkg and its transitive imports.
func visibleInterfaces(pkg *types.Package) []ifaceEntry {
	var out []ifaceEntry
	seen := map[*types.Package]bool{}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			visit(imp)
		}
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok || iface.NumMethods() == 0 {
				continue
			}
			out = append(out, ifaceEntry{pkgPath: p.Path(), name: name, iface: iface})
		}
	}
	visit(pkg)
	return out
}

// resolve classifies one call site.
func (g *Graph) resolve(call *ast.CallExpr) Resolution {
	info := g.pass.Info
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if fn, ok := s.Obj().(*types.Func); ok {
				if isIfaceMethod(fn) {
					return Resolution{Iface: fn, Candidates: g.ifaceCandidates(fn)}
				}
				return Resolution{Static: fn}
			}
		}
	}
	if obj := ftc.CalleeObject(info, call); obj != nil {
		if fn, ok := obj.(*types.Func); ok && isIfaceMethod(fn) {
			return Resolution{Iface: fn, Candidates: g.ifaceCandidates(fn)}
		}
		return Resolution{Static: obj}
	}
	return Resolution{}
}

// isIfaceMethod reports whether fn is an abstract (interface) method.
func isIfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// ifaceCandidates looks up the accumulated CHA candidates for an
// interface method.
func (g *Graph) ifaceCandidates(m *types.Func) []Ref {
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil // anonymous interface: no stable key
	}
	pkgPath := ""
	if named.Obj().Pkg() != nil {
		pkgPath = named.Obj().Pkg().Path()
	}
	return g.impls[implKey{pkgPath, named.Obj().Name(), m.Name()}]
}
