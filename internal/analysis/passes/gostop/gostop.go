// Package gostop checks goroutine stoppability (DESIGN.md §17): every
// `go` statement in library code must start work that has a reachable
// stop path, or the component that spawned it can never shut down
// cleanly — the exact failure mode PR 9's policy controller and PR 8's
// RAM-tier janitor were built to avoid.
//
// A function is *unstoppable* when its body contains a forever loop
// (`for {}` or `for true {}`) with no exit: no return, no break, no
// goto anywhere inside the loop. Loops that range over a channel are
// stoppable by construction — closing the channel ends them — and a
// select case that returns or breaks is an exit like any other.
// Unstoppability propagates interprocedurally: a function that calls
// an unstoppable function is itself unstoppable (once entered, it may
// never come back), and the verdict crosses package boundaries as a
// GoStopFact.
//
// At each `go` statement the spawned body is resolved — a function
// literal directly, a static callee through the call graph and its
// facts — and an unstoppable spawn is reported at the `go`.
//
// Exemptions: _test.go files and package main (a daemon's top-level
// accept/serve loop legitimately runs for the life of the process).
// Function literals nested inside a body are separate goroutine
// payloads and do not make their *definer* unstoppable.
package gostop

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/ftc"
	"repro/internal/analysis/passes/callgraph"
)

// A GoStopFact marks a function that, once entered, may never return.
type GoStopFact struct {
	Why string // which loop or callee makes it unstoppable
}

// AFact marks GoStopFact as a fact.
func (*GoStopFact) AFact() {}

// Analyzer is the gostop pass.
var Analyzer = &ftc.Analyzer{
	Name:      "gostop",
	Doc:       "every goroutine started in library code must have a reachable stop path (propagated across packages via facts)",
	Requires:  []*ftc.Analyzer{callgraph.Analyzer},
	FactTypes: []ftc.Fact{(*GoStopFact)(nil)},
	Run:       run,
}

type checker struct {
	pass      *ftc.Pass
	graph     *callgraph.Graph
	summaries map[types.Object]string // "" = stoppable
	onStack   map[types.Object]bool
}

func run(pass *ftc.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	c := &checker{
		pass:      pass,
		graph:     pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph),
		summaries: map[types.Object]string{},
		onStack:   map[types.Object]bool{},
	}

	// Summarize and export facts for every declared function first, so
	// CHA candidates within this package resolve, then audit go
	// statements.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			why := c.summarize(obj, fd.Body)
			if _, exportable := ftc.ObjectKey(obj); exportable && why != "" {
				pass.ExportObjectFact(obj, &GoStopFact{Why: why})
			}
		}
	}

	for _, f := range pass.Files {
		if fname := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if why := c.spawnUnstoppable(gs.Call); why != "" {
				pass.Reportf(gs.Pos(), "goroutine started here has no stop path: %s", why)
			}
			return true
		})
	}
	return nil, nil
}

// spawnUnstoppable resolves the goroutine payload of a `go` statement.
func (c *checker) spawnUnstoppable(call *ast.CallExpr) string {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return c.bodyVerdict(lit.Body)
	}
	res := c.graph.ResolveCall(call)
	if res.Static != nil {
		return c.calleeWhy(res.Static)
	}
	// Interface-dispatched spawn: report only when every in-repo
	// candidate is unstoppable — any stoppable implementation makes
	// the spawn potentially fine.
	if res.Iface != nil && len(res.Candidates) > 0 {
		for _, cand := range res.Candidates {
			var fact GoStopFact
			if !c.pass.ImportFactByKey(cand.PkgPath, cand.ObjKey, &fact) {
				return ""
			}
		}
		return fmt.Sprintf("every implementation of %s loops forever without an exit", callgraph.ShortRef(res.Iface))
	}
	return ""
}

// calleeWhy returns the unstoppability reason for a resolved callee:
// local summary for same-package functions, imported fact otherwise.
func (c *checker) calleeWhy(fn types.Object) string {
	if fn.Pkg() == c.pass.Pkg {
		if why, ok := c.summaries[fn]; ok {
			return why
		}
		if fd := ftc.FuncFor(c.pass.Info, c.pass.Files, fn); fd != nil && fd.Body != nil {
			return c.summarize(fn, fd.Body)
		}
		return ""
	}
	var fact GoStopFact
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Why
	}
	return ""
}

// summarize memoizes a function's unstoppability verdict.
func (c *checker) summarize(obj types.Object, body *ast.BlockStmt) string {
	if why, ok := c.summaries[obj]; ok {
		return why
	}
	if c.onStack[obj] {
		return "" // recursion: verdict settles at the cycle's entry
	}
	c.onStack[obj] = true
	defer func() { c.onStack[obj] = false }()
	why := c.bodyVerdict(body)
	c.summaries[obj] = why
	return why
}

// bodyVerdict inspects one function body (excluding nested FuncLits):
// a forever loop with no exit, or a call to an unstoppable function.
func (c *checker) bodyVerdict(body *ast.BlockStmt) string {
	verdict := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if verdict != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if isForever(c.pass.Info, n) && !hasExit(n.Body) {
				verdict = fmt.Sprintf("for-loop at %s never breaks or returns", c.pass.Fset.Position(n.Pos()))
				return false
			}
		case *ast.CallExpr:
			res := c.graph.ResolveCall(n)
			if res.Static != nil {
				if why := c.calleeWhy(res.Static); why != "" {
					verdict = fmt.Sprintf("calls %s, which has no stop path (%s)", callgraph.ShortRef(res.Static), why)
					return false
				}
			}
		}
		return true
	})
	return verdict
}

// isForever reports whether the for statement can only be left through
// an explicit exit: no condition, or a constant-true condition.
func isForever(info *types.Info, s *ast.ForStmt) bool {
	if s.Cond == nil {
		return true
	}
	tv, ok := info.Types[s.Cond]
	return ok && tv.Value != nil && tv.Value.String() == "true"
}

// hasExit reports whether a forever-loop body contains any way out:
// return, break, goto, or a panic call. Any break counts, even of an
// inner switch — the approximation errs toward not reporting.
func hasExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok.String() == "break" || n.Tok.String() == "goto" {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}
