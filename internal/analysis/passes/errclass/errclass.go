// Package errclass guards the retry-vs-detector error taxonomy of the
// HVAC read path (internal/hvac/client.go, PR 4): a failed read is
// classified into the errClass enum, and the entire fault-tolerance
// argument rests on two properties of how that enum is consumed:
//
//  1. Every switch over errClass is exhaustive — each declared class
//     constant appears in some case clause. A `default:` does not
//     count: a new class added to the enum must force each consumer
//     site to decide deliberately whether it is retryable or
//     detector evidence, not silently inherit whichever bucket the
//     default happened to encode.
//  2. classTimeout never flows into a retry decision. A timeout-class
//     failure already consumed a full TTL — it is the failure
//     detector's evidence, and retrying it would both starve the
//     detector and double the latency bill. Concretely: a case clause
//     covering classTimeout must not call any rpc.RetryPolicy method
//     and must not `continue` an enclosing loop (the retry idiom of
//     readFromNodeOpts).
//
// The pass applies to packages named "hvac" and keys the enum by its
// type name, errClass.
package errclass

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis/ftc"
)

// Analyzer is the errclass pass.
var Analyzer = &ftc.Analyzer{
	Name: "errclass",
	Doc:  "switches over the hvac errClass enum must be exhaustive, and classTimeout must never reach a retry decision",
	Run:  run,
}

const enumTypeName = "errClass"
const timeoutConstName = "classTimeout"

func run(pass *ftc.Pass) (any, error) {
	if !ftc.PkgNamed(pass.Pkg, "hvac") {
		return nil, nil
	}
	enum := findEnum(pass)
	if enum == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok || !isEnumType(tv.Type, enum.typ) {
				return true
			}
			checkExhaustive(pass, sw, enum)
			checkTimeoutClauses(pass, sw, enum)
			return true
		})
	}
	return nil, nil
}

// enumInfo is the declared constant set of the errClass type.
type enumInfo struct {
	typ     *types.Named
	consts  []*types.Const
	timeout *types.Const
}

// findEnum locates the errClass named type and its package-level
// constants.
func findEnum(pass *ftc.Pass) *enumInfo {
	scope := pass.Pkg.Scope()
	tn, ok := scope.Lookup(enumTypeName).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	e := &enumInfo{typ: named}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !isEnumType(c.Type(), named) {
			continue
		}
		e.consts = append(e.consts, c)
		if c.Name() == timeoutConstName {
			e.timeout = c
		}
	}
	if len(e.consts) < 2 {
		return nil
	}
	return e
}

func isEnumType(t types.Type, enum *types.Named) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() == enum.Obj()
}

// checkExhaustive verifies every enum constant appears in a case list.
func checkExhaustive(pass *ftc.Pass, sw *ast.SwitchStmt, enum *enumInfo) {
	covered := map[string]bool{} // by exact constant value
	for _, stmt := range sw.Body.List {
		clause := stmt.(*ast.CaseClause)
		for _, e := range clause.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for _, c := range enum.consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Switch,
			"switch over %s is not exhaustive: missing %v (a default clause does not count — each class must be handled deliberately)",
			enumTypeName, missing)
	}
}

// checkTimeoutClauses enforces rule 2 inside every clause covering
// classTimeout.
func checkTimeoutClauses(pass *ftc.Pass, sw *ast.SwitchStmt, enum *enumInfo) {
	if enum.timeout == nil {
		return
	}
	for _, stmt := range sw.Body.List {
		clause := stmt.(*ast.CaseClause)
		if !clauseCovers(pass, clause, enum.timeout) {
			continue
		}
		for _, s := range clause.Body {
			ast.Inspect(s, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BranchStmt:
					if n.Tok == token.CONTINUE {
						pass.Reportf(n.Pos(), "continue in a %s clause retries a timeout-class failure; timeouts are detector evidence and must never be retried", timeoutConstName)
					}
				case *ast.CallExpr:
					if fn, ok := ftc.CalleeObject(pass.Info, n).(*types.Func); ok {
						if ftc.ReceiverNamed(fn, "rpc", "RetryPolicy") {
							pass.Reportf(n.Pos(), "rpc.RetryPolicy.%s called in a %s clause; timeout-class failures must never reach the retry policy", fn.Name(), timeoutConstName)
						}
					}
				case *ast.FuncLit:
					return false // a deferred/spawned closure is not this clause's control flow
				}
				return true
			})
		}
	}
}

// clauseCovers reports whether clause lists the given constant (or is
// a default clause, which covers everything not otherwise listed —
// exhaustiveness already flags those, but the timeout rule still
// applies when classTimeout can reach it).
func clauseCovers(pass *ftc.Pass, clause *ast.CaseClause, c *types.Const) bool {
	for _, e := range clause.List {
		if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
			if constant.Compare(tv.Value, token.EQL, c.Val()) {
				return true
			}
		}
	}
	return false
}
