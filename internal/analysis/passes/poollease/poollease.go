// Package poollease enforces the pooled-lease discipline (DESIGN.md
// §8, §15) over both lease-returning APIs:
//
//   - wire.ReadFramePooled: every successful call returns a *wire.Buf
//     lease that must reach Release exactly once, and the frame payload
//     aliasing the lease must not be used after the release;
//   - (*memtier.Tier).Get: every ok==true hit returns a *memtier.Lease
//     that must reach Release exactly once — or be handed off, most
//     commonly as a Release method value stored into an
//     rpc.LeasedResp{Release: lease.Release} composite literal, which
//     transfers the obligation to the RPC flush path.
//
// The check is a path-sensitive walk of the acquiring function's body:
//
//   - on every path from the acquisition to a path end (return, branch,
//     loop re-entry, end of function) the lease must be released,
//     deferred for release, or handed off (passed to another function,
//     returned, or captured by a goroutine/closure that releases it);
//   - paths through an `if err != nil` guard on the acquisition's own
//     error are exempt — ReadFramePooled documents that on error the
//     lease is already released and nil; for Tier.Get the exempt paths
//     are the ok==false branches (a miss returns no lease);
//   - after an inline (non-deferred) Release, any further use of the
//     lease or the frame variable on that path is reported;
//   - returning the frame variable while the lease is released (or
//     deferred — defers run before the caller sees the value) is
//     reported, as is storing the frame or lease into a non-local
//     location without a release in the receiving code;
//   - a goroutine that captures the lease or frame without releasing
//     the lease is reported: the parent cannot know when the payload
//     stops being used.
//
// The walk is path-sensitive within the acquiring function and
// *interprocedural about handoffs*: passing the lease to another
// function only discharges the obligation when the callee actually
// consumes it. Each package exports a LeaseSinkFact for every function
// that releases (or hands further along) a lease-typed parameter, and
// the walker resolves call-site handoffs through the call graph: a
// statically known callee that does NOT sink the lease leaves the
// obligation with the caller, so a missing release downstream of a
// look-don't-own helper is still reported. Unresolvable callees
// (function values, stdlib) keep the old trusting behavior. Aliases
// remain syntactic (a copy of the frame struct is not tracked); the
// check is tuned to catch the real regression class — an early return
// added to a handler between the acquisition and the release.
package poollease

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/ftc"
	"repro/internal/analysis/passes/callgraph"
)

// A LeaseSinkFact records which of a function's parameters it consumes:
// a lease passed in one of these positions is released (directly,
// deferred, via a stored Release method value, or by handing it to
// another sink).
type LeaseSinkFact struct {
	Params []int
}

// AFact marks LeaseSinkFact as a fact.
func (*LeaseSinkFact) AFact() {}

// Analyzer is the poollease pass.
var Analyzer = &ftc.Analyzer{
	Name:      "poollease",
	Doc:       "every pooled lease (wire.ReadFramePooled, memtier.Tier.Get) must reach Release on all paths, and the payload must not be used after release",
	Requires:  []*ftc.Analyzer{callgraph.Analyzer},
	FactTypes: []ftc.Fact{(*LeaseSinkFact)(nil)},
	Run:       run,
}

func run(pass *ftc.Pass) (any, error) {
	s := &sinks{
		pass:      pass,
		graph:     pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph),
		summaries: map[types.Object][]int{},
		onStack:   map[types.Object]bool{},
	}
	// Sink summaries first (and their facts), so both this package's
	// walkers and downstream packages can resolve handoffs.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			params := s.summarize(obj, fd)
			if _, exportable := ftc.ObjectKey(obj); exportable && len(params) > 0 {
				pass.ExportObjectFact(obj, &LeaseSinkFact{Params: params})
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, s, fd)
		}
	}
	return nil, nil
}

// isLeaseType matches the two pooled-lease types: *wire.Buf and
// *memtier.Lease (matched by package name so testdata stubs qualify).
func isLeaseType(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	switch obj.Name() {
	case "Buf":
		return ftc.PkgNamed(obj.Pkg(), "wire")
	case "Lease":
		return ftc.PkgNamed(obj.Pkg(), "memtier")
	}
	return false
}

// sinks computes which lease-typed parameters a function consumes.
type sinks struct {
	pass      *ftc.Pass
	graph     *callgraph.Graph
	summaries map[types.Object][]int
	onStack   map[types.Object]bool
}

// summarize returns the (sorted) indices of fd's lease-typed parameters
// that its body consumes.
func (s *sinks) summarize(obj types.Object, fd *ast.FuncDecl) []int {
	if sum, ok := s.summaries[obj]; ok {
		return sum
	}
	if s.onStack[obj] {
		return nil
	}
	s.onStack[obj] = true
	defer func() { s.onStack[obj] = false }()

	info := s.pass.Info
	// Collect lease-typed parameter objects with their indices.
	var paramObjs []types.Object
	var paramIdx []int
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				if i < len(field.Names) {
					if po, ok := info.Defs[field.Names[i]].(*types.Var); ok && isLeaseType(po.Type()) {
						paramObjs = append(paramObjs, po)
						paramIdx = append(paramIdx, idx)
					}
				}
				idx++
			}
		}
	}
	var out []int
	for i, po := range paramObjs {
		if s.consumes(fd.Body, po) {
			out = append(out, paramIdx[i])
		}
	}
	s.summaries[obj] = out
	return out
}

// consumes reports whether body releases obj: obj.Release() (called or
// deferred), obj.Release taken as a method value (stored somewhere that
// will run it), or obj passed onward in a sink position of a resolvable
// callee.
func (s *sinks) consumes(body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "Release" {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && s.pass.Info.Uses[id] == obj {
					found = true
				}
			}
		case *ast.CallExpr:
			for i, arg := range n.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok || s.pass.Info.Uses[id] != obj {
					continue
				}
				if s.callSinksArg(n, i) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// callSinksArg decides whether argument position i of call reaches a
// consuming callee: same-package summaries, cross-package
// LeaseSinkFacts, or — for unresolvable callees — trusted by default.
func (s *sinks) callSinksArg(call *ast.CallExpr, i int) bool {
	res := s.graph.ResolveCall(call)
	fn := res.Static
	if fn == nil {
		if res.Iface != nil {
			// Interface dispatch: sink if any known candidate sinks.
			for _, cand := range res.Candidates {
				var fact LeaseSinkFact
				if s.pass.ImportFactByKey(cand.PkgPath, cand.ObjKey, &fact) && containsInt(fact.Params, i) {
					return true
				}
			}
			return false
		}
		return true // function value: unknowable, trust the handoff
	}
	if fn.Pkg() == s.pass.Pkg {
		if fd := ftc.FuncFor(s.pass.Info, s.pass.Files, fn); fd != nil && fd.Body == nil {
			return true // bodyless (assembly/external): trust
		} else if fd != nil {
			return containsInt(s.summarize(fn, fd), i)
		}
		return true
	}
	var fact LeaseSinkFact
	if s.pass.ImportObjectFact(fn, &fact) {
		return containsInt(fact.Params, i)
	}
	// No fact: either a stdlib/unanalyzed callee (trust) or an analyzed
	// repo function that provably does not sink (reject). Repo packages
	// are exactly the ones with a module-prefixed path in the fact
	// store's world; the practical discriminator is whether the callee
	// has lease-typed parameters at all — if it does and no fact was
	// exported, its home package was analyzed and found it non-consuming.
	if sig, ok := fn.Type().(*types.Signature); ok {
		for j := 0; j < sig.Params().Len(); j++ {
			if isLeaseType(sig.Params().At(j).Type()) {
				return false
			}
		}
	}
	return true
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// isReadFramePooled matches calls to wire.ReadFramePooled.
func isReadFramePooled(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := ftc.CalleeObject(info, call).(*types.Func)
	return ok && fn.Name() == "ReadFramePooled" && ftc.PkgNamed(fn.Pkg(), "wire")
}

// isMemtierGet matches calls to (*memtier.Tier).Get — the RAM tier's
// lease-returning read: `lease, ok := tier.Get(path)`.
func isMemtierGet(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := ftc.CalleeObject(info, call).(*types.Func)
	if !ok || fn.Name() != "Get" || !ftc.PkgNamed(fn.Pkg(), "memtier") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	// Results (*Lease, bool) distinguish the tier read from any other
	// memtier Get that may appear later.
	res := sig.Results()
	if res.Len() != 2 {
		return false
	}
	basic, ok := res.At(1).Type().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

// acquisition is one lease-acquiring call site: either
// `frame, lease, err := wire.ReadFramePooled(...)` or
// `lease, ok := tier.Get(path)`.
type acquisition struct {
	stmt  *ast.AssignStmt
	call  *ast.CallExpr
	what  string       // API name for diagnostics
	frame types.Object // may be nil (assigned to _, or a Get acquisition)
	lease types.Object // may be nil: that is itself a finding
	err   types.Object // may be nil (err-guarded acquisitions only)
	ok    types.Object // may be nil (ok-guarded acquisitions only)
}

func checkFunc(pass *ftc.Pass, s *sinks, fd *ast.FuncDecl) {
	var acqs []acquisition
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					switch {
					case isReadFramePooled(pass.Info, call):
						a := acquisition{stmt: n, call: call, what: "wire.ReadFramePooled"}
						if len(n.Lhs) == 3 {
							a.frame = lhsObject(pass.Info, n.Lhs[0])
							a.lease = lhsObject(pass.Info, n.Lhs[1])
							a.err = lhsObject(pass.Info, n.Lhs[2])
						}
						acqs = append(acqs, a)
					case isMemtierGet(pass.Info, call):
						a := acquisition{stmt: n, call: call, what: "memtier.Tier.Get"}
						if len(n.Lhs) == 2 {
							a.lease = lhsObject(pass.Info, n.Lhs[0])
							a.ok = lhsObject(pass.Info, n.Lhs[1])
						}
						acqs = append(acqs, a)
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				switch {
				case isReadFramePooled(pass.Info, call):
					pass.Reportf(call.Pos(), "wire.ReadFramePooled result discarded: the lease can never be released")
				case isMemtierGet(pass.Info, call):
					pass.Reportf(call.Pos(), "memtier.Tier.Get result discarded: a hit's lease can never be released (use Has for existence checks)")
				}
			}
		}
		return true
	})
	for _, a := range acqs {
		if a.lease == nil {
			pass.Reportf(a.call.Pos(), "%s lease assigned to _: the lease can never be released", a.what)
			continue
		}
		w := &walker{
			pass:     pass,
			sinks:    s,
			fn:       fd,
			acq:      a,
			reported: map[token.Pos]bool{},
		}
		ends := w.walkStmts(fd.Body.List, state{})
		for _, st := range ends {
			w.endPath(fd.Body.Rbrace, st)
		}
	}
}

func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// state is the lease obligation along one control-flow path.
type state struct {
	active    bool // the acquisition has executed on this path
	released  bool // Release called, deferred, or ownership handed off
	deferred  bool // released via defer (payload valid until return)
	handoff   bool // ownership transferred (call arg, return, goroutine)
	errorPath bool // inside the acquisition's own err != nil branch
	relPos    token.Pos
}

type walker struct {
	pass     *ftc.Pass
	sinks    *sinks
	fn       *ast.FuncDecl
	acq      acquisition
	reported map[token.Pos]bool
	// loopDepth tracks whether the acquisition happened inside the
	// innermost loop currently being walked (per-iteration obligation).
	loops []*ast.BlockStmt
}

func (w *walker) reportf(pos token.Pos, format string, args ...any) {
	if !w.reported[pos] {
		w.reported[pos] = true
		w.pass.Reportf(pos, format, args...)
	}
}

// endPath checks the obligation where a path terminates.
func (w *walker) endPath(pos token.Pos, st state) {
	if !st.active || st.released || st.errorPath {
		return
	}
	w.reportf(pos, "%s lease acquired at %s is not released on this path",
		w.acq.what, w.pass.Fset.Position(w.acq.call.Pos()))
}

// usesObj reports whether n references obj.
func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	if obj == nil || n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isReleaseCall matches lease.Release().
func (w *walker) isReleaseCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && w.pass.Info.Uses[id] == w.acq.lease
}

// containsRelease reports whether n contains lease.Release() anywhere
// (used for closures and goroutines that take over the lease).
func (w *walker) containsRelease(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok && w.isReleaseCall(call) {
			found = true
		}
		return !found
	})
	return found
}

// checkAfterRelease flags uses of the lease or frame after an inline
// release. skip is the node (if any) that legitimately mentions them.
func (w *walker) checkAfterRelease(n ast.Node, st state) {
	if !st.active || !st.released || st.deferred || st.handoff {
		return
	}
	for _, obj := range []types.Object{w.acq.lease, w.acq.frame} {
		if obj == nil {
			continue
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok && w.isReleaseCall(call) {
				return false // double Release is a documented no-op
			}
			if id, ok := c.(*ast.Ident); ok && w.pass.Info.Uses[id] == obj {
				w.reportf(id.Pos(), "%s used after the pooled lease was released at %s",
					id.Name, w.pass.Fset.Position(st.relPos))
			}
			return true
		})
	}
}

// walkStmts walks a statement list, returning the states that fall
// through its end.
func (w *walker) walkStmts(stmts []ast.Stmt, st state) []state {
	cur := []state{st}
	for _, s := range stmts {
		var next []state
		for _, c := range cur {
			next = append(next, w.walkStmt(s, c)...)
		}
		cur = dedupe(next)
		if len(cur) == 0 {
			break // every path terminated
		}
	}
	return cur
}

// dedupe collapses identical path states so branch-heavy functions
// stay linear instead of exponential.
func dedupe(states []state) []state {
	if len(states) < 2 {
		return states
	}
	seen := map[state]bool{}
	out := states[:0]
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// errGuard classifies an if-condition as a guard on the acquisition's
// validity: `err != nil` / `err == nil` for ReadFramePooled, `ok` /
// `!ok` for Tier.Get. Returns (isGuard, thenIsLeaseFreePath) — the
// lease-free branch carries no obligation (on error the lease is
// already released; on a miss there never was one).
func (w *walker) errGuard(cond ast.Expr) (bool, bool) {
	cond = ast.Unparen(cond)
	if w.acq.ok != nil {
		if id, isIdent := cond.(*ast.Ident); isIdent && w.pass.Info.Uses[id] == w.acq.ok {
			return true, false // then-branch holds the lease
		}
		if ue, isNot := cond.(*ast.UnaryExpr); isNot && ue.Op == token.NOT {
			if id, isIdent := ast.Unparen(ue.X).(*ast.Ident); isIdent && w.pass.Info.Uses[id] == w.acq.ok {
				return true, true // then-branch is the miss path
			}
		}
		return false, false
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || w.acq.err == nil {
		return false, false
	}
	var other ast.Expr
	switch {
	case usesObj(w.pass.Info, be.X, w.acq.err):
		other = be.Y
	case usesObj(w.pass.Info, be.Y, w.acq.err):
		other = be.X
	default:
		return false, false
	}
	if id, ok := ast.Unparen(other).(*ast.Ident); !ok || id.Name != "nil" {
		return false, false
	}
	switch be.Op {
	case token.NEQ:
		return true, true
	case token.EQL:
		return true, false
	}
	return false, false
}

// scanExprEvents processes the lease events inside one evaluated
// expression tree: releases and handoffs. Returns the updated state.
func (w *walker) scanExprEvents(n ast.Node, st state) state {
	if !st.active || st.released {
		return st
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if st.released {
			return false
		}
		switch c := c.(type) {
		case *ast.CallExpr:
			if w.isReleaseCall(c) {
				st.released = true
				st.relPos = c.Pos()
				return false
			}
			// Lease passed to another function: a handoff only if the
			// callee consumes it — resolved through the call graph and,
			// cross-package, LeaseSinkFacts. A known non-consuming
			// callee (a look-don't-own helper) leaves the obligation
			// here.
			for i, arg := range c.Args {
				if usesObj(w.pass.Info, arg, w.acq.lease) {
					if w.sinks.callSinksArg(c, i) {
						st.released = true
						st.handoff = true
					}
					return false
				}
			}
		case *ast.SelectorExpr:
			// lease.Release as a method value (not a call — calls are
			// consumed above): ownership handoff to wherever the value
			// lands, canonically rpc.LeasedResp{Release: lease.Release}.
			if c.Sel.Name == "Release" {
				if id, isIdent := ast.Unparen(c.X).(*ast.Ident); isIdent && w.pass.Info.Uses[id] == w.acq.lease {
					st.released = true
					st.handoff = true
					return false
				}
			}
		case *ast.FuncLit:
			// A closure that releases the lease takes over the
			// obligation wherever it ends up running.
			if w.containsRelease(c) {
				st.released = true
				st.handoff = true
			}
			return false
		}
		return true
	})
	return st
}

func (w *walker) walkStmt(s ast.Stmt, st state) []state {
	// Activation: the acquisition statement itself.
	if s == ast.Stmt(w.acq.stmt) {
		st.active = true
		st.released = false
		st.errorPath = false
		return []state{st}
	}
	w.checkAfterRelease(s, st)

	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.ExprStmt:
		return []state{w.scanExprEvents(s.X, st)}

	case *ast.AssignStmt:
		st = w.scanExprEvents(s, st)
		if st.active && !st.released {
			// Frame or lease stored into a non-local location.
			for _, lhs := range s.Lhs {
				root := ftc.RootIdent(lhs)
				if root == nil {
					continue
				}
				obj := w.pass.Info.Uses[root]
				if obj == nil {
					obj = w.pass.Info.Defs[root]
				}
				if ftc.DeclaredWithin(obj, w.fn.Body.Pos(), w.fn.Body.End()) {
					continue
				}
				for i, rhs := range s.Rhs {
					if i < len(s.Lhs) && s.Lhs[i] != lhs {
						continue
					}
					if usesObj(w.pass.Info, rhs, w.acq.frame) || usesObj(w.pass.Info, rhs, w.acq.lease) {
						w.reportf(rhs.Pos(), "pooled frame payload escapes to a non-local location; it becomes invalid when the lease is released")
					}
				}
			}
		}
		return []state{st}

	case *ast.DeferStmt:
		if st.active && !st.released {
			if w.isReleaseCall(s.Call) || w.containsRelease(s.Call) {
				st.released = true
				st.deferred = true
				st.relPos = s.Call.Pos()
				return []state{st}
			}
			for i, arg := range s.Call.Args {
				if usesObj(w.pass.Info, arg, w.acq.lease) && w.sinks.callSinksArg(s.Call, i) {
					st.released = true
					st.handoff = true
					return []state{st}
				}
			}
		}
		return []state{st}

	case *ast.GoStmt:
		if st.active && !st.released {
			if w.containsRelease(s.Call) {
				st.released = true
				st.handoff = true
				return []state{st}
			}
			if usesObj(w.pass.Info, s.Call, w.acq.lease) || usesObj(w.pass.Info, s.Call, w.acq.frame) {
				w.reportf(s.Pos(), "goroutine captures the pooled frame or lease without releasing it; hand the lease off with a deferred Release inside the goroutine")
			}
		}
		return []state{st}

	case *ast.ReturnStmt:
		if st.active && !st.released {
			// Returning the lease transfers ownership to the caller.
			for _, r := range s.Results {
				if usesObj(w.pass.Info, r, w.acq.lease) {
					return nil
				}
			}
		}
		if st.active && st.released && !st.handoff {
			for _, r := range s.Results {
				if usesObj(w.pass.Info, r, w.acq.frame) {
					w.reportf(s.Pos(), "returning the pooled frame payload: the lease's Release (at %s) invalidates it before the caller can look",
						w.pass.Fset.Position(st.relPos))
				}
			}
		}
		w.endPath(s.Pos(), st)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE, token.GOTO:
			w.endPath(s.Pos(), st)
			return nil
		case token.BREAK:
			// Conservative: the obligation must be resolved before
			// leaving the loop. A release after the loop is rejected;
			// restructure or annotate with //ftclint:ignore.
			w.endPath(s.Pos(), st)
			return nil
		}
		return []state{st}

	case *ast.IfStmt:
		if s.Init != nil {
			if s.Init == ast.Stmt(w.acq.stmt) {
				// `if lease, ok := tier.Get(p); ok { ... }` — the
				// acquisition lives in the if-init; the condition is
				// (almost always) its own guard.
				st.active = true
				st.released = false
				st.errorPath = false
			} else {
				st = w.scanExprEvents(s.Init, st)
			}
		}
		st = w.scanExprEvents(s.Cond, st)
		var out []state
		if guard, thenIsErr := w.errGuard(s.Cond); guard && st.active {
			thenSt, elseSt := st, st
			if thenIsErr {
				thenSt.errorPath = true
			} else {
				elseSt.errorPath = true
			}
			out = append(out, w.walkStmts([]ast.Stmt{s.Body}, thenSt)...)
			if s.Else != nil {
				out = append(out, w.walkStmts([]ast.Stmt{s.Else}, elseSt)...)
			} else {
				out = append(out, elseSt)
			}
			return out
		}
		out = append(out, w.walkStmts([]ast.Stmt{s.Body}, st)...)
		if s.Else != nil {
			out = append(out, w.walkStmts([]ast.Stmt{s.Else}, st)...)
		} else {
			out = append(out, st)
		}
		return out

	case *ast.ForStmt:
		return w.walkLoop(s.Body, st, s.Init, s.Cond, s.Post)

	case *ast.RangeStmt:
		return w.walkLoop(s.Body, st, nil, s.X, nil)

	case *ast.SwitchStmt:
		return w.walkCases(s.Body, st, s.Tag, s.Init)

	case *ast.TypeSwitchStmt:
		return w.walkCases(s.Body, st, nil, s.Init)

	case *ast.SelectStmt:
		var out []state
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			cst := st
			if comm.Comm != nil {
				cst = w.scanExprEvents(comm.Comm, cst)
			}
			out = append(out, w.walkStmts(comm.Body, cst)...)
		}
		if len(s.Body.List) == 0 {
			out = append(out, st)
		}
		return out

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		if n, ok := s.(ast.Node); ok {
			st = w.scanExprEvents(n, st)
		}
		return []state{st}

	default:
		return []state{st}
	}
}

// walkLoop walks a loop body. The acquisition may live inside the body
// (per-iteration obligation: must resolve by the end of the body) or
// outside it (the obligation simply flows through).
func (w *walker) walkLoop(body *ast.BlockStmt, st state, init ast.Stmt, cond ast.Expr, post ast.Stmt) []state {
	if init != nil {
		st = w.scanExprEvents(init, st)
	}
	if cond != nil {
		st = w.scanExprEvents(cond, st)
	}
	acqInside := body.Pos() <= w.acq.stmt.Pos() && w.acq.stmt.Pos() < body.End()
	exits := w.walkStmts(body.List, st)
	var out []state
	for _, ex := range exits {
		if acqInside && ex.active && !ex.released && !ex.errorPath {
			// Falling into the next iteration re-acquires a fresh
			// lease; this one leaks.
			w.endPath(body.Rbrace, ex)
			continue
		}
		out = append(out, ex)
	}
	// Zero-iteration path.
	out = append(out, st)
	return out
}

// walkCases forks the walk across switch case clauses.
func (w *walker) walkCases(body *ast.BlockStmt, st state, tag ast.Expr, init ast.Stmt) []state {
	if init != nil {
		st = w.scanExprEvents(init, st)
	}
	if tag != nil {
		st = w.scanExprEvents(tag, st)
	}
	var out []state
	hasDefault := false
	for _, cl := range body.List {
		clause, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		out = append(out, w.walkStmts(clause.Body, st)...)
	}
	if !hasDefault {
		out = append(out, st)
	}
	return out
}
