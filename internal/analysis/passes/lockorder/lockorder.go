// Package lockorder detects cross-package lock-ordering deadlock risk
// and blocking calls made while holding a lock (DESIGN.md §17).
//
// Locks are tracked by *class*, not instance: the (package, type,
// field) triple of the mutex — "memtier.shard.mu", "wire.
// CoalescedWriter.mu" — or the (package, var) pair for package-level
// mutexes. Two rules are enforced:
//
//   - lock-order cycles: whenever a function acquires class B while a
//     class-A lock is held (directly, or anywhere inside a callee —
//     resolved through the call graph and, across packages, through
//     LockFact facts), the analyzer records the edge A→B. Each package
//     exports its edges unioned with its imports' (EdgesFact), and a
//     cycle in the accumulated graph is reported in the package whose
//     own edge closes it. Same-class edges (shard[i] → shard[j]
//     hand-over-hand) are out of scope: ordering within a class is an
//     instance-level protocol (e.g. index order) this analysis cannot
//     see.
//
//   - blocking while holding: a channel send/receive, a select without
//     default, (*sync.WaitGroup).Wait, time.Sleep, network I/O
//     (net.Conn / net.Listener methods), or a call whose (possibly
//     imported) summary says it does any of those, executed while a
//     lock is held, is reported. (*sync.Cond).Wait is exempt — it
//     requires holding its lock by design.
//
// Function literals are analyzed as separate execution contexts
// (empty held set) and excluded from caller summaries: a closure's
// locks belong to whatever goroutine eventually runs it.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/ftc"
	"repro/internal/analysis/passes/callgraph"
)

// A LockFact summarizes one function for callers in other packages.
type LockFact struct {
	// Acquires lists the lock classes the function (transitively)
	// acquires.
	Acquires []string
	// Blocks is "" when the function cannot block, else a short
	// human-readable reason.
	Blocks string
}

// AFact marks LockFact as a fact.
func (*LockFact) AFact() {}

// An Edge is one observed lock-order constraint: To was acquired while
// From was held.
type Edge struct {
	From, To string
	// Pos is the acquiring call site ("file:line"), Pkg the package
	// whose analysis recorded the edge.
	Pos string
	Pkg string
}

// EdgesFact is the accumulated lock-order graph: this package's edges
// plus every import's.
type EdgesFact struct {
	Edges []Edge
}

// AFact marks EdgesFact as a fact.
func (*EdgesFact) AFact() {}

// Analyzer is the lockorder pass.
var Analyzer = &ftc.Analyzer{
	Name:      "lockorder",
	Doc:       "report cross-package lock-acquisition cycles and blocking calls (channel ops, Wait, network I/O) made while holding a lock",
	Requires:  []*ftc.Analyzer{callgraph.Analyzer},
	FactTypes: []ftc.Fact{(*LockFact)(nil), (*EdgesFact)(nil)},
	Run:       run,
}

// ShortClass renders a lock class for diagnostics: the full package
// path is trimmed to its base name.
func ShortClass(class string) string {
	if i := strings.LastIndexByte(class, '/'); i >= 0 {
		return class[i+1:]
	}
	return class
}

type checker struct {
	pass  *ftc.Pass
	graph *callgraph.Graph
	// summaries memoizes per-function LockFacts; onStack guards
	// recursion.
	summaries map[types.Object]*LockFact
	onStack   map[types.Object]bool
	// edges are this package's own lock-order edges, deduped.
	edges      []Edge
	edgeSeen   map[[2]string]bool
	ownEdgePos map[[2]string]token.Pos
}

func run(pass *ftc.Pass) (any, error) {
	c := &checker{
		pass:      pass,
		graph:     pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph),
		summaries: map[types.Object]*LockFact{},
		onStack:   map[types.Object]bool{},
		edgeSeen:  map[[2]string]bool{},
	}

	// Summaries + facts for every package-level function, then the
	// flow-sensitive held-set walk that yields edges and
	// blocking-while-holding reports.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			sum := c.summarize(obj, fd)
			if _, exportable := ftc.ObjectKey(obj); exportable && (len(sum.Acquires) > 0 || sum.Blocks != "") {
				pass.ExportObjectFact(obj, &LockFact{Acquires: sum.Acquires, Blocks: sum.Blocks})
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.flow(fd)
			}
		}
	}

	// Accumulate the lock-order graph and hunt for cycles this
	// package's edges close.
	imported := c.importedEdges()
	c.reportCycles(imported)

	all := append(append([]Edge{}, imported...), c.edges...)
	sort.Slice(all, func(i, j int) bool {
		if all[i].From != all[j].From {
			return all[i].From < all[j].From
		}
		if all[i].To != all[j].To {
			return all[i].To < all[j].To
		}
		return all[i].Pos < all[j].Pos
	})
	seen := map[[2]string]bool{}
	dedup := all[:0]
	for _, e := range all {
		k := [2]string{e.From, e.To}
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, e)
		}
	}
	pass.ExportPackageFact(&EdgesFact{Edges: dedup})
	return nil, nil
}

// importedEdges unions the direct imports' accumulated edge facts.
func (c *checker) importedEdges() []Edge {
	var out []Edge
	seen := map[[2]string]bool{}
	for _, imp := range c.pass.Pkg.Imports() {
		var dep EdgesFact
		if !c.pass.ImportPackageFact(imp, &dep) {
			continue
		}
		for _, e := range dep.Edges {
			k := [2]string{e.From, e.To}
			if !seen[k] {
				seen[k] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// --- lock class identification ---

// mutexMethod classifies a call as a lock-class operation: Lock/RLock
// acquire, Unlock/RUnlock release, on sync.Mutex / sync.RWMutex (or
// types embedding them, through method promotion).
func mutexMethod(info *types.Info, call *ast.CallExpr) (class string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := ftc.CalleeObject(info, call).(*types.Func)
	if !ok || !ftc.PkgPathIs(fn.Pkg(), "sync") {
		return "", false, false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", false, false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", false, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false
	}
	return lockClass(info, sel.X), acquire, release
}

// lockClass derives the stable class string of the mutex value expr:
//
//	x.mu.Lock()        -> "<pkg of T>.T.mu"   (T = type of x)
//	pkgVar.Lock()      -> "<pkg>.pkgVar"
//	t.Lock()           -> "<pkg of T>.T"      (embedded mutex)
//	localMu.Lock()     -> ""                   (unclassed, skipped)
func lockClass(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		tv, ok := info.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
		}
		// No named owner (package-qualified var, map/slice element of
		// unnamed type): try the selector as a package-level var.
		if obj := info.Uses[e.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
		return ""
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return ""
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			// Embedded mutex: the receiver itself is the lock.
			t := v.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					return named.Obj().Pkg().Path() + "." + named.Obj().Name()
				}
			}
		}
		return ""
	case *ast.IndexExpr:
		return lockClass(info, e.X)
	default:
		return ""
	}
}

// --- function summaries ---

// summarize computes (and memoizes) the LockFact of a function in this
// package.
func (c *checker) summarize(obj types.Object, fd *ast.FuncDecl) *LockFact {
	if sum, ok := c.summaries[obj]; ok {
		return sum
	}
	if c.onStack[obj] {
		return &LockFact{} // recursion: accounted at the cycle's entry
	}
	c.onStack[obj] = true
	defer func() { c.onStack[obj] = false }()

	acquires := map[string]bool{}
	blocks := ""
	note := func(reason string) {
		if blocks == "" {
			blocks = reason
		}
	}
	c.scanOps(fd.Body, func(class string) {
		acquires[class] = true
	}, note, func(callee *LockFact, desc string) {
		for _, a := range callee.Acquires {
			acquires[a] = true
		}
		if callee.Blocks != "" {
			note(fmt.Sprintf("calls %s, which blocks: %s", desc, callee.Blocks))
		}
	})

	sum := &LockFact{Blocks: blocks}
	for a := range acquires {
		sum.Acquires = append(sum.Acquires, a)
	}
	sort.Strings(sum.Acquires)
	c.summaries[obj] = sum
	return sum
}

// calleeSummary resolves a call site to the union of its callees'
// summaries; nil means unknown/irrelevant. desc names the callee for
// messages.
func (c *checker) calleeSummary(call *ast.CallExpr) (*LockFact, string) {
	res := c.graph.ResolveCall(call)
	if res.Static != nil {
		fn := res.Static
		if ffn, ok := fn.(*types.Func); ok && builtinBlocking(ffn) != "" {
			return &LockFact{Blocks: builtinBlocking(ffn)}, callgraph.ShortRef(fn)
		}
		if fn.Pkg() == c.pass.Pkg {
			if fd := ftc.FuncFor(c.pass.Info, c.pass.Files, fn); fd != nil && fd.Body != nil {
				return c.summarize(fn, fd), callgraph.ShortRef(fn)
			}
			return nil, ""
		}
		var fact LockFact
		if c.pass.ImportObjectFact(fn, &fact) {
			return &fact, callgraph.ShortRef(fn)
		}
		return nil, ""
	}
	if res.Iface != nil {
		if reason := builtinBlocking(res.Iface); reason != "" {
			return &LockFact{Blocks: reason}, callgraph.ShortRef(res.Iface)
		}
		// CHA: union over in-repo candidates.
		merged := &LockFact{}
		acq := map[string]bool{}
		desc := callgraph.ShortRef(res.Iface)
		for _, cand := range res.Candidates {
			var fact LockFact
			if !c.pass.ImportFactByKey(cand.PkgPath, cand.ObjKey, &fact) {
				// Same-package candidate: summaries, not yet facts.
				if cand.PkgPath == c.pass.Pkg.Path() {
					if f := c.localByKey(cand.ObjKey); f != nil {
						fact = *f
					} else {
						continue
					}
				} else {
					continue
				}
			}
			for _, a := range fact.Acquires {
				acq[a] = true
			}
			if fact.Blocks != "" && merged.Blocks == "" {
				merged.Blocks = fmt.Sprintf("candidate %s blocks: %s", cand.String(), fact.Blocks)
			}
		}
		for a := range acq {
			merged.Acquires = append(merged.Acquires, a)
		}
		sort.Strings(merged.Acquires)
		if len(merged.Acquires) == 0 && merged.Blocks == "" {
			return nil, ""
		}
		return merged, desc
	}
	return nil, ""
}

// localByKey finds an already-summarized same-package function by its
// object key.
func (c *checker) localByKey(key string) *LockFact {
	for obj, sum := range c.summaries {
		if k, ok := ftc.ObjectKey(obj); ok && k == key {
			return sum
		}
	}
	return nil
}

// builtinBlocking classifies well-known blocking leaf calls that have
// no facts: network I/O and time.Sleep and the blocking sync waits.
// (*sync.Cond).Wait is exempt: it requires holding its lock by design.
func builtinBlocking(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if ftc.PkgPathIs(fn.Pkg(), "time") && fn.Name() == "Sleep" {
		return "time.Sleep"
	}
	if ftc.PkgPathIs(fn.Pkg(), "sync") && sig != nil && sig.Recv() != nil {
		if ftc.ReceiverNamed(fn, "sync", "WaitGroup") && fn.Name() == "Wait" {
			return "waits on a sync.WaitGroup"
		}
	}
	if ftc.PkgPathIs(fn.Pkg(), "net") && sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			switch named.Obj().Name() {
			case "Conn", "TCPConn", "UDPConn", "UnixConn", "Listener", "TCPListener", "Dialer":
				// Only the methods that can actually park on the
				// network; Addr/Close/SetDeadline return immediately.
				switch fn.Name() {
				case "Read", "Write", "ReadFrom", "WriteTo", "Accept", "AcceptTCP", "Dial", "DialContext":
					return fmt.Sprintf("network I/O (net.%s.%s)", named.Obj().Name(), fn.Name())
				}
			}
		}
	}
	return ""
}

// scanOps walks a function body (excluding nested FuncLits) and feeds
// every lock acquisition class, direct blocking reason, and resolvable
// callee summary to the callbacks. Channel operations that are the
// comm of a select case are attributed to the select, not double
// counted.
func (c *checker) scanOps(body *ast.BlockStmt, onAcquire func(string), onBlock func(string), onCallee func(*LockFact, string)) {
	commSkip := collectCommOps(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				onBlock("blocks in select")
			}
		case *ast.SendStmt:
			if !commSkip[ast.Node(n)] {
				onBlock("sends on a channel")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !commSkip[ast.Node(n)] {
				onBlock("receives from a channel")
			}
		case *ast.RangeStmt:
			if tv, ok := c.pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					onBlock("ranges over a channel")
				}
			}
		case *ast.CallExpr:
			if class, acquire, _ := mutexMethod(c.pass.Info, n); acquire && class != "" {
				onAcquire(class)
				return true
			}
			if sum, desc := c.calleeSummary(n); sum != nil {
				onCallee(sum, desc)
			}
		}
		return true
	})
}

// collectCommOps returns the channel-op nodes that serve as select
// comm clauses (their blocking is the select's).
func collectCommOps(body ast.Node) map[ast.Node]bool {
	skip := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			switch s := comm.Comm.(type) {
			case *ast.SendStmt:
				skip[ast.Node(s)] = true
			case *ast.ExprStmt:
				markRecv(s.X, skip)
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					markRecv(r, skip)
				}
			}
		}
		return true
	})
	return skip
}

func markRecv(e ast.Expr, skip map[ast.Node]bool) {
	if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
		skip[ast.Node(ue)] = true
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// --- flow-sensitive held-set walk ---

// heldSet maps held lock classes to their acquisition positions.
type heldSet map[string]token.Pos

func copyHeld(h heldSet) heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// flow walks fd and every function literal inside it, each as its own
// execution context (a closure's locks belong to whichever goroutine
// runs it).
func (c *checker) flow(fd *ast.FuncDecl) {
	w := &flowWalker{c: c, commSkip: collectCommOps(fd.Body), reported: map[token.Pos]bool{}}
	w.walkStmts(fd.Body.List, heldSet{})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lw := &flowWalker{c: c, commSkip: collectCommOps(lit.Body), reported: w.reported}
			lw.walkStmts(lit.Body.List, heldSet{})
		}
		return true
	})
}

type flowWalker struct {
	c        *checker
	commSkip map[ast.Node]bool
	reported map[token.Pos]bool
}

func (w *flowWalker) reportBlocked(pos token.Pos, h heldSet, reason string) {
	if len(h) == 0 || w.reported[pos] {
		return
	}
	w.reported[pos] = true
	classes := make([]string, 0, len(h))
	for cls := range h {
		classes = append(classes, cls)
	}
	sort.Strings(classes)
	cls := classes[0]
	w.c.pass.Reportf(pos, "%s while holding %s (acquired at %s)",
		reason, ShortClass(cls), w.c.pass.Fset.Position(h[cls]))
}

// edge records a lock-order edge observed in this package.
func (c *checker) edge(from, to string, pos token.Pos) {
	if from == to {
		return // instance-level ordering within a class is out of scope
	}
	k := [2]string{from, to}
	if c.edgeSeen[k] {
		return
	}
	c.edgeSeen[k] = true
	c.edges = append(c.edges, Edge{
		From: from, To: to,
		Pos: c.pass.Fset.Position(pos).String(),
		Pkg: c.pass.Pkg.Path(),
	})
	if c.ownEdgePos == nil {
		c.ownEdgePos = map[[2]string]token.Pos{}
	}
	c.ownEdgePos[k] = pos
}

// processNode scans the expressions of one leaf statement: mutex ops
// mutate the held set; calls and channel ops are checked against it.
func (w *flowWalker) processNode(n ast.Node, h heldSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if class, acquire, release := mutexMethod(w.c.pass.Info, x); class != "" && (acquire || release) {
				if acquire {
					for held := range h {
						w.c.edge(held, class, x.Pos())
					}
					h[class] = x.Pos()
				} else {
					delete(h, class)
				}
				return true
			}
			if sum, desc := w.c.calleeSummary(x); sum != nil {
				for held := range h {
					for _, a := range sum.Acquires {
						w.c.edge(held, a, x.Pos())
					}
				}
				if sum.Blocks != "" {
					w.reportBlocked(x.Pos(), h, fmt.Sprintf("calls %s, which blocks (%s)", desc, sum.Blocks))
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !w.commSkip[ast.Node(x)] {
				w.reportBlocked(x.Pos(), h, "receives from a channel")
			}
		}
		return true
	})
}

// walkStmts walks a statement list; returns the held set at
// fall-through and whether every path terminated (return/branch).
func (w *flowWalker) walkStmts(list []ast.Stmt, h heldSet) (heldSet, bool) {
	for _, s := range list {
		var terminated bool
		h, terminated = w.walkStmt(s, h)
		if terminated {
			return h, true
		}
	}
	return h, false
}

// merge unions branch exits: a lock possibly held counts as held.
func merge(a, b heldSet) heldSet {
	out := copyHeld(a)
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func (w *flowWalker) walkStmt(s ast.Stmt, h heldSet) (heldSet, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, h)

	case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.ReturnStmt:
		w.processNode(s, h)
		_, isReturn := s.(*ast.ReturnStmt)
		return h, isReturn

	case *ast.SendStmt:
		w.processNode(s.Chan, h)
		w.processNode(s.Value, h)
		if !w.commSkip[ast.Node(s)] {
			w.reportBlocked(s.Pos(), h, "sends on a channel")
		}
		return h, false

	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the remainder of
		// the function (by design); deferred work itself runs outside
		// this flow. Arguments are evaluated now.
		for _, arg := range s.Call.Args {
			w.processNode(arg, h)
		}
		return h, false

	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.processNode(arg, h)
		}
		return h, false

	case *ast.BranchStmt:
		return h, true

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, h)

	case *ast.IfStmt:
		if s.Init != nil {
			h, _ = w.walkStmt(s.Init, h)
		}
		w.processNode(s.Cond, h)
		thenH, thenTerm := w.walkStmts(s.Body.List, copyHeld(h))
		elseH, elseTerm := copyHeld(h), false
		if s.Else != nil {
			elseH, elseTerm = w.walkStmt(s.Else, copyHeld(h))
		}
		switch {
		case thenTerm && elseTerm:
			return h, true
		case thenTerm:
			return elseH, false
		case elseTerm:
			return thenH, false
		default:
			return merge(thenH, elseH), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			h, _ = w.walkStmt(s.Init, h)
		}
		w.processNode(s.Cond, h)
		bodyH, _ := w.walkStmts(s.Body.List, copyHeld(h))
		if s.Post != nil {
			bodyH, _ = w.walkStmt(s.Post, bodyH)
		}
		return merge(h, bodyH), false

	case *ast.RangeStmt:
		w.processNode(s.X, h)
		if tv, ok := w.c.pass.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.reportBlocked(s.Pos(), h, "ranges over a channel")
			}
		}
		bodyH, _ := w.walkStmts(s.Body.List, copyHeld(h))
		return merge(h, bodyH), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			h, _ = w.walkStmt(s.Init, h)
		}
		w.processNode(s.Tag, h)
		return w.walkCases(s.Body, h)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			h, _ = w.walkStmt(s.Init, h)
		}
		w.processNode(s.Assign, h)
		return w.walkCases(s.Body, h)

	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			w.reportBlocked(s.Pos(), h, "blocks in select")
		}
		out := heldSet{}
		any := false
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			ch := copyHeld(h)
			if comm.Comm != nil {
				ch, _ = w.walkStmt(comm.Comm, ch)
			}
			ch, term := w.walkStmts(comm.Body, ch)
			if !term {
				out = merge(out, ch)
				any = true
			}
		}
		if !any {
			return h, len(s.Body.List) > 0
		}
		return out, false

	default:
		return h, false
	}
}

// walkCases handles switch bodies: each clause runs from the entry
// held set; the result is the union of falling-through clause exits
// (plus the entry set, since no clause may match).
func (w *flowWalker) walkCases(body *ast.BlockStmt, h heldSet) (heldSet, bool) {
	out := copyHeld(h)
	for _, cl := range body.List {
		clause, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			w.processNode(e, h)
		}
		ch, term := w.walkStmts(clause.Body, copyHeld(h))
		if !term {
			out = merge(out, ch)
		}
	}
	return out, false
}

// --- cycle detection ---

// reportCycles searches the accumulated lock-order graph (imported
// edges plus this package's own) for cycles that one of this package's
// edges closes, and reports each once.
func (c *checker) reportCycles(imported []Edge) {
	adj := map[string][]Edge{}
	for _, e := range imported {
		adj[e.From] = append(adj[e.From], e)
	}
	for _, e := range c.edges {
		adj[e.From] = append(adj[e.From], e)
	}
	reportedCycle := map[string]bool{}
	for _, own := range c.edges {
		// A cycle through own: path own.To ->* own.From.
		path := findPath(adj, own.To, own.From)
		if path == nil {
			continue
		}
		nodes := []string{own.From, own.To}
		nodes = append(nodes, pathNodes(path)...)
		key := cycleKey(nodes)
		if reportedCycle[key] {
			continue
		}
		reportedCycle[key] = true
		var desc strings.Builder
		desc.WriteString(ShortClass(own.From) + " → " + ShortClass(own.To))
		for _, e := range path {
			desc.WriteString(" → " + ShortClass(e.To))
		}
		var via strings.Builder
		for i, e := range path {
			if i > 0 {
				via.WriteString(", ")
			}
			fmt.Fprintf(&via, "%s→%s at %s (%s)", ShortClass(e.From), ShortClass(e.To), e.Pos, ShortClass(e.Pkg))
		}
		pos := c.ownEdgePos[[2]string{own.From, own.To}]
		c.pass.Reportf(pos, "lock-order deadlock risk: cycle %s; reverse path: %s", desc.String(), via.String())
	}
}

// findPath BFSes from start to goal, returning the edge path or nil.
func findPath(adj map[string][]Edge, start, goal string) []Edge {
	if start == goal {
		return []Edge{}
	}
	type hop struct {
		node string
		via  *Edge
		prev *hop
	}
	queue := []*hop{{node: start}}
	seen := map[string]bool{start: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i := range adj[cur.node] {
			e := &adj[cur.node][i]
			if seen[e.To] {
				continue
			}
			next := &hop{node: e.To, via: e, prev: cur}
			if e.To == goal {
				var path []Edge
				for n := next; n.via != nil; n = n.prev {
					path = append([]Edge{*n.via}, path...)
				}
				return path
			}
			seen[e.To] = true
			queue = append(queue, next)
		}
	}
	return nil
}

func pathNodes(path []Edge) []string {
	var out []string
	for _, e := range path {
		out = append(out, e.To)
	}
	return out
}

// cycleKey canonicalizes a cycle's node set.
func cycleKey(nodes []string) string {
	set := map[string]bool{}
	for _, n := range nodes {
		set[n] = true
	}
	uniq := make([]string, 0, len(set))
	for n := range set {
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	return strings.Join(uniq, "|")
}
