// Package hotpathlock enforces the lock-free hot-path discipline
// introduced with the COW hash ring (DESIGN.md §8): a function whose
// doc comment carries `//ftc:hotpath` must not
//
//   - acquire a mutex-class primitive: (*sync.Mutex).Lock,
//     (*sync.RWMutex).Lock/RLock, (*sync.Once).Do,
//     (*sync.WaitGroup).Wait, (*sync.Cond).Wait;
//   - write to (or delete from) a map that is not local to the
//     function — concurrent map writes are the canonical lock-needing
//     operation, so a shared map write inside a lock-free function is
//     either a race or a hidden lock dependency;
//   - call into package fmt — the fmt fast paths allocate and take
//     interface round-trips the per-I/O path must not pay;
//   - call a same-package function that does any of the above. The
//     call graph is walked with a package-local summary: a callee that
//     is itself marked `//ftc:hotpath` is trusted (it is checked at
//     its own definition); an unmarked callee is analyzed transitively
//     and a violation inside it is reported at the hot-path call site.
//
// Cross-package calls (other than the denylist above) are not
// analyzed — package-local summaries only, per the design: hot-path
// leaf dependencies (sync/atomic, container/list lookups, telemetry
// handles) are vetted by their own package's markings.
package hotpathlock

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/ftc"
)

// Analyzer is the hotpathlock pass.
var Analyzer = &ftc.Analyzer{
	Name: "hotpathlock",
	Doc:  "functions marked //ftc:hotpath must not lock, write shared maps, or call fmt (transitively within the package)",
	Run:  run,
}

// blockingSyncMethods are the sync primitives that can block or spin
// on another goroutine.
var blockingSyncMethods = map[string]map[string]bool{
	"Mutex":     {"Lock": true},
	"RWMutex":   {"Lock": true, "RLock": true},
	"Once":      {"Do": true},
	"WaitGroup": {"Wait": true},
	"Cond":      {"Wait": true},
}

// violation is one rule breach found in a function body.
type violation struct {
	pos  token.Pos
	what string
}

type checker struct {
	pass *ftc.Pass
	// summaries memoizes per-function violation lists; a nil entry
	// marks a function currently on the DFS stack (cycle guard).
	summaries map[types.Object][]violation
	onStack   map[types.Object]bool
}

func run(pass *ftc.Pass) error {
	c := &checker{
		pass:      pass,
		summaries: map[types.Object][]violation{},
		onStack:   map[types.Object]bool{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !ftc.HasHotPath(fd) {
				continue
			}
			for _, v := range c.analyze(fd) {
				pass.Reportf(v.pos, "hot-path function %s %s", fd.Name.Name, v.what)
			}
		}
	}
	return nil
}

// analyze returns fd's direct violations plus one violation per call
// site whose same-package callee has violations of its own.
func (c *checker) analyze(fd *ast.FuncDecl) []violation {
	obj := c.pass.Info.Defs[fd.Name]
	if obj != nil {
		if sum, ok := c.summaries[obj]; ok {
			return sum
		}
		if c.onStack[obj] {
			return nil // recursion: the cycle's body is checked at its entry
		}
		c.onStack[obj] = true
		defer func() { c.onStack[obj] = false }()
	}

	var out []violation
	body := fd.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if v, ok := c.checkCall(n, body); ok {
				out = append(out, v)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v, ok := c.checkMapWrite(lhs, body); ok {
					out = append(out, v)
				}
			}
		case *ast.IncDecStmt:
			if v, ok := c.checkMapWrite(n.X, body); ok {
				out = append(out, v)
			}
		}
		return true
	})
	if obj != nil {
		c.summaries[obj] = out
	}
	return out
}

// checkCall classifies one call expression inside a hot-path body.
func (c *checker) checkCall(call *ast.CallExpr, body *ast.BlockStmt) (violation, bool) {
	info := c.pass.Info

	// delete(m, k) is a map write.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if v, bad := c.checkMapWrite(&ast.IndexExpr{X: call.Args[0]}, body); bad {
				v.pos = call.Pos()
				v.what = "deletes from a non-local map"
				return v, true
			}
		}
	}

	callee := ftc.CalleeObject(info, call)
	fn, ok := callee.(*types.Func)
	if !ok {
		return violation{}, false
	}

	// Denylisted leaf operations.
	if ftc.PkgPathIs(fn.Pkg(), "fmt") {
		return violation{call.Pos(), fmt.Sprintf("calls fmt.%s (allocates via fmt)", fn.Name())}, true
	}
	if ftc.PkgPathIs(fn.Pkg(), "sync") {
		sig := fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				if blockingSyncMethods[named.Obj().Name()][fn.Name()] {
					return violation{call.Pos(), fmt.Sprintf("acquires (*sync.%s).%s", named.Obj().Name(), fn.Name())}, true
				}
			}
		}
	}

	// Same-package callee: trust marked functions, summarize unmarked.
	if fn.Pkg() != c.pass.Pkg {
		return violation{}, false
	}
	decl := ftc.FuncFor(info, c.pass.Files, fn)
	if decl == nil || decl.Body == nil {
		return violation{}, false
	}
	if ftc.HasHotPath(decl) {
		return violation{}, false // verified at its own definition
	}
	if sub := c.analyze(decl); len(sub) > 0 {
		first := sub[0]
		return violation{call.Pos(), fmt.Sprintf("calls %s, which %s (at %s)", fn.Name(), first.what, c.pass.Fset.Position(first.pos))}, true
	}
	return violation{}, false
}

// checkMapWrite reports an assignment target that indexes a map whose
// root variable is not local to body.
func (c *checker) checkMapWrite(lhs ast.Expr, body *ast.BlockStmt) (violation, bool) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return violation{}, false
	}
	tv, ok := c.pass.Info.Types[idx.X]
	if !ok {
		// Synthetic node from the delete() path: re-type the operand.
		tv, ok = c.pass.Info.Types[ast.Unparen(idx.X)]
	}
	if !ok {
		return violation{}, false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return violation{}, false
	}
	root := ftc.RootIdent(idx.X)
	if root != nil {
		obj := c.pass.Info.Uses[root]
		if obj == nil {
			obj = c.pass.Info.Defs[root]
		}
		if ftc.DeclaredWithin(obj, body.Pos(), body.End()) {
			// Freshly built in this function: single-goroutine by
			// construction, allowed (e.g. a plan's Moves map).
			return violation{}, false
		}
	}
	return violation{lhs.Pos(), "writes a non-local map"}, true
}
