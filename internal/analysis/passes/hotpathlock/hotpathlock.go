// Package hotpathlock enforces the lock-free hot-path discipline
// introduced with the COW hash ring (DESIGN.md §8): a function whose
// doc comment carries `//ftc:hotpath` must not
//
//   - acquire a mutex-class primitive: (*sync.Mutex).Lock,
//     (*sync.RWMutex).Lock/RLock, (*sync.Once).Do,
//     (*sync.WaitGroup).Wait, (*sync.Cond).Wait;
//   - write to (or delete from) a map that is not local to the
//     function — concurrent map writes are the canonical lock-needing
//     operation, so a shared map write inside a lock-free function is
//     either a race or a hidden lock dependency;
//   - call into package fmt — the fmt fast paths allocate and take
//     interface round-trips the per-I/O path must not pay;
//   - call any function that does any of the above, in this package or
//     another. Same-package callees are summarized transitively; a
//     cross-package callee's verdict arrives as an UnsafeFact exported
//     when its home package was analyzed (the driver runs in
//     dependency order, so the fact is always there before the caller
//     is). A callee that is itself marked `//ftc:hotpath` — which its
//     home package records as a HotFact — is trusted: it was checked
//     at its own definition.
//
// Interface-dispatched calls are checked against the call graph's CHA
// candidates: the call is reported only when every known in-repo
// implementation is hot-unsafe (one safe implementation means the
// dispatch may be fine, and guessing would be noise).
package hotpathlock

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/ftc"
	"repro/internal/analysis/passes/callgraph"
)

// An UnsafeFact marks a function whose body (transitively, within its
// home package) performs a hot-path-forbidden operation.
type UnsafeFact struct {
	What  string // first violation, e.g. "acquires (*sync.Mutex).Lock"
	Where string // its position, "file:line"
}

// AFact marks UnsafeFact as a fact.
func (*UnsafeFact) AFact() {}

// A HotFact marks a function annotated //ftc:hotpath: verified
// lock-free at its own definition, so callers may trust it.
type HotFact struct{}

// AFact marks HotFact as a fact.
func (*HotFact) AFact() {}

// Analyzer is the hotpathlock pass.
var Analyzer = &ftc.Analyzer{
	Name:      "hotpathlock",
	Doc:       "functions marked //ftc:hotpath must not lock, write shared maps, or call fmt (transitively, across packages via facts)",
	Requires:  []*ftc.Analyzer{callgraph.Analyzer},
	FactTypes: []ftc.Fact{(*UnsafeFact)(nil), (*HotFact)(nil)},
	Run:       run,
}

// blockingSyncMethods are the sync primitives that can block or spin
// on another goroutine.
var blockingSyncMethods = map[string]map[string]bool{
	"Mutex":     {"Lock": true},
	"RWMutex":   {"Lock": true, "RLock": true},
	"Once":      {"Do": true},
	"WaitGroup": {"Wait": true},
	"Cond":      {"Wait": true},
}

// violation is one rule breach found in a function body.
type violation struct {
	pos  token.Pos
	what string
}

type checker struct {
	pass  *ftc.Pass
	graph *callgraph.Graph
	// summaries memoizes per-function violation lists; a nil entry
	// marks a function currently on the DFS stack (cycle guard).
	summaries map[types.Object][]violation
	onStack   map[types.Object]bool
}

func run(pass *ftc.Pass) (any, error) {
	c := &checker{
		pass:      pass,
		graph:     pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph),
		summaries: map[types.Object][]violation{},
		onStack:   map[types.Object]bool{},
	}
	// Export facts for every package-level function first — callers in
	// downstream packages need the verdicts whether or not anything in
	// this package is marked hot — then report inside marked bodies.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if _, exportable := ftc.ObjectKey(obj); !exportable {
				continue
			}
			if ftc.HasHotPath(fd) {
				pass.ExportObjectFact(obj, &HotFact{})
				continue // violations are reported, not exported: the definition is the fix site
			}
			if sum := c.analyze(fd); len(sum) > 0 {
				first := sum[0]
				pass.ExportObjectFact(obj, &UnsafeFact{
					What:  first.what,
					Where: pass.Fset.Position(first.pos).String(),
				})
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !ftc.HasHotPath(fd) {
				continue
			}
			for _, v := range c.analyze(fd) {
				pass.Reportf(v.pos, "hot-path function %s %s", fd.Name.Name, v.what)
			}
		}
	}
	return nil, nil
}

// analyze returns fd's direct violations plus one violation per call
// site whose callee has violations of its own.
func (c *checker) analyze(fd *ast.FuncDecl) []violation {
	obj := c.pass.Info.Defs[fd.Name]
	if obj != nil {
		if sum, ok := c.summaries[obj]; ok {
			return sum
		}
		if c.onStack[obj] {
			return nil // recursion: the cycle's body is checked at its entry
		}
		c.onStack[obj] = true
		defer func() { c.onStack[obj] = false }()
	}

	var out []violation
	body := fd.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if v, ok := c.checkCall(n, body); ok {
				out = append(out, v)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v, ok := c.checkMapWrite(lhs, body); ok {
					out = append(out, v)
				}
			}
		case *ast.IncDecStmt:
			if v, ok := c.checkMapWrite(n.X, body); ok {
				out = append(out, v)
			}
		}
		return true
	})
	if obj != nil {
		c.summaries[obj] = out
	}
	return out
}

// checkCall classifies one call expression inside a hot-path body.
func (c *checker) checkCall(call *ast.CallExpr, body *ast.BlockStmt) (violation, bool) {
	info := c.pass.Info

	// delete(m, k) is a map write.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if v, bad := c.checkMapWrite(&ast.IndexExpr{X: call.Args[0]}, body); bad {
				v.pos = call.Pos()
				v.what = "deletes from a non-local map"
				return v, true
			}
		}
	}

	res := c.graph.ResolveCall(call)

	// Interface dispatch: hot-unsafe only when every known in-repo
	// implementation is.
	if res.Iface != nil && len(res.Candidates) > 0 {
		var first *UnsafeFact
		for _, cand := range res.Candidates {
			var hot HotFact
			if c.pass.ImportFactByKey(cand.PkgPath, cand.ObjKey, &hot) {
				return violation{}, false
			}
			var unsafeFact UnsafeFact
			if !c.pass.ImportFactByKey(cand.PkgPath, cand.ObjKey, &unsafeFact) {
				return violation{}, false
			}
			if first == nil {
				f := unsafeFact
				first = &f
			}
		}
		if first != nil {
			return violation{call.Pos(), fmt.Sprintf("dispatches %s: every in-repo implementation %s (e.g. at %s)",
				callgraph.ShortRef(res.Iface), first.What, first.Where)}, true
		}
		return violation{}, false
	}

	fn, ok := res.Static.(*types.Func)
	if !ok {
		if fn, ok = ftc.CalleeObject(info, call).(*types.Func); !ok {
			return violation{}, false
		}
	}

	// Denylisted leaf operations.
	if ftc.PkgPathIs(fn.Pkg(), "fmt") {
		return violation{call.Pos(), fmt.Sprintf("calls fmt.%s (allocates via fmt)", fn.Name())}, true
	}
	if ftc.PkgPathIs(fn.Pkg(), "sync") {
		sig := fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				if blockingSyncMethods[named.Obj().Name()][fn.Name()] {
					return violation{call.Pos(), fmt.Sprintf("acquires (*sync.%s).%s", named.Obj().Name(), fn.Name())}, true
				}
			}
		}
	}

	// Cross-package callee: consult its home package's facts. A HotFact
	// is a trusted verification; an UnsafeFact is a violation carried to
	// this call site; no fact (stdlib beyond the denylist, safe
	// functions) passes.
	if fn.Pkg() != c.pass.Pkg {
		var hot HotFact
		if c.pass.ImportObjectFact(fn, &hot) {
			return violation{}, false
		}
		var unsafeFact UnsafeFact
		if c.pass.ImportObjectFact(fn, &unsafeFact) {
			return violation{call.Pos(), fmt.Sprintf("calls %s, which %s (at %s)",
				callgraph.ShortRef(fn), unsafeFact.What, unsafeFact.Where)}, true
		}
		return violation{}, false
	}

	// Same-package callee: trust marked functions, summarize unmarked.
	decl := ftc.FuncFor(info, c.pass.Files, fn)
	if decl == nil || decl.Body == nil {
		return violation{}, false
	}
	if ftc.HasHotPath(decl) {
		return violation{}, false // verified at its own definition
	}
	if sub := c.analyze(decl); len(sub) > 0 {
		first := sub[0]
		return violation{call.Pos(), fmt.Sprintf("calls %s, which %s (at %s)", fn.Name(), first.what, c.pass.Fset.Position(first.pos))}, true
	}
	return violation{}, false
}

// checkMapWrite reports an assignment target that indexes a map whose
// root variable is not local to body.
func (c *checker) checkMapWrite(lhs ast.Expr, body *ast.BlockStmt) (violation, bool) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return violation{}, false
	}
	tv, ok := c.pass.Info.Types[idx.X]
	if !ok {
		// Synthetic node from the delete() path: re-type the operand.
		tv, ok = c.pass.Info.Types[ast.Unparen(idx.X)]
	}
	if !ok {
		return violation{}, false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return violation{}, false
	}
	root := ftc.RootIdent(idx.X)
	if root != nil {
		obj := c.pass.Info.Uses[root]
		if obj == nil {
			obj = c.pass.Info.Defs[root]
		}
		if ftc.DeclaredWithin(obj, body.Pos(), body.End()) {
			// Freshly built in this function: single-goroutine by
			// construction, allowed (e.g. a plan's Moves map).
			return violation{}, false
		}
	}
	return violation{lhs.Pos(), "writes a non-local map"}, true
}
