// Package telemetrylabel keeps the metrics registry low-cardinality:
// label values passed to telemetry.Registry's Counter / Gauge /
// Histogram / CounterFunc / GaugeFunc must be bounded — constants,
// node IDs, enum strings — never raw object keys, error text, or
// formatted request data. One unbounded label value turns a fixed
// family of series into one series per key, which is both a memory
// leak (registry entries are never evicted) and a scrape-size
// explosion; PR 2 paid for the lock-free write path precisely by
// keeping registration rare and the series set small.
//
// The rule is a syntactic denylist over each label-value argument:
//
//   - allowed: constant expressions (literals, consts), plain
//     variables and field selections of type string, and conversions
//     string(x) where x's type is a named non-string type (NodeID and
//     friends — bounded identifier sets by construction);
//   - rejected: any call result (fmt.Sprintf, err.Error(),
//     strconv.Itoa, ...), string concatenation involving a
//     non-constant operand, indexing, and conversions from unnamed
//     string/[]byte/[]rune types (raw request data).
//
// Label keys (the even-position variadic arguments) must be constant
// strings outright.
package telemetrylabel

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/ftc"
)

// Analyzer is the telemetrylabel pass.
var Analyzer = &ftc.Analyzer{
	Name: "telemetrylabel",
	Doc:  "telemetry label values must be bounded (constants, IDs, enum strings), never raw keys, errors, or formatted data",
	Run:  run,
}

// labelMethods maps Registry method names to the index of the first
// variadic label argument.
var labelMethods = map[string]int{
	"Counter":     1,
	"Gauge":       1,
	"Histogram":   1,
	"CounterFunc": 2,
	"GaugeFunc":   2,
}

func run(pass *ftc.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := ftc.CalleeObject(pass.Info, call).(*types.Func)
			if !ok {
				return true
			}
			start, ok := labelMethods[fn.Name()]
			if !ok || !ftc.ReceiverNamed(fn, "telemetry", "Registry") {
				return true
			}
			if call.Ellipsis != token.NoPos {
				pass.Reportf(call.Ellipsis, "label pairs expanded with ... cannot be checked for bounded cardinality; pass them explicitly")
				return true
			}
			for i := start; i < len(call.Args); i++ {
				arg := call.Args[i]
				isKey := (i-start)%2 == 0
				if isKey {
					if !isConstant(pass.Info, arg) {
						pass.Reportf(arg.Pos(), "label key must be a constant string")
					}
					continue
				}
				if bad, why := unboundedValue(pass.Info, arg); bad {
					pass.Reportf(arg.Pos(), "unbounded label value (%s); label values must be constants, node IDs, or enum strings", why)
				}
			}
			return true
		})
	}
	return nil, nil
}

func isConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// unboundedValue classifies a label-value expression, returning a
// human reason when it is rejected.
func unboundedValue(info *types.Info, e ast.Expr) (bool, string) {
	e = ast.Unparen(e)
	if isConstant(info, e) {
		return false, ""
	}
	switch v := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		// A plain variable or field: assumed to hold a bounded
		// identifier (node ID, shard name). The forms that smuggle in
		// request data are the computed ones below.
		return false, ""
	case *ast.CallExpr:
		// string(x) conversions of named types are enum-to-string; any
		// true call (fmt.Sprintf, err.Error, strconv.Itoa) is rejected.
		if len(v.Args) == 1 {
			if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
				return convUnbounded(info, v.Args[0])
			}
		}
		if fn, ok := ftc.CalleeObject(info, v).(*types.Func); ok {
			return true, "result of " + fn.FullName()
		}
		return true, "result of a function call"
	case *ast.BinaryExpr:
		if v.Op == token.ADD {
			return true, "string concatenation builds per-request values"
		}
		return true, "computed expression"
	case *ast.IndexExpr:
		return true, "indexed expression"
	default:
		return true, "computed expression"
	}
}

// convUnbounded decides whether string(x) is an enum rendering (x has
// a named non-string type) or a raw-data copy (x is an unnamed string,
// []byte, or []rune).
func convUnbounded(info *types.Info, operand ast.Expr) (bool, string) {
	tv, ok := info.Types[ast.Unparen(operand)]
	if !ok {
		return true, "conversion of unknown operand"
	}
	if tv.Value != nil {
		return false, ""
	}
	if named, ok := tv.Type.(*types.Named); ok {
		// string(NodeID) and friends: a named identifier type.
		if _, isBasic := named.Underlying().(*types.Basic); isBasic {
			return false, ""
		}
	}
	return true, "conversion from raw data"
}
