// Package atomicfield enforces all-or-nothing atomicity on struct
// fields: once any code in the package accesses a field through
// sync/atomic (atomic.LoadInt64(&s.f), atomic.AddUint32(&s.n, 1), ...),
// every other access to that field must also go through sync/atomic.
// A plain read racing an atomic write is still a data race — the
// subtle kind that -race only catches when the interleaving happens to
// occur, and exactly what bit PR 1's first sharded-store draft.
//
// Fields of the atomic wrapper types (atomic.Int64, atomic.Pointer,
// ...) are safe by construction — their only methods are atomic — so
// this pass concerns the address-taken style only.
//
// Composite literals are exempt: `&shard{n: 0}` publishes the struct
// after construction, the standard pre-publication initialization
// idiom. Post-publication plain access is the bug.
package atomicfield

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/ftc"
)

// Analyzer is the atomicfield pass.
var Analyzer = &ftc.Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic must never be read or written plainly",
	Run:  run,
}

func run(pass *ftc.Pass) (any, error) {
	// Pass 1: collect fields whose address is taken as the pointer
	// argument of a sync/atomic call, remembering one call site each
	// for the report.
	atomicFields := map[*types.Var]ast.Expr{}
	// atomicUses are the &x.f expressions inside those calls — the
	// sanctioned accesses pass 2 must not flag.
	atomicUses := map[*ast.SelectorExpr]bool{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := ftc.CalleeObject(pass.Info, call).(*types.Func)
			if !ok || !ftc.PkgPathIs(fn.Pkg(), "sync/atomic") {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := fieldVar(pass.Info, sel); field != nil {
					if _, seen := atomicFields[field]; !seen {
						atomicFields[field] = arg
					}
					atomicUses[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: any other selector resolving to one of those fields is a
	// plain access. Keyed composite-literal initialization never parses
	// as a SelectorExpr, so the pre-publication idiom is exempt for
	// free.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			field := fieldVar(pass.Info, sel)
			if field == nil {
				return true
			}
			if first, ok := atomicFields[field]; ok {
				pass.Reportf(sel.Sel.Pos(),
					"plain access to field %s, which is accessed atomically at %s; use sync/atomic everywhere",
					field.Name(), pass.Fset.Position(first.Pos()))
			}
			return true
		})
	}
	return nil, nil
}

// fieldVar resolves sel to a struct field object, or nil.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
