// Package analysistest runs ftclint analyzers over small GOPATH-style
// testdata packages and checks their diagnostics against expectations
// written in the source as trailing comments:
//
//	reg.Counter("x", err.Error()) // want `unbounded label value`
//
// Each `// want` comment carries one or more quoted regular
// expressions (double- or back-quoted); each must match a distinct
// diagnostic reported on that line. Diagnostics with no matching
// expectation, and expectations with no matching diagnostic, fail the
// test. A line with no want comment asserts no diagnostic — including
// violations suppressed by a `//ftclint:ignore` on that line, which is
// how suppression honoring is tested.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/ftc"
	"repro/internal/analysis/load"
)

// expectation is one quoted regexp from a want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads srcRoot/pkgPath, applies the analyzers, and diffs the
// diagnostics against the package's want comments.
func Run(t *testing.T, srcRoot, pkgPath string, analyzers ...*ftc.Analyzer) {
	t.Helper()
	RunMulti(t, srcRoot, []string{pkgPath}, analyzers...)
}

// RunMulti is the multi-package harness for interprocedural analyzers:
// it loads every listed package from one shared loader, analyzes them
// in the given order with one shared FactStore — list dependencies
// before their importers, exactly like the module driver's dependency
// order — and diffs diagnostics against want comments across all of
// them. Facts exported while analyzing src/a are visible when src/b
// (which imports a) is analyzed.
func RunMulti(t *testing.T, srcRoot string, pkgPaths []string, analyzers ...*ftc.Analyzer) {
	t.Helper()
	dirs := make([]string, len(pkgPaths))
	for i, p := range pkgPaths {
		dirs[i] = filepath.Join(srcRoot, filepath.FromSlash(p))
	}
	pkgs, err := load.Dirs(srcRoot, dirs...)
	if err != nil {
		t.Fatalf("loading %v: %v", pkgPaths, err)
	}

	var expects []*expectation
	for _, pkg := range pkgs {
		es, err := collectWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		expects = append(expects, es...)
	}

	facts := ftc.NewFactStore()
	for _, pkg := range pkgs {
		diags, err := ftc.RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers, facts)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !claim(expects, pos, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
			}
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.re)
		}
	}
}

// claim marks the first unmet expectation on the diagnostic's line
// whose pattern matches the message.
func claim(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if !e.met && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(msg) {
			e.met = true
			return true
		}
	}
	return false
}

// collectWants extracts every want expectation from the package's
// comments.
func collectWants(pkg *load.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments are not expectations
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parsePatterns(text)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want comment: %v", pos, err)
				}
				for _, re := range res {
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// parsePatterns splits a want payload into its quoted regexps.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted regexp, found %q", s)
		}
		lit, rest, err := cutQuoted(s)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
		s = rest
	}
}

// cutQuoted unquotes the Go string literal at the front of s.
func cutQuoted(s string) (lit, rest string, err error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			lit, err = strconv.Unquote(s[:i+1])
			return lit, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quote in %q", s)
}
