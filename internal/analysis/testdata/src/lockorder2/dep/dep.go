// Package dep is the upstream half of the lockorder fact-propagation
// fixture: it owns both lock classes, records the A→B edge, and
// exports a blocking function. Its EdgesFact and LockFacts flow to the
// importing package.
package dep

import "sync"

type A struct{ Mu sync.Mutex }
type B struct{ Mu sync.Mutex }

// LockPair records the edge A.Mu → B.Mu inside dep. No cycle exists
// yet, so dep itself is clean.
func LockPair(a *A, b *B) {
	a.Mu.Lock()
	b.Mu.Lock()
	b.Mu.Unlock()
	a.Mu.Unlock()
}

// Wait blocks on a receive; its LockFact carries that verdict to
// importers.
func Wait(ch chan int) int { return <-ch }
