// Package use imports dep and closes the lock-order cycle dep began:
// its own B→A edge meets dep's imported A→B edge. It also calls dep's
// blocking function under its own lock, exercising the imported
// LockFact.
package use

import (
	"sync"

	"lockorder2/dep"
)

type S struct{ mu sync.Mutex }

// reversed takes dep's locks in the opposite order from dep.LockPair;
// the cycle is closed by this package's own edge, so it is reported
// here.
func reversed(a *dep.A, b *dep.B) {
	b.Mu.Lock()
	a.Mu.Lock() // want `lock-order deadlock risk: cycle`
	a.Mu.Unlock()
	b.Mu.Unlock()
}

// holdAndWait blocks through an imported callee whose LockFact says it
// receives from a channel.
func (s *S) holdAndWait(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return dep.Wait(ch) // want `calls dep\.Wait, which blocks \(receives from a channel\) while holding`
}
