// Package wire is a minimal stub of the repro wire package for
// analysistest: the poollease analyzer keys on the package name and the
// ReadFramePooled / (*Buf).Release shapes, so the stub only needs those.
package wire

import "io"

type Frame struct {
	Kind    uint8
	Payload []byte
}

type Buf struct{ released bool }

func (b *Buf) Release() {
	if b != nil {
		b.released = true
	}
}

func ReadFramePooled(r io.Reader, maxPayload int) (Frame, *Buf, error) {
	return Frame{}, &Buf{}, nil
}
