// Package dep declares one lock-acquiring function and one verified
// hot function; hotpathlock exports an UnsafeFact for the former and a
// HotFact for the latter, and importers judge calls by those facts.
package dep

import "sync"

type Reg struct {
	mu sync.Mutex
	n  int
}

// Slow acquires the registry lock.
func (r *Reg) Slow() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// Fast is verified at its own definition; callers trust the HotFact.
//
//ftc:hotpath
func (r *Reg) Fast() int { return r.n }
