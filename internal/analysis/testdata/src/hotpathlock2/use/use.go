// Package use marks a hot path that calls into dep: the violation in
// dep.Slow arrives as an imported UnsafeFact, and dep.Fast's HotFact
// vouches for it without re-analysis.
package use

import "hotpathlock2/dep"

//ftc:hotpath
func Lookup(r *dep.Reg) int {
	r.Slow() // want `hot-path function Lookup calls dep\.\(\*Reg\)\.Slow, which acquires`
	return r.Fast()
}
