// Test cases for the poollease analyzer.
package a

import (
	"errors"
	"io"

	"wire"
)

func use(b []byte) {}

// hold consumes the lease (the call-graph summary sees the Release),
// so handing a lease to it discharges the caller's obligation.
func hold(l *wire.Buf) { l.Release() }

// borrow inspects the lease but never releases it: passing a lease here
// is not a handoff, and the caller keeps the obligation.
func borrow(l *wire.Buf) bool { return l != nil }

// okDefer is the canonical handler shape: err guard, then defer.
func okDefer(r io.Reader) error {
	f, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return err
	}
	defer lease.Release()
	use(f.Payload)
	return nil
}

// okInline releases explicitly after the last use.
func okInline(r io.Reader) {
	f, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return
	}
	use(f.Payload)
	lease.Release()
}

// okGoroutineHandoff transfers the obligation into the goroutine.
func okGoroutineHandoff(r io.Reader) {
	f, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return
	}
	go func() {
		defer lease.Release()
		use(f.Payload)
	}()
}

// okCallHandoff passes the lease on; the callee owns it now.
func okCallHandoff(r io.Reader) {
	_, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return
	}
	hold(lease)
}

// leakFalseHandoff passes the lease to a callee whose summary shows it
// never releases: the obligation stays here, unmet.
func leakFalseHandoff(r io.Reader) error {
	_, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return err
	}
	borrow(lease)
	return nil // want `lease acquired at .* is not released on this path`
}

// leakEarlyReturn is the regression class the pass exists for: an
// early return added between the acquisition and the release.
func leakEarlyReturn(r io.Reader) error {
	f, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return err
	}
	if len(f.Payload) == 0 {
		return errors.New("empty") // want `lease acquired at .* is not released on this path`
	}
	lease.Release()
	return nil
}

// useAfterRelease reads the payload after the pool may have reused it.
func useAfterRelease(r io.Reader) {
	f, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return
	}
	lease.Release()
	use(f.Payload) // want `f used after the pooled lease was released`
}

// returnAfterRelease hands the caller an invalidated payload.
func returnAfterRelease(r io.Reader) []byte {
	f, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return nil
	}
	lease.Release()
	return f.Payload // want `f used after the pooled lease was released` `returning the pooled frame payload`
}

// discard can never release.
func discard(r io.Reader) {
	wire.ReadFramePooled(r, 1<<20) // want `result discarded`
}

// blankLease can never release either.
func blankLease(r io.Reader) {
	f, _, err := wire.ReadFramePooled(r, 1<<20) // want `lease assigned to _`
	_, _ = f, err
}

// goroutineCapture leaks the payload into a goroutine the parent
// cannot synchronize with.
func goroutineCapture(r io.Reader) {
	f, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return
	}
	go use(f.Payload) // want `goroutine captures the pooled frame or lease without releasing it`
	lease.Release()
}

// suppressedEarlyReturn is a justified false positive: the enclosing
// connection teardown reclaims the pool wholesale.
func suppressedEarlyReturn(r io.Reader) error {
	f, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return err
	}
	if len(f.Payload) == 0 {
		//ftclint:ignore poollease shutdown-only path; the pool is reclaimed with the connection
		return nil
	}
	lease.Release()
	return nil
}
